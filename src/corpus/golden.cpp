#include "corpus/golden.h"

#include <utility>

#include "obs/json.h"

namespace hbct::corpus {

namespace {

void cut_array(JsonWriter& w, const Cut& g) {
  w.begin_array();
  for (std::size_t i = 0; i < g.size(); ++i)
    w.value(static_cast<std::int64_t>(g[i]));
  w.end_array();
}

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kHolds: return "holds";
    case Verdict::kFails: return "fails";
    default: return "unknown";
  }
}

DetectResult run_cell(const Computation& c, const BatteryCell& cell,
                      const DispatchOptions& opt) {
  return detect(c, cell.op, cell.pred, cell.until_q, opt);
}

}  // namespace

bool witness_certifies(const Computation& c, const BatteryCell& cell,
                       const DetectResult& r) {
  const Predicate& p = *cell.pred;
  if (r.verdict == Verdict::kHolds &&
      (cell.op == Op::kEF || cell.op == Op::kAF || cell.op == Op::kEU)) {
    // A satisfying cut (of q for EU). AF routes that prove kHolds without
    // locating a cut (e.g. af-disjunctive) legitimately omit it.
    if (!r.witness_cut) return cell.op != Op::kEF && cell.op != Op::kEU;
    const Predicate& target = cell.op == Op::kEU ? *cell.until_q : p;
    return c.is_consistent(*r.witness_cut) &&
           target.eval(c, *r.witness_cut);
  }
  if (r.verdict == Verdict::kFails && cell.op == Op::kAG) {
    // A violating cut; optional, but must refute p when present.
    if (!r.witness_cut) return true;
    return c.is_consistent(*r.witness_cut) && !p.eval(c, *r.witness_cut);
  }
  if (r.verdict == Verdict::kHolds && cell.op == Op::kEG) {
    // A path of satisfying cuts when reported.
    for (const Cut& g : r.witness_path)
      if (!c.is_consistent(g) || !p.eval(c, g)) return false;
    return true;
  }
  return true;
}

std::vector<CellOutcome> run_battery(const Computation& c,
                                     const std::vector<BatteryCell>& battery,
                                     const DispatchOptions& opt,
                                     bool stress_only) {
  std::vector<CellOutcome> out;
  for (const BatteryCell& cell : battery) {
    if (stress_only && !cell.stress_safe) continue;
    const DetectResult r = run_cell(c, cell, opt);
    out.push_back({cell.name, cell.expect, r.verdict, r.algorithm,
                   witness_certifies(c, cell, r)});
  }
  return out;
}

std::string golden_document(const Scenario& s, const DispatchOptions& opt) {
  const Computation& c = s.computation;
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "hbct.corpus-golden/1");
  w.kv("scenario", std::string_view(s.name));
  w.key("options");
  w.begin_object();
  w.kv("procs", static_cast<std::int64_t>(s.options.procs));
  w.kv("scale", static_cast<std::int64_t>(s.options.scale));
  w.kv("seed", static_cast<std::uint64_t>(s.options.seed));
  w.end_object();
  w.key("computation");
  w.begin_object();
  w.kv("procs", static_cast<std::int64_t>(c.num_procs()));
  w.kv("events", c.total_events());
  w.kv("messages", c.num_messages());
  w.kv("vars", static_cast<std::int64_t>(c.num_vars()));
  w.end_object();
  w.key("cells");
  w.begin_array();
  for (const BatteryCell& cell : s.battery) {
    const DetectResult r = run_cell(c, cell, opt);
    w.begin_object();
    w.kv("name", std::string_view(cell.name));
    w.kv("op", to_string(cell.op));
    w.kv("predicate", std::string_view(cell.pred->describe()));
    if (cell.until_q)
      w.kv("until", std::string_view(cell.until_q->describe()));
    w.kv("expect", verdict_name(cell.expect));
    w.kv("verdict", verdict_name(r.verdict));
    w.kv("algorithm", std::string_view(r.algorithm));
    w.kv("stress_safe", cell.stress_safe);
    w.kv("witness_ok", witness_certifies(c, cell, r));
    w.key("witness_cut");
    if (r.witness_cut)
      cut_array(w, *r.witness_cut);
    else
      w.raw("null");
    w.kv("witness_path_len",
         static_cast<std::uint64_t>(r.witness_path.size()));
    w.key("stats");
    w.begin_object();
    w.kv("evals", r.stats.predicate_evals);
    w.kv("steps", r.stats.cut_steps);
    w.kv("nodes", r.stats.lattice_nodes);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::string doc = w.take();
  doc.push_back('\n');
  return doc;
}

}  // namespace hbct::corpus
