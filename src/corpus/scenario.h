// Production-shaped scenario corpus with construction-proved verdicts.
//
// Each scenario builds a Computation from a named distributed-systems
// pattern (MPI collectives, a lock-server mutex, ring leader election,
// primary-backup replication) plus a battery of predicate/operator cells
// whose expected verdicts are PROVED by the construction, not observed:
// every `expect` below is justified by a happened-before argument in
// scenarios.cpp, so the battery is ground truth the detector is judged
// against (tests/test_corpus_golden.cpp), not a snapshot of its output.
//
// The same builders parameterize three tiers:
//   golden tier   — small fixed options, canonical JSON under corpus/golden/
//   property tier — round-trip and differential tests sweep options
//   stress tier   — procs >= 128, >= 1M events; only stress_safe cells run
//                   (their planned routes are near-linear in |E|).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "detect/dispatch.h"
#include "poset/computation.h"

namespace hbct::corpus {

struct CorpusOptions {
  /// Total processes, including any coordinator the pattern needs. Builders
  /// clamp to their structural minimum (e.g. the lock server needs >= 3).
  std::int32_t procs = 4;
  /// Rounds / sessions / updates — the per-process event count knob.
  std::int32_t scale = 3;
  /// Seed for the randomized parts (e.g. the election id permutation).
  std::uint64_t seed = 2002;
};

/// One predicate/operator query plus its construction-proved verdict.
struct BatteryCell {
  /// Stable identifier, unique within the scenario; golden files key on it.
  std::string name;
  Op op;
  PredicatePtr pred;
  /// Second operand for kEU/kAU; null otherwise.
  PredicatePtr until_q;
  Verdict expect;
  /// True when the planned route is cheap enough for the stress tier
  /// (near-linear in |E|); quadratic-in-|E| routes stay golden-tier only.
  bool stress_safe = false;
};

struct Scenario {
  std::string name;
  CorpusOptions options;  // the options the builder actually honoured
  Computation computation;
  std::vector<BatteryCell> battery;
};

using ScenarioBuilder = Scenario (*)(const CorpusOptions&);

struct ScenarioSpec {
  const char* name;
  const char* summary;
  ScenarioBuilder build;
};

/// All scenarios in registry order (the order golden files are generated
/// and diffed in).
const std::vector<ScenarioSpec>& scenario_registry();

/// Builds one scenario by registry name; asserts the name exists.
Scenario build_scenario(std::string_view name, const CorpusOptions& opt);

// Individual builders (also reachable through the registry).
Scenario mpi_barrier(const CorpusOptions& opt);
Scenario mpi_alltoall(const CorpusOptions& opt);
Scenario peterson(const CorpusOptions& opt);
Scenario peterson_bug(const CorpusOptions& opt);
Scenario election(const CorpusOptions& opt);
Scenario replication(const CorpusOptions& opt);

}  // namespace hbct::corpus
