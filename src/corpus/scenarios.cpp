// Scenario builders. Every BatteryCell::expect is proved by the
// happened-before structure the builder creates — the comments carry the
// arguments, and tests/test_corpus_golden.cpp holds the detector to them.
#include "corpus/scenario.h"

#include <algorithm>
#include <random>
#include <utility>

#include "poset/builder.h"
#include "predicate/channel.h"
#include "predicate/conjunctive.h"
#include "predicate/disjunctive.h"
#include "predicate/equilevel.h"
#include "predicate/local.h"
#include "predicate/relational.h"
#include "util/assert.h"

namespace hbct::corpus {

namespace {

BatteryCell cell(std::string name, Op op, PredicatePtr p, Verdict expect,
                 bool stress_safe = false) {
  return BatteryCell{std::move(name), op, std::move(p), nullptr, expect,
                     stress_safe};
}

BatteryCell until_cell(std::string name, Op op, PredicatePtr p,
                       PredicatePtr q, Verdict expect) {
  return BatteryCell{std::move(name), op,     std::move(p),
                     std::move(q),    expect, false};
}

/// Conjunction of `var >= k` over procs [first, n).
PredicatePtr all_ge(std::int32_t first, std::int32_t n, const char* var,
                    std::int64_t k) {
  std::vector<LocalPredicatePtr> locals;
  for (ProcId i = first; i < n; ++i)
    locals.push_back(var_cmp(i, var, Cmp::kGe, k));
  return make_conjunctive(std::move(locals));
}

PredicatePtr any_ge(std::int32_t n, const char* var, std::int64_t k) {
  std::vector<LocalPredicatePtr> locals;
  for (ProcId i = 0; i < n; ++i)
    locals.push_back(var_cmp(i, var, Cmp::kGe, k));
  return make_disjunctive(std::move(locals));
}

std::vector<VarRef> var_terms(std::int32_t n, const char* var) {
  std::vector<VarRef> terms;
  for (ProcId i = 0; i < n; ++i) terms.push_back({i, var});
  return terms;
}

PredicatePtr progress_all(std::int32_t n, EventIndex k) {
  std::vector<LocalPredicatePtr> locals;
  for (ProcId i = 0; i < n; ++i) locals.push_back(progress_ge(i, k));
  return make_conjunctive(std::move(locals));
}

}  // namespace

// ---- mpi_barrier ------------------------------------------------------------
//
// Flat fan-in/fan-out barrier, `scale` rounds. Round r: every non-root
// sends a join to root 0; root receives them all, writes phase = r+1 on
// the last join, then sends a release to every non-root, which writes
// phase = r+1 on its receive. Root does 2(n-1) events per round, everyone
// else 2 — deliberately NOT equilevel-shaped for n >= 3.
Scenario mpi_barrier(const CorpusOptions& opt) {
  CorpusOptions o = opt;
  o.procs = std::max<std::int32_t>(2, o.procs);
  o.scale = std::max<std::int32_t>(1, o.scale);
  const std::int32_t n = o.procs;
  const std::int64_t rounds = o.scale;

  ComputationBuilder b(n);
  const VarId phase = b.var("phase");
  for (std::int64_t r = 0; r < rounds; ++r) {
    std::vector<MsgId> joins;
    for (ProcId i = 1; i < n; ++i) {
      joins.push_back(b.send(i, 0));
      b.label(i, "join");
    }
    for (ProcId i = 1; i < n; ++i) b.receive(0, joins[i - 1]);
    b.write(0, phase, r + 1);
    std::vector<MsgId> rels;
    for (ProcId i = 1; i < n; ++i) {
      rels.push_back(b.send(0, i));
      b.label(0, "release");
    }
    for (ProcId i = 1; i < n; ++i) {
      b.receive(i, rels[i - 1]);
      b.write(i, phase, r + 1);
    }
  }

  Scenario s;
  s.name = "mpi_barrier";
  s.options = o;
  s.computation = std::move(b).build();

  // Final cut: phase = rounds everywhere.
  s.battery.push_back(cell("ef-all-phases-final", Op::kEF,
                           all_ge(0, n, "phase", rounds), Verdict::kHolds));
  s.battery.push_back(cell("af-terminated", Op::kAF, make_terminated(),
                           Verdict::kHolds, /*stress_safe=*/true));
  // phase_a = r+1 needs release r, which needs every join r, and proc b's
  // join of round r >= 1 follows its phase = r write: skew is at most 1.
  const ProcId pa = n >= 3 ? 1 : 1;
  const ProcId pb = n >= 3 ? 2 : 0;
  s.battery.push_back(cell(
      "ag-phase-skew-le-1", Op::kAG,
      diff_le({pa, "phase"}, {pb, "phase"}, 1), Verdict::kHolds,
      /*stress_safe=*/true));
  s.battery.push_back(cell("ef-phase-skew-ge-2", Op::kEF,
                           make_not(diff_le({pa, "phase"}, {pb, "phase"}, 1)),
                           Verdict::kFails));
  // One join per round, and the next join follows the round's release,
  // which follows root's receive of this one.
  s.battery.push_back(cell("ag-join-channel-le-1", Op::kAG,
                           channel_bound_le(1, 0, 1), Verdict::kHolds,
                           /*stress_safe=*/true));
  // Consistent cut: proc 1 sent its first join, root received nothing.
  s.battery.push_back(cell("ef-join-in-flight", Op::kEF,
                           channel_bound_ge(1, 0, 1), Verdict::kHolds));
  // The final cut is diagonal only for n == 2 (root does 2(n-1) events per
  // round, everyone else 2), and termination holds nowhere else.
  s.battery.push_back(cell(
      "ef-equilevel-terminated", Op::kEF, make_equilevel(make_terminated()),
      n == 2 ? Verdict::kHolds : Verdict::kFails, /*stress_safe=*/true));
  // Any lattice path leaves the diagonal at its first step when n >= 2.
  s.battery.push_back(cell("eg-equilevel-true", Op::kEG,
                           make_equilevel(make_true()), Verdict::kFails,
                           /*stress_safe=*/true));
  return s;
}

// ---- mpi_alltoall -----------------------------------------------------------
//
// Ring neighbour exchange, `scale` rounds: every proc sends to (i+1) mod n
// and receives from (i-1) mod n, writing rounds = r+1 on the receive.
// Every proc does exactly 2 events per round — the equilevel host.
Scenario mpi_alltoall(const CorpusOptions& opt) {
  CorpusOptions o = opt;
  o.procs = std::max<std::int32_t>(2, o.procs);
  o.scale = std::max<std::int32_t>(1, o.scale);
  const std::int32_t n = o.procs;
  const std::int64_t rounds = o.scale;

  ComputationBuilder b(n);
  const VarId rv = b.var("rounds");
  for (std::int64_t r = 0; r < rounds; ++r) {
    std::vector<MsgId> ms;
    for (ProcId i = 0; i < n; ++i) ms.push_back(b.send(i, (i + 1) % n));
    for (ProcId i = 0; i < n; ++i) {
      b.receive(i, ms[(i + n - 1) % n]);
      b.write(i, rv, r + 1);
    }
  }

  Scenario s;
  s.name = "mpi_alltoall";
  s.options = o;
  s.computation = std::move(b).build();

  // The final cut is the diagonal (2*rounds, ..., 2*rounds).
  s.battery.push_back(cell(
      "ef-equilevel-all-rounds", Op::kEF,
      make_equilevel(all_ge(0, n, "rounds", rounds)), Verdict::kHolds,
      /*stress_safe=*/true));
  // The all-sent diagonal cut (1, ..., 1) is consistent.
  s.battery.push_back(cell("ef-equilevel-all-sent", Op::kEF,
                           make_equilevel(progress_all(n, 1)),
                           Verdict::kHolds, /*stress_safe=*/true));
  s.battery.push_back(cell("ag-equilevel-true", Op::kAG,
                           make_equilevel(make_true()), Verdict::kFails,
                           /*stress_safe=*/true));
  s.battery.push_back(cell("eg-equilevel-true", Op::kEG,
                           make_equilevel(make_true()), Verdict::kFails,
                           /*stress_safe=*/true));
  // rounds_1 = r+1 needs proc 0's round-r send, which follows its round
  // r-1 receive (rounds_0 = r): neighbour skew is at most 1.
  s.battery.push_back(cell("ag-neighbor-skew-le-1", Op::kAG,
                           diff_le({1, "rounds"}, {0, "rounds"}, 1),
                           Verdict::kHolds, /*stress_safe=*/true));
  s.battery.push_back(cell("ef-all-rounds-conj", Op::kEF,
                           all_ge(0, n, "rounds", rounds), Verdict::kHolds));
  s.battery.push_back(cell("ef-any-rounds-disj", Op::kEF,
                           any_ge(n, "rounds", rounds), Verdict::kHolds,
                           /*stress_safe=*/true));
  // Proc 0's round-1 send needs only the ring chain behind it, not proc
  // 1's receive: with >= 2 rounds two messages sit in channel 0 -> 1.
  s.battery.push_back(cell(
      "ag-channel-window-le-1", Op::kAG, channel_bound_le(0, 1, 1),
      rounds >= 2 ? Verdict::kFails : Verdict::kHolds, /*stress_safe=*/true));
  s.battery.push_back(cell("ef-channel-2-in-flight", Op::kEF,
                           channel_bound_ge(0, 1, 2),
                           rounds >= 2 ? Verdict::kHolds : Verdict::kFails));
  s.battery.push_back(cell("af-terminated", Op::kAF, make_terminated(),
                           Verdict::kHolds, /*stress_safe=*/true));
  s.battery.push_back(
      cell("ef-sum-total", Op::kEF,
           sum_ge(var_terms(n, "rounds"), std::int64_t{n} * rounds),
           Verdict::kHolds));
  return s;
}

// ---- peterson / peterson_bug ------------------------------------------------
//
// Mutual exclusion through a serializing lock server (the last proc).
// Contender i, session s: send req -> recv grant (cs = 1) -> send release
// (cs = 0). The server interleaves nothing: it receives the release of
// each grant before issuing the next, so any cut with cs_j = 1 includes
// every earlier holder's cs = 0 write (their release happened-before this
// grant), and the next grant to anyone else happens-after cs_j = 0.
// peterson_bug drops that wait once — in session 0 the server grants
// contender 1 without collecting contender 0's release.
namespace {

Scenario lock_server(const CorpusOptions& opt, bool buggy) {
  CorpusOptions o = opt;
  o.procs = std::max<std::int32_t>(3, o.procs);
  o.scale = std::max<std::int32_t>(1, o.scale);
  const std::int32_t n = o.procs;
  const ProcId srv = n - 1;
  const std::int32_t contenders = n - 1;
  const std::int64_t sessions = o.scale;

  ComputationBuilder b(n);
  const VarId cs = b.var("cs");

  const auto serial_session = [&](ProcId i) {
    const MsgId req = b.send(i, srv);
    b.label(i, "req");
    b.receive(srv, req);
    const MsgId grant = b.send(srv, i);
    b.label(srv, "grant");
    b.receive(i, grant);
    b.write(i, cs, 1);
    const MsgId rel = b.send(i, srv);
    b.write(i, cs, 0);
    b.label(i, "release");
    b.receive(srv, rel);
  };

  for (std::int64_t sess = 0; sess < sessions; ++sess) {
    if (buggy && sess == 0) {
      // Both grants issued before any release is collected.
      const MsgId req0 = b.send(0, srv);
      b.receive(srv, req0);
      const MsgId req1 = b.send(1, srv);
      b.receive(srv, req1);
      const MsgId g0 = b.send(srv, 0);
      const MsgId g1 = b.send(srv, 1);
      b.receive(0, g0);
      b.write(0, cs, 1);
      b.receive(1, g1);
      b.write(1, cs, 1);
      const MsgId r0 = b.send(0, srv);
      b.write(0, cs, 0);
      b.receive(srv, r0);
      const MsgId r1 = b.send(1, srv);
      b.write(1, cs, 0);
      b.receive(srv, r1);
      for (ProcId i = 2; i < contenders; ++i) serial_session(i);
    } else {
      for (ProcId i = 0; i < contenders; ++i) serial_session(i);
    }
  }

  Scenario s;
  s.name = buggy ? "peterson_bug" : "peterson";
  s.options = o;
  s.computation = std::move(b).build();

  const Verdict both = buggy ? Verdict::kHolds : Verdict::kFails;
  const Verdict mutex = buggy ? Verdict::kFails : Verdict::kHolds;
  s.battery.push_back(
      cell("ef-both-in-cs", Op::kEF,
           make_conjunctive({var_cmp(0, "cs", Cmp::kEq, 1),
                             var_cmp(1, "cs", Cmp::kEq, 1)}),
           both));
  s.battery.push_back(
      cell("ag-mutex", Op::kAG,
           make_disjunctive({var_cmp(0, "cs", Cmp::kEq, 0),
                             var_cmp(1, "cs", Cmp::kEq, 0)}),
           mutex));
  // The canonical order grants contender 0 before contender 1 ever enters.
  s.battery.push_back(until_cell("eu-cs0-before-cs1", Op::kEU,
                                 var_cmp(1, "cs", Cmp::kEq, 0),
                                 var_cmp(0, "cs", Cmp::kEq, 1),
                                 Verdict::kHolds));
  s.battery.push_back(cell("ef-cs0", Op::kEF, var_cmp(0, "cs", Cmp::kEq, 1),
                           Verdict::kHolds, /*stress_safe=*/true));
  s.battery.push_back(cell("af-terminated", Op::kAF, make_terminated(),
                           Verdict::kHolds, /*stress_safe=*/true));
  return s;
}

}  // namespace

Scenario peterson(const CorpusOptions& opt) {
  return lock_server(opt, /*buggy=*/false);
}

Scenario peterson_bug(const CorpusOptions& opt) {
  return lock_server(opt, /*buggy=*/true);
}

// ---- election ---------------------------------------------------------------
//
// Chang–Roberts on a unidirectional ring with a seed-shuffled id
// permutation. Every proc launches its id clockwise; a token survives a
// hop only if it beats the receiver's id; the maximum id returns to its
// owner, which writes elected = 1 and floods leader_id around the ring.
// `scale` prepends internal "work" events so the knob still grows |E|.
Scenario election(const CorpusOptions& opt) {
  CorpusOptions o = opt;
  o.procs = std::max<std::int32_t>(2, o.procs);
  o.scale = std::max<std::int32_t>(0, o.scale);
  const std::int32_t n = o.procs;

  std::vector<std::int64_t> id(n);
  for (std::int32_t i = 0; i < n; ++i) id[i] = i + 1;
  std::mt19937_64 rng(o.seed);
  std::shuffle(id.begin(), id.end(), rng);
  const ProcId leader = static_cast<ProcId>(
      std::max_element(id.begin(), id.end()) - id.begin());
  const std::int64_t max_id = id[leader];

  ComputationBuilder b(n);
  const VarId elected = b.var("elected");
  const VarId leader_id = b.var("leader_id");
  for (std::int64_t r = 0; r < o.scale; ++r)
    for (ProcId i = 0; i < n; ++i) b.internal(i);

  struct Token {
    std::int64_t id;
    ProcId at;
    MsgId msg;
  };
  std::vector<Token> toks;
  for (ProcId i = 0; i < n; ++i) toks.push_back({id[i], i, -1});
  while (!toks.empty()) {
    for (Token& t : toks) {
      t.msg = b.send(t.at, (t.at + 1) % n);
      t.at = (t.at + 1) % n;
    }
    std::vector<Token> live;
    for (Token& t : toks) {
      b.receive(t.at, t.msg);
      if (t.id == id[t.at]) {
        b.write(t.at, elected, 1);
        b.write(t.at, leader_id, t.id);
      } else if (t.id > id[t.at]) {
        live.push_back(t);
      }
    }
    toks = std::move(live);
  }
  // Leader floods the result once around the ring; the hop before the
  // leader stops the token.
  MsgId ann = b.send(leader, (leader + 1) % n);
  for (ProcId at = (leader + 1) % n; at != leader; at = (at + 1) % n) {
    b.receive(at, ann);
    b.write(at, leader_id, max_id);
    if ((at + 1) % n != leader) ann = b.send(at, (at + 1) % n);
  }

  Scenario s;
  s.name = "election";
  s.options = o;
  s.computation = std::move(b).build();

  s.battery.push_back(cell("ef-leader-elected", Op::kEF,
                           var_cmp(leader, "elected", Cmp::kEq, 1),
                           Verdict::kHolds, /*stress_safe=*/true));
  // elected is written by the unique maximum's owner only.
  s.battery.push_back(cell("ag-at-most-one-leader", Op::kAG,
                           sum_le(var_terms(n, "elected"), 1),
                           Verdict::kHolds, /*stress_safe=*/true));
  s.battery.push_back(cell("ef-two-leaders", Op::kEF,
                           sum_ge(var_terms(n, "elected"), 2),
                           Verdict::kFails));
  s.battery.push_back(cell("af-all-learn-leader", Op::kAF,
                           all_ge(0, n, "leader_id", max_id),
                           Verdict::kHolds));
  s.battery.push_back(cell("af-terminated", Op::kAF, make_terminated(),
                           Verdict::kHolds, /*stress_safe=*/true));
  return s;
}

// ---- replication ------------------------------------------------------------
//
// Primary-backup with a one-update ack window. Update u (1-based):
// primary logs u, broadcasts, each backup applies u and acks, primary
// commits u on the last ack. The window bounds every skew the battery
// asserts: log leads applied by <= 1, applied leads committed by <= 1,
// committed never leads applied.
Scenario replication(const CorpusOptions& opt) {
  CorpusOptions o = opt;
  o.procs = std::max<std::int32_t>(2, o.procs);
  o.scale = std::max<std::int32_t>(1, o.scale);
  const std::int32_t n = o.procs;
  const std::int64_t updates = o.scale;

  ComputationBuilder b(n);
  const VarId log_v = b.var("log");
  const VarId applied = b.var("applied");
  const VarId committed = b.var("committed");
  for (std::int64_t u = 1; u <= updates; ++u) {
    b.internal(0);
    b.write(0, log_v, u);
    std::vector<MsgId> ups, acks;
    for (ProcId i = 1; i < n; ++i) ups.push_back(b.send(0, i));
    for (ProcId i = 1; i < n; ++i) {
      b.receive(i, ups[i - 1]);
      b.write(i, applied, u);
      acks.push_back(b.send(i, 0));
    }
    for (ProcId i = 1; i < n; ++i) b.receive(0, acks[i - 1]);
    b.write(0, committed, u);
  }

  Scenario s;
  s.name = "replication";
  s.options = o;
  s.computation = std::move(b).build();

  s.battery.push_back(cell("ag-log-lead-le-1", Op::kAG,
                           diff_le({0, "log"}, {1, "applied"}, 1),
                           Verdict::kHolds, /*stress_safe=*/true));
  s.battery.push_back(cell("ag-applied-lead-le-1", Op::kAG,
                           diff_le({1, "applied"}, {0, "committed"}, 1),
                           Verdict::kHolds, /*stress_safe=*/true));
  s.battery.push_back(cell("ag-committed-le-applied", Op::kAG,
                           diff_le({0, "committed"}, {1, "applied"}, 0),
                           Verdict::kHolds, /*stress_safe=*/true));
  s.battery.push_back(cell("ef-all-applied", Op::kEF,
                           all_ge(1, n, "applied", updates),
                           Verdict::kHolds));
  s.battery.push_back(cell("ef-over-commit", Op::kEF,
                           sum_ge({{0, "committed"}}, updates + 1),
                           Verdict::kFails));
  s.battery.push_back(cell("ag-update-channel-le-1", Op::kAG,
                           channel_bound_le(0, 1, 1), Verdict::kHolds,
                           /*stress_safe=*/true));
  s.battery.push_back(cell("af-terminated", Op::kAF, make_terminated(),
                           Verdict::kHolds, /*stress_safe=*/true));
  return s;
}

// ---- registry ---------------------------------------------------------------

const std::vector<ScenarioSpec>& scenario_registry() {
  static const std::vector<ScenarioSpec> kRegistry = {
      {"mpi_barrier", "flat fan-in/fan-out barrier, root-coordinated",
       &mpi_barrier},
      {"mpi_alltoall", "ring neighbour exchange, uniform event counts",
       &mpi_alltoall},
      {"peterson", "lock-server mutual exclusion, serialized grants",
       &peterson},
      {"peterson_bug", "lock-server mutex with one lost release wait",
       &peterson_bug},
      {"election", "Chang-Roberts ring election, shuffled ids", &election},
      {"replication", "primary-backup with a one-update ack window",
       &replication},
  };
  return kRegistry;
}

Scenario build_scenario(std::string_view name, const CorpusOptions& opt) {
  for (const ScenarioSpec& spec : scenario_registry())
    if (name == spec.name) return spec.build(opt);
  HBCT_ASSERT_MSG(false, "unknown corpus scenario");
}

}  // namespace hbct::corpus
