// Golden-verdict rendering for the scenario corpus.
//
// golden_document() runs every battery cell of a scenario through detect()
// and renders the outcome as one canonical JSON document (schema
// "hbct.corpus-golden/1"): fixed key order, integers only, sorted nothing —
// byte-identical across runs, platforms and ingestion paths, so the files
// under corpus/golden/ can be committed and diffed verbatim.
//
// Beyond the verdict the document pins, per cell:
//   - the algorithm string (dispatch routing is part of the contract),
//   - the witness cut / path length, plus `witness_ok` — the witness is
//     re-checked against the computation (consistent, predicate agrees),
//     so a detector returning the right verdict with a bogus witness
//     still diffs,
//   - the deterministic work counters (evals, steps, lattice nodes).
#pragma once

#include <string>
#include <vector>

#include "corpus/scenario.h"

namespace hbct::corpus {

/// One executed battery cell, for programmatic (non-JSON) consumers such
/// as the stress tier's verdict-diff artifact.
struct CellOutcome {
  std::string name;
  Verdict expect;
  Verdict got;
  std::string algorithm;
  bool witness_ok = true;
};

/// Re-derives whether the result's witness actually certifies the verdict
/// on `c` (consistency plus predicate agreement; vacuously true for
/// verdict/op combinations that carry no witness).
bool witness_certifies(const Computation& c, const BatteryCell& cell,
                       const DetectResult& r);

/// Runs the battery (all cells, or only the stress-safe ones) against the
/// scenario's computation. `opt` is copied per cell; its budget applies to
/// each cell separately.
std::vector<CellOutcome> run_battery(const Computation& c,
                                     const std::vector<BatteryCell>& battery,
                                     const DispatchOptions& opt = {},
                                     bool stress_only = false);

/// Canonical golden document for the scenario (trailing newline included).
std::string golden_document(const Scenario& s,
                            const DispatchOptions& opt = {});

}  // namespace hbct::corpus
