// Multi-tenant streaming detection: many concurrent executions, each its own
// Session (OnlineMonitor + wire decoder + prefix GC), multiplexed onto the
// shared ThreadPool.
//
// Concurrency model — actor per session:
//  - The session table is sharded; each shard has its own mutex, so opening
//    and looking up sessions scales with the shard count.
//  - post() enqueues a chunk into the session's inbox and, if no pump task
//    is in flight for that session, schedules one on the pool. The pump
//    drains the inbox one chunk at a time under the session's own mutex and
//    unschedules itself when the inbox is empty. At most one pump per
//    session runs at a time, so a Session never sees concurrent access, but
//    distinct sessions drain fully in parallel.
//  - A malformed stream fails only its own session; the service, the pool
//    and every other session keep running.
//
// Observability: serve.* counters/gauges/histograms in the tracer's metrics
// registry (or the global one), plus a "serve.ingest" span per drained chunk.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/trace.h"
#include "serve/session.h"
#include "util/thread_pool.h"

namespace hbct {
namespace serve {

struct ServiceOptions {
  /// Shards spreading the session-table mutexes; <= 0 picks a default.
  std::int32_t num_shards = 0;
  /// Pool running ingest work; nullptr uses ThreadPool::shared().
  ThreadPool* pool = nullptr;
  /// Receives "serve.ingest" / "monitor.gc" spans; its metrics registry
  /// takes the serve.* metrics. nullptr = no spans, global registry.
  Tracer* trace = nullptr;
  /// Raw fire-latency sink forwarded to every session's FireInstruments
  /// (exact ns per fire, pre-histogram-quantization). Shared across all
  /// sessions and called on pump threads — must be thread-safe. Benches
  /// use it for true percentiles; leave null in production.
  std::function<void(WatchKind, std::uint64_t)> fire_sample;
  /// Also register per-session labeled series (serve.records{session="N"},
  /// serve.fires{session="N"}, serve.resident_events{session="N"}). Off by
  /// default: label cardinality grows with every session ever opened, which
  /// is fine for a debugging run and wrong for a long-lived deployment. The
  /// per-watch-class series are bounded and therefore always on.
  bool per_session_metrics = false;
};

class StreamingService {
 public:
  explicit StreamingService(ServiceOptions opt = {});
  ~StreamingService();  // drains in-flight ingest work

  /// Opens a session. `setup` registers watches on the fresh monitor before
  /// any event can arrive (required: scanning watches must precede GC).
  SessionId open(const SessionConfig& cfg,
                 const std::function<void(OnlineMonitor&)>& setup = {});

  /// Queues raw wire bytes for the session and schedules a drain. Chunks
  /// may split records anywhere; per-session order is the post order.
  /// False if the session does not exist.
  bool post(SessionId sid, std::string bytes);
  /// Encode-and-post convenience for in-process producers.
  bool post(SessionId sid, const wire::Record& r);
  /// Queues end-of-stream (a kEnd record) for the session.
  bool finish(SessionId sid);

  /// Blocks until every queued chunk across all sessions has been applied.
  void drain();

  /// Drains the session's accumulated watch fires.
  std::vector<WatchFire> poll(SessionId sid);
  SessionStats stats(SessionId sid) const;
  SessionState state(SessionId sid) const;
  /// For failed sessions: the reason. Empty otherwise (or if absent).
  std::string error(SessionId sid) const;
  /// Removes the session; false if absent.
  bool close(SessionId sid);

  std::size_t num_sessions() const;
  /// Events currently resident across all live sessions.
  std::int64_t resident_events() const;

 private:
  struct Entry {
    std::mutex mu;
    Session session;
    std::deque<std::string> inbox;
    bool scheduled = false;          // a pump task is queued or running
    std::int64_t gauged_resident = 0;  // last value folded into the gauge
    std::int64_t gauged_watch_bytes = 0;  // ditto, serve.watch_state.bytes
    // Per-session labeled series; null unless per_session_metrics.
    Counter* s_records = nullptr;
    Counter* s_fires = nullptr;
    Gauge* s_resident = nullptr;

    Entry(SessionId id, const SessionConfig& cfg) : session(id, cfg) {}
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<SessionId, std::shared_ptr<Entry>> sessions;
  };

  Shard& shard_of(SessionId sid) const;
  std::shared_ptr<Entry> find(SessionId sid) const;
  void pump(const std::shared_ptr<Entry>& e);
  /// Folds the session's stats delta into the service-wide metrics.
  void absorb(Entry& e, const SessionStats& before, const SessionStats& after);

  ServiceOptions opt_;
  ThreadPool* pool_;
  Tracer* trace_;
  mutable std::vector<Shard> shards_;
  std::atomic<SessionId> next_id_{1};

  Counter* records_;
  Counter* events_;
  Counter* fires_;
  Counter* failures_;
  Counter* gc_rounds_;
  Counter* gc_reclaimed_;
  Counter* opened_;
  Counter* closed_;
  Gauge* open_sessions_;
  Gauge* resident_;
  Gauge* resident_peak_;
  Gauge* watch_state_;
  Gauge* watch_state_peak_;
  Counter* until_inc_;
  Counter* until_dec_;
  Histogram* ingest_ns_;
  Histogram* fire_ns_;
  /// Per-watch-class series (serve.fires{class=...} and
  /// serve.fire_latency.ns{class=...}), indexed by WatchKind. Bounded
  /// cardinality, always registered.
  Session::FireInstruments fire_inst_;
  MetricsRegistry* reg_;
};

}  // namespace serve
}  // namespace hbct
