#include "serve/service.h"

#include <chrono>
#include <utility>

#include "obs/expose.h"
#include "obs/flight.h"
#include "util/assert.h"

namespace hbct {
namespace serve {

namespace {

std::int32_t default_shards() {
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<std::int32_t>(hw < 4 ? 4 : hw);
}

}  // namespace

StreamingService::StreamingService(ServiceOptions opt)
    : opt_(opt),
      pool_(opt.pool != nullptr ? opt.pool : &ThreadPool::shared()),
      trace_(opt.trace),
      shards_(static_cast<std::size_t>(
          opt.num_shards > 0 ? opt.num_shards : default_shards())) {
  MetricsRegistry& reg =
      trace_ != nullptr ? trace_->metrics() : MetricsRegistry::global();
  records_ = &reg.counter("serve.records");
  events_ = &reg.counter("serve.events");
  fires_ = &reg.counter("serve.fires");
  failures_ = &reg.counter("serve.session_failures");
  gc_rounds_ = &reg.counter("serve.gc.rounds");
  gc_reclaimed_ = &reg.counter("serve.gc.reclaimed_events");
  opened_ = &reg.counter("serve.sessions_opened");
  closed_ = &reg.counter("serve.sessions_closed");
  open_sessions_ = &reg.gauge("serve.open_sessions");
  resident_ = &reg.gauge("serve.resident_events");
  resident_peak_ = &reg.gauge("serve.resident_events.peak");
  watch_state_ = &reg.gauge("serve.watch_state.bytes");
  watch_state_peak_ = &reg.gauge("serve.watch_state.bytes.peak");
  until_inc_ = &reg.counter("serve.until.inc_evals");
  until_dec_ = &reg.counter("serve.until.dec_evals");
  ingest_ns_ = &reg.histogram("serve.ingest.ns");
  fire_ns_ = &reg.histogram("serve.fire_latency.ns");
  reg_ = &reg;
  fire_inst_.latency = fire_ns_;
  fire_inst_.raw_sample = opt_.fire_sample;
  for (std::size_t k = 0; k < Session::kNumWatchKinds; ++k) {
    const char* cls = to_string(static_cast<WatchKind>(k));
    fire_inst_.class_fires[k] =
        &reg.counter(labeled("serve.fires", "class", cls));
    fire_inst_.class_latency[k] =
        &reg.histogram(labeled("serve.fire_latency.ns", "class", cls));
  }
}

StreamingService::~StreamingService() {
  // Pump tasks capture `this` (for metrics); make sure none outlive us.
  pool_->wait_idle();
}

StreamingService::Shard& StreamingService::shard_of(SessionId sid) const {
  return shards_[static_cast<std::size_t>(sid) % shards_.size()];
}

std::shared_ptr<StreamingService::Entry> StreamingService::find(
    SessionId sid) const {
  Shard& sh = shard_of(sid);
  std::lock_guard<std::mutex> lk(sh.mu);
  auto it = sh.sessions.find(sid);
  return it == sh.sessions.end() ? nullptr : it->second;
}

SessionId StreamingService::open(
    const SessionConfig& cfg,
    const std::function<void(OnlineMonitor&)>& setup) {
  HBCT_ASSERT_MSG(cfg.num_procs > 0, "session needs at least one process");
  SessionConfig c = cfg;
  if (c.budget.trace == nullptr) c.budget.trace = trace_;
  const SessionId sid = next_id_.fetch_add(1, std::memory_order_relaxed);
  auto entry = std::make_shared<Entry>(sid, c);
  entry->session.set_fire_instruments(fire_inst_);
  if (opt_.per_session_metrics) {
    const std::string s = std::to_string(sid);
    entry->s_records = &reg_->counter(labeled("serve.records", "session", s));
    entry->s_fires = &reg_->counter(labeled("serve.fires", "session", s));
    entry->s_resident =
        &reg_->gauge(labeled("serve.resident_events", "session", s));
  }
  if (setup) setup(entry->session.monitor());
  Shard& sh = shard_of(sid);
  {
    std::lock_guard<std::mutex> lk(sh.mu);
    sh.sessions.emplace(sid, std::move(entry));
  }
  opened_->add(1);
  open_sessions_->add(1);
  return sid;
}

bool StreamingService::post(SessionId sid, std::string bytes) {
  auto e = find(sid);
  if (e == nullptr) return false;
  bool schedule = false;
  {
    std::lock_guard<std::mutex> lk(e->mu);
    e->inbox.push_back(std::move(bytes));
    if (!e->scheduled) {
      e->scheduled = true;
      schedule = true;
    }
  }
  if (schedule) pool_->submit([this, e] { pump(e); });
  return true;
}

bool StreamingService::post(SessionId sid, const wire::Record& r) {
  std::string bytes;
  wire::encode_record(bytes, r);
  return post(sid, std::move(bytes));
}

bool StreamingService::finish(SessionId sid) {
  wire::Record end;
  end.kind = wire::Record::Kind::kEnd;
  return post(sid, end);
}

void StreamingService::absorb(Entry& e, const SessionStats& before,
                              const SessionStats& after) {
  records_->add(static_cast<std::uint64_t>(after.records - before.records));
  events_->add(static_cast<std::uint64_t>(after.events - before.events));
  fires_->add(static_cast<std::uint64_t>(after.fires - before.fires));
  gc_rounds_->add(
      static_cast<std::uint64_t>(after.gc_rounds - before.gc_rounds));
  gc_reclaimed_->add(static_cast<std::uint64_t>(after.reclaimed_events -
                                                before.reclaimed_events));
  if (before.state != SessionState::kFailed &&
      after.state == SessionState::kFailed) {
    failures_->add(1);
  }
  resident_->add(after.resident_events - e.gauged_resident);
  e.gauged_resident = after.resident_events;
  resident_peak_->max_of(resident_->value());
  watch_state_->add(after.watch_state_bytes - e.gauged_watch_bytes);
  e.gauged_watch_bytes = after.watch_state_bytes;
  watch_state_peak_->max_of(watch_state_->value());
  until_inc_->add(
      static_cast<std::uint64_t>(after.until_inc_evals - before.until_inc_evals));
  until_dec_->add(
      static_cast<std::uint64_t>(after.until_dec_evals - before.until_dec_evals));
  if (e.s_records != nullptr) {
    e.s_records->add(static_cast<std::uint64_t>(after.records - before.records));
    e.s_fires->add(static_cast<std::uint64_t>(after.fires - before.fires));
    e.s_resident->set(after.resident_events);
  }
}

void StreamingService::pump(const std::shared_ptr<Entry>& e) {
  for (;;) {
    std::string chunk;
    {
      std::lock_guard<std::mutex> lk(e->mu);
      if (e->inbox.empty()) {
        e->scheduled = false;
        return;
      }
      chunk = std::move(e->inbox.front());
      e->inbox.pop_front();
    }
    // Apply outside the inbox-pop critical section conceptually, but under
    // the same mutex: only this pump touches the Session (the `scheduled`
    // flag guarantees a single pump per session), while post() may briefly
    // hold the mutex to enqueue the next chunk.
    std::lock_guard<std::mutex> lk(e->mu);
    ScopedSpan span(trace_, "serve.ingest");
    static const std::uint16_t kIngest = FlightRecorder::global().intern(
        "serve.ingest", "session", "records");
    FlightScope flight(FlightRecorder::global(), kIngest, e->session.id());
    const auto t0 = std::chrono::steady_clock::now();
    const SessionStats before = e->session.stats();
    const std::size_t nrec = e->session.ingest(chunk);
    const SessionStats after = e->session.stats();
    const auto dt = std::chrono::steady_clock::now() - t0;
    ingest_ns_->record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()));
    absorb(*e, before, after);
    span.arg("session", e->session.id());
    span.arg("records", static_cast<std::int64_t>(nrec));
    flight.args(e->session.id(), static_cast<std::int64_t>(nrec));
  }
}

void StreamingService::drain() { pool_->wait_idle(); }

std::vector<WatchFire> StreamingService::poll(SessionId sid) {
  auto e = find(sid);
  if (e == nullptr) return {};
  std::lock_guard<std::mutex> lk(e->mu);
  return e->session.poll();
}

SessionStats StreamingService::stats(SessionId sid) const {
  auto e = find(sid);
  if (e == nullptr) return {};
  std::lock_guard<std::mutex> lk(e->mu);
  return e->session.stats();
}

SessionState StreamingService::state(SessionId sid) const {
  auto e = find(sid);
  if (e == nullptr) return SessionState::kFailed;
  std::lock_guard<std::mutex> lk(e->mu);
  return e->session.state();
}

std::string StreamingService::error(SessionId sid) const {
  auto e = find(sid);
  if (e == nullptr) return {};
  std::lock_guard<std::mutex> lk(e->mu);
  return e->session.error();
}

bool StreamingService::close(SessionId sid) {
  std::shared_ptr<Entry> e;
  {
    Shard& sh = shard_of(sid);
    std::lock_guard<std::mutex> lk(sh.mu);
    auto it = sh.sessions.find(sid);
    if (it == sh.sessions.end()) return false;
    e = std::move(it->second);
    sh.sessions.erase(it);
  }
  {
    std::lock_guard<std::mutex> lk(e->mu);
    resident_->add(-e->gauged_resident);
    e->gauged_resident = 0;
    watch_state_->add(-e->gauged_watch_bytes);
    e->gauged_watch_bytes = 0;
    if (e->s_resident != nullptr) e->s_resident->set(0);
  }
  closed_->add(1);
  open_sessions_->add(-1);
  return true;
}

std::size_t StreamingService::num_sessions() const {
  std::size_t n = 0;
  for (const Shard& sh : shards_) {
    std::lock_guard<std::mutex> lk(sh.mu);
    n += sh.sessions.size();
  }
  return n;
}

std::int64_t StreamingService::resident_events() const {
  std::int64_t n = 0;
  for (const Shard& sh : shards_) {
    std::vector<std::shared_ptr<Entry>> entries;
    {
      std::lock_guard<std::mutex> lk(sh.mu);
      entries.reserve(sh.sessions.size());
      for (const auto& [sid, e] : sh.sessions) entries.push_back(e);
    }
    for (const auto& e : entries) {
      std::lock_guard<std::mutex> lk(e->mu);
      n += e->session.stats().resident_events;
    }
  }
  return n;
}

}  // namespace serve
}  // namespace hbct
