#include "serve/session.h"

#include <chrono>
#include <utility>

#include "obs/flight.h"
#include "predicate/conjunctive.h"
#include "predicate/disjunctive.h"
#include "util/assert.h"

namespace hbct {
namespace serve {

const char* to_string(SessionState s) {
  switch (s) {
    case SessionState::kOpen: return "open";
    case SessionState::kFinished: return "finished";
    case SessionState::kFailed: return "failed";
  }
  return "?";
}

Session::Session(SessionId id, const SessionConfig& cfg)
    : id_(id), cfg_(cfg), mon_(cfg.num_procs) {
  mon_.set_budget(cfg_.budget);
}

WatchId Session::watch_query(const ctl::Query& query, OptimizeMode mode) {
  ctl::Query q = query;
  PredicatePtr p;
  PredicatePtr qpred;
  if (mode != OptimizeMode::kOff) {
    // Cached: sessions register on an empty computation, so the analysis
    // outcome is shared across every session opened on the same formula.
    ctl::OptimizeOutcome o = ctl::optimize_query_cached(mon_.computation(), q);
    if (mode == OptimizeMode::kApply && o.query.temporal &&
        o.query.p != nullptr) {
      q = o.query;
      p = o.p;
      qpred = o.q;
    }
    // else: keep the as-written form. In particular, costable-collapse on
    // the empty registration-time computation is vacuous (every predicate
    // probes down-closed/stable with zero events) and its non-temporal
    // residue says nothing about the events this watch will observe.
  }
  if (!q.temporal || q.p == nullptr) return -1;
  if (p == nullptr) {
    ctl::CompileResult cp = ctl::compile_state(q.p);
    if (!cp.ok) return -1;
    p = cp.pred;
  }
  if ((q.op == Op::kEU || q.op == Op::kAU) && qpred == nullptr) {
    if (q.q == nullptr) return -1;
    ctl::CompileResult cq = ctl::compile_state(q.q);
    if (!cq.ok) return -1;
    qpred = cq.pred;
  }
  switch (q.op) {
    case Op::kEF:
      if (ConjunctivePredicatePtr conj = as_conjunctive(p))
        return mon_.watch_possibly(conj);
      if (DisjunctivePredicatePtr disj = as_disjunctive(p))
        return mon_.watch_possibly(disj);
      return -1;
    case Op::kAG:
      if (DisjunctivePredicatePtr disj = as_disjunctive(p))
        return mon_.watch_invariant(disj);
      return -1;
    case Op::kEU:
      if (ConjunctivePredicatePtr conj = as_conjunctive(p))
        return mon_.watch_until(conj, qpred);
      return -1;
    default:
      return -1;
  }
}

bool Session::fail(std::string msg) {
  if (state_ != SessionState::kFailed) {
    state_ = SessionState::kFailed;
    error_ = std::move(msg);
    stats_.state = state_;
    // Session isolation kicking in (malformed stream, decode error, append
    // rejection) is an anomaly worth a flight-recorder window: the dump
    // shows what the service was doing when the bad stream arrived.
    static const std::uint16_t kFail = FlightRecorder::global().intern(
        "serve.session_fail", "session", "records");
    FlightRecorder::global().anomaly(kFail, id_, stats_.records);
  }
  return false;
}

void Session::after_event() {
  ++stats_.events;
  if (cfg_.gc_interval_events > 0 && ++since_gc_ >= cfg_.gc_interval_events) {
    since_gc_ = 0;
    collect();
  }
}

bool Session::apply(const wire::Record& r) {
  using Kind = wire::Record::Kind;
  if (state_ == SessionState::kFailed) return false;
  if (state_ == SessionState::kFinished)
    return fail("record after end of stream");

  const auto feed = [&](AppendError e, const char* what) {
    if (e == AppendError::kNone) return true;
    return fail(std::string(what) + ": " + to_string(e));
  };
  // Writes trail their event record; labels never affect verdicts and are
  // dropped on ingestion.
  const auto tail = [&](const wire::Record& rec) {
    for (const auto& w : rec.writes) {
      if (w.var >= vars_.size()) return fail("write to unregistered variable");
      if (!feed(mon_.try_write(rec.proc, vars_[w.var], w.value), "write"))
        return false;
    }
    return true;
  };

  const std::size_t fired_before = fires_.size();
  std::chrono::steady_clock::time_point t0;
  if (time_fires_) t0 = std::chrono::steady_clock::now();

  switch (r.kind) {
    case Kind::kProcs:
      if (r.nprocs != cfg_.num_procs)
        return fail("stream declares a different process count");
      break;
    case Kind::kVar:
      vars_.push_back(mon_.var(r.name));
      break;
    case Kind::kInit:
      if (r.var >= vars_.size()) return fail("init of unregistered variable");
      if (!feed(mon_.try_set_initial(r.proc, vars_[r.var], r.value), "init"))
        return false;
      break;
    case Kind::kInternal:
      if (!feed(mon_.try_internal(r.proc), "internal")) return false;
      after_event();
      if (!tail(r)) return false;
      break;
    case Kind::kSend: {
      if (msgs_.count(r.msg) != 0) return fail("duplicate in-flight msg id");
      MsgId m = kNoMsg;
      if (!feed(mon_.try_send(r.proc, r.peer, &m), "send")) return false;
      msgs_.emplace(r.msg, m);
      after_event();
      if (!tail(r)) return false;
      break;
    }
    case Kind::kRecv: {
      auto it = msgs_.find(r.msg);
      if (it == msgs_.end()) return fail("recv of unsent or delivered msg id");
      if (!feed(mon_.try_receive(r.proc, it->second), "recv")) return false;
      msgs_.erase(it);
      after_event();
      if (!tail(r)) return false;
      break;
    }
    case Kind::kEnd:
      finish();
      break;
  }

  ++stats_.records;
  auto fired = mon_.poll();
  if (!fired.empty()) {
    stats_.fires += static_cast<std::int64_t>(fired.size());
    fires_.insert(fires_.end(), std::make_move_iterator(fired.begin()),
                  std::make_move_iterator(fired.end()));
    if (fires_.size() > fired_before) {
      // Fire latency: time from the record's arrival to the fire becoming
      // observable. Recorded once in the combined histogram and once per
      // firing class (the same apply produced them all).
      std::uint64_t ns = 0;
      if (time_fires_) {
        const auto dt = std::chrono::steady_clock::now() - t0;
        ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count());
        if (inst_.latency != nullptr) inst_.latency->record(ns);
      }
      for (std::size_t i = fired_before; i < fires_.size(); ++i) {
        const std::size_t k = static_cast<std::size_t>(fires_[i].kind);
        if (k >= kNumWatchKinds) continue;
        if (inst_.class_fires[k] != nullptr) inst_.class_fires[k]->add(1);
        if (time_fires_ && inst_.class_latency[k] != nullptr)
          inst_.class_latency[k]->record(ns);
        if (time_fires_ && inst_.raw_sample)
          inst_.raw_sample(fires_[i].kind, ns);
      }
    }
  }
  return true;
}

std::size_t Session::ingest(std::string_view bytes) {
  if (state_ == SessionState::kFailed) return 0;
  dec_.feed(bytes);
  std::size_t applied = 0;
  wire::Record r;
  for (;;) {
    switch (dec_.next(&r)) {
      case wire::Decoder::Status::kRecord:
        if (!apply(r)) return applied;
        ++applied;
        break;
      case wire::Decoder::Status::kNeedMore:
        return applied;
      case wire::Decoder::Status::kError:
        fail("decode: " + dec_.error());
        return applied;
    }
  }
}

void Session::finish() {
  if (state_ != SessionState::kOpen) return;
  mon_.finish();
  state_ = SessionState::kFinished;
  stats_.state = state_;
}

std::vector<WatchFire> Session::poll() {
  auto fired = mon_.poll();
  if (!fired.empty()) {
    stats_.fires += static_cast<std::int64_t>(fired.size());
    // Registration-time fires (no triggering record, hence no latency
    // sample) still count toward their class.
    for (const WatchFire& f : fired) {
      const std::size_t k = static_cast<std::size_t>(f.kind);
      if (k < kNumWatchKinds && inst_.class_fires[k] != nullptr)
        inst_.class_fires[k]->add(1);
    }
    fires_.insert(fires_.end(), std::make_move_iterator(fired.begin()),
                  std::make_move_iterator(fired.end()));
  }
  std::vector<WatchFire> out;
  out.swap(fires_);
  return out;
}

std::int64_t Session::collect() {
  const std::int64_t reclaimed = mon_.collect_prefix();
  ++stats_.gc_rounds;
  stats_.reclaimed_events += reclaimed;
  return reclaimed;
}

SessionStats Session::stats() const {
  SessionStats s = stats_;
  s.resident_events = mon_.resident_events();
  s.watch_state_bytes = static_cast<std::int64_t>(mon_.watch_state_bytes());
  s.until_inc_evals = static_cast<std::int64_t>(mon_.work().until_inc_evals);
  s.until_dec_evals = static_cast<std::int64_t>(mon_.work().until_dec_evals);
  s.state = state_;
  return s;
}

}  // namespace serve
}  // namespace hbct
