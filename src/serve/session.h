// One streaming-detection session: a single execution's event stream,
// decoded from the binary wire format (poset/trace_io, namespace wire) into
// an OnlineMonitor, with periodic prefix garbage collection keeping the
// session's resident memory proportional to its open frontier.
//
// A session is deliberately single-threaded: the StreamingService serializes
// all access per session and runs many sessions concurrently. Malformed
// input — undecodable bytes or appends the monitor rejects (AppendError) —
// fails only this session: state() flips to kFailed, the error string says
// why, and every later ingest is ignored. The host process never crashes on
// a bad stream.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "analysis/optimize.h"
#include "detect/budget.h"
#include "obs/metrics.h"
#include "online/monitor.h"
#include "poset/trace_io.h"

namespace hbct {
namespace serve {

using SessionId = std::int64_t;

enum class SessionState : std::uint8_t {
  kOpen,      // accepting events
  kFinished,  // end-of-stream applied; final verdicts fired
  kFailed,    // malformed stream; error() says why
};

const char* to_string(SessionState s);

struct SessionConfig {
  std::int32_t num_procs = 1;
  /// Per-round evaluation budget handed to the session's monitor.
  Budget budget{};
  /// Run a prefix-GC round after this many applied events; <= 0 disables
  /// automatic collection (collect() still works).
  std::int64_t gc_interval_events = 4096;
};

struct SessionStats {
  std::int64_t records = 0;          // wire records applied
  std::int64_t events = 0;           // events appended
  std::int64_t fires = 0;            // watch fires produced
  std::int64_t gc_rounds = 0;        // prefix collections run
  std::int64_t reclaimed_events = 0; // events reclaimed by GC
  std::int64_t resident_events = 0;  // events currently in memory
  /// Heap footprint of live watch state (scan vectors, candidate cuts,
  /// incremental until tables) — serve.watch_state.bytes sizes it fleet-wide.
  std::int64_t watch_state_bytes = 0;
  /// Physical work of the incremental until evaluator: feed-time table
  /// advances and decision-time lazy extensions (cumulative).
  std::int64_t until_inc_evals = 0;
  std::int64_t until_dec_evals = 0;
  SessionState state = SessionState::kOpen;
};

class Session {
 public:
  Session(SessionId id, const SessionConfig& cfg);

  SessionId id() const { return id_; }
  /// For watch registration at open time (before any event arrives).
  OnlineMonitor& monitor() { return mon_; }

  /// Registers a watch for a parsed CTL query, routing by operator and
  /// operand class: EF(conjunctive|disjunctive) -> watch_possibly,
  /// AG(disjunctive) -> watch_invariant, E[p U q] with conjunctive p ->
  /// watch_until. Under kApply (the default) the query first runs through
  /// the optimizer — optimize_query_cached, so opening many sessions over
  /// the same formula pays for inference/rewrite/costing once
  /// (analysis.cache_hits counts the skips) — and the *chosen* form is
  /// registered when it is still a routable temporal query; otherwise the
  /// as-written form is kept (costable-collapse is vacuous on the empty
  /// registration-time computation and says nothing about future events).
  /// kAnalyzeOnly warms the cache but registers the query as written;
  /// kOff skips analysis entirely. Returns -1 when the query does not fit
  /// a streaming watch class.
  WatchId watch_query(const ctl::Query& q,
                      OptimizeMode mode = OptimizeMode::kApply);

  SessionState state() const { return state_; }
  const std::string& error() const { return error_; }

  /// Decodes and applies a chunk of wire bytes; returns records applied.
  /// Event labels in the stream are ignored (they never affect verdicts).
  std::size_t ingest(std::string_view bytes);
  /// Applies one already-decoded record; false once the session failed.
  bool apply(const wire::Record& r);
  /// Ends the stream explicitly (equivalent to a kEnd record).
  void finish();

  /// Drains the watch fires accumulated since the last poll.
  std::vector<WatchFire> poll();
  /// Runs a prefix-GC round now; returns events reclaimed.
  std::int64_t collect();

  SessionStats stats() const;

  /// Number of WatchKind values (index instruments by
  /// static_cast<std::size_t>(kind)).
  static constexpr std::size_t kNumWatchKinds = 5;

  /// Metric hooks the service wires in at open(): the combined fire-latency
  /// histogram, plus optional per-watch-class latency histograms and fire
  /// counters (label convention `serve.*{class="<kind>"}`, see obs/expose.h).
  /// Null members skip their recording; an all-null struct also skips the
  /// clock reads.
  struct FireInstruments {
    Histogram* latency = nullptr;  // serve.fire_latency.ns, all classes
    std::array<Histogram*, kNumWatchKinds> class_latency{};
    std::array<Counter*, kNumWatchKinds> class_fires{};
    /// Optional raw sink: the exact nanosecond latency sample, once per
    /// fire, before the histograms quantize it into log2 buckets (which
    /// round every percentile to a power of two). Benches install this to
    /// report true percentiles; the histogram path stays authoritative for
    /// the service. Runs on the pump thread — must be thread-safe when
    /// sessions share one sink.
    std::function<void(WatchKind, std::uint64_t)> raw_sample;
  };
  void set_fire_instruments(const FireInstruments& fi) {
    inst_ = fi;
    time_fires_ = fi.latency != nullptr || fi.raw_sample != nullptr;
    for (const Histogram* h : fi.class_latency)
      time_fires_ = time_fires_ || h != nullptr;
  }
  /// Compatibility shim: combined-latency-only instrumentation.
  void set_fire_histogram(Histogram* h) {
    FireInstruments fi;
    fi.latency = h;
    set_fire_instruments(fi);
  }

 private:
  bool fail(std::string msg);
  void after_event();

  SessionId id_;
  SessionConfig cfg_;
  OnlineMonitor mon_;
  wire::Decoder dec_;
  SessionState state_ = SessionState::kOpen;
  std::string error_;
  std::vector<VarId> vars_;  // wire registration index -> monitor VarId
  /// In-flight wire msg ids only: delivered entries are erased, so the map
  /// is O(open channels). A reused id after delivery reads as a fresh
  /// message; ids must be unique among in-flight messages.
  std::unordered_map<std::uint64_t, MsgId> msgs_;
  std::vector<WatchFire> fires_;
  SessionStats stats_;
  std::int64_t since_gc_ = 0;
  FireInstruments inst_;
  bool time_fires_ = false;
};

}  // namespace serve
}  // namespace hbct
