#include "lattice/irreducible.h"

namespace hbct {

std::vector<NodeId> meet_irreducibles(const Lattice& lat) {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < lat.size(); ++v)
    if (v != lat.top() && lat.successors(v).size() == 1) out.push_back(v);
  return out;
}

std::vector<NodeId> join_irreducibles(const Lattice& lat) {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < lat.size(); ++v)
    if (v != lat.bottom() && lat.predecessors(v).size() == 1) out.push_back(v);
  return out;
}

std::vector<Cut> meet_irreducible_cuts(const Computation& c) {
  std::vector<Cut> out;
  out.reserve(static_cast<std::size_t>(c.total_events()));
  for (ProcId i = 0; i < c.num_procs(); ++i)
    for (EventIndex k = 1; k <= c.num_events(i); ++k)
      out.push_back(c.meet_irreducible_of(i, k));
  return out;
}

std::vector<Cut> join_irreducible_cuts(const Computation& c) {
  std::vector<Cut> out;
  out.reserve(static_cast<std::size_t>(c.total_events()));
  for (ProcId i = 0; i < c.num_procs(); ++i)
    for (EventIndex k = 1; k <= c.num_events(i); ++k)
      out.push_back(c.join_irreducible_of(i, k));
  return out;
}

Cut birkhoff_meet_reconstruction(const Computation& c, const Cut& g) {
  Cut acc = c.final_cut();  // meet over the empty set = top
  for (ProcId i = 0; i < c.num_procs(); ++i)
    for (EventIndex k = 1; k <= c.num_events(i); ++k) {
      Cut m = c.meet_irreducible_of(i, k);
      if (g.subset_of(m)) acc = Cut::meet(acc, m);
    }
  return acc;
}

Cut birkhoff_join_reconstruction(const Computation& c, const Cut& g) {
  Cut acc = c.initial_cut();  // join over the empty set = bottom
  for (ProcId i = 0; i < c.num_procs(); ++i)
    for (EventIndex k = 1; k <= c.num_events(i); ++k) {
      Cut j = c.join_irreducible_of(i, k);
      if (j.subset_of(g)) acc = Cut::join(acc, j);
    }
  return acc;
}

}  // namespace hbct
