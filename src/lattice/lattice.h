// Explicit lattice of consistent cuts.
//
// This module materializes C(E) — every consistent cut of a computation —
// as a DAG (the Hasse diagram of the lattice under ⊆). It exists for two
// reasons:
//   1. it is the *baseline* the paper argues against: model checking on the
//      explicit global state space costs time and memory proportional to
//      |C(E)|, which is exponential in the number of processes;
//   2. it is the ground-truth oracle for the property tests: every
//      polynomial detector in detect/ is validated against brute-force
//      evaluation over this lattice.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "poset/computation.h"
#include "poset/cut_packer.h"

namespace hbct {

using NodeId = std::uint32_t;
constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

class Lattice {
 public:
  /// Enumerates all consistent cuts by BFS from the initial cut. Aborts via
  /// assertion if the lattice exceeds `max_nodes` — use try_build when the
  /// size is not known to be safe.
  static Lattice build(const Computation& c, std::size_t max_nodes = 1u << 22);

  /// As build(), but returns nullopt instead of aborting when the lattice
  /// is larger than max_nodes.
  static std::optional<Lattice> try_build(const Computation& c,
                                          std::size_t max_nodes);

  std::size_t size() const { return cuts_.size(); }
  std::size_t num_edges() const { return num_edges_; }

  const Computation& computation() const { return *comp_; }

  const Cut& cut(NodeId v) const { return cuts_[v]; }
  /// Node id of a cut; kNoNode when the cut is not consistent.
  NodeId node_of(const Cut& g) const;

  NodeId bottom() const { return bottom_; }  // initial cut ∅
  NodeId top() const { return top_; }        // final cut E

  std::span<const NodeId> successors(NodeId v) const;
  std::span<const NodeId> predecessors(NodeId v) const;

  /// Node ids sorted by cut cardinality (a topological order of the Hasse
  /// DAG; rank r holds all cuts with r events).
  const std::vector<NodeId>& topo_order() const { return topo_; }

  /// Lattice meet/join by componentwise min/max plus lookup.
  NodeId meet(NodeId a, NodeId b) const;
  NodeId join(NodeId a, NodeId b) const;

 private:
  const Computation* comp_ = nullptr;
  std::vector<Cut> cuts_;
  /// Cut -> node id, packed-uint64-keyed when the cut fits in 64 bits.
  CutIndex index_;
  // CSR adjacency for successors and predecessors.
  std::vector<NodeId> succ_flat_, pred_flat_;
  std::vector<std::uint32_t> succ_off_, pred_off_;
  std::vector<NodeId> topo_;
  NodeId bottom_ = kNoNode, top_ = kNoNode;
  std::size_t num_edges_ = 0;
};

}  // namespace hbct
