// Counting maximal chains (paths) in the cut lattice.
//
// Used by the Fig. 4 reproduction: the paper reports "7 paths which start
// from the initial cut and satisfy the predicate ... only 2 lead to I_q".
// Counts explode factorially, so totals use BigUint.
#pragma once

#include <functional>
#include <vector>

#include "lattice/lattice.h"
#include "util/biguint.h"

namespace hbct {

/// Number of maximal chains from bottom to top (all interleavings /
/// observations of the computation).
BigUint count_maximal_chains(const Lattice& lat);

/// For every node v: the number of paths bottom = G_0 ⊳ … ⊳ G_k = v such
/// that `p_ok` holds at G_0..G_{k-1} (v itself is unconstrained). This is
/// the E[p U q] witness-prefix count when summed over q-nodes.
std::vector<BigUint> count_pu_prefixes(
    const Lattice& lat, const std::function<bool(NodeId)>& p_ok);

/// Total number of E[p U q] witness prefixes: sum of count_pu_prefixes over
/// nodes where q holds. Also returns (via out-param) the count at a
/// specific target node when target != kNoNode.
BigUint count_eu_witnesses(const Lattice& lat,
                           const std::function<bool(NodeId)>& p_ok,
                           const std::function<bool(NodeId)>& q_ok,
                           NodeId target = kNoNode,
                           BigUint* at_target = nullptr);

}  // namespace hbct
