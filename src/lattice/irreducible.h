// Join- and meet-irreducible elements of an explicit lattice, plus direct
// O(n|E|) extraction from a computation without building the lattice.
//
// Birkhoff's representation theorem (Theorem 3 in the paper) makes the
// irreducibles the "primes" of a finite distributive lattice: every element
// is the meet of the meet-irreducibles above it (Corollary 4), and the
// meet-irreducibles of C(E) correspond one-to-one with the events of E via
// M(e) = E \ up-set(e). Algorithm A2 rests on this.
#pragma once

#include <vector>

#include "lattice/lattice.h"
#include "poset/computation.h"

namespace hbct {

/// Cover-degree extraction on the explicit lattice: an element is
/// meet-irreducible iff it has exactly one upper cover (and is not the top).
std::vector<NodeId> meet_irreducibles(const Lattice& lat);
/// Dually: exactly one lower cover and not the bottom.
std::vector<NodeId> join_irreducibles(const Lattice& lat);

/// Direct extraction from the computation: the cuts M(e) = E \ up-set(e)
/// for every event e, computed from reverse vector clocks in O(n|E|) —
/// no lattice construction. This is what A2 uses.
std::vector<Cut> meet_irreducible_cuts(const Computation& c);
/// Dually the cuts J(e) = down-set(e) (the events' vector clocks).
std::vector<Cut> join_irreducible_cuts(const Computation& c);

/// Birkhoff reconstruction: the meet of all meet-irreducible cuts that
/// contain `g` (Corollary 4 evaluates to `g` itself for every consistent g
/// except the final cut, for which the meet over the empty set is E).
Cut birkhoff_meet_reconstruction(const Computation& c, const Cut& g);
/// Dually: join of all join-irreducible cuts below `g`.
Cut birkhoff_join_reconstruction(const Computation& c, const Cut& g);

}  // namespace hbct
