#include "lattice/lattice.h"

#include <algorithm>
#include <deque>

#include "util/assert.h"

namespace hbct {

std::optional<Lattice> Lattice::try_build(const Computation& c,
                                          std::size_t max_nodes) {
  Lattice lat;
  lat.comp_ = &c;

  // BFS over cuts; edges are discovered as (node, advanced node) pairs and
  // converted to CSR afterwards.
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::deque<NodeId> queue;

  const Cut init = c.initial_cut();
  lat.index_ = CutIndex(c);
  lat.cuts_.push_back(init);
  lat.index_.try_emplace(init, 0);
  lat.bottom_ = 0;
  queue.push_back(0);

  std::vector<ProcId> enabled;
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    const Cut g = lat.cuts_[v];  // copy: cuts_ reallocates during the loop
    c.enabled_procs(g, &enabled);
    for (ProcId i : enabled) {
      Cut h = c.advance(g, i);
      const auto [id, inserted] =
          lat.index_.try_emplace(h, static_cast<NodeId>(lat.cuts_.size()));
      if (inserted) {
        if (lat.cuts_.size() >= max_nodes) return std::nullopt;
        lat.cuts_.push_back(std::move(h));
        queue.push_back(id);
      }
      edges.emplace_back(v, id);
    }
  }
  lat.num_edges_ = edges.size();

  const std::size_t n = lat.cuts_.size();
  // CSR for successors.
  lat.succ_off_.assign(n + 1, 0);
  lat.pred_off_.assign(n + 1, 0);
  for (const auto& [u, v] : edges) {
    ++lat.succ_off_[u + 1];
    ++lat.pred_off_[v + 1];
  }
  for (std::size_t i = 0; i < n; ++i) {
    lat.succ_off_[i + 1] += lat.succ_off_[i];
    lat.pred_off_[i + 1] += lat.pred_off_[i];
  }
  lat.succ_flat_.resize(edges.size());
  lat.pred_flat_.resize(edges.size());
  std::vector<std::uint32_t> sfill(lat.succ_off_.begin(), lat.succ_off_.end() - 1);
  std::vector<std::uint32_t> pfill(lat.pred_off_.begin(), lat.pred_off_.end() - 1);
  for (const auto& [u, v] : edges) {
    lat.succ_flat_[sfill[u]++] = v;
    lat.pred_flat_[pfill[v]++] = u;
  }

  // Topological order: sort by cut cardinality (rank function of the
  // graded lattice).
  lat.topo_.resize(n);
  for (std::size_t i = 0; i < n; ++i) lat.topo_[i] = static_cast<NodeId>(i);
  std::stable_sort(lat.topo_.begin(), lat.topo_.end(),
                   [&](NodeId a, NodeId b) {
                     return lat.cuts_[a].total() < lat.cuts_[b].total();
                   });

  const NodeId topnode = lat.node_of(c.final_cut());
  HBCT_ASSERT_MSG(topnode != kNoNode, "final cut must be reachable");
  lat.top_ = topnode;
  return lat;
}

Lattice Lattice::build(const Computation& c, std::size_t max_nodes) {
  auto lat = try_build(c, max_nodes);
  HBCT_ASSERT_MSG(lat.has_value(), "lattice exceeds max_nodes cap");
  return std::move(*lat);
}

NodeId Lattice::node_of(const Cut& g) const {
  // Out-of-range counters could alias a valid key under the packed
  // encoding; such cuts are never in the index anyway.
  if (g.size() != static_cast<std::size_t>(comp_->num_procs())) return kNoNode;
  for (ProcId i = 0; i < comp_->num_procs(); ++i) {
    const std::int32_t gi = g[static_cast<std::size_t>(i)];
    if (gi < 0 || gi > comp_->num_events(i)) return kNoNode;
  }
  return index_.find_or(g, kNoNode);
}

std::span<const NodeId> Lattice::successors(NodeId v) const {
  return {succ_flat_.data() + succ_off_[v], succ_off_[v + 1] - succ_off_[v]};
}

std::span<const NodeId> Lattice::predecessors(NodeId v) const {
  return {pred_flat_.data() + pred_off_[v], pred_off_[v + 1] - pred_off_[v]};
}

NodeId Lattice::meet(NodeId a, NodeId b) const {
  const NodeId m = node_of(Cut::meet(cuts_[a], cuts_[b]));
  HBCT_ASSERT_MSG(m != kNoNode, "meet of consistent cuts must be consistent");
  return m;
}

NodeId Lattice::join(NodeId a, NodeId b) const {
  const NodeId j = node_of(Cut::join(cuts_[a], cuts_[b]));
  HBCT_ASSERT_MSG(j != kNoNode, "join of consistent cuts must be consistent");
  return j;
}

}  // namespace hbct
