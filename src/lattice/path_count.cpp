#include "lattice/path_count.h"

namespace hbct {

BigUint count_maximal_chains(const Lattice& lat) {
  std::vector<BigUint> ways(lat.size());
  ways[lat.bottom()] = BigUint(1);
  for (NodeId v : lat.topo_order()) {
    if (ways[v].is_zero()) continue;
    for (NodeId s : lat.successors(v)) ways[s] += ways[v];
  }
  return ways[lat.top()];
}

std::vector<BigUint> count_pu_prefixes(
    const Lattice& lat, const std::function<bool(NodeId)>& p_ok) {
  std::vector<BigUint> ways(lat.size());
  ways[lat.bottom()] = BigUint(1);
  for (NodeId v : lat.topo_order()) {
    if (ways[v].is_zero()) continue;
    // Paths may only be extended through v when p holds at v.
    if (!p_ok(v)) continue;
    for (NodeId s : lat.successors(v)) ways[s] += ways[v];
  }
  return ways;
}

BigUint count_eu_witnesses(const Lattice& lat,
                           const std::function<bool(NodeId)>& p_ok,
                           const std::function<bool(NodeId)>& q_ok,
                           NodeId target, BigUint* at_target) {
  const std::vector<BigUint> ways = count_pu_prefixes(lat, p_ok);
  BigUint total;
  for (NodeId v = 0; v < lat.size(); ++v)
    if (q_ok(v)) total += ways[v];
  if (at_target && target != kNoNode) *at_target = ways[target];
  return total;
}

}  // namespace hbct
