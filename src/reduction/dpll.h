// A compact DPLL SAT solver: the independent oracle the hardness benches
// cross-check the reduction pipeline against.
#pragma once

#include <optional>
#include <vector>

#include "reduction/cnf.h"

namespace hbct {

struct DpllStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
};

/// Satisfying assignment of `f`, or nullopt when unsatisfiable.
std::optional<std::vector<bool>> dpll_solve(const Cnf& f,
                                            DpllStats* stats = nullptr);

/// DNF tautology via ¬f unsatisfiability.
bool dnf_tautology(const Dnf& f, DpllStats* stats = nullptr);

}  // namespace hbct
