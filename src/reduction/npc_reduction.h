// The Fig. 3 gadgets: SAT → (computation, observer-independent predicate,
// EG) and DNF-TAUTOLOGY → (computation, OI predicate, AG).
//
// Gadget (a): one process per variable x_1..x_m with a single event
// (position 0 = true, position 1 = false), plus a process for x_{m+1} that
// starts true, goes false, and returns true (two events). The predicate is
// P = p ∨ x_{m+1}. P holds initially, so it is observer-independent, and
// EG(P) holds iff p is satisfiable: every maximal cut sequence must pass
// through x_{m+1} = false, where P collapses to p at the cut's variable
// assignment.
//
// Gadget (b): the extra process starts true and ends false (one event).
// AG(P) holds iff p holds under every assignment, i.e. p is a tautology.
#pragma once

#include "poset/computation.h"
#include "predicate/predicate.h"
#include "reduction/cnf.h"

namespace hbct {

struct Reduction {
  Computation computation;
  PredicatePtr predicate;  // P = p ∨ x_{m+1}; observer-independent
};

/// Theorem 5 gadget: EG(P) on the result ⟺ f satisfiable.
Reduction reduce_sat_to_eg(const Cnf& f);

/// Theorem 6 gadget: AG(P) on the result ⟺ f a tautology.
Reduction reduce_tautology_to_ag(const Dnf& f);

}  // namespace hbct
