#include "reduction/dpll.h"

#include "util/assert.h"

namespace hbct {

namespace {

enum : std::int8_t { kUnset = -1, kFalse = 0, kTrue = 1 };

struct Solver {
  const Cnf& f;
  std::vector<std::int8_t> value;
  DpllStats stats;

  explicit Solver(const Cnf& cnf)
      : f(cnf), value(static_cast<std::size_t>(cnf.num_vars), kUnset) {}

  bool lit_true(const Lit& l) const {
    const std::int8_t v = value[static_cast<std::size_t>(l.var)];
    return v != kUnset && (v == kTrue) != l.neg;
  }
  bool lit_false(const Lit& l) const {
    const std::int8_t v = value[static_cast<std::size_t>(l.var)];
    return v != kUnset && (v == kTrue) == l.neg;
  }

  /// Unit propagation over all clauses; returns false on conflict, records
  /// assigned vars in `trail`.
  bool propagate(std::vector<std::int32_t>& trail) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Clause& c : f.clauses) {
        const Lit* unit = nullptr;
        bool sat = false;
        std::int32_t unset = 0;
        for (const Lit& l : c.lits) {
          if (lit_true(l)) {
            sat = true;
            break;
          }
          if (!lit_false(l)) {
            ++unset;
            unit = &l;
          }
        }
        if (sat) continue;
        if (unset == 0) return false;  // conflict
        if (unset == 1) {
          value[static_cast<std::size_t>(unit->var)] =
              unit->neg ? kFalse : kTrue;
          trail.push_back(unit->var);
          ++stats.propagations;
          changed = true;
        }
      }
    }
    return true;
  }

  bool solve() {
    std::vector<std::int32_t> trail;
    if (!propagate(trail)) {
      undo(trail);
      return false;
    }
    std::int32_t pick = -1;
    for (std::int32_t v = 0; v < f.num_vars; ++v)
      if (value[static_cast<std::size_t>(v)] == kUnset) {
        pick = v;
        break;
      }
    if (pick < 0) return true;  // fully assigned, no conflict
    for (const std::int8_t b : {kTrue, kFalse}) {
      ++stats.decisions;
      value[static_cast<std::size_t>(pick)] = b;
      if (solve()) return true;  // a failing recursive call undoes its trail
      value[static_cast<std::size_t>(pick)] = kUnset;
    }
    undo(trail);
    return false;
  }

  void undo(const std::vector<std::int32_t>& trail) {
    for (std::int32_t v : trail) value[static_cast<std::size_t>(v)] = kUnset;
  }
};

}  // namespace

std::optional<std::vector<bool>> dpll_solve(const Cnf& f, DpllStats* stats) {
  // An empty clause is trivially unsatisfiable; the solver handles it via
  // the conflict path, but guard num_vars == 0 with non-empty clauses.
  Solver s(f);
  const bool sat = s.solve();
  if (stats) *stats = s.stats;
  if (!sat) return std::nullopt;
  std::vector<bool> out(static_cast<std::size_t>(f.num_vars));
  for (std::int32_t v = 0; v < f.num_vars; ++v)
    out[static_cast<std::size_t>(v)] =
        s.value[static_cast<std::size_t>(v)] == kTrue;  // kUnset -> false
  return out;
}

bool dnf_tautology(const Dnf& f, DpllStats* stats) {
  return !dpll_solve(f.negation_cnf(), stats).has_value();
}

}  // namespace hbct
