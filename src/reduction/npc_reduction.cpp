#include "reduction/npc_reduction.h"

#include "poset/builder.h"
#include "util/assert.h"

namespace hbct {

namespace {

/// Assignment encoded by a cut: variable process i at position 0 means
/// x_i = true, at position 1 means false.
bool var_true_at(const Cut& g, std::int32_t var) {
  return g[static_cast<std::size_t>(var)] == 0;
}

Computation gadget_computation(std::int32_t num_vars,
                               std::int32_t extra_events) {
  ComputationBuilder b(num_vars + 1);
  for (ProcId i = 0; i < num_vars; ++i)
    b.internal(i);  // the single true -> false flip event of variable i
  for (std::int32_t k = 0; k < extra_events; ++k)
    b.internal(num_vars);
  return std::move(b).build();
}

}  // namespace

Reduction reduce_sat_to_eg(const Cnf& f) {
  Reduction r;
  const std::int32_t m = f.num_vars;
  // Extra process: true (pos 0) -> false (pos 1) -> true (pos 2).
  r.computation = gadget_computation(m, 2);
  Cnf formula = f;
  r.predicate = make_asserted(
      [formula, m](const Computation&, const Cut& g) {
        const std::int32_t xpos = g[static_cast<std::size_t>(m)];
        const bool x_extra = xpos == 0 || xpos == 2;
        if (x_extra) return true;
        std::vector<bool> assignment(static_cast<std::size_t>(m));
        for (std::int32_t v = 0; v < m; ++v)
          assignment[static_cast<std::size_t>(v)] = var_true_at(g, v);
        return formula.eval(assignment);
      },
      // Holds at the initial cut (x_{m+1} = true), hence observer-
      // independent — which effective_classes() also discovers on its own.
      kClassObserverIndependent, "P = cnf(x1..xm) | x_extra");
  return r;
}

Reduction reduce_tautology_to_ag(const Dnf& f) {
  Reduction r;
  const std::int32_t m = f.num_vars;
  // Extra process: true (pos 0) -> false (pos 1).
  r.computation = gadget_computation(m, 1);
  Dnf formula = f;
  r.predicate = make_asserted(
      [formula, m](const Computation&, const Cut& g) {
        const bool x_extra = g[static_cast<std::size_t>(m)] == 0;
        if (x_extra) return true;
        std::vector<bool> assignment(static_cast<std::size_t>(m));
        for (std::int32_t v = 0; v < m; ++v)
          assignment[static_cast<std::size_t>(v)] = var_true_at(g, v);
        return formula.eval(assignment);
      },
      kClassObserverIndependent, "P = dnf(x1..xm) | x_extra");
  return r;
}

}  // namespace hbct
