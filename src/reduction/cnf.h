// Boolean formulas in clausal form, for the Section 6 hardness gadgets.
//
// CNF drives the SAT→EG reduction (Theorem 5); DNF drives the
// TAUTOLOGY→AG reduction (Theorem 6) — DNF tautology is the canonical
// co-NP-complete problem, and ¬DNF is a CNF whose unsatisfiability our DPLL
// solver decides.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace hbct {

struct Lit {
  std::int32_t var = 0;  // 0-based
  bool neg = false;
};

/// A clause: disjunction of literals in CNF, conjunction (a term) in DNF.
struct Clause {
  std::vector<Lit> lits;
};

struct Cnf {
  std::int32_t num_vars = 0;
  std::vector<Clause> clauses;

  bool eval(const std::vector<bool>& assignment) const;
  std::string to_string() const;

  /// Uniform random k-CNF.
  static Cnf random(std::int32_t num_vars, std::int32_t num_clauses,
                    std::int32_t k, Rng& rng);
};

struct Dnf {
  std::int32_t num_vars = 0;
  std::vector<Clause> terms;

  bool eval(const std::vector<bool>& assignment) const;
  std::string to_string() const;

  /// ¬dnf as a CNF (negate every literal; terms become clauses).
  Cnf negation_cnf() const;

  static Dnf random(std::int32_t num_vars, std::int32_t num_terms,
                    std::int32_t k, Rng& rng);
};

}  // namespace hbct
