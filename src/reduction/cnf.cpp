#include "reduction/cnf.h"

#include <sstream>

#include "util/assert.h"

namespace hbct {

namespace {

void clause_to_stream(std::ostringstream& os, const Clause& c,
                      const char* op) {
  os << "(";
  for (std::size_t i = 0; i < c.lits.size(); ++i) {
    if (i) os << op;
    if (c.lits[i].neg) os << "!";
    os << "x" << c.lits[i].var;
  }
  os << ")";
}

Clause random_clause(std::int32_t num_vars, std::int32_t k, Rng& rng) {
  HBCT_ASSERT(k <= num_vars);
  Clause c;
  std::vector<std::int32_t> pool(static_cast<std::size_t>(num_vars));
  for (std::int32_t v = 0; v < num_vars; ++v)
    pool[static_cast<std::size_t>(v)] = v;
  rng.shuffle(pool);
  for (std::int32_t i = 0; i < k; ++i)
    c.lits.push_back(Lit{pool[static_cast<std::size_t>(i)], rng.next_bool()});
  return c;
}

}  // namespace

bool Cnf::eval(const std::vector<bool>& assignment) const {
  HBCT_ASSERT(assignment.size() == static_cast<std::size_t>(num_vars));
  for (const Clause& c : clauses) {
    bool sat = false;
    for (const Lit& l : c.lits)
      if (assignment[static_cast<std::size_t>(l.var)] != l.neg) {
        sat = true;
        break;
      }
    if (!sat) return false;
  }
  return true;
}

std::string Cnf::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < clauses.size(); ++i) {
    if (i) os << " & ";
    clause_to_stream(os, clauses[i], " | ");
  }
  return os.str();
}

Cnf Cnf::random(std::int32_t num_vars, std::int32_t num_clauses,
                std::int32_t k, Rng& rng) {
  Cnf f;
  f.num_vars = num_vars;
  f.clauses.reserve(static_cast<std::size_t>(num_clauses));
  for (std::int32_t i = 0; i < num_clauses; ++i)
    f.clauses.push_back(random_clause(num_vars, k, rng));
  return f;
}

bool Dnf::eval(const std::vector<bool>& assignment) const {
  HBCT_ASSERT(assignment.size() == static_cast<std::size_t>(num_vars));
  for (const Clause& t : terms) {
    bool sat = true;
    for (const Lit& l : t.lits)
      if (assignment[static_cast<std::size_t>(l.var)] == l.neg) {
        sat = false;
        break;
      }
    if (sat) return true;
  }
  return false;
}

std::string Dnf::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < terms.size(); ++i) {
    if (i) os << " | ";
    clause_to_stream(os, terms[i], " & ");
  }
  return os.str();
}

Cnf Dnf::negation_cnf() const {
  Cnf f;
  f.num_vars = num_vars;
  f.clauses.reserve(terms.size());
  for (const Clause& t : terms) {
    Clause c;
    c.lits.reserve(t.lits.size());
    for (const Lit& l : t.lits) c.lits.push_back(Lit{l.var, !l.neg});
    f.clauses.push_back(std::move(c));
  }
  return f;
}

Dnf Dnf::random(std::int32_t num_vars, std::int32_t num_terms, std::int32_t k,
                Rng& rng) {
  Dnf f;
  f.num_vars = num_vars;
  f.terms.reserve(static_cast<std::size_t>(num_terms));
  for (std::int32_t i = 0; i < num_terms; ++i)
    f.terms.push_back(random_clause(num_vars, k, rng));
  return f;
}

}  // namespace hbct
