#include "analysis/audit.h"

#include <algorithm>
#include <random>

#include "lattice/lattice.h"
#include "predicate/equilevel.h"
#include "util/string_util.h"

namespace hbct {

const char* to_string(AuditCheck c) {
  switch (c) {
    case AuditCheck::kLinearMeet: return "linear-meet-closure";
    case AuditCheck::kPostLinearJoin: return "post-linear-join-closure";
    case AuditCheck::kStableUpClosed: return "stable-up-closed";
    case AuditCheck::kObserverIndependent: return "observer-independence";
    case AuditCheck::kConjunctiveDecomp: return "conjunctive-decomposition";
    case AuditCheck::kDisjunctiveDecomp: return "disjunctive-decomposition";
    case AuditCheck::kLocalDependence: return "local-dependence";
    case AuditCheck::kEquilevelDiagonal: return "equilevel-diagonal";
    case AuditCheck::kForbiddenOracle: return "forbidden-oracle";
    case AuditCheck::kForbiddenDownOracle: return "forbidden-down-oracle";
    case AuditCheck::kNegationSemantics: return "negation-semantics";
    case AuditCheck::kNegationClasses: return "negation-classes";
  }
  return "?";
}

namespace {

using SatVec = std::vector<char>;

void add_violation(std::vector<AuditViolation>& out, AuditCheck check,
                   std::string message, std::vector<Cut> cuts) {
  out.push_back({check, std::move(message), std::move(cuts)});
}

// ---- Exact mode: checks over the explicit lattice ---------------------------

/// Meet (join) of two satisfying cuts must satisfy the predicate. One
/// counterexample is enough; the pair loop is capped by max_pair_checks.
void check_semilattice(const Lattice& lat, const SatVec& sat, bool join,
                       const AuditOptions& opt,
                       std::vector<AuditViolation>& out) {
  std::vector<NodeId> hits;
  for (NodeId v = 0; v < lat.size(); ++v)
    if (sat[v]) hits.push_back(v);
  std::size_t budget = opt.max_pair_checks;
  for (std::size_t a = 0; a < hits.size(); ++a) {
    for (std::size_t b = a + 1; b < hits.size(); ++b) {
      if (budget-- == 0) return;
      const NodeId m =
          join ? lat.join(hits[a], hits[b]) : lat.meet(hits[a], hits[b]);
      if (sat[m]) continue;
      add_violation(
          out,
          join ? AuditCheck::kPostLinearJoin : AuditCheck::kLinearMeet,
          strfmt("p holds at %s and %s but not at their %s %s",
                 lat.cut(hits[a]).to_string().c_str(),
                 lat.cut(hits[b]).to_string().c_str(),
                 join ? "join" : "meet", lat.cut(m).to_string().c_str()),
          {lat.cut(hits[a]), lat.cut(hits[b]), lat.cut(m)});
      return;
    }
  }
}

/// Stable: true at a cut implies true at every successor cut.
void check_stable(const Lattice& lat, const SatVec& sat,
                  std::vector<AuditViolation>& out) {
  for (NodeId v = 0; v < lat.size(); ++v) {
    if (!sat[v]) continue;
    for (NodeId s : lat.successors(v)) {
      if (sat[s]) continue;
      add_violation(out, AuditCheck::kStableUpClosed,
                    strfmt("p holds at %s but not at its successor %s",
                           lat.cut(v).to_string().c_str(),
                           lat.cut(s).to_string().c_str()),
                    {lat.cut(v), lat.cut(s)});
      return;
    }
  }
}

/// Observer independence: if any cut satisfies p, every observation (maximal
/// bottom-to-top chain) must pass through a satisfying cut. We search for a
/// chain that avoids the satisfying set entirely via BFS over non-satisfying
/// nodes.
void check_observer_independent(const Lattice& lat, const SatVec& sat,
                                std::vector<AuditViolation>& out) {
  NodeId witness = kNoNode;
  for (NodeId v = 0; v < lat.size(); ++v)
    if (sat[v]) {
      witness = v;
      break;
    }
  if (witness == kNoNode) return;  // EF false everywhere: trivially OI
  if (sat[lat.bottom()]) return;   // every observation starts satisfied
  std::vector<NodeId> parent(lat.size(), kNoNode);
  std::vector<char> seen(lat.size(), 0);
  std::vector<NodeId> queue{lat.bottom()};
  seen[lat.bottom()] = 1;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId v = queue[head];
    if (v == lat.top()) {
      std::vector<Cut> path;
      for (NodeId u = v; u != kNoNode; u = parent[u])
        path.push_back(lat.cut(u));
      std::reverse(path.begin(), path.end());
      path.push_back(lat.cut(witness));  // the cut the observation misses
      add_violation(
          out, AuditCheck::kObserverIndependent,
          strfmt("p holds at %s but the observation ending %s never sees it",
                 lat.cut(witness).to_string().c_str(),
                 lat.cut(v).to_string().c_str()),
          std::move(path));
      return;
    }
    for (NodeId s : lat.successors(v)) {
      if (seen[s] || sat[s]) continue;
      seen[s] = 1;
      parent[s] = v;
      queue.push_back(s);
    }
  }
}

/// Conjunctive: with the canonical per-process good sets
/// good_i(pos) = "some satisfying cut has coordinate pos on i", p must equal
/// the conjunction of the goods. (The forward direction holds by
/// construction, so a mismatch is always a false p where every good agrees.)
void check_conjunctive(const Lattice& lat, const SatVec& sat,
                       std::vector<AuditViolation>& out) {
  const Computation& c = lat.computation();
  const auto n = static_cast<std::size_t>(c.num_procs());
  std::vector<std::vector<char>> good(n);
  for (std::size_t i = 0; i < n; ++i)
    good[i].assign(
        static_cast<std::size_t>(c.num_events(static_cast<ProcId>(i))) + 1, 0);
  for (NodeId v = 0; v < lat.size(); ++v) {
    if (!sat[v]) continue;
    const Cut& g = lat.cut(v);
    for (std::size_t i = 0; i < n; ++i)
      good[i][static_cast<std::size_t>(g[i])] = 1;
  }
  for (NodeId v = 0; v < lat.size(); ++v) {
    const Cut& g = lat.cut(v);
    bool expected = true;
    for (std::size_t i = 0; i < n && expected; ++i)
      expected = good[i][static_cast<std::size_t>(g[i])] != 0;
    if (expected == (sat[v] != 0)) continue;
    add_violation(out, AuditCheck::kConjunctiveDecomp,
                  strfmt("no per-process conjunction reproduces p: every "
                         "coordinate of %s appears in some satisfying cut, "
                         "yet p is false there",
                         g.to_string().c_str()),
                  {g});
    return;
  }
}

/// Disjunctive dual: cand_i(pos) = "every cut with coordinate pos on i
/// satisfies p"; p must equal the disjunction of the candidates.
void check_disjunctive(const Lattice& lat, const SatVec& sat,
                       std::vector<AuditViolation>& out) {
  const Computation& c = lat.computation();
  const auto n = static_cast<std::size_t>(c.num_procs());
  std::vector<std::vector<char>> cand(n);
  for (std::size_t i = 0; i < n; ++i)
    cand[i].assign(
        static_cast<std::size_t>(c.num_events(static_cast<ProcId>(i))) + 1, 1);
  for (NodeId v = 0; v < lat.size(); ++v) {
    if (sat[v]) continue;
    const Cut& g = lat.cut(v);
    for (std::size_t i = 0; i < n; ++i)
      cand[i][static_cast<std::size_t>(g[i])] = 0;
  }
  for (NodeId v = 0; v < lat.size(); ++v) {
    const Cut& g = lat.cut(v);
    bool expected = false;
    for (std::size_t i = 0; i < n && !expected; ++i)
      expected = cand[i][static_cast<std::size_t>(g[i])] != 0;
    if (expected == (sat[v] != 0)) continue;
    add_violation(out, AuditCheck::kDisjunctiveDecomp,
                  strfmt("no per-process disjunction reproduces p: p holds "
                         "at %s but no coordinate guarantees it",
                         g.to_string().c_str()),
                  {g});
    return;
  }
}

/// Local: truth must be a function of a single process's coordinate.
void check_local(const Lattice& lat, const SatVec& sat,
                 std::vector<AuditViolation>& out) {
  const Computation& c = lat.computation();
  Cut cex_a, cex_b;  // witness pair for the first failing process
  bool have_cex = false;
  for (ProcId i = 0; i < c.num_procs(); ++i) {
    std::vector<std::int8_t> val(
        static_cast<std::size_t>(c.num_events(i)) + 1, -1);
    std::vector<NodeId> rep(val.size(), kNoNode);
    bool depends_only_on_i = true;
    for (NodeId v = 0; v < lat.size() && depends_only_on_i; ++v) {
      const auto pos = static_cast<std::size_t>(lat.cut(v)[
          static_cast<std::size_t>(i)]);
      if (val[pos] < 0) {
        val[pos] = sat[v];
        rep[pos] = v;
      } else if (val[pos] != sat[v]) {
        depends_only_on_i = false;
        if (!have_cex) {
          cex_a = lat.cut(rep[pos]);
          cex_b = lat.cut(v);
          have_cex = true;
        }
      }
    }
    if (depends_only_on_i) return;
  }
  add_violation(out, AuditCheck::kLocalDependence,
                strfmt("p is not local: %s and %s agree on every single "
                       "process's coordinate candidate yet p differs",
                       cex_a.to_string().c_str(), cex_b.to_string().c_str()),
                {cex_a, cex_b});
}

/// Equilevel: every satisfying cut must lie on the diagonal chain
/// (l, ..., l). One off-diagonal satisfying cut refutes the class (and
/// would make the equilevel-scan route unsound).
void check_equilevel_class(const Lattice& lat, const SatVec& sat,
                           std::vector<AuditViolation>& out) {
  for (NodeId v = 0; v < lat.size(); ++v) {
    if (!sat[v]) continue;
    const Cut& g = lat.cut(v);
    if (is_equilevel_cut(g)) continue;
    add_violation(out, AuditCheck::kEquilevelDiagonal,
                  strfmt("p holds at the off-diagonal cut %s",
                         g.to_string().c_str()),
                  {g});
    return;
  }
}

/// forbidden(): for a false cut g and i = forbidden(g), no satisfying cut
/// above g may keep coordinate i (dually below for forbidden_down).
void check_oracle(const Lattice& lat, const Predicate& p, const SatVec& sat,
                  bool down, const AuditOptions& opt,
                  std::vector<AuditViolation>& out) {
  const Computation& c = lat.computation();
  std::vector<NodeId> hits;
  for (NodeId v = 0; v < lat.size(); ++v)
    if (sat[v]) hits.push_back(v);
  std::size_t budget = opt.max_pair_checks;
  for (NodeId v = 0; v < lat.size(); ++v) {
    if (sat[v]) continue;
    const Cut& g = lat.cut(v);
    const ProcId i = down ? p.forbidden_down(c, g) : p.forbidden(c, g);
    const auto check = down ? AuditCheck::kForbiddenDownOracle
                            : AuditCheck::kForbiddenOracle;
    if (i < 0 || i >= c.num_procs()) {
      add_violation(out, check,
                    strfmt("oracle returned invalid process %d at %s",
                           static_cast<int>(i), g.to_string().c_str()),
                    {g});
      return;
    }
    for (NodeId hv : hits) {
      if (budget-- == 0) return;
      const Cut& h = lat.cut(hv);
      const bool comparable = down ? h.subset_of(g) : g.subset_of(h);
      if (!comparable ||
          h[static_cast<std::size_t>(i)] != g[static_cast<std::size_t>(i)])
        continue;
      add_violation(
          out, check,
          strfmt("oracle forbade process %d at %s, but satisfying cut %s "
                 "%s it without advancing that process",
                 static_cast<int>(i), g.to_string().c_str(),
                 h.to_string().c_str(), down ? "precedes" : "extends"),
          {g, h});
      return;
    }
  }
}

/// Dispatches the class-definition checks for every claimed bit; returns
/// the bits that were actually exercised.
ClassSet run_class_checks(const Lattice& lat, const SatVec& sat, ClassSet cls,
                          const AuditOptions& opt,
                          std::vector<AuditViolation>& out) {
  ClassSet checked = 0;
  if (cls & kClassLinear) {
    check_semilattice(lat, sat, /*join=*/false, opt, out);
    checked |= kClassLinear;
  }
  if (cls & kClassPostLinear) {
    check_semilattice(lat, sat, /*join=*/true, opt, out);
    checked |= kClassPostLinear;
  }
  if ((cls & kClassRegular) && (checked & kClassLinear) &&
      (checked & kClassPostLinear))
    checked |= kClassRegular;  // sublattice = meet- and join-closed
  if (cls & kClassStable) {
    check_stable(lat, sat, out);
    checked |= kClassStable;
  }
  if (cls & kClassObserverIndependent) {
    check_observer_independent(lat, sat, out);
    checked |= kClassObserverIndependent;
  }
  if (cls & kClassConjunctive) {
    check_conjunctive(lat, sat, out);
    checked |= kClassConjunctive;
  }
  if (cls & kClassDisjunctive) {
    check_disjunctive(lat, sat, out);
    checked |= kClassDisjunctive;
  }
  if (cls & kClassLocal) {
    check_local(lat, sat, out);
    checked |= kClassLocal;
  }
  if (cls & kClassEquilevel) {
    check_equilevel_class(lat, sat, out);
    checked |= kClassEquilevel;
  }
  return checked;
}

void exact_audit(const Lattice& lat, const PredicatePtr& p, ClassSet cls,
                 const AuditOptions& opt, AuditResult& r) {
  const Computation& c = lat.computation();
  SatVec sat(lat.size(), 0);
  for (NodeId v = 0; v < lat.size(); ++v)
    sat[v] = p->eval(c, lat.cut(v)) ? 1 : 0;
  r.cuts_examined += lat.size();

  r.checked |= run_class_checks(lat, sat, cls, opt, r.violations);

  if (p->has_forbidden() && (cls & kClassLinear))
    check_oracle(lat, *p, sat, /*down=*/false, opt, r.violations);
  if (p->has_forbidden_down() && (cls & kClassPostLinear))
    check_oracle(lat, *p, sat, /*down=*/true, opt, r.violations);

  if (!opt.check_negation) return;
  const PredicatePtr n = p->negate();
  SatVec nsat(lat.size(), 0);
  for (NodeId v = 0; v < lat.size(); ++v)
    nsat[v] = n->eval(c, lat.cut(v)) ? 1 : 0;
  for (NodeId v = 0; v < lat.size(); ++v) {
    if ((nsat[v] != 0) != (sat[v] == 0)) {
      add_violation(r.violations, AuditCheck::kNegationSemantics,
                    strfmt("negate() is not the complement at %s",
                           lat.cut(v).to_string().c_str()),
                    {lat.cut(v)});
      return;  // class claims of a wrong complement are meaningless
    }
  }
  // The negation may under-claim (a generic Not claims nothing), but any
  // class it does claim must hold for the complement set.
  std::vector<AuditViolation> nviol;
  run_class_checks(lat, nsat, close_classes(n->classes(c)), opt, nviol);
  for (AuditViolation& v : nviol) {
    v.message = strfmt("negate() claims a class it lacks (%s): %s",
                       to_string(v.check), v.message.c_str());
    v.check = AuditCheck::kNegationClasses;
    r.violations.push_back(std::move(v));
  }
}

// ---- Sampled mode: random observations on large computations ----------------

void sampled_audit(const Computation& c, const PredicatePtr& p, ClassSet cls,
                   const AuditOptions& opt, AuditResult& r) {
  std::mt19937_64 rng(opt.seed);
  constexpr std::size_t kPoolCap = 512;  // per-polarity reservoir of cuts
  std::vector<Cut> sat_pool, unsat_pool;
  bool any_walk_hit = false, any_walk_missed = false;
  Cut oi_witness;

  auto pool_insert = [&](std::vector<Cut>& pool, const Cut& g,
                         std::size_t seen) {
    if (pool.size() < kPoolCap) {
      pool.push_back(g);
    } else {
      std::uniform_int_distribution<std::size_t> d(0, seen);
      const std::size_t j = d(rng);
      if (j < kPoolCap) pool[j] = g;
    }
  };

  std::size_t sat_seen = 0, unsat_seen = 0;
  for (std::size_t w = 0; w < opt.samples; ++w) {
    Cut g = c.initial_cut();
    bool hit = false, was_true = false;
    Cut last_true;
    for (;;) {
      const bool sg = p->eval(c, g);
      ++r.cuts_examined;
      if (sg)
        pool_insert(sat_pool, g, sat_seen++);
      else
        pool_insert(unsat_pool, g, unsat_seen++);
      if ((cls & kClassStable) && was_true && !sg && r.violations.empty())
        add_violation(r.violations, AuditCheck::kStableUpClosed,
                      strfmt("p held at %s but failed later at %s on the "
                             "same observation",
                             last_true.to_string().c_str(),
                             g.to_string().c_str()),
                      {last_true, g});
      if (sg) {
        was_true = true;
        last_true = g;
        if (!hit) oi_witness = g;
        hit = true;
      }
      std::vector<ProcId> enabled;
      for (ProcId i = 0; i < c.num_procs(); ++i)
        if (c.enabled(g, i)) enabled.push_back(i);
      if (enabled.empty()) break;
      std::uniform_int_distribution<std::size_t> d(0, enabled.size() - 1);
      g = c.advance(g, enabled[d(rng)]);
    }
    (hit ? any_walk_hit : any_walk_missed) = true;
  }

  if (cls & kClassStable) r.checked |= kClassStable;
  if (cls & kClassEquilevel) {
    r.checked |= kClassEquilevel;
    for (const Cut& g : sat_pool) {
      if (is_equilevel_cut(g)) continue;
      add_violation(r.violations, AuditCheck::kEquilevelDiagonal,
                    strfmt("p holds at the off-diagonal cut %s",
                           g.to_string().c_str()),
                    {g});
      break;
    }
  }
  if (cls & kClassObserverIndependent) {
    r.checked |= kClassObserverIndependent;
    if (any_walk_hit && any_walk_missed)
      add_violation(r.violations, AuditCheck::kObserverIndependent,
                    strfmt("p holds at %s on one observation but a sampled "
                           "observation never sees p",
                           oi_witness.to_string().c_str()),
                    {oi_witness});
  }

  auto pair_scan = [&](bool join, AuditCheck which) {
    std::size_t budget = std::min(opt.max_pair_checks,
                                  sat_pool.size() * sat_pool.size());
    for (std::size_t a = 0; a < sat_pool.size(); ++a) {
      for (std::size_t b = a + 1; b < sat_pool.size(); ++b) {
        if (budget-- == 0) return;
        Cut m = join ? Cut::join(sat_pool[a], sat_pool[b])
                     : Cut::meet(sat_pool[a], sat_pool[b]);
        ++r.cuts_examined;
        if (p->eval(c, m)) continue;
        add_violation(
            r.violations, which,
            strfmt("p holds at %s and %s but not at their %s %s",
                   sat_pool[a].to_string().c_str(),
                   sat_pool[b].to_string().c_str(), join ? "join" : "meet",
                   m.to_string().c_str()),
            {sat_pool[a], sat_pool[b], std::move(m)});
        return;
      }
    }
  };
  if (cls & kClassLinear) {
    pair_scan(/*join=*/false, AuditCheck::kLinearMeet);
    r.checked |= kClassLinear;
  }
  if (cls & kClassPostLinear) {
    pair_scan(/*join=*/true, AuditCheck::kPostLinearJoin);
    r.checked |= kClassPostLinear;
  }
  if ((cls & kClassRegular) && (r.checked & kClassLinear) &&
      (r.checked & kClassPostLinear))
    r.checked |= kClassRegular;

  auto oracle_scan = [&](bool down, AuditCheck which) {
    std::size_t budget = opt.max_pair_checks;
    for (const Cut& g : unsat_pool) {
      const ProcId i = down ? p->forbidden_down(c, g) : p->forbidden(c, g);
      if (i < 0 || i >= c.num_procs()) {
        add_violation(r.violations, which,
                      strfmt("oracle returned invalid process %d at %s",
                             static_cast<int>(i), g.to_string().c_str()),
                      {g});
        return;
      }
      for (const Cut& h : sat_pool) {
        if (budget-- == 0) return;
        const bool comparable = down ? h.subset_of(g) : g.subset_of(h);
        if (!comparable ||
            h[static_cast<std::size_t>(i)] != g[static_cast<std::size_t>(i)])
          continue;
        add_violation(
            r.violations, which,
            strfmt("oracle forbade process %d at %s, but satisfying cut %s "
                   "%s it without advancing that process",
                   static_cast<int>(i), g.to_string().c_str(),
                   h.to_string().c_str(), down ? "precedes" : "extends"),
            {g, h});
        return;
      }
    }
  };
  if (p->has_forbidden() && (cls & kClassLinear))
    oracle_scan(/*down=*/false, AuditCheck::kForbiddenOracle);
  if (p->has_forbidden_down() && (cls & kClassPostLinear))
    oracle_scan(/*down=*/true, AuditCheck::kForbiddenDownOracle);

  if (opt.check_negation) {
    const PredicatePtr n = p->negate();
    for (const std::vector<Cut>* pool : {&sat_pool, &unsat_pool}) {
      for (const Cut& g : *pool) {
        if (n->eval(c, g) != !p->eval(c, g)) {
          add_violation(r.violations, AuditCheck::kNegationSemantics,
                        strfmt("negate() is not the complement at %s",
                               g.to_string().c_str()),
                        {g});
          return;
        }
      }
    }
  }
}

}  // namespace

AuditResult audit_predicate(const PredicatePtr& p, const Computation& c,
                            const AuditOptions& opt) {
  AuditResult r;
  const ClassSet cls = effective_classes(*p, c);
  if (auto lat = Lattice::try_build(c, opt.max_lattice)) {
    r.exhaustive = true;
    exact_audit(*lat, p, cls, opt, r);
  } else {
    sampled_audit(c, p, cls, opt, r);
  }
  return r;
}

std::vector<Diagnostic> audit_diagnostics(const AuditResult& r) {
  std::vector<Diagnostic> out;
  out.reserve(r.violations.size());
  for (const AuditViolation& v : r.violations) {
    DiagCode code = DiagCode::kClassAuditFailed;
    if (v.check == AuditCheck::kForbiddenOracle ||
        v.check == AuditCheck::kForbiddenDownOracle)
      code = DiagCode::kOracleContractViolated;
    else if (v.check == AuditCheck::kNegationSemantics ||
             v.check == AuditCheck::kNegationClasses)
      code = DiagCode::kNegationContractViolated;
    Diagnostic d;
    d.code = code;
    d.severity = DiagSeverity::kError;
    d.message = strfmt("%s: %s", to_string(v.check), v.message.c_str());
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace hbct
