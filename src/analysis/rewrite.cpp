#include "analysis/rewrite.h"

#include <algorithm>
#include <utility>

#include "analysis/rules.h"

namespace hbct::ctl {

namespace {

NodePtr mk(Node n) { return std::make_shared<const Node>(std::move(n)); }

NodePtr mk_const(bool v, SourceSpan span) {
  Node n;
  n.kind = v ? Node::Kind::kTrue : Node::Kind::kFalse;
  n.span = span;
  return mk(std::move(n));
}

NodePtr with_children(const Node& proto, std::vector<NodePtr> ch) {
  Node n = proto;
  n.children = std::move(ch);
  return mk(std::move(n));
}

bool term_eq(const Term& a, const Term& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case Term::Kind::kConst: return a.value == b.value;
    case Term::Kind::kVar: return a.proc == b.proc && a.var == b.var;
    case Term::Kind::kPos: return a.proc == b.proc;
    case Term::Kind::kInTransit: return a.from == b.from && a.to == b.to;
  }
  return false;
}

bool sum_eq(const Sum& a, const Sum& b) {
  if (a.terms.size() != b.terms.size()) return false;
  for (std::size_t i = 0; i < a.terms.size(); ++i)
    if (a.terms[i].first != b.terms[i].first ||
        !term_eq(a.terms[i].second, b.terms[i].second))
      return false;
  return true;
}

Cmp flip_cmp(Cmp op) {
  switch (op) {
    case Cmp::kLt: return Cmp::kGe;
    case Cmp::kLe: return Cmp::kGt;
    case Cmp::kEq: return Cmp::kNe;
    case Cmp::kNe: return Cmp::kEq;
    case Cmp::kGe: return Cmp::kLt;
    case Cmp::kGt: return Cmp::kLe;
  }
  return op;
}

/// Constant value of an atom with no state-dependent term, if it is one.
std::optional<bool> atom_constant(const Atom& a) {
  std::int64_t k = 0;
  for (const auto& [coef, t] : a.lhs.terms) {
    if (t.kind != Term::Kind::kConst) return std::nullopt;
    k += coef * t.value;
  }
  std::int64_t r = 0;
  for (const auto& [coef, t] : a.rhs.terms) {
    if (t.kind != Term::Kind::kConst) return std::nullopt;
    r += coef * t.value;
  }
  return cmp_eval(a.op, k, r);
}

struct Ctx {
  std::vector<RewriteStep>* steps;
};

void record(Ctx& cx, RuleId id, const Node& before, const NodePtr& after) {
  const RuleInfo& ri = rule_info(id);
  RewriteStep s;
  s.rule = ri.name;
  s.note = ri.soundness;
  s.before = to_string(before);
  s.after = to_string(*after);
  s.span = before.span;
  cx.steps->push_back(std::move(s));
}

NodePtr drop_children(Ctx& cx, RuleId id, const Node& cur,
                      const std::vector<bool>& keep, bool unit) {
  std::vector<NodePtr> ch;
  for (std::size_t i = 0; i < cur.children.size(); ++i)
    if (keep[i]) ch.push_back(cur.children[i]);
  NodePtr after;
  if (ch.empty())
    after = mk_const(unit, cur.span);
  else if (ch.size() == 1)
    after = ch[0];
  else
    after = with_children(cur, std::move(ch));
  record(cx, id, cur, after);
  return after;
}

/// Applies at most one boolean-layer rule at the root of `cur` (whose
/// children are already normalized). Returns `cur` unchanged when none
/// fires.
NodePtr step_local(const NodePtr& cur, Ctx& cx) {
  const Node& n = *cur;
  switch (n.kind) {
    case Node::Kind::kAtom: {
      if (auto v = atom_constant(n.atom)) {
        NodePtr after = mk_const(*v, n.span);
        record(cx, RuleId::kConstFold, n, after);
        return after;
      }
      return cur;
    }
    case Node::Kind::kNot: {
      const NodePtr& ch = n.children[0];
      switch (ch->kind) {
        case Node::Kind::kTrue:
        case Node::Kind::kFalse: {
          NodePtr after = mk_const(ch->kind == Node::Kind::kFalse, n.span);
          record(cx, RuleId::kConstFold, n, after);
          return after;
        }
        case Node::Kind::kNot: {
          NodePtr after = ch->children[0];
          record(cx, RuleId::kNnfPush, n, after);
          return after;
        }
        case Node::Kind::kAtom: {
          Node a = *ch;
          a.atom.op = flip_cmp(ch->atom.op);
          a.span = n.span;
          NodePtr after = mk(std::move(a));
          record(cx, RuleId::kNnfPush, n, after);
          return after;
        }
        case Node::Kind::kAnd:
        case Node::Kind::kOr: {
          Node m;
          m.kind = ch->kind == Node::Kind::kAnd ? Node::Kind::kOr
                                                : Node::Kind::kAnd;
          m.span = n.span;
          for (const NodePtr& g : ch->children) {
            Node neg;
            neg.kind = Node::Kind::kNot;
            neg.span = g->span;
            neg.children = {g};
            m.children.push_back(mk(std::move(neg)));
          }
          NodePtr after = mk(std::move(m));
          record(cx, RuleId::kNnfPush, n, after);
          return after;
        }
        default:
          return cur;  // !channels_empty, !terminated, !temporal: no rule
      }
    }
    case Node::Kind::kAnd:
    case Node::Kind::kOr: {
      const bool is_and = n.kind == Node::Kind::kAnd;
      // flatten: splice nested same-operator children.
      if (std::any_of(n.children.begin(), n.children.end(),
                      [&](const NodePtr& c) { return c->kind == n.kind; })) {
        std::vector<NodePtr> ch;
        for (const NodePtr& c : n.children) {
          if (c->kind == n.kind)
            ch.insert(ch.end(), c->children.begin(), c->children.end());
          else
            ch.push_back(c);
        }
        NodePtr after = with_children(n, std::move(ch));
        record(cx, RuleId::kFlatten, n, after);
        return after;
      }
      // const-fold: absorber short-circuits, units drop out.
      const auto absorber =
          is_and ? Node::Kind::kFalse : Node::Kind::kTrue;
      const auto unit = is_and ? Node::Kind::kTrue : Node::Kind::kFalse;
      for (const NodePtr& c : n.children)
        if (c->kind == absorber) {
          NodePtr after = mk_const(!is_and, n.span);
          record(cx, RuleId::kConstFold, n, after);
          return after;
        }
      if (std::any_of(n.children.begin(), n.children.end(),
                      [&](const NodePtr& c) { return c->kind == unit; })) {
        std::vector<bool> keep(n.children.size(), true);
        for (std::size_t i = 0; i < n.children.size(); ++i)
          if (n.children[i]->kind == unit) keep[i] = false;
        return drop_children(cx, RuleId::kConstFold, n, keep, is_and);
      }
      // dedup: idempotence.
      {
        std::vector<bool> keep(n.children.size(), true);
        bool any = false;
        for (std::size_t i = 0; i < n.children.size(); ++i) {
          if (!keep[i]) continue;
          for (std::size_t j = i + 1; j < n.children.size(); ++j)
            if (keep[j] && node_equal(n.children[i], n.children[j])) {
              keep[j] = false;
              any = true;
            }
        }
        if (any)
          return drop_children(cx, RuleId::kDedupIdempotent, n, keep,
                               is_and);
      }
      // absorption: in p || (p && q), the conjunction drops; dually for &&.
      {
        const auto inner =
            is_and ? Node::Kind::kOr : Node::Kind::kAnd;
        std::vector<bool> keep(n.children.size(), true);
        bool any = false;
        for (std::size_t i = 0; i < n.children.size(); ++i) {
          if (n.children[i]->kind != inner) continue;
          for (std::size_t j = 0; j < n.children.size(); ++j) {
            if (j == i || !keep[j] || n.children[j]->kind == inner)
              continue;
            for (const NodePtr& g : n.children[i]->children)
              if (node_equal(g, n.children[j])) {
                keep[i] = false;
                any = true;
                break;
              }
            if (!keep[i]) break;
          }
        }
        if (any) return drop_children(cx, RuleId::kAbsorb, n, keep, is_and);
      }
      return cur;
    }
    default:
      return cur;
  }
}

/// Applies at most one temporal-layer rule at the root of `cur`.
NodePtr step_temporal(const NodePtr& cur, Ctx& cx) {
  const Node& n = *cur;
  const auto is_unary_temporal = [](const NodePtr& c, Op op) {
    return c->kind == Node::Kind::kTemporal && c->op == op &&
           c->children.size() == 1;
  };
  switch (n.kind) {
    case Node::Kind::kNot: {
      const NodePtr& ch = n.children[0];
      if (ch->kind != Node::Kind::kTemporal || ch->children.size() != 1)
        return cur;
      Op dual;
      switch (ch->op) {
        case Op::kEF: dual = Op::kAG; break;
        case Op::kAG: dual = Op::kEF; break;
        case Op::kAF: dual = Op::kEG; break;
        case Op::kEG: dual = Op::kAF; break;
        default: return cur;  // EU/AU duals need a release operator
      }
      Node neg;
      neg.kind = Node::Kind::kNot;
      neg.span = ch->children[0]->span;
      neg.children = {ch->children[0]};
      Node m;
      m.kind = Node::Kind::kTemporal;
      m.op = dual;
      m.span = n.span;
      m.children = {mk(std::move(neg))};
      NodePtr after = mk(std::move(m));
      record(cx, RuleId::kNotTemporalDual, n, after);
      return after;
    }
    case Node::Kind::kTemporal: {
      if (n.children.size() == 1 && is_unary_temporal(n.children[0], n.op) &&
          (n.op == Op::kEF || n.op == Op::kAF || n.op == Op::kEG ||
           n.op == Op::kAG)) {
        NodePtr after = n.children[0];
        record(cx, RuleId::kTemporalIdempotent, n, after);
        return after;
      }
      return cur;
    }
    case Node::Kind::kAnd:
    case Node::Kind::kOr: {
      const bool is_and = n.kind == Node::Kind::kAnd;
      const Op merge_op = is_and ? Op::kAG : Op::kEF;
      // merge: EF a || EF b => EF(a || b); AG a && AG b => AG(a && b).
      std::vector<std::size_t> mergeable;
      for (std::size_t i = 0; i < n.children.size(); ++i)
        if (is_unary_temporal(n.children[i], merge_op))
          mergeable.push_back(i);
      if (mergeable.size() >= 2) {
        Node inner;
        inner.kind = n.kind;
        inner.span = n.span;
        for (std::size_t i : mergeable)
          inner.children.push_back(n.children[i]->children[0]);
        Node merged;
        merged.kind = Node::Kind::kTemporal;
        merged.op = merge_op;
        merged.span = n.span;
        merged.children = {mk(std::move(inner))};
        NodePtr merged_node = mk(std::move(merged));
        NodePtr after;
        if (mergeable.size() == n.children.size()) {
          after = merged_node;
        } else {
          std::vector<NodePtr> ch;
          std::size_t next = 0;
          for (std::size_t i = 0; i < n.children.size(); ++i) {
            if (next < mergeable.size() && mergeable[next] == i) {
              if (next == 0) ch.push_back(merged_node);
              ++next;
            } else {
              ch.push_back(n.children[i]);
            }
          }
          after = with_children(n, std::move(ch));
        }
        record(cx, is_and ? RuleId::kMergeAgAnd : RuleId::kMergeEfOr, n,
               after);
        return after;
      }
      // reflexive absorption: p || EF p => EF p (also AF); p && AG p =>
      // AG p (also EG).
      std::vector<bool> keep(n.children.size(), true);
      bool any = false;
      for (std::size_t i = 0; i < n.children.size(); ++i) {
        const NodePtr& c = n.children[i];
        if (c->kind != Node::Kind::kTemporal || c->children.size() != 1)
          continue;
        const bool absorbing =
            is_and ? (c->op == Op::kAG || c->op == Op::kEG)
                   : (c->op == Op::kEF || c->op == Op::kAF);
        if (!absorbing) continue;
        for (std::size_t j = 0; j < n.children.size(); ++j)
          if (j != i && keep[j] &&
              node_equal(n.children[j], c->children[0])) {
            keep[j] = false;
            any = true;
          }
      }
      if (any)
        return drop_children(cx, RuleId::kTemporalAbsorb, n, keep, is_and);
      return cur;
    }
    default:
      return cur;
  }
}

NodePtr walk(const NodePtr& n, Ctx& cx, bool temporal_rules) {
  if (!n) return n;
  std::vector<NodePtr> ch;
  ch.reserve(n->children.size());
  bool changed = false;
  for (const NodePtr& c : n->children) {
    NodePtr c2 = walk(c, cx, temporal_rules);
    changed = changed || c2 != c;
    ch.push_back(std::move(c2));
  }
  NodePtr cur = changed ? with_children(*n, std::move(ch)) : n;
  NodePtr next = step_local(cur, cx);
  if (temporal_rules && next == cur) next = step_temporal(cur, cx);
  // A rule fired: its result may expose further rewrites both below (De
  // Morgan creates fresh negations) and at the root; re-walk it. Every
  // rule strictly shrinks the formula or pushes !/temporal depth down, so
  // this terminates.
  if (next != cur) return walk(next, cx, temporal_rules);
  return cur;
}

// ---- DNF/CNF ---------------------------------------------------------------

bool is_literal(const NodePtr& n) {
  switch (n->kind) {
    case Node::Kind::kAtom:
    case Node::Kind::kChannelsEmpty:
    case Node::Kind::kTerminated:
    case Node::Kind::kTrue:
    case Node::Kind::kFalse:
      return true;
    case Node::Kind::kNot:
      return is_literal(n->children[0]);
    default:
      return false;
  }
}

using Clause = std::vector<NodePtr>;

/// Clauses of `n` for DNF (`inner_and` true: clauses are conjunctions) or
/// CNF (false: clauses are disjunctions). False on budget overflow or a
/// non-state subformula.
bool clauses_of(const NodePtr& n, bool inner_and, std::size_t max_terms,
                std::vector<Clause>& out) {
  if (is_literal(n)) {
    out.push_back({n});
    return out.size() <= max_terms;
  }
  const auto outer =
      inner_and ? Node::Kind::kOr : Node::Kind::kAnd;
  const auto inner = inner_and ? Node::Kind::kAnd : Node::Kind::kOr;
  if (n->kind == outer) {
    for (const NodePtr& c : n->children)
      if (!clauses_of(c, inner_and, max_terms, out)) return false;
    return true;
  }
  if (n->kind == inner) {
    std::vector<Clause> acc{{}};
    for (const NodePtr& c : n->children) {
      std::vector<Clause> cs;
      if (!clauses_of(c, inner_and, max_terms, cs)) return false;
      std::vector<Clause> next;
      if (acc.size() * cs.size() > max_terms) return false;
      for (const Clause& a : acc)
        for (const Clause& b : cs) {
          Clause m = a;
          m.insert(m.end(), b.begin(), b.end());
          next.push_back(std::move(m));
        }
      acc = std::move(next);
    }
    out.insert(out.end(), acc.begin(), acc.end());
    return out.size() <= max_terms;
  }
  return false;  // temporal operator: not a state formula
}

NodePtr rebuild(std::vector<Clause> clauses, bool inner_and,
                SourceSpan span) {
  std::vector<NodePtr> parts;
  parts.reserve(clauses.size());
  for (Clause& cl : clauses) {
    if (cl.size() == 1) {
      parts.push_back(std::move(cl[0]));
      continue;
    }
    Node m;
    m.kind = inner_and ? Node::Kind::kAnd : Node::Kind::kOr;
    m.span = span;
    m.children = std::move(cl);
    parts.push_back(mk(std::move(m)));
  }
  if (parts.size() == 1) return parts[0];
  Node m;
  m.kind = inner_and ? Node::Kind::kOr : Node::Kind::kAnd;
  m.span = span;
  m.children = std::move(parts);
  return mk(std::move(m));
}

NodePtr to_normal_form(const NodePtr& n, bool inner_and,
                       std::size_t max_terms) {
  if (!n) return nullptr;
  std::vector<Clause> clauses;
  if (!clauses_of(n, inner_and, max_terms, clauses) || clauses.empty())
    return nullptr;
  return rebuild(std::move(clauses), inner_and, n->span);
}

}  // namespace

bool node_equal(const NodePtr& a, const NodePtr& b) {
  if (a == b) return true;
  if (!a || !b) return false;
  if (a->kind != b->kind) return false;
  if (a->kind == Node::Kind::kAtom)
    return a->atom.op == b->atom.op && sum_eq(a->atom.lhs, b->atom.lhs) &&
           sum_eq(a->atom.rhs, b->atom.rhs);
  if (a->kind == Node::Kind::kTemporal && a->op != b->op) return false;
  if (a->children.size() != b->children.size()) return false;
  for (std::size_t i = 0; i < a->children.size(); ++i)
    if (!node_equal(a->children[i], b->children[i])) return false;
  return true;
}

Rewritten normalize(const NodePtr& n) {
  Rewritten r;
  Ctx cx{&r.steps};
  r.node = walk(n, cx, /*temporal_rules=*/false);
  return r;
}

Rewritten rescue_temporal(const NodePtr& n) {
  Rewritten r;
  Ctx cx{&r.steps};
  r.node = walk(n, cx, /*temporal_rules=*/true);
  return r;
}

NodePtr to_dnf(const NodePtr& n, std::size_t max_terms) {
  return to_normal_form(n, /*inner_and=*/true, max_terms);
}

NodePtr to_cnf(const NodePtr& n, std::size_t max_terms) {
  return to_normal_form(n, /*inner_and=*/false, max_terms);
}

Query reframe(const NodePtr& root) {
  Query q;
  q.root = root;
  if (root && root->kind == Node::Kind::kTemporal &&
      !contains_temporal(root->children[0]) &&
      (root->children.size() < 2 ||
       !contains_temporal(root->children[1]))) {
    q.temporal = true;
    q.op = root->op;
    q.p = root->children[0];
    if (root->children.size() == 2) q.q = root->children[1];
  } else {
    q.temporal = false;
    q.p = root;
  }
  return q;
}

}  // namespace hbct::ctl
