#include "analysis/plan.h"

#include "analysis/rules.h"
#include "predicate/conjunctive.h"
#include "predicate/disjunctive.h"
#include "util/string_util.h"

namespace hbct {

namespace {

// Local name table instead of to_string(Op): that symbol lives in
// hbct_detect, which links *against* this library.
const char* op_name(Op op) {
  switch (op) {
    case Op::kEF: return "EF";
    case Op::kAF: return "AF";
    case Op::kEG: return "EG";
    case Op::kAG: return "AG";
    case Op::kEU: return "EU";
    default: return "AU";
  }
}

}  // namespace

PredShape shape_of(const PredicatePtr& p, const Computation& c) {
  PredShape s;
  s.classes = effective_classes(*p, c);
  s.conjunctive_form = as_conjunctive(p) != nullptr;
  s.disjunctive_form = as_disjunctive(p) != nullptr;
  s.num_disjuncts = p->disjuncts().size();
  s.num_conjuncts = p->conjuncts().size();
  s.has_forbidden = p->has_forbidden();
  s.has_forbidden_down = p->has_forbidden_down();
  return s;
}

namespace {

constexpr DetectPlan plan(Algo a, const char* name, const char* cost) {
  return DetectPlan{a, name, cost, false, false, false};
}

DetectPlan fallback(Algo a, const char* name, bool np_hard,
                    bool allow_exponential) {
  DetectPlan p{a, name, "exponential", true, np_hard, false};
  p.refused = !allow_exponential;
  return p;
}

}  // namespace

DetectPlan plan_unary(Op op, const PredShape& s, bool allow_exponential) {
  const ClassSet cls = s.classes;
  if (cls & kClassStable)
    return (op == Op::kEF || op == Op::kAF)
               ? plan(Algo::kStableFinal, "stable-final", "O(n)")
               : plan(Algo::kStableInitial, "stable-initial", "O(n)");

  // Equilevel: the satisfying set lives on the diagonal chain, so EF is a
  // chain scan, and EG/AG are decided by the chain plus the observation
  // that any off-diagonal consistent cut falsifies the predicate. AF is NOT
  // chain-decidable (observations can dodge the diagonal entirely) and
  // falls through to the ordinary routes.
  if ((cls & kClassEquilevel) &&
      (op == Op::kEF || op == Op::kEG || op == Op::kAG))
    return plan(Algo::kEquilevelScan, "equilevel-scan", "O(n^2 min|E_i|)");

  switch (op) {
    case Op::kEF:
      if (s.disjunctive_form)
        return plan(Algo::kEfDisjunctive, "ef-disjunctive-scan", "O(n|E|)");
      if (s.conjunctive_form)
        return plan(Algo::kGwWeakConjunctive, "gw-weak-conjunctive",
                    "O(n^2|E|)");
      if ((cls & kClassLinear) && s.has_forbidden)
        return plan(Algo::kChaseGargEf, "chase-garg-ef", "O(n^2|E|)");
      if ((cls & kClassPostLinear) && s.has_forbidden_down)
        return plan(Algo::kChaseGargEfDual, "chase-garg-ef-dual",
                    "O(n^2|E|)");
      if (cls & kClassObserverIndependent)
        return plan(Algo::kOiScan, "oi-single-observation", "O(n|E|)");
      break;
    case Op::kAF:
      if (s.disjunctive_form)
        return plan(Algo::kAfDisjunctive, "af-disjunctive", "O(n|E|)");
      if (s.conjunctive_form)
        return plan(Algo::kGwStrongConjunctive, "gw-strong-conjunctive",
                    "O(n^2|E|)");
      if (cls & kClassObserverIndependent)
        return plan(Algo::kOiScan, "oi-single-observation", "O(n|E|)");
      break;
    case Op::kEG:
      if (s.conjunctive_form)
        return plan(Algo::kEgConjunctiveScan, "eg-conjunctive-scan",
                    "O(n^2|E|)");
      if (s.disjunctive_form)
        return plan(Algo::kEgDisjunctive, "eg-disjunctive", "O(n^2|E|)");
      if (cls & kClassLinear)
        return plan(Algo::kA1EgLinear, "A1-eg-linear", "O(n^2|E|)");
      if (cls & kClassPostLinear)
        return plan(Algo::kA1EgPostLinear, "A1-eg-post-linear", "O(n^2|E|)");
      break;
    case Op::kAG:
      if (s.conjunctive_form)
        return plan(Algo::kAgConjunctiveScan, "ag-conjunctive-scan",
                    "O(n^2|E|)");
      if (s.disjunctive_form)
        return plan(Algo::kAgDisjunctive, "ag-disjunctive", "O(n^2|E|)");
      if (cls & kClassLinear)
        return plan(Algo::kA2AgLinear, "A2-ag-linear", "O(n|E|) evals");
      if (cls & kClassPostLinear)
        return plan(Algo::kA2AgPostLinear, "A2-ag-post-linear",
                    "O(n|E|) evals");
      break;
    default:
      break;  // EU/AU are plan_until's business; fall through to the assert
  }

  if (op == Op::kEF && s.num_disjuncts > 0)
    return plan(Algo::kEfOrSplit, "ef-or-split", "Σ disjunct plans");
  if (op == Op::kAG && s.num_conjuncts > 0)
    return plan(Algo::kAgAndSplit, "ag-and-split", "Σ conjunct plans");

  const bool oi = (cls & kClassObserverIndependent) != 0;
  switch (op) {
    case Op::kEF:
      return fallback(Algo::kEfDfs, "ef-dfs", false, allow_exponential);
    case Op::kAF:
      return fallback(Algo::kAfDfs, "af-dfs", false, allow_exponential);
    case Op::kEG:
      // NP-complete already for observer-independent predicates (Thm 5).
      return fallback(Algo::kEgDfs, "eg-dfs", oi, allow_exponential);
    default:
      // Dually co-NP-complete (Thm 6).
      return fallback(Algo::kAgDfs, "ag-dfs", oi, allow_exponential);
  }
}

DetectPlan plan_until(Op op, const PredShape& p, const PredShape& q,
                      bool all_q_disjuncts_linear, bool allow_exponential) {
  if (op == Op::kEU) {
    // A3 locates I_q with the Chase–Garg walk, so q needs its oracle.
    if (p.conjunctive_form && (q.classes & kClassLinear) && q.has_forbidden)
      return plan(Algo::kA3Eu, "A3-eu", "O(n^2|E|)");
    if (p.conjunctive_form && q.num_disjuncts > 0 && all_q_disjuncts_linear)
      return plan(Algo::kEuOrSplit, "eu-or-split(A3)", "Σ disjunct plans");
    return fallback(Algo::kEuDfs, "eu-dfs", false, allow_exponential);
  }
  if (p.disjunctive_form && q.disjunctive_form)
    return plan(Algo::kAuDisjunctive, "au-disjunctive", "O(n^2|E|)");
  return fallback(Algo::kAuDfs, "au-dfs", false, allow_exponential);
}

std::string plan_to_string(const DetectPlan& p) {
  return strfmt("%s (%s)", p.name, p.cost);
}

std::vector<Diagnostic> plan_diagnostics(Op op, const Predicate& p,
                                         const PredShape& s,
                                         const DetectPlan& pl) {
  std::vector<Diagnostic> out;
  // describe() builds a string recursively; on the no-findings fast path
  // (every detect() call in kLintOnly mode) it must not run at all.
  std::string desc_cache;
  const auto desc = [&]() -> const char* {
    if (desc_cache.empty()) desc_cache = p.describe();
    return desc_cache.c_str();
  };

  if (s.classes == 0 && s.num_disjuncts == 0 && s.num_conjuncts == 0) {
    Diagnostic d;
    d.code = DiagCode::kUnclassifiedPredicate;
    d.message = strfmt("operand '%s' has no structural class on this "
                       "computation; only explicit search applies",
                       desc());
    d.suggestion = "build the predicate from local/conjunctive/relational "
                   "combinators, or assert a class you can audit";
    out.push_back(std::move(d));
  }

  const bool linear_no_oracle =
      (s.classes & kClassLinear) && !s.has_forbidden;
  const bool postlinear_no_oracle =
      (s.classes & kClassPostLinear) && !s.has_forbidden_down;
  if ((linear_no_oracle || postlinear_no_oracle) &&
      (pl.exponential || pl.algo == Algo::kOiScan)) {
    Diagnostic d;
    d.code = DiagCode::kMissingOracle;
    d.message = strfmt(
        "'%s' claims %s but implements no %s oracle; the Chase-Garg "
        "advancement route is skipped",
        desc(), linear_no_oracle ? "linear" : "post-linear",
        linear_no_oracle ? "forbidden()" : "forbidden_down()");
    d.suggestion = "override has_forbidden()/forbidden() (or the _down "
                   "duals) on the predicate";
    out.push_back(std::move(d));
  }

  if (pl.exponential) {
    Diagnostic d;
    d.code = DiagCode::kExponentialFallback;
    d.message = strfmt("%s over '%s' dispatches to %s (worst-case "
                       "exponential in the number of processes)%s",
                       op_name(op), desc(), pl.name,
                       pl.refused ? "; allow_exponential is off, so the "
                                    "verdict degrades to kUnknown"
                                  : "");
    // Suggestions are rendered from the rewrite-rule catalog, so the lint
    // names the exact rule optimize=kApply would run (analysis/rules.h is
    // the single source of truth for the texts).
    switch (op) {
      case Op::kEF:
      case Op::kAF:
        d.suggestion = rule_info(op == Op::kEF ? RuleId::kEfDnfSplit
                                               : RuleId::kAdvisoryBudget)
                           .suggestion;
        break;
      case Op::kAG:
        d.suggestion = rule_info(RuleId::kAgCnfSplit).suggestion;
        break;
      case Op::kEU:
        d.suggestion = rule_info(RuleId::kAdvisoryEuA3).suggestion;
        break;
      case Op::kAU:
        d.suggestion = rule_info(RuleId::kAdvisoryAuDual).suggestion;
        break;
      default:
        d.suggestion = rule_info(RuleId::kAdvisoryBudget).suggestion;
        break;
    }
    out.push_back(std::move(d));
  }

  if (pl.np_hard) {
    Diagnostic d;
    d.code = DiagCode::kIntractableClass;
    d.message = strfmt(
        "%s over the observer-independent predicate '%s' is %s (Thm %s); "
        "no polynomial route can exist",
        op_name(op), desc(),
        op == Op::kEG ? "NP-complete" : "co-NP-complete",
        op == Op::kEG ? "5" : "6");
    out.push_back(std::move(d));
  }

  if (pl.algo == Algo::kEfOrSplit || pl.algo == Algo::kAgAndSplit ||
      pl.algo == Algo::kEuOrSplit) {
    const std::size_t width = pl.algo == Algo::kAgAndSplit
                                  ? s.num_conjuncts
                                  : s.num_disjuncts;
    Diagnostic d;
    d.code = DiagCode::kSplitDispatch;
    d.severity = DiagSeverity::kInfo;
    d.message = strfmt("%s distributes over %zu operands of '%s'; cost is "
                       "the sum of the per-operand plans",
                       op_name(op), width, desc());
    out.push_back(std::move(d));
  }

  if (p.classes_asserted() && !pl.exponential) {
    Diagnostic d;
    d.code = DiagCode::kAssertedClasses;
    d.severity = DiagSeverity::kInfo;
    d.message = strfmt("the class bits of '%s' are user-asserted and "
                       "unverified, and the %s route trusts them",
                       desc(), pl.name);
    d.suggestion = "run AuditMode::kFull (or audit_predicate) to verify the "
                   "claims against the lattice definitions";
    out.push_back(std::move(d));
  }

  return out;
}

}  // namespace hbct
