// Syntactic predicate-class inference over the CTL AST.
//
// compile_state lowers many atoms to structurally classified predicates
// (local, conjunctive, relational...), but mixed sums — `pos(0)+pos(1) > 3`,
// sums over pos() and variables, subtraction shapes — fall through to the
// classless arith_fallback and today dispatch straight into the exponential
// search (W001). Most of those predicates *do* belong to Table-1 classes;
// the membership is just invisible to the dynamic_cast-based shape probe.
//
// infer_classes derives class bits bottom-up from the *syntax* of the
// formula plus per-computation monotonicity facts, the same facts the
// relational predicates consult:
//
//   atom judgments     Σ of non-decreasing terms ≥ k is up-closed (stable)
//                      and join-closed (post-linear); ≤ k is down-closed,
//                      hence meet-closed (linear) and observer-independent,
//                      and its negation is stable. Mirrored for
//                      non-increasing sums. pos(i) == pos(j) on a 2-process
//                      computation is equilevel. Single-process atoms are
//                      local. All-constant sums are constant.
//   connective algebra && and || combine exactly like the AndPredicate /
//                      OrPredicate class algebra (∩ under the closure
//                      masks); ! swaps a formula's classes with the classes
//                      of its negation.
//
// Every inference carries class bits for the formula AND for its negation
// (the `co_classes`) as a pair, so negation is a swap instead of a loss —
// this is what lets `!(sum <= k)` keep the stable bit the compiler's
// generic NotPredicate drops. Each derived bit comes with a Derivation tree
// (one node per AST node, premises per child) naming the judgment and its
// instantiated side conditions; the derivation is machine-checkable in that
// the claimed bits of every subtree can be handed to audit_predicate and
// must never be refuted (tests/test_optimize.cpp does exactly this).
#pragma once

#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "ctl/formula.h"
#include "predicate/predicate.h"

namespace hbct::ctl {

/// One node of the derivation tree justifying the inferred bits of one AST
/// node. `classes`/`co_classes` are closure-saturated; `rule` names the
/// judgment ("atom-monotone", "and-meet", "not-dual", ...); `detail` states
/// the instantiated side conditions ("every term non-decreasing on this
/// computation"); `span` anchors to the subformula's byte range in the
/// query text; `premises` mirror the AST children left to right.
struct Derivation {
  std::string rule;
  ClassSet classes = 0;
  ClassSet co_classes = 0;
  std::string detail;
  SourceSpan span;
  std::vector<Derivation> premises;
};

/// Result of inference on one (sub)formula: class bits of the formula, of
/// its negation, and the derivation justifying both.
struct Inference {
  ClassSet classes = 0;
  ClassSet co_classes = 0;
  Derivation derivation;

  /// True when the formula is down-closed (its negation is stable): the
  /// costable-collapse rewrite applies to EF/AF of such a formula.
  bool down_closed() const { return (co_classes & kClassStable) != 0; }
};

/// Infers class bits for the state formula `n` on computation `c`.
/// Temporal nodes (outside a state formula) infer nothing. A null node
/// infers nothing.
Inference infer_classes(const Computation& c, const NodePtr& n);

/// Indented multi-line rendering of the derivation tree.
std::string to_string(const Derivation& d);

/// The leaf judgments (nodes with no premises), left to right. These are
/// the atoms the auditor cannot see through; everything above them follows
/// by the connective algebra.
std::vector<const Derivation*> derivation_leaves(const Derivation& d);

}  // namespace hbct::ctl
