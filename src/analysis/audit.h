// Predicate class auditor: semantic verification of claimed class bits.
//
// Every Table-1 algorithm is only sound when the predicate really belongs
// to the class it claims (classes() is trusted, and make_asserted lets the
// user claim anything). The auditor checks the claims against the lattice
// definitions of Section 4 — on small computations exhaustively over the
// explicit lattice, on large ones over budget-bounded samples — and returns
// a concrete counterexample cut (or cut pair) for every violation:
//
//   linear          meet of two satisfying cuts must satisfy p
//   post-linear     join of two satisfying cuts must satisfy p
//   regular         both of the above (sublattice)
//   stable          once true, true at every successor cut
//   observer-indep. no observation may miss p while another sees it
//   conjunctive     p(G) = ∧_i good_i(G[i]) for the canonical good sets
//   disjunctive     p(G) = ∨_i cand_i(G[i]) for the canonical candidates
//   local           truth depends on a single process's coordinate
//
// plus the advancement-oracle contracts (forbidden()/forbidden_down()) and
// the De Morgan contract of negate(). The property suite uses the auditor
// as an oracle against deliberately corrupted class bits; detect() can run
// it as a pre-flight check (DispatchOptions::audit == AuditMode::kFull).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "poset/computation.h"
#include "poset/cut.h"
#include "predicate/predicate.h"

namespace hbct {

struct AuditOptions {
  /// Lattices up to this many cuts are audited exhaustively; larger ones
  /// fall back to sampled observations (AuditResult::exhaustive = false).
  std::size_t max_lattice = std::size_t{1} << 12;
  /// Number of random observations walked in sampled mode.
  std::size_t samples = 64;
  std::uint64_t seed = 2002;
  /// Cap on the quadratic pair loops (meet/join closure, oracle checks).
  std::size_t max_pair_checks = std::size_t{1} << 16;
  /// Also verify negate(): semantic complement plus the classes the
  /// negation claims for itself.
  bool check_negation = true;
};

enum class AuditCheck {
  kLinearMeet,
  kPostLinearJoin,
  kStableUpClosed,
  kObserverIndependent,
  kConjunctiveDecomp,
  kDisjunctiveDecomp,
  kLocalDependence,
  kEquilevelDiagonal,
  kForbiddenOracle,
  kForbiddenDownOracle,
  kNegationSemantics,
  kNegationClasses,
};

const char* to_string(AuditCheck c);

struct AuditViolation {
  AuditCheck check;
  std::string message;
  /// The cuts witnessing the violation (e.g. two satisfying cuts and their
  /// non-satisfying meet; a missed-observation path for OI).
  std::vector<Cut> counterexample;
};

struct AuditResult {
  /// True when the whole lattice was enumerated: a clean result is a proof
  /// for this computation. False = sampled: violations are still real
  /// counterexamples, but a clean result is only evidence.
  bool exhaustive = false;
  /// Class bits whose definitions were actually exercised (sampled mode
  /// cannot check the decomposition classes, for example).
  ClassSet checked = 0;
  std::size_t cuts_examined = 0;
  std::vector<AuditViolation> violations;

  bool ok() const { return violations.empty(); }
};

/// Audits the class bits `p` claims (effective_classes) on `c`.
AuditResult audit_predicate(const PredicatePtr& p, const Computation& c,
                            const AuditOptions& opt = {});

/// Renders an audit result as diagnostics: E101 for class-definition
/// violations, E102 for oracle-contract violations, E103 for negation
/// contract violations.
std::vector<Diagnostic> audit_diagnostics(const AuditResult& r);

}  // namespace hbct
