#include "analysis/diagnostics.h"

#include <sstream>

#include "util/string_util.h"

namespace hbct {

std::string to_string(DiagCode c) {
  const auto v = static_cast<std::uint16_t>(c);
  return strfmt("%c%03u", v >= 100 ? 'E' : 'W', v);
}

const char* to_string(DiagSeverity s) {
  switch (s) {
    case DiagSeverity::kInfo: return "info";
    case DiagSeverity::kWarning: return "warning";
    case DiagSeverity::kError: return "error";
  }
  return "?";
}

std::string to_string(const RewriteStep& s) {
  return s.rule + ": " + s.before + " => " + s.after;
}

std::string to_string(const Diagnostic& d) {
  std::ostringstream os;
  os << to_string(d.code);
  if (d.span.valid())
    os << " col " << d.span.begin + 1 << "-" << d.span.end;
  os << " [" << to_string(d.severity) << "]: " << d.message;
  if (!d.suggestion.empty()) os << " (suggest: " << d.suggestion << ")";
  return os.str();
}

std::string render_diagnostics(const std::vector<Diagnostic>& ds) {
  std::string out;
  for (const Diagnostic& d : ds) {
    out += to_string(d);
    out += '\n';
  }
  return out;
}

}  // namespace hbct
