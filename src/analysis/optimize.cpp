#include "analysis/optimize.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "analysis/plan.h"
#include "analysis/rewrite.h"
#include "analysis/rules.h"
#include "obs/metrics.h"
#include "util/string_util.h"

namespace hbct::ctl {

namespace {

constexpr double kCostCap = 1e18;

/// Per-computation magnitudes the Table-1 formulas are written in.
struct CostModel {
  double n = 1;        // processes
  double events = 1;   // |E|
  double min_e = 1;    // min_i |E_i|
  double lattice = 1;  // Π (|E_i| + 1): explicit state-space size
};

CostModel cost_model(const Computation& c) {
  CostModel m;
  m.n = std::max<double>(1, c.num_procs());
  m.events = std::max<double>(1, static_cast<double>(c.total_events()));
  m.min_e = m.events;
  m.lattice = 1;
  for (ProcId i = 0; i < c.num_procs(); ++i) {
    const double e = static_cast<double>(c.num_events(i));
    m.min_e = std::min(m.min_e, e);
    m.lattice = std::min(kCostCap, m.lattice * (e + 1));
  }
  m.min_e = std::max(1.0, m.min_e);
  return m;
}

double algo_cost(Algo a, const CostModel& m) {
  switch (a) {
    case Algo::kStableFinal:
    case Algo::kStableInitial:
      return m.n;
    case Algo::kOiScan:
    case Algo::kEfDisjunctive:
    case Algo::kAfDisjunctive:
    case Algo::kA2AgLinear:
    case Algo::kA2AgPostLinear:
      return m.n * m.events;
    case Algo::kEquilevelScan:
      return m.n * m.n * m.min_e;
    case Algo::kGwWeakConjunctive:
    case Algo::kGwStrongConjunctive:
    case Algo::kChaseGargEf:
    case Algo::kChaseGargEfDual:
    case Algo::kEgConjunctiveScan:
    case Algo::kEgDisjunctive:
    case Algo::kAgConjunctiveScan:
    case Algo::kAgDisjunctive:
    case Algo::kA1EgLinear:
    case Algo::kA1EgPostLinear:
    case Algo::kA3Eu:
    case Algo::kAuDisjunctive:
      return m.n * m.n * m.events;
    case Algo::kEfOrSplit:
    case Algo::kAgAndSplit:
    case Algo::kEuOrSplit:
      return 0;  // caller sums the per-part plans
    case Algo::kEfDfs:
    case Algo::kAfDfs:
    case Algo::kEgDfs:
    case Algo::kAgDfs:
    case Algo::kEuDfs:
    case Algo::kAuDfs:
      return m.lattice;
  }
  return m.lattice;
}

double unary_route_cost(Op op, const PredicatePtr& p, const Computation& c,
                        bool allow_exp, const CostModel& m) {
  const PredShape s = shape_of(p, c);
  const DetectPlan pl = plan_unary(op, s, allow_exp);
  if (pl.algo == Algo::kEfOrSplit || pl.algo == Algo::kAgAndSplit) {
    const auto parts = pl.algo == Algo::kEfOrSplit ? p->disjuncts()
                                                   : p->conjuncts();
    double sum = 0;
    for (const PredicatePtr& part : parts)
      sum = std::min(kCostCap,
                     sum + unary_route_cost(op, part, c, allow_exp, m));
    return sum;
  }
  return algo_cost(pl.algo, m);
}

bool q_splits_into_linear(const Computation& c, const PredicatePtr& q) {
  const auto parts = q->disjuncts();
  return !parts.empty() &&
         std::all_of(parts.begin(), parts.end(), [&](const PredicatePtr& s) {
           return (effective_classes(*s, c) & kClassLinear) != 0 &&
                  s->has_forbidden();
         });
}

std::size_t node_count(const NodePtr& n) {
  if (!n) return 0;
  std::size_t k = 1;
  for (const NodePtr& c : n->children) k += node_count(c);
  return k;
}

/// One priced alternative: a query form plus (already compiled, possibly
/// refined) operands.
struct Candidate {
  Query query;
  PredicatePtr p;  // null on the lattice path or when compiling failed
  PredicatePtr q;
  std::vector<RewriteStep> steps;
  double cost = kCostCap;
  std::string plan;
};

RewriteStep make_step(RuleId id, std::string before, std::string after,
                      SourceSpan span) {
  const RuleInfo& ri = rule_info(id);
  return RewriteStep{ri.name, ri.soundness, std::move(before),
                     std::move(after), span};
}

/// Prices `cand` and fills its plan string. The route cost is scaled by
/// the formula's node count as a per-evaluation proxy, so redundancy
/// removals (dedup, absorption, constant folding) price strictly cheaper
/// even when the route is unchanged.
void price(const Computation& c, Candidate& cand, bool allow_exp,
           const CostModel& m) {
  const NodePtr& root = cand.query.root ? cand.query.root : cand.query.p;
  const double size = static_cast<double>(std::max<std::size_t>(
      1, node_count(root)));
  if (!cand.query.temporal && root && contains_temporal(root)) {
    cand.plan = "lattice-nested-ctl (exponential)";
    cand.cost = std::min(kCostCap, m.n * m.lattice * size);
    return;
  }
  if (!cand.query.temporal) {
    cand.plan = "state-eval(initial) (O(1) evals)";
    cand.cost = size;
    return;
  }
  if (!cand.p) {
    cand.cost = kCostCap;
    return;
  }
  if (cand.query.op == Op::kEU || cand.query.op == Op::kAU) {
    if (!cand.q) {
      cand.cost = kCostCap;
      return;
    }
    const PredShape sp = shape_of(cand.p, c);
    const PredShape sq = shape_of(cand.q, c);
    const DetectPlan pl = plan_until(
        cand.query.op, sp, sq,
        cand.query.op == Op::kEU && q_splits_into_linear(c, cand.q),
        allow_exp);
    cand.plan = plan_to_string(pl);
    double route = algo_cost(pl.algo, m);
    if (pl.algo == Algo::kEuOrSplit)
      route = static_cast<double>(std::max<std::size_t>(
                  1, cand.q->disjuncts().size())) *
              algo_cost(Algo::kA3Eu, m);
    cand.cost = std::min(kCostCap, route * size);
    return;
  }
  const PredShape sp = shape_of(cand.p, c);
  const DetectPlan pl = plan_unary(cand.query.op, sp, allow_exp);
  cand.plan = plan_to_string(pl);
  cand.cost = std::min(
      kCostCap, unary_route_cost(cand.query.op, cand.p, c, allow_exp, m) *
                    size);
}

/// Compiles the candidate's operands in place; returns false when the
/// (non-lattice) form does not compile.
bool compile_candidate(Candidate& cand) {
  const NodePtr& root = cand.query.root ? cand.query.root : cand.query.p;
  if (!cand.query.temporal && root && contains_temporal(root)) return true;
  CompileResult p = compile_state(cand.query.p);
  if (!p.ok) return false;
  cand.p = p.pred;
  if (cand.query.temporal &&
      (cand.query.op == Op::kEU || cand.query.op == Op::kAU)) {
    CompileResult q = compile_state(cand.query.q);
    if (!q.ok) return false;
    cand.q = q.pred;
  }
  return true;
}

/// Dispatch findings for the chosen form, span-anchored exactly as
/// analysis/lint.cpp does (per-operand anchoring, plan-level findings
/// raised once on p).
std::vector<Diagnostic> residual_of(const Computation& c,
                                    const Candidate& cand, bool allow_exp) {
  std::vector<Diagnostic> out;
  const NodePtr& root = cand.query.root ? cand.query.root : cand.query.p;
  if (!root) return out;
  const auto anchor = [](std::vector<Diagnostic>& ds, SourceSpan span) {
    for (Diagnostic& d : ds)
      if (!d.span.valid()) d.span = span;
  };
  if (!cand.query.temporal && contains_temporal(root)) {
    Diagnostic d;
    d.code = DiagCode::kNestedTemporal;
    d.message =
        "formula nests temporal operators (outside the Section 4 "
        "fragment); it is evaluated by labeling the explicit lattice of "
        "consistent cuts, worst-case exponential in the number of "
        "processes";
    d.suggestion =
        "restructure as a single outermost EF/AF/EG/AG/E[U]/A[U] over "
        "temporal-free state formulas to enable the Table-1 algorithms";
    d.span = root->span;
    out.push_back(std::move(d));
    return out;
  }
  if (!cand.query.temporal || !cand.p) return out;
  const PredShape sp = shape_of(cand.p, c);
  if (cand.query.op == Op::kEU || cand.query.op == Op::kAU) {
    if (!cand.q) return out;
    const PredShape sq = shape_of(cand.q, c);
    const DetectPlan pl = plan_until(
        cand.query.op, sp, sq,
        cand.query.op == Op::kEU && q_splits_into_linear(c, cand.q),
        allow_exp);
    out = plan_diagnostics(cand.query.op, *cand.p, sp, pl);
    anchor(out, cand.query.p->span);
    std::vector<Diagnostic> dq =
        plan_diagnostics(cand.query.op, *cand.q, sq, pl);
    anchor(dq, cand.query.q->span);
    for (Diagnostic& d : dq)
      if (d.code != DiagCode::kExponentialFallback &&
          d.code != DiagCode::kIntractableClass &&
          d.code != DiagCode::kSplitDispatch)
        out.push_back(std::move(d));
    return out;
  }
  const DetectPlan pl = plan_unary(cand.query.op, sp, allow_exp);
  out = plan_diagnostics(cand.query.op, *cand.p, sp, pl);
  anchor(out, cand.query.p->span);
  return out;
}

}  // namespace

OptimizeOutcome optimize_query(const Computation& c, const Query& query,
                               bool allow_exponential) {
  const CostModel m = cost_model(c);
  std::vector<Candidate> cands;

  // Candidate 0: the query as written.
  {
    Candidate base;
    base.query = query;
    compile_candidate(base);
    price(c, base, allow_exponential, m);
    cands.push_back(std::move(base));
  }
  const double cost_before = cands[0].cost;
  const std::string plan_before = cands[0].plan;

  // Candidate 1: boolean + temporal rewrite of the whole formula.
  const NodePtr root = query.root ? query.root : query.p;
  Rewritten rw = rescue_temporal(root);
  Query rw_query = query;
  if (!rw.steps.empty()) {
    rw_query = reframe(rw.node);
    Candidate cand;
    cand.query = rw_query;
    cand.steps = rw.steps;
    if (compile_candidate(cand)) {
      price(c, cand, allow_exponential, m);
      cands.push_back(std::move(cand));
    }
  }

  // Operand-level candidates build on the rewritten fragment form.
  Inference inf;
  if (rw_query.temporal && rw_query.op != Op::kEU &&
      rw_query.op != Op::kAU) {
    const Op op = rw_query.op;
    const NodePtr& operand = rw_query.p;
    inf = infer_classes(c, operand);
    CompileResult cp = compile_state(operand);

    if (cp.ok) {
      const ClassSet structural = effective_classes(*cp.pred, c);

      // Costable collapse: EF/AF of a down-closed operand — or EG/AG of a
      // stable one — is decided by one evaluation at the initial cut.
      const bool ef_side = op == Op::kEF || op == Op::kAF;
      const bool collapses =
          ef_side ? inf.down_closed()
                  : (((inf.classes | structural) & kClassStable) != 0);
      if (collapses) {
        Candidate cand;
        cand.query.temporal = false;
        cand.query.p = operand;
        cand.query.root = operand;
        cand.steps = rw.steps;
        cand.steps.push_back(make_step(
            RuleId::kCostableCollapse, to_string(*rw_query.root),
            to_string(*operand),
            rw_query.root ? rw_query.root->span : operand->span));
        cand.p = cp.pred;
        price(c, cand, allow_exponential, m);
        cands.push_back(std::move(cand));
      }

      // Inferred-class refinement: attach derived bits the structural
      // probe cannot see.
      if ((inf.classes & ~structural) != 0) {
        Candidate cand;
        cand.query = rw_query;
        cand.steps = rw.steps;
        cand.steps.push_back(make_step(
            RuleId::kInferClasses, to_string(*operand),
            strfmt("%s [inferred: %s]", to_string(*operand).c_str(),
                   classes_to_string(inf.classes).c_str()),
            operand->span));
        cand.p = make_refined(cp.pred, inf.classes, inf.co_classes);
        price(c, cand, allow_exponential, m);
        cands.push_back(std::move(cand));
      }
    }

    // Distribution: EF over a DNF operand / AG over a CNF operand, so the
    // dispatcher's or-/and-split routes fire.
    if (op == Op::kEF || op == Op::kAG) {
      const bool dnf = op == Op::kEF;
      Rewritten norm_op = normalize(operand);
      NodePtr split = dnf ? to_dnf(norm_op.node, 8)
                          : to_cnf(norm_op.node, 8);
      if (split && !node_equal(split, operand)) {
        Node t;
        t.kind = Node::Kind::kTemporal;
        t.op = op;
        t.span = rw_query.root ? rw_query.root->span : operand->span;
        t.children = {split};
        Candidate cand;
        cand.query = reframe(std::make_shared<const Node>(std::move(t)));
        cand.steps = rw.steps;
        cand.steps.insert(cand.steps.end(), norm_op.steps.begin(),
                          norm_op.steps.end());
        cand.steps.push_back(make_step(
            dnf ? RuleId::kEfDnfSplit : RuleId::kAgCnfSplit,
            to_string(*operand), to_string(*split), operand->span));
        if (compile_candidate(cand)) {
          price(c, cand, allow_exponential, m);
          cands.push_back(std::move(cand));
        }
      }
    }
  } else if (rw_query.temporal) {
    inf = infer_classes(c, rw_query.p);
  } else {
    inf = infer_classes(c, rw_query.root ? rw_query.root : rw_query.p);
  }

  // Choose: cheapest, ties to the fewest rewrite steps (the original wins
  // exact ties).
  std::size_t best = 0;
  for (std::size_t i = 1; i < cands.size(); ++i) {
    if (cands[i].cost < cands[best].cost ||
        (cands[i].cost == cands[best].cost &&
         cands[i].steps.size() < cands[best].steps.size()))
      best = i;
  }

  OptimizeOutcome out;
  out.query = cands[best].query;
  out.p = cands[best].p;
  out.q = cands[best].q;
  out.steps = std::move(cands[best].steps);
  out.plan_before = plan_before;
  out.plan_after = cands[best].plan;
  out.cost_before = cost_before;
  out.cost_after = cands[best].cost;
  out.changed = best != 0;
  out.inference = std::move(inf);
  out.residual = residual_of(c, cands[best], allow_exponential);
  return out;
}

std::vector<Diagnostic> optimize_diagnostics(const OptimizeOutcome& o,
                                             OptimizeMode mode) {
  std::vector<Diagnostic> out;
  if (mode == OptimizeMode::kOff) return out;
  for (const RewriteStep& s : o.steps) {
    const RuleInfo* ri = find_rule(s.rule);
    Diagnostic d;
    d.code = ri != nullptr && ri->redundancy
                 ? DiagCode::kRedundantSubformula
                 : DiagCode::kRewriteApplied;
    d.severity = DiagSeverity::kInfo;
    d.message = strfmt(
        "%s %s: %s => %s",
        mode == OptimizeMode::kApply ? "applied" : "optimizer proposes",
        s.rule.c_str(), s.before.c_str(), s.after.c_str());
    if (!s.note.empty()) d.message += strfmt(" [%s]", s.note.c_str());
    d.span = s.span;
    out.push_back(std::move(d));
  }
  return out;
}

double query_cost(const Computation& c, const Query& q,
                  bool allow_exponential) {
  Candidate cand;
  cand.query = q;
  compile_candidate(cand);
  price(c, cand, allow_exponential, cost_model(c));
  return cand.cost;
}

namespace {

struct OptimizeCache {
  std::mutex mu;
  std::unordered_map<std::string, OptimizeOutcome> entries;
};

OptimizeCache& optimize_cache() {
  static OptimizeCache* cache = new OptimizeCache();
  return *cache;
}

Counter& cache_hits() {
  static Counter* c = &MetricsRegistry::global().counter("analysis.cache_hits");
  return *c;
}

Counter& cache_misses() {
  static Counter* c =
      &MetricsRegistry::global().counter("analysis.cache_misses");
  return *c;
}

}  // namespace

OptimizeOutcome optimize_query_cached(const Computation& c, const Query& q,
                                      bool allow_exponential) {
  // Sharing is sound only when the two computations are indistinguishable
  // to the analysis pipeline. An empty computation exposes nothing beyond
  // its process count (every per-process event count is zero, the value
  // probe has nothing to read), so shape == num_procs. Anything else has
  // observable event/value state and must be analyzed fresh.
  if (c.total_events() != 0) {
    cache_misses().add(1);
    return optimize_query(c, q, allow_exponential);
  }
  std::string key = to_string(q);
  key += '\x1f';
  key += allow_exponential ? '1' : '0';
  key += '\x1f';
  key += std::to_string(c.num_procs());
  OptimizeCache& cache = optimize_cache();
  {
    std::lock_guard<std::mutex> lk(cache.mu);
    auto it = cache.entries.find(key);
    if (it != cache.entries.end()) {
      cache_hits().add(1);
      return it->second;
    }
  }
  OptimizeOutcome out = optimize_query(c, q, allow_exponential);
  cache_misses().add(1);
  std::lock_guard<std::mutex> lk(cache.mu);
  return cache.entries.emplace(key, std::move(out)).first->second;
}

void clear_optimize_cache() {
  OptimizeCache& cache = optimize_cache();
  std::lock_guard<std::mutex> lk(cache.mu);
  cache.entries.clear();
}

}  // namespace hbct::ctl
