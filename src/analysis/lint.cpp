#include "analysis/lint.h"

#include <algorithm>

#include "analysis/infer.h"
#include "analysis/optimize.h"
#include "analysis/plan.h"
#include "analysis/rules.h"
#include "ctl/parser.h"

namespace hbct::ctl {

namespace {

/// Give span-less findings a source anchor. plan_diagnostics never sets
/// spans (it works below the parser), so in practice this anchors all of
/// them to the operand's subformula.
void anchor(std::vector<Diagnostic>& ds, SourceSpan span) {
  for (Diagnostic& d : ds)
    if (!d.span.valid()) d.span = span;
}

/// Findings about the dispatch as a whole rather than one operand; for
/// EU/AU they are raised once on p and suppressed on q.
bool plan_level(DiagCode c) {
  return c == DiagCode::kExponentialFallback ||
         c == DiagCode::kIntractableClass || c == DiagCode::kSplitDispatch;
}

/// Mirrors the eu-or-split side condition in detect/dispatch.cpp: every
/// top-level disjunct of q is linear on c and carries the forbidden()
/// oracle A3's I_q walk needs.
bool q_splits_into_linear(const Computation& c, const PredicatePtr& q) {
  const auto parts = q->disjuncts();
  return !parts.empty() &&
         std::all_of(parts.begin(), parts.end(), [&](const PredicatePtr& s) {
           return (effective_classes(*s, c) & kClassLinear) != 0 &&
                  s->has_forbidden();
         });
}

}  // namespace

std::vector<Diagnostic> lint_query(const Computation& c, const Query& q,
                                   bool allow_exponential) {
  std::vector<Diagnostic> out;
  const NodePtr& root = q.root ? q.root : q.p;
  if (!root) return out;

  // Outside the paper's fragment: the whole formula is evaluated by
  // labeling the explicit lattice of consistent cuts. One finding for the
  // whole query; per-operand plans would be fiction (nothing dispatches).
  if (!q.temporal && contains_temporal(root)) {
    Diagnostic d;
    d.code = DiagCode::kNestedTemporal;
    d.message =
        "formula nests temporal operators (outside the Section 4 "
        "fragment); it is evaluated by labeling the explicit lattice of "
        "consistent cuts, worst-case exponential in the number of "
        "processes";
    d.suggestion =
        "restructure as a single outermost EF/AF/EG/AG/E[U]/A[U] over "
        "temporal-free state formulas to enable the Table-1 algorithms";
    d.span = root->span;
    out.push_back(std::move(d));
    return out;
  }

  // A bare state formula is one predicate evaluation at the initial cut;
  // there is no dispatch to predict.
  if (!q.temporal) return out;

  const CompileResult p = compile_state(q.p);
  if (!p.ok) return out;
  const PredShape sp = shape_of(p.pred, c);

  if (q.op == Op::kEU || q.op == Op::kAU) {
    const CompileResult qq = compile_state(q.q);
    if (!qq.ok) return out;
    const PredShape sq = shape_of(qq.pred, c);
    const DetectPlan plan =
        plan_until(q.op, sp, sq,
                   q.op == Op::kEU && q_splits_into_linear(c, qq.pred),
                   allow_exponential);
    out = plan_diagnostics(q.op, *p.pred, sp, plan);
    anchor(out, q.p->span);
    std::vector<Diagnostic> dq = plan_diagnostics(q.op, *qq.pred, sq, plan);
    anchor(dq, q.q->span);
    for (Diagnostic& d : dq)
      if (!plan_level(d.code)) out.push_back(std::move(d));
    return out;
  }

  const DetectPlan plan = plan_unary(q.op, sp, allow_exponential);
  out = plan_diagnostics(q.op, *p.pred, sp, plan);
  anchor(out, q.p->span);
  return out;
}

namespace {

/// Softens a W004 finding whose operand the inference engine *can*
/// classify: the structural probe is blind to arithmetic monotonicity (and
/// to co-classes through negation), but the syntactic judgments are not,
/// so "no structural class" overstates the cost cliff.
void amend_unclassified(const Computation& c, const NodePtr& operand,
                        std::vector<Diagnostic>& ds) {
  if (!operand) return;
  for (Diagnostic& d : ds) {
    if (d.code != DiagCode::kUnclassifiedPredicate) continue;
    if (d.span != operand->span) continue;
    const Inference inf = infer_classes(c, operand);
    if (inf.classes == 0 && inf.co_classes == 0) continue;
    d.severity = DiagSeverity::kInfo;
    d.message +=
        "; however, syntactic inference derives " +
        (inf.classes != 0 ? classes_to_string(inf.classes)
                          : "co-classes " + classes_to_string(inf.co_classes)) +
        " for it";
    d.suggestion = rule_info(RuleId::kInferClasses).suggestion;
  }
}

}  // namespace

std::vector<Diagnostic> lint_query(const Computation& c, const Query& q,
                                   bool allow_exponential,
                                   OptimizeMode optimize) {
  if (optimize == OptimizeMode::kOff)
    return lint_query(c, q, allow_exponential);

  OptimizeOutcome oc = optimize_query(c, q, allow_exponential);
  if (optimize == OptimizeMode::kApply) {
    std::vector<Diagnostic> out =
        optimize_diagnostics(oc, OptimizeMode::kApply);
    out.insert(out.end(), std::make_move_iterator(oc.residual.begin()),
               std::make_move_iterator(oc.residual.end()));
    return out;
  }

  // kAnalyzeOnly: the as-written findings, inference-amended, plus the
  // chain the optimizer proposes.
  std::vector<Diagnostic> out = lint_query(c, q, allow_exponential);
  if (q.temporal) {
    amend_unclassified(c, q.p, out);
    amend_unclassified(c, q.q, out);
  }
  std::vector<Diagnostic> ds =
      optimize_diagnostics(oc, OptimizeMode::kAnalyzeOnly);
  out.insert(out.end(), std::make_move_iterator(ds.begin()),
             std::make_move_iterator(ds.end()));
  return out;
}

std::vector<Diagnostic> lint_query(const Computation& c,
                                   std::string_view query,
                                   bool allow_exponential) {
  ParseResult parsed = parse_query(query);
  if (!parsed.ok) return {};
  return lint_query(c, parsed.query, allow_exponential);
}

}  // namespace hbct::ctl
