// Equivalence-preserving rewrites over the CTL AST.
//
// Two layers, both driven by the rule catalog in analysis/rules.h and both
// recording every application as a RewriteStep (rule name, soundness note,
// before/after rendering, source span of the rewritten subformula):
//
//   normalize        boolean-layer normal form: constant folding, flatten,
//                    negation push-down (NNF), idempotent dedup,
//                    absorption. Purely syntactic, computation-free.
//   rescue_temporal  temporal-layer rescue for formulas outside the
//                    Section 4 fragment: CTL dualities (!EF p => AG !p),
//                    idempotent collapse (EF EF p => EF p), distributive
//                    merges (EF a || EF b => EF(a || b)), and reflexive
//                    absorption (p || EF p => EF p). Includes everything
//                    normalize does.
//
// Soundness: each rule is a CTL equivalence on the lattice-of-cuts
// semantics (catalog entries carry the one-line argument; DESIGN.md §16
// the full ones). Both passes terminate: every rule strictly decreases
// the formula size or the total depth of negations/temporal nesting.
//
// to_dnf/to_cnf put a temporal-free state formula in disjunctive or
// conjunctive normal form under a term budget, for the EF/AG distribution
// rewrites (the catalog's ef-dnf-split / ag-cnf-split); reframe re-derives
// the Query fragment view from a rewritten root exactly as the parser
// would have.
#pragma once

#include <cstddef>
#include <vector>

#include "analysis/diagnostics.h"
#include "ctl/formula.h"

namespace hbct::ctl {

struct Rewritten {
  NodePtr node;
  std::vector<RewriteStep> steps;
};

/// Boolean-layer normalization to fixpoint. Equivalence- and
/// span-preserving; never touches temporal operators.
Rewritten normalize(const NodePtr& n);

/// normalize plus the temporal-layer rescue rules, to fixpoint.
Rewritten rescue_temporal(const NodePtr& n);

/// Bounded DNF/CNF conversion of a temporal-free formula already in
/// negation normal form. Returns nullptr when the conversion would exceed
/// `max_terms` clauses (or the formula contains a temporal operator).
NodePtr to_dnf(const NodePtr& n, std::size_t max_terms);
NodePtr to_cnf(const NodePtr& n, std::size_t max_terms);

/// Structural equality of two formulas (spans ignored).
bool node_equal(const NodePtr& a, const NodePtr& b);

/// Re-derives the Query envelope (fragment view) from a rewritten root,
/// mirroring the parser's detection of a single temporal operator over
/// temporal-free operands.
Query reframe(const NodePtr& root);

}  // namespace hbct::ctl
