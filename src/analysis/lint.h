// Static CTL query lint: predict what detect() will do before it runs.
//
// lint_query walks a parsed query against a computation and raises the
// W-series diagnostics of analysis/diagnostics.h — W001/W002 ahead of
// exponential or intractable dispatches, W003 for formulas outside the
// paper's Section 4 fragment, W004–W007 per-operand findings — anchored to
// the parser's source spans so a caller can point at the offending
// subformula in the query text. No detection, labeling, or lattice
// construction happens here; the lint costs a couple of predicate
// compilations and O(1) class lookups.
//
// This is the span-aware front end over analysis/plan.h. detect() raises
// the same findings (span-less) when DispatchOptions::audit is on;
// ctl::evaluate_query substitutes these anchored versions.
#pragma once

#include <vector>

#include "analysis/diagnostics.h"
#include "ctl/compile.h"

namespace hbct::ctl {

/// Lints one parsed query against `c`. `allow_exponential` mirrors
/// DispatchOptions::allow_exponential (it changes the W001 wording: the
/// fallback either runs or degrades to kUnknown). Returns findings in
/// source order: operand p first, then operand q for EU/AU. Operands that
/// fail to compile produce no findings — evaluate_query reports the
/// compile error itself.
std::vector<Diagnostic> lint_query(const Computation& c, const Query& q,
                                   bool allow_exponential = true);

/// Optimizer-aware lint. kOff matches the overload above exactly.
/// kAnalyzeOnly keeps the as-written findings but (a) appends a W008 line
/// for every rewrite the optimizer would apply, and (b) softens W004
/// unclassified-predicate findings to info severity when the syntactic
/// inference engine (analysis/infer.h) derives class bits the structural
/// probe cannot see — e.g. the stability of `pos(0)+pos(1) > 3`, or, via
/// co-class propagation, the linearity of `!(sum >= k)` over
/// non-decreasing terms. kApply reports what the *chosen* plan looks like:
/// the applied chain followed by the residual findings of the rewritten
/// (class-refined) query.
std::vector<Diagnostic> lint_query(const Computation& c, const Query& q,
                                   bool allow_exponential,
                                   OptimizeMode optimize);

/// Parse + lint in one call. A parse failure returns an empty list (there
/// is nothing to anchor to); use parse_query directly to see the error.
std::vector<Diagnostic> lint_query(const Computation& c,
                                   std::string_view query,
                                   bool allow_exponential = true);

}  // namespace hbct::ctl
