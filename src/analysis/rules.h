// The rewrite-rule catalog: the single source of truth for every
// equivalence-preserving transformation the CTL query optimizer can apply
// and every rewrite-shaped suggestion the lint can print.
//
// Each entry carries the machine-readable rule name (stable — it appears in
// RewriteStep::rule, the hbct.report/1 "rewrites" array, and W008
// diagnostics), a one-line summary, the soundness argument (the lattice- or
// CTL-theoretic fact that makes the rewrite verdict-preserving; DESIGN.md
// §16 expands each into a full argument), and the suggestion text the lint
// renders when the rule would apply but has not been run (W001/W004/W005).
//
// This header is AST-free on purpose: analysis/plan.cpp (hbct_analysis)
// renders suggestions from it without linking the CTL layer, while
// analysis/rewrite.cpp (hbct_ctl) implements the transformations. Advisory
// entries (kAdvisory* — no mechanical rewrite exists, e.g. "make q linear")
// have apply = false and only ever appear as suggestions.
#pragma once

#include <cstdint>
#include <string>

namespace hbct {

enum class RuleId : std::uint8_t {
  // ---- Boolean-layer rewrites (state formulas) -------------------------
  kConstFold,       // fold true/false through !/&&/|| and constant atoms
  kFlatten,         // (a && (b && c)) => (a && b && c); dually for ||
  kNnfPush,         // push ! through &&/|| (De Morgan) and into atoms (flip
                    // the comparison); eliminates double negation
  kDedupIdempotent, // p && p => p; p || p => p
  kAbsorb,          // p || (p && q) => p; p && (p || q) => p
  // ---- Temporal-layer rewrites (rescue into the Section 4 fragment) ----
  kTemporalIdempotent,  // EF EF p => EF p (also AF/EG/AG)
  kNotTemporalDual,     // !EF p => AG !p, !AG p => EF !p, !AF p => EG !p,
                        // !EG p => AF !p
  kMergeEfOr,           // EF a || EF b => EF(a || b)
  kMergeAgAnd,          // AG a && AG b => AG(a && b)
  kTemporalAbsorb,      // p || EF p => EF p; p && AG p => AG p
  // ---- Dispatch-shaping rewrites (operand restructuring) ---------------
  kEfDnfSplit,      // put the EF/AF operand in DNF so the disjunctive /
                    // or-split routes fire: EF(p1 || p2) = EF p1 || EF p2
  kAgCnfSplit,      // dually CNF for AG: AG(p1 && p2) = AG p1 && AG p2
  kInferClasses,    // attach syntactically inferred class bits to a
                    // structurally classless operand (analysis/infer.h) so
                    // dispatch can take a polynomial Table-1 route
  kCostableCollapse,// EF/AF p with !p stable (p down-closed): p can only
                    // ever hold if it holds at the initial cut => evaluate
                    // the bare state formula there (O(1)). Dually EG/AG p
                    // with p stable collapse to p at the initial cut.
  // ---- Advisory-only entries (no mechanical rewrite) -------------------
  kAdvisoryEuA3,    // make p conjunctive and q linear to enable A3
  kAdvisoryAuDual,  // make both AU operands disjunctive
  kAdvisoryBudget,  // EG/AF admit no distributive split; bound the search
};

struct RuleInfo {
  RuleId id;
  /// Stable machine name ("ef-dnf-split"); keys RewriteStep::rule.
  const char* name;
  const char* summary;
  /// Why the rewrite preserves the verdict on every computation.
  const char* soundness;
  /// Lint suggestion text (rendered into W001/W004 etc.).
  const char* suggestion;
  /// True when the optimizer can apply the rule mechanically; advisory
  /// entries only ever appear as suggestions.
  bool apply;
  /// True when an application of this rule evidences a constant or
  /// redundant subformula (reported as W009 rather than W008).
  bool redundancy;
};

inline constexpr RuleInfo kRuleCatalog[] = {
    {RuleId::kConstFold, "const-fold",
     "fold constant subformulas through the boolean connectives",
     "true/false are units and absorbers of &&/||; a constant atom has one "
     "truth value on every cut",
     "the subformula is constant; fold it away (optimize=kApply does this)",
     true, true},
    {RuleId::kFlatten, "flatten",
     "flatten nested same-operator conjunctions/disjunctions",
     "&& and || are associative over the cut lattice", "", true, false},
    {RuleId::kNnfPush, "nnf-push",
     "push negation to the atoms (negation normal form)",
     "De Morgan's laws hold pointwise per cut; a negated comparison is the "
     "complementary comparison",
     "push the negation inward (nnf-push) so the operand exposes its "
     "&&/|| structure to the dispatcher",
     true, false},
    {RuleId::kDedupIdempotent, "dedup-idempotent",
     "drop duplicate conjuncts/disjuncts",
     "&& and || are idempotent", "remove the duplicate operand", true, true},
    {RuleId::kAbsorb, "absorb",
     "absorption: p || (p && q) => p and p && (p || q) => p",
     "p && q implies p; p implies p || q (pointwise per cut)",
     "the enclosing operand absorbs the subformula", true, true},
    {RuleId::kTemporalIdempotent, "temporal-idempotent",
     "collapse stacked identical temporal operators (EF EF p => EF p)",
     "EF/AF/EG/AG are idempotent on the reflexive-path semantics of the cut "
     "lattice",
     "collapse the nested temporal operator (temporal-idempotent) to "
     "re-enter the Section 4 fragment",
     true, false},
    {RuleId::kNotTemporalDual, "not-temporal-dual",
     "rewrite a negated temporal operator by its CTL dual",
     "!EF p = AG !p and !AF p = EG !p on every path structure "
     "(complement duality of E/A and F/G)",
     "replace the negated temporal operator by its dual "
     "(not-temporal-dual) to re-enter the Section 4 fragment",
     true, false},
    {RuleId::kMergeEfOr, "merge-ef-or",
     "EF a || EF b => EF(a || b)",
     "EF distributes over || in CTL: a cut reachable satisfying a or one "
     "satisfying b exists iff one satisfying a||b exists",
     "merge the EF disjuncts (merge-ef-or) into one fragment query", true,
     false},
    {RuleId::kMergeAgAnd, "merge-ag-and",
     "AG a && AG b => AG(a && b)",
     "AG distributes over && in CTL (dual of EF over ||)",
     "merge the AG conjuncts (merge-ag-and) into one fragment query", true,
     false},
    {RuleId::kTemporalAbsorb, "temporal-absorb",
     "p || EF p => EF p; p && AG p => AG p",
     "paths are reflexive: p at the current cut implies EF p, and AG p "
     "implies p",
     "the temporal operand absorbs the bare copy (temporal-absorb)", true,
     true},
    {RuleId::kEfDnfSplit, "ef-dnf-split",
     "put the operand in DNF so EF/AF distribute over the disjuncts",
     "EF(p1 || p2) = EF(p1) || EF(p2): a satisfying cut for the disjunction "
     "is a satisfying cut for some disjunct",
     "rewrite the operand in DNF: EF(p1 || p2) = EF(p1) || EF(p2) "
     "dispatches each disjunct separately (rule ef-dnf-split; "
     "optimize=kApply does this automatically)",
     true, false},
    {RuleId::kAgCnfSplit, "ag-cnf-split",
     "put the operand in CNF so AG distributes over the conjuncts",
     "AG(p1 && p2) = AG(p1) && AG(p2): the conjunction holds everywhere iff "
     "each conjunct does",
     "rewrite the operand in CNF: AG(p1 && p2) = AG(p1) && AG(p2) "
     "dispatches each conjunct separately (rule ag-cnf-split; "
     "optimize=kApply does this automatically)",
     true, false},
    {RuleId::kInferClasses, "infer-classes",
     "attach machine-derived class bits to a structurally classless operand",
     "the bits are derived bottom-up by the judgments of analysis/infer.h "
     "(each with a machine-checkable derivation tree audited against the "
     "Section 4 lattice definitions), so dispatch may rely on them exactly "
     "as on structural classes",
     "the operand's classes are inferable from its syntax; run with "
     "optimize=kApply to route by the inferred classes (rule infer-classes)",
     true, false},
    {RuleId::kCostableCollapse, "costable-collapse",
     "EF/AF of a down-closed predicate — dually EG/AG of a stable one — is "
     "its value at the initial cut",
     "every cut contains the initial cut, so a down-closed predicate "
     "satisfied anywhere is satisfied initially (and a stable predicate "
     "satisfied initially is satisfied everywhere); conversely the initial "
     "cut starts every path",
     "the operand's monotonicity pins the verdict at the initial cut: the "
     "query reduces to one evaluation there (rule costable-collapse)",
     true, false},
    {RuleId::kAdvisoryEuA3, "advisory-eu-a3",
     "E[p U q] runs A3 when p is conjunctive and q linear", "",
     "make p conjunctive and q linear (with a forbidden() oracle) to "
     "enable A3",
     false, false},
    {RuleId::kAdvisoryAuDual, "advisory-au-dual",
     "A[p U q] has a polynomial duality for disjunctive operands", "",
     "make both operands disjunctive to enable the au-disjunctive duality",
     false, false},
    {RuleId::kAdvisoryBudget, "advisory-budget",
     "EG/AF admit no distributive split", "",
     "EG/AF admit no distributive split; set a Budget or "
     "allow_exponential=false to bound the search",
     false, false},
};

inline const RuleInfo& rule_info(RuleId id) {
  for (const RuleInfo& r : kRuleCatalog)
    if (r.id == id) return r;
  return kRuleCatalog[0];  // unreachable: every RuleId is in the catalog
}

/// Catalog lookup by stable name; nullptr when unknown.
const RuleInfo* find_rule(const std::string& name);

}  // namespace hbct
