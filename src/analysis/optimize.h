// Cost-model-driven CTL query optimizer.
//
// optimize_query enumerates a bounded set of equivalence-preserving
// candidates for a parsed query —
//
//   * the query as written,
//   * its boolean/temporal rewrite (analysis/rewrite.h: normalize +
//     rescue_temporal),
//   * the operand refined with syntactically inferred class bits
//     (analysis/infer.h via make_refined), unlocking Table-1 class routes
//     the structural probe cannot see,
//   * the costable collapse: EF/AF of a down-closed operand (or EG/AG of a
//     stable one) evaluated once at the initial cut,
//   * the EF-DNF / AG-CNF distribution of the operand so the dispatcher's
//     split routes fire,
//
// — prices each with the Table-1 cost formulas (dispatch plan cost scaled
// by formula size as the per-evaluation proxy), and returns the cheapest.
// Ties prefer fewer rewrite steps, so the original query wins when nothing
// improves. Every applied rule is recorded as a RewriteStep naming its
// catalog entry (analysis/rules.h); the chain is attached to
// DetectResult::rewrites and rendered into W008/W009 diagnostics.
//
// The optimizer never changes verdicts: every candidate is equivalent on
// the lattice-of-cuts semantics (tests/test_optimize.cpp pins
// kApply-vs-kOff bit-identical verdicts across the query corpus, seed
// sweeps, budget ladders and parallelism widths).
#pragma once

#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "analysis/infer.h"
#include "ctl/compile.h"
#include "detect/dispatch.h"

namespace hbct::ctl {

struct OptimizeOutcome {
  /// The chosen query form (== the input when !changed).
  Query query;
  /// Compiled operands of the chosen form, with inferred-class refinement
  /// applied when that candidate won. Null when the operand does not
  /// compile or the chosen form evaluates on the explicit lattice.
  PredicatePtr p;
  PredicatePtr q;
  /// The applied rewrite chain, in application order. Empty when the
  /// original query is already optimal.
  std::vector<RewriteStep> steps;
  /// Dispatch findings for the *chosen* form (anchored to the preserved
  /// source spans): what lint would say about the query after rewriting.
  std::vector<Diagnostic> residual;
  /// Human-readable plans before/after ("eg-dfs (exponential)" =>
  /// "stable-initial (O(n))").
  std::string plan_before;
  std::string plan_after;
  /// Cost-model prices of the original and chosen forms.
  double cost_before = 0;
  double cost_after = 0;
  bool changed = false;
  /// Class inference for the (final) p operand, with its derivation tree.
  Inference inference;
};

/// Optimizes one parsed query against `c`. Pure analysis: no detection
/// runs, nothing is mutated. `allow_exponential` mirrors
/// DispatchOptions::allow_exponential (it decides whether fallback routes
/// run or refuse, which the residual findings report).
OptimizeOutcome optimize_query(const Computation& c, const Query& q,
                               bool allow_exponential = true);

/// Caching front-end for registration-time analysis: serve::Session watch
/// registration re-analyzes the same handful of formulas for every session
/// it opens, and the whole inference/rewrite/costing pipeline is pure, so
/// the outcome can be reused. Entries are shared only between *empty*
/// computations with the same process count — the cost model prices routes
/// off the event counts and the structural probe may read values, so a
/// non-empty computation bypasses the cache (counted as a miss) and always
/// gets a fresh optimize_query. Process-global; thread-safe. Hits/misses
/// are exposed as analysis.cache_hits / analysis.cache_misses on
/// MetricsRegistry::global().
OptimizeOutcome optimize_query_cached(const Computation& c, const Query& q,
                                      bool allow_exponential = true);

/// Drops every cached analysis outcome (tests, or to release memory).
void clear_optimize_cache();

/// Renders the outcome's steps as diagnostics: W008 for each applied (or,
/// under kAnalyzeOnly, proposed) rewrite, W009 when the rule evidences a
/// constant or redundant subformula. Empty for OptimizeMode::kOff.
std::vector<Diagnostic> optimize_diagnostics(const OptimizeOutcome& o,
                                             OptimizeMode mode);

/// The cost model's price for evaluating `q` as written on `c`: the
/// Table-1 formula of the planned route (explicit-lattice and dfs
/// fallbacks priced at their state-space size), scaled by formula size as
/// a per-evaluation proxy. Exposed for tests and the lint CLI.
double query_cost(const Computation& c, const Query& q,
                  bool allow_exponential = true);

}  // namespace hbct::ctl
