// Structured diagnostics for the static CTL query lint and the predicate
// class auditor.
//
// A Diagnostic is one finding: a stable warning code (the catalog below,
// documented in DESIGN.md §9), a severity, a human-readable message, an
// optional source span into the query text the finding anchors to, and an
// optional suggested rewrite. Lint findings (W...) predict what dispatch
// will do before any detection runs; audit findings (E...) report a claimed
// predicate class or oracle contract refuted by a concrete counterexample
// cut. This header is dependency-free so detect/detector.h can embed
// diagnostics in DetectResult without layering cycles.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hbct {

/// Stable diagnostic codes. W-codes are lint warnings (the query is legal
/// but a cheaper or sounder form exists, or a cost cliff is ahead); E-codes
/// are audit errors (a stated contract is provably violated on this
/// computation). Values are part of the reporting surface — append only.
enum class DiagCode : std::uint16_t {
  // ---- Lint warnings ---------------------------------------------------
  kExponentialFallback = 1,   // W001: operator dispatches to explicit search
  kIntractableClass = 2,      // W002: EG/AG over observer-independent
                              //       (NP-/co-NP-complete, Thms 5/6)
  kNestedTemporal = 3,        // W003: outside the paper fragment; the whole
                              //       formula runs on the explicit lattice
  kUnclassifiedPredicate = 4, // W004: subformula compiles to a predicate
                              //       with no structural class on this
                              //       computation
  kMissingOracle = 5,         // W005: class claims (post-)linear but carries
                              //       no advancement oracle; the polynomial
                              //       route is skipped
  kSplitDispatch = 6,         // W006: dispatch fans out over a DNF/CNF
                              //       split (cost multiplies by the width)
  kAssertedClasses = 7,       // W007: user-asserted class bits are load-
                              //       bearing and unverified (audit advised)
  kRewriteApplied = 8,        // W008: the optimizer applied (or, under
                              //       kAnalyzeOnly, proposes) an equivalence-
                              //       preserving rewrite from the rule
                              //       catalog (analysis/rules.h)
  kRedundantSubformula = 9,   // W009: a subformula was constant or redundant
                              //       (idempotent / absorbed / foldable) and
                              //       contributes nothing to the verdict
  // ---- Audit errors ----------------------------------------------------
  kClassAuditFailed = 101,    // E101: claimed class bit refuted
  kOracleContractViolated = 102,  // E102: forbidden()/forbidden_down() lie
  kNegationContractViolated = 103,  // E103: negate() is not the complement
};

enum class DiagSeverity : std::uint8_t { kInfo, kWarning, kError };

/// Half-open byte range [begin, end) into the query source text.
/// kNoSpan marks diagnostics with no source anchor (predicate-level
/// findings raised below the parser, e.g. from dispatch or the auditor).
struct SourceSpan {
  static constexpr std::uint32_t kNoSpan = ~std::uint32_t{0};
  std::uint32_t begin = kNoSpan;
  std::uint32_t end = kNoSpan;

  bool valid() const { return begin != kNoSpan; }
  friend bool operator==(const SourceSpan&, const SourceSpan&) = default;
};

struct Diagnostic {
  DiagCode code = DiagCode::kExponentialFallback;
  DiagSeverity severity = DiagSeverity::kWarning;
  /// What was found, e.g. "EG over arbitrary predicate 'parity' falls back
  /// to eg-dfs (exponential)".
  std::string message;
  /// Source anchor into the original query text, when known.
  SourceSpan span;
  /// Concrete rewrite that avoids the finding, when one exists, e.g.
  /// "split the disjunction: EF(a || b) = EF(a) || EF(b)".
  std::string suggestion;
};

/// One equivalence-preserving rewrite performed (or proposed) by the query
/// optimizer (analysis/optimize.h). `rule` names an entry of the rule
/// catalog in analysis/rules.h; `before`/`after` render the rewritten
/// subformula; `span` anchors the step to the byte range of the *original*
/// query text it transformed (rewrites are source-span-preserving, so a
/// chain of steps can always be traced back to the user's input).
struct RewriteStep {
  std::string rule;
  /// The rule's one-line soundness note, e.g. "EF distributes over ∨".
  std::string note;
  std::string before;
  std::string after;
  SourceSpan span;

  friend bool operator==(const RewriteStep&, const RewriteStep&) = default;
};

/// "rule: before => after".
std::string to_string(const RewriteStep& s);

/// "W001" / "E102".
std::string to_string(DiagCode c);
const char* to_string(DiagSeverity s);

/// One-line rendering: "W001 col 1-38: <message> (suggest: <suggestion>)".
std::string to_string(const Diagnostic& d);

/// Multi-line rendering of a finding list (empty string when empty).
std::string render_diagnostics(const std::vector<Diagnostic>& ds);

}  // namespace hbct
