// Dispatch planning: predict which Table-1 algorithm detect() will run.
//
// detect/dispatch.cpp and predicate/classify.cpp used to each encode the
// routing rules; they drifted (classify promised A1/A2 for conjunctive
// predicates that dispatch actually sends to the conjunctive scans). Both
// now route through plan_unary()/plan_until() below, and the static query
// lint (analysis/lint.h) uses the same plans to warn about exponential
// dispatches *before* they run.
//
// Contract, pinned by tests/test_plan_parity.cpp: DetectPlan::name is a
// prefix of the DetectResult::algorithm string the detection actually
// reports (detectors may append detail such as " (af == ef)" or
// " (refused)").
#pragma once

#include <cstddef>
#include <vector>

#include "analysis/diagnostics.h"
#include "detect/detector.h"  // Op (header-only use; no hbct_detect link dep)
#include "predicate/predicate.h"

namespace hbct {

/// Everything the dispatcher looks at when routing a predicate: effective
/// classes, structural conjunctive/disjunctive form, top-level ∧/∨ splits,
/// and whether the Chase–Garg advancement oracles are implemented.
struct PredShape {
  ClassSet classes = 0;           // effective_classes(p, c)
  bool conjunctive_form = false;  // as_conjunctive(p) != nullptr
  bool disjunctive_form = false;  // as_disjunctive(p) != nullptr
  std::size_t num_disjuncts = 0;  // p->disjuncts().size()
  std::size_t num_conjuncts = 0;  // p->conjuncts().size()
  bool has_forbidden = false;
  bool has_forbidden_down = false;
};

PredShape shape_of(const PredicatePtr& p, const Computation& c);

/// Every route detect() can take, in Table-1 terms.
enum class Algo {
  kStableFinal,      // EF/AF of a stable predicate: evaluate the final cut
  kStableInitial,    // EG/AG of a stable predicate: evaluate the initial cut
  kOiScan,           // single-observation scan (EF==AF, observer-independent)
  kEquilevelScan,    // diagonal-chain scan (EF/EG/AG, equilevel)
  kEfDisjunctive,    // per-process candidate scan
  kGwWeakConjunctive,
  kChaseGargEf,      // linear advancement (needs forbidden())
  kChaseGargEfDual,  // post-linear retreat (needs forbidden_down())
  kAfDisjunctive,
  kGwStrongConjunctive,
  kEgConjunctiveScan,
  kEgDisjunctive,
  kA1EgLinear,
  kA1EgPostLinear,
  kAgConjunctiveScan,
  kAgDisjunctive,
  kA2AgLinear,
  kA2AgPostLinear,
  kEfOrSplit,   // EF(∨ p_i) = ∨ EF(p_i)
  kAgAndSplit,  // AG(∧ p_i) = ∧ AG(p_i)
  kEfDfs,       // explicit-search fallbacks (worst-case exponential)
  kAfDfs,
  kEgDfs,
  kAgDfs,
  kA3Eu,
  kEuOrSplit,  // E[p U ∨ q_i] = ∨ E[p U q_i], each branch A3
  kEuDfs,
  kAuDisjunctive,
  kAuDfs,
};

/// A predicted dispatch. `name` is a prefix of the algorithm string the
/// detection reports; `cost` is the paper's complexity for the route.
struct DetectPlan {
  Algo algo;
  const char* name;
  const char* cost;
  /// Explicit state-space search: worst-case exponential in the number of
  /// processes.
  bool exponential = false;
  /// The instance is NP-complete (EG over observer-independent, Thm 5) or
  /// co-NP-complete (AG, Thm 6) — no polynomial route can exist unless
  /// P = NP, so rewriting the predicate is the only escape.
  bool np_hard = false;
  /// allow_exponential is off and this route would have been exponential:
  /// the detection returns kUnknown instead of searching.
  bool refused = false;
};

/// Routes exactly as detect() does for the unary operators (kEF/kAF/kEG/
/// kAG). Must be kept in lockstep with detect_unary in detect/dispatch.cpp
/// (which itself switches on the returned plan).
DetectPlan plan_unary(Op op, const PredShape& p, bool allow_exponential);

/// Routes exactly as detect() does for kEU/kAU. `all_q_disjuncts_linear`
/// reflects the eu-or-split side condition: q has top-level disjuncts and
/// every one of them is linear on the computation.
DetectPlan plan_until(Op op, const PredShape& p, const PredShape& q,
                      bool all_q_disjuncts_linear, bool allow_exponential);

/// Renders "<name> (<cost>)", e.g. "chase-garg-ef (O(n^2|E|))" —
/// DetectResult::plan and the classify report use this form.
std::string plan_to_string(const DetectPlan& p);

/// Lint findings for one planned dispatch: W001/W002 on exponential or
/// intractable routes, W004 for a class-less operand, W005 for a claimed
/// (post-)linear predicate with no advancement oracle, W006 on split
/// fan-outs, W007 when user-asserted class bits are load-bearing.
/// Diagnostics carry no source span here; the query lint anchors them.
std::vector<Diagnostic> plan_diagnostics(Op op, const Predicate& p,
                                         const PredShape& s,
                                         const DetectPlan& plan);

}  // namespace hbct
