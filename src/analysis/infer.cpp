#include "analysis/infer.h"

#include <utility>

#include "predicate/relational.h"
#include "util/string_util.h"

namespace hbct::ctl {

namespace {

/// Monotonicity of one ±term along every lattice walk: `up` when its value
/// never decreases as any process advances, `down` when it never increases.
struct Mono {
  bool up = false;
  bool down = false;
};

Mono term_mono(const Computation& c, int coef, const Term& t) {
  Mono m;
  switch (t.kind) {
    case Term::Kind::kConst:
      m.up = m.down = true;
      break;
    case Term::Kind::kPos:
      m.up = true;  // positions only ever advance
      break;
    case Term::Kind::kVar:
      m.up = is_nondecreasing(c, t.proc, t.var);
      m.down = is_nonincreasing(c, t.proc, t.var);
      break;
    case Term::Kind::kInTransit:
      break;  // channel occupancy rises and falls
  }
  if (coef < 0) std::swap(m.up, m.down);
  return m;
}

/// Normalized view of an atom: non-constant ±terms vs a constant bound.
/// Mirrors the normalization compile_state performs before lowering.
struct NormAtom {
  std::vector<std::pair<int, Term>> terms;
  Cmp op = Cmp::kEq;
  std::int64_t k = 0;
};

NormAtom norm_atom(const Atom& a) {
  NormAtom n;
  n.op = a.op;
  for (const auto& [coef, t] : a.lhs.terms) {
    if (t.kind == Term::Kind::kConst)
      n.k -= coef * t.value;
    else
      n.terms.emplace_back(coef, t);
  }
  for (const auto& [coef, t] : a.rhs.terms) {
    if (t.kind == Term::Kind::kConst)
      n.k += coef * t.value;
    else
      n.terms.emplace_back(-coef, t);
  }
  return n;
}

constexpr ClassSet kAndMask = kClassConjunctive | kClassLinear |
                              kClassPostLinear | kClassRegular | kClassStable;
constexpr ClassSet kOrMask = kClassDisjunctive | kClassStable;

Inference leaf(std::string rule, ClassSet pos, ClassSet neg,
               std::string detail, SourceSpan span) {
  Inference inf;
  inf.classes = close_classes(pos);
  inf.co_classes = close_classes(neg);
  inf.derivation = Derivation{std::move(rule), inf.classes, inf.co_classes,
                              std::move(detail), span, {}};
  return inf;
}

/// A predicate constant on every cut (and its negation likewise) belongs to
/// every closure class except equilevel: its satisfying set is the whole
/// lattice or empty, both of which are trivially meet-/join-/up-closed,
/// observer-independent, and dependent on (at most) one process.
constexpr ClassSet kConstantClasses = kClassLocal | kClassStable;

Inference infer_atom(const Computation& c, const Node& node) {
  const NormAtom n = norm_atom(node.atom);
  const std::string text = to_string(node);

  if (n.terms.empty()) {
    const bool v = cmp_eval(n.op, 0, n.k);
    return leaf("atom-constant", kConstantClasses, kConstantClasses,
                strfmt("'%s' has no state-dependent term; it is constantly "
                       "%s on every cut",
                       text.c_str(), v ? "true" : "false"),
                node.span);
  }

  // pos(i) == pos(j) on a 2-process computation: the satisfying cuts are
  // exactly the diagonal cuts (l, l), i.e. the equilevel chain.
  if (n.op == Cmp::kEq && c.num_procs() == 2 && n.terms.size() == 2 &&
      n.terms[0].second.kind == Term::Kind::kPos &&
      n.terms[1].second.kind == Term::Kind::kPos &&
      n.terms[0].first + n.terms[1].first == 0 && n.k == 0 &&
      n.terms[0].second.proc != n.terms[1].second.proc) {
    return leaf("atom-equilevel", kClassEquilevel, 0,
                strfmt("'%s' equates the positions of both processes; every "
                       "satisfying cut lies on the diagonal chain",
                       text.c_str()),
                node.span);
  }

  // Per-computation monotonicity of the summed value.
  bool up = true, down = true;
  bool single_proc = true, has_channel = false;
  ProcId proc = -1;
  for (const auto& [coef, t] : n.terms) {
    const Mono m = term_mono(c, coef, t);
    up = up && m.up;
    down = down && m.down;
    if (t.kind == Term::Kind::kInTransit) {
      has_channel = true;
      single_proc = false;
    } else {
      if (proc == -1) proc = t.proc;
      if (t.proc != proc) single_proc = false;
    }
  }

  ClassSet pos = 0, neg = 0;
  std::string why;
  const char* rule = "atom-monotone";
  if (up && down) {
    // Every term is constant over its process timeline, so the atom has
    // one truth value on every cut.
    pos = neg = kConstantClasses;
    why = "every term is constant on this computation, so the atom is "
          "constant on every cut";
  } else if (up || down) {
    const char* dir = up ? "non-decreasing" : "non-increasing";
    // For a non-decreasing sum, `>= k` is up-closed (stable) and
    // join-closed (post-linear); `<= k` is down-closed, hence meet-closed
    // (linear) and observer-independent, with a stable negation. A
    // non-increasing sum mirrors the two roles.
    const bool ge_side = n.op == Cmp::kGe || n.op == Cmp::kGt;
    const bool le_side = n.op == Cmp::kLe || n.op == Cmp::kLt;
    const bool stable_side = (up && ge_side) || (down && le_side);
    const bool costable_side = (up && le_side) || (down && ge_side);
    if (stable_side) {
      pos = kClassStable | kClassPostLinear;
      neg = kClassLinear | kClassObserverIndependent;
      why = strfmt("the summed value is %s on this computation, so the "
                   "bound is up-closed (stable) and join-closed "
                   "(post-linear); its complement is down-closed",
                   dir);
    } else if (costable_side) {
      pos = kClassLinear | kClassObserverIndependent;
      neg = kClassStable | kClassPostLinear;
      why = strfmt("the summed value is %s on this computation, so the "
                   "bound is down-closed: meet-closed (linear), "
                   "observer-independent, and its negation is stable",
                   dir);
    }
  }

  // A single-process atom over vars/positions is local regardless of
  // monotonicity; the bits compose with the monotone ones.
  if (single_proc && !has_channel) {
    pos |= kClassLocal;
    neg |= kClassLocal;
    if (why.empty()) {
      rule = "atom-local";
      why = strfmt("'%s' reads process %d only", text.c_str(), proc);
    } else {
      why += strfmt("; the atom reads process %d only", proc);
    }
  }

  // A single channel-occupancy bound is regular on both sides: in-transit
  // counts at meets/joins never exceed/undershoot both operands' counts.
  if (has_channel && n.terms.size() == 1 && n.op != Cmp::kEq &&
      n.op != Cmp::kNe) {
    pos |= kClassRegular;
    neg |= kClassRegular;
    rule = "atom-channel";
    why = strfmt("'%s' bounds one channel's occupancy; the satisfying set "
                 "is a sublattice on both sides",
                 text.c_str());
  }

  if (pos == 0 && neg == 0)
    return leaf("atom-opaque", 0, 0,
                strfmt("no judgment applies to '%s'", text.c_str()),
                node.span);
  return leaf(rule, pos, neg, std::move(why), node.span);
}

Inference infer_node(const Computation& c, const NodePtr& n) {
  if (!n) return {};
  switch (n->kind) {
    case Node::Kind::kTrue:
    case Node::Kind::kFalse:
      return leaf("constant", kConstantClasses, kConstantClasses,
                  "constant formulas hold on every cut or on none",
                  n->span);
    case Node::Kind::kAtom:
      return infer_atom(c, *n);
    case Node::Kind::kChannelsEmpty:
      // All-channels-empty is regular (sublattice); its complement has no
      // derivable class.
      return leaf("channels-empty", kClassRegular, 0,
                  "the empty-channels cuts form a sublattice", n->span);
    case Node::Kind::kTerminated:
      // The singleton {top} is stable and a sublattice; everything below
      // the top cut is down-closed.
      return leaf("terminated", kClassStable | kClassRegular,
                  kClassLinear | kClassObserverIndependent,
                  "termination holds exactly at the final cut; its "
                  "complement is down-closed",
                  n->span);
    case Node::Kind::kNot: {
      Inference ch = infer_node(c, n->children[0]);
      Inference inf;
      inf.classes = ch.co_classes;
      inf.co_classes = ch.classes;
      inf.derivation =
          Derivation{"not-dual", inf.classes, inf.co_classes,
                     "negation swaps a formula's classes with its "
                     "co-classes",
                     n->span,
                     {std::move(ch.derivation)}};
      return inf;
    }
    case Node::Kind::kAnd:
    case Node::Kind::kOr: {
      const bool is_and = n->kind == Node::Kind::kAnd;
      ClassSet acc = is_and ? kAndMask : kOrMask;
      ClassSet co_acc = is_and ? kOrMask : kAndMask;
      bool any_equilevel = false, all_equilevel = true;
      bool any_co_equilevel = false, all_co_equilevel = true;
      std::vector<Derivation> premises;
      premises.reserve(n->children.size());
      for (const auto& ch : n->children) {
        Inference ci = infer_node(c, ch);
        acc &= ci.classes;
        co_acc &= ci.co_classes;
        any_equilevel |= (ci.classes & kClassEquilevel) != 0;
        all_equilevel &= (ci.classes & kClassEquilevel) != 0;
        any_co_equilevel |= (ci.co_classes & kClassEquilevel) != 0;
        all_co_equilevel &= (ci.co_classes & kClassEquilevel) != 0;
        premises.push_back(std::move(ci.derivation));
      }
      // Intersecting with a diagonal-only set stays diagonal-only; a union
      // is diagonal-only when every operand is.
      if (is_and ? any_equilevel : all_equilevel) acc |= kClassEquilevel;
      if (is_and ? all_co_equilevel : any_co_equilevel)
        co_acc |= kClassEquilevel;
      Inference inf;
      inf.classes = close_classes(acc);
      inf.co_classes = close_classes(co_acc);
      inf.derivation =
          Derivation{is_and ? "and-meet" : "or-join", inf.classes,
                     inf.co_classes,
                     is_and ? "conjunction intersects the operand classes "
                              "under the ∧-closed mask (De Morgan for the "
                              "co-classes)"
                            : "disjunction intersects the operand classes "
                              "under the ∨-closed mask (De Morgan for the "
                              "co-classes)",
                     n->span, std::move(premises)};
      return inf;
    }
    case Node::Kind::kTemporal: {
      std::vector<Derivation> premises;
      for (const auto& ch : n->children)
        premises.push_back(infer_node(c, ch).derivation);
      Inference inf;
      inf.derivation = Derivation{"temporal-opaque", 0, 0,
                                  "class inference stops at temporal "
                                  "operators",
                                  n->span, std::move(premises)};
      return inf;
    }
  }
  return {};
}

void render(const Derivation& d, int depth, std::string& out) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
  out += d.rule;
  out += " [";
  out += d.classes ? classes_to_string(d.classes) : "none";
  out += " | ~: ";
  out += d.co_classes ? classes_to_string(d.co_classes) : "none";
  out += "]";
  if (!d.detail.empty()) {
    out += ": ";
    out += d.detail;
  }
  out += '\n';
  for (const Derivation& p : d.premises) render(p, depth + 1, out);
}

void leaves(const Derivation& d, std::vector<const Derivation*>& out) {
  if (d.premises.empty()) {
    out.push_back(&d);
    return;
  }
  for (const Derivation& p : d.premises) leaves(p, out);
}

}  // namespace

Inference infer_classes(const Computation& c, const NodePtr& n) {
  return infer_node(c, n);
}

std::string to_string(const Derivation& d) {
  std::string out;
  render(d, 0, out);
  return out;
}

std::vector<const Derivation*> derivation_leaves(const Derivation& d) {
  std::vector<const Derivation*> out;
  leaves(d, out);
  return out;
}

}  // namespace hbct::ctl
