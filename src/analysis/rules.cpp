#include "analysis/rules.h"

#include <cstring>

namespace hbct {

const RuleInfo* find_rule(const std::string& name) {
  for (const RuleInfo& r : kRuleCatalog)
    if (std::strcmp(r.name, name.c_str()) == 0) return &r;
  return nullptr;
}

}  // namespace hbct
