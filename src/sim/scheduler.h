// Scheduling policies for the simulator.
//
// The scheduler repeatedly picks one enabled action: deliver a pending
// message to some process, or give a non-idle process a spontaneous step.
// Policies shape the generated computation: kRandom interleaves heavily,
// kRoundRobin produces regular interleavings, kDelayBiased starves
// deliveries so channels stay full (useful for channel-predicate tests).
#pragma once

#include <cstdint>
#include <vector>

#include "poset/event.h"
#include "util/rng.h"

namespace hbct::sim {

enum class SchedulerKind { kRandom, kRoundRobin, kDelayBiased };

struct Action {
  enum class Kind { kNone, kDeliver, kStep };
  Kind kind = Kind::kNone;
  ProcId proc = -1;   // receiver (kDeliver) or stepper (kStep)
  ProcId from = -1;   // sender (kDeliver)
};

class Scheduler {
 public:
  Scheduler(SchedulerKind kind, std::uint64_t seed)
      : kind_(kind), rng_(seed) {}

  /// Picks one action. `deliverable` lists (from, to) channel pairs with
  /// pending messages; `steppable` lists processes willing to step.
  Action pick(const std::vector<std::pair<ProcId, ProcId>>& deliverable,
              const std::vector<ProcId>& steppable);

  Rng& rng() { return rng_; }

 private:
  SchedulerKind kind_;
  Rng rng_;
  std::size_t rr_ = 0;  // round-robin cursor
};

}  // namespace hbct::sim
