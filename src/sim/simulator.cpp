#include "sim/simulator.h"

#include "util/assert.h"

namespace hbct::sim {

std::int32_t Context::num_procs() const { return sim_->num_procs(); }

void Context::send(ProcId to, const Message& m) {
  HBCT_ASSERT(to >= 0 && to < sim_->num_procs());
  HBCT_ASSERT_MSG(to != self_, "self-messages are not part of the model");
  const MsgId id = sim_->recorder_->record_send(to);
  sim_->chan_[static_cast<std::size_t>(self_)][static_cast<std::size_t>(to)]
      .push(InFlight{id, self_, m});
}

void Context::set(std::string_view var, std::int64_t value) {
  sim_->recorder_->record_write(var, value);
}

void Context::internal() { sim_->recorder_->record_internal(); }

void Context::label(std::string_view text) {
  sim_->recorder_->record_label(text);
}

Rng& Context::rng() { return sim_->sched_->rng(); }

Simulator::Simulator(std::int32_t num_procs)
    : num_procs_(num_procs),
      procs_(static_cast<std::size_t>(num_procs)),
      recorder_(std::make_unique<Recorder>(num_procs)),
      chan_(static_cast<std::size_t>(num_procs),
            std::vector<Channel>(static_cast<std::size_t>(num_procs))) {
  HBCT_ASSERT(num_procs > 0);
}

Simulator::~Simulator() = default;

void Simulator::set_process(ProcId i, std::unique_ptr<Process> p) {
  HBCT_ASSERT(i >= 0 && i < num_procs_);
  HBCT_ASSERT(p);
  procs_[static_cast<std::size_t>(i)] = std::move(p);
}

void Simulator::set_initial(ProcId i, std::string_view var,
                            std::int64_t value) {
  recorder_->set_initial(i, var, value);
}

Computation Simulator::run(const SimOptions& opt) && {
  for (ProcId i = 0; i < num_procs_; ++i)
    HBCT_ASSERT_MSG(procs_[static_cast<std::size_t>(i)] != nullptr,
                    "every process needs a behavior before run()");
  sched_ = std::make_unique<Scheduler>(opt.scheduler, opt.seed);
  fifo_ = opt.fifo;
  actions_ = 0;

  for (ProcId i = 0; i < num_procs_; ++i) {
    Context ctx(this, i);
    recorder_->begin_scope(i);
    procs_[static_cast<std::size_t>(i)]->start(ctx);
  }

  std::vector<std::pair<ProcId, ProcId>> deliverable;
  std::vector<ProcId> steppable;
  while (actions_ < opt.max_actions) {
    deliverable.clear();
    steppable.clear();
    for (ProcId from = 0; from < num_procs_; ++from)
      for (ProcId to = 0; to < num_procs_; ++to)
        if (!chan_[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)]
                 .empty())
          deliverable.emplace_back(from, to);
    for (ProcId i = 0; i < num_procs_; ++i)
      if (procs_[static_cast<std::size_t>(i)]->wants_step())
        steppable.push_back(i);

    const Action a = sched_->pick(deliverable, steppable);
    if (a.kind == Action::Kind::kNone) break;  // quiescent
    ++actions_;

    Context ctx(this, a.proc);
    Process& proc = *procs_[static_cast<std::size_t>(a.proc)];
    if (a.kind == Action::Kind::kDeliver) {
      Channel& ch = chan_[static_cast<std::size_t>(a.from)]
                         [static_cast<std::size_t>(a.proc)];
      const std::size_t pick =
          fifo_ ? 0
                : static_cast<std::size_t>(sched_->rng().next_below(ch.size()));
      InFlight m = ch.take(pick);
      recorder_->begin_receive_scope(a.proc, m.id);
      proc.receive(ctx, m.from, m.payload);
    } else {
      recorder_->begin_scope(a.proc);
      proc.step(ctx);
      // A step that records no event and still wants more steps would
      // livelock; the max_actions cap bounds the damage either way.
    }
  }
  return std::move(*recorder_).finish();
}

}  // namespace hbct::sim
