// Ready-made protocol workloads for the simulator.
//
// Each factory wires a Simulator with the protocol's processes and initial
// variable values; run it with the SimOptions of your choice. The variables
// each workload exposes are listed per factory — they are what the example
// programs and benches write predicates against.
#pragma once

#include "sim/simulator.h"

namespace hbct::sim {

/// Token-based mutual exclusion on a ring. Variables per process:
///   try (1 while trying), cs (1 while in the critical section).
/// The token makes `rounds` full circulations. With `inject_violation`,
/// process n-1 once enters the critical section without holding the token —
/// the bug EF(cs_i && cs_j) is designed to catch.
Simulator make_token_mutex(std::int32_t n, std::int32_t rounds,
                           bool inject_violation);

/// Ricart–Agrawala mutual exclusion; every process performs `rounds`
/// critical sections. Variables: try, cs, reqs (requests seen).
Simulator make_ra_mutex(std::int32_t n, std::int32_t rounds);

/// Chang–Roberts leader election on a unidirectional ring with distinct
/// uids = process index + 1. Variables: leader (0 until known), elected
/// (1 on the winner once elected).
Simulator make_leader_election(std::int32_t n);

/// Plain token ring: the token circulates `rounds` times; each hop
/// increments the local variable work. Produces chain-like computations.
Simulator make_token_ring(std::int32_t n, std::int32_t rounds);

/// Credit-windowed producer/consumer between P0 (producer) and P1
/// (consumer). Variables: produced@P0, consumed@P1, acked@P0.
/// Invariant by construction: produced - consumed <= window.
Simulator make_producer_consumer(std::int32_t items, std::int32_t window);

/// Coordinator-based barrier: P0 coordinates n-1 workers through `phases`
/// phases. Variables: phase on every worker (coordinator keeps phase too).
/// Invariant: |phase_i - phase_j| <= 1 for workers i, j.
Simulator make_barrier(std::int32_t n, std::int32_t phases);

/// Unstructured random traffic: every process performs `steps` spontaneous
/// actions (writes to v0..v{vars-1} and random sends); receives also write.
/// The property-test workhorse. Deterministic given the run seed.
Simulator make_random_mixer(std::int32_t n, std::int32_t steps,
                            std::int32_t vars, double send_prob);

/// Alternating-bit protocol between sender P0 and receiver P1 with
/// seed-driven retransmission (duplicates in flight). Variables — sender:
/// sent, confirmed, retransmits; receiver: delivered, dups. Safety by
/// construction: delivered increments by one per fresh item, duplicates are
/// absorbed.
Simulator make_alternating_bit(std::int32_t items, double p_retransmit);

/// Two-phase commit: P0 coordinates n-1 participants through `txns`
/// transactions. Participant i votes no on transaction t when
/// (seed-derived) chance says so; the coordinator commits only on unanimous
/// yes. Variables — coordinator: decision (+1 commit / -1 abort / 0 none),
/// txn; participants: vote (1/0), decided, outcome (+1/-1/0).
/// With `presumed_commit_bug`, the coordinator ignores a single no vote
/// once — committing a transaction a participant rejected.
Simulator make_two_phase_commit(std::int32_t n, std::int32_t txns,
                                double p_vote_no, bool presumed_commit_bug);

/// Chandy–Lamport snapshot over a ring of workers: each process increments
/// its counter x and passes work messages along the ring; P0 initiates a
/// marker-based global snapshot mid-run. Variables: x (app state), snapped
/// (1 once the local state is recorded), snap_x (the recorded value),
/// chan_rec (messages recorded as in-transit). The snapshot events carry
/// the label "snapshot"; the recorded cut is provably consistent (the
/// Chandy–Lamport theorem) — see tests/test_snapshot.cpp. Requires FIFO
/// delivery.
Simulator make_chandy_lamport(std::int32_t n, std::int32_t work_steps,
                              std::int32_t snapshot_after);

/// Dining philosophers over message-passing: 2n processes (philosophers
/// P0..P{n-1}, fork managers P{n}..P{2n-1}); each philosopher eats `meals`
/// times. With `ordered_forks` the last philosopher acquires its forks in
/// reverse order (the classic deadlock-free fix); without it, the run may
/// deadlock — every philosopher holding its left fork and waiting for the
/// right one. Philosopher variables: waitl, waitr, eating, meals (remaining).
/// Fork variables: busy.
Simulator make_dining_philosophers(std::int32_t n, std::int32_t meals,
                                   bool ordered_forks);

}  // namespace hbct::sim
