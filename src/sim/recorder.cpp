#include "sim/recorder.h"

#include "util/assert.h"

namespace hbct::sim {

void Recorder::begin_scope(ProcId i) {
  scope_proc_ = i;
  have_current_ = false;
  had_event_ = false;
}

void Recorder::begin_receive_scope(ProcId i, MsgId m) {
  begin_scope(i);
  builder_.receive(i, m);
  have_current_ = true;
  had_event_ = true;
}

void Recorder::ensure_event() {
  HBCT_ASSERT_MSG(scope_proc_ >= 0, "recorder used outside a callback scope");
  if (!have_current_) {
    builder_.internal(scope_proc_);
    have_current_ = true;
    had_event_ = true;
  }
}

MsgId Recorder::record_send(ProcId to) {
  HBCT_ASSERT(scope_proc_ >= 0);
  const MsgId m = builder_.send(scope_proc_, to);
  have_current_ = true;
  had_event_ = true;
  return m;
}

void Recorder::record_write(std::string_view var, std::int64_t value) {
  ensure_event();
  builder_.write(scope_proc_, var, value);
}

void Recorder::record_internal() {
  HBCT_ASSERT(scope_proc_ >= 0);
  builder_.internal(scope_proc_);
  have_current_ = true;
  had_event_ = true;
}

void Recorder::record_label(std::string_view text) {
  ensure_event();
  builder_.label(scope_proc_, text);
}

void Recorder::set_initial(ProcId i, std::string_view var,
                           std::int64_t value) {
  builder_.set_initial(i, builder_.var(var), value);
}

}  // namespace hbct::sim
