// In-flight message tracking for the simulator.
//
// One Channel instance models the directed link (src -> dst): messages are
// buffered between the send event and the delivery decision of the
// scheduler. Delivery order is FIFO or arbitrary (the happened-before model
// itself makes no FIFO assumption; the flag only shapes which computations
// get generated).
#pragma once

#include <cstdint>
#include <deque>

#include "poset/event.h"

namespace hbct::sim {

/// Application payload carried by a simulated message.
struct Message {
  std::int64_t type = 0;
  std::int64_t a = 0;
  std::int64_t b = 0;
};

struct InFlight {
  MsgId id = kNoMsg;  // builder message id
  ProcId from = -1;
  Message payload;
};

class Channel {
 public:
  void push(InFlight m) { q_.push_back(std::move(m)); }

  bool empty() const { return q_.empty(); }
  std::size_t size() const { return q_.size(); }

  /// Removes and returns the message at `index` (0 = oldest; FIFO delivery
  /// always passes 0).
  InFlight take(std::size_t index);

 private:
  std::deque<InFlight> q_;
};

}  // namespace hbct::sim
