// Event recording layer: turns callback-driven process behavior into the
// events of a Computation.
//
// Within one callback invocation the recorder maintains a "current event":
// variable writes attach to it; the delivery that triggered a receive
// callback is the initial current event; each send starts a new current
// event; a write with no current event materializes an internal event.
#pragma once

#include <string_view>

#include "poset/builder.h"
#include "sim/channel.h"

namespace hbct::sim {

class Recorder {
 public:
  explicit Recorder(std::int32_t num_procs) : builder_(num_procs) {}

  /// Begins a callback scope for process i with no current event.
  void begin_scope(ProcId i);
  /// Begins a scope whose current event is the receive of `m`.
  void begin_receive_scope(ProcId i, MsgId m);

  /// Records a send event (becomes the current event); returns the message
  /// id for channel bookkeeping.
  MsgId record_send(ProcId to);

  /// Attaches a variable write to the current event, materializing an
  /// internal event if there is none.
  void record_write(std::string_view var, std::int64_t value);

  /// Records a bare internal event (becomes the current event).
  void record_internal();

  /// Attaches a label to the current event (materializing one if needed).
  void record_label(std::string_view text);

  /// True when the current scope has produced at least one event.
  bool scope_had_event() const { return had_event_; }

  void set_initial(ProcId i, std::string_view var, std::int64_t value);

  ComputationBuilder& builder() { return builder_; }
  Computation finish() && { return std::move(builder_).build(); }

 private:
  void ensure_event();

  ComputationBuilder builder_;
  ProcId scope_proc_ = -1;
  bool have_current_ = false;
  bool had_event_ = false;
};

}  // namespace hbct::sim
