#include "sim/scheduler.h"

namespace hbct::sim {

Action Scheduler::pick(
    const std::vector<std::pair<ProcId, ProcId>>& deliverable,
    const std::vector<ProcId>& steppable) {
  Action a;
  const std::size_t total = deliverable.size() + steppable.size();
  if (total == 0) return a;

  auto deliver_at = [&](std::size_t i) {
    a.kind = Action::Kind::kDeliver;
    a.from = deliverable[i].first;
    a.proc = deliverable[i].second;
    return a;
  };
  auto step_at = [&](std::size_t i) {
    a.kind = Action::Kind::kStep;
    a.proc = steppable[i];
    return a;
  };

  switch (kind_) {
    case SchedulerKind::kRandom: {
      const std::size_t i = rng_.next_below(total);
      return i < deliverable.size() ? deliver_at(i)
                                    : step_at(i - deliverable.size());
    }
    case SchedulerKind::kRoundRobin: {
      // Cycle through all actions deterministically.
      const std::size_t i = rr_++ % total;
      return i < deliverable.size() ? deliver_at(i)
                                    : step_at(i - deliverable.size());
    }
    case SchedulerKind::kDelayBiased: {
      // Prefer steps; deliver only occasionally (or when forced), keeping
      // messages in transit for long stretches.
      if (!steppable.empty() && (deliverable.empty() || !rng_.next_bool(0.15)))
        return step_at(rng_.next_below(steppable.size()));
      return deliver_at(rng_.next_below(deliverable.size()));
    }
  }
  return a;
}

}  // namespace hbct::sim
