// Dining philosophers (see sim/workloads.h).
//
// Forks are resource-manager processes: REQUEST is granted immediately when
// the fork is free, otherwise queued until RELEASE. A philosopher acquires
// its two forks one at a time — first the "left" (its own index) then the
// "right" (index+1 mod n) — which permits the classic circular-wait
// deadlock unless the acquisition order is broken for one philosopher.
#include <deque>

#include "sim/workloads.h"
#include "util/assert.h"

namespace hbct::sim {

namespace {

constexpr std::int64_t kRequest = 1;
constexpr std::int64_t kGrant = 2;
constexpr std::int64_t kRelease = 3;

class Philosopher final : public Process {
 public:
  Philosopher(ProcId self, std::int32_t n, std::int32_t meals, bool reversed)
      : self_(self), n_(n), meals_(meals), reversed_(reversed) {}

  void receive(Context& ctx, ProcId /*from*/, const Message& m) override {
    HBCT_ASSERT(m.type == kGrant);
    if (state_ == State::kWaitFirst) {
      ctx.set("waitl", 0);
      ctx.set("waitr", 1);
      state_ = State::kWaitSecond;
      Message req;
      req.type = kRequest;
      ctx.send(second_fork(), req);
    } else {
      HBCT_ASSERT(state_ == State::kWaitSecond);
      ctx.set("waitr", 0);
      ctx.set("eating", 1);
      ctx.label("eats");
      state_ = State::kEating;
    }
  }

  void step(Context& ctx) override {
    if (state_ == State::kThinking && meals_ > 0) {
      state_ = State::kWaitFirst;
      ctx.set("waitl", 1);
      Message req;
      req.type = kRequest;
      ctx.send(first_fork(), req);
      return;
    }
    if (state_ == State::kEating) {
      --meals_;
      state_ = State::kThinking;
      ctx.set("eating", 0);
      ctx.set("meals", meals_);
      Message rel;
      rel.type = kRelease;
      ctx.send(first_fork(), rel);
      ctx.send(second_fork(), rel);
    }
  }

  bool wants_step() const override {
    return state_ == State::kEating ||
           (state_ == State::kThinking && meals_ > 0);
  }

 private:
  ProcId left_fork() const { return n_ + self_; }
  ProcId right_fork() const { return n_ + (self_ + 1) % n_; }
  ProcId first_fork() const { return reversed_ ? right_fork() : left_fork(); }
  ProcId second_fork() const { return reversed_ ? left_fork() : right_fork(); }

  enum class State { kThinking, kWaitFirst, kWaitSecond, kEating };
  ProcId self_;
  std::int32_t n_;
  std::int32_t meals_;
  bool reversed_;
  State state_ = State::kThinking;
};

class Fork final : public Process {
 public:
  void receive(Context& ctx, ProcId from, const Message& m) override {
    if (m.type == kRequest) {
      if (busy_) {
        queue_.push_back(from);
        return;
      }
      busy_ = true;
      ctx.set("busy", 1);
      Message grant;
      grant.type = kGrant;
      ctx.send(from, grant);
      return;
    }
    HBCT_ASSERT(m.type == kRelease);
    if (!queue_.empty()) {
      const ProcId next = queue_.front();
      queue_.pop_front();
      Message grant;
      grant.type = kGrant;
      ctx.send(next, grant);  // stays busy, new owner
      ctx.set("busy", 1);
    } else {
      busy_ = false;
      ctx.set("busy", 0);
    }
  }

 private:
  bool busy_ = false;
  std::deque<ProcId> queue_;
};

}  // namespace

Simulator make_dining_philosophers(std::int32_t n, std::int32_t meals,
                                   bool ordered_forks) {
  HBCT_ASSERT(n >= 2);
  Simulator sim(2 * n);
  for (ProcId i = 0; i < n; ++i) {
    sim.set_initial(i, "waitl", 0);
    sim.set_initial(i, "waitr", 0);
    sim.set_initial(i, "eating", 0);
    sim.set_initial(i, "meals", meals);
    const bool reversed = ordered_forks && i == n - 1;
    sim.set_process(i, std::make_unique<Philosopher>(i, n, meals, reversed));
  }
  for (ProcId f = n; f < 2 * n; ++f) {
    sim.set_initial(f, "busy", 0);
    sim.set_process(f, std::make_unique<Fork>());
  }
  return sim;
}

}  // namespace hbct::sim
