// Two-phase commit (see sim/workloads.h).
#include "sim/workloads.h"
#include "util/assert.h"

namespace hbct::sim {

namespace {

constexpr std::int64_t kPrepare = 1;
constexpr std::int64_t kVote = 2;     // a = txn, b = 1 yes / 0 no
constexpr std::int64_t kCommit = 3;   // a = txn
constexpr std::int64_t kAbort = 4;    // a = txn

class Coordinator final : public Process {
 public:
  Coordinator(std::int32_t n, std::int32_t txns, bool faulty)
      : n_(n), txns_(txns), faulty_(faulty) {}

  void step(Context& ctx) override {
    if (phase_ != Phase::kIdle || txn_ >= txns_) return;
    ++txn_;
    phase_ = Phase::kCollecting;
    yes_ = 0;
    no_ = 0;
    ctx.set("txn", txn_);
    ctx.set("decision", 0);
    ctx.label("prepare");
    Message m;
    m.type = kPrepare;
    m.a = txn_;
    for (ProcId j = 1; j < n_; ++j) ctx.send(j, m);
  }

  void receive(Context& ctx, ProcId /*from*/, const Message& m) override {
    HBCT_ASSERT(m.type == kVote);
    HBCT_ASSERT(m.a == txn_);
    bool yes = m.b != 0;
    if (!yes && faulty_ && !bug_used_) {
      // Injected fault: one no vote is dropped on the floor, once.
      bug_used_ = true;
      yes = true;
    }
    yes ? ++yes_ : ++no_;
    if (yes_ + no_ < n_ - 1) return;
    phase_ = Phase::kIdle;
    const bool commit = no_ == 0;
    ctx.set("decision", commit ? 1 : -1);
    ctx.label(commit ? "commit" : "abort");
    Message d;
    d.type = commit ? kCommit : kAbort;
    d.a = txn_;
    for (ProcId j = 1; j < n_; ++j) ctx.send(j, d);
  }

  bool wants_step() const override {
    return phase_ == Phase::kIdle && txn_ < txns_;
  }

 private:
  enum class Phase { kIdle, kCollecting };
  std::int32_t n_, txns_;
  bool faulty_;
  bool bug_used_ = false;
  Phase phase_ = Phase::kIdle;
  std::int64_t txn_ = 0;
  std::int32_t yes_ = 0, no_ = 0;
};

class Participant final : public Process {
 public:
  explicit Participant(double p_vote_no) : p_vote_no_(p_vote_no) {}

  void receive(Context& ctx, ProcId from, const Message& m) override {
    if (m.type == kPrepare) {
      const bool no = ctx.rng().next_bool(p_vote_no_);
      ctx.set("vote", no ? 0 : 1);
      ctx.set("decided", 0);
      ctx.set("outcome", 0);
      Message v;
      v.type = kVote;
      v.a = m.a;
      v.b = no ? 0 : 1;
      ctx.send(from, v);
      return;
    }
    HBCT_ASSERT(m.type == kCommit || m.type == kAbort);
    ctx.set("decided", 1);
    ctx.set("dtxn", m.a);  // which transaction this outcome refers to
    ctx.set("outcome", m.type == kCommit ? 1 : -1);
    ctx.label(m.type == kCommit ? "commits" : "aborts");
  }

 private:
  double p_vote_no_;
};

}  // namespace

Simulator make_two_phase_commit(std::int32_t n, std::int32_t txns,
                                double p_vote_no, bool presumed_commit_bug) {
  HBCT_ASSERT(n >= 2);
  Simulator sim(n);
  sim.set_initial(0, "txn", 0);
  sim.set_initial(0, "decision", 0);
  sim.set_process(0, std::make_unique<Coordinator>(n, txns,
                                                   presumed_commit_bug));
  for (ProcId i = 1; i < n; ++i) {
    sim.set_initial(i, "vote", 1);
    sim.set_initial(i, "decided", 0);
    sim.set_initial(i, "dtxn", 0);
    sim.set_initial(i, "outcome", 0);
    sim.set_process(i, std::make_unique<Participant>(p_vote_no));
  }
  return sim;
}

}  // namespace hbct::sim
