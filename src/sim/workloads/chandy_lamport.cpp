// Chandy–Lamport global snapshot (see sim/workloads.h).
//
// The application layer is a ring of workers incrementing a local counter
// and shipping work units clockwise. P0 initiates a snapshot after
// `snapshot_after` local steps: it records its state, then sends a MARKER
// on every outgoing channel; every process records on first marker, relays
// markers, and counts application messages that arrive on channels still
// open for recording (the in-transit state). The recorded local states form
// a consistent cut of the underlying computation — the theorem the paper
// cites as [2], testable directly with this library's machinery.
#include <vector>

#include "sim/workloads.h"
#include "util/assert.h"

namespace hbct::sim {

namespace {

constexpr std::int64_t kWork = 1;
constexpr std::int64_t kMarker = 2;

class ClWorker final : public Process {
 public:
  ClWorker(ProcId self, std::int32_t n, std::int32_t work_steps,
           std::int32_t snapshot_after)
      : self_(self), n_(n), steps_left_(work_steps),
        snapshot_after_(snapshot_after),
        marker_seen_(static_cast<std::size_t>(n), false) {}

  void step(Context& ctx) override {
    if (self_ == 0 && !recorded_ && steps_done_ >= snapshot_after_) {
      record_and_relay(ctx);
      return;
    }
    if (steps_left_ <= 0) return;
    --steps_left_;
    ++steps_done_;
    ++x_;
    ctx.set("x", x_);
    if (steps_done_ % 2 == 0) {
      Message w;
      w.type = kWork;
      w.a = x_;
      ctx.send((self_ + 1) % n_, w);
    }
  }

  void receive(Context& ctx, ProcId from, const Message& m) override {
    if (m.type == kWork) {
      x_ += 1;
      ctx.set("x", x_);
      // A work message on a channel we are still recording belongs to the
      // snapshot's in-transit state.
      if (recorded_ && !marker_seen_[static_cast<std::size_t>(from)])
        ctx.set("chan_rec", ++chan_rec_);
      return;
    }
    HBCT_ASSERT(m.type == kMarker);
    marker_seen_[static_cast<std::size_t>(from)] = true;
    if (!recorded_) record_and_relay(ctx);
  }

  bool wants_step() const override {
    return steps_left_ > 0 ||
           (self_ == 0 && !recorded_ && steps_done_ >= snapshot_after_);
  }

 private:
  void record_and_relay(Context& ctx) {
    recorded_ = true;
    ctx.set("snapped", 1);
    ctx.set("snap_x", x_);
    ctx.label("snapshot");
    Message marker;
    marker.type = kMarker;
    for (ProcId j = 0; j < n_; ++j)
      if (j != self_) ctx.send(j, marker);
  }

  ProcId self_;
  std::int32_t n_;
  std::int32_t steps_left_;
  std::int32_t snapshot_after_;
  std::int32_t steps_done_ = 0;
  std::int64_t x_ = 0;
  bool recorded_ = false;
  std::int64_t chan_rec_ = 0;
  std::vector<bool> marker_seen_;
};

}  // namespace

Simulator make_chandy_lamport(std::int32_t n, std::int32_t work_steps,
                              std::int32_t snapshot_after) {
  HBCT_ASSERT(n >= 2);
  Simulator sim(n);
  for (ProcId i = 0; i < n; ++i) {
    sim.set_initial(i, "x", 0);
    sim.set_initial(i, "snapped", 0);
    sim.set_initial(i, "snap_x", 0);
    sim.set_initial(i, "chan_rec", 0);
    sim.set_process(i, std::make_unique<ClWorker>(i, n, work_steps,
                                                  snapshot_after));
  }
  return sim;
}

}  // namespace hbct::sim
