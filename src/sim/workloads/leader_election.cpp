// Chang–Roberts leader election on a unidirectional ring.
//
// Every process sends its uid clockwise. A process forwards uids larger
// than its own, swallows smaller ones, and declares itself leader when its
// own uid returns. The winner then circulates an ELECTED announcement.
#include "sim/workloads.h"

namespace hbct::sim {

namespace {

constexpr std::int64_t kUid = 1;
constexpr std::int64_t kElected = 2;

class CrProc final : public Process {
 public:
  CrProc(ProcId self, std::int32_t n) : self_(self), n_(n) {}

  void start(Context& ctx) override {
    Message m;
    m.type = kUid;
    m.a = uid();
    ctx.send(next(), m);
    ctx.label("send_uid");
  }

  void receive(Context& ctx, ProcId /*from*/, const Message& m) override {
    if (m.type == kUid) {
      if (m.a > uid()) {
        ctx.send(next(), m);  // forward the stronger candidate
      } else if (m.a == uid()) {
        // Our uid survived the full circle: we are the leader.
        ctx.set("leader", uid());
        ctx.set("elected", 1);
        ctx.label("becomes_leader");
        Message ann;
        ann.type = kElected;
        ann.a = uid();
        ctx.send(next(), ann);
      }
      // Smaller uids are swallowed (no event beyond the receive).
      return;
    }
    if (m.type == kElected && m.a != uid()) {
      ctx.set("leader", m.a);
      ctx.label("learns_leader");
      ctx.send(next(), m);
    }
    // The announcement stops when it reaches the leader again.
  }

 private:
  std::int64_t uid() const { return self_ + 1; }
  ProcId next() const { return (self_ + 1) % n_; }

  ProcId self_;
  std::int32_t n_;
};

}  // namespace

Simulator make_leader_election(std::int32_t n) {
  Simulator sim(n);
  for (ProcId i = 0; i < n; ++i) {
    sim.set_initial(i, "leader", 0);
    sim.set_initial(i, "elected", 0);
    sim.set_process(i, std::make_unique<CrProc>(i, n));
  }
  return sim;
}

}  // namespace hbct::sim
