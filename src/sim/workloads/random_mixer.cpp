// Unstructured random traffic generator (see sim/workloads.h).
#include "sim/workloads.h"
#include "util/string_util.h"

namespace hbct::sim {

namespace {

class MixerProc final : public Process {
 public:
  MixerProc(ProcId self, std::int32_t n, std::int32_t steps,
            std::int32_t vars, double send_prob)
      : self_(self), n_(n), steps_left_(steps), vars_(vars),
        send_prob_(send_prob) {}

  void receive(Context& ctx, ProcId /*from*/, const Message& m) override {
    // Record the payload into a random variable.
    if (vars_ > 0)
      ctx.set(var_name(ctx.rng().next_below(
                  static_cast<std::uint64_t>(vars_))),
              m.a);
  }

  void step(Context& ctx) override {
    if (steps_left_ <= 0) return;
    --steps_left_;
    Rng& rng = ctx.rng();
    if (n_ > 1 && rng.next_bool(send_prob_)) {
      ProcId to;
      do {
        to = static_cast<ProcId>(rng.next_below(static_cast<std::uint64_t>(n_)));
      } while (to == self_);
      Message m;
      m.a = rng.next_in(0, 9);
      ctx.send(to, m);
    } else if (vars_ > 0) {
      ctx.set(var_name(rng.next_below(static_cast<std::uint64_t>(vars_))),
              rng.next_in(0, 9));
    } else {
      ctx.internal();
    }
  }

  bool wants_step() const override { return steps_left_ > 0; }

 private:
  static std::string var_name(std::uint64_t v) {
    return strfmt("v%llu", static_cast<unsigned long long>(v));
  }

  ProcId self_;
  std::int32_t n_;
  std::int32_t steps_left_;
  std::int32_t vars_;
  double send_prob_;
};

}  // namespace

Simulator make_random_mixer(std::int32_t n, std::int32_t steps,
                            std::int32_t vars, double send_prob) {
  Simulator sim(n);
  for (ProcId i = 0; i < n; ++i) {
    for (std::int32_t v = 0; v < vars; ++v)
      sim.set_initial(i, strfmt("v%d", v), 0);
    sim.set_process(i,
                    std::make_unique<MixerProc>(i, n, steps, vars, send_prob));
  }
  return sim;
}

}  // namespace hbct::sim
