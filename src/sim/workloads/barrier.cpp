// Coordinator-based barrier synchronization (see sim/workloads.h).
#include "sim/workloads.h"
#include "util/assert.h"

namespace hbct::sim {

namespace {

constexpr std::int64_t kArrive = 1;
constexpr std::int64_t kRelease = 2;

class Coordinator final : public Process {
 public:
  Coordinator(std::int32_t n, std::int32_t phases)
      : n_(n), phases_(phases) {}

  void receive(Context& ctx, ProcId /*from*/, const Message& m) override {
    HBCT_ASSERT(m.type == kArrive);
    if (++arrived_ < n_ - 1) return;
    arrived_ = 0;
    ++phase_;
    ctx.set("phase", phase_);
    ctx.label("release");
    if (phase_ > phases_) return;  // workers stop after the last release
    Message rel;
    rel.type = kRelease;
    rel.a = phase_;
    for (ProcId j = 1; j < n_; ++j) ctx.send(j, rel);
  }

 private:
  std::int32_t n_, phases_;
  std::int32_t arrived_ = 0;
  std::int64_t phase_ = 0;
};

class Worker final : public Process {
 public:
  explicit Worker(std::int32_t phases) : phases_(phases) {}

  void start(Context& ctx) override {
    // Arrive at the first barrier immediately.
    Message m;
    m.type = kArrive;
    ctx.send(0, m);
  }

  void receive(Context& ctx, ProcId /*from*/, const Message& m) override {
    HBCT_ASSERT(m.type == kRelease);
    phase_ = m.a;
    ctx.set("phase", phase_);
    if (phase_ < phases_) {
      Message arr;
      arr.type = kArrive;
      ctx.send(0, arr);
    }
  }

 private:
  std::int32_t phases_;
  std::int64_t phase_ = 0;
};

}  // namespace

Simulator make_barrier(std::int32_t n, std::int32_t phases) {
  HBCT_ASSERT(n >= 2);
  Simulator sim(n);
  for (ProcId i = 0; i < n; ++i) sim.set_initial(i, "phase", 0);
  sim.set_process(0, std::make_unique<Coordinator>(n, phases));
  for (ProcId i = 1; i < n; ++i)
    sim.set_process(i, std::make_unique<Worker>(phases));
  return sim;
}

}  // namespace hbct::sim
