// Token-based mutual exclusion (see sim/workloads.h).
#include "sim/workloads.h"

namespace hbct::sim {

namespace {

constexpr std::int64_t kToken = 1;

class TokenMutexProc final : public Process {
 public:
  TokenMutexProc(ProcId self, std::int32_t n, bool starts_with_token,
                 std::int64_t hop_budget, bool faulty)
      : self_(self),
        n_(n),
        has_token_(starts_with_token),
        hops_left_(hop_budget),
        faulty_(faulty) {}

  void receive(Context& ctx, ProcId /*from*/, const Message& m) override {
    if (m.type != kToken) return;
    has_token_ = true;
    hops_left_ = m.a;
    ctx.set("has_token", 1);
  }

  void step(Context& ctx) override {
    if (faulty_ && !has_token_) {
      // Injected bug: one rogue critical section without the token.
      faulty_ = false;
      ctx.set("cs", 1);
      ctx.label("rogue_cs_enter");
      phase_ = Phase::kRogueExit;
      return;
    }
    if (phase_ == Phase::kRogueExit) {
      ctx.set("cs", 0);
      phase_ = Phase::kIdle;
      return;
    }
    if (!has_token_) return;
    switch (phase_) {
      case Phase::kIdle:
        ctx.set("try", 1);
        phase_ = Phase::kTrying;
        break;
      case Phase::kTrying:
        ctx.set("try", 0);
        ctx.set("cs", 1);
        ctx.label("cs_enter");
        phase_ = Phase::kInCs;
        break;
      case Phase::kInCs:
        ctx.set("cs", 0);
        phase_ = Phase::kDone;
        break;
      case Phase::kDone: {
        has_token_ = false;
        ctx.set("has_token", 0);
        phase_ = Phase::kIdle;
        if (hops_left_ > 0) {
          Message m;
          m.type = kToken;
          m.a = hops_left_ - 1;
          ctx.send((self_ + 1) % n_, m);
        }
        break;
      }
      case Phase::kRogueExit:
        break;  // handled above
    }
  }

  bool wants_step() const override {
    return has_token_ || faulty_ || phase_ == Phase::kRogueExit;
  }

 private:
  enum class Phase { kIdle, kTrying, kInCs, kDone, kRogueExit };
  ProcId self_;
  std::int32_t n_;
  bool has_token_;
  std::int64_t hops_left_;
  bool faulty_;
  Phase phase_ = Phase::kIdle;
};

}  // namespace

Simulator make_token_mutex(std::int32_t n, std::int32_t rounds,
                           bool inject_violation) {
  Simulator sim(n);
  const std::int64_t hops = static_cast<std::int64_t>(n) * rounds - 1;
  for (ProcId i = 0; i < n; ++i) {
    sim.set_initial(i, "try", 0);
    sim.set_initial(i, "cs", 0);
    sim.set_initial(i, "has_token", i == 0 ? 1 : 0);
    sim.set_process(i, std::make_unique<TokenMutexProc>(
                           i, n, /*starts_with_token=*/i == 0, hops,
                           /*faulty=*/inject_violation && i == n - 1));
  }
  return sim;
}

}  // namespace hbct::sim
