// Plain token ring (see sim/workloads.h).
#include "sim/workloads.h"

namespace hbct::sim {

namespace {

class TokenRingProc final : public Process {
 public:
  TokenRingProc(ProcId self, std::int32_t n, bool starts, std::int64_t hops)
      : self_(self), n_(n), holds_(starts), hops_left_(hops) {}

  void receive(Context& ctx, ProcId /*from*/, const Message& m) override {
    holds_ = true;
    hops_left_ = m.a;
    ctx.set("work", ++work_);
  }

  void step(Context& ctx) override {
    if (!holds_) return;
    holds_ = false;
    if (hops_left_ > 0) {
      Message m;
      m.a = hops_left_ - 1;
      ctx.send((self_ + 1) % n_, m);
    } else {
      ctx.set("done", 1);
    }
  }

  bool wants_step() const override { return holds_; }

 private:
  ProcId self_;
  std::int32_t n_;
  bool holds_;
  std::int64_t hops_left_;
  std::int64_t work_ = 0;
};

}  // namespace

Simulator make_token_ring(std::int32_t n, std::int32_t rounds) {
  Simulator sim(n);
  const std::int64_t hops = static_cast<std::int64_t>(n) * rounds - 1;
  for (ProcId i = 0; i < n; ++i) {
    sim.set_initial(i, "work", i == 0 ? 1 : 0);
    sim.set_initial(i, "done", 0);
    sim.set_process(i,
                    std::make_unique<TokenRingProc>(i, n, i == 0, hops));
  }
  return sim;
}

}  // namespace hbct::sim
