// Alternating-bit protocol with timeout-driven retransmission.
//
// The sender transmits item k tagged with bit k mod 2 and, while waiting
// for the matching acknowledgement, may retransmit (a seed-driven "timeout"
// stands in for loss, which reliable channels cannot exhibit — duplicates
// are the interesting hazard here). The receiver delivers a DATA message
// only when its bit matches the expected bit, acknowledging every copy.
// Safety to detect: delivery happens exactly once per item and in order.
#include "sim/workloads.h"
#include "util/assert.h"

namespace hbct::sim {

namespace {

constexpr std::int64_t kData = 1;  // a = bit, b = item number
constexpr std::int64_t kAck = 2;   // a = bit

class AbpSender final : public Process {
 public:
  AbpSender(std::int32_t items, double p_retransmit)
      : items_(items), p_retransmit_(p_retransmit) {}

  void step(Context& ctx) override {
    if (item_ > items_) return;
    if (!awaiting_) {
      awaiting_ = true;
      transmit(ctx);
      return;
    }
    // Timeout path: duplicate the in-flight item.
    if (ctx.rng().next_bool(p_retransmit_)) {
      ctx.set("retransmits", ++retransmits_);
      transmit(ctx);
    } else {
      ctx.internal();  // idle tick while waiting
    }
  }

  void receive(Context& ctx, ProcId /*from*/, const Message& m) override {
    HBCT_ASSERT(m.type == kAck);
    if (!awaiting_ || m.a != bit_) return;  // stale ack: ignore
    awaiting_ = false;
    ctx.set("confirmed", item_);
    bit_ ^= 1;
    ++item_;
  }

  bool wants_step() const override { return item_ <= items_; }

 private:
  void transmit(Context& ctx) {
    Message d;
    d.type = kData;
    d.a = bit_;
    d.b = item_;
    ctx.send(1, d);
    ctx.set("sent", item_);
  }

  std::int32_t items_;
  double p_retransmit_;
  std::int64_t item_ = 1;
  std::int64_t bit_ = 0;
  std::int64_t retransmits_ = 0;
  bool awaiting_ = false;
};

class AbpReceiver final : public Process {
 public:
  void receive(Context& ctx, ProcId from, const Message& m) override {
    HBCT_ASSERT(m.type == kData);
    if (m.a == expected_) {
      // Fresh item: deliver exactly once, in order.
      HBCT_ASSERT(m.b == delivered_ + 1);
      ctx.set("delivered", ++delivered_);
      expected_ ^= 1;
    } else {
      ctx.set("dups", ++dups_);  // duplicate of an already-delivered item
    }
    Message ack;
    ack.type = kAck;
    ack.a = m.a;
    ctx.send(from, ack);
  }

 private:
  std::int64_t expected_ = 0;
  std::int64_t delivered_ = 0;
  std::int64_t dups_ = 0;
};

}  // namespace

Simulator make_alternating_bit(std::int32_t items, double p_retransmit) {
  HBCT_ASSERT(items >= 1);
  Simulator sim(2);
  sim.set_initial(0, "sent", 0);
  sim.set_initial(0, "confirmed", 0);
  sim.set_initial(0, "retransmits", 0);
  sim.set_initial(1, "delivered", 0);
  sim.set_initial(1, "dups", 0);
  sim.set_process(0, std::make_unique<AbpSender>(items, p_retransmit));
  sim.set_process(1, std::make_unique<AbpReceiver>());
  return sim;
}

}  // namespace hbct::sim
