// Credit-windowed producer/consumer (see sim/workloads.h).
//
// The producer may have at most `window` unacknowledged items outstanding,
// which enforces the bounded-buffer invariant produced - consumed <= window
// (a regular predicate: a difference of monotone counters).
#include "sim/workloads.h"
#include "util/assert.h"

namespace hbct::sim {

namespace {

constexpr std::int64_t kItem = 1;
constexpr std::int64_t kAck = 2;

class Producer final : public Process {
 public:
  Producer(std::int32_t items, std::int32_t window)
      : items_(items), window_(window) {}

  void receive(Context& ctx, ProcId /*from*/, const Message& m) override {
    HBCT_ASSERT(m.type == kAck);
    ctx.set("acked", ++acked_);
  }

  void step(Context& ctx) override {
    if (produced_ >= items_ || produced_ - acked_ >= window_) return;
    ++produced_;
    Message m;
    m.type = kItem;
    m.a = produced_;
    ctx.send(1, m);
    ctx.set("produced", produced_);
  }

  bool wants_step() const override {
    return produced_ < items_ && produced_ - acked_ < window_;
  }

 private:
  std::int64_t items_, window_;
  std::int64_t produced_ = 0, acked_ = 0;
};

class Consumer final : public Process {
 public:
  void receive(Context& ctx, ProcId from, const Message& m) override {
    HBCT_ASSERT(m.type == kItem);
    ctx.set("consumed", ++consumed_);
    Message ack;
    ack.type = kAck;
    ack.a = m.a;
    ctx.send(from, ack);
  }

 private:
  std::int64_t consumed_ = 0;
};

}  // namespace

Simulator make_producer_consumer(std::int32_t items, std::int32_t window) {
  HBCT_ASSERT(window > 0);
  Simulator sim(2);
  sim.set_initial(0, "produced", 0);
  sim.set_initial(0, "acked", 0);
  sim.set_initial(1, "consumed", 0);
  sim.set_process(0, std::make_unique<Producer>(items, window));
  sim.set_process(1, std::make_unique<Consumer>());
  return sim;
}

}  // namespace hbct::sim
