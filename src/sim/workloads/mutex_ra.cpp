// Ricart–Agrawala mutual exclusion (see sim/workloads.h).
//
// Classic permission-based algorithm: to enter the critical section a
// process timestamps a REQUEST, broadcasts it, and waits for a REPLY from
// every other process. A process receiving a REQUEST replies immediately
// unless it is requesting with a smaller (timestamp, id) pair, in which
// case the reply is deferred until it leaves its own critical section.
#include <vector>

#include "sim/workloads.h"
#include "util/assert.h"

namespace hbct::sim {

namespace {

constexpr std::int64_t kRequest = 1;
constexpr std::int64_t kReply = 2;

class RaProc final : public Process {
 public:
  RaProc(ProcId self, std::int32_t n, std::int32_t rounds)
      : self_(self), n_(n), rounds_left_(rounds) {}

  void receive(Context& ctx, ProcId from, const Message& m) override {
    clock_ = std::max(clock_, m.a) + 1;
    if (m.type == kRequest) {
      ctx.set("reqs", ++reqs_seen_);
      // Defer while in the critical section, or while waiting with a
      // smaller (timestamp, id) request of our own.
      const bool mine_wins =
          state_ == State::kInCs ||
          (state_ == State::kWaiting &&
           (my_ts_ < m.a || (my_ts_ == m.a && self_ < from)));
      if (mine_wins) {
        deferred_.push_back(from);
      } else {
        Message reply;
        reply.type = kReply;
        reply.a = clock_;
        ctx.send(from, reply);
      }
      return;
    }
    HBCT_ASSERT(m.type == kReply);
    if (state_ == State::kWaiting && ++replies_ == n_ - 1) {
      state_ = State::kInCs;
      ctx.set("try", 0);
      ctx.set("cs", 1);
      ctx.label("cs_enter");
    }
  }

  void step(Context& ctx) override {
    if (state_ == State::kIdle && rounds_left_ > 0) {
      --rounds_left_;
      state_ = State::kWaiting;
      replies_ = 0;
      my_ts_ = ++clock_;
      ctx.set("try", 1);
      Message req;
      req.type = kRequest;
      req.a = my_ts_;
      for (ProcId j = 0; j < n_; ++j)
        if (j != self_) ctx.send(j, req);
      if (n_ == 1) {  // degenerate single-process system
        state_ = State::kInCs;
        ctx.set("try", 0);
        ctx.set("cs", 1);
      }
      return;
    }
    if (state_ == State::kInCs) {
      state_ = State::kIdle;
      ctx.set("cs", 0);
      Message reply;
      reply.type = kReply;
      reply.a = ++clock_;
      for (ProcId j : deferred_) ctx.send(j, reply);
      deferred_.clear();
    }
  }

  bool wants_step() const override {
    return state_ == State::kInCs || (state_ == State::kIdle && rounds_left_ > 0);
  }

 private:
  enum class State { kIdle, kWaiting, kInCs };
  ProcId self_;
  std::int32_t n_;
  std::int32_t rounds_left_;
  State state_ = State::kIdle;
  std::int32_t replies_ = 0;
  std::int64_t clock_ = 0;
  std::int64_t my_ts_ = 0;
  std::int64_t reqs_seen_ = 0;
  std::vector<ProcId> deferred_;
};

}  // namespace

Simulator make_ra_mutex(std::int32_t n, std::int32_t rounds) {
  Simulator sim(n);
  for (ProcId i = 0; i < n; ++i) {
    sim.set_initial(i, "try", 0);
    sim.set_initial(i, "cs", 0);
    sim.set_initial(i, "reqs", 0);
    sim.set_process(i, std::make_unique<RaProc>(i, n, rounds));
  }
  return sim;
}

}  // namespace hbct::sim
