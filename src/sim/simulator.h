// Discrete-event message-passing simulator.
//
// The simulator is the "distributed program" substrate of this repository:
// the paper assumes an observed execution of n asynchronous message-passing
// processes, and this module produces such executions from small protocol
// implementations (see sim/workloads/). The output is a Computation — the
// happened-before model — ready for predicate detection.
//
// Model restrictions mirror Section 2: no shared memory, no global clock,
// reliable channels (no loss, duplication or corruption), no FIFO
// assumption (delivery order is a scheduler choice).
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "poset/computation.h"
#include "sim/channel.h"
#include "sim/recorder.h"
#include "sim/scheduler.h"

namespace hbct::sim {

class Simulator;

/// Capabilities handed to process callbacks. Every mutation is recorded as
/// part of the happened-before model (see Recorder for the event rules).
class Context {
 public:
  ProcId self() const { return self_; }
  std::int32_t num_procs() const;

  /// Sends a message; records a send event.
  void send(ProcId to, const Message& m);
  /// Writes a local variable; attaches to the current event.
  void set(std::string_view var, std::int64_t value);
  /// Records a bare internal event.
  void internal();
  /// Labels the current event (for trace readability and tests).
  void label(std::string_view text);

  /// Deterministic per-simulation randomness.
  Rng& rng();

 private:
  friend class Simulator;
  Context(Simulator* sim, ProcId self) : sim_(sim), self_(self) {}
  Simulator* sim_;
  ProcId self_;
};

/// A simulated process: a deterministic state machine driven by message
/// deliveries and spontaneous steps.
class Process {
 public:
  virtual ~Process() = default;

  /// Called once before any scheduling; may emit initial events.
  virtual void start(Context&) {}

  /// A message from `from` has been delivered; the invocation is the
  /// receive event.
  virtual void receive(Context&, ProcId from, const Message& m) = 0;

  /// Spontaneous step opportunity; only called while wants_step() is true.
  virtual void step(Context&) {}

  /// True when the process wants spontaneous steps scheduled.
  virtual bool wants_step() const { return false; }
};

struct SimOptions {
  SchedulerKind scheduler = SchedulerKind::kRandom;
  std::uint64_t seed = 1;
  /// FIFO per-channel delivery; false delivers in random order.
  bool fifo = true;
  /// Hard cap on scheduled actions (guards against livelocked protocols).
  std::int64_t max_actions = 1 << 20;
};

class Simulator {
 public:
  explicit Simulator(std::int32_t num_procs);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  Simulator(Simulator&&) noexcept = default;
  Simulator& operator=(Simulator&&) noexcept = default;

  std::int32_t num_procs() const { return num_procs_; }

  /// Installs the behavior of process i (required for every process).
  void set_process(ProcId i, std::unique_ptr<Process> p);

  /// Declares a variable's initial value on process i.
  void set_initial(ProcId i, std::string_view var, std::int64_t value);

  /// Runs the protocol to quiescence (no deliverable message, no process
  /// wanting a step) and returns the recorded computation. Consumes the
  /// simulator.
  Computation run(const SimOptions& opt) &&;

  /// Actions executed by the last run (for throughput benches).
  std::int64_t actions_executed() const { return actions_; }

 private:
  friend class Context;

  std::int32_t num_procs_;
  std::vector<std::unique_ptr<Process>> procs_;
  std::unique_ptr<Recorder> recorder_;
  std::vector<std::vector<Channel>> chan_;  // chan_[from][to]
  std::unique_ptr<Scheduler> sched_;
  bool fifo_ = true;
  std::int64_t actions_ = 0;
};

}  // namespace hbct::sim
