#include "sim/channel.h"

#include "util/assert.h"

namespace hbct::sim {

InFlight Channel::take(std::size_t index) {
  HBCT_ASSERT(index < q_.size());
  InFlight m = std::move(q_[index]);
  q_.erase(q_.begin() + static_cast<std::ptrdiff_t>(index));
  return m;
}

}  // namespace hbct::sim
