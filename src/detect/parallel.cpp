#include "detect/parallel.h"

#include <algorithm>
#include <atomic>
#include <optional>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/assert.h"
#include "util/thread_pool.h"

namespace hbct {

namespace {

/// Deterministic fan-out accounting: identical at every parallelism width,
/// mirroring the stats guarantee (only branches the sequential early-exit
/// loop would have evaluated are counted).
void record_fanout(Tracer* trace, std::size_t merged) {
  MetricsRegistry& m = trace->metrics();
  m.counter("parallel.fanouts").add(1);
  m.counter("parallel.branches.merged").add(merged);
}

}  // namespace

std::size_t resolve_parallelism(std::size_t parallelism) {
  return parallelism != 0 ? parallelism : ThreadPool::shared().size();
}

FirstMatch detect_first_match(
    std::size_t parallelism, std::size_t count,
    const std::function<DetectResult(std::size_t)>& eval,
    const std::function<bool(const DetectResult&)>& hit, DetectStats& stats,
    Tracer* trace, const char* span_name) {
  FirstMatch out;
  if (count == 0) return out;
  std::size_t par = parallelism == 1 ? 1 : resolve_parallelism(parallelism);
  par = std::min(par, count);
  ScopedSpan fan(trace, span_name != nullptr ? span_name : "fanout");
  fan.arg("count", static_cast<std::int64_t>(count));
  fan.arg("parallelism", static_cast<std::int64_t>(par));
  if (par <= 1) {
    for (std::size_t i = 0; i < count; ++i) {
      DetectResult r;
      {
        ScopedSpan br(trace, "fanout.branch");
        br.arg("index", static_cast<std::int64_t>(i));
        r = eval(i);
      }
      stats += r.stats;
      if (out.bound == BoundReason::kNone) out.bound = r.bound;
      if (hit(r)) {
        out.index = i;
        out.result = std::move(r);
        break;
      }
    }
    if (trace != nullptr) {
      fan.arg("winner", out.found() ? static_cast<std::int64_t>(out.index)
                                    : std::int64_t{-1});
      record_fanout(trace, out.found() ? out.index + 1 : count);
    }
    return out;
  }

  // Children run on pool workers where the calling thread's open-span stack
  // is invisible; parent them on the fan-out span explicitly.
  const std::size_t span_parent = fan.id();
  if (trace != nullptr) {
    trace->metrics()
        .gauge("parallel.queue_depth.max")
        .max_of(static_cast<std::int64_t>(ThreadPool::shared().queue_depth()));
  }
  std::vector<std::optional<DetectResult>> results(count);
  std::atomic<std::size_t> winner{FirstMatch::npos};
  CancelToken cancel;
  ThreadPool::shared().parallel_for(
      count,
      [&](std::size_t i) {
        // A hit at an index no greater than i supersedes this branch.
        if (i >= winner.load(std::memory_order_acquire)) return;
        DetectResult r;
        {
          ScopedSpan br(trace, "fanout.branch", span_parent);
          br.arg("index", static_cast<std::int64_t>(i));
          r = eval(i);
        }
        if (hit(r)) {
          std::size_t cur = winner.load(std::memory_order_acquire);
          while (i < cur && !winner.compare_exchange_weak(
                                cur, i, std::memory_order_acq_rel))
            ;
          // Branch 0 winning cannot be superseded: stop claiming work.
          if (i == 0) cancel.cancel();
        }
        results[i] = std::move(r);
      },
      par, /*chunk=*/1, &cancel);

  // Merge what the sequential early-exit loop would have accounted:
  // branches 0..winner, everything when nothing hit. No branch below the
  // winner can have been skipped — skipping requires a hit at an index no
  // greater than the skipped one, which would itself be a lower winner.
  const std::size_t win = winner.load(std::memory_order_acquire);
  const std::size_t merged_end = win == FirstMatch::npos ? count : win + 1;
  for (std::size_t i = 0; i < merged_end; ++i) {
    HBCT_ASSERT_MSG(results[i].has_value(),
                    "branch at or below the winner was skipped");
    stats += results[i]->stats;
    if (out.bound == BoundReason::kNone) out.bound = results[i]->bound;
  }
  if (trace != nullptr) {
    fan.arg("winner", win == FirstMatch::npos ? std::int64_t{-1}
                                              : static_cast<std::int64_t>(win));
    record_fanout(trace, merged_end);
    // Speculative branches evaluated past the winner and then discarded.
    // Scheduling-dependent — deliberately under a name the determinism
    // guarantee (and its test) excludes.
    std::uint64_t superseded = 0;
    for (std::size_t i = merged_end; i < count; ++i)
      if (results[i].has_value()) ++superseded;
    if (superseded != 0)
      trace->metrics().counter("parallel.branches.superseded").add(superseded);
  }
  if (win != FirstMatch::npos) {
    out.index = win;
    out.result = std::move(*results[win]);
  }
  return out;
}

}  // namespace hbct
