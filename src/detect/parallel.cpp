#include "detect/parallel.h"

#include <algorithm>
#include <atomic>
#include <optional>
#include <vector>

#include "util/assert.h"
#include "util/thread_pool.h"

namespace hbct {

std::size_t resolve_parallelism(std::size_t parallelism) {
  return parallelism != 0 ? parallelism : ThreadPool::shared().size();
}

FirstMatch detect_first_match(
    std::size_t parallelism, std::size_t count,
    const std::function<DetectResult(std::size_t)>& eval,
    const std::function<bool(const DetectResult&)>& hit, DetectStats& stats) {
  FirstMatch out;
  if (count == 0) return out;
  std::size_t par = parallelism == 1 ? 1 : resolve_parallelism(parallelism);
  par = std::min(par, count);
  if (par <= 1) {
    for (std::size_t i = 0; i < count; ++i) {
      DetectResult r = eval(i);
      stats += r.stats;
      if (out.bound == BoundReason::kNone) out.bound = r.bound;
      if (hit(r)) {
        out.index = i;
        out.result = std::move(r);
        break;
      }
    }
    return out;
  }

  std::vector<std::optional<DetectResult>> results(count);
  std::atomic<std::size_t> winner{FirstMatch::npos};
  CancelToken cancel;
  ThreadPool::shared().parallel_for(
      count,
      [&](std::size_t i) {
        // A hit at an index no greater than i supersedes this branch.
        if (i >= winner.load(std::memory_order_acquire)) return;
        DetectResult r = eval(i);
        if (hit(r)) {
          std::size_t cur = winner.load(std::memory_order_acquire);
          while (i < cur && !winner.compare_exchange_weak(
                                cur, i, std::memory_order_acq_rel))
            ;
          // Branch 0 winning cannot be superseded: stop claiming work.
          if (i == 0) cancel.cancel();
        }
        results[i] = std::move(r);
      },
      par, /*chunk=*/1, &cancel);

  // Merge what the sequential early-exit loop would have accounted:
  // branches 0..winner, everything when nothing hit. No branch below the
  // winner can have been skipped — skipping requires a hit at an index no
  // greater than the skipped one, which would itself be a lower winner.
  const std::size_t win = winner.load(std::memory_order_acquire);
  const std::size_t merged_end = win == FirstMatch::npos ? count : win + 1;
  for (std::size_t i = 0; i < merged_end; ++i) {
    HBCT_ASSERT_MSG(results[i].has_value(),
                    "branch at or below the winner was skipped");
    stats += results[i]->stats;
    if (out.bound == BoundReason::kNone) out.bound = results[i]->bound;
  }
  if (win != FirstMatch::npos) {
    out.index = win;
    out.result = std::move(*results[win]);
  }
  return out;
}

}  // namespace hbct
