#include "detect/until_inc.h"

#include <algorithm>
#include <atomic>
#include <optional>

#include "detect/parallel.h"
#include "obs/trace.h"
#include "predicate/local.h"
#include "util/assert.h"

namespace hbct {

namespace {

std::size_t sz(std::int32_t v) { return static_cast<std::size_t>(v); }

std::atomic<bool> g_until_inc_enabled{true};

/// Position evaluator for one conjunct: the specialized LocalEval fast
/// path while the timeline is fully resident, the function path once GC
/// has trimmed it (value_timeline views require trimmed == 0; value_at
/// handles the storage offset). Identical booleans either way.
class PosEval {
 public:
  PosEval(const Computation& c, const LocalPredicate& p) : c_(&c), p_(&p) {
    if (c.trimmed(p.proc()) == 0) fast_.emplace(c, p);
  }
  bool operator()(EventIndex pos) const {
    return fast_.has_value() ? (*fast_)(pos) : p_->eval_local(*c_, pos);
  }

 private:
  const Computation* c_;
  const LocalPredicate* p_;
  std::optional<LocalEval> fast_;
};

}  // namespace

void set_until_inc_enabled(bool on) {
  g_until_inc_enabled.store(on, std::memory_order_relaxed);
}

bool until_inc_enabled() {
  return g_until_inc_enabled.load(std::memory_order_relaxed);
}

void EgPrefixState::bind(const Computation& c, const ConjunctivePredicate& p,
                         bool instrumented) {
  c_ = &c;
  pred_ = &p;
  instrumented_ = instrumented;
  const auto& locals = p.locals();
  procs_.clear();
  first_false_.clear();
  scanned_.clear();
  procs_.reserve(locals.size());
  first_false_.reserve(locals.size());
  scanned_.reserve(locals.size());
  for (const auto& local : locals) {
    HBCT_ASSERT_MSG(local->proc() < c.num_procs(),
                    "conjunct references a process outside the computation");
    procs_.push_back(local->proc());
    first_false_.push_back(-1);
    scanned_.push_back(0);
  }
}

void EgPrefixState::advance_to(const Cut& limits, DetectStats& st,
                               BudgetTracker* t) {
  HBCT_DASSERT(bound());
  for (std::size_t l = 0; l < procs_.size(); ++l) {
    if (first_false_[l] >= 0) continue;  // decided: never read again
    const EventIndex limit = limits[sz(procs_[l])];
    if (scanned_[l] > limit) continue;
    const PosEval ev(*c_, *pred_->locals()[l]);
    for (EventIndex pos = scanned_[l]; pos <= limit; ++pos) {
      if (t != nullptr && !t->ok()) return;  // suspended; resumes here
      ++st.predicate_evals;
      if (instrumented_) ++st.until_inc_evals;
      scanned_[l] = pos + 1;
      if (!ev(pos)) {
        first_false_[l] = pos;
        break;
      }
    }
  }
}

EgPrefixState::Sim EgPrefixState::sim_scan(std::size_t l, EventIndex last,
                                           DetectStats& st, BudgetTracker& t,
                                           EventIndex* false_pos) {
  const EventIndex ff = first_false_[l];
  if (ff >= 0 && ff <= last) {
    // Batch scans 0..ff: ff true evaluations, then the false one.
    const auto need = static_cast<std::uint64_t>(ff) + 1;
    if (t.charge_evals(st, need) < need) return Sim::kTripped;
    *false_pos = ff;
    return Sim::kFalse;
  }
  // Every scanned position <= last is true: ff < 0, or ff > last (which
  // implies scanned > last). Charge the known-true span arithmetically.
  const EventIndex known =
      std::min<EventIndex>(scanned_[l], last + 1);
  const auto span = static_cast<std::uint64_t>(known);
  if (t.charge_evals(st, span) < span) return Sim::kTripped;
  if (scanned_[l] > last) return Sim::kAllTrue;
  // Lazy extension over the unscanned tail — the batch loop verbatim,
  // additionally recording what it learns into the table.
  const PosEval ev(*c_, *pred_->locals()[l]);
  for (EventIndex pos = scanned_[l]; pos <= last; ++pos) {
    if (!t.ok()) return Sim::kTripped;
    ++st.predicate_evals;
    if (instrumented_) ++st.until_dec_evals;
    scanned_[l] = pos + 1;
    if (!ev(pos)) {
      first_false_[l] = pos;
      *false_pos = pos;
      return Sim::kFalse;
    }
  }
  return Sim::kAllTrue;
}

DetectResult EgPrefixState::eg_within(const Cut& k, const Budget& budget,
                                      bool want_path) {
  const Computation& c = *c_;
  DetectResult r;
  r.algorithm = "eg-conjunctive-scan";
  ScopedSpan span(budget.trace, "eg.conjunctive-scan");
  BudgetTracker t(budget, r.stats);
  if (!t.ok()) return mark_bounded(r, t);
  for (std::size_t l = 0; l < procs_.size(); ++l) {
    EventIndex false_pos = -1;
    switch (sim_scan(l, k[sz(procs_[l])], r.stats, t, &false_pos)) {
      case Sim::kTripped: return mark_bounded(r, t);
      case Sim::kFalse: return r;  // violation: EG(p) fails here
      case Sim::kAllTrue: break;
    }
  }
  if (t.exceeded()) return mark_bounded(r, t);
  r.verdict = Verdict::kHolds;
  if (want_path) {
    Cut g = c.initial_cut();
    r.witness_path.push_back(g);
    for (const EventId& e : c.linearization()) {
      if (e.index > k[sz(e.proc)]) continue;
      ++g[sz(e.proc)];
      r.witness_path.push_back(g);
    }
  }
  return r;
}

DetectResult EgPrefixState::decide_at(const Cut& iq, const Budget& budget,
                                      bool want_path) {
  HBCT_DASSERT(bound());
  const Computation& c = *c_;
  DetectResult r;
  r.algorithm = "A3-eu (given I_q)";
  HBCT_ASSERT_MSG(c.is_consistent(iq), "I_q must be a consistent cut");
  ScopedSpan span(budget.trace, "eu.frontier-sweep");
  BudgetTracker t(budget, r.stats);
  if (!t.ok()) return mark_bounded(r, t);

  const Cut initial = c.initial_cut();
  if (iq == initial) {
    r.verdict = Verdict::kHolds;
    r.witness_cut = initial;
    r.witness_path = {initial};
    return r;
  }

  // The batch frontier sweep, replayed sequentially off the shared table.
  // Width independence is free: the parallel fan-out is defined to merge
  // exactly what this sequential early-exit loop accounts, so replaying at
  // width 1 reproduces every width's verdict, bound and stats. Branches
  // share the table — the first branch's physical scan turns the rest
  // into arithmetic.
  const std::vector<ProcId> frontier = c.frontier_procs(iq);
  FirstMatch m = detect_first_match(
      1, frontier.size(),
      [&](std::size_t k) {
        const Cut sub = c.retreat(iq, frontier[k]);
        DetectResult eg = eg_within(sub, budget, want_path);
        ++eg.stats.cut_steps;  // the retreat that formed this sub-computation
        return eg;
      },
      [](const DetectResult& eg) { return eg.verdict == Verdict::kHolds; },
      r.stats, budget.trace, "eu.frontier-fanout");
  span.arg("frontier", static_cast<std::int64_t>(frontier.size()));
  if (m.found()) {
    r.verdict = Verdict::kHolds;
    r.witness_path = std::move(m.result.witness_path);
    if (want_path) r.witness_path.push_back(iq);
    r.witness_cut = iq;
  } else if (m.bound != BoundReason::kNone) {
    r.verdict = Verdict::kUnknown;
    r.bound = m.bound;
  }
  return r;
}

EventIndex EgPrefixState::scan_floor(ProcId i, EventIndex fallback) const {
  EventIndex f = fallback;
  for (std::size_t l = 0; l < procs_.size(); ++l)
    if (procs_[l] == i && first_false_[l] < 0)
      f = std::min(f, scanned_[l]);
  return f;
}

std::size_t EgPrefixState::state_bytes() const {
  return sizeof(*this) + procs_.capacity() * sizeof(ProcId) +
         (first_false_.capacity() + scanned_.capacity()) * sizeof(EventIndex);
}

}  // namespace hbct
