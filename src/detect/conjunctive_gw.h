// Detection of conjunctive predicates (Garg–Waldecker and consequences).
//
//  EF — the weak-conjunctive algorithm: per-process candidate positions
//       advanced by vector-clock consistency violations until the least
//       satisfying cut is found. Independent of (and cross-checked against)
//       the Chase–Garg linear route.
//  EG/AG — for conjunctive p both collapse to "every conjunct holds at every
//       local position": any maximal cut sequence drives every process
//       through every local position, so one false position kills EG; and
//       every local position occurs in some consistent cut (J(e)), so one
//       false position kills AG too. O(|E|) local evaluations. This scan is
//       the O(|E|) step the paper's A3 cites from the slicing literature.
//  AF — Garg–Waldecker strong conjunctive detection: AF(p) holds iff an
//       *unavoidable box* of true-intervals exists (one interval per
//       process, with every pair forced to overlap in every execution).
//       The disjunctive EG detector is its dual (EG(q) = ¬AF(¬q)).
#pragma once

#include "detect/detector.h"
#include "predicate/conjunctive.h"

namespace hbct {

/// EF(p): least cut where every conjunct holds; Garg–Waldecker weak
/// conjunctive detection. witness_cut = the least satisfying cut.
DetectResult detect_ef_conjunctive(const Computation& c,
                                   const ConjunctivePredicate& p,
                                   const Budget& budget = {});

/// EG(p) for conjunctive p: all-local-positions scan; witness_path is the
/// canonical linearization when it holds.
DetectResult detect_eg_conjunctive(const Computation& c,
                                   const ConjunctivePredicate& p,
                                   const Budget& budget = {});

/// AG(p) for conjunctive p: same scan; witness_cut = J(e) of a violating
/// local position when it fails.
DetectResult detect_ag_conjunctive(const Computation& c,
                                   const ConjunctivePredicate& p,
                                   const Budget& budget = {});

/// AF(p) — definitely: p — via the unavoidable-box search (GW96).
DetectResult detect_af_conjunctive(const Computation& c,
                                   const ConjunctivePredicate& p,
                                   const Budget& budget = {});

/// EG(p) restricted to the prefix sublattice below cut k (inclusive):
/// verdict, witness path and stats are identical to running
/// detect_eg_conjunctive on c.prefix(k), but no prefix computation is
/// materialized. The A3 frontier fan-out calls this once per frontier cut.
DetectResult detect_eg_conjunctive_within(const Computation& c,
                                          const ConjunctivePredicate& p,
                                          const Cut& k,
                                          const Budget& budget = {});

}  // namespace hbct
