#include "detect/ag_linear.h"

namespace hbct {

DetectResult detect_ag_linear(const Computation& c, const Predicate& p) {
  DetectResult r;
  r.algorithm = "A2-ag-linear";
  CountingEval eval(p, c, r.stats);

  // Step 1: V = M(L) ∪ {E}.
  const Cut final = c.final_cut();
  if (!eval(final)) {
    r.witness_cut = final;
    return r;
  }
  for (ProcId i = 0; i < c.num_procs(); ++i) {
    for (EventIndex k = 1; k <= c.num_events(i); ++k) {
      Cut m = c.meet_irreducible_of(i, k);
      ++r.stats.cut_steps;
      if (!eval(m)) {  // Step 2
        r.witness_cut = std::move(m);
        return r;
      }
    }
  }
  r.holds = true;
  return r;
}

DetectResult detect_ag_post_linear(const Computation& c, const Predicate& p) {
  DetectResult r;
  r.algorithm = "A2-ag-post-linear";
  CountingEval eval(p, c, r.stats);

  const Cut initial = c.initial_cut();
  if (!eval(initial)) {
    r.witness_cut = initial;
    return r;
  }
  for (ProcId i = 0; i < c.num_procs(); ++i) {
    for (EventIndex k = 1; k <= c.num_events(i); ++k) {
      Cut j = c.join_irreducible_of(i, k);
      ++r.stats.cut_steps;
      if (!eval(j)) {
        r.witness_cut = std::move(j);
        return r;
      }
    }
  }
  r.holds = true;
  return r;
}

}  // namespace hbct
