#include "detect/ag_linear.h"

#include "obs/trace.h"

namespace hbct {

DetectResult detect_ag_linear(const Computation& c, const Predicate& p,
                              const Budget& budget) {
  DetectResult r;
  r.algorithm = "A2-ag-linear";
  ScopedSpan span(budget.trace, "ag.a2-scan");
  BudgetTracker t(budget, r.stats);
  CountingEval eval(p, c, r.stats, &t);

  // Step 1: V = M(L) ∪ {E}.
  if (!t.ok()) return mark_bounded(r, t);
  const Cut final = c.final_cut();
  if (!eval(final)) {
    if (t.exceeded()) return mark_bounded(r, t);
    r.witness_cut = final;
    return r;
  }
  for (ProcId i = 0; i < c.num_procs(); ++i) {
    for (EventIndex k = 1; k <= c.num_events(i); ++k) {
      Cut m = c.meet_irreducible_of(i, k);
      ++r.stats.cut_steps;
      if (!eval(m)) {  // Step 2
        if (t.exceeded()) return mark_bounded(r, t);
        r.witness_cut = std::move(m);
        return r;
      }
    }
  }
  r.verdict = Verdict::kHolds;
  return r;
}

DetectResult detect_ag_post_linear(const Computation& c,
                                   const Predicate& p,
                                   const Budget& budget) {
  DetectResult r;
  r.algorithm = "A2-ag-post-linear";
  ScopedSpan span(budget.trace, "ag.a2-scan-dual");
  BudgetTracker t(budget, r.stats);
  CountingEval eval(p, c, r.stats, &t);

  if (!t.ok()) return mark_bounded(r, t);
  const Cut initial = c.initial_cut();
  if (!eval(initial)) {
    if (t.exceeded()) return mark_bounded(r, t);
    r.witness_cut = initial;
    return r;
  }
  for (ProcId i = 0; i < c.num_procs(); ++i) {
    for (EventIndex k = 1; k <= c.num_events(i); ++k) {
      Cut j = c.join_irreducible_of(i, k);
      ++r.stats.cut_steps;
      if (!eval(j)) {
        if (t.exceeded()) return mark_bounded(r, t);
        r.witness_cut = std::move(j);
        return r;
      }
    }
  }
  r.verdict = Verdict::kHolds;
  return r;
}

}  // namespace hbct
