#include "detect/ag_linear.h"

#include "obs/trace.h"

namespace hbct {

DetectResult detect_ag_linear(const Computation& c, const Predicate& p,
                              const Budget& budget) {
  DetectResult r;
  r.algorithm = "A2-ag-linear";
  ScopedSpan span(budget.trace, "ag.a2-scan");
  BudgetTracker t(budget, r.stats);
  CountingEval eval(p, c, r.stats, &t);

  // Step 1: V = M(L) ∪ {E}.
  if (!t.ok()) return mark_bounded(r, t);
  Cut w = c.final_cut();
  eval.bind(w);
  span.arg("cursor", eval.incremental() ? 1 : 0);
  if (!eval.at()) {
    if (t.exceeded()) return mark_bounded(r, t);
    r.witness_cut = w;
    return r;
  }
  // One cursor-bound cut seeks from irreducible to irreducible; the cut is
  // transiently inconsistent between move_to calls, which the cursor
  // protocol permits as long as value() is only read at the end of a seek.
  Cut m = w;
  const std::size_t n = static_cast<std::size_t>(c.num_procs());
  for (ProcId i = 0; i < c.num_procs(); ++i) {
    for (EventIndex k = 1; k <= c.num_events(i); ++k) {
      c.meet_irreducible_of(i, k, &m);
      ++r.stats.cut_steps;
      for (std::size_t j = 0; j < n; ++j) eval.move_to(w, j, m[j]);
      if (!eval.at()) {  // Step 2
        if (t.exceeded()) return mark_bounded(r, t);
        r.witness_cut = w;
        return r;
      }
    }
  }
  r.verdict = Verdict::kHolds;
  return r;
}

DetectResult detect_ag_post_linear(const Computation& c,
                                   const Predicate& p,
                                   const Budget& budget) {
  DetectResult r;
  r.algorithm = "A2-ag-post-linear";
  ScopedSpan span(budget.trace, "ag.a2-scan-dual");
  BudgetTracker t(budget, r.stats);
  CountingEval eval(p, c, r.stats, &t);

  if (!t.ok()) return mark_bounded(r, t);
  Cut w = c.initial_cut();
  eval.bind(w);
  span.arg("cursor", eval.incremental() ? 1 : 0);
  if (!eval.at()) {
    if (t.exceeded()) return mark_bounded(r, t);
    r.witness_cut = w;
    return r;
  }
  Cut j = w;
  const std::size_t n = static_cast<std::size_t>(c.num_procs());
  for (ProcId i = 0; i < c.num_procs(); ++i) {
    for (EventIndex k = 1; k <= c.num_events(i); ++k) {
      c.join_irreducible_of(i, k, &j);
      ++r.stats.cut_steps;
      for (std::size_t q = 0; q < n; ++q) eval.move_to(w, q, j[q]);
      if (!eval.at()) {
        if (t.exceeded()) return mark_bounded(r, t);
        r.witness_cut = w;
        return r;
      }
    }
  }
  r.verdict = Verdict::kHolds;
  return r;
}

}  // namespace hbct
