// Common result types for the detection algorithms.
//
// Every detector returns a DetectResult: the verdict, which algorithm ran,
// operation counts (see util/stats.h) and — where the algorithm naturally
// produces one — a witness: a satisfying cut for EF, a path of cuts for
// EG/EU, a violating cut for failed AG.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "poset/computation.h"
#include "poset/cut.h"
#include "predicate/predicate.h"
#include "util/stats.h"

namespace hbct {

/// The CTL operators of the paper's fragment.
enum class Op { kEF, kAF, kEG, kAG, kEU, kAU };

const char* to_string(Op op);

struct DetectResult {
  bool holds = false;
  /// Name of the algorithm that produced the verdict ("A1", "chase-garg",
  /// "brute-eg", ...).
  std::string algorithm;
  DetectStats stats;
  /// EF/A3: the (least) satisfying cut. AG: a violating cut when !holds.
  std::optional<Cut> witness_cut;
  /// EG/EU: a sequence of cuts from the initial cut witnessing the verdict
  /// (empty when not applicable or !holds).
  std::vector<Cut> witness_path;
};

/// Predicate evaluation with op counting; all detectors evaluate through
/// this helper so stats are comparable across algorithms.
class CountingEval {
 public:
  CountingEval(const Predicate& p, const Computation& c, DetectStats& st)
      : p_(p), c_(c), st_(st) {}

  bool operator()(const Cut& g) const {
    ++st_.predicate_evals;
    return p_.eval(c_, g);
  }

 private:
  const Predicate& p_;
  const Computation& c_;
  DetectStats& st_;
};

}  // namespace hbct
