// Common result types for the detection algorithms.
//
// Every detector returns a DetectResult: a three-valued verdict (budgeted
// detections may come back kUnknown, see detect/budget.h), which algorithm
// ran, operation counts (see util/stats.h) and — where the algorithm
// naturally produces one — a witness: a satisfying cut for EF, a path of
// cuts for EG/EU, a violating cut for failed AG.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "detect/budget.h"
#include "poset/computation.h"
#include "poset/cut.h"
#include "predicate/predicate.h"
#include "util/stats.h"

namespace hbct {

/// The CTL operators of the paper's fragment.
enum class Op { kEF, kAF, kEG, kAG, kEU, kAU };

const char* to_string(Op op);

class Tracer;

/// Shared ownership of the span tracer of a traced detection. Dispatch
/// creates one per detect() call when DispatchOptions::trace is set and
/// hands it out on the result, so callers can export the span tree
/// (Tracer::chrome_trace_json) or the full run report (obs/report.h) after
/// the detection returns.
using TraceHandle = std::shared_ptr<Tracer>;

struct DetectResult {
  /// The three-valued verdict. kUnknown only ever appears together with a
  /// BoundReason in `bound`, and never contradicts the unbudgeted verdict.
  Verdict verdict = Verdict::kFails;
  /// The bound that stopped the detection when verdict == kUnknown; kNone
  /// for definite verdicts.
  BoundReason bound = BoundReason::kNone;
  /// Name of the algorithm that produced the verdict ("A1", "chase-garg",
  /// "brute-eg", ...).
  std::string algorithm;
  DetectStats stats;
  /// EF/A3: the (least) satisfying cut. AG: a violating cut when kFails.
  /// Under a budget, any best-effort witness found before the bound hit.
  std::optional<Cut> witness_cut;
  /// EG/EU: a sequence of cuts from the initial cut witnessing the verdict
  /// (empty when not applicable or not kHolds).
  std::vector<Cut> witness_path;
  /// Predicted dispatch plan, e.g. "chase-garg-ef (O(n^2|E|))". Populated
  /// only when DispatchOptions::audit != AuditMode::kOff (the default path
  /// pays nothing for it). The plan name is always a prefix of `algorithm`.
  std::string plan;
  /// Lint findings for the dispatched query plus, under AuditMode::kFull,
  /// any audit violations (severity kError, code E1xx). Empty when audit is
  /// off.
  std::vector<Diagnostic> diagnostics;
  /// The span tracer of this run; null unless DispatchOptions::trace was
  /// set. Shared so the result stays copyable.
  TraceHandle trace;
  /// The equivalence-preserving rewrite chain the query optimizer applied
  /// (OptimizeMode::kApply) or proposes (kAnalyzeOnly), in application
  /// order. Empty when optimization is off or nothing rewrites. Populated
  /// by ctl::evaluate_query; predicate-level detect() never rewrites.
  std::vector<RewriteStep> rewrites;

  bool definite() const { return verdict != Verdict::kUnknown; }
  /// Deprecated two-valued accessor; defined only for definite verdicts
  /// (asserts on kUnknown). Prefer inspecting `verdict` directly.
  bool holds() const;
};

/// Sets verdict = kUnknown with the given reason (must not be kNone).
DetectResult& mark_bounded(DetectResult& r, BoundReason why);
DetectResult& mark_bounded(DetectResult& r, const BudgetTracker& t);

/// Process-wide testing switch for incremental (cursor) evaluation. On by
/// default; the differential tests flip it off to force every walk back
/// onto scratch evaluation and compare verdicts, witnesses and stats
/// against the incremental runs bit for bit.
void set_cursor_eval_enabled(bool on);
bool cursor_eval_enabled();

/// Predicate evaluation with op counting; all detectors evaluate through
/// this helper so stats are comparable across algorithms. An optional
/// BudgetTracker turns every evaluation into a budget checkpoint: once the
/// tracker has tripped, evaluation is refused (returns false without
/// calling the predicate). Detectors must therefore consult the tracker
/// before concluding anything definite from a false evaluation.
///
/// Two evaluation modes:
///  - operator()(g): one-shot scratch evaluation of an arbitrary cut.
///  - bind(g) + at(): incremental mode for the lattice walks. bind attaches
///    an EvalCursor to a walker-owned cut; the walker mutates that cut only
///    through advance()/retreat()/move_to() (or notifies with moved()), and
///    at() reads the cursor's O(1) value. Budget gating and the
///    predicate_evals count are identical in both modes, so a walk rewritten
///    onto the cursor protocol produces bit-identical stats; the
///    eval_incremental / eval_fallback counters record which mode served
///    each evaluation.
class CountingEval {
 public:
  CountingEval(const Predicate& p, const Computation& c, DetectStats& st,
               BudgetTracker* budget = nullptr)
      : p_(p),
        c_(c),
        st_(st),
        budget_(budget != nullptr && budget->polls_evals() ? budget
                                                           : nullptr) {}

  bool operator()(const Cut& g) const {
    if (budget_ != nullptr && !budget_->ok()) return false;
    ++st_.predicate_evals;
    ++st_.eval_fallback;
    return p_.eval(c_, g);
  }

  /// Attaches an incremental cursor to `g`, which must outlive the binding
  /// at a stable address. When cursor evaluation is globally disabled the
  /// binding still works but at() evaluates from scratch.
  void bind(const Cut& g) {
    bound_ = &g;
    cursor_ = cursor_eval_enabled() ? p_.make_cursor(c_, g) : nullptr;
  }
  bool bound() const { return bound_ != nullptr; }

  /// Evaluates the bound cut; counting and budget gating as operator().
  bool at() const {
    if (budget_ != nullptr && !budget_->ok()) return false;
    ++st_.predicate_evals;
    if (cursor_ != nullptr && cursor_->incremental()) {
      ++st_.eval_incremental;
    } else {
      ++st_.eval_fallback;
    }
    return cursor_ != nullptr ? cursor_->value() : p_.eval(c_, *bound_);
  }

  /// Notifies the cursor that component i moved away from old_pos (the cut
  /// has already been mutated). No-op when unbound or scratch-bound.
  void moved(ProcId i, EventIndex old_pos) const {
    if (cursor_ != nullptr) cursor_->on_update(i, old_pos);
  }

  /// In-place mutations of the bound cut that keep the cursor in sync.
  /// Callers count cut_steps themselves (placement differs per algorithm).
  void advance(Cut& g, std::size_t i) const {
    const EventIndex old = g[i]++;
    moved(static_cast<ProcId>(i), old);
  }
  void retreat(Cut& g, std::size_t i) const {
    const EventIndex old = g[i]--;
    moved(static_cast<ProcId>(i), old);
  }
  void move_to(Cut& g, std::size_t i, EventIndex pos) const {
    const EventIndex old = g[i];
    if (old == pos) return;
    g[i] = pos;
    moved(static_cast<ProcId>(i), old);
  }

  /// True when at() is served by an incremental cursor (for span tagging).
  bool incremental() const {
    return cursor_ != nullptr && cursor_->incremental();
  }

 private:
  const Predicate& p_;
  const Computation& c_;
  DetectStats& st_;
  BudgetTracker* budget_;
  const Cut* bound_ = nullptr;
  EvalCursorPtr cursor_;
};

}  // namespace hbct
