// Common result types for the detection algorithms.
//
// Every detector returns a DetectResult: a three-valued verdict (budgeted
// detections may come back kUnknown, see detect/budget.h), which algorithm
// ran, operation counts (see util/stats.h) and — where the algorithm
// naturally produces one — a witness: a satisfying cut for EF, a path of
// cuts for EG/EU, a violating cut for failed AG.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "detect/budget.h"
#include "poset/computation.h"
#include "poset/cut.h"
#include "predicate/predicate.h"
#include "util/stats.h"

namespace hbct {

/// The CTL operators of the paper's fragment.
enum class Op { kEF, kAF, kEG, kAG, kEU, kAU };

const char* to_string(Op op);

class Tracer;

/// Shared ownership of the span tracer of a traced detection. Dispatch
/// creates one per detect() call when DispatchOptions::trace is set and
/// hands it out on the result, so callers can export the span tree
/// (Tracer::chrome_trace_json) or the full run report (obs/report.h) after
/// the detection returns.
using TraceHandle = std::shared_ptr<Tracer>;

struct DetectResult {
  /// The three-valued verdict. kUnknown only ever appears together with a
  /// BoundReason in `bound`, and never contradicts the unbudgeted verdict.
  Verdict verdict = Verdict::kFails;
  /// The bound that stopped the detection when verdict == kUnknown; kNone
  /// for definite verdicts.
  BoundReason bound = BoundReason::kNone;
  /// Name of the algorithm that produced the verdict ("A1", "chase-garg",
  /// "brute-eg", ...).
  std::string algorithm;
  DetectStats stats;
  /// EF/A3: the (least) satisfying cut. AG: a violating cut when kFails.
  /// Under a budget, any best-effort witness found before the bound hit.
  std::optional<Cut> witness_cut;
  /// EG/EU: a sequence of cuts from the initial cut witnessing the verdict
  /// (empty when not applicable or not kHolds).
  std::vector<Cut> witness_path;
  /// Predicted dispatch plan, e.g. "chase-garg-ef (O(n^2|E|))". Populated
  /// only when DispatchOptions::audit != AuditMode::kOff (the default path
  /// pays nothing for it). The plan name is always a prefix of `algorithm`.
  std::string plan;
  /// Lint findings for the dispatched query plus, under AuditMode::kFull,
  /// any audit violations (severity kError, code E1xx). Empty when audit is
  /// off.
  std::vector<Diagnostic> diagnostics;
  /// The span tracer of this run; null unless DispatchOptions::trace was
  /// set. Shared so the result stays copyable.
  TraceHandle trace;

  bool definite() const { return verdict != Verdict::kUnknown; }
  /// Deprecated two-valued accessor; defined only for definite verdicts
  /// (asserts on kUnknown). Prefer inspecting `verdict` directly.
  bool holds() const;
};

/// Sets verdict = kUnknown with the given reason (must not be kNone).
DetectResult& mark_bounded(DetectResult& r, BoundReason why);
DetectResult& mark_bounded(DetectResult& r, const BudgetTracker& t);

/// Predicate evaluation with op counting; all detectors evaluate through
/// this helper so stats are comparable across algorithms. An optional
/// BudgetTracker turns every evaluation into a budget checkpoint: once the
/// tracker has tripped, evaluation is refused (returns false without
/// calling the predicate). Detectors must therefore consult the tracker
/// before concluding anything definite from a false evaluation.
class CountingEval {
 public:
  CountingEval(const Predicate& p, const Computation& c, DetectStats& st,
               BudgetTracker* budget = nullptr)
      : p_(p),
        c_(c),
        st_(st),
        budget_(budget != nullptr && budget->polls_evals() ? budget
                                                           : nullptr) {}

  bool operator()(const Cut& g) const {
    if (budget_ != nullptr && !budget_->ok()) return false;
    ++st_.predicate_evals;
    return p_.eval(c_, g);
  }

 private:
  const Predicate& p_;
  const Computation& c_;
  DetectStats& st_;
  BudgetTracker* budget_;
};

}  // namespace hbct
