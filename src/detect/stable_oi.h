// Stable and observer-independent detection, plus the generic exponential
// detectors for arbitrary predicates (Table 1's last row and the
// EG/AG-of-observer-independent problems proved intractable in Section 6).
//
// Every detector takes a Budget (default: unlimited except the DFS state
// cap) and degrades to Verdict::kUnknown with a BoundReason instead of
// reporting a definite verdict it never established — see detect/budget.h.
#pragma once

#include "detect/detector.h"

namespace hbct {

/// Detection of a stable predicate under any of the four unary operators:
/// EF ⟺ AF ⟺ p(final cut); EG ⟺ AG ⟺ p(initial cut) ("trivial" row).
DetectResult detect_stable(const Computation& c, const Predicate& p, Op op,
                           const Budget& budget = {});

/// EF(p) for an observer-independent predicate: scan one observation (the
/// canonical linearization). By observer independence the verdict equals
/// AF(p). O(|E|) evaluations.
DetectResult detect_ef_observer_independent(const Computation& c,
                                            const Predicate& p,
                                            const Budget& budget = {});

// ---- Arbitrary predicates: explicit search, worst-case exponential --------

/// EF(p): DFS over all reachable cuts until one satisfies p. The search
/// stops at Budget::max_states distinct cuts (and at every other bound of
/// the budget); an exhausted search returns kUnknown, never a definite
/// verdict.
DetectResult detect_ef_dfs(const Computation& c, const Predicate& p,
                           const Budget& budget = {});

/// EG(p): DFS restricted to cuts satisfying p, looking for a path from the
/// initial cut to the final cut. This is the natural certificate search for
/// Theorem 5's NP-complete problem.
DetectResult detect_eg_dfs(const Computation& c, const Predicate& p,
                           const Budget& budget = {});

/// AG(p) = ¬EF(¬p) (Theorem 6's co-NP-complete problem when p is OI).
/// kUnknown from the inner search propagates (¬ is Kleene-strict).
DetectResult detect_ag_dfs(const Computation& c, const Predicate& p,
                           const Budget& budget = {});

/// AF(p) = ¬EG(¬p).
DetectResult detect_af_dfs(const Computation& c, const Predicate& p,
                           const Budget& budget = {});

/// E[p U q]: DFS through the p-true region until a q-cut is found.
DetectResult detect_eu_dfs(const Computation& c, const Predicate& p,
                           const Predicate& q, const Budget& budget = {});

/// A[p U q] = ¬(EG(¬q) ∨ E[¬q U (¬p ∧ ¬q)]) with DFS operands. A definite
/// refuter decides kFails even when the other operand is kUnknown.
DetectResult detect_au_dfs(const Computation& c, const PredicatePtr& p,
                           const PredicatePtr& q, const Budget& budget = {});

}  // namespace hbct
