// Stable and observer-independent detection, plus the generic exponential
// detectors for arbitrary predicates (Table 1's last row and the
// EG/AG-of-observer-independent problems proved intractable in Section 6).
#pragma once

#include "detect/detector.h"

namespace hbct {

/// Detection of a stable predicate under any of the four unary operators:
/// EF ⟺ AF ⟺ p(final cut); EG ⟺ AG ⟺ p(initial cut) ("trivial" row).
DetectResult detect_stable(const Computation& c, const Predicate& p, Op op);

/// EF(p) for an observer-independent predicate: scan one observation (the
/// canonical linearization). By observer independence the verdict equals
/// AF(p). O(|E|) evaluations.
DetectResult detect_ef_observer_independent(const Computation& c,
                                            const Predicate& p);

// ---- Arbitrary predicates: explicit search, worst-case exponential --------

/// Caps the number of distinct cuts a search may visit; the result's
/// `aborted` is reported through DetectResult::algorithm suffix "(aborted)"
/// and holds=false.
struct SearchLimits {
  std::size_t max_states = 1u << 22;
};

/// EF(p): DFS over all reachable cuts until one satisfies p.
DetectResult detect_ef_dfs(const Computation& c, const Predicate& p,
                           const SearchLimits& lim = {});

/// EG(p): DFS restricted to cuts satisfying p, looking for a path from the
/// initial cut to the final cut. This is the natural certificate search for
/// Theorem 5's NP-complete problem.
DetectResult detect_eg_dfs(const Computation& c, const Predicate& p,
                           const SearchLimits& lim = {});

/// AG(p) = ¬EF(¬p) (Theorem 6's co-NP-complete problem when p is OI).
DetectResult detect_ag_dfs(const Computation& c, const Predicate& p,
                           const SearchLimits& lim = {});

/// AF(p) = ¬EG(¬p).
DetectResult detect_af_dfs(const Computation& c, const Predicate& p,
                           const SearchLimits& lim = {});

/// E[p U q]: DFS through the p-true region until a q-cut is found.
DetectResult detect_eu_dfs(const Computation& c, const Predicate& p,
                           const Predicate& q, const SearchLimits& lim = {});

/// A[p U q] = ¬(EG(¬q) ∨ E[¬q U (¬p ∧ ¬q)]) with DFS operands.
DetectResult detect_au_dfs(const Computation& c, const PredicatePtr& p,
                           const PredicatePtr& q, const SearchLimits& lim = {});

}  // namespace hbct
