// Algorithm A3 (Fig. 5): E[p U q] for p conjunctive and q linear, and the
// derived A[p U q] for disjunctive p, q.
//
// Theorem 7: E[p U q] holds iff there is a cut sequence from the initial cut
// to I_q (the least cut satisfying q) with p holding before I_q. So it
// suffices to (1) compute I_q by Chase–Garg advancement and (2) decide
// EG(p) inside one of the sub-computations E' = I_q \ {e}, e ∈ frontier(I_q)
// — and EG of a conjunctive predicate is an O(|E|) position scan. Overall
// O(n|E|).
//
// AU uses the CTL identity
//   A[p U q] ⟺ ¬( EG(¬q) ∨ E[¬q U (¬p ∧ ¬q)] )
// which for disjunctive p, q turns both operands into conjunctive-input
// problems (¬q conjunctive; ¬p ∧ ¬q conjunctive hence linear).
#pragma once

#include "detect/detector.h"
#include "predicate/conjunctive.h"
#include "predicate/disjunctive.h"

namespace hbct {

/// E[p U q], p conjunctive, q linear (q must carry a linear-advancement
/// oracle; any class whose closure includes kClassLinear works).
/// On success witness_cut = I_q and witness_path is a full witness prefix
/// ∅ … I_q. `parallelism` fans out Step 2's per-frontier-event EG scans
/// (1 = sequential, 0 = one per shared-pool worker); the result is
/// identical for every value.
DetectResult detect_eu(const Computation& c, const ConjunctivePredicate& p,
                       const Predicate& q, std::size_t parallelism = 1,
                       const Budget& budget = {});

/// Theorem 7's footnote: q need not be linear — a least satisfying cut
/// suffices. This entry point runs A3's Step 2 with a caller-supplied I_q
/// (computed by any means, e.g. brute force or domain knowledge). I_q must
/// be consistent; pass the initial cut when q holds initially.
DetectResult detect_eu_at(const Computation& c, const ConjunctivePredicate& p,
                          const Cut& iq, std::size_t parallelism = 1,
                          const Budget& budget = {});

/// A[p U q], p and q disjunctive. `parallelism` > 1 runs the two refuters
/// (EG(¬q) and E[¬q U (¬p ∧ ¬q)]) concurrently; same result either way.
DetectResult detect_au_disjunctive(const Computation& c,
                                   const DisjunctivePredicate& p,
                                   const DisjunctivePredicate& q,
                                   std::size_t parallelism = 1,
                                   const Budget& budget = {});

}  // namespace hbct
