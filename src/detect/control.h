// Predicate control (the Tarafdar–Garg reading of EG):
// EG(p) — "controllable: p" — holds exactly when a controller that decides
// the order of events can keep p true for the whole execution. A1's witness
// path is that controller's schedule; this helper extracts it as the exact
// sequence of events to release.
#pragma once

#include <vector>

#include "detect/detector.h"

namespace hbct {

/// Converts a witness path (consecutive cuts, each extending the previous
/// by one event) into the event schedule a controller enforces. Aborts if
/// the path is not a valid cover chain from the initial cut.
std::vector<EventId> schedule_from_path(const Computation& c,
                                        const std::vector<Cut>& path);

/// Convenience: EG(p) for linear p, returning the enforcing schedule when
/// controllable (empty otherwise).
std::vector<EventId> control_schedule(const Computation& c,
                                      const Predicate& p);

}  // namespace hbct
