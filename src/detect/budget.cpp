#include "detect/budget.h"

#include "detect/detector.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/assert.h"

namespace hbct {

void record_budget_trip(Tracer* t, BoundReason r) {
  t->instant(std::string("budget.trip.") + to_string(r));
  t->metrics()
      .counter(std::string("budget.trips.") + to_string(r))
      .add(1);
}

void record_flight_trip(BoundReason r) {
  static const std::uint16_t kTrip =
      FlightRecorder::global().intern("budget.trip", "reason", "");
  FlightRecorder::global().anomaly(kTrip, static_cast<std::int64_t>(r), 0);
}

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::kHolds: return "holds";
    case Verdict::kFails: return "fails";
    case Verdict::kUnknown: return "unknown";
  }
  return "?";
}

const char* to_string(BoundReason r) {
  switch (r) {
    case BoundReason::kNone: return "none";
    case BoundReason::kStateCap: return "state-cap";
    case BoundReason::kStepBudget: return "step-budget";
    case BoundReason::kDeadline: return "deadline";
    case BoundReason::kCancelled: return "cancelled";
    case BoundReason::kAuditFailed: return "audit-failed";
  }
  return "?";
}

bool DetectResult::holds() const {
  HBCT_ASSERT_MSG(verdict != Verdict::kUnknown,
                  "DetectResult::holds() read on an indefinite verdict; "
                  "check definite() or inspect verdict/bound instead");
  return verdict == Verdict::kHolds;
}

DetectResult& mark_bounded(DetectResult& r, BoundReason why) {
  HBCT_DASSERT(why != BoundReason::kNone);
  r.verdict = Verdict::kUnknown;
  r.bound = why;
  return r;
}

DetectResult& mark_bounded(DetectResult& r, const BudgetTracker& t) {
  return mark_bounded(r, t.reason());
}

}  // namespace hbct
