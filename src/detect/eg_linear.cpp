#include "detect/eg_linear.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/assert.h"
#include "util/rng.h"

namespace hbct {

DetectResult detect_eg_linear(const Computation& c, const Predicate& p,
                              const Budget& budget) {
  DetectResult r;
  r.algorithm = "A1-eg-linear";
  ScopedSpan span(budget.trace, "eg.a1-walk");
  BudgetTracker t(budget, r.stats);
  CountingEval eval(p, c, r.stats, &t);

  if (!t.ok()) return mark_bounded(r, t);
  Cut w = c.final_cut();                  // Step 1
  eval.bind(w);
  span.arg("cursor", eval.incremental() ? 1 : 0);
  if (!eval.at()) {                       // final cut must satisfy p
    if (t.exceeded()) return mark_bounded(r, t);
    return r;
  }
  const Cut initial = c.initial_cut();
  std::vector<Cut> path;
  path.push_back(w);
  std::vector<ProcId> frontier;

  while (!(w == initial)) {               // Step 2
    // Step 3: predecessors of W are retreat(W, i) for i in frontier(W);
    // keep the first one satisfying p (Theorem 2: any choice works). W is
    // stepped in place: retreat one component, test, undo on a miss.
    bool found = false;
    c.frontier_procs(w, &frontier);
    for (ProcId i : frontier) {
      eval.retreat(w, static_cast<std::size_t>(i));
      ++r.stats.cut_steps;
      if (eval.at()) {                    // Step 5
        path.push_back(w);
        found = true;
        break;
      }
      eval.advance(w, static_cast<std::size_t>(i));  // undo the miss
      if (t.exceeded()) return mark_bounded(r, t);
    }
    if (!found) return r;                 // Step 4: Q empty
  }
  r.verdict = Verdict::kHolds;            // Step 7: initial cut satisfies p
  std::reverse(path.begin(), path.end());
  r.witness_path = std::move(path);
  return r;
}

DetectResult detect_eg_linear_randomized(const Computation& c,
                                         const Predicate& p,
                                         std::uint64_t seed,
                                         const Budget& budget) {
  DetectResult r;
  r.algorithm = "A1-eg-linear (randomized choice)";
  ScopedSpan span(budget.trace, "eg.a1-walk-randomized");
  BudgetTracker t(budget, r.stats);
  CountingEval eval(p, c, r.stats, &t);
  Rng rng(seed);

  if (!t.ok()) return mark_bounded(r, t);
  Cut w = c.final_cut();
  eval.bind(w);
  span.arg("cursor", eval.incremental() ? 1 : 0);
  if (!eval.at()) {
    if (t.exceeded()) return mark_bounded(r, t);
    return r;
  }
  const Cut initial = c.initial_cut();
  std::vector<Cut> path;
  path.push_back(w);
  std::vector<ProcId> frontier;

  while (!(w == initial)) {
    // Q = all predecessors satisfying p; pick one uniformly (Theorem 2).
    // Probe each predecessor in place (retreat, test, undo) and remember
    // the hits by process id; the draw below is over the same candidate
    // sequence the allocating version collected.
    std::vector<ProcId> q;
    c.frontier_procs(w, &frontier);
    for (ProcId i : frontier) {
      eval.retreat(w, static_cast<std::size_t>(i));
      ++r.stats.cut_steps;
      const bool hit = eval.at();
      eval.advance(w, static_cast<std::size_t>(i));
      if (t.exceeded()) return mark_bounded(r, t);
      if (hit) q.push_back(i);
    }
    if (q.empty()) return r;
    eval.retreat(w, static_cast<std::size_t>(q[rng.next_below(q.size())]));
    path.push_back(w);
  }
  r.verdict = Verdict::kHolds;
  std::reverse(path.begin(), path.end());
  r.witness_path = std::move(path);
  return r;
}

DetectResult detect_eg_post_linear(const Computation& c,
                                   const Predicate& p,
                                   const Budget& budget) {
  DetectResult r;
  r.algorithm = "A1-eg-post-linear";
  ScopedSpan span(budget.trace, "eg.a1-walk-dual");
  BudgetTracker t(budget, r.stats);
  CountingEval eval(p, c, r.stats, &t);

  if (!t.ok()) return mark_bounded(r, t);
  Cut w = c.initial_cut();
  eval.bind(w);
  span.arg("cursor", eval.incremental() ? 1 : 0);
  if (!eval.at()) {
    if (t.exceeded()) return mark_bounded(r, t);
    return r;
  }
  const Cut final = c.final_cut();
  std::vector<Cut> path;
  path.push_back(w);
  std::vector<ProcId> enabled;

  while (!(w == final)) {
    bool found = false;
    c.enabled_procs(w, &enabled);
    for (ProcId i : enabled) {
      eval.advance(w, static_cast<std::size_t>(i));
      ++r.stats.cut_steps;
      if (eval.at()) {
        path.push_back(w);
        found = true;
        break;
      }
      eval.retreat(w, static_cast<std::size_t>(i));
      if (t.exceeded()) return mark_bounded(r, t);
    }
    if (!found) return r;
  }
  r.verdict = Verdict::kHolds;
  r.witness_path = std::move(path);
  return r;
}

}  // namespace hbct
