#include "detect/eg_linear.h"

#include <algorithm>

#include "util/assert.h"
#include "util/rng.h"

namespace hbct {

DetectResult detect_eg_linear(const Computation& c, const Predicate& p) {
  DetectResult r;
  r.algorithm = "A1-eg-linear";
  CountingEval eval(p, c, r.stats);

  Cut w = c.final_cut();                  // Step 1
  if (!eval(w)) return r;                 // final cut must satisfy p
  const Cut initial = c.initial_cut();
  std::vector<Cut> path;
  path.push_back(w);

  while (!(w == initial)) {               // Step 2
    // Step 3: predecessors of W are retreat(W, i) for i in frontier(W);
    // keep the first one satisfying p (Theorem 2: any choice works).
    bool found = false;
    for (ProcId i : c.frontier_procs(w)) {
      Cut g = c.retreat(w, i);
      ++r.stats.cut_steps;
      if (eval(g)) {
        w = std::move(g);                 // Step 5
        path.push_back(w);
        found = true;
        break;
      }
    }
    if (!found) return r;                 // Step 4: Q empty
  }
  r.holds = true;                         // Step 7: initial cut satisfies p
  std::reverse(path.begin(), path.end());
  r.witness_path = std::move(path);
  return r;
}

DetectResult detect_eg_linear_randomized(const Computation& c,
                                         const Predicate& p,
                                         std::uint64_t seed) {
  DetectResult r;
  r.algorithm = "A1-eg-linear (randomized choice)";
  CountingEval eval(p, c, r.stats);
  Rng rng(seed);

  Cut w = c.final_cut();
  if (!eval(w)) return r;
  const Cut initial = c.initial_cut();
  std::vector<Cut> path;
  path.push_back(w);

  while (!(w == initial)) {
    // Q = all predecessors satisfying p; pick one uniformly (Theorem 2).
    std::vector<Cut> q;
    for (ProcId i : c.frontier_procs(w)) {
      Cut g = c.retreat(w, i);
      ++r.stats.cut_steps;
      if (eval(g)) q.push_back(std::move(g));
    }
    if (q.empty()) return r;
    w = std::move(q[rng.next_below(q.size())]);
    path.push_back(w);
  }
  r.holds = true;
  std::reverse(path.begin(), path.end());
  r.witness_path = std::move(path);
  return r;
}

DetectResult detect_eg_post_linear(const Computation& c, const Predicate& p) {
  DetectResult r;
  r.algorithm = "A1-eg-post-linear";
  CountingEval eval(p, c, r.stats);

  Cut w = c.initial_cut();
  if (!eval(w)) return r;
  const Cut final = c.final_cut();
  std::vector<Cut> path;
  path.push_back(w);

  while (!(w == final)) {
    bool found = false;
    for (ProcId i : c.enabled_procs(w)) {
      Cut g = c.advance(w, i);
      ++r.stats.cut_steps;
      if (eval(g)) {
        w = std::move(g);
        path.push_back(w);
        found = true;
        break;
      }
    }
    if (!found) return r;
  }
  r.holds = true;
  r.witness_path = std::move(path);
  return r;
}

}  // namespace hbct
