// Detection of disjunctive predicates.
//
//  EF — position scan: some disjunct holds at some local position (every
//       local position occurs in a consistent cut).
//  AF — disjunctive predicates are observer-independent, so AF ⟺ EF.
//  EG — interval-chain search: a maximal cut sequence on which "some
//       disjunct always holds" exists iff there is a chain of true-intervals
//       (maximal runs of positions where one disjunct holds) that starts at
//       an interval containing position 0, ends at an interval containing a
//       process's final position, and where the path can switch from holding
//       interval I = (i, [a,b]) to J = (j, [c,d]) — possible iff event
//       (j, c) does not causally require event (i, b+1). Reachability is
//       computed as a fixpoint over per-process hold bounds.
//  AG — ¬EF(¬p) with ¬p conjunctive (Chase–Garg).
#pragma once

#include "detect/detector.h"
#include "predicate/disjunctive.h"

namespace hbct {

/// EF(p) for disjunctive p. witness_cut = least cut J(e) making a disjunct
/// true (or the initial cut).
DetectResult detect_ef_disjunctive(const Computation& c,
                                   const DisjunctivePredicate& p,
                                   const Budget& budget = {});

/// AF(p) ⟺ EF(p) (observer independence).
DetectResult detect_af_disjunctive(const Computation& c,
                                   const DisjunctivePredicate& p,
                                   const Budget& budget = {});

/// EG(p) via the true-interval chain fixpoint. Polynomial in the number of
/// true-intervals (≤ |E| + n).
DetectResult detect_eg_disjunctive(const Computation& c,
                                   const DisjunctivePredicate& p,
                                   const Budget& budget = {});

/// AG(p) = ¬EF(¬p) via Chase–Garg on the conjunctive negation.
DetectResult detect_ag_disjunctive(const Computation& c,
                                   const DisjunctivePredicate& p,
                                   const Budget& budget = {});

}  // namespace hbct
