// Explicit-lattice CTL model checking — the baseline the paper argues
// against, and the ground-truth oracle for the property-test suite.
//
// The checker materializes every consistent cut (exponential in n) and
// labels the Hasse DAG bottom-up / top-down with the standard finite-path
// CTL semantics of Section 3: paths are maximal cut sequences ending at the
// final cut E.
#pragma once

#include <functional>
#include <vector>

#include "detect/detector.h"
#include "lattice/lattice.h"

namespace hbct {

class LatticeChecker {
 public:
  explicit LatticeChecker(const Computation& c,
                          std::size_t max_nodes = 1u << 22);
  /// Adopts a pre-built lattice (shared across many queries).
  explicit LatticeChecker(Lattice lattice);

  const Lattice& lattice() const { return lat_; }

  /// Fan-out width for the per-node sweeps (label() and the class checks):
  /// 1 = sequential (default), 0 = one per shared-pool worker. Labels,
  /// verdicts and stats are identical for every value; the operator
  /// labelings themselves stay sequential (they walk the topo order).
  void set_parallelism(std::size_t p) { parallelism_ = p; }
  std::size_t parallelism() const { return parallelism_; }

  /// Per-node truth labels of a state predicate.
  std::vector<char> label(const Predicate& p, DetectStats* st = nullptr) const;

  // Per-node operator labelings (input: per-node labels of the operands).
  std::vector<char> ef(const std::vector<char>& p) const;
  std::vector<char> af(const std::vector<char>& p) const;
  std::vector<char> eg(const std::vector<char>& p) const;
  std::vector<char> ag(const std::vector<char>& p) const;
  std::vector<char> eu(const std::vector<char>& p,
                       const std::vector<char>& q) const;
  std::vector<char> au(const std::vector<char>& p,
                       const std::vector<char>& q) const;

  /// Verdict at the initial cut; the DetectResult records the lattice size
  /// in stats.lattice_nodes/edges. `q` is required for kEU/kAU.
  /// The budget is probed at deterministic sweep boundaries (before work
  /// starts, after each labeling pass), so Verdict and BoundReason do not
  /// depend on the parallelism of the per-node sweeps. A lattice larger
  /// than budget.max_states yields kUnknown/kStateCap up front.
  DetectResult detect(Op op, const Predicate& p, const Predicate* q = nullptr,
                      const Budget& budget = {}) const;

 private:
  Lattice lat_;
  std::size_t parallelism_ = 1;
};

/// Ground-truth membership of a predicate's satisfying set in the
/// lattice-theoretic classes, by exhaustive check on the explicit lattice.
/// O(S^2) for the semilattice checks (S = number of satisfying cuts).
struct BruteClassCheck {
  bool linear = false;        // meet-closed
  bool post_linear = false;   // join-closed
  bool regular = false;       // both
  bool stable = false;        // up-closed
  bool observer_independent = false;  // EF(p) == AF(p) on this computation
};

BruteClassCheck brute_check_classes(const LatticeChecker& chk,
                                    const Predicate& p);

}  // namespace hbct
