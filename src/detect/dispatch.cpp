#include "detect/dispatch.h"

#include <algorithm>

#include "analysis/plan.h"
#include "detect/ag_linear.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "detect/conjunctive_gw.h"
#include "detect/disjunctive.h"
#include "detect/ef_linear.h"
#include "detect/eg_linear.h"
#include "detect/equilevel.h"
#include "detect/parallel.h"
#include "detect/until.h"
#include "predicate/conjunctive.h"
#include "predicate/disjunctive.h"
#include "util/assert.h"

namespace hbct {

namespace {

/// The polynomial route is refused (allow_exponential = false): report the
/// refused exploration as an indefinite verdict rather than asserting.
DetectResult refuse_exponential(const char* algorithm) {
  DetectResult r;
  r.algorithm = std::string(algorithm) + " (refused)";
  r.verdict = Verdict::kUnknown;
  r.bound = BoundReason::kStateCap;
  return r;
}

/// The eu-or-split side condition: every top-level disjunct of q is linear
/// on c and carries the oracle A3's I_q walk needs.
bool q_splits_into_linear(const Computation& c, const PredicatePtr& q) {
  const auto parts = q->disjuncts();
  return !parts.empty() &&
         std::all_of(parts.begin(), parts.end(), [&](const PredicatePtr& s) {
           return (effective_classes(*s, c) & kClassLinear) != 0 &&
                  s->has_forbidden();
         });
}

DetectResult detect_unary(const Computation& c, Op op, const PredicatePtr& p,
                          const DispatchOptions& opt,
                          const DetectPlan* pre = nullptr) {
  const DetectPlan plan =
      pre ? *pre : plan_unary(op, shape_of(p, c), opt.allow_exponential);
  if (plan.refused) return refuse_exponential(plan.name);

  switch (plan.algo) {
    case Algo::kStableFinal:
    case Algo::kStableInitial:
      return detect_stable(c, *p, op, opt.budget);

    case Algo::kEquilevelScan:
      return detect_equilevel(c, *p, op, opt.budget);

    case Algo::kEfDisjunctive:
      return detect_ef_disjunctive(c, *as_disjunctive(p), opt.budget);
    case Algo::kGwWeakConjunctive:
      return detect_ef_conjunctive(c, *as_conjunctive(p), opt.budget);
    case Algo::kChaseGargEf:
      return detect_ef_linear(c, *p, opt.budget);
    case Algo::kChaseGargEfDual:
      return detect_ef_post_linear(c, *p, opt.budget);
    case Algo::kOiScan: {
      DetectResult r = detect_ef_observer_independent(c, *p, opt.budget);
      if (op == Op::kAF) r.algorithm += " (af == ef)";
      return r;
    }

    case Algo::kAfDisjunctive:
      return detect_af_disjunctive(c, *as_disjunctive(p), opt.budget);
    case Algo::kGwStrongConjunctive:
      return detect_af_conjunctive(c, *as_conjunctive(p), opt.budget);

    case Algo::kEgConjunctiveScan:
      return detect_eg_conjunctive(c, *as_conjunctive(p), opt.budget);
    case Algo::kEgDisjunctive:
      return detect_eg_disjunctive(c, *as_disjunctive(p), opt.budget);
    case Algo::kA1EgLinear:
      return detect_eg_linear(c, *p, opt.budget);
    case Algo::kA1EgPostLinear:
      return detect_eg_post_linear(c, *p, opt.budget);

    case Algo::kAgConjunctiveScan:
      return detect_ag_conjunctive(c, *as_conjunctive(p), opt.budget);
    case Algo::kAgDisjunctive:
      return detect_ag_disjunctive(c, *as_disjunctive(p), opt.budget);
    case Algo::kA2AgLinear:
      return detect_ag_linear(c, *p, opt.budget);
    case Algo::kA2AgPostLinear:
      return detect_ag_post_linear(c, *p, opt.budget);

    // Distributive laws before the exponential fallback: EF over top-level
    // disjunctions and AG over top-level conjunctions recurse into the
    // operands, keeping e.g. DNF-of-comparisons polynomial. The operand
    // detections are independent, so they are the unit of parallelism;
    // nested fan-outs stay sequential.
    case Algo::kEfOrSplit: {
      const auto parts = p->disjuncts();
      DetectResult r;
      r.algorithm = "ef-or-split";
      DispatchOptions sub_opt = opt;
      sub_opt.parallelism = 1;
      FirstMatch m = detect_first_match(
          opt.parallelism, parts.size(),
          [&](std::size_t i) {
            return detect_unary(c, Op::kEF, parts[i], sub_opt);
          },
          [](const DetectResult& sub) {
            return sub.verdict == Verdict::kHolds;
          },
          r.stats, opt.budget.trace, "split.ef-or");
      if (m.found()) {
        // A witnessed disjunct is definite even if an earlier branch ran
        // out of budget (Kleene disjunction with a definite true operand).
        r.verdict = Verdict::kHolds;
        r.witness_cut = std::move(m.result.witness_cut);
        r.witness_path = std::move(m.result.witness_path);
      } else if (m.bound != BoundReason::kNone) {
        r.verdict = Verdict::kUnknown;
        r.bound = m.bound;
      }
      return r;
    }
    case Algo::kAgAndSplit: {
      const auto parts = p->conjuncts();
      DetectResult r;
      r.algorithm = "ag-and-split";
      DispatchOptions sub_opt = opt;
      sub_opt.parallelism = 1;
      FirstMatch m = detect_first_match(
          opt.parallelism, parts.size(),
          [&](std::size_t i) {
            return detect_unary(c, Op::kAG, parts[i], sub_opt);
          },
          [](const DetectResult& sub) {
            return sub.verdict == Verdict::kFails;
          },
          r.stats, opt.budget.trace, "split.ag-and");
      if (m.found()) {
        // A definite counterexample refutes the conjunction outright.
        r.verdict = Verdict::kFails;
        r.witness_cut = std::move(m.result.witness_cut);
      } else if (m.bound != BoundReason::kNone) {
        r.verdict = Verdict::kUnknown;
        r.bound = m.bound;
      } else {
        r.verdict = Verdict::kHolds;
      }
      return r;
    }

    case Algo::kEfDfs:
      return detect_ef_dfs(c, *p, opt.budget);
    case Algo::kAfDfs:
      return detect_af_dfs(c, *p, opt.budget);
    case Algo::kEgDfs:
      return detect_eg_dfs(c, *p, opt.budget);
    case Algo::kAgDfs:
      return detect_ag_dfs(c, *p, opt.budget);

    default:
      HBCT_ASSERT_MSG(false, "plan_unary returned an until algorithm");
  }
}

DetectResult detect_impl(const Computation& c, Op op, const PredicatePtr& p,
                         const PredicatePtr& q, const DispatchOptions& opt,
                         const DetectPlan* pre = nullptr) {
  if (op != Op::kEU && op != Op::kAU) return detect_unary(c, op, p, opt, pre);

  HBCT_ASSERT_MSG(q, "EU/AU require two predicates");
  const DetectPlan plan =
      pre ? *pre
          : plan_until(op, shape_of(p, c), shape_of(q, c),
                       op == Op::kEU && q_splits_into_linear(c, q),
                       opt.allow_exponential);
  if (plan.refused) return refuse_exponential(plan.name);

  switch (plan.algo) {
    case Algo::kA3Eu:
      return detect_eu(c, *as_conjunctive(p), *q, opt.parallelism,
                       opt.budget);
    // Distribute over a disjunctive second operand:
    // E[p U (q1 ∨ q2)] = E[p U q1] ∨ E[p U q2].
    case Algo::kEuOrSplit: {
      const auto conj = as_conjunctive(p);
      const auto parts = q->disjuncts();
      DetectResult r;
      r.algorithm = "eu-or-split(A3)";
      FirstMatch m = detect_first_match(
          opt.parallelism, parts.size(),
          [&](std::size_t i) {
            return detect_eu(c, *conj, *parts[i], 1, opt.budget);
          },
          [](const DetectResult& sub) {
            return sub.verdict == Verdict::kHolds;
          },
          r.stats, opt.budget.trace, "split.eu-or");
      if (m.found()) {
        r.verdict = Verdict::kHolds;
        r.witness_cut = std::move(m.result.witness_cut);
        r.witness_path = std::move(m.result.witness_path);
      } else if (m.bound != BoundReason::kNone) {
        r.verdict = Verdict::kUnknown;
        r.bound = m.bound;
      }
      return r;
    }
    case Algo::kEuDfs:
      return detect_eu_dfs(c, *p, *q, opt.budget);

    case Algo::kAuDisjunctive:
      return detect_au_disjunctive(c, *as_disjunctive(p), *as_disjunctive(q),
                                   opt.parallelism, opt.budget);
    case Algo::kAuDfs:
      return detect_au_dfs(c, p, q, opt.budget);

    default:
      HBCT_ASSERT_MSG(false, "plan_until returned a unary algorithm");
  }
}

/// Plan + lint + (optionally) audit for the top-level query; fills
/// r.plan/r.diagnostics. Returns false when a kFull audit refuted a class
/// claim and the detection must not run.
bool preflight(const Computation& c, Op op, const PredicatePtr& p,
               const PredicatePtr& q, const DispatchOptions& opt,
               DetectPlan& plan, DetectResult& r) {
  const PredShape sp = shape_of(p, c);
  if (op == Op::kEU || op == Op::kAU) {
    const PredShape sq = shape_of(q, c);
    plan = plan_until(op, sp, sq,
                      op == Op::kEU && q_splits_into_linear(c, q),
                      opt.allow_exponential);
    r.diagnostics = plan_diagnostics(op, *p, sp, plan);
    // Plan-level findings (W001/W002/W006) were already raised for p;
    // keep only the q-operand findings.
    for (Diagnostic& d : plan_diagnostics(op, *q, sq, plan)) {
      if (d.code == DiagCode::kExponentialFallback ||
          d.code == DiagCode::kIntractableClass ||
          d.code == DiagCode::kSplitDispatch)
        continue;
      r.diagnostics.push_back(std::move(d));
    }
  } else {
    plan = plan_unary(op, sp, opt.allow_exponential);
    r.diagnostics = plan_diagnostics(op, *p, sp, plan);
  }
  r.plan = plan_to_string(plan);
  if (opt.audit != AuditMode::kFull) return true;

  bool ok = true;
  for (const PredicatePtr& pred : {p, q}) {
    if (!pred) continue;
    const AuditResult audit = audit_predicate(pred, c, opt.audit_options);
    if (audit.ok()) continue;
    ok = false;
    for (Diagnostic& d : audit_diagnostics(audit)) {
      d.message = "'" + pred->describe() + "': " + d.message;
      r.diagnostics.push_back(std::move(d));
    }
  }
  return ok;
}

/// Process-wide verdict tally; resolved once, incremented lock-free.
Counter& global_verdict_counter(Verdict v) {
  static Counter& holds =
      MetricsRegistry::global().counter("detect.verdict.holds");
  static Counter& fails =
      MetricsRegistry::global().counter("detect.verdict.fails");
  static Counter& unknown =
      MetricsRegistry::global().counter("detect.verdict.unknown");
  switch (v) {
    case Verdict::kHolds: return holds;
    case Verdict::kFails: return fails;
    default: return unknown;
  }
}

/// Every detect() folds its operation counts and verdict into the global
/// registry; a traced run additionally lands them in its own registry so
/// the run report is self-contained.
void finish_metrics(const DetectResult& r, Tracer* t) {
  MetricsRegistry::global().absorb(r.stats);
  global_verdict_counter(r.verdict).add(1);
  if (t != nullptr) {
    MetricsRegistry& m = t->metrics();
    m.absorb(r.stats);
    m.counter(std::string("detect.verdict.") + to_string(r.verdict)).add(1);
  }
}

DetectResult detect_routed(const Computation& c, Op op, const PredicatePtr& p,
                           const PredicatePtr& q, const DispatchOptions& opt) {
  if (opt.audit == AuditMode::kOff) return detect_impl(c, op, p, q, opt);

  DetectPlan plan;
  DetectResult pre;
  bool claims_ok;
  {
    ScopedSpan s(opt.budget.trace, "dispatch.preflight");
    claims_ok = preflight(c, op, p, q, opt, plan, pre);
  }
  if (!claims_ok) {
    // A refuted class claim voids the soundness of every class-specific
    // route; degrade to indefinite rather than risk a wrong definite
    // verdict (the Kleene contract of detect/budget.h). An audit failure
    // also means a predicate lied about its class — exactly the incident a
    // flight-recorder window should capture.
    static const std::uint16_t kAuditFail =
        FlightRecorder::global().intern("audit.fail", "op", "");
    FlightRecorder::global().anomaly(kAuditFail,
                                     static_cast<std::int64_t>(op), 0);
    pre.algorithm = std::string(plan.name) + " (audit failed)";
    pre.verdict = Verdict::kUnknown;
    pre.bound = BoundReason::kAuditFailed;
    return pre;
  }
  DispatchOptions sub_opt = opt;
  sub_opt.audit = AuditMode::kOff;
  // The preflight already planned the query; reuse it so the analysis adds
  // no second shape_of/plan pass to the detection itself.
  DetectResult r = detect_impl(c, op, p, q, sub_opt, &plan);
  r.plan = std::move(pre.plan);
  r.diagnostics = std::move(pre.diagnostics);
  return r;
}

}  // namespace

DetectResult detect(const Computation& c, Op op, const PredicatePtr& p,
                    const PredicatePtr& q, const DispatchOptions& opt) {
  HBCT_ASSERT(p);
  if (op == Op::kEU || op == Op::kAU)
    HBCT_ASSERT_MSG(q, "EU/AU require two predicates");

  // Always-on flight span around the whole detection (a few ns; see
  // obs/flight.h) so anomaly dumps show what detections surrounded the
  // incident even when the opt-in tracer is off.
  static const std::uint16_t kDetect =
      FlightRecorder::global().intern("detect", "op", "verdict");
  FlightScope flight(FlightRecorder::global(), kDetect,
                     static_cast<std::int64_t>(op), -1);

  if (!opt.trace) {
    DetectResult r = detect_routed(c, op, p, q, opt);
    finish_metrics(r, opt.budget.trace);
    flight.args(static_cast<std::int64_t>(op),
                static_cast<std::int64_t>(r.verdict));
    return r;
  }

  TraceHandle tracer = std::make_shared<Tracer>();
  // Materialize the registry up front: Tracer::end() records the per-phase
  // span.<name>.ns histograms only once the registry exists.
  tracer->metrics();
  DispatchOptions traced = opt;
  traced.budget.trace = tracer.get();
  DetectResult r;
  {
    ScopedSpan root(tracer.get(), "detect");
    root.arg("op", static_cast<std::int64_t>(op));
    r = detect_routed(c, op, p, q, traced);
    root.arg("verdict", static_cast<std::int64_t>(r.verdict));
  }
  finish_metrics(r, tracer.get());
  flight.args(static_cast<std::int64_t>(op),
              static_cast<std::int64_t>(r.verdict));
  r.trace = std::move(tracer);
  return r;
}

}  // namespace hbct
