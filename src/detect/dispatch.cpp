#include "detect/dispatch.h"

#include <algorithm>

#include "detect/ag_linear.h"
#include "detect/conjunctive_gw.h"
#include "detect/disjunctive.h"
#include "detect/ef_linear.h"
#include "detect/eg_linear.h"
#include "detect/parallel.h"
#include "detect/until.h"
#include "predicate/conjunctive.h"
#include "predicate/disjunctive.h"
#include "util/assert.h"

namespace hbct {

namespace {

/// The polynomial route is refused (allow_exponential = false): report the
/// refused exploration as an indefinite verdict rather than asserting.
DetectResult refuse_exponential(const char* algorithm) {
  DetectResult r;
  r.algorithm = algorithm;
  r.verdict = Verdict::kUnknown;
  r.bound = BoundReason::kStateCap;
  return r;
}

DetectResult detect_unary(const Computation& c, Op op, const PredicatePtr& p,
                          const DispatchOptions& opt) {
  const ClassSet cls = effective_classes(*p, c);
  const auto conj = as_conjunctive(p);
  const auto disj = as_disjunctive(p);

  if (cls & kClassStable) return detect_stable(c, *p, op, opt.budget);

  switch (op) {
    case Op::kEF:
      if (disj) return detect_ef_disjunctive(c, *disj, opt.budget);
      if (conj) return detect_ef_conjunctive(c, *conj, opt.budget);
      if (cls & kClassLinear) return detect_ef_linear(c, *p, opt.budget);
      if (cls & kClassPostLinear)
        return detect_ef_post_linear(c, *p, opt.budget);
      if (cls & kClassObserverIndependent)
        return detect_ef_observer_independent(c, *p, opt.budget);
      break;
    case Op::kAF:
      if (disj) return detect_af_disjunctive(c, *disj, opt.budget);
      if (conj) return detect_af_conjunctive(c, *conj, opt.budget);
      if (cls & kClassObserverIndependent) {
        DetectResult r = detect_ef_observer_independent(c, *p, opt.budget);
        r.algorithm += " (af == ef)";
        return r;
      }
      break;
    case Op::kEG:
      if (conj) return detect_eg_conjunctive(c, *conj, opt.budget);
      if (disj) return detect_eg_disjunctive(c, *disj, opt.budget);
      if (cls & kClassLinear) return detect_eg_linear(c, *p, opt.budget);
      if (cls & kClassPostLinear)
        return detect_eg_post_linear(c, *p, opt.budget);
      break;
    case Op::kAG:
      if (conj) return detect_ag_conjunctive(c, *conj, opt.budget);
      if (disj) return detect_ag_disjunctive(c, *disj, opt.budget);
      if (cls & kClassLinear) return detect_ag_linear(c, *p, opt.budget);
      if (cls & kClassPostLinear)
        return detect_ag_post_linear(c, *p, opt.budget);
      break;
    default:
      HBCT_ASSERT_MSG(false, "detect_unary called with EU/AU");
  }

  // Distributive laws before the exponential fallback: EF over top-level
  // disjunctions and AG over top-level conjunctions recurse into the
  // operands, keeping e.g. DNF-of-comparisons polynomial. The operand
  // detections are independent, so they are the unit of parallelism;
  // nested fan-outs stay sequential.
  if (op == Op::kEF) {
    const auto parts = p->disjuncts();
    if (!parts.empty()) {
      DetectResult r;
      r.algorithm = "ef-or-split";
      DispatchOptions sub_opt = opt;
      sub_opt.parallelism = 1;
      FirstMatch m = detect_first_match(
          opt.parallelism, parts.size(),
          [&](std::size_t i) {
            return detect_unary(c, Op::kEF, parts[i], sub_opt);
          },
          [](const DetectResult& sub) {
            return sub.verdict == Verdict::kHolds;
          },
          r.stats);
      if (m.found()) {
        // A witnessed disjunct is definite even if an earlier branch ran
        // out of budget (Kleene disjunction with a definite true operand).
        r.verdict = Verdict::kHolds;
        r.witness_cut = std::move(m.result.witness_cut);
        r.witness_path = std::move(m.result.witness_path);
      } else if (m.bound != BoundReason::kNone) {
        r.verdict = Verdict::kUnknown;
        r.bound = m.bound;
      }
      return r;
    }
  }
  if (op == Op::kAG) {
    const auto parts = p->conjuncts();
    if (!parts.empty()) {
      DetectResult r;
      r.algorithm = "ag-and-split";
      DispatchOptions sub_opt = opt;
      sub_opt.parallelism = 1;
      FirstMatch m = detect_first_match(
          opt.parallelism, parts.size(),
          [&](std::size_t i) {
            return detect_unary(c, Op::kAG, parts[i], sub_opt);
          },
          [](const DetectResult& sub) {
            return sub.verdict == Verdict::kFails;
          },
          r.stats);
      if (m.found()) {
        // A definite counterexample refutes the conjunction outright.
        r.verdict = Verdict::kFails;
        r.witness_cut = std::move(m.result.witness_cut);
      } else if (m.bound != BoundReason::kNone) {
        r.verdict = Verdict::kUnknown;
        r.bound = m.bound;
      } else {
        r.verdict = Verdict::kHolds;
      }
      return r;
    }
  }

  if (!opt.allow_exponential) {
    switch (op) {
      case Op::kEF: return refuse_exponential("ef-dfs (refused)");
      case Op::kAF: return refuse_exponential("af-dfs (refused)");
      case Op::kEG: return refuse_exponential("eg-dfs (refused)");
      default: return refuse_exponential("ag-dfs (refused)");
    }
  }
  switch (op) {
    case Op::kEF: return detect_ef_dfs(c, *p, opt.budget);
    case Op::kAF: return detect_af_dfs(c, *p, opt.budget);
    case Op::kEG: return detect_eg_dfs(c, *p, opt.budget);
    default: return detect_ag_dfs(c, *p, opt.budget);
  }
}

}  // namespace

DetectResult detect(const Computation& c, Op op, const PredicatePtr& p,
                    const PredicatePtr& q, const DispatchOptions& opt) {
  HBCT_ASSERT(p);
  if (op != Op::kEU && op != Op::kAU) return detect_unary(c, op, p, opt);

  HBCT_ASSERT_MSG(q, "EU/AU require two predicates");
  if (op == Op::kEU) {
    const auto conj = as_conjunctive(p);
    if (conj && (effective_classes(*q, c) & kClassLinear))
      return detect_eu(c, *conj, *q, opt.parallelism, opt.budget);
    // Distribute over a disjunctive second operand:
    // E[p U (q1 ∨ q2)] = E[p U q1] ∨ E[p U q2].
    if (conj) {
      const auto parts = q->disjuncts();
      if (!parts.empty() &&
          std::all_of(parts.begin(), parts.end(), [&](const PredicatePtr& s) {
            return (effective_classes(*s, c) & kClassLinear) != 0;
          })) {
        DetectResult r;
        r.algorithm = "eu-or-split(A3)";
        FirstMatch m = detect_first_match(
            opt.parallelism, parts.size(),
            [&](std::size_t i) {
              return detect_eu(c, *conj, *parts[i], 1, opt.budget);
            },
            [](const DetectResult& sub) {
              return sub.verdict == Verdict::kHolds;
            },
            r.stats);
        if (m.found()) {
          r.verdict = Verdict::kHolds;
          r.witness_cut = std::move(m.result.witness_cut);
          r.witness_path = std::move(m.result.witness_path);
        } else if (m.bound != BoundReason::kNone) {
          r.verdict = Verdict::kUnknown;
          r.bound = m.bound;
        }
        return r;
      }
    }
    if (!opt.allow_exponential) return refuse_exponential("eu-dfs (refused)");
    return detect_eu_dfs(c, *p, *q, opt.budget);
  }

  const auto dp = as_disjunctive(p);
  const auto dq = as_disjunctive(q);
  if (dp && dq)
    return detect_au_disjunctive(c, *dp, *dq, opt.parallelism, opt.budget);
  if (!opt.allow_exponential) return refuse_exponential("au-dfs (refused)");
  return detect_au_dfs(c, p, q, opt.budget);
}

}  // namespace hbct
