#include "detect/dispatch.h"

#include <algorithm>

#include "detect/ag_linear.h"
#include "detect/conjunctive_gw.h"
#include "detect/disjunctive.h"
#include "detect/ef_linear.h"
#include "detect/eg_linear.h"
#include "detect/parallel.h"
#include "detect/until.h"
#include "predicate/conjunctive.h"
#include "predicate/disjunctive.h"
#include "util/assert.h"

namespace hbct {

namespace {

DetectResult detect_unary(const Computation& c, Op op, const PredicatePtr& p,
                          const DispatchOptions& opt) {
  const ClassSet cls = effective_classes(*p, c);
  const auto conj = as_conjunctive(p);
  const auto disj = as_disjunctive(p);

  if (cls & kClassStable) return detect_stable(c, *p, op);

  switch (op) {
    case Op::kEF:
      if (disj) return detect_ef_disjunctive(c, *disj);
      if (conj) return detect_ef_conjunctive(c, *conj);
      if (cls & kClassLinear) return detect_ef_linear(c, *p);
      if (cls & kClassPostLinear) return detect_ef_post_linear(c, *p);
      if (cls & kClassObserverIndependent)
        return detect_ef_observer_independent(c, *p);
      break;
    case Op::kAF:
      if (disj) return detect_af_disjunctive(c, *disj);
      if (conj) return detect_af_conjunctive(c, *conj);
      if (cls & kClassObserverIndependent) {
        DetectResult r = detect_ef_observer_independent(c, *p);
        r.algorithm += " (af == ef)";
        return r;
      }
      break;
    case Op::kEG:
      if (conj) return detect_eg_conjunctive(c, *conj);
      if (disj) return detect_eg_disjunctive(c, *disj);
      if (cls & kClassLinear) return detect_eg_linear(c, *p);
      if (cls & kClassPostLinear) return detect_eg_post_linear(c, *p);
      break;
    case Op::kAG:
      if (conj) return detect_ag_conjunctive(c, *conj);
      if (disj) return detect_ag_disjunctive(c, *disj);
      if (cls & kClassLinear) return detect_ag_linear(c, *p);
      if (cls & kClassPostLinear) return detect_ag_post_linear(c, *p);
      break;
    default:
      HBCT_ASSERT_MSG(false, "detect_unary called with EU/AU");
  }

  // Distributive laws before the exponential fallback: EF over top-level
  // disjunctions and AG over top-level conjunctions recurse into the
  // operands, keeping e.g. DNF-of-comparisons polynomial. The operand
  // detections are independent, so they are the unit of parallelism;
  // nested fan-outs stay sequential.
  if (op == Op::kEF) {
    const auto parts = p->disjuncts();
    if (!parts.empty()) {
      DetectResult r;
      r.algorithm = "ef-or-split";
      DispatchOptions sub_opt = opt;
      sub_opt.parallelism = 1;
      FirstMatch m = detect_first_match(
          opt.parallelism, parts.size(),
          [&](std::size_t i) {
            return detect_unary(c, Op::kEF, parts[i], sub_opt);
          },
          [](const DetectResult& sub) { return sub.holds; }, r.stats);
      if (m.found()) {
        r.holds = true;
        r.witness_cut = std::move(m.result.witness_cut);
        r.witness_path = std::move(m.result.witness_path);
      }
      return r;
    }
  }
  if (op == Op::kAG) {
    const auto parts = p->conjuncts();
    if (!parts.empty()) {
      DetectResult r;
      r.algorithm = "ag-and-split";
      DispatchOptions sub_opt = opt;
      sub_opt.parallelism = 1;
      FirstMatch m = detect_first_match(
          opt.parallelism, parts.size(),
          [&](std::size_t i) {
            return detect_unary(c, Op::kAG, parts[i], sub_opt);
          },
          [](const DetectResult& sub) { return !sub.holds; }, r.stats);
      r.holds = !m.found();
      if (m.found()) r.witness_cut = std::move(m.result.witness_cut);
      return r;
    }
  }

  HBCT_ASSERT_MSG(opt.allow_exponential,
                  "no polynomial algorithm for this predicate class and "
                  "exponential fallback is disabled");
  switch (op) {
    case Op::kEF: return detect_ef_dfs(c, *p, opt.limits);
    case Op::kAF: return detect_af_dfs(c, *p, opt.limits);
    case Op::kEG: return detect_eg_dfs(c, *p, opt.limits);
    default: return detect_ag_dfs(c, *p, opt.limits);
  }
}

}  // namespace

DetectResult detect(const Computation& c, Op op, const PredicatePtr& p,
                    const PredicatePtr& q, const DispatchOptions& opt) {
  HBCT_ASSERT(p);
  if (op != Op::kEU && op != Op::kAU) return detect_unary(c, op, p, opt);

  HBCT_ASSERT_MSG(q, "EU/AU require two predicates");
  if (op == Op::kEU) {
    const auto conj = as_conjunctive(p);
    if (conj && (effective_classes(*q, c) & kClassLinear))
      return detect_eu(c, *conj, *q, opt.parallelism);
    // Distribute over a disjunctive second operand:
    // E[p U (q1 ∨ q2)] = E[p U q1] ∨ E[p U q2].
    if (conj) {
      const auto parts = q->disjuncts();
      if (!parts.empty() &&
          std::all_of(parts.begin(), parts.end(), [&](const PredicatePtr& s) {
            return (effective_classes(*s, c) & kClassLinear) != 0;
          })) {
        DetectResult r;
        r.algorithm = "eu-or-split(A3)";
        FirstMatch m = detect_first_match(
            opt.parallelism, parts.size(),
            [&](std::size_t i) { return detect_eu(c, *conj, *parts[i]); },
            [](const DetectResult& sub) { return sub.holds; }, r.stats);
        if (m.found()) {
          r.holds = true;
          r.witness_cut = std::move(m.result.witness_cut);
          r.witness_path = std::move(m.result.witness_path);
        }
        return r;
      }
    }
    HBCT_ASSERT_MSG(opt.allow_exponential,
                    "E[p U q] needs p conjunctive and q linear for the "
                    "polynomial algorithm");
    return detect_eu_dfs(c, *p, *q, opt.limits);
  }

  const auto dp = as_disjunctive(p);
  const auto dq = as_disjunctive(q);
  if (dp && dq) return detect_au_disjunctive(c, *dp, *dq, opt.parallelism);
  HBCT_ASSERT_MSG(opt.allow_exponential,
                  "A[p U q] needs p, q disjunctive for the polynomial "
                  "algorithm");
  return detect_au_dfs(c, p, q, opt.limits);
}

}  // namespace hbct
