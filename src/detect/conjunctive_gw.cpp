#include "detect/conjunctive_gw.h"

#include "obs/trace.h"
#include "util/assert.h"

namespace hbct {

namespace {
std::size_t sz(std::int32_t v) { return static_cast<std::size_t>(v); }
}  // namespace

DetectResult detect_ef_conjunctive(const Computation& c,
                                   const ConjunctivePredicate& p,
                                   const Budget& budget) {
  DetectResult r;
  r.algorithm = "gw-weak-conjunctive";
  ScopedSpan span(budget.trace, "ef.gw-weak");
  BudgetTracker t(budget, r.stats);
  const std::int32_t n = c.num_procs();
  if (!t.ok()) return mark_bounded(r, t);

  // Per-process conjunct evaluators, resolved once (LocalEval binds the
  // variable timeline so the scans below skip the name lookup per call).
  // A process without a conjunct is vacuously true everywhere.
  std::vector<std::optional<LocalEval>> evals(sz(n));
  for (ProcId i = 0; i < n; ++i)
    if (const LocalPredicate* local = p.local_for(i))
      evals[sz(i)].emplace(c, *local);

  // first_true[i](x) = least position >= x where conjunct i holds, or -1.
  // -2 reports a tripped budget mid-scan.
  auto first_true = [&](ProcId i, EventIndex from) -> EventIndex {
    for (EventIndex pos = from; pos <= c.num_events(i); ++pos) {
      if (!t.ok()) return -2;
      ++r.stats.predicate_evals;
      if (!evals[sz(i)] || (*evals[sz(i)])(pos)) return pos;
    }
    return -1;
  };

  Cut cand(sz(n));
  for (ProcId i = 0; i < n; ++i) {
    const EventIndex pos = first_true(i, 0);
    if (pos == -2) return mark_bounded(r, t);
    if (pos < 0) return r;  // conjunct i never holds
    cand[sz(i)] = pos;
  }

  // Repair consistency: if the candidate event on process i has seen more
  // events of process j than cand[j], process j's candidate must advance to
  // the next true position at or after that clock entry. Each repair strictly
  // advances one position, so the loop takes at most |E| repairs.
  bool changed = true;
  while (changed) {
    changed = false;
    for (ProcId i = 0; i < n && !changed; ++i) {
      if (cand[sz(i)] == 0) continue;
      const VClockView vc = c.vclock(i, cand[sz(i)]);
      for (ProcId j = 0; j < n; ++j) {
        if (j == i || vc[sz(j)] <= cand[sz(j)]) continue;
        const EventIndex pos = first_true(j, vc[sz(j)]);
        if (pos == -2) return mark_bounded(r, t);
        if (pos < 0) return r;  // no consistent position remains for j
        ++r.stats.cut_steps;
        cand[sz(j)] = pos;
        changed = true;
        break;
      }
    }
  }
  HBCT_DASSERT(c.is_consistent(cand));
  r.verdict = Verdict::kHolds;
  r.witness_cut = std::move(cand);
  return r;
}

namespace {

/// Shared scan: finds a violating (process, position) or reports all-true.
/// Every local evaluation is counted in st. Returns nullopt with the
/// tracker tripped when the budget ran out mid-scan (callers must check
/// before treating nullopt as "all positions true"). When `k` is non-null
/// the scan is restricted to positions 0..k[i] — the prefix sublattice.
std::optional<std::pair<ProcId, EventIndex>> find_false_position(
    const Computation& c, const ConjunctivePredicate& p, const Cut* k,
    DetectStats& st, BudgetTracker& t) {
  for (const auto& local : p.locals()) {
    const ProcId i = local->proc();
    HBCT_ASSERT_MSG(i < c.num_procs(),
                    "conjunct references a process outside the computation");
    const LocalEval le(c, *local);
    const EventIndex last = k != nullptr ? (*k)[sz(i)] : c.num_events(i);
    for (EventIndex pos = 0; pos <= last; ++pos) {
      if (!t.ok()) return std::nullopt;
      ++st.predicate_evals;
      if (!le(pos)) return std::make_pair(i, pos);
    }
  }
  return std::nullopt;
}

}  // namespace

DetectResult detect_eg_conjunctive(const Computation& c,
                                   const ConjunctivePredicate& p,
                                   const Budget& budget) {
  DetectResult r;
  r.algorithm = "eg-conjunctive-scan";
  ScopedSpan span(budget.trace, "eg.conjunctive-scan");
  BudgetTracker t(budget, r.stats);
  if (!t.ok()) return mark_bounded(r, t);
  if (find_false_position(c, p, nullptr, r.stats, t)) return r;
  if (t.exceeded()) return mark_bounded(r, t);
  r.verdict = Verdict::kHolds;
  // Any maximal cut sequence is a witness; use the canonical linearization.
  Cut g = c.initial_cut();
  r.witness_path.push_back(g);
  for (const EventId& e : c.linearization()) {
    ++g[sz(e.proc)];
    r.witness_path.push_back(g);
  }
  return r;
}

DetectResult detect_eg_conjunctive_within(const Computation& c,
                                          const ConjunctivePredicate& p,
                                          const Cut& k,
                                          const Budget& budget) {
  // Equivalent to detect_eg_conjunctive(c.prefix(k), p, budget) without
  // materializing the prefix computation: local values at positions <= k[i]
  // agree between c and the prefix, and the prefix's canonical
  // linearization is exactly c's restricted to events inside k.
  DetectResult r;
  r.algorithm = "eg-conjunctive-scan";
  ScopedSpan span(budget.trace, "eg.conjunctive-scan");
  BudgetTracker t(budget, r.stats);
  if (!t.ok()) return mark_bounded(r, t);
  if (find_false_position(c, p, &k, r.stats, t)) return r;
  if (t.exceeded()) return mark_bounded(r, t);
  r.verdict = Verdict::kHolds;
  Cut g = c.initial_cut();
  r.witness_path.push_back(g);
  for (const EventId& e : c.linearization()) {
    if (e.index > k[sz(e.proc)]) continue;
    ++g[sz(e.proc)];
    r.witness_path.push_back(g);
  }
  return r;
}

DetectResult detect_ag_conjunctive(const Computation& c,
                                   const ConjunctivePredicate& p,
                                   const Budget& budget) {
  DetectResult r;
  r.algorithm = "ag-conjunctive-scan";
  ScopedSpan span(budget.trace, "ag.conjunctive-scan");
  BudgetTracker t(budget, r.stats);
  if (!t.ok()) return mark_bounded(r, t);
  if (auto bad = find_false_position(c, p, nullptr, r.stats, t)) {
    // A consistent cut exhibiting the violation: the least cut placing the
    // process at the bad position (J(e) for pos >= 1, initial cut else).
    auto [i, pos] = *bad;
    r.witness_cut = pos == 0 ? c.initial_cut() : c.join_irreducible_of(i, pos);
    return r;
  }
  if (t.exceeded()) return mark_bounded(r, t);
  r.verdict = Verdict::kHolds;
  return r;
}

DetectResult detect_af_conjunctive(const Computation& c,
                                   const ConjunctivePredicate& p,
                                   const Budget& budget) {
  // Garg–Waldecker strong conjunctive detection, reformulated as the search
  // for an *unavoidable box*: one true-interval X_i = [a_i, b_i] per process
  // such that for every ordered pair (i, j) entering X_j is forced before
  // exiting X_i — i.e. (j, a_j) happened-before (i, b_i + 1), with the
  // boundary conventions a_j == 0 (entered from the start) and b_i == N_i
  // (exit impossible) counting as forced. Every maximal cut sequence then
  // passes a cut inside the box, where all conjuncts hold, so AF(p) is true.
  // Conversely (GW96) if no such box exists some sequence avoids p.
  //
  // Greedy search: keep the earliest candidate interval per process; a
  // violated pair (i, j) can never be fixed by later intervals of j (their
  // entries only move later, making "entered before exit of X_i" harder),
  // so advance process i's candidate. O(n^2 * #intervals) clock tests.
  DetectResult r;
  r.algorithm = "gw-strong-conjunctive";
  ScopedSpan span(budget.trace, "af.gw-strong");
  BudgetTracker t(budget, r.stats);
  const std::int32_t n = c.num_procs();
  if (!t.ok()) return mark_bounded(r, t);

  struct Iv {
    EventIndex a, b;
  };
  std::vector<std::vector<Iv>> ivs(static_cast<std::size_t>(n));
  for (ProcId i = 0; i < n; ++i) {
    const LocalPredicate* local = p.local_for(i);
    if (local == nullptr) {
      // No conjunct on i: vacuously true everywhere.
      ivs[static_cast<std::size_t>(i)].push_back(Iv{0, c.num_events(i)});
      continue;
    }
    const LocalEval le(c, *local);
    EventIndex run = -1;
    for (EventIndex pos = 0; pos <= c.num_events(i); ++pos) {
      if (!t.ok()) return mark_bounded(r, t);
      ++r.stats.predicate_evals;
      const bool tr = le(pos);
      if (tr && run < 0) run = pos;
      if (!tr && run >= 0) {
        ivs[static_cast<std::size_t>(i)].push_back(Iv{run, pos - 1});
        run = -1;
      }
    }
    if (run >= 0)
      ivs[static_cast<std::size_t>(i)].push_back(Iv{run, c.num_events(i)});
    if (ivs[static_cast<std::size_t>(i)].empty()) return r;  // conjunct never true
  }

  std::vector<std::size_t> cand(static_cast<std::size_t>(n), 0);
  auto interval = [&](ProcId i) -> const Iv& {
    return ivs[static_cast<std::size_t>(i)][cand[static_cast<std::size_t>(i)]];
  };
  // Forced "enter X_j before exit X_i" test.
  auto forced = [&](ProcId i, ProcId j) {
    const Iv& xi = interval(i);
    const Iv& xj = interval(j);
    if (xj.a == 0) return true;                // entered from the start
    if (xi.b == c.num_events(i)) return true;  // exit impossible
    return c.vclock(i, xi.b + 1)[static_cast<std::size_t>(j)] >= xj.a;
  };

  for (;;) {
    if (!t.ok()) return mark_bounded(r, t);
    ProcId bad = -1;
    for (ProcId i = 0; i < n && bad < 0; ++i)
      for (ProcId j = 0; j < n; ++j) {
        if (i == j) continue;
        if (!forced(i, j)) {
          bad = i;
          break;
        }
      }
    if (bad < 0) {
      r.verdict = Verdict::kHolds;  // unavoidable box found
      return r;
    }
    ++r.stats.cut_steps;
    if (++cand[static_cast<std::size_t>(bad)] >=
        ivs[static_cast<std::size_t>(bad)].size())
      return r;  // process exhausted: no unavoidable box, AF(p) is false
  }
}

}  // namespace hbct
