#include "detect/ef_linear.h"

#include "obs/trace.h"
#include "util/assert.h"

namespace hbct {

namespace {
std::size_t sz(std::int32_t v) { return static_cast<std::size_t>(v); }
}  // namespace

std::optional<Cut> least_satisfying_cut(const Computation& c,
                                        const Predicate& p, DetectStats& st,
                                        const Cut* start,
                                        BudgetTracker* budget) {
  Cut g = start ? *start : c.initial_cut();
  HBCT_DASSERT(c.is_consistent(g));
  ScopedSpan span(budget != nullptr ? budget->budget().trace : nullptr,
                  "walk.least-cut");
  CountingEval eval(p, c, st, budget);
  eval.bind(g);
  span.arg("cursor", eval.incremental() ? 1 : 0);
  if (budget != nullptr && !budget->ok()) return std::nullopt;
  Cut je = g;  // scratch for J(e)
  const std::size_t n = static_cast<std::size_t>(c.num_procs());
  while (!eval.at()) {
    if (budget != nullptr && budget->exceeded()) return std::nullopt;
    const ProcId i = p.forbidden(c, g);
    HBCT_DASSERT(i >= 0 && i < c.num_procs());
    if (g[sz(i)] >= c.num_events(i)) return std::nullopt;  // i exhausted
    // Add the next event of i together with its causal past: the join with
    // J(e) is the least consistent cut extending g by e. The join is
    // applied component-wise in place (g only ever grows toward J(e)).
    c.join_irreducible_of(i, g[sz(i)] + 1, &je);
    for (std::size_t j = 0; j < n; ++j) {
      if (je[j] > g[j]) {
        st.cut_steps += static_cast<std::uint64_t>(je[j] - g[j]);
        eval.move_to(g, j, je[j]);
      }
    }
    if (budget != nullptr && !budget->ok()) return std::nullopt;
  }
  return g;
}

std::optional<Cut> greatest_satisfying_cut(const Computation& c,
                                           const Predicate& p,
                                           DetectStats& st, const Cut* start,
                                           BudgetTracker* budget) {
  Cut g = start ? *start : c.final_cut();
  HBCT_DASSERT(c.is_consistent(g));
  ScopedSpan span(budget != nullptr ? budget->budget().trace : nullptr,
                  "walk.greatest-cut");
  CountingEval eval(p, c, st, budget);
  eval.bind(g);
  span.arg("cursor", eval.incremental() ? 1 : 0);
  if (budget != nullptr && !budget->ok()) return std::nullopt;
  Cut me = g;  // scratch for M(e)
  const std::size_t n = static_cast<std::size_t>(c.num_procs());
  while (!eval.at()) {
    if (budget != nullptr && budget->exceeded()) return std::nullopt;
    const ProcId i = p.forbidden_down(c, g);
    HBCT_DASSERT(i >= 0 && i < c.num_procs());
    if (g[sz(i)] <= 0) return std::nullopt;  // i already at the initial state
    // Remove the last event of i together with its causal future: the meet
    // with M(e) = E \ up-set(e) is the greatest consistent cut below g not
    // containing e, applied component-wise in place.
    c.meet_irreducible_of(i, g[sz(i)], &me);
    for (std::size_t j = 0; j < n; ++j) {
      if (me[j] < g[j]) {
        st.cut_steps += static_cast<std::uint64_t>(g[j] - me[j]);
        eval.move_to(g, j, me[j]);
      }
    }
    if (budget != nullptr && !budget->ok()) return std::nullopt;
  }
  return g;
}

DetectResult detect_ef_linear(const Computation& c, const Predicate& p,
                              const Budget& budget) {
  DetectResult r;
  r.algorithm = "chase-garg-ef";
  ScopedSpan span(budget.trace, "ef.chase-garg");
  BudgetTracker t(budget, r.stats);
  auto cut = least_satisfying_cut(c, p, r.stats, nullptr, &t);
  if (t.exceeded()) return mark_bounded(r, t);
  r.verdict = verdict_of(cut.has_value());
  if (cut) r.witness_cut = std::move(*cut);
  return r;
}

DetectResult detect_ef_post_linear(const Computation& c, const Predicate& p,
                                   const Budget& budget) {
  DetectResult r;
  r.algorithm = "chase-garg-ef-dual";
  ScopedSpan span(budget.trace, "ef.chase-garg-dual");
  BudgetTracker t(budget, r.stats);
  auto cut = greatest_satisfying_cut(c, p, r.stats, nullptr, &t);
  if (t.exceeded()) return mark_bounded(r, t);
  r.verdict = verdict_of(cut.has_value());
  if (cut) r.witness_cut = std::move(*cut);
  return r;
}

}  // namespace hbct
