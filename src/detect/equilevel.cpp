#include "detect/equilevel.h"

#include <algorithm>
#include <utility>

#include "obs/trace.h"
#include "util/assert.h"

namespace hbct {

namespace {

/// The top of the diagonal chain: every process has at least L events.
EventIndex chain_top(const Computation& c) {
  EventIndex top = 0;
  for (ProcId i = 0; i < c.num_procs(); ++i)
    top = i == 0 ? c.num_events(i) : std::min(top, c.num_events(i));
  return top;
}

void set_level(Cut& g, EventIndex l) {
  for (std::size_t i = 0; i < g.size(); ++i) g[i] = l;
}

}  // namespace

DetectResult detect_equilevel(const Computation& c, const Predicate& p, Op op,
                              const Budget& budget) {
  DetectResult r;
  r.algorithm = "equilevel-scan";
  ScopedSpan span(budget.trace, "equilevel.scan");
  BudgetTracker t(budget, r.stats);
  CountingEval eval(p, c, r.stats, &t);
  const std::int32_t n = c.num_procs();
  const EventIndex top = chain_top(c);
  Cut g = c.initial_cut();

  switch (op) {
    case Op::kEF: {
      for (EventIndex l = 0; l <= top; ++l) {
        set_level(g, l);
        if (l > 0) ++r.stats.cut_steps;
        if (c.is_consistent(g) && eval(g)) {
          r.verdict = Verdict::kHolds;
          r.witness_cut = std::move(g);
          return r;
        }
        if (t.exceeded()) return mark_bounded(r, t);
      }
      r.verdict = Verdict::kFails;
      return r;
    }

    case Op::kEG: {
      if (n >= 2 && c.total_events() > 0) {
        // Every initial-to-final path steps off the diagonal, where the
        // predicate is false by the equilevel class contract.
        r.verdict = Verdict::kFails;
        return r;
      }
      // n <= 1 (or an empty computation): the chain is the only path, and
      // every chain cut is consistent.
      std::vector<Cut> path;
      for (EventIndex l = 0; l <= top; ++l) {
        set_level(g, l);
        if (l > 0) ++r.stats.cut_steps;
        const bool hit = eval(g);
        if (t.exceeded()) return mark_bounded(r, t);
        if (!hit) {
          r.verdict = Verdict::kFails;
          return r;
        }
        path.push_back(g);
      }
      r.verdict = Verdict::kHolds;
      r.witness_path = std::move(path);
      return r;
    }

    case Op::kAG: {
      if (n >= 2 && c.total_events() > 0) {
        // The cut containing exactly the first linearization event is
        // consistent and off-diagonal: a counterexample by construction.
        r.verdict = Verdict::kFails;
        r.witness_cut =
            c.advance(c.initial_cut(), c.linearization().front().proc);
        return r;
      }
      for (EventIndex l = 0; l <= top; ++l) {
        set_level(g, l);
        if (l > 0) ++r.stats.cut_steps;
        const bool hit = eval(g);
        if (t.exceeded()) return mark_bounded(r, t);
        if (!hit) {
          r.verdict = Verdict::kFails;
          r.witness_cut = std::move(g);
          return r;
        }
      }
      r.verdict = Verdict::kHolds;
      return r;
    }

    default:
      HBCT_ASSERT_MSG(false,
                      "equilevel-scan decides EF/EG/AG only (AF is not "
                      "chain-decidable)");
  }
}

}  // namespace hbct
