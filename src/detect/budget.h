// Resource governance for the detection stack: three-valued verdicts and
// bounded search.
//
// The exponential fallbacks of Table 1 (the explicit DFS detectors, the
// brute-force LatticeChecker) can blow up on adversarial computations, and
// even the polynomial algorithms may exceed a latency-bound monitor's
// budget on very large computations. A Budget caps the work a detection may
// perform — distinct states materialized, cut-step/predicate-eval work
// units, wall-clock deadline, caller-driven cancellation — and a detector
// that runs out degrades gracefully: it returns Verdict::kUnknown together
// with the BoundReason that tripped, partial stats, and any best-effort
// witness, instead of asserting or (worse) reporting a definite verdict it
// never established.
//
// Soundness contract, relied on by tests/test_budget_soundness.cpp:
//   * a definite verdict (kHolds/kFails) under ANY budget equals the
//     verdict of the unbudgeted detection;
//   * kUnknown is returned only with a BoundReason set;
//   * verdicts are monotone in the budget: once definite at some budget,
//     the verdict is definite and identical at every larger budget.
// Negation-based compositions (AG = ¬EF(¬p), AF = ¬EG(¬p), the AU
// refuters) preserve the contract by mapping kUnknown to kUnknown — ¬ is
// strict in the unknown value, as in Kleene's strong three-valued logic.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <optional>

#include "util/assert.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace hbct {

class Tracer;

/// Three-valued detection verdict. kHolds/kFails are definite and sound;
/// kUnknown means a resource bound stopped the detection first.
enum class Verdict : std::uint8_t { kHolds, kFails, kUnknown };

/// Which bound stopped a detection (kNone for definite verdicts).
enum class BoundReason : std::uint8_t {
  kNone,
  kStateCap,    // distinct-state cap of an explicit search, or a refused
                // exponential fallback (DispatchOptions::allow_exponential)
  kStepBudget,  // cut-step / predicate-eval work budget exhausted
  kDeadline,    // wall-clock deadline passed
  kCancelled,   // the caller's CancelToken fired
  kAuditFailed, // the pre-detection class audit (DispatchOptions::audit ==
                // AuditMode::kFull) found a class-claim violation; running
                // the class-specific algorithm could return a wrong definite
                // verdict, so the detection degrades to kUnknown instead
};

const char* to_string(Verdict v);
const char* to_string(BoundReason r);

/// Emits a "budget.trip" instant event plus a counter bump on `t`'s
/// metrics registry. Out of line so budget.h need not include the tracer;
/// callers guard on `t != nullptr`.
void record_budget_trip(Tracer* t, BoundReason r);

/// Raises a "budget.trip" anomaly on the global flight recorder. Unlike
/// record_budget_trip this runs on EVERY trip, traced or not — the flight
/// recorder is the always-on layer, and a trip is exactly the kind of
/// anomaly whose surrounding window it exists to capture. Out of line so
/// budget.h need not include obs/flight.h.
void record_flight_trip(BoundReason r);

inline Verdict verdict_of(bool holds) {
  return holds ? Verdict::kHolds : Verdict::kFails;
}

/// Kleene negation: definite verdicts flip, kUnknown stays unknown.
inline Verdict negate(Verdict v) {
  switch (v) {
    case Verdict::kHolds: return Verdict::kFails;
    case Verdict::kFails: return Verdict::kHolds;
    default: return Verdict::kUnknown;
  }
}

/// Resource bounds for one detection. Default-constructed budgets keep the
/// historical behavior: a generous state cap on the explicit searches and
/// no other limit.
struct Budget {
  static constexpr std::uint64_t kUnlimited = ~std::uint64_t{0};

  /// Cap on distinct cuts an explicit search may visit (DFS detectors) or
  /// materialize (lattice construction). The polynomial algorithms never
  /// enumerate states and ignore this.
  std::size_t max_states = std::size_t{1} << 22;
  /// Work budget: cut advancements + predicate evaluations, the same units
  /// DetectStats counts. Checked at cut-step granularity.
  std::uint64_t max_work = kUnlimited;
  /// Wall-clock deadline; probed every few work units (and always at the
  /// first checkpoint, so an already-passed deadline aborts immediately).
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Caller-supplied cooperative cancellation; polled at every checkpoint.
  /// Not owned; must outlive the detection.
  CancelToken* cancel = nullptr;
  /// Span tracer of the enclosing detection (obs/trace.h); not owned. Set
  /// by dispatch when DispatchOptions::trace is on and threaded here so
  /// every detector can emit spans without signature changes. nullptr (the
  /// default) keeps all instrumentation on a single-pointer-test fast path.
  Tracer* trace = nullptr;

  /// True when any bound other than the (rarely reached) state cap is set —
  /// the fast-path test the per-step checkpoint uses.
  bool has_step_bounds() const {
    return max_work != kUnlimited || deadline.has_value() || cancel != nullptr;
  }

  /// Convenience: a budget whose deadline is `d` from now.
  static Budget with_deadline_in(std::chrono::nanoseconds d) {
    Budget b;
    b.deadline = std::chrono::steady_clock::now() + d;
    return b;
  }
};

/// Per-detection checkpoint state. One tracker is created per DetectResult
/// (they share the DetectStats object, so work already counted by
/// CountingEval and the cut-step counters is exactly the work charged
/// against the budget). Trackers are cheap to construct and NOT
/// thread-safe; parallel fan-outs give every branch its own tracker over
/// the branch's own stats, which keeps verdicts deterministic across
/// parallelism widths.
class BudgetTracker {
 public:
  BudgetTracker(const Budget& b, const DetectStats& st)
      : b_(b), st_(st), base_(work()), active_(b.has_step_bounds()) {}

  /// The per-cut-step checkpoint. Returns true while within bounds; trips
  /// (stickily) and returns false once any bound is exceeded. The first
  /// call always probes the deadline and the cancel token, so a
  /// pre-cancelled token or an already-passed deadline aborts before any
  /// predicate is evaluated.
  bool ok() {
    if (reason_ != BoundReason::kNone) return false;
    if (!active_) return true;
    if (b_.cancel && b_.cancel->cancelled()) {
      trip(BoundReason::kCancelled);
      return false;
    }
    const std::uint64_t spent = work() - base_;
    if (spent > b_.max_work) {
      trip(BoundReason::kStepBudget);
      return false;
    }
    if (b_.deadline && spent >= next_clock_probe_) {
      next_clock_probe_ = spent + kClockStride;
      if (std::chrono::steady_clock::now() >= *b_.deadline) {
        trip(BoundReason::kDeadline);
        return false;
      }
    }
    return true;
  }

  /// Explicitly trip a bound (the DFS state cap is charged here rather
  /// than through the work counters). Every trip — explicit or from ok() —
  /// funnels here, so a traced detection records one instant per bound.
  void trip(BoundReason r) {
    if (reason_ != BoundReason::kNone) return;
    reason_ = r;
    if (b_.trace != nullptr) record_budget_trip(b_.trace, r);
    record_flight_trip(r);
  }

  /// Charges `n` predicate evaluations against `st` with the exact
  /// semantics of the canonical scan loop
  ///
  ///   repeat n times { if (!ok()) break; ++st.predicate_evals; }
  ///
  /// but in O(1) when only the work bound is active (the common case on
  /// the budget ladders). Returns the number of evaluations actually
  /// charged — n unless a bound tripped mid-span, in which case the
  /// tracker is left tripped exactly as the loop would leave it. Deadline
  /// and cancellation budgets fall back to the literal per-unit loop so
  /// the clock-probe stride and poll points stay bit-identical too. `st`
  /// must be the stats object this tracker watches. The incremental until
  /// evaluator uses this to replay the batch sweep's budget arithmetic
  /// over spans whose outcome it already knows (detect/until_inc.h).
  std::uint64_t charge_evals(DetectStats& st, std::uint64_t n) {
    HBCT_DASSERT(&st == &st_);
    if (reason_ != BoundReason::kNone) return 0;
    if (!active_) {
      st.predicate_evals += n;
      return n;
    }
    if (b_.deadline || b_.cancel != nullptr) {
      std::uint64_t done = 0;
      while (done < n && ok()) {
        ++st.predicate_evals;
        ++done;
      }
      return done;
    }
    // Work bound only: the loop charges one eval per check that passes.
    // The check before the j-th eval of this span (0-based) sees
    // spent + j work units, so it passes iff spent + j <= max_work.
    const std::uint64_t spent = work() - base_;
    if (spent > b_.max_work) {
      trip(BoundReason::kStepBudget);
      return 0;
    }
    const std::uint64_t allowed =
        std::min<std::uint64_t>(n, b_.max_work - spent + 1);
    st.predicate_evals += allowed;
    if (allowed < n) trip(BoundReason::kStepBudget);
    return allowed;
  }

  bool exceeded() const { return reason_ != BoundReason::kNone; }
  BoundReason reason() const { return reason_; }
  const Budget& budget() const { return b_; }

  /// True when per-evaluation checkpoints can do anything: a budget with no
  /// step bounds never trips mid-evaluation, so CountingEval skips the
  /// tracker entirely and the checkpoint costs nothing on the default
  /// (unlimited) budget's hot paths. The explicit searches still poll ok()
  /// per cut step, which also observes trip()-ed state caps.
  bool polls_evals() const { return active_; }

 private:
  // Reading the clock every cut step would dominate the cheap detectors;
  // probe every kClockStride work units instead (plus once up front).
  static constexpr std::uint64_t kClockStride = 256;

  std::uint64_t work() const { return st_.cut_steps + st_.predicate_evals; }

  const Budget& b_;
  const DetectStats& st_;
  std::uint64_t base_;
  std::uint64_t next_clock_probe_ = 0;
  bool active_;
  BoundReason reason_ = BoundReason::kNone;
};

}  // namespace hbct
