#include "detect/brute_force.h"

#include <atomic>

#include "detect/parallel.h"
#include "obs/trace.h"
#include "util/assert.h"
#include "util/thread_pool.h"

namespace hbct {

LatticeChecker::LatticeChecker(const Computation& c, std::size_t max_nodes)
    : lat_(Lattice::build(c, max_nodes)) {}

LatticeChecker::LatticeChecker(Lattice lattice) : lat_(std::move(lattice)) {}

std::vector<char> LatticeChecker::label(const Predicate& p,
                                        DetectStats* st) const {
  // The per-node evaluations are independent; the sweep fans out across the
  // pool when asked to. The eval count is exact either way (every node is
  // evaluated exactly once), so stats stay identical across parallelism.
  std::vector<char> out(lat_.size());
  const auto eval_node = [&](std::size_t v) {
    out[v] = p.eval(lat_.computation(), lat_.cut(static_cast<NodeId>(v))) ? 1 : 0;
  };
  if (parallelism_ == 1) {
    for (std::size_t v = 0; v < lat_.size(); ++v) eval_node(v);
  } else {
    ThreadPool::shared().parallel_for(lat_.size(), eval_node, parallelism_);
  }
  if (st) st->predicate_evals += lat_.size();
  return out;
}

// All operator labelings sweep the topological order backwards (from the
// final cut down), so successor labels are final when a node is processed.

std::vector<char> LatticeChecker::ef(const std::vector<char>& p) const {
  std::vector<char> out(lat_.size(), 0);
  const auto& topo = lat_.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId v = *it;
    char r = p[v];
    for (NodeId s : lat_.successors(v)) {
      if (r) break;
      r = out[s];
    }
    out[v] = r;
  }
  return out;
}

std::vector<char> LatticeChecker::af(const std::vector<char>& p) const {
  std::vector<char> out(lat_.size(), 0);
  const auto& topo = lat_.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId v = *it;
    char r = p[v];
    if (!r) {
      const auto succ = lat_.successors(v);
      if (!succ.empty()) {
        r = 1;
        for (NodeId s : succ) r = static_cast<char>(r && out[s]);
      }
    }
    out[v] = r;
  }
  return out;
}

std::vector<char> LatticeChecker::eg(const std::vector<char>& p) const {
  std::vector<char> out(lat_.size(), 0);
  const auto& topo = lat_.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId v = *it;
    char r = 0;
    if (p[v]) {
      const auto succ = lat_.successors(v);
      if (succ.empty()) {
        r = 1;  // the final cut: the path may end here
      } else {
        for (NodeId s : succ) {
          if ((r = out[s])) break;
        }
      }
    }
    out[v] = r;
  }
  return out;
}

std::vector<char> LatticeChecker::ag(const std::vector<char>& p) const {
  std::vector<char> out(lat_.size(), 0);
  const auto& topo = lat_.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId v = *it;
    char r = p[v];
    for (NodeId s : lat_.successors(v)) {
      if (!r) break;
      r = static_cast<char>(r && out[s]);
    }
    out[v] = r;
  }
  return out;
}

std::vector<char> LatticeChecker::eu(const std::vector<char>& p,
                                     const std::vector<char>& q) const {
  std::vector<char> out(lat_.size(), 0);
  const auto& topo = lat_.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId v = *it;
    char r = q[v];
    if (!r && p[v]) {
      for (NodeId s : lat_.successors(v)) {
        if ((r = out[s])) break;
      }
    }
    out[v] = r;
  }
  return out;
}

std::vector<char> LatticeChecker::au(const std::vector<char>& p,
                                     const std::vector<char>& q) const {
  std::vector<char> out(lat_.size(), 0);
  const auto& topo = lat_.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId v = *it;
    char r = q[v];
    if (!r && p[v]) {
      const auto succ = lat_.successors(v);
      if (!succ.empty()) {
        r = 1;
        for (NodeId s : succ) r = static_cast<char>(r && out[s]);
      }
    }
    out[v] = r;
  }
  return out;
}

DetectResult LatticeChecker::detect(Op op, const Predicate& p,
                                    const Predicate* q,
                                    const Budget& budget) const {
  DetectResult r;
  r.algorithm = "lattice-brute-force";
  r.stats.lattice_nodes = lat_.size();
  r.stats.lattice_edges = lat_.num_edges();
  ScopedSpan span(budget.trace, "brute.lattice");
  span.arg("nodes", static_cast<std::int64_t>(lat_.size()));
  span.arg("edges", static_cast<std::int64_t>(lat_.num_edges()));
  // Bounds are probed at sweep boundaries only: the per-node sweeps may fan
  // out across the pool, and a mid-sweep trip point would depend on the
  // schedule. Boundary checks keep Verdict/BoundReason parallelism-invariant.
  BudgetTracker t(budget, r.stats);
  if (!t.ok()) return mark_bounded(r, t);
  if (lat_.size() > t.budget().max_states) {
    t.trip(BoundReason::kStateCap);
    return mark_bounded(r, t);
  }
  std::vector<char> lp;
  {
    ScopedSpan s(budget.trace, "brute.label-sweep");
    lp = label(p, &r.stats);
  }
  if (!t.ok()) return mark_bounded(r, t);
  std::vector<char> res;
  switch (op) {
    case Op::kEF: res = ef(lp); break;
    case Op::kAF: res = af(lp); break;
    case Op::kEG: res = eg(lp); break;
    case Op::kAG: res = ag(lp); break;
    case Op::kEU:
    case Op::kAU: {
      HBCT_ASSERT_MSG(q != nullptr, "EU/AU require a second predicate");
      std::vector<char> lq;
      {
        ScopedSpan s(budget.trace, "brute.label-sweep");
        lq = label(*q, &r.stats);
      }
      if (!t.ok()) return mark_bounded(r, t);
      res = op == Op::kEU ? eu(lp, lq) : au(lp, lq);
      break;
    }
  }
  // The answer is fully established at this point; like a found witness, it
  // stays definite even if a deadline expires between here and the return.
  r.verdict = verdict_of(res[lat_.bottom()] != 0);
  return r;
}

BruteClassCheck brute_check_classes(const LatticeChecker& chk,
                                    const Predicate& p) {
  const Lattice& lat = chk.lattice();
  const std::vector<char> lp = chk.label(p);
  const std::size_t par = chk.parallelism();

  BruteClassCheck out;
  std::vector<NodeId> sat;
  for (NodeId v = 0; v < lat.size(); ++v)
    if (lp[v]) sat.push_back(v);

  // The O(S^2) semilattice sweep fans out by row. The flags only ever move
  // true -> false, and a row is skipped only once both are already false,
  // so the outcome equals the sequential double loop for any schedule.
  std::atomic<bool> linear{true}, post_linear{true};
  const auto check_row = [&](std::size_t a) {
    bool lin = linear.load(std::memory_order_relaxed);
    bool post = post_linear.load(std::memory_order_relaxed);
    for (std::size_t b = a + 1; b < sat.size() && (lin || post); ++b) {
      if (lin && !lp[lat.meet(sat[a], sat[b])]) {
        linear.store(false, std::memory_order_relaxed);
        lin = false;
      }
      if (post && !lp[lat.join(sat[a], sat[b])]) {
        post_linear.store(false, std::memory_order_relaxed);
        post = false;
      }
    }
  };
  if (par == 1) {
    for (std::size_t a = 0; a < sat.size(); ++a) {
      if (!linear.load(std::memory_order_relaxed) &&
          !post_linear.load(std::memory_order_relaxed))
        break;
      check_row(a);
    }
  } else if (!sat.empty()) {
    ThreadPool::shared().parallel_for(sat.size(), check_row, par);
  }
  out.linear = linear.load(std::memory_order_relaxed);
  out.post_linear = post_linear.load(std::memory_order_relaxed);
  out.regular = out.linear && out.post_linear;

  std::atomic<bool> stable{true};
  const auto check_node = [&](std::size_t v) {
    if (!lp[v]) return;
    for (NodeId s : lat.successors(static_cast<NodeId>(v)))
      if (!lp[s]) {
        stable.store(false, std::memory_order_relaxed);
        return;
      }
  };
  if (par == 1) {
    for (std::size_t v = 0;
         v < lat.size() && stable.load(std::memory_order_relaxed); ++v)
      check_node(v);
  } else {
    ThreadPool::shared().parallel_for(lat.size(), check_node, par);
  }
  out.stable = stable.load(std::memory_order_relaxed);

  out.observer_independent =
      chk.ef(lp)[lat.bottom()] == chk.af(lp)[lat.bottom()];
  return out;
}

const char* to_string(Op op) {
  switch (op) {
    case Op::kEF: return "EF";
    case Op::kAF: return "AF";
    case Op::kEG: return "EG";
    case Op::kAG: return "AG";
    case Op::kEU: return "EU";
    case Op::kAU: return "AU";
  }
  return "?";
}

}  // namespace hbct
