#include "detect/brute_force.h"

#include "util/assert.h"

namespace hbct {

LatticeChecker::LatticeChecker(const Computation& c, std::size_t max_nodes)
    : lat_(Lattice::build(c, max_nodes)) {}

LatticeChecker::LatticeChecker(Lattice lattice) : lat_(std::move(lattice)) {}

std::vector<char> LatticeChecker::label(const Predicate& p,
                                        DetectStats* st) const {
  std::vector<char> out(lat_.size());
  for (NodeId v = 0; v < lat_.size(); ++v) {
    out[v] = p.eval(lat_.computation(), lat_.cut(v)) ? 1 : 0;
    if (st) ++st->predicate_evals;
  }
  return out;
}

// All operator labelings sweep the topological order backwards (from the
// final cut down), so successor labels are final when a node is processed.

std::vector<char> LatticeChecker::ef(const std::vector<char>& p) const {
  std::vector<char> out(lat_.size(), 0);
  const auto& topo = lat_.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId v = *it;
    char r = p[v];
    for (NodeId s : lat_.successors(v)) {
      if (r) break;
      r = out[s];
    }
    out[v] = r;
  }
  return out;
}

std::vector<char> LatticeChecker::af(const std::vector<char>& p) const {
  std::vector<char> out(lat_.size(), 0);
  const auto& topo = lat_.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId v = *it;
    char r = p[v];
    if (!r) {
      const auto succ = lat_.successors(v);
      if (!succ.empty()) {
        r = 1;
        for (NodeId s : succ) r = static_cast<char>(r && out[s]);
      }
    }
    out[v] = r;
  }
  return out;
}

std::vector<char> LatticeChecker::eg(const std::vector<char>& p) const {
  std::vector<char> out(lat_.size(), 0);
  const auto& topo = lat_.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId v = *it;
    char r = 0;
    if (p[v]) {
      const auto succ = lat_.successors(v);
      if (succ.empty()) {
        r = 1;  // the final cut: the path may end here
      } else {
        for (NodeId s : succ) {
          if ((r = out[s])) break;
        }
      }
    }
    out[v] = r;
  }
  return out;
}

std::vector<char> LatticeChecker::ag(const std::vector<char>& p) const {
  std::vector<char> out(lat_.size(), 0);
  const auto& topo = lat_.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId v = *it;
    char r = p[v];
    for (NodeId s : lat_.successors(v)) {
      if (!r) break;
      r = static_cast<char>(r && out[s]);
    }
    out[v] = r;
  }
  return out;
}

std::vector<char> LatticeChecker::eu(const std::vector<char>& p,
                                     const std::vector<char>& q) const {
  std::vector<char> out(lat_.size(), 0);
  const auto& topo = lat_.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId v = *it;
    char r = q[v];
    if (!r && p[v]) {
      for (NodeId s : lat_.successors(v)) {
        if ((r = out[s])) break;
      }
    }
    out[v] = r;
  }
  return out;
}

std::vector<char> LatticeChecker::au(const std::vector<char>& p,
                                     const std::vector<char>& q) const {
  std::vector<char> out(lat_.size(), 0);
  const auto& topo = lat_.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId v = *it;
    char r = q[v];
    if (!r && p[v]) {
      const auto succ = lat_.successors(v);
      if (!succ.empty()) {
        r = 1;
        for (NodeId s : succ) r = static_cast<char>(r && out[s]);
      }
    }
    out[v] = r;
  }
  return out;
}

DetectResult LatticeChecker::detect(Op op, const Predicate& p,
                                    const Predicate* q) const {
  DetectResult r;
  r.algorithm = "lattice-brute-force";
  r.stats.lattice_nodes = lat_.size();
  r.stats.lattice_edges = lat_.num_edges();
  const std::vector<char> lp = label(p, &r.stats);
  std::vector<char> res;
  switch (op) {
    case Op::kEF: res = ef(lp); break;
    case Op::kAF: res = af(lp); break;
    case Op::kEG: res = eg(lp); break;
    case Op::kAG: res = ag(lp); break;
    case Op::kEU:
    case Op::kAU: {
      HBCT_ASSERT_MSG(q != nullptr, "EU/AU require a second predicate");
      const std::vector<char> lq = label(*q, &r.stats);
      res = op == Op::kEU ? eu(lp, lq) : au(lp, lq);
      break;
    }
  }
  r.holds = res[lat_.bottom()] != 0;
  return r;
}

BruteClassCheck brute_check_classes(const LatticeChecker& chk,
                                    const Predicate& p) {
  const Lattice& lat = chk.lattice();
  const std::vector<char> lp = chk.label(p);

  BruteClassCheck out;
  std::vector<NodeId> sat;
  for (NodeId v = 0; v < lat.size(); ++v)
    if (lp[v]) sat.push_back(v);

  out.linear = true;
  out.post_linear = true;
  for (std::size_t a = 0; a < sat.size(); ++a) {
    for (std::size_t b = a + 1; b < sat.size(); ++b) {
      if (out.linear && !lp[lat.meet(sat[a], sat[b])]) out.linear = false;
      if (out.post_linear && !lp[lat.join(sat[a], sat[b])])
        out.post_linear = false;
      if (!out.linear && !out.post_linear) break;
    }
    if (!out.linear && !out.post_linear) break;
  }
  out.regular = out.linear && out.post_linear;

  out.stable = true;
  for (NodeId v = 0; v < lat.size() && out.stable; ++v) {
    if (!lp[v]) continue;
    for (NodeId s : lat.successors(v))
      if (!lp[s]) {
        out.stable = false;
        break;
      }
  }

  out.observer_independent =
      chk.ef(lp)[lat.bottom()] == chk.af(lp)[lat.bottom()];
  return out;
}

const char* to_string(Op op) {
  switch (op) {
    case Op::kEF: return "EF";
    case Op::kAF: return "AF";
    case Op::kEG: return "EG";
    case Op::kAG: return "AG";
    case Op::kEU: return "EU";
    case Op::kAU: return "AU";
  }
  return "?";
}

}  // namespace hbct
