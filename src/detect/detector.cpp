#include "detect/detector.h"

#include <atomic>

namespace hbct {

namespace {
std::atomic<bool> g_cursor_eval_enabled{true};
}  // namespace

void set_cursor_eval_enabled(bool on) {
  g_cursor_eval_enabled.store(on, std::memory_order_relaxed);
}

bool cursor_eval_enabled() {
  return g_cursor_eval_enabled.load(std::memory_order_relaxed);
}

}  // namespace hbct
