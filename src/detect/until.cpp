#include "detect/until.h"

#include <algorithm>

#include "detect/conjunctive_gw.h"
#include "detect/ef_linear.h"
#include "util/assert.h"

namespace hbct {

namespace {
std::size_t sz(std::int32_t v) { return static_cast<std::size_t>(v); }
}  // namespace

DetectResult detect_eu_at(const Computation& c, const ConjunctivePredicate& p,
                          const Cut& iq) {
  DetectResult r;
  r.algorithm = "A3-eu (given I_q)";
  HBCT_ASSERT_MSG(c.is_consistent(iq), "I_q must be a consistent cut");

  // Zero-length prefix: q already holds at the initial cut.
  const Cut initial = c.initial_cut();
  if (iq == initial) {
    r.holds = true;
    r.witness_cut = initial;
    r.witness_path = {initial};
    return r;
  }

  // Step 2 of A3: EG(p) in some sub-computation E' = I_q \ {e},
  // e in frontier(I_q).
  for (ProcId i : c.frontier_procs(iq)) {
    const Cut sub = c.retreat(iq, i);
    Computation prefix = c.prefix(sub);
    DetectResult eg = detect_eg_conjunctive(prefix, p);
    r.stats += eg.stats;
    ++r.stats.cut_steps;
    if (eg.holds) {
      r.holds = true;
      r.witness_path = std::move(eg.witness_path);
      r.witness_path.push_back(iq);
      r.witness_cut = iq;
      return r;
    }
  }
  return r;
}

DetectResult detect_eu(const Computation& c, const ConjunctivePredicate& p,
                       const Predicate& q) {
  DetectResult r;
  r.algorithm = "A3-eu";
  CountingEval evq(q, c, r.stats);

  // Zero-length prefix: q at the initial cut.
  const Cut initial = c.initial_cut();
  if (evq(initial)) {
    r.holds = true;
    r.witness_cut = initial;
    r.witness_path = {initial};
    return r;
  }

  // Step 1: I_q, the least cut satisfying q (Chase–Garg).
  auto iq = least_satisfying_cut(c, q, r.stats);
  if (!iq) return r;

  DetectResult inner = detect_eu_at(c, p, *iq);
  inner.algorithm = "A3-eu";
  inner.stats += r.stats;
  return inner;
}

DetectResult detect_au_disjunctive(const Computation& c,
                                   const DisjunctivePredicate& p,
                                   const DisjunctivePredicate& q) {
  DetectResult r;
  r.algorithm = "au-disjunctive = !(eg(!q) | eu(!q, !p & !q))";

  auto notq = as_conjunctive(q.negate());
  HBCT_ASSERT(notq);

  // EG(¬q): a path on which q never holds refutes A[p U q].
  DetectResult eg = detect_eg_conjunctive(c, *notq);
  r.stats += eg.stats;
  if (eg.holds) {
    r.holds = false;
    r.witness_path = std::move(eg.witness_path);  // counterexample path
    return r;
  }

  // E[¬q U (¬p ∧ ¬q)]: a path reaching a cut where neither p nor q holds,
  // with q false all the way, also refutes A[p U q]. ¬p ∧ ¬q is a
  // conjunction of two conjunctive predicates — conjunctive, hence linear.
  auto notp = as_conjunctive(p.negate());
  HBCT_ASSERT(notp);
  std::vector<LocalPredicatePtr> merged = notp->locals();
  merged.insert(merged.end(), notq->locals().begin(), notq->locals().end());
  auto notp_and_notq = make_conjunctive(std::move(merged));

  DetectResult eu = detect_eu(c, *notq, *notp_and_notq);
  r.stats += eu.stats;
  r.holds = !eu.holds;
  if (eu.holds) r.witness_path = std::move(eu.witness_path);  // counterexample
  return r;
}

}  // namespace hbct
