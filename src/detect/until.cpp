#include "detect/until.h"

#include <algorithm>

#include "detect/conjunctive_gw.h"
#include "detect/ef_linear.h"
#include "detect/parallel.h"
#include "detect/until_inc.h"
#include "obs/trace.h"
#include "util/assert.h"

namespace hbct {

DetectResult detect_eu_at(const Computation& c, const ConjunctivePredicate& p,
                          const Cut& iq, std::size_t parallelism,
                          const Budget& budget) {
  if (until_inc_enabled()) {
    // Shared-state mode: one transient EG(p) table serves every frontier
    // branch, so overlapping sub-lattice sweeps are scanned once and
    // replayed arithmetically after that. Bit-identical to the batch sweep
    // below (verdict, witness, bound, stats) at every width and budget —
    // tests/test_until_inc.cpp holds the two paths to that contract.
    EgPrefixState state;
    state.bind(c, p, /*instrumented=*/false);
    return state.decide_at(iq, budget, /*want_path=*/true);
  }
  DetectResult r;
  r.algorithm = "A3-eu (given I_q)";
  HBCT_ASSERT_MSG(c.is_consistent(iq), "I_q must be a consistent cut");
  ScopedSpan span(budget.trace, "eu.frontier-sweep");
  BudgetTracker t(budget, r.stats);
  if (!t.ok()) return mark_bounded(r, t);

  // Zero-length prefix: q already holds at the initial cut.
  const Cut initial = c.initial_cut();
  if (iq == initial) {
    r.verdict = Verdict::kHolds;
    r.witness_cut = initial;
    r.witness_path = {initial};
    return r;
  }

  // Step 2 of A3: EG(p) in some sub-computation E' = I_q \ {e},
  // e in frontier(I_q). The sub-computations are independent, so the sweep
  // fans out across the pool, committing to the lowest frontier index that
  // succeeds. Each branch gets its own budget over its own stats — sharing a
  // tracker across threads would make the trip point depend on scheduling
  // and break the bit-identical-across-widths guarantee.
  const std::vector<ProcId> frontier = c.frontier_procs(iq);
  FirstMatch m = detect_first_match(
      parallelism, frontier.size(),
      [&](std::size_t k) {
        // EG(p) over the prefix sublattice below retreat(I_q, e) — scanned
        // in place instead of materializing a prefix Computation per branch.
        const Cut sub = c.retreat(iq, frontier[k]);
        DetectResult eg = detect_eg_conjunctive_within(c, p, sub, budget);
        ++eg.stats.cut_steps;  // the retreat that formed this sub-computation
        return eg;
      },
      [](const DetectResult& eg) { return eg.verdict == Verdict::kHolds; },
      r.stats, budget.trace, "eu.frontier-fanout");
  span.arg("frontier", static_cast<std::int64_t>(frontier.size()));
  if (m.found()) {
    // A witness prefix is definite even if some earlier branch was bounded.
    r.verdict = Verdict::kHolds;
    r.witness_path = std::move(m.result.witness_path);
    r.witness_path.push_back(iq);
    r.witness_cut = iq;
  } else if (m.bound != BoundReason::kNone) {
    r.verdict = Verdict::kUnknown;
    r.bound = m.bound;
  }
  return r;
}

DetectResult detect_eu(const Computation& c, const ConjunctivePredicate& p,
                       const Predicate& q, std::size_t parallelism,
                       const Budget& budget) {
  DetectResult r;
  r.algorithm = "A3-eu";
  ScopedSpan span(budget.trace, "eu.a3");
  BudgetTracker t(budget, r.stats);
  CountingEval evq(q, c, r.stats, &t);

  if (!t.ok()) return mark_bounded(r, t);
  // Zero-length prefix: q at the initial cut.
  const Cut initial = c.initial_cut();
  if (evq(initial)) {
    r.verdict = Verdict::kHolds;
    r.witness_cut = initial;
    r.witness_path = {initial};
    return r;
  }
  if (t.exceeded()) return mark_bounded(r, t);

  // Step 1: I_q, the least cut satisfying q (Chase–Garg).
  std::optional<Cut> iq;
  {
    ScopedSpan s(budget.trace, "eu.least-cut-of-q");
    iq = least_satisfying_cut(c, q, r.stats, nullptr, &t);
  }
  if (t.exceeded()) return mark_bounded(r, t);
  if (!iq) return r;

  DetectResult inner = detect_eu_at(c, p, *iq, parallelism, budget);
  inner.algorithm = "A3-eu";
  inner.stats += r.stats;
  return inner;
}

DetectResult detect_au_disjunctive(const Computation& c,
                                   const DisjunctivePredicate& p,
                                   const DisjunctivePredicate& q,
                                   std::size_t parallelism,
                                   const Budget& budget) {
  DetectResult r;
  r.algorithm = "au-disjunctive = !(eg(!q) | eu(!q, !p & !q))";
  ScopedSpan span(budget.trace, "au.disjunctive");
  BudgetTracker t(budget, r.stats);
  if (!t.ok()) return mark_bounded(r, t);

  auto notq = as_conjunctive(q.negate());
  HBCT_ASSERT(notq);

  // The two refuters are independent; run them as a (tiny) fan-out.
  // Branch 0 — EG(¬q): a path on which q never holds refutes A[p U q].
  // Branch 1 — E[¬q U (¬p ∧ ¬q)]: a path reaching a cut where neither p nor
  // q holds, with q false all the way, also refutes A[p U q]. ¬p ∧ ¬q is a
  // conjunction of two conjunctive predicates — conjunctive, hence linear.
  FirstMatch m = detect_first_match(
      parallelism, 2,
      [&](std::size_t k) {
        if (k == 0) return detect_eg_conjunctive(c, *notq, budget);
        auto notp = as_conjunctive(p.negate());
        HBCT_ASSERT(notp);
        std::vector<LocalPredicatePtr> merged = notp->locals();
        merged.insert(merged.end(), notq->locals().begin(),
                      notq->locals().end());
        auto notp_and_notq = make_conjunctive(std::move(merged));
        return detect_eu(c, *notq, *notp_and_notq, 1, budget);
      },
      [](const DetectResult& sub) { return sub.verdict == Verdict::kHolds; },
      r.stats, budget.trace, "au.refuter-fanout");

  if (m.found()) {
    // A definite refuter decides kFails even if the other branch was
    // inconclusive (Kleene conjunction with a definite false operand).
    r.verdict = Verdict::kFails;
    r.witness_path = std::move(m.result.witness_path);
  } else if (m.bound != BoundReason::kNone) {
    r.verdict = Verdict::kUnknown;
    r.bound = m.bound;
  } else {
    r.verdict = Verdict::kHolds;
  }
  return r;
}

}  // namespace hbct
