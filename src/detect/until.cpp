#include "detect/until.h"

#include <algorithm>

#include "detect/conjunctive_gw.h"
#include "detect/ef_linear.h"
#include "detect/parallel.h"
#include "util/assert.h"

namespace hbct {

DetectResult detect_eu_at(const Computation& c, const ConjunctivePredicate& p,
                          const Cut& iq, std::size_t parallelism) {
  DetectResult r;
  r.algorithm = "A3-eu (given I_q)";
  HBCT_ASSERT_MSG(c.is_consistent(iq), "I_q must be a consistent cut");

  // Zero-length prefix: q already holds at the initial cut.
  const Cut initial = c.initial_cut();
  if (iq == initial) {
    r.holds = true;
    r.witness_cut = initial;
    r.witness_path = {initial};
    return r;
  }

  // Step 2 of A3: EG(p) in some sub-computation E' = I_q \ {e},
  // e in frontier(I_q). The sub-computations are independent, so the sweep
  // fans out across the pool, committing to the lowest frontier index that
  // succeeds.
  const std::vector<ProcId> frontier = c.frontier_procs(iq);
  FirstMatch m = detect_first_match(
      parallelism, frontier.size(),
      [&](std::size_t k) {
        const Cut sub = c.retreat(iq, frontier[k]);
        Computation prefix = c.prefix(sub);
        DetectResult eg = detect_eg_conjunctive(prefix, p);
        ++eg.stats.cut_steps;  // the retreat that formed this sub-computation
        return eg;
      },
      [](const DetectResult& eg) { return eg.holds; }, r.stats);
  if (m.found()) {
    r.holds = true;
    r.witness_path = std::move(m.result.witness_path);
    r.witness_path.push_back(iq);
    r.witness_cut = iq;
  }
  return r;
}

DetectResult detect_eu(const Computation& c, const ConjunctivePredicate& p,
                       const Predicate& q, std::size_t parallelism) {
  DetectResult r;
  r.algorithm = "A3-eu";
  CountingEval evq(q, c, r.stats);

  // Zero-length prefix: q at the initial cut.
  const Cut initial = c.initial_cut();
  if (evq(initial)) {
    r.holds = true;
    r.witness_cut = initial;
    r.witness_path = {initial};
    return r;
  }

  // Step 1: I_q, the least cut satisfying q (Chase–Garg).
  auto iq = least_satisfying_cut(c, q, r.stats);
  if (!iq) return r;

  DetectResult inner = detect_eu_at(c, p, *iq, parallelism);
  inner.algorithm = "A3-eu";
  inner.stats += r.stats;
  return inner;
}

DetectResult detect_au_disjunctive(const Computation& c,
                                   const DisjunctivePredicate& p,
                                   const DisjunctivePredicate& q,
                                   std::size_t parallelism) {
  DetectResult r;
  r.algorithm = "au-disjunctive = !(eg(!q) | eu(!q, !p & !q))";

  auto notq = as_conjunctive(q.negate());
  HBCT_ASSERT(notq);

  // The two refuters are independent; run them as a (tiny) fan-out.
  // Branch 0 — EG(¬q): a path on which q never holds refutes A[p U q].
  // Branch 1 — E[¬q U (¬p ∧ ¬q)]: a path reaching a cut where neither p nor
  // q holds, with q false all the way, also refutes A[p U q]. ¬p ∧ ¬q is a
  // conjunction of two conjunctive predicates — conjunctive, hence linear.
  FirstMatch m = detect_first_match(
      parallelism, 2,
      [&](std::size_t k) {
        if (k == 0) return detect_eg_conjunctive(c, *notq);
        auto notp = as_conjunctive(p.negate());
        HBCT_ASSERT(notp);
        std::vector<LocalPredicatePtr> merged = notp->locals();
        merged.insert(merged.end(), notq->locals().begin(),
                      notq->locals().end());
        auto notp_and_notq = make_conjunctive(std::move(merged));
        return detect_eu(c, *notq, *notp_and_notq);
      },
      [](const DetectResult& sub) { return sub.holds; }, r.stats);

  r.holds = !m.found();
  if (m.found()) r.witness_path = std::move(m.result.witness_path);
  return r;
}

}  // namespace hbct
