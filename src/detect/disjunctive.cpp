#include "detect/disjunctive.h"

#include <algorithm>

#include "detect/conjunctive_gw.h"
#include "detect/ef_linear.h"
#include "obs/trace.h"
#include "predicate/conjunctive.h"
#include "util/assert.h"

namespace hbct {

DetectResult detect_ef_disjunctive(const Computation& c,
                                   const DisjunctivePredicate& p,
                                   const Budget& budget) {
  DetectResult r;
  r.algorithm = "ef-disjunctive-scan";
  ScopedSpan span(budget.trace, "ef.disjunctive-scan");
  BudgetTracker t(budget, r.stats);
  if (!t.ok()) return mark_bounded(r, t);
  for (const auto& local : p.locals()) {
    const ProcId i = local->proc();
    if (i >= c.num_procs()) continue;
    const LocalEval le(c, *local);
    for (EventIndex pos = 0; pos <= c.num_events(i); ++pos) {
      if (!t.ok()) return mark_bounded(r, t);
      ++r.stats.predicate_evals;
      if (le(pos)) {
        r.verdict = Verdict::kHolds;
        r.witness_cut =
            pos == 0 ? c.initial_cut() : c.join_irreducible_of(i, pos);
        return r;
      }
    }
  }
  return r;
}

DetectResult detect_af_disjunctive(const Computation& c,
                                   const DisjunctivePredicate& p,
                                   const Budget& budget) {
  DetectResult r = detect_ef_disjunctive(c, p, budget);
  r.algorithm = "af-disjunctive = ef (observer-independent)";
  return r;
}

DetectResult detect_eg_disjunctive(const Computation& c,
                                   const DisjunctivePredicate& p,
                                   const Budget& budget) {
  // EG(q) = ¬AF(¬q): some path keeps q true everywhere iff the negated
  // conjunctive predicate does not *definitely* hold (Garg–Waldecker
  // unavoidable-box search, see detect_af_conjunctive).
  auto notp = as_conjunctive(p.negate());
  HBCT_ASSERT(notp);
  ScopedSpan span(budget.trace, "eg.disjunctive-negation");
  DetectResult inner = detect_af_conjunctive(c, *notp, budget);
  DetectResult r;
  r.algorithm = "eg-disjunctive = !af-conjunctive(!p)";
  r.stats = inner.stats;
  r.verdict = negate(inner.verdict);
  r.bound = inner.bound;
  return r;
}

DetectResult detect_ag_disjunctive(const Computation& c,
                                   const DisjunctivePredicate& p,
                                   const Budget& budget) {
  auto notp = as_conjunctive(p.negate());
  HBCT_ASSERT(notp);
  DetectResult r;
  r.algorithm = "ag-disjunctive = !ef-conjunctive(!p)";
  ScopedSpan span(budget.trace, "ag.disjunctive-negation");
  BudgetTracker t(budget, r.stats);
  auto bad = least_satisfying_cut(c, *notp, r.stats, nullptr, &t);
  if (t.exceeded()) return mark_bounded(r, t);
  r.verdict = verdict_of(!bad.has_value());
  if (bad) r.witness_cut = std::move(*bad);
  return r;
}

}  // namespace hbct
