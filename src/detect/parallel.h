// Deterministic parallel fan-out for the detection algorithms.
//
// Every independent fan-out in the detection stack — the dispatcher's
// or-/and-splits, A3's per-frontier-event EG sweep, AU's two refuters — has
// the same shape: evaluate N independent branches and commit to the LOWEST-
// indexed branch that "hits", accounting exactly the work a sequential
// early-exit loop would have done. detect_first_match runs that shape either
// inline (parallelism <= 1) or on ThreadPool::shared(), with identical
// results either way: the winner is selected by index, not by finish order,
// and only the stats of branches the sequential loop would have evaluated
// (0..winner, or all of them when nothing hits) are merged. Work done
// speculatively past the winner is discarded, so DetectResult — verdict,
// witnesses, *and* operation counts — is bit-identical across parallelism
// levels. Each branch fills its own DetectStats and the merge happens at
// join, so no counter is ever shared between threads.
#pragma once

#include <cstddef>
#include <functional>

#include "detect/detector.h"

namespace hbct {

/// Resolves a parallelism knob: 0 means one branch per shared-pool worker
/// (hardware concurrency, floor 4), any other value is taken literally.
std::size_t resolve_parallelism(std::size_t parallelism);

/// Outcome of a first-match fan-out: the lowest hitting branch, or none.
struct FirstMatch {
  static constexpr std::size_t npos = ~static_cast<std::size_t>(0);
  std::size_t index = npos;
  DetectResult result;  // the winning branch's result; valid iff found()
  /// Bound reason of the lowest-indexed merged branch that ran out of budget
  /// (kNone when every merged branch completed). When !found() and
  /// bound != kNone, some branch was inconclusive, so "no branch hit" is NOT
  /// a definite negative — callers must degrade to Verdict::kUnknown.
  /// Deterministic across parallelism levels: only branches the sequential
  /// early-exit loop would have evaluated are considered.
  BoundReason bound = BoundReason::kNone;
  bool found() const { return index != npos; }
};

/// Evaluates eval(i) for i in [0, count) looking for the lowest index whose
/// result satisfies `hit`, sequentially (parallelism <= 1, early exit at the
/// winner) or concurrently on the shared pool. `eval` must be thread-safe
/// for parallelism != 1. Branch stats are merged into `stats` exactly as the
/// sequential loop would: branches 0..winner inclusive, all when no hit.
///
/// When `trace` is non-null, the fan-out records a span named `span_name`
/// (falling back to "fanout") with one "fanout.branch" child per evaluated
/// branch — children run on pool workers, so they parent on the fan-out
/// span explicitly — and updates the tracer's registry: deterministic
/// counters parallel.fanouts / parallel.branches.merged (identical at every
/// parallelism, mirroring the stats guarantee) and scheduling-dependent
/// parallel.branches.superseded / parallel.queue_depth.max (speculative
/// work discarded past the winner; shared-pool backlog high-water mark).
FirstMatch detect_first_match(
    std::size_t parallelism, std::size_t count,
    const std::function<DetectResult(std::size_t)>& eval,
    const std::function<bool(const DetectResult&)>& hit, DetectStats& stats,
    Tracer* trace = nullptr, const char* span_name = nullptr);

}  // namespace hbct
