#include "detect/control.h"

#include "detect/eg_linear.h"
#include "util/assert.h"

namespace hbct {

std::vector<EventId> schedule_from_path(const Computation& c,
                                        const std::vector<Cut>& path) {
  std::vector<EventId> out;
  HBCT_ASSERT_MSG(!path.empty() && path.front() == c.initial_cut(),
                  "schedule must start at the initial cut");
  out.reserve(path.size() - 1);
  for (std::size_t k = 1; k < path.size(); ++k) {
    const Cut& prev = path[k - 1];
    const Cut& next = path[k];
    HBCT_ASSERT_MSG(next.total() == prev.total() + 1,
                    "path steps must add exactly one event");
    ProcId moved = -1;
    for (ProcId i = 0; i < c.num_procs(); ++i) {
      const auto d = next[static_cast<std::size_t>(i)] -
                     prev[static_cast<std::size_t>(i)];
      if (d == 0) continue;
      HBCT_ASSERT_MSG(d == 1 && moved < 0, "path steps must be covers");
      moved = i;
    }
    out.push_back(EventId{moved, next[static_cast<std::size_t>(moved)]});
  }
  return out;
}

std::vector<EventId> control_schedule(const Computation& c,
                                      const Predicate& p) {
  DetectResult r = detect_eg_linear(c, p);
  if (r.verdict != Verdict::kHolds) return {};
  return schedule_from_path(c, r.witness_path);
}

}  // namespace hbct
