// Diagonal-chain detection for equilevel predicates (kClassEquilevel).
//
// All satisfying cuts of an equilevel predicate lie on the chain
// C_l = (l, ..., l), l = 0..L = min_i |E_i|, so:
//
//   EF p : ∃ consistent C_l with p(C_l) — scan the chain upward; the first
//          hit is the least satisfying cut.
//   AG p : any off-diagonal consistent cut falsifies p, and one exists as
//          soon as n >= 2 and |E| >= 1 (advance the initial cut by the
//          first linearization event). Otherwise (n <= 1, or no events)
//          every consistent cut is on the chain: scan it.
//   EG p : a lattice path advances one process at a time, so with n >= 2 it
//          leaves the diagonal at its very first step — EG fails whenever
//          n >= 2 and |E| >= 1. For n <= 1 the chain IS the only path.
//   AF   : not chain-decidable (observations can avoid the diagonal
//          entirely); the planner never routes AF here.
//
// Each chain cut costs one O(n^2) consistency test plus one evaluation:
// O(n^2 min|E_i|) total, against the worst-case-exponential fallback the
// same predicates would otherwise take.
#pragma once

#include "detect/detector.h"

namespace hbct {

DetectResult detect_equilevel(const Computation& c, const Predicate& p, Op op,
                              const Budget& budget);

}  // namespace hbct
