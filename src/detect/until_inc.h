// Incremental until evaluation: amortizing A3's decision-time walk.
//
// Theorem 7 decides E[p U q] at I_q by sweeping the frontier of I_q and
// running EG(p) over each prefix sublattice E' = I_q \ {e}. For a
// conjunctive p those EG sweeps are linear scans of the conjuncts'
// timelines — and they overlap almost completely: branch k asks "is every
// conjunct true at every local position 0..sub_k[i]", which is fully
// determined by each conjunct's *least false position*. Conjunctive
// predicates are canonicalized to at most one conjunct per process, so the
// whole family of sweeps collapses into one tiny table:
//
//   first_false[l] — least position where conjunct l is false (none yet),
//   scanned[l]     — exclusive upper bound of the range evaluated so far.
//
// EgPrefixState maintains that table. It can be advanced as events arrive
// (the online monitor feeds newly frozen positions in µs-sized slices under
// its round budget), and a decision at any cut then costs O(frontier)
// table lookups plus a lazy extension of whatever tail the feed has not
// reached — instead of a full prefix sweep at fire time.
//
// Bit-identity contract. decide_at() returns exactly what the batch
// detect_eu_at() would: same verdict, same witness cut and path, same
// BoundReason, and the same DetectStats — at every parallelism width and
// under every budget. Stats parity is achieved by *replaying* the batch
// sweep's accounting: spans whose outcome the table already knows are
// charged arithmetically through BudgetTracker::charge_evals (which
// reproduces the per-evaluation checkpoint semantics, including the trip
// point), so the reported predicate_evals/cut_steps equal the batch scan's
// logical work even though far fewer physical evaluations ran. The
// physical work is visible separately through the until_inc_evals /
// until_dec_evals counters, which only the instrumented (online) mode
// bumps — the offline shared-state mode is stats-invisible.
//
// GC interaction (online). The table only ever reads local positions
// >= scanned[l], and a conjunct whose first false position is known is
// never read again (the decision consumes the stored index, not the
// timeline). This is what lets OnlineMonitor::min_watch_frontier pin an
// undecided until watch at min(cand[i], scan floor) instead of 0 — see
// scan_floor() and DESIGN.md §18 for the soundness argument.
#pragma once

#include <cstdint>
#include <vector>

#include "detect/detector.h"
#include "predicate/conjunctive.h"

namespace hbct {

/// Shared EG(p)-over-prefix decision state for one (computation, predicate)
/// pair. Cheap to construct; bind() before use. Not thread-safe — each
/// online watch owns one, and the offline path creates a transient one per
/// detection.
class EgPrefixState {
 public:
  EgPrefixState() = default;

  /// Binds the table to `c` and `p` (both must outlive the state; online
  /// use relies on OnlineAppender's Computation being a stable member).
  /// `instrumented` turns on the physical-work counters
  /// (until_inc_evals/until_dec_evals); the offline shared-state mode
  /// leaves it off so batch-written golden stats stay byte-identical.
  void bind(const Computation& c, const ConjunctivePredicate& p,
            bool instrumented);
  bool bound() const { return pred_ != nullptr; }

  /// Feed-time amortization: evaluates the not-yet-scanned positions of
  /// every undecided conjunct up to limits[proc] (inclusive), charging one
  /// predicate_evals (+ until_inc_evals when instrumented) per physical
  /// evaluation into `st`. When `t` is non-null every evaluation is gated
  /// on t->ok(); a tripped tracker suspends the advance mid-scan, and the
  /// next call resumes where it left off. A conjunct whose first false
  /// position is found stops scanning permanently.
  void advance_to(const Cut& limits, DetectStats& st, BudgetTracker* t);

  /// Replays detect_eu_at(c, p, iq, parallelism, budget) off the table:
  /// bit-identical verdict, witness cut, BoundReason and DetectStats.
  /// `want_path` additionally rebuilds the batch witness path (offline
  /// only — the online monitor passes false because prefix GC may have
  /// trimmed the linearization the path is built from, and WatchFire does
  /// not carry paths).
  DetectResult decide_at(const Cut& iq, const Budget& budget, bool want_path);

  /// Least local position of process i the table may still physically
  /// read: the scan resume point of i's conjunct, or `fallback` when i has
  /// no conjunct or its conjunct is already decided. Monotone
  /// nondecreasing; the online GC frontier uses it to pin only the
  /// still-needed prefix.
  EventIndex scan_floor(ProcId i, EventIndex fallback) const;

  /// Approximate heap footprint of the table, for the serve layer's
  /// watch-state sizing gauge.
  std::size_t state_bytes() const;

 private:
  enum class Sim : std::uint8_t { kAllTrue, kFalse, kTripped };

  /// Replays the batch scan of conjunct l over positions 0..last. Spans
  /// with a known outcome are charged arithmetically; the unknown tail is
  /// evaluated for real (extending the table). On kFalse, *false_pos is
  /// the position batch would have reported.
  Sim sim_scan(std::size_t l, EventIndex last, DetectStats& st,
               BudgetTracker& t, EventIndex* false_pos);

  /// One replayed EG(p) branch over the prefix sublattice below `k`
  /// (detect_eg_conjunctive_within equivalent).
  DetectResult eg_within(const Cut& k, const Budget& budget, bool want_path);

  const Computation* c_ = nullptr;
  const ConjunctivePredicate* pred_ = nullptr;
  bool instrumented_ = false;
  // Parallel arrays over pred_->locals() (sorted by proc, <=1 per proc).
  std::vector<ProcId> procs_;
  std::vector<EventIndex> first_false_;  // -1: none in the scanned range
  std::vector<EventIndex> scanned_;      // next unevaluated position
};

/// Process-wide testing switch for the incremental until evaluator. On by
/// default; the differential suite (tests/test_until_inc.cpp) flips it off
/// to force detect_eu_at back onto the batch frontier sweep and compares
/// verdicts, witnesses, bounds and stats bit for bit. Declared here next
/// to the machinery it gates; same contract as set_cursor_eval_enabled.
void set_until_inc_enabled(bool on);
bool until_inc_enabled();

}  // namespace hbct
