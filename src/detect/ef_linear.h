// Chase–Garg detection of EF(p) (possibly: p) for linear predicates, and the
// dual for post-linear predicates.
//
// The advancement algorithm walks a single cut from the initial cut upward.
// Whenever p is false, the linear-advancement oracle names a forbidden
// process i: no satisfying cut above the current one freezes i, so the next
// event of i — together with its causal past J(e) — is added. Because the
// satisfying set of a linear predicate is meet-closed, the walk terminates at
// the *least* satisfying cut I_p, or proves none exists. O(n|E|) cut work
// plus one predicate evaluation per advancement.
#pragma once

#include "detect/detector.h"

namespace hbct {

/// Least consistent cut satisfying linear p, or nullopt. `start` (default:
/// the initial cut) restricts the search to cuts above `start`; pass J(e)
/// to compute the slice element J_p(e). Precondition: p is linear on c.
/// An optional BudgetTracker bounds the walk: a nullopt return with the
/// tracker tripped means the walk was cut short, not that no cut exists.
std::optional<Cut> least_satisfying_cut(const Computation& c,
                                        const Predicate& p, DetectStats& st,
                                        const Cut* start = nullptr,
                                        BudgetTracker* budget = nullptr);

/// Greatest consistent cut satisfying post-linear p (dual walk downward
/// from the final cut), or nullopt. Budget semantics as above.
std::optional<Cut> greatest_satisfying_cut(const Computation& c,
                                           const Predicate& p,
                                           DetectStats& st,
                                           const Cut* start = nullptr,
                                           BudgetTracker* budget = nullptr);

/// EF(p) for linear p; witness_cut = I_p when holds.
DetectResult detect_ef_linear(const Computation& c, const Predicate& p,
                              const Budget& budget = {});

/// EF(p) for post-linear p; witness_cut = greatest satisfying cut.
DetectResult detect_ef_post_linear(const Computation& c, const Predicate& p,
                                   const Budget& budget = {});

}  // namespace hbct
