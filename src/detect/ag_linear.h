// Algorithm A2 (Fig. 1): AG(p) — invariant: p — for linear predicates.
//
// By Birkhoff's representation theorem every consistent cut except the final
// cut is the meet of the meet-irreducible cuts above it (Corollary 4), and
// for a linear (meet-closed) predicate truth at the meet-irreducibles
// implies truth at all their meets. So AG(p) ⟺ p holds at every
// M(e) = E \ up-set(e) and at the final cut: |E| + 1 evaluations. The
// meet-irreducibles come straight from the reverse vector clocks in O(n|E|)
// (improving on the O(n^2|E|) slicing route the paper cites).
//
// The dual detects post-linear predicates on the join-irreducibles
// J(e) = down-set(e) plus the initial cut.
#pragma once

#include "detect/detector.h"

namespace hbct {

/// AG(p) for linear p. On failure witness_cut is a violating cut.
DetectResult detect_ag_linear(const Computation& c, const Predicate& p,
                              const Budget& budget = {});

/// AG(p) for post-linear p (join-irreducibles + initial cut).
DetectResult detect_ag_post_linear(const Computation& c,
                                   const Predicate& p,
                                   const Budget& budget = {});

}  // namespace hbct
