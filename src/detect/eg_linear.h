// Algorithm A1 (Fig. 1): EG(p) — controllable: p — for linear predicates.
//
// A1 walks one cut from the final cut down to the initial cut; at each step
// it moves to *any* predecessor that satisfies p. Lemma 1 of the paper
// guarantees that the choice does not matter: if any p-path exists, every
// greedy choice still reaches the initial cut. O(n|E|) predicate
// evaluations; the witness path it returns is a complete maximal consistent
// cut sequence on which p always holds.
//
// The dual detects post-linear predicates by walking upward from the
// initial cut (Section 5's closing remark).
#pragma once

#include "detect/detector.h"

namespace hbct {

/// EG(p) for linear p. witness_path (bottom → top) filled when holds.
DetectResult detect_eg_linear(const Computation& c, const Predicate& p,
                             const Budget& budget = {});

/// EG(p) for post-linear p: the same walk upward from the initial cut.
DetectResult detect_eg_post_linear(const Computation& c,
                                  const Predicate& p,
                                  const Budget& budget = {});

/// A1 with the next cut chosen uniformly at random among all satisfying
/// predecessors instead of the first one. Theorem 2 guarantees the verdict
/// is identical for every choice policy; this variant exists to validate
/// that claim (property tests) and to measure the cost of evaluating every
/// predecessor (ablation bench).
DetectResult detect_eg_linear_randomized(const Computation& c,
                                         const Predicate& p,
                                         std::uint64_t seed,
                                         const Budget& budget = {});

}  // namespace hbct
