// The front door of the library: class-aware algorithm dispatch.
//
// detect() inspects the predicate's effective classes on the given
// computation (Section 4's taxonomy) and routes to the cheapest applicable
// algorithm of Table 1, falling back to explicit search for arbitrary
// predicates. The chosen algorithm is reported in DetectResult::algorithm.
#pragma once

#include "detect/detector.h"
#include "detect/stable_oi.h"

namespace hbct {

struct DispatchOptions {
  /// State cap for the exponential fallbacks.
  SearchLimits limits;
  /// When false, detection aborts (assertion) instead of falling back to a
  /// worst-case-exponential search — useful in latency-bound monitors.
  bool allow_exponential = true;
};

/// Detects `op`(p) — or `op`(p, q) for kEU/kAU — on the computation.
DetectResult detect(const Computation& c, Op op, const PredicatePtr& p,
                    const PredicatePtr& q = nullptr,
                    const DispatchOptions& opt = {});

}  // namespace hbct
