// The front door of the library: class-aware algorithm dispatch.
//
// detect() inspects the predicate's effective classes on the given
// computation (Section 4's taxonomy) and routes to the cheapest applicable
// algorithm of Table 1, falling back to explicit search for arbitrary
// predicates. The chosen algorithm is reported in DetectResult::algorithm.
#pragma once

#include "detect/detector.h"
#include "detect/stable_oi.h"

namespace hbct {

struct DispatchOptions {
  /// State cap for the exponential fallbacks.
  SearchLimits limits;
  /// When false, detection aborts (assertion) instead of falling back to a
  /// worst-case-exponential search — useful in latency-bound monitors.
  bool allow_exponential = true;
  /// Number of branches evaluated concurrently in the independent fan-outs
  /// (the or-/and-splits, A3's frontier sweep, AU's two refuters). 1 =
  /// sequential (default); 0 = one branch per shared-pool worker. The
  /// verdict, witnesses and operation counts are identical for every value:
  /// fan-outs resolve to the lowest-index winning branch — never the first
  /// finisher — and speculative work past the winner is discarded.
  std::size_t parallelism = 1;
};

/// Detects `op`(p) — or `op`(p, q) for kEU/kAU — on the computation.
DetectResult detect(const Computation& c, Op op, const PredicatePtr& p,
                    const PredicatePtr& q = nullptr,
                    const DispatchOptions& opt = {});

}  // namespace hbct
