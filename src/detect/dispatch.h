// The front door of the library: class-aware algorithm dispatch.
//
// detect() inspects the predicate's effective classes on the given
// computation (Section 4's taxonomy) and routes to the cheapest applicable
// algorithm of Table 1, falling back to explicit search for arbitrary
// predicates. The chosen algorithm is reported in DetectResult::algorithm.
#pragma once

#include "analysis/audit.h"
#include "detect/detector.h"
#include "detect/stable_oi.h"

namespace hbct {

/// Pre-flight analysis attached to a detection (see DetectResult::plan and
/// DetectResult::diagnostics).
enum class AuditMode {
  /// No analysis; plan/diagnostics stay empty. The default — detection pays
  /// nothing.
  kOff,
  /// Predict the dispatch plan and lint it (W-diagnostics) before running.
  /// Costs a few virtual calls per query; never changes the verdict.
  kLintOnly,
  /// kLintOnly plus a semantic audit of every operand's claimed class bits
  /// (analysis/audit.h). A violation aborts the detection with
  /// Verdict::kUnknown and BoundReason::kAuditFailed — a lying class claim
  /// could otherwise produce a wrong *definite* verdict — and the refuting
  /// counterexample is reported as E-diagnostics.
  kFull,
};

/// What the CTL query optimizer (analysis/optimize.h) is allowed to do for
/// a query evaluated through ctl::evaluate_query. Predicate-level detect()
/// calls never rewrite (there is no AST to rewrite).
enum class OptimizeMode {
  /// No optimization; queries evaluate exactly as written. The default.
  kOff,
  /// Run the optimizer's analysis and attach the rewrite chain it *would*
  /// apply (DetectResult::rewrites, W008/W009 diagnostics), but evaluate
  /// the original query. Never changes the verdict, plan, or algorithm.
  kAnalyzeOnly,
  /// Apply the chosen equivalence-preserving rewrite chain and evaluate the
  /// optimized query. Verdicts are bit-identical to kOff on unbudgeted
  /// runs (the rewrites are sound); routes — and therefore budget behavior
  /// and witnesses — may differ, always within the three-valued contract.
  kApply,
};

struct DispatchOptions {
  /// Resource bounds honoured by every algorithm on the route: state cap
  /// for the exponential fallbacks, work budget (cut steps + predicate
  /// evaluations), wall-clock deadline and cooperative cancellation. A
  /// tripped bound yields Verdict::kUnknown with the BoundReason set —
  /// never a definite verdict that was not actually established.
  Budget budget;
  /// When false, a predicate with no polynomial algorithm yields kUnknown
  /// (BoundReason::kStateCap — the state exploration was refused) instead
  /// of falling back to a worst-case-exponential search — useful in
  /// latency-bound monitors.
  bool allow_exponential = true;
  /// Number of branches evaluated concurrently in the independent fan-outs
  /// (the or-/and-splits, A3's frontier sweep, AU's two refuters). 1 =
  /// sequential (default); 0 = one branch per shared-pool worker. The
  /// verdict, witnesses and operation counts are identical for every value:
  /// fan-outs resolve to the lowest-index winning branch — never the first
  /// finisher — and speculative work past the winner is discarded. Each
  /// branch is metered against its own copy of the budget, so Verdict and
  /// BoundReason are also identical for every value.
  std::size_t parallelism = 1;
  /// Pre-flight plan/lint/audit; see AuditMode. Applies to the top-level
  /// query only — sub-detections spawned by the distributive splits run
  /// with the analysis already done.
  AuditMode audit = AuditMode::kOff;
  /// Record a span trace of the detection (obs/trace.h). detect() creates a
  /// Tracer, threads it to every algorithm on the route via Budget::trace,
  /// and hands it out as DetectResult::trace, from which the caller can
  /// export Chrome trace JSON or the hbct.report/1 run report. Off by
  /// default: the disabled path costs one pointer test per instrumentation
  /// site (no clock reads, no allocation). Overrides any caller-set
  /// Budget::trace.
  bool trace = false;
  /// Budgets for AuditMode::kFull (lattice cap, sample count, seed).
  AuditOptions audit_options;
  /// Query-level rewrite optimization (ctl::evaluate_query only); see
  /// OptimizeMode. Appended last so aggregate initializers of the earlier
  /// fields keep compiling.
  OptimizeMode optimize = OptimizeMode::kOff;
};

/// Detects `op`(p) — or `op`(p, q) for kEU/kAU — on the computation.
DetectResult detect(const Computation& c, Op op, const PredicatePtr& p,
                    const PredicatePtr& q = nullptr,
                    const DispatchOptions& opt = {});

}  // namespace hbct
