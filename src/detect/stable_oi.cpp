#include "detect/stable_oi.h"

#include <algorithm>
#include <functional>
#include <vector>

#include "obs/trace.h"
#include "poset/cut_packer.h"
#include "util/assert.h"

namespace hbct {

DetectResult detect_stable(const Computation& c, const Predicate& p, Op op,
                           const Budget& budget) {
  DetectResult r;
  ScopedSpan span(budget.trace, "stable.endpoint-check");
  BudgetTracker t(budget, r.stats);
  CountingEval eval(p, c, r.stats, &t);
  switch (op) {
    case Op::kEF:
    case Op::kAF: {
      // Once true, always true: p appears somewhere iff it holds at the end.
      r.algorithm = "stable-final";
      Cut final = c.final_cut();
      const bool hit = eval(final);
      if (t.exceeded()) return mark_bounded(r, t);
      r.verdict = verdict_of(hit);
      if (hit) r.witness_cut = std::move(final);
      return r;
    }
    case Op::kEG:
    case Op::kAG: {
      // p at the initial cut stays true along every sequence.
      r.algorithm = "stable-initial";
      Cut initial = c.initial_cut();
      const bool hit = eval(initial);
      if (t.exceeded()) return mark_bounded(r, t);
      r.verdict = verdict_of(hit);
      if (!hit) r.witness_cut = std::move(initial);
      return r;
    }
    default:
      HBCT_ASSERT_MSG(false, "detect_stable handles EF/AF/EG/AG only");
  }
}

DetectResult detect_ef_observer_independent(const Computation& c,
                                            const Predicate& p,
                                            const Budget& budget) {
  DetectResult r;
  r.algorithm = "oi-single-observation";
  ScopedSpan span(budget.trace, "ef.oi-scan");
  BudgetTracker t(budget, r.stats);
  CountingEval eval(p, c, r.stats, &t);
  Cut g = c.initial_cut();
  eval.bind(g);
  span.arg("cursor", eval.incremental() ? 1 : 0);
  if (eval.at()) {
    r.verdict = Verdict::kHolds;
    r.witness_cut = std::move(g);
    return r;
  }
  if (t.exceeded()) return mark_bounded(r, t);
  for (const EventId& e : c.linearization()) {
    eval.advance(g, static_cast<std::size_t>(e.proc));
    ++r.stats.cut_steps;
    if (eval.at()) {
      r.verdict = Verdict::kHolds;
      r.witness_cut = std::move(g);
      return r;
    }
    if (t.exceeded()) return mark_bounded(r, t);
  }
  return r;
}

namespace {

/// Iterative DFS over consistent cuts. `expand` decides whether a cut's
/// successors are explored; `goal` stops the search. Returns the goal cut's
/// path if found. All four bounds (state cap, work budget, deadline,
/// cancellation) abort through the tracker: a nullopt return with
/// t.exceeded() means the search is inconclusive, not exhausted.
std::optional<std::vector<Cut>> dfs_cuts(
    const Computation& c, BudgetTracker& t, DetectStats& st,
    const std::function<bool(const Cut&)>& expand,
    const std::function<bool(const Cut&)>& goal) {
  CutSet visited(c);
  // Stack holds (cut, parent index into `order`) to rebuild paths.
  struct Frame {
    Cut cut;
    std::ptrdiff_t parent;
  };
  std::vector<Frame> order;
  std::vector<std::ptrdiff_t> stack;

  if (!t.ok()) return std::nullopt;
  const Cut init = c.initial_cut();
  if (goal(init)) return std::vector<Cut>{init};
  if (t.exceeded()) return std::nullopt;
  if (!expand(init)) return std::nullopt;
  if (t.exceeded()) return std::nullopt;
  visited.insert(init);
  order.push_back(Frame{init, -1});
  stack.push_back(0);

  while (!stack.empty()) {
    const std::ptrdiff_t at = stack.back();
    stack.pop_back();
    const Cut g = order[static_cast<std::size_t>(at)].cut;
    for (ProcId i : c.enabled_procs(g)) {
      Cut h = c.advance(g, i);
      ++st.cut_steps;
      if (!t.ok()) return std::nullopt;
      if (visited.contains(h)) continue;
      if (goal(h)) {
        std::vector<Cut> path{std::move(h)};
        for (std::ptrdiff_t a = at; a >= 0;
             a = order[static_cast<std::size_t>(a)].parent)
          path.push_back(order[static_cast<std::size_t>(a)].cut);
        std::reverse(path.begin(), path.end());
        return path;
      }
      if (t.exceeded()) return std::nullopt;
      if (!expand(h)) {
        if (t.exceeded()) return std::nullopt;
        continue;
      }
      if (visited.size() >= t.budget().max_states) {
        t.trip(BoundReason::kStateCap);
        return std::nullopt;
      }
      visited.insert(h);
      order.push_back(Frame{std::move(h), at});
      stack.push_back(static_cast<std::ptrdiff_t>(order.size()) - 1);
    }
  }
  return std::nullopt;
}

}  // namespace

DetectResult detect_ef_dfs(const Computation& c, const Predicate& p,
                           const Budget& budget) {
  DetectResult r;
  r.algorithm = "ef-dfs";
  ScopedSpan span(budget.trace, "dfs.ef");
  BudgetTracker t(budget, r.stats);
  CountingEval eval(p, c, r.stats, &t);
  auto path = dfs_cuts(
      c, t, r.stats, [](const Cut&) { return true; },
      [&](const Cut& g) { return eval(g); });
  if (path) {
    // A found witness is definite regardless of any bound tripped later.
    r.verdict = Verdict::kHolds;
    r.witness_cut = path->back();
    r.witness_path = std::move(*path);
    return r;
  }
  if (t.exceeded()) return mark_bounded(r, t);
  return r;
}

DetectResult detect_eg_dfs(const Computation& c, const Predicate& p,
                           const Budget& budget) {
  DetectResult r;
  r.algorithm = "eg-dfs";
  ScopedSpan span(budget.trace, "dfs.eg");
  BudgetTracker t(budget, r.stats);
  CountingEval eval(p, c, r.stats, &t);
  const Cut final = c.final_cut();
  // Explore only the p-true region; succeed on reaching the final cut
  // (which must itself satisfy p).
  auto path = dfs_cuts(
      c, t, r.stats, [&](const Cut& g) { return eval(g); },
      [&](const Cut& g) { return g == final && eval(g); });
  if (path) {
    r.verdict = Verdict::kHolds;
    r.witness_path = std::move(*path);
    return r;
  }
  if (t.exceeded()) return mark_bounded(r, t);
  return r;
}

DetectResult detect_ag_dfs(const Computation& c, const Predicate& p,
                           const Budget& budget) {
  auto notp = p.negate();
  ScopedSpan span(budget.trace, "dfs.ag-negation");
  DetectResult inner = detect_ef_dfs(c, *notp, budget);
  DetectResult r;
  r.algorithm = "ag-dfs = !ef-dfs(!p)";
  r.stats = inner.stats;
  // Kleene negation: an inconclusive inner search must never flip into a
  // definite verdict (an aborted EF(¬p) says nothing about AG(p)).
  r.verdict = negate(inner.verdict);
  r.bound = inner.bound;
  if (inner.witness_cut) r.witness_cut = std::move(*inner.witness_cut);
  return r;
}

DetectResult detect_af_dfs(const Computation& c, const Predicate& p,
                           const Budget& budget) {
  auto notp = p.negate();
  ScopedSpan span(budget.trace, "dfs.af-negation");
  DetectResult inner = detect_eg_dfs(c, *notp, budget);
  DetectResult r;
  r.algorithm = "af-dfs = !eg-dfs(!p)";
  r.stats = inner.stats;
  r.verdict = negate(inner.verdict);
  r.bound = inner.bound;
  if (inner.verdict == Verdict::kHolds)
    r.witness_path = std::move(inner.witness_path);
  return r;
}

DetectResult detect_eu_dfs(const Computation& c, const Predicate& p,
                           const Predicate& q, const Budget& budget) {
  DetectResult r;
  r.algorithm = "eu-dfs";
  ScopedSpan span(budget.trace, "dfs.eu");
  BudgetTracker t(budget, r.stats);
  CountingEval evp(p, c, r.stats, &t);
  CountingEval evq(q, c, r.stats, &t);
  auto path = dfs_cuts(
      c, t, r.stats, [&](const Cut& g) { return evp(g); },
      [&](const Cut& g) { return evq(g); });
  if (path) {
    r.verdict = Verdict::kHolds;
    r.witness_cut = path->back();
    r.witness_path = std::move(*path);
    return r;
  }
  if (t.exceeded()) return mark_bounded(r, t);
  return r;
}

DetectResult detect_au_dfs(const Computation& c, const PredicatePtr& p,
                           const PredicatePtr& q, const Budget& budget) {
  DetectResult r;
  r.algorithm = "au-dfs = !(eg-dfs(!q) | eu-dfs(!q, !p & !q))";
  ScopedSpan span(budget.trace, "dfs.au");
  auto notq = q->negate();
  auto notp = p->negate();

  // Either refuter returning a definite witness decides kFails, even when
  // the other is inconclusive; kHolds needs both to definitely fail.
  DetectResult eg = detect_eg_dfs(c, *notq, budget);
  r.stats += eg.stats;
  if (eg.verdict == Verdict::kHolds) {
    r.verdict = Verdict::kFails;
    r.witness_path = std::move(eg.witness_path);
    return r;
  }

  auto notp_and_notq = make_and(notp, notq);
  DetectResult eu = detect_eu_dfs(c, *notq, *notp_and_notq, budget);
  r.stats += eu.stats;
  if (eu.verdict == Verdict::kHolds) {
    r.verdict = Verdict::kFails;
    r.witness_path = std::move(eu.witness_path);
    return r;
  }
  if (eg.verdict == Verdict::kUnknown) return mark_bounded(r, eg.bound);
  if (eu.verdict == Verdict::kUnknown) return mark_bounded(r, eu.bound);
  r.verdict = Verdict::kHolds;
  return r;
}

}  // namespace hbct
