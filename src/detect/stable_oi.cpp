#include "detect/stable_oi.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "util/assert.h"

namespace hbct {

DetectResult detect_stable(const Computation& c, const Predicate& p, Op op) {
  DetectResult r;
  CountingEval eval(p, c, r.stats);
  switch (op) {
    case Op::kEF:
    case Op::kAF: {
      // Once true, always true: p appears somewhere iff it holds at the end.
      r.algorithm = "stable-final";
      Cut final = c.final_cut();
      r.holds = eval(final);
      if (r.holds) r.witness_cut = std::move(final);
      return r;
    }
    case Op::kEG:
    case Op::kAG: {
      // p at the initial cut stays true along every sequence.
      r.algorithm = "stable-initial";
      Cut initial = c.initial_cut();
      r.holds = eval(initial);
      if (!r.holds) r.witness_cut = std::move(initial);
      return r;
    }
    default:
      HBCT_ASSERT_MSG(false, "detect_stable handles EF/AF/EG/AG only");
  }
}

DetectResult detect_ef_observer_independent(const Computation& c,
                                            const Predicate& p) {
  DetectResult r;
  r.algorithm = "oi-single-observation";
  CountingEval eval(p, c, r.stats);
  Cut g = c.initial_cut();
  if (eval(g)) {
    r.holds = true;
    r.witness_cut = std::move(g);
    return r;
  }
  for (const EventId& e : c.linearization()) {
    ++g[static_cast<std::size_t>(e.proc)];
    ++r.stats.cut_steps;
    if (eval(g)) {
      r.holds = true;
      r.witness_cut = std::move(g);
      return r;
    }
  }
  return r;
}

namespace {

/// Iterative DFS over consistent cuts. `expand` decides whether a cut's
/// successors are explored; `goal` stops the search. Returns the goal cut's
/// path if found. Sets *aborted when the state cap is hit.
std::optional<std::vector<Cut>> dfs_cuts(
    const Computation& c, const SearchLimits& lim, DetectStats& st,
    const std::function<bool(const Cut&)>& expand,
    const std::function<bool(const Cut&)>& goal, bool* aborted) {
  *aborted = false;
  std::unordered_set<Cut, CutHash> visited;
  // Stack holds (cut, parent index into `order`) to rebuild paths.
  struct Frame {
    Cut cut;
    std::ptrdiff_t parent;
  };
  std::vector<Frame> order;
  std::vector<std::ptrdiff_t> stack;

  const Cut init = c.initial_cut();
  if (goal(init)) return std::vector<Cut>{init};
  if (!expand(init)) return std::nullopt;
  visited.insert(init);
  order.push_back(Frame{init, -1});
  stack.push_back(0);

  while (!stack.empty()) {
    const std::ptrdiff_t at = stack.back();
    stack.pop_back();
    const Cut g = order[static_cast<std::size_t>(at)].cut;
    for (ProcId i : c.enabled_procs(g)) {
      Cut h = c.advance(g, i);
      ++st.cut_steps;
      if (visited.count(h)) continue;
      if (goal(h)) {
        std::vector<Cut> path{std::move(h)};
        for (std::ptrdiff_t a = at; a >= 0;
             a = order[static_cast<std::size_t>(a)].parent)
          path.push_back(order[static_cast<std::size_t>(a)].cut);
        std::reverse(path.begin(), path.end());
        return path;
      }
      if (!expand(h)) continue;
      if (visited.size() >= lim.max_states) {
        *aborted = true;
        return std::nullopt;
      }
      visited.insert(h);
      order.push_back(Frame{std::move(h), at});
      stack.push_back(static_cast<std::ptrdiff_t>(order.size()) - 1);
    }
  }
  return std::nullopt;
}

}  // namespace

DetectResult detect_ef_dfs(const Computation& c, const Predicate& p,
                           const SearchLimits& lim) {
  DetectResult r;
  r.algorithm = "ef-dfs";
  CountingEval eval(p, c, r.stats);
  bool aborted = false;
  auto path = dfs_cuts(
      c, lim, r.stats, [](const Cut&) { return true; },
      [&](const Cut& g) { return eval(g); }, &aborted);
  if (aborted) r.algorithm += " (aborted)";
  if (path) {
    r.holds = true;
    r.witness_cut = path->back();
    r.witness_path = std::move(*path);
  }
  return r;
}

DetectResult detect_eg_dfs(const Computation& c, const Predicate& p,
                           const SearchLimits& lim) {
  DetectResult r;
  r.algorithm = "eg-dfs";
  CountingEval eval(p, c, r.stats);
  const Cut final = c.final_cut();
  bool aborted = false;
  // Explore only the p-true region; succeed on reaching the final cut
  // (which must itself satisfy p).
  auto path = dfs_cuts(
      c, lim, r.stats, [&](const Cut& g) { return eval(g); },
      [&](const Cut& g) { return g == final && eval(g); }, &aborted);
  if (aborted) r.algorithm += " (aborted)";
  if (path) {
    r.holds = true;
    r.witness_path = std::move(*path);
  }
  return r;
}

DetectResult detect_ag_dfs(const Computation& c, const Predicate& p,
                           const SearchLimits& lim) {
  auto notp = p.negate();
  DetectResult inner = detect_ef_dfs(c, *notp, lim);
  DetectResult r;
  r.algorithm = "ag-dfs = !ef-dfs(!p)";
  if (inner.algorithm.ends_with("(aborted)")) r.algorithm += " (aborted)";
  r.stats = inner.stats;
  r.holds = !inner.holds;
  if (inner.witness_cut) r.witness_cut = std::move(*inner.witness_cut);
  return r;
}

DetectResult detect_af_dfs(const Computation& c, const Predicate& p,
                           const SearchLimits& lim) {
  auto notp = p.negate();
  DetectResult inner = detect_eg_dfs(c, *notp, lim);
  DetectResult r;
  r.algorithm = "af-dfs = !eg-dfs(!p)";
  if (inner.algorithm.ends_with("(aborted)")) r.algorithm += " (aborted)";
  r.stats = inner.stats;
  r.holds = !inner.holds;
  if (inner.holds) r.witness_path = std::move(inner.witness_path);
  return r;
}

DetectResult detect_eu_dfs(const Computation& c, const Predicate& p,
                           const Predicate& q, const SearchLimits& lim) {
  DetectResult r;
  r.algorithm = "eu-dfs";
  CountingEval evp(p, c, r.stats);
  CountingEval evq(q, c, r.stats);
  bool aborted = false;
  auto path = dfs_cuts(
      c, lim, r.stats, [&](const Cut& g) { return evp(g); },
      [&](const Cut& g) { return evq(g); }, &aborted);
  if (aborted) r.algorithm += " (aborted)";
  if (path) {
    r.holds = true;
    r.witness_cut = path->back();
    r.witness_path = std::move(*path);
  }
  return r;
}

DetectResult detect_au_dfs(const Computation& c, const PredicatePtr& p,
                           const PredicatePtr& q, const SearchLimits& lim) {
  DetectResult r;
  r.algorithm = "au-dfs = !(eg-dfs(!q) | eu-dfs(!q, !p & !q))";
  auto notq = q->negate();
  auto notp = p->negate();

  DetectResult eg = detect_eg_dfs(c, *notq, lim);
  r.stats += eg.stats;
  if (eg.algorithm.ends_with("(aborted)")) r.algorithm += " (aborted)";
  if (eg.holds) {
    r.holds = false;
    r.witness_path = std::move(eg.witness_path);
    return r;
  }

  auto notp_and_notq = make_and(notp, notq);
  DetectResult eu = detect_eu_dfs(c, *notq, *notp_and_notq, lim);
  r.stats += eu.stats;
  if (eu.algorithm.ends_with("(aborted)")) r.algorithm += " (aborted)";
  r.holds = !eu.holds;
  if (eu.holds) r.witness_path = std::move(eu.witness_path);
  return r;
}

}  // namespace hbct
