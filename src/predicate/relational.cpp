#include "predicate/relational.h"

#include <sstream>

#include "predicate/local.h"
#include "util/assert.h"
#include "util/string_util.h"

namespace hbct {

bool is_nondecreasing(const Computation& c, ProcId proc,
                      std::string_view var) {
  auto v = c.var_id(var);
  if (!v) return true;  // never written: constant
  for (EventIndex k = 1; k <= c.num_events(proc); ++k)
    if (c.value_at(proc, *v, k) < c.value_at(proc, *v, k - 1)) return false;
  return true;
}

bool is_nonincreasing(const Computation& c, ProcId proc,
                      std::string_view var) {
  auto v = c.var_id(var);
  if (!v) return true;
  for (EventIndex k = 1; k <= c.num_events(proc); ++k)
    if (c.value_at(proc, *v, k) > c.value_at(proc, *v, k - 1)) return false;
  return true;
}

namespace {

std::int64_t term_value(const Computation& c, const VarRef& t, const Cut& g) {
  auto v = c.var_id(t.var);
  HBCT_ASSERT_MSG(v.has_value(), "relational predicate references unknown variable");
  return c.value_in(t.proc, *v, g);
}

bool all_nondecreasing(const Computation& c, const std::vector<VarRef>& ts) {
  for (const VarRef& t : ts)
    if (!is_nondecreasing(c, t.proc, t.var)) return false;
  return true;
}

std::string terms_desc(const std::vector<VarRef>& ts) {
  std::ostringstream os;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (i) os << " + ";
    os << ts[i].var << "@P" << ts[i].proc;
  }
  return os.str();
}

/// Incremental Σ sign·term <op> k: each term binds its variable timeline
/// once, and a component step adjusts the running sum by the timeline delta
/// of the terms owned by the moved process. Timeline reads are per-process
/// state, so updates are safe on transiently inconsistent cuts.
class SumCursor final : public EvalCursor {
 public:
  struct Term {
    ProcId proc;
    TimelineView tl;
    std::int64_t sign;
  };

  SumCursor(const Computation& c, const Cut& g, std::vector<Term> terms,
            Cmp op, std::int64_t k)
      : EvalCursor(c, g), terms_(std::move(terms)), op_(op), k_(k) {
    for (const Term& t : terms_)
      sum_ += t.sign *
              t.tl[static_cast<std::size_t>(g[static_cast<std::size_t>(t.proc)])];
  }

  void on_update(ProcId i, EventIndex old_pos) override {
    const EventIndex now = cut()[static_cast<std::size_t>(i)];
    for (const Term& t : terms_)
      if (t.proc == i)
        sum_ += t.sign * (t.tl[static_cast<std::size_t>(now)] -
                          t.tl[static_cast<std::size_t>(old_pos)]);
  }

  bool value() override { return cmp_eval(op_, sum_, k_); }

 private:
  std::vector<Term> terms_;
  Cmp op_;
  std::int64_t k_;
  std::int64_t sum_ = 0;
};

/// Binds each term's timeline; returns nullptr when some variable is
/// unregistered (the caller falls back to scratch evaluation, which reports
/// the error on first evaluation exactly as eval() would).
EvalCursorPtr make_sum_cursor(const Computation& c, const Cut& g,
                              const std::vector<VarRef>& ts,
                              const std::vector<std::int64_t>& signs,
                              Cmp op, std::int64_t k) {
  std::vector<SumCursor::Term> terms;
  terms.reserve(ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const auto v = c.var_id(ts[i].var);
    if (!v.has_value()) return nullptr;
    terms.push_back(
        {ts[i].proc, c.value_timeline(ts[i].proc, *v), signs[i]});
  }
  return std::make_unique<SumCursor>(c, g, std::move(terms), op, k);
}

class SumLe final : public Predicate {
 public:
  SumLe(std::vector<VarRef> terms, std::int64_t k)
      : terms_(std::move(terms)), k_(k) {
    HBCT_ASSERT(!terms_.empty());
  }
  bool eval(const Computation& c, const Cut& g) const override {
    std::int64_t s = 0;
    for (const VarRef& t : terms_) s += term_value(c, t, g);
    return s <= k_;
  }
  ClassSet classes(const Computation& c) const override {
    // With non-decreasing terms the satisfying set is down-closed, hence
    // meet-closed, hence linear — but not join-closed in general.
    return all_nondecreasing(c, terms_) ? close_classes(kClassLinear) : 0;
  }
  std::string describe() const override {
    return terms_desc(terms_) + strfmt(" <= %lld", static_cast<long long>(k_));
  }
  ProcId forbidden(const Computation&, const Cut&) const override {
    // Down-closed and false at g: no cut above g satisfies the predicate at
    // all, so every process is forbidden; report the first term's owner.
    return terms_[0].proc;
  }
  bool has_forbidden() const override { return true; }
  EvalCursorPtr make_cursor(const Computation& c, const Cut& g) const override {
    auto cur = make_sum_cursor(
        c, g, terms_, std::vector<std::int64_t>(terms_.size(), 1), Cmp::kLe,
        k_);
    return cur ? std::move(cur) : Predicate::make_cursor(c, g);
  }

 private:
  std::vector<VarRef> terms_;
  std::int64_t k_;
};

class SumGe final : public Predicate {
 public:
  SumGe(std::vector<VarRef> terms, std::int64_t k)
      : terms_(std::move(terms)), k_(k) {
    HBCT_ASSERT(!terms_.empty());
  }
  bool eval(const Computation& c, const Cut& g) const override {
    std::int64_t s = 0;
    for (const VarRef& t : terms_) s += term_value(c, t, g);
    return s >= k_;
  }
  ClassSet classes(const Computation& c) const override {
    // With non-decreasing terms the satisfying set is up-closed, hence
    // join-closed, hence post-linear.
    return all_nondecreasing(c, terms_) ? close_classes(kClassPostLinear) : 0;
  }
  std::string describe() const override {
    return terms_desc(terms_) + strfmt(" >= %lld", static_cast<long long>(k_));
  }
  ProcId forbidden_down(const Computation&, const Cut&) const override {
    // Up-closed and false at g: nothing below g satisfies it either.
    return terms_[0].proc;
  }
  bool has_forbidden_down() const override { return true; }
  EvalCursorPtr make_cursor(const Computation& c, const Cut& g) const override {
    auto cur = make_sum_cursor(
        c, g, terms_, std::vector<std::int64_t>(terms_.size(), 1), Cmp::kGe,
        k_);
    return cur ? std::move(cur) : Predicate::make_cursor(c, g);
  }

 private:
  std::vector<VarRef> terms_;
  std::int64_t k_;
};

class DiffLe final : public Predicate {
 public:
  DiffLe(VarRef a, VarRef b, std::int64_t k)
      : a_(std::move(a)), b_(std::move(b)), k_(k) {}
  bool eval(const Computation& c, const Cut& g) const override {
    return term_value(c, a_, g) - term_value(c, b_, g) <= k_;
  }
  ClassSet classes(const Computation& c) const override {
    const bool mono = is_nondecreasing(c, a_.proc, a_.var) &&
                      is_nondecreasing(c, b_.proc, b_.var);
    return mono ? close_classes(kClassRegular) : 0;
  }
  std::string describe() const override {
    return strfmt("%s@P%d - %s@P%d <= %lld", a_.var.c_str(), a_.proc,
                  b_.var.c_str(), b_.proc, static_cast<long long>(k_));
  }
  // a - b too large: freezing b's owner keeps b fixed while a can only grow,
  // so b's owner must advance. Dually a's owner must retreat.
  ProcId forbidden(const Computation&, const Cut&) const override {
    return b_.proc;
  }
  ProcId forbidden_down(const Computation&, const Cut&) const override {
    return a_.proc;
  }
  bool has_forbidden() const override { return true; }
  bool has_forbidden_down() const override { return true; }
  EvalCursorPtr make_cursor(const Computation& c, const Cut& g) const override {
    auto cur = make_sum_cursor(c, g, {a_, b_}, {1, -1}, Cmp::kLe, k_);
    return cur ? std::move(cur) : Predicate::make_cursor(c, g);
  }

 private:
  VarRef a_, b_;
  std::int64_t k_;
};

}  // namespace

PredicatePtr sum_le(std::vector<VarRef> terms, std::int64_t k) {
  return std::make_shared<SumLe>(std::move(terms), k);
}

PredicatePtr sum_ge(std::vector<VarRef> terms, std::int64_t k) {
  return std::make_shared<SumGe>(std::move(terms), k);
}

PredicatePtr diff_le(VarRef a, VarRef b, std::int64_t k) {
  return std::make_shared<DiffLe>(std::move(a), std::move(b), k);
}

}  // namespace hbct
