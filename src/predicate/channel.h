// Monotonic channel predicates.
//
// The number of messages in transit on a channel (i -> j) at cut G is
// sends_i(G) - recvs_j(G), a difference of two counters that are
// non-decreasing over local time. Bounds on such differences form regular
// predicates (closed under both meet and join of cuts), giving them both
// Chase–Garg advancement oracles. "Channels are empty" is the q-part of the
// paper's Fig. 4 example.
#pragma once

#include "predicate/predicate.h"

namespace hbct {

/// in_transit(from, to) <= k. Regular. Advancing: the receiver must make
/// progress; retreating: the sender must un-send.
PredicatePtr channel_bound_le(ProcId from, ProcId to, std::int32_t k);

/// in_transit(from, to) >= k. Regular. Advancing: the sender must make
/// progress; retreating: the receiver must un-receive.
PredicatePtr channel_bound_ge(ProcId from, ProcId to, std::int32_t k);

/// in_transit(from, to) == 0.
PredicatePtr channel_empty(ProcId from, ProcId to);

/// Every channel of the computation is empty. Regular.
PredicatePtr all_channels_empty();

}  // namespace hbct
