// Local predicates: truth depends on the state of one process only.
//
// A local predicate is simultaneously conjunctive (one conjunct) and
// disjunctive (one disjunct), hence also regular, linear, post-linear and
// observer-independent by the containments of Section 4.
#pragma once

#include <functional>

#include "predicate/predicate.h"

namespace hbct {

/// Comparison operators for variable predicates.
enum class Cmp { kLt, kLe, kEq, kNe, kGe, kGt };

const char* to_string(Cmp op);
bool cmp_eval(Cmp op, std::int64_t lhs, std::int64_t rhs);

/// Structured shape of a local predicate, recorded by the factories below.
/// The walk hot paths (LocalEval) use it to resolve the variable id once
/// per detection and read the precomputed timeline directly, instead of
/// going through the std::function + name lookup on every evaluation.
/// kOpaque (a hand-written lambda) keeps the function path.
struct LocalSpec {
  enum class Kind { kOpaque, kVarCmp, kPosCmp, kConst };
  Kind kind = Kind::kOpaque;
  std::string var;            // kVarCmp: variable name
  Cmp op = Cmp::kEq;          // kVarCmp / kPosCmp
  std::int64_t rhs = 0;       // kVarCmp / kPosCmp
  bool value = false;         // kConst
};

class LocalPredicate final : public Predicate {
 public:
  /// fn(c, pos) evaluates on the local state of `proc` after `pos` events.
  LocalPredicate(ProcId proc,
                 std::function<bool(const Computation&, EventIndex)> fn,
                 std::string desc);
  /// As above, with a structured spec the hot paths can specialize on. The
  /// spec must agree with fn on every position (the factories guarantee it).
  LocalPredicate(ProcId proc,
                 std::function<bool(const Computation&, EventIndex)> fn,
                 std::string desc, LocalSpec spec);

  ProcId proc() const { return proc_; }
  const LocalSpec& spec() const { return spec_; }

  /// Local evaluation, bypassing the cut.
  bool eval_local(const Computation& c, EventIndex pos) const {
    return fn_(c, pos);
  }

  bool eval(const Computation& c, const Cut& g) const override {
    return fn_(c, g[static_cast<std::size_t>(proc_)]);
  }
  ClassSet classes(const Computation&) const override {
    return close_classes(kClassLocal);
  }
  std::string describe() const override { return desc_; }

  /// For a false local predicate the owning process must advance.
  ProcId forbidden(const Computation&, const Cut&) const override {
    return proc_;
  }
  /// Dually, going down, the owning process must retreat.
  ProcId forbidden_down(const Computation&, const Cut&) const override {
    return proc_;
  }

  bool has_forbidden() const override { return true; }
  bool has_forbidden_down() const override { return true; }

  PredicatePtr negate() const override;

  EvalCursorPtr make_cursor(const Computation& c, const Cut& g) const override;

 private:
  ProcId proc_;
  std::function<bool(const Computation&, EventIndex)> fn_;
  std::string desc_;
  LocalSpec spec_;
};

using LocalPredicatePtr = std::shared_ptr<const LocalPredicate>;

/// Resolved per-(computation, local) evaluator for the walk inner loops:
/// kVarCmp binds the variable timeline once, kPosCmp/kConst skip the
/// computation entirely, kOpaque falls back to the std::function. The
/// computation and the predicate must outlive the evaluator, and (for
/// kVarCmp) the computation must not be grown while it is in use — online
/// appends can reallocate the bound timeline.
class LocalEval {
 public:
  LocalEval(const Computation& c, const LocalPredicate& p);

  bool operator()(EventIndex pos) const {
    switch (kind_) {
      case LocalSpec::Kind::kVarCmp:
        return cmp_eval(op_, timeline_[static_cast<std::size_t>(pos)], rhs_);
      case LocalSpec::Kind::kPosCmp:
        return cmp_eval(op_, pos, rhs_);
      case LocalSpec::Kind::kConst:
        return const_;
      default:
        return p_->eval_local(*c_, pos);
    }
  }

  ProcId proc() const { return p_->proc(); }

 private:
  const Computation* c_;
  const LocalPredicate* p_;
  LocalSpec::Kind kind_ = LocalSpec::Kind::kOpaque;
  TimelineView timeline_;  // kVarCmp
  Cmp op_ = Cmp::kEq;
  std::int64_t rhs_ = 0;
  bool const_ = false;
};

/// "variable <op> constant" on one process, e.g. var_cmp(0, "x", Cmp::kLt, 4)
/// reads as: x on P0 is less than 4.
LocalPredicatePtr var_cmp(ProcId proc, std::string var, Cmp op,
                          std::int64_t rhs);

/// "process i has executed at least k events" (local progress predicate).
LocalPredicatePtr progress_ge(ProcId proc, EventIndex k);

/// "number of events executed by process i <op> k".
LocalPredicatePtr pos_cmp(ProcId proc, Cmp op, std::int64_t k);

/// Constant-valued local predicate on one process (as_conjunctive /
/// as_disjunctive use it to fold make_true / make_false into structured
/// form).
LocalPredicatePtr local_const(ProcId proc, bool value);

/// Local predicate from an explicit truth table over positions 0..N_i
/// (used by the NP-reduction gadgets and tests).
LocalPredicatePtr local_table(ProcId proc, std::vector<bool> truth,
                              std::string desc);

}  // namespace hbct
