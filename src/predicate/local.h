// Local predicates: truth depends on the state of one process only.
//
// A local predicate is simultaneously conjunctive (one conjunct) and
// disjunctive (one disjunct), hence also regular, linear, post-linear and
// observer-independent by the containments of Section 4.
#pragma once

#include <functional>

#include "predicate/predicate.h"

namespace hbct {

/// Comparison operators for variable predicates.
enum class Cmp { kLt, kLe, kEq, kNe, kGe, kGt };

const char* to_string(Cmp op);
bool cmp_eval(Cmp op, std::int64_t lhs, std::int64_t rhs);

class LocalPredicate final : public Predicate {
 public:
  /// fn(c, pos) evaluates on the local state of `proc` after `pos` events.
  LocalPredicate(ProcId proc,
                 std::function<bool(const Computation&, EventIndex)> fn,
                 std::string desc);

  ProcId proc() const { return proc_; }

  /// Local evaluation, bypassing the cut.
  bool eval_local(const Computation& c, EventIndex pos) const {
    return fn_(c, pos);
  }

  bool eval(const Computation& c, const Cut& g) const override {
    return fn_(c, g[static_cast<std::size_t>(proc_)]);
  }
  ClassSet classes(const Computation&) const override {
    return close_classes(kClassLocal);
  }
  std::string describe() const override { return desc_; }

  /// For a false local predicate the owning process must advance.
  ProcId forbidden(const Computation&, const Cut&) const override {
    return proc_;
  }
  /// Dually, going down, the owning process must retreat.
  ProcId forbidden_down(const Computation&, const Cut&) const override {
    return proc_;
  }

  bool has_forbidden() const override { return true; }
  bool has_forbidden_down() const override { return true; }

  PredicatePtr negate() const override;

 private:
  ProcId proc_;
  std::function<bool(const Computation&, EventIndex)> fn_;
  std::string desc_;
};

using LocalPredicatePtr = std::shared_ptr<const LocalPredicate>;

/// "variable <op> constant" on one process, e.g. var_cmp(0, "x", Cmp::kLt, 4)
/// reads as: x on P0 is less than 4.
LocalPredicatePtr var_cmp(ProcId proc, std::string var, Cmp op,
                          std::int64_t rhs);

/// "process i has executed at least k events" (local progress predicate).
LocalPredicatePtr progress_ge(ProcId proc, EventIndex k);

/// "number of events executed by process i <op> k".
LocalPredicatePtr pos_cmp(ProcId proc, Cmp op, std::int64_t k);

/// Local predicate from an explicit truth table over positions 0..N_i
/// (used by the NP-reduction gadgets and tests).
LocalPredicatePtr local_table(ProcId proc, std::vector<bool> truth,
                              std::string desc);

}  // namespace hbct
