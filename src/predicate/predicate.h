// Predicate interface and the predicate-class taxonomy of Section 4.
//
// A predicate is a boolean function of a global state (consistent cut). The
// paper's detection algorithms exploit *structure*: which lattice-theoretic
// class the set of satisfying cuts falls into. We track classes as a bitmask
// with the paper's containments applied as closure rules:
//
//   local ⇒ conjunctive, disjunctive        (a single conjunct/disjunct)
//   conjunctive ⇒ regular                    (min of positions is one of them)
//   regular ⇒ linear, post-linear            (sublattice = both semilattices)
//   disjunctive ⇒ observer-independent
//   stable ⇒ observer-independent
//
// Classes may depend on the computation (e.g. Σx_i ≥ k is post-linear only
// when every x_i is non-decreasing over time), hence classes() takes the
// computation.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "poset/computation.h"
#include "poset/cut.h"
#include "predicate/eval_cursor.h"

namespace hbct {

using ClassSet = std::uint32_t;

enum : ClassSet {
  kClassLocal = 1u << 0,
  kClassConjunctive = 1u << 1,
  kClassDisjunctive = 1u << 2,
  kClassStable = 1u << 3,
  kClassObserverIndependent = 1u << 4,
  kClassLinear = 1u << 5,
  kClassPostLinear = 1u << 6,
  kClassRegular = 1u << 7,
  /// Every satisfying cut is a diagonal cut (l, l, ..., l): the satisfying
  /// set lies on the equilevel chain C_0 < C_1 < ... < C_min|E_i|. Detection
  /// reduces to scanning that chain (detect/equilevel.h); EF/EG/AG become
  /// O(n^2 min|E_i|). Not implied by and not implying any other class —
  /// diagonal sets are generally neither meet- nor join-closed relative to
  /// the full lattice walk structure the other algorithms rely on.
  kClassEquilevel = 1u << 8,
};

/// Applies the containment rules until fixpoint.
ClassSet close_classes(ClassSet s);

/// Human-readable list, e.g. "conjunctive,regular,linear,post-linear".
std::string classes_to_string(ClassSet s);

class Predicate;
using PredicatePtr = std::shared_ptr<const Predicate>;

class Predicate : public std::enable_shared_from_this<Predicate> {
 public:
  virtual ~Predicate() = default;

  /// Truth value at consistent cut g.
  virtual bool eval(const Computation& c, const Cut& g) const = 0;

  /// Structural classes of this predicate for computation c, already
  /// closure-saturated. A predicate that holds at the initial cut is
  /// additionally observer-independent (the NP-reduction's trick); callers
  /// wanting that refinement use effective_classes() below.
  virtual ClassSet classes(const Computation& c) const = 0;

  /// One-line description for diagnostics ("x@P0 < 4 && empty(1,2)").
  virtual std::string describe() const = 0;

  /// Linear-advancement oracle (Chase–Garg). Precondition: !eval(c, g) and
  /// classes(c) contains kClassLinear. Returns a process i such that no
  /// cut H ⊇ g with H[i] == g[i] satisfies the predicate: every satisfying
  /// cut above g contains the next event of i.
  virtual ProcId forbidden(const Computation& c, const Cut& g) const;

  /// Post-linear dual. Precondition: !eval(c, g) and classes(c) contains
  /// kClassPostLinear. Returns i such that no H ⊆ g with H[i] == g[i]
  /// satisfies the predicate: we must retreat process i.
  virtual ProcId forbidden_down(const Computation& c, const Cut& g) const;

  /// Whether forbidden() / forbidden_down() are actually implemented (the
  /// defaults abort). The dispatcher and the class auditor consult these
  /// before taking a Chase–Garg route: a predicate that *claims* linearity
  /// (e.g. via make_asserted) without supplying an oracle is routed past
  /// the advancement algorithms instead of aborting mid-detection, and lint
  /// reports W005 missing-oracle.
  virtual bool has_forbidden() const { return false; }
  virtual bool has_forbidden_down() const { return false; }

  /// True when classes() repeats a user assertion (make_asserted) rather
  /// than deriving from structure: the claim is load-bearing for dispatch
  /// but unverified, which lint surfaces as W007 and the auditor can check.
  virtual bool classes_asserted() const { return false; }

  /// Negation. The default wraps in a generic Not (classes mostly lost);
  /// structured predicates override to keep De-Morgan structure
  /// (¬disjunctive = conjunctive etc.), which the AU algorithm requires.
  virtual PredicatePtr negate() const;

  /// The constant value of this predicate, if it is one (make_true /
  /// make_false). Lets as_conjunctive / as_disjunctive fold constants into
  /// structured form, e.g. so E[true U q] dispatches to A3.
  virtual std::optional<bool> as_constant() const { return std::nullopt; }

  /// For a top-level disjunction (make_or result that stayed generic):
  /// its disjuncts; empty otherwise. The dispatcher uses the distributive
  /// laws EF(∨ p_i) = ∨ EF(p_i) and E[p U ∨ q_i] = ∨ E[p U q_i] to keep
  /// DNF-shaped predicates out of the exponential fallback.
  virtual std::vector<PredicatePtr> disjuncts() const { return {}; }

  /// Dually, a top-level conjunction's conjuncts (AG(∧ p_i) = ∧ AG(p_i)).
  virtual std::vector<PredicatePtr> conjuncts() const { return {}; }

  /// Incremental-evaluation cursor bound to the walker-owned cut `g` (see
  /// predicate/eval_cursor.h for the stepping contract). The default is a
  /// scratch fallback whose value() re-runs eval(); structured predicates
  /// override with O(1)-steppable cursors. The predicate and the cut must
  /// outlive the cursor.
  virtual EvalCursorPtr make_cursor(const Computation& c, const Cut& g) const;
};

/// classes(c) refined with the "holds initially ⇒ observer-independent"
/// rule (costs one eval of the initial cut).
ClassSet effective_classes(const Predicate& p, const Computation& c);

// ---- Trivial predicates ----------------------------------------------------

/// Constant true/false; member of every class.
PredicatePtr make_true();
PredicatePtr make_false();

// ---- Generic combinators ---------------------------------------------------

/// p ∧ q. Class algebra: conjunctive∧conjunctive = conjunctive,
/// linear∧linear = linear (with a forbidden oracle delegating to a false
/// conjunct), regular∧regular = regular, stable∧stable = stable,
/// post-linear∧post-linear = post-linear.
PredicatePtr make_and(std::vector<PredicatePtr> children);
PredicatePtr make_and(PredicatePtr a, PredicatePtr b);

/// p ∨ q. Class algebra: disjunctive∨disjunctive = disjunctive,
/// stable∨stable = stable.
PredicatePtr make_or(std::vector<PredicatePtr> children);
PredicatePtr make_or(PredicatePtr a, PredicatePtr b);

/// ¬p with De Morgan pushed into structured predicates when possible.
PredicatePtr make_not(PredicatePtr p);

// ---- Escape hatches ---------------------------------------------------------

/// Wraps an arbitrary cut function with a user-asserted class set.
/// The property-test suite uses this to inject ground-truth-checked
/// predicates; misuse (claiming a class the predicate does not have) voids
/// detector guarantees, exactly as in the paper's model.
PredicatePtr make_asserted(
    std::function<bool(const Computation&, const Cut&)> fn, ClassSet classes,
    std::string description);

/// Stable predicate from a cut function (classes stable + OI).
PredicatePtr make_stable(std::function<bool(const Computation&, const Cut&)> fn,
                         std::string description);

/// "Every process has executed all its events" — the canonical stable
/// predicate (termination).
PredicatePtr make_terminated();

/// Unions machine-derived class bits into p's classes() (and
/// `negation_extra` into its negation's), forwarding everything else. The
/// CTL query optimizer installs this for bits the syntactic inference
/// engine (analysis/infer.h) derives but the structural probe cannot see —
/// e.g. the stability of `pos(0)+pos(1) > 3`. Returns p unchanged when
/// both sets are empty. Unlike make_asserted the bits do not report
/// classes_asserted(): they come with a machine-checkable derivation, not
/// a user claim.
PredicatePtr make_refined(PredicatePtr p, ClassSet extra,
                          ClassSet negation_extra = 0);

}  // namespace hbct
