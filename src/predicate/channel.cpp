#include "predicate/channel.h"

#include "util/assert.h"
#include "util/string_util.h"

namespace hbct {

namespace {

/// Incremental in-transit count for one channel: caches the sender's send
/// count and the receiver's receive count via the prefix-counter reads
/// (sends_up_to / recvs_up_to), which are safe on transiently inconsistent
/// cuts where in_transit() itself is not.
class ChannelBoundCursor final : public EvalCursor {
 public:
  ChannelBoundCursor(const Computation& c, const Cut& g, ProcId from,
                     ProcId to, std::int32_t k, bool le)
      : EvalCursor(c, g),
        from_(from),
        to_(to),
        k_(k),
        le_(le),
        sent_(c.sends_up_to(from, to, g[static_cast<std::size_t>(from)])),
        rcvd_(c.recvs_up_to(to, from, g[static_cast<std::size_t>(to)])) {}

  void on_update(ProcId i, EventIndex) override {
    const EventIndex pos = cut()[static_cast<std::size_t>(i)];
    if (i == from_) sent_ = comp().sends_up_to(from_, to_, pos);
    if (i == to_) rcvd_ = comp().recvs_up_to(to_, from_, pos);
  }

  bool value() override {
    const std::int32_t t = sent_ - rcvd_;
    return le_ ? t <= k_ : t >= k_;
  }

 private:
  ProcId from_, to_;
  std::int32_t k_;
  bool le_;
  std::int32_t sent_, rcvd_;
};

/// Incremental total in-transit count across all active channels. A step on
/// process i adjusts i's send contribution on every channel i sends on and
/// i's receive contribution on every channel i receives on: O(n) per step
/// instead of the O(n^2) full rescan of in_transit_total().
class AllChannelsEmptyCursor final : public EvalCursor {
 public:
  AllChannelsEmptyCursor(const Computation& c, const Cut& g)
      : EvalCursor(c, g) {
    const ProcId n = c.num_procs();
    for (ProcId i = 0; i < n; ++i) {
      const EventIndex pos = g[static_cast<std::size_t>(i)];
      for (ProcId j = 0; j < n; ++j) {
        if (i == j) continue;
        if (c.channel_active(i, j)) total_ += c.sends_up_to(i, j, pos);
        if (c.channel_active(j, i)) total_ -= c.recvs_up_to(i, j, pos);
      }
    }
  }

  void on_update(ProcId i, EventIndex old_pos) override {
    const Computation& c = comp();
    const EventIndex pos = cut()[static_cast<std::size_t>(i)];
    const ProcId n = c.num_procs();
    for (ProcId j = 0; j < n; ++j) {
      if (i == j) continue;
      if (c.channel_active(i, j))
        total_ += c.sends_up_to(i, j, pos) - c.sends_up_to(i, j, old_pos);
      if (c.channel_active(j, i))
        total_ -= c.recvs_up_to(i, j, pos) - c.recvs_up_to(i, j, old_pos);
    }
  }

  bool value() override { return total_ == 0; }

 private:
  std::int64_t total_ = 0;
};

class ChannelBoundLe final : public Predicate {
 public:
  ChannelBoundLe(ProcId from, ProcId to, std::int32_t k)
      : from_(from), to_(to), k_(k) {}

  bool eval(const Computation& c, const Cut& g) const override {
    return c.in_transit(from_, to_, g) <= k_;
  }
  ClassSet classes(const Computation&) const override {
    return close_classes(kClassRegular);
  }
  std::string describe() const override {
    return strfmt("intransit(%d->%d) <= %d", from_, to_, k_);
  }
  // Too many messages in flight: with the receiver frozen the count can only
  // grow, so the receiver is the forbidden process.
  ProcId forbidden(const Computation&, const Cut&) const override {
    return to_;
  }
  // Dually, with the sender frozen while retreating, receives can only be
  // undone, so the count can only grow: the sender must retreat.
  ProcId forbidden_down(const Computation&, const Cut&) const override {
    return from_;
  }
  bool has_forbidden() const override { return true; }
  bool has_forbidden_down() const override { return true; }
  PredicatePtr negate() const override {
    return channel_bound_ge(from_, to_, k_ + 1);
  }
  EvalCursorPtr make_cursor(const Computation& c, const Cut& g) const override {
    return std::make_unique<ChannelBoundCursor>(c, g, from_, to_, k_,
                                                /*le=*/true);
  }

 private:
  ProcId from_, to_;
  std::int32_t k_;
};

class ChannelBoundGe final : public Predicate {
 public:
  ChannelBoundGe(ProcId from, ProcId to, std::int32_t k)
      : from_(from), to_(to), k_(k) {}

  bool eval(const Computation& c, const Cut& g) const override {
    return c.in_transit(from_, to_, g) >= k_;
  }
  ClassSet classes(const Computation&) const override {
    return close_classes(kClassRegular);
  }
  std::string describe() const override {
    return strfmt("intransit(%d->%d) >= %d", from_, to_, k_);
  }
  ProcId forbidden(const Computation&, const Cut&) const override {
    return from_;
  }
  ProcId forbidden_down(const Computation&, const Cut&) const override {
    return to_;
  }
  bool has_forbidden() const override { return true; }
  bool has_forbidden_down() const override { return true; }
  PredicatePtr negate() const override {
    return channel_bound_le(from_, to_, k_ - 1);
  }
  EvalCursorPtr make_cursor(const Computation& c, const Cut& g) const override {
    return std::make_unique<ChannelBoundCursor>(c, g, from_, to_, k_,
                                                /*le=*/false);
  }

 private:
  ProcId from_, to_;
  std::int32_t k_;
};

class AllChannelsEmpty final : public Predicate {
 public:
  bool eval(const Computation& c, const Cut& g) const override {
    return c.in_transit_total(g) == 0;
  }
  ClassSet classes(const Computation&) const override {
    // Intersection of the regular per-channel predicates; a sublattice.
    return close_classes(kClassRegular);
  }
  std::string describe() const override { return "channels_empty"; }

  ProcId forbidden(const Computation& c, const Cut& g) const override {
    // Some channel (i -> j) has traffic; j must receive it.
    for (ProcId i = 0; i < c.num_procs(); ++i)
      for (ProcId j = 0; j < c.num_procs(); ++j)
        if (i != j && c.in_transit(i, j, g) > 0) return j;
    HBCT_ASSERT_MSG(false, "forbidden() called on satisfied predicate");
  }

  ProcId forbidden_down(const Computation& c, const Cut& g) const override {
    for (ProcId i = 0; i < c.num_procs(); ++i)
      for (ProcId j = 0; j < c.num_procs(); ++j)
        if (i != j && c.in_transit(i, j, g) > 0) return i;
    HBCT_ASSERT_MSG(false, "forbidden_down() called on satisfied predicate");
  }

  bool has_forbidden() const override { return true; }
  bool has_forbidden_down() const override { return true; }

  EvalCursorPtr make_cursor(const Computation& c, const Cut& g) const override {
    return std::make_unique<AllChannelsEmptyCursor>(c, g);
  }

 private:
};

}  // namespace

PredicatePtr channel_bound_le(ProcId from, ProcId to, std::int32_t k) {
  HBCT_ASSERT(k >= -1);  // k == -1 is the constant-false bound
  return std::make_shared<ChannelBoundLe>(from, to, k);
}

PredicatePtr channel_bound_ge(ProcId from, ProcId to, std::int32_t k) {
  return std::make_shared<ChannelBoundGe>(from, to, k);
}

PredicatePtr channel_empty(ProcId from, ProcId to) {
  return channel_bound_le(from, to, 0);
}

PredicatePtr all_channels_empty() {
  return std::make_shared<AllChannelsEmpty>();
}

}  // namespace hbct
