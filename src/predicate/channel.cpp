#include "predicate/channel.h"

#include "util/assert.h"
#include "util/string_util.h"

namespace hbct {

namespace {

class ChannelBoundLe final : public Predicate {
 public:
  ChannelBoundLe(ProcId from, ProcId to, std::int32_t k)
      : from_(from), to_(to), k_(k) {}

  bool eval(const Computation& c, const Cut& g) const override {
    return c.in_transit(from_, to_, g) <= k_;
  }
  ClassSet classes(const Computation&) const override {
    return close_classes(kClassRegular);
  }
  std::string describe() const override {
    return strfmt("intransit(%d->%d) <= %d", from_, to_, k_);
  }
  // Too many messages in flight: with the receiver frozen the count can only
  // grow, so the receiver is the forbidden process.
  ProcId forbidden(const Computation&, const Cut&) const override {
    return to_;
  }
  // Dually, with the sender frozen while retreating, receives can only be
  // undone, so the count can only grow: the sender must retreat.
  ProcId forbidden_down(const Computation&, const Cut&) const override {
    return from_;
  }
  bool has_forbidden() const override { return true; }
  bool has_forbidden_down() const override { return true; }
  PredicatePtr negate() const override {
    return channel_bound_ge(from_, to_, k_ + 1);
  }

 private:
  ProcId from_, to_;
  std::int32_t k_;
};

class ChannelBoundGe final : public Predicate {
 public:
  ChannelBoundGe(ProcId from, ProcId to, std::int32_t k)
      : from_(from), to_(to), k_(k) {}

  bool eval(const Computation& c, const Cut& g) const override {
    return c.in_transit(from_, to_, g) >= k_;
  }
  ClassSet classes(const Computation&) const override {
    return close_classes(kClassRegular);
  }
  std::string describe() const override {
    return strfmt("intransit(%d->%d) >= %d", from_, to_, k_);
  }
  ProcId forbidden(const Computation&, const Cut&) const override {
    return from_;
  }
  ProcId forbidden_down(const Computation&, const Cut&) const override {
    return to_;
  }
  bool has_forbidden() const override { return true; }
  bool has_forbidden_down() const override { return true; }
  PredicatePtr negate() const override {
    return channel_bound_le(from_, to_, k_ - 1);
  }

 private:
  ProcId from_, to_;
  std::int32_t k_;
};

class AllChannelsEmpty final : public Predicate {
 public:
  bool eval(const Computation& c, const Cut& g) const override {
    return c.in_transit_total(g) == 0;
  }
  ClassSet classes(const Computation&) const override {
    // Intersection of the regular per-channel predicates; a sublattice.
    return close_classes(kClassRegular);
  }
  std::string describe() const override { return "channels_empty"; }

  ProcId forbidden(const Computation& c, const Cut& g) const override {
    // Some channel (i -> j) has traffic; j must receive it.
    for (ProcId i = 0; i < c.num_procs(); ++i)
      for (ProcId j = 0; j < c.num_procs(); ++j)
        if (i != j && c.in_transit(i, j, g) > 0) return j;
    HBCT_ASSERT_MSG(false, "forbidden() called on satisfied predicate");
  }

  ProcId forbidden_down(const Computation& c, const Cut& g) const override {
    for (ProcId i = 0; i < c.num_procs(); ++i)
      for (ProcId j = 0; j < c.num_procs(); ++j)
        if (i != j && c.in_transit(i, j, g) > 0) return i;
    HBCT_ASSERT_MSG(false, "forbidden_down() called on satisfied predicate");
  }

  bool has_forbidden() const override { return true; }
  bool has_forbidden_down() const override { return true; }

 private:
};

}  // namespace

PredicatePtr channel_bound_le(ProcId from, ProcId to, std::int32_t k) {
  HBCT_ASSERT(k >= -1);  // k == -1 is the constant-false bound
  return std::make_shared<ChannelBoundLe>(from, to, k);
}

PredicatePtr channel_bound_ge(ProcId from, ProcId to, std::int32_t k) {
  return std::make_shared<ChannelBoundGe>(from, to, k);
}

PredicatePtr channel_empty(ProcId from, ProcId to) {
  return channel_bound_le(from, to, 0);
}

PredicatePtr all_channels_empty() {
  return std::make_shared<AllChannelsEmpty>();
}

}  // namespace hbct
