#include "predicate/conjunctive.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "predicate/disjunctive.h"
#include "util/assert.h"

namespace hbct {

namespace {

/// ANDs several locals on the same process into one local.
LocalPredicatePtr and_locals(ProcId proc,
                             std::vector<LocalPredicatePtr> parts) {
  if (parts.size() == 1) return parts[0];
  std::ostringstream desc;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) desc << " && ";
    desc << parts[i]->describe();
  }
  return std::make_shared<LocalPredicate>(
      proc,
      [parts = std::move(parts)](const Computation& c, EventIndex pos) {
        for (const auto& l : parts)
          if (!l->eval_local(c, pos)) return false;
        return true;
      },
      desc.str());
}

/// One resolved LocalEval + cached truth bit per conjunct, plus a count of
/// false conjuncts: value() is O(1) and a component step re-evaluates at
/// most one local.
class ConjunctiveCursor final : public EvalCursor {
 public:
  ConjunctiveCursor(const ConjunctivePredicate& p, const Computation& c,
                    const Cut& g)
      : EvalCursor(c, g) {
    const auto& locals = p.locals();
    evals_.reserve(locals.size());
    truth_.resize(locals.size());
    slot_.assign(c.num_procs(), -1);
    for (std::size_t s = 0; s < locals.size(); ++s) {
      evals_.emplace_back(c, *locals[s]);
      const std::size_t proc = static_cast<std::size_t>(locals[s]->proc());
      if (proc < slot_.size()) slot_[proc] = static_cast<std::int32_t>(s);
      truth_[s] = evals_[s](g[proc]);
      if (!truth_[s]) ++false_count_;
    }
  }

  void on_update(ProcId i, EventIndex) override {
    if (i < 0 || static_cast<std::size_t>(i) >= slot_.size()) return;
    const std::int32_t s = slot_[static_cast<std::size_t>(i)];
    if (s < 0) return;
    const bool now = evals_[static_cast<std::size_t>(s)](
        cut()[static_cast<std::size_t>(i)]);
    if (now != truth_[static_cast<std::size_t>(s)]) {
      truth_[static_cast<std::size_t>(s)] = now;
      false_count_ += now ? -1 : 1;
    }
  }

  bool value() override { return false_count_ == 0; }

 private:
  std::vector<LocalEval> evals_;
  std::vector<char> truth_;
  std::vector<std::int32_t> slot_;  // proc -> index in evals_ or -1
  int false_count_ = 0;
};

}  // namespace

ConjunctivePredicate::ConjunctivePredicate(
    std::vector<LocalPredicatePtr> locals) {
  HBCT_ASSERT(!locals.empty());
  std::map<ProcId, std::vector<LocalPredicatePtr>> by_proc;
  ProcId max_proc = 0;
  for (auto& l : locals) {
    HBCT_ASSERT(l);
    max_proc = std::max(max_proc, l->proc());
    by_proc[l->proc()].push_back(std::move(l));
  }
  slot_.assign(static_cast<std::size_t>(max_proc) + 1, -1);
  for (auto& [proc, parts] : by_proc) {
    slot_[static_cast<std::size_t>(proc)] =
        static_cast<std::int32_t>(locals_.size());
    locals_.push_back(and_locals(proc, std::move(parts)));
  }
}

const LocalPredicate* ConjunctivePredicate::local_for(ProcId i) const {
  if (i < 0 || static_cast<std::size_t>(i) >= slot_.size()) return nullptr;
  const std::int32_t s = slot_[static_cast<std::size_t>(i)];
  return s < 0 ? nullptr : locals_[static_cast<std::size_t>(s)].get();
}

bool ConjunctivePredicate::eval_local(const Computation& c, ProcId i,
                                      EventIndex pos) const {
  const LocalPredicate* l = local_for(i);
  return l == nullptr || l->eval_local(c, pos);
}

bool ConjunctivePredicate::eval(const Computation& c, const Cut& g) const {
  for (const auto& l : locals_)
    if (!l->eval(c, g)) return false;
  return true;
}

std::string ConjunctivePredicate::describe() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < locals_.size(); ++i) {
    if (i) os << " && ";
    os << locals_[i]->describe();
  }
  return os.str();
}

ProcId ConjunctivePredicate::forbidden(const Computation& c,
                                       const Cut& g) const {
  for (const auto& l : locals_)
    if (!l->eval(c, g)) return l->proc();
  HBCT_ASSERT_MSG(false, "forbidden() called on satisfied predicate");
}

ProcId ConjunctivePredicate::forbidden_down(const Computation& c,
                                            const Cut& g) const {
  for (const auto& l : locals_)
    if (!l->eval(c, g)) return l->proc();
  HBCT_ASSERT_MSG(false, "forbidden_down() called on satisfied predicate");
}

EvalCursorPtr ConjunctivePredicate::make_cursor(const Computation& c,
                                                const Cut& g) const {
  return std::make_unique<ConjunctiveCursor>(*this, c, g);
}

PredicatePtr ConjunctivePredicate::negate() const {
  std::vector<LocalPredicatePtr> neg;
  neg.reserve(locals_.size());
  for (const auto& l : locals_) {
    auto n = std::dynamic_pointer_cast<const LocalPredicate>(l->negate());
    HBCT_ASSERT(n);
    neg.push_back(std::move(n));
  }
  return std::make_shared<DisjunctivePredicate>(std::move(neg));
}

ConjunctivePredicatePtr make_conjunctive(
    std::vector<LocalPredicatePtr> locals) {
  return std::make_shared<ConjunctivePredicate>(std::move(locals));
}

ConjunctivePredicatePtr as_conjunctive(const PredicatePtr& p) {
  if (auto c = std::dynamic_pointer_cast<const ConjunctivePredicate>(p))
    return c;
  if (auto l = std::dynamic_pointer_cast<const LocalPredicate>(p))
    return make_conjunctive({l});
  if (auto k = p->as_constant()) {
    // A constant is a one-conjunct predicate on process 0.
    return make_conjunctive({local_const(0, *k)});
  }
  return nullptr;
}

}  // namespace hbct
