// Disjunctive predicates: p = l_1 ∨ l_2 ∨ … with each l_i local.
//
// Disjunctive predicates are observer-independent (Section 4): if some
// observation passes through a cut where one disjunct holds, the event that
// made it true is seen by every observation. EF/AF detection is linear-time
// (scan each process's positions independently); EG/AG have polynomial
// algorithms by duality with conjunctive detection (Table 1).
#pragma once

#include <vector>

#include "predicate/local.h"
#include "predicate/predicate.h"

namespace hbct {

class DisjunctivePredicate final : public Predicate {
 public:
  explicit DisjunctivePredicate(std::vector<LocalPredicatePtr> locals);

  /// Canonicalized disjuncts, at most one per process, sorted by process.
  const std::vector<LocalPredicatePtr>& locals() const { return locals_; }

  /// The disjunct owned by process i, or nullptr (vacuously false there).
  const LocalPredicate* local_for(ProcId i) const;

  /// Local truth on process i at position pos (false when i has no disjunct).
  bool eval_local(const Computation& c, ProcId i, EventIndex pos) const;

  bool eval(const Computation& c, const Cut& g) const override;
  ClassSet classes(const Computation&) const override {
    return close_classes(kClassDisjunctive);
  }
  std::string describe() const override;

  /// ¬(∨ l_i) = ∧ ¬l_i — a ConjunctivePredicate.
  PredicatePtr negate() const override;

  /// Per-slot truth bits + a true count: O(1) per cut-component update.
  EvalCursorPtr make_cursor(const Computation& c, const Cut& g) const override;

 private:
  std::vector<LocalPredicatePtr> locals_;
  std::vector<std::int32_t> slot_;
};

using DisjunctivePredicatePtr = std::shared_ptr<const DisjunctivePredicate>;

DisjunctivePredicatePtr make_disjunctive(std::vector<LocalPredicatePtr> locals);

/// Attempts to view an arbitrary predicate as disjunctive (dual of
/// as_conjunctive).
DisjunctivePredicatePtr as_disjunctive(const PredicatePtr& p);

}  // namespace hbct
