// Incremental predicate evaluation over an in-place lattice walk.
//
// The lattice walks (A1's retreat walk, A2's irreducible scan, the
// Chase–Garg advancement loops) evaluate a fixed predicate at a sequence of
// cuts that differ in one (or a few) components. Re-evaluating from scratch
// costs O(predicate size) per step and, for the structured predicate
// classes, repeats work the step cannot have changed. An EvalCursor binds a
// predicate to one walker-owned Cut and maintains its truth value under
// component updates:
//
//   * local / conjunctive / disjunctive — per-process truth bits plus a
//     false/true count: O(1) per component update;
//   * relational sums and differences — a running signed sum over the
//     precomputed variable timelines: O(terms on the moved process);
//   * channel bounds — cached send/receive prefix counters: O(1);
//   * and / or — updates forwarded to all children, truth short-circuited
//     lazily in value(): O(children) per update;
//   * everything else — a scratch fallback that re-runs Predicate::eval,
//     bit-identical by construction.
//
// Contract: the cursor stores a pointer to the bound cut, so the cut must
// outlive the cursor and keep its address (walkers mutate it in place).
// After changing component i the walker calls on_update(i, old_pos) —
// arbitrary jumps are allowed, and the cut may be *transiently
// inconsistent* between the updates of a multi-component seek; cursors
// therefore only read per-process state (positions, timelines, prefix
// counters) in on_update and defer any cross-process conclusion to
// value(), which is only called at consistent cuts.
#pragma once

#include <memory>

#include "poset/computation.h"
#include "poset/cut.h"

namespace hbct {

class EvalCursor {
 public:
  EvalCursor(const Computation& c, const Cut& g) : c_(&c), g_(&g) {}
  virtual ~EvalCursor() = default;

  EvalCursor(const EvalCursor&) = delete;
  EvalCursor& operator=(const EvalCursor&) = delete;

  /// Called after the bound cut's component i changed from old_pos to its
  /// current value cut()[i].
  virtual void on_update(ProcId i, EventIndex old_pos) = 0;

  /// Truth of the predicate at the bound cut (which must be consistent).
  virtual bool value() = 0;

  /// True when on_update maintains value() incrementally. Compound cursors
  /// report the conjunction over their children; the scratch fallback
  /// reports false.
  virtual bool incremental() const { return true; }

  const Computation& comp() const { return *c_; }
  const Cut& cut() const { return *g_; }

 private:
  const Computation* c_;
  const Cut* g_;
};

using EvalCursorPtr = std::unique_ptr<EvalCursor>;

}  // namespace hbct
