#include "predicate/classify.h"

#include <sstream>

namespace hbct {

ClassReport classify(const Predicate& p, const Computation& c) {
  ClassReport r;
  r.holds_initially = p.eval(c, c.initial_cut());
  r.classes = effective_classes(p, c);
  const ClassSet s = r.classes;

  auto pick = [&](const char* stable_alg, const char* oi_alg,
                  const char* linear_alg, const char* postlinear_alg,
                  const char* fallback) -> std::string {
    if ((s & kClassStable) && stable_alg) return stable_alg;
    if ((s & kClassLinear) && linear_alg) return linear_alg;
    if ((s & kClassPostLinear) && postlinear_alg) return postlinear_alg;
    if ((s & kClassObserverIndependent) && oi_alg) return oi_alg;
    return fallback;
  };

  r.ef = pick("stable: p(final) (O(n))", "single observation scan (O(n|E|))",
              "Chase-Garg advancement (O(n^2|E|))",
              nullptr, "explicit lattice (exponential)");
  r.af = pick("stable: p(final) (O(n))", "single observation scan (O(n|E|))",
              nullptr, nullptr,
              (s & kClassConjunctive)
                  ? "Garg-Waldecker strong conjunctive (O(n^2|E|))"
                  : "explicit lattice (exponential)");
  r.eg = pick("stable: p(initial) (O(n))", nullptr,
              "A1 backward walk (O(n^2|E|)) [this paper]", nullptr,
              (s & kClassObserverIndependent)
                  ? "explicit lattice (exponential; NP-complete, Thm 5)"
                  : "explicit lattice (exponential)");
  r.ag = pick("stable: p(initial) (O(n))", nullptr,
              "A2 meet-irreducibles (O(n|E|) evals) [this paper]", nullptr,
              (s & kClassObserverIndependent)
                  ? "explicit lattice (exponential; co-NP-complete, Thm 6)"
                  : "explicit lattice (exponential)");
  return r;
}

std::string to_string(const ClassReport& r) {
  std::ostringstream os;
  os << "classes: " << classes_to_string(r.classes)
     << (r.holds_initially ? " (holds initially)" : "") << "\n"
     << "  EF -> " << r.ef << "\n"
     << "  AF -> " << r.af << "\n"
     << "  EG -> " << r.eg << "\n"
     << "  AG -> " << r.ag << "\n";
  return os.str();
}

}  // namespace hbct
