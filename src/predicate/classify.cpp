#include "predicate/classify.h"

#include <sstream>

#include "analysis/plan.h"
#include "predicate/conjunctive.h"
#include "predicate/disjunctive.h"
#include "util/string_util.h"

namespace hbct {

namespace {

/// classify() takes a reference, shape_of() a shared_ptr (the structural
/// as_conjunctive/as_disjunctive views need one). Recover the owner when
/// there is one; a stack-allocated predicate still gets a class-accurate
/// report, just without the structural-form views.
PredShape shape_for(const Predicate& p, const Computation& c) {
  if (PredicatePtr sp = p.weak_from_this().lock()) return shape_of(sp, c);
  PredShape s;
  s.classes = effective_classes(p, c);
  s.conjunctive_form = dynamic_cast<const ConjunctivePredicate*>(&p) ||
                       dynamic_cast<const LocalPredicate*>(&p);
  s.disjunctive_form = dynamic_cast<const DisjunctivePredicate*>(&p) ||
                       dynamic_cast<const LocalPredicate*>(&p);
  s.num_disjuncts = p.disjuncts().size();
  s.num_conjuncts = p.conjuncts().size();
  s.has_forbidden = p.has_forbidden();
  s.has_forbidden_down = p.has_forbidden_down();
  return s;
}

std::string render(Op op, const PredShape& s) {
  const DetectPlan pl = plan_unary(op, s, /*allow_exponential=*/true);
  const char* np = "";
  if (pl.np_hard)
    np = op == Op::kEG ? "; NP-complete, Thm 5" : "; co-NP-complete, Thm 6";
  return strfmt("%s (%s%s)", pl.name, pl.cost, np);
}

}  // namespace

ClassReport classify(const Predicate& p, const Computation& c) {
  return classify(p, c, /*inferred_extra=*/0);
}

ClassReport classify(const Predicate& p, const Computation& c,
                     ClassSet inferred_extra) {
  ClassReport r;
  r.holds_initially = p.eval(c, c.initial_cut());
  PredShape s = shape_for(p, c);
  s.classes = close_classes(s.classes | inferred_extra);
  r.classes = s.classes;
  // The same planner detect() routes through, so the report can never drift
  // from the dispatch again (tests/test_plan_parity.cpp pins this).
  r.ef = render(Op::kEF, s);
  r.af = render(Op::kAF, s);
  r.eg = render(Op::kEG, s);
  r.ag = render(Op::kAG, s);
  return r;
}

std::string to_string(const ClassReport& r) {
  std::ostringstream os;
  os << "classes: " << classes_to_string(r.classes)
     << (r.holds_initially ? " (holds initially)" : "") << "\n"
     << "  EF -> " << r.ef << "\n"
     << "  AF -> " << r.af << "\n"
     << "  EG -> " << r.eg << "\n"
     << "  AG -> " << r.ag << "\n";
  return os.str();
}

}  // namespace hbct
