#include "predicate/local.h"

#include "util/assert.h"
#include "util/string_util.h"

namespace hbct {

const char* to_string(Cmp op) {
  switch (op) {
    case Cmp::kLt: return "<";
    case Cmp::kLe: return "<=";
    case Cmp::kEq: return "==";
    case Cmp::kNe: return "!=";
    case Cmp::kGe: return ">=";
    case Cmp::kGt: return ">";
  }
  return "?";
}

bool cmp_eval(Cmp op, std::int64_t lhs, std::int64_t rhs) {
  switch (op) {
    case Cmp::kLt: return lhs < rhs;
    case Cmp::kLe: return lhs <= rhs;
    case Cmp::kEq: return lhs == rhs;
    case Cmp::kNe: return lhs != rhs;
    case Cmp::kGe: return lhs >= rhs;
    case Cmp::kGt: return lhs > rhs;
  }
  return false;
}

namespace {

Cmp negate_cmp(Cmp op) {
  switch (op) {
    case Cmp::kLt: return Cmp::kGe;
    case Cmp::kLe: return Cmp::kGt;
    case Cmp::kEq: return Cmp::kNe;
    case Cmp::kNe: return Cmp::kEq;
    case Cmp::kGe: return Cmp::kLt;
    case Cmp::kGt: return Cmp::kLe;
  }
  return Cmp::kEq;
}

}  // namespace

LocalPredicate::LocalPredicate(
    ProcId proc, std::function<bool(const Computation&, EventIndex)> fn,
    std::string desc)
    : proc_(proc), fn_(std::move(fn)), desc_(std::move(desc)) {
  HBCT_ASSERT(proc_ >= 0);
  HBCT_ASSERT(fn_);
}

PredicatePtr LocalPredicate::negate() const {
  const ProcId proc = proc_;
  auto fn = fn_;
  return std::make_shared<LocalPredicate>(
      proc,
      [fn](const Computation& c, EventIndex pos) { return !fn(c, pos); },
      "!(" + desc_ + ")");
}

LocalPredicatePtr var_cmp(ProcId proc, std::string var, Cmp op,
                          std::int64_t rhs) {
  std::string desc = strfmt("%s@P%d %s %lld", var.c_str(), proc,
                            to_string(op), static_cast<long long>(rhs));
  return std::make_shared<LocalPredicate>(
      proc,
      [proc, var = std::move(var), op, rhs](const Computation& c,
                                            EventIndex pos) {
        auto v = c.var_id(var);
        HBCT_ASSERT_MSG(v.has_value(), "predicate references unknown variable");
        return cmp_eval(op, c.value_at(proc, *v, pos), rhs);
      },
      std::move(desc));
}

LocalPredicatePtr progress_ge(ProcId proc, EventIndex k) {
  return std::make_shared<LocalPredicate>(
      proc,
      [k](const Computation&, EventIndex pos) { return pos >= k; },
      strfmt("progress@P%d >= %d", proc, k));
}

LocalPredicatePtr pos_cmp(ProcId proc, Cmp op, std::int64_t k) {
  return std::make_shared<LocalPredicate>(
      proc,
      [op, k](const Computation&, EventIndex pos) {
        return cmp_eval(op, pos, k);
      },
      strfmt("pos@P%d %s %lld", proc, to_string(op),
             static_cast<long long>(k)));
}

LocalPredicatePtr local_table(ProcId proc, std::vector<bool> truth,
                              std::string desc) {
  return std::make_shared<LocalPredicate>(
      proc,
      [truth = std::move(truth)](const Computation&, EventIndex pos) {
        HBCT_ASSERT(pos >= 0 && static_cast<std::size_t>(pos) < truth.size());
        return truth[static_cast<std::size_t>(pos)];
      },
      std::move(desc));
}

}  // namespace hbct
