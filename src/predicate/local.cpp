#include "predicate/local.h"

#include "util/assert.h"
#include "util/string_util.h"

namespace hbct {

const char* to_string(Cmp op) {
  switch (op) {
    case Cmp::kLt: return "<";
    case Cmp::kLe: return "<=";
    case Cmp::kEq: return "==";
    case Cmp::kNe: return "!=";
    case Cmp::kGe: return ">=";
    case Cmp::kGt: return ">";
  }
  return "?";
}

bool cmp_eval(Cmp op, std::int64_t lhs, std::int64_t rhs) {
  switch (op) {
    case Cmp::kLt: return lhs < rhs;
    case Cmp::kLe: return lhs <= rhs;
    case Cmp::kEq: return lhs == rhs;
    case Cmp::kNe: return lhs != rhs;
    case Cmp::kGe: return lhs >= rhs;
    case Cmp::kGt: return lhs > rhs;
  }
  return false;
}

namespace {

Cmp negate_cmp(Cmp op) {
  switch (op) {
    case Cmp::kLt: return Cmp::kGe;
    case Cmp::kLe: return Cmp::kGt;
    case Cmp::kEq: return Cmp::kNe;
    case Cmp::kNe: return Cmp::kEq;
    case Cmp::kGe: return Cmp::kLt;
    case Cmp::kGt: return Cmp::kLe;
  }
  return Cmp::kEq;
}

LocalSpec negate_spec(const LocalSpec& s) {
  LocalSpec out = s;
  switch (s.kind) {
    case LocalSpec::Kind::kVarCmp:
    case LocalSpec::Kind::kPosCmp:
      out.op = negate_cmp(s.op);
      break;
    case LocalSpec::Kind::kConst:
      out.value = !s.value;
      break;
    case LocalSpec::Kind::kOpaque:
      break;
  }
  return out;
}

/// Caches the per-owner truth value; recomputed only when the owning
/// process moves, so a step on any other process is a no-op.
class LocalCursor final : public EvalCursor {
 public:
  LocalCursor(const LocalPredicate& p, const Computation& c, const Cut& g)
      : EvalCursor(c, g),
        eval_(c, p),
        proc_(static_cast<std::size_t>(p.proc())),
        val_(eval_(g[static_cast<std::size_t>(p.proc())])) {}

  void on_update(ProcId i, EventIndex) override {
    if (static_cast<std::size_t>(i) == proc_) val_ = eval_(cut()[proc_]);
  }
  bool value() override { return val_; }

 private:
  LocalEval eval_;
  std::size_t proc_;
  bool val_;
};

}  // namespace

LocalPredicate::LocalPredicate(
    ProcId proc, std::function<bool(const Computation&, EventIndex)> fn,
    std::string desc)
    : LocalPredicate(proc, std::move(fn), std::move(desc), LocalSpec{}) {}

LocalPredicate::LocalPredicate(
    ProcId proc, std::function<bool(const Computation&, EventIndex)> fn,
    std::string desc, LocalSpec spec)
    : proc_(proc),
      fn_(std::move(fn)),
      desc_(std::move(desc)),
      spec_(std::move(spec)) {
  HBCT_ASSERT(proc_ >= 0);
  HBCT_ASSERT(fn_);
}

PredicatePtr LocalPredicate::negate() const {
  const ProcId proc = proc_;
  auto fn = fn_;
  return std::make_shared<LocalPredicate>(
      proc,
      [fn](const Computation& c, EventIndex pos) { return !fn(c, pos); },
      "!(" + desc_ + ")", negate_spec(spec_));
}

EvalCursorPtr LocalPredicate::make_cursor(const Computation& c,
                                          const Cut& g) const {
  return std::make_unique<LocalCursor>(*this, c, g);
}

LocalEval::LocalEval(const Computation& c, const LocalPredicate& p)
    : c_(&c), p_(&p) {
  const LocalSpec& s = p.spec();
  switch (s.kind) {
    case LocalSpec::Kind::kVarCmp: {
      // An unregistered variable keeps the function path, which reports the
      // error on first evaluation exactly as the un-specialized predicate
      // would (never earlier).
      const auto v = c.var_id(s.var);
      if (!v.has_value()) break;
      timeline_ = c.value_timeline(p.proc(), *v);
      kind_ = s.kind;
      op_ = s.op;
      rhs_ = s.rhs;
      break;
    }
    case LocalSpec::Kind::kPosCmp:
      kind_ = s.kind;
      op_ = s.op;
      rhs_ = s.rhs;
      break;
    case LocalSpec::Kind::kConst:
      kind_ = s.kind;
      const_ = s.value;
      break;
    case LocalSpec::Kind::kOpaque:
      break;
  }
}

LocalPredicatePtr var_cmp(ProcId proc, std::string var, Cmp op,
                          std::int64_t rhs) {
  std::string desc = strfmt("%s@P%d %s %lld", var.c_str(), proc,
                            to_string(op), static_cast<long long>(rhs));
  LocalSpec spec;
  spec.kind = LocalSpec::Kind::kVarCmp;
  spec.var = var;
  spec.op = op;
  spec.rhs = rhs;
  return std::make_shared<LocalPredicate>(
      proc,
      [proc, var = std::move(var), op, rhs](const Computation& c,
                                            EventIndex pos) {
        auto v = c.var_id(var);
        HBCT_ASSERT_MSG(v.has_value(), "predicate references unknown variable");
        return cmp_eval(op, c.value_at(proc, *v, pos), rhs);
      },
      std::move(desc), std::move(spec));
}

LocalPredicatePtr progress_ge(ProcId proc, EventIndex k) {
  LocalSpec spec;
  spec.kind = LocalSpec::Kind::kPosCmp;
  spec.op = Cmp::kGe;
  spec.rhs = k;
  return std::make_shared<LocalPredicate>(
      proc,
      [k](const Computation&, EventIndex pos) { return pos >= k; },
      strfmt("progress@P%d >= %d", proc, k), std::move(spec));
}

LocalPredicatePtr pos_cmp(ProcId proc, Cmp op, std::int64_t k) {
  LocalSpec spec;
  spec.kind = LocalSpec::Kind::kPosCmp;
  spec.op = op;
  spec.rhs = k;
  return std::make_shared<LocalPredicate>(
      proc,
      [op, k](const Computation&, EventIndex pos) {
        return cmp_eval(op, pos, k);
      },
      strfmt("pos@P%d %s %lld", proc, to_string(op),
             static_cast<long long>(k)),
      std::move(spec));
}

LocalPredicatePtr local_const(ProcId proc, bool value) {
  LocalSpec spec;
  spec.kind = LocalSpec::Kind::kConst;
  spec.value = value;
  return std::make_shared<LocalPredicate>(
      proc, [value](const Computation&, EventIndex) { return value; },
      value ? "true" : "false", std::move(spec));
}

LocalPredicatePtr local_table(ProcId proc, std::vector<bool> truth,
                              std::string desc) {
  return std::make_shared<LocalPredicate>(
      proc,
      [truth = std::move(truth)](const Computation&, EventIndex pos) {
        HBCT_ASSERT(pos >= 0 && static_cast<std::size_t>(pos) < truth.size());
        return truth[static_cast<std::size_t>(pos)];
      },
      std::move(desc));
}

}  // namespace hbct
