// Relational predicates over variables on several processes.
//
// Their class depends on how the variables evolve in the computation:
// with every term non-decreasing over local time,
//   Σ x_i <= k   is linear (down-closed and meet-closed, not join-closed),
//   Σ x_i >= k   is post-linear (up-... join-closed, not meet-closed),
//   x_i - x_j <= k is regular (closed under both meet and join).
// The classic producer/consumer bound "produced - consumed <= capacity" is
// the difference form. When monotonicity does not hold in the given
// computation, classes(c) reports no structure and detectors fall back to
// the explicit-lattice baseline.
#pragma once

#include <string>
#include <vector>

#include "predicate/predicate.h"

namespace hbct {

/// One term of a relational predicate: variable `var` on process `proc`.
struct VarRef {
  ProcId proc;
  std::string var;
};

/// Σ terms <= k.
PredicatePtr sum_le(std::vector<VarRef> terms, std::int64_t k);
/// Σ terms >= k.
PredicatePtr sum_ge(std::vector<VarRef> terms, std::int64_t k);
/// a - b <= k.
PredicatePtr diff_le(VarRef a, VarRef b, std::int64_t k);

/// True when `var` never decreases along process `proc` (including the
/// initial value). Used by the relational predicates' classes().
bool is_nondecreasing(const Computation& c, ProcId proc, std::string_view var);
bool is_nonincreasing(const Computation& c, ProcId proc, std::string_view var);

}  // namespace hbct
