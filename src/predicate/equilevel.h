// Equilevel predicates: satisfying cuts confined to the diagonal chain.
//
// A cut is *equilevel* when every process has executed the same number of
// events: G = (l, l, ..., l). The consistent equilevel cuts form a chain
// C_0 < C_1 < ... < C_L (L = min_i |E_i|) inside the cut lattice, so a
// predicate whose satisfying cuts all lie on that chain is detected by
// scanning at most L + 1 cuts instead of walking the lattice — the
// equilevel-scan route of the dispatcher (kClassEquilevel,
// detect/equilevel.h). Canonical examples: round-synchronized protocol
// invariants ("all processes are between the same barrier pair"), checked
// at the barrier levels.
#pragma once

#include "predicate/predicate.h"

namespace hbct {

/// True at cut g iff g is equilevel (all components equal).
bool is_equilevel_cut(const Cut& g);

/// inner ∧ "the cut is equilevel". The satisfying set is the inner
/// predicate's restricted to the diagonal, so the result always carries
/// kClassEquilevel (and nothing else: the restriction breaks the lattice
/// closure properties the other classes encode).
PredicatePtr make_equilevel(PredicatePtr inner);

}  // namespace hbct
