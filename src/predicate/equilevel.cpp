#include "predicate/equilevel.h"

#include <utility>

#include "util/assert.h"

namespace hbct {

bool is_equilevel_cut(const Cut& g) {
  for (std::size_t i = 1; i < g.size(); ++i)
    if (g[i] != g[0]) return false;
  return true;
}

namespace {

class EquilevelPredicate final : public Predicate {
 public:
  explicit EquilevelPredicate(PredicatePtr inner) : inner_(std::move(inner)) {
    HBCT_ASSERT(inner_);
  }

  bool eval(const Computation& c, const Cut& g) const override {
    return is_equilevel_cut(g) && inner_->eval(c, g);
  }

  ClassSet classes(const Computation&) const override {
    return kClassEquilevel;
  }

  std::string describe() const override {
    return "equilevel(" + inner_->describe() + ")";
  }

 private:
  PredicatePtr inner_;
};

}  // namespace

PredicatePtr make_equilevel(PredicatePtr inner) {
  return std::make_shared<EquilevelPredicate>(std::move(inner));
}

}  // namespace hbct
