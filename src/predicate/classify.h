// Classification report: which detection algorithms apply to a predicate on
// a given computation.
#pragma once

#include <string>

#include "predicate/predicate.h"

namespace hbct {

struct ClassReport {
  ClassSet classes = 0;      // effective_classes (closure + holds-initially)
  bool holds_initially = false;
  /// Per-operator dispatch summary, e.g. "EF: Chase-Garg linear (O(n|E|))".
  std::string ef, af, eg, ag;
};

/// Computes the effective classes of `p` on `c` and the algorithm each CTL
/// operator would dispatch to (mirrors detect/dispatch.cpp).
ClassReport classify(const Predicate& p, const Computation& c);

/// Multi-line human-readable rendering of the report.
std::string to_string(const ClassReport& r);

}  // namespace hbct
