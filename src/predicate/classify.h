// Classification report: which detection algorithms apply to a predicate on
// a given computation.
#pragma once

#include <string>

#include "predicate/predicate.h"

namespace hbct {

struct ClassReport {
  ClassSet classes = 0;      // effective_classes (closure + holds-initially)
  bool holds_initially = false;
  /// Per-operator dispatch summary, e.g. "EF: Chase-Garg linear (O(n|E|))".
  std::string ef, af, eg, ag;
};

/// Computes the effective classes of `p` on `c` and the algorithm each CTL
/// operator would dispatch to (mirrors detect/dispatch.cpp).
ClassReport classify(const Predicate& p, const Computation& c);

/// Same, with machine-derived extra class bits unioned in before planning
/// (closure-saturated). The CTL optimizer's inference engine
/// (analysis/infer.h) lives above this layer, so callers pass the bits
/// down; the report then shows the routes optimize=kApply would unlock via
/// make_refined rather than the structural-probe-only dispatch.
ClassReport classify(const Predicate& p, const Computation& c,
                     ClassSet inferred_extra);

/// Multi-line human-readable rendering of the report.
std::string to_string(const ClassReport& r);

}  // namespace hbct
