// Conjunctive predicates: p = l_1 ∧ l_2 ∧ … with each l_i local.
//
// The workhorse class of the predicate-detection literature (Garg–Waldecker
// weak/strong conjunctive detection, the slice-based EG algorithm, and the
// p-part of the paper's E[p U q] algorithm all require this shape). Locals
// are canonicalized to at most one conjunct per process: several conjuncts
// on one process are ANDed into one local.
#pragma once

#include <optional>
#include <vector>

#include "predicate/local.h"
#include "predicate/predicate.h"

namespace hbct {

class ConjunctivePredicate final : public Predicate {
 public:
  explicit ConjunctivePredicate(std::vector<LocalPredicatePtr> locals);

  /// Canonicalized conjuncts, at most one per process, sorted by process.
  const std::vector<LocalPredicatePtr>& locals() const { return locals_; }

  /// The conjunct owned by process i, or nullptr (vacuously true there).
  const LocalPredicate* local_for(ProcId i) const;

  /// Local truth on process i at position pos (true when i has no conjunct).
  bool eval_local(const Computation& c, ProcId i, EventIndex pos) const;

  bool eval(const Computation& c, const Cut& g) const override;
  ClassSet classes(const Computation&) const override {
    return close_classes(kClassConjunctive);
  }
  std::string describe() const override;

  /// Chase–Garg oracle: any process whose conjunct is false must advance.
  ProcId forbidden(const Computation& c, const Cut& g) const override;
  ProcId forbidden_down(const Computation& c, const Cut& g) const override;
  bool has_forbidden() const override { return true; }
  bool has_forbidden_down() const override { return true; }

  /// ¬(∧ l_i) = ∨ ¬l_i — a DisjunctivePredicate.
  PredicatePtr negate() const override;

  /// Per-slot truth bits + a false count: O(1) per cut-component update.
  EvalCursorPtr make_cursor(const Computation& c, const Cut& g) const override;

 private:
  std::vector<LocalPredicatePtr> locals_;       // sorted by proc, unique
  std::vector<std::int32_t> slot_;              // proc -> index in locals_ or -1
};

using ConjunctivePredicatePtr = std::shared_ptr<const ConjunctivePredicate>;

/// Builds a conjunctive predicate; convenience over the constructor.
ConjunctivePredicatePtr make_conjunctive(std::vector<LocalPredicatePtr> locals);

/// Attempts to view an arbitrary predicate as conjunctive: returns the
/// predicate itself for ConjunctivePredicate, a one-conjunct wrapper for
/// LocalPredicate, and nullptr otherwise.
ConjunctivePredicatePtr as_conjunctive(const PredicatePtr& p);

}  // namespace hbct
