#include "predicate/predicate.h"

#include <sstream>

#include "predicate/conjunctive.h"
#include "predicate/disjunctive.h"
#include "util/assert.h"

namespace hbct {

ClassSet close_classes(ClassSet s) {
  ClassSet prev;
  do {
    prev = s;
    if (s & kClassLocal) s |= kClassConjunctive | kClassDisjunctive;
    if (s & kClassConjunctive) s |= kClassRegular;
    if (s & kClassRegular) s |= kClassLinear | kClassPostLinear;
    if (s & kClassDisjunctive) s |= kClassObserverIndependent;
    if (s & kClassStable) s |= kClassObserverIndependent;
  } while (s != prev);
  return s;
}

std::string classes_to_string(ClassSet s) {
  static constexpr std::pair<ClassSet, const char*> kNames[] = {
      {kClassLocal, "local"},
      {kClassConjunctive, "conjunctive"},
      {kClassDisjunctive, "disjunctive"},
      {kClassStable, "stable"},
      {kClassObserverIndependent, "observer-independent"},
      {kClassLinear, "linear"},
      {kClassPostLinear, "post-linear"},
      {kClassRegular, "regular"},
      {kClassEquilevel, "equilevel"},
  };
  std::string out;
  for (const auto& [flag, name] : kNames) {
    if (!(s & flag)) continue;
    if (!out.empty()) out += ",";
    out += name;
  }
  return out.empty() ? "arbitrary" : out;
}

ProcId Predicate::forbidden(const Computation&, const Cut&) const {
  HBCT_ASSERT_MSG(false, "predicate has no linear-advancement oracle");
}

ProcId Predicate::forbidden_down(const Computation&, const Cut&) const {
  HBCT_ASSERT_MSG(false, "predicate has no post-linear oracle");
}

ClassSet effective_classes(const Predicate& p, const Computation& c) {
  ClassSet s = p.classes(c);
  if (p.eval(c, c.initial_cut())) s |= kClassObserverIndependent;
  return close_classes(s);
}

namespace {

// ---- Cursors for the generic combinators ------------------------------------

/// Fallback cursor: value() re-evaluates from scratch. Used for every
/// predicate without structure to exploit (make_asserted, make_stable).
class ScratchEvalCursor final : public EvalCursor {
 public:
  ScratchEvalCursor(const Predicate& p, const Computation& c, const Cut& g)
      : EvalCursor(c, g), p_(p) {}
  void on_update(ProcId, EventIndex) override {}
  bool value() override { return p_.eval(comp(), cut()); }
  bool incremental() const override { return false; }

 private:
  const Predicate& p_;
};

class ConstCursor final : public EvalCursor {
 public:
  ConstCursor(const Computation& c, const Cut& g, bool v)
      : EvalCursor(c, g), v_(v) {}
  void on_update(ProcId, EventIndex) override {}
  bool value() override { return v_; }

 private:
  bool v_;
};

class NotCursor final : public EvalCursor {
 public:
  NotCursor(const Computation& c, const Cut& g, EvalCursorPtr child)
      : EvalCursor(c, g), ch_(std::move(child)) {}
  void on_update(ProcId i, EventIndex old_pos) override {
    ch_->on_update(i, old_pos);
  }
  bool value() override { return !ch_->value(); }
  bool incremental() const override { return ch_->incremental(); }

 private:
  EvalCursorPtr ch_;
};

/// Updates are forwarded eagerly (cheap: children cache per-process state);
/// truth short-circuits lazily in value(), matching the And/Or eval order —
/// a fallback child's value() is only paid when the scan reaches it,
/// exactly as its eval() would be.
class JunctionCursor final : public EvalCursor {
 public:
  JunctionCursor(const Computation& c, const Cut& g,
                 std::vector<EvalCursorPtr> children, bool conjunction)
      : EvalCursor(c, g), ch_(std::move(children)), and_(conjunction) {}
  void on_update(ProcId i, EventIndex old_pos) override {
    for (auto& ch : ch_) ch->on_update(i, old_pos);
  }
  bool value() override {
    for (auto& ch : ch_)
      if (ch->value() != and_) return !and_;
    return and_;
  }
  bool incremental() const override {
    for (const auto& ch : ch_)
      if (!ch->incremental()) return false;
    return true;
  }

 private:
  std::vector<EvalCursorPtr> ch_;
  bool and_;
};

EvalCursorPtr make_junction_cursor(const std::vector<PredicatePtr>& ch,
                                   const Computation& c, const Cut& g,
                                   bool conjunction) {
  std::vector<EvalCursorPtr> cursors;
  cursors.reserve(ch.size());
  for (const auto& p : ch) cursors.push_back(p->make_cursor(c, g));
  return std::make_unique<JunctionCursor>(c, g, std::move(cursors),
                                          conjunction);
}

// ---- Constants --------------------------------------------------------------

class ConstPredicate final : public Predicate {
 public:
  explicit ConstPredicate(bool v) : v_(v) {}
  bool eval(const Computation&, const Cut&) const override { return v_; }
  ClassSet classes(const Computation&) const override {
    return close_classes(kClassLocal | kClassStable);
  }
  std::string describe() const override { return v_ ? "true" : "false"; }
  ProcId forbidden(const Computation&, const Cut&) const override {
    // Only reachable for the constant-false predicate; no cut satisfies it,
    // so every process is forbidden.
    return 0;
  }
  ProcId forbidden_down(const Computation&, const Cut&) const override {
    return 0;
  }
  bool has_forbidden() const override { return true; }
  bool has_forbidden_down() const override { return true; }
  PredicatePtr negate() const override {
    return std::make_shared<ConstPredicate>(!v_);
  }
  std::optional<bool> as_constant() const override { return v_; }
  EvalCursorPtr make_cursor(const Computation& c, const Cut& g) const override {
    return std::make_unique<ConstCursor>(c, g, v_);
  }

 private:
  bool v_;
};

// ---- Not ---------------------------------------------------------------------

class NotPredicate final : public Predicate {
 public:
  explicit NotPredicate(PredicatePtr p) : p_(std::move(p)) {}
  bool eval(const Computation& c, const Cut& g) const override {
    return !p_->eval(c, g);
  }
  ClassSet classes(const Computation&) const override { return 0; }
  std::string describe() const override { return "!(" + p_->describe() + ")"; }
  PredicatePtr negate() const override { return p_; }
  EvalCursorPtr make_cursor(const Computation& c, const Cut& g) const override {
    return std::make_unique<NotCursor>(c, g, p_->make_cursor(c, g));
  }

 private:
  PredicatePtr p_;
};

// ---- And / Or -----------------------------------------------------------------

class AndPredicate final : public Predicate {
 public:
  explicit AndPredicate(std::vector<PredicatePtr> ch) : ch_(std::move(ch)) {}

  bool eval(const Computation& c, const Cut& g) const override {
    for (const auto& p : ch_)
      if (!p->eval(c, g)) return false;
    return true;
  }

  ClassSet classes(const Computation& c) const override {
    // Intersection-stable classes survive conjunction. kClassLocal is
    // dropped: two locals on different processes are conjunctive but not
    // local (and via closure a wrong local claim would imply disjunctive).
    ClassSet acc = kClassConjunctive | kClassLinear | kClassPostLinear |
                   kClassRegular | kClassStable;
    for (const auto& p : ch_) acc &= p->classes(c);
    return close_classes(acc);
  }

  std::string describe() const override { return join_desc(" && "); }

  ProcId forbidden(const Computation& c, const Cut& g) const override {
    for (const auto& p : ch_)
      if (!p->eval(c, g)) return p->forbidden(c, g);
    HBCT_ASSERT_MSG(false, "forbidden() called on satisfied conjunction");
  }

  ProcId forbidden_down(const Computation& c, const Cut& g) const override {
    for (const auto& p : ch_)
      if (!p->eval(c, g)) return p->forbidden_down(c, g);
    HBCT_ASSERT_MSG(false, "forbidden_down() called on satisfied conjunction");
  }

  // Any conjunct may be the false one forbidden() delegates to, so the
  // conjunction has an oracle only when every conjunct does.
  bool has_forbidden() const override {
    for (const auto& p : ch_)
      if (!p->has_forbidden()) return false;
    return true;
  }
  bool has_forbidden_down() const override {
    for (const auto& p : ch_)
      if (!p->has_forbidden_down()) return false;
    return true;
  }

  PredicatePtr negate() const override {
    std::vector<PredicatePtr> neg;
    neg.reserve(ch_.size());
    for (const auto& p : ch_) neg.push_back(p->negate());
    return make_or(std::move(neg));
  }

  std::vector<PredicatePtr> conjuncts() const override { return ch_; }

  EvalCursorPtr make_cursor(const Computation& c, const Cut& g) const override {
    return make_junction_cursor(ch_, c, g, /*conjunction=*/true);
  }

  std::string join_desc(const char* sep) const {
    std::ostringstream os;
    for (std::size_t i = 0; i < ch_.size(); ++i) {
      if (i) os << sep;
      os << "(" << ch_[i]->describe() << ")";
    }
    return os.str();
  }

 private:
  std::vector<PredicatePtr> ch_;
};

class OrPredicate final : public Predicate {
 public:
  explicit OrPredicate(std::vector<PredicatePtr> ch) : ch_(std::move(ch)) {}

  bool eval(const Computation& c, const Cut& g) const override {
    for (const auto& p : ch_)
      if (p->eval(c, g)) return true;
    return false;
  }

  ClassSet classes(const Computation& c) const override {
    // Union-stable classes survive disjunction (kClassLocal dropped, as for
    // conjunction: a wrong local claim would imply conjunctive).
    ClassSet acc = kClassDisjunctive | kClassStable;
    for (const auto& p : ch_) acc &= p->classes(c);
    return close_classes(acc);
  }

  std::string describe() const override {
    std::ostringstream os;
    for (std::size_t i = 0; i < ch_.size(); ++i) {
      if (i) os << " || ";
      os << "(" << ch_[i]->describe() << ")";
    }
    return os.str();
  }

  PredicatePtr negate() const override {
    std::vector<PredicatePtr> neg;
    neg.reserve(ch_.size());
    for (const auto& p : ch_) neg.push_back(p->negate());
    return make_and(std::move(neg));
  }

  std::vector<PredicatePtr> disjuncts() const override { return ch_; }

  EvalCursorPtr make_cursor(const Computation& c, const Cut& g) const override {
    return make_junction_cursor(ch_, c, g, /*conjunction=*/false);
  }

 private:
  std::vector<PredicatePtr> ch_;
};

// ---- Asserted-class wrapper -----------------------------------------------------

class AssertedPredicate final : public Predicate {
 public:
  AssertedPredicate(std::function<bool(const Computation&, const Cut&)> fn,
                    ClassSet cls, std::string desc)
      : fn_(std::move(fn)), cls_(close_classes(cls)), desc_(std::move(desc)) {}
  bool eval(const Computation& c, const Cut& g) const override {
    return fn_(c, g);
  }
  ClassSet classes(const Computation&) const override { return cls_; }
  std::string describe() const override { return desc_; }
  bool classes_asserted() const override { return cls_ != 0; }

 private:
  std::function<bool(const Computation&, const Cut&)> fn_;
  ClassSet cls_;
  std::string desc_;
};

// ---- Inference-refined wrapper ---------------------------------------------

/// Forwards everything to the wrapped predicate but unions machine-derived
/// class bits (analysis/infer.h) into classes(). The structural probes
/// (as_conjunctive / as_disjunctive dynamic casts) do not see through the
/// wrapper, so the optimizer only installs it when the class-based route it
/// unlocks outranks the structural ones.
class RefinedPredicate final : public Predicate {
 public:
  RefinedPredicate(PredicatePtr inner, ClassSet extra, ClassSet neg_extra)
      : inner_(std::move(inner)),
        extra_(close_classes(extra)),
        neg_extra_(close_classes(neg_extra)) {}

  bool eval(const Computation& c, const Cut& g) const override {
    return inner_->eval(c, g);
  }
  ClassSet classes(const Computation& c) const override {
    return close_classes(inner_->classes(c) | extra_);
  }
  std::string describe() const override { return inner_->describe(); }
  ProcId forbidden(const Computation& c, const Cut& g) const override {
    return inner_->forbidden(c, g);
  }
  ProcId forbidden_down(const Computation& c, const Cut& g) const override {
    return inner_->forbidden_down(c, g);
  }
  bool has_forbidden() const override { return inner_->has_forbidden(); }
  bool has_forbidden_down() const override {
    return inner_->has_forbidden_down();
  }
  bool classes_asserted() const override {
    return inner_->classes_asserted();
  }
  PredicatePtr negate() const override {
    return make_refined(inner_->negate(), neg_extra_, extra_);
  }
  std::optional<bool> as_constant() const override {
    return inner_->as_constant();
  }
  std::vector<PredicatePtr> disjuncts() const override {
    return inner_->disjuncts();
  }
  std::vector<PredicatePtr> conjuncts() const override {
    return inner_->conjuncts();
  }
  EvalCursorPtr make_cursor(const Computation& c,
                            const Cut& g) const override {
    return inner_->make_cursor(c, g);
  }

 private:
  PredicatePtr inner_;
  ClassSet extra_;
  ClassSet neg_extra_;
};

}  // namespace

PredicatePtr Predicate::negate() const {
  return std::make_shared<NotPredicate>(shared_from_this());
}

EvalCursorPtr Predicate::make_cursor(const Computation& c,
                                     const Cut& g) const {
  return std::make_unique<ScratchEvalCursor>(*this, c, g);
}

PredicatePtr make_true() { return std::make_shared<ConstPredicate>(true); }
PredicatePtr make_false() { return std::make_shared<ConstPredicate>(false); }

PredicatePtr make_and(std::vector<PredicatePtr> children) {
  HBCT_ASSERT(!children.empty());
  if (children.size() == 1) return children[0];
  // A conjunction of conjunctive predicates is itself conjunctive; build the
  // structured form so dispatch can use the conjunctive-specific algorithms.
  std::vector<LocalPredicatePtr> locals;
  bool all_conjunctive = true;
  for (const auto& ch : children) {
    auto conj = as_conjunctive(ch);
    if (!conj) {
      all_conjunctive = false;
      break;
    }
    locals.insert(locals.end(), conj->locals().begin(), conj->locals().end());
  }
  if (all_conjunctive) return make_conjunctive(std::move(locals));
  return std::make_shared<AndPredicate>(std::move(children));
}

PredicatePtr make_and(PredicatePtr a, PredicatePtr b) {
  std::vector<PredicatePtr> v;
  v.push_back(std::move(a));
  v.push_back(std::move(b));
  return make_and(std::move(v));
}

PredicatePtr make_or(std::vector<PredicatePtr> children) {
  HBCT_ASSERT(!children.empty());
  if (children.size() == 1) return children[0];
  // Dually, a disjunction of disjunctive predicates stays disjunctive.
  std::vector<LocalPredicatePtr> locals;
  bool all_disjunctive = true;
  for (const auto& ch : children) {
    auto disj = as_disjunctive(ch);
    if (!disj) {
      all_disjunctive = false;
      break;
    }
    locals.insert(locals.end(), disj->locals().begin(), disj->locals().end());
  }
  if (all_disjunctive) return make_disjunctive(std::move(locals));
  return std::make_shared<OrPredicate>(std::move(children));
}

PredicatePtr make_or(PredicatePtr a, PredicatePtr b) {
  std::vector<PredicatePtr> v;
  v.push_back(std::move(a));
  v.push_back(std::move(b));
  return make_or(std::move(v));
}

PredicatePtr make_not(PredicatePtr p) {
  HBCT_ASSERT(p);
  return p->negate();
}

PredicatePtr make_asserted(
    std::function<bool(const Computation&, const Cut&)> fn, ClassSet classes,
    std::string description) {
  return std::make_shared<AssertedPredicate>(std::move(fn), classes,
                                             std::move(description));
}

PredicatePtr make_stable(std::function<bool(const Computation&, const Cut&)> fn,
                         std::string description) {
  return make_asserted(std::move(fn), kClassStable, std::move(description));
}

PredicatePtr make_terminated() {
  return make_stable(
      [](const Computation& c, const Cut& g) { return g == c.final_cut(); },
      "terminated");
}

PredicatePtr make_refined(PredicatePtr p, ClassSet extra,
                          ClassSet negation_extra) {
  HBCT_ASSERT(p);
  if (extra == 0 && negation_extra == 0) return p;
  return std::make_shared<RefinedPredicate>(std::move(p), extra,
                                            negation_extra);
}

}  // namespace hbct
