// Incremental (online) construction of a Computation.
//
// The paper closes with "develop efficient on-line versions of our
// algorithms" as future work; this module is the substrate for that: a
// Computation that grows one event at a time while keeping every
// append-friendly table (forward vector clocks, variable timelines,
// channel prefix counters, linearization) valid after each event, in O(n)
// amortized per event. Reverse vector clocks depend on the future and are
// recomputed lazily by Computation when an offline-style query needs them.
//
// Two feed surfaces share one implementation:
//   - the unchecked methods (internal/send/receive/...) assert on misuse,
//     matching ComputationBuilder's contract for trusted in-process callers;
//   - the try_* methods return a typed AppendError instead, so a stream fed
//     from an untrusted source (the serve layer's wire decoder) can reject a
//     malformed append without corrupting the session or crashing the host.
//
// Prefix garbage collection: collect_prefix(cut) discards the storage of
// every event at or below a consistent cut — payloads, vector-clock rows,
// variable-timeline entries and channel prefix counters — keeping resident
// memory proportional to the open frontier rather than the stream length.
// Indices stay absolute; the underlying Computation records the trim offset
// per process (Computation::trimmed).
#pragma once

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "poset/computation.h"

namespace hbct {

/// Typed result of a guarded append. kNone means the event was applied.
enum class AppendError : std::uint8_t {
  kNone = 0,
  kBadProc,             // ProcId outside [0, num_procs)
  kSelfMessage,         // send(i, i): self-messages are not part of the model
  kUnknownMsg,          // receive() of a MsgId never returned by send()
  kMsgAlreadyReceived,  // receive() of an already-delivered MsgId
  kWrongReceiver,       // receive() on a process other than the send's target
  kBadVar,              // VarId never registered
  kInitialAfterEvent,   // set_initial() after the first event
  kNoEventToWrite,      // write() on a process that has no events yet
  kFinished,            // feed after finish() (monitor / serve layer)
};

const char* to_string(AppendError e);

class OnlineAppender {
 public:
  explicit OnlineAppender(std::int32_t num_procs);

  /// Registers a variable (any time; a mid-run registration backfills an
  /// all-zero history).
  VarId var(std::string_view name);

  /// Initial values may only be set before the first event.
  void set_initial(ProcId i, VarId v, std::int64_t value);

  EventId internal(ProcId i);
  MsgId send(ProcId from, ProcId to);
  EventId receive(ProcId to, MsgId m);

  /// Applies `var = value` to the most recently appended event of proc i.
  void write(ProcId i, VarId v, std::int64_t value);
  void write(ProcId i, std::string_view name, std::int64_t value);

  // ---- Guarded appends ----------------------------------------------------
  // Same semantics as the methods above, but every misuse the unchecked API
  // asserts on is returned as an AppendError and leaves the computation
  // untouched. `out` (when non-null) receives the result on success.

  AppendError try_set_initial(ProcId i, VarId v, std::int64_t value);
  AppendError try_internal(ProcId i, EventId* out = nullptr);
  AppendError try_send(ProcId from, ProcId to, MsgId* out = nullptr);
  AppendError try_receive(ProcId to, MsgId m, EventId* out = nullptr);
  AppendError try_write(ProcId i, VarId v, std::int64_t value);

  // ---- Prefix garbage collection ------------------------------------------

  /// Discards the storage of every event at or below `keep_from` (a
  /// consistent cut, componentwise >= any previous collection's cut).
  /// In-flight send clocks whose arena rows fall below the cut are
  /// materialized first, so later receives still merge correctly. Returns
  /// the number of events reclaimed by this call.
  std::int64_t collect_prefix(const Cut& keep_from);

  /// Events still resident (= total appended - reclaimed).
  std::int64_t resident_events() const { return c_.resident_events(); }
  EventIndex trimmed(ProcId i) const { return c_.trimmed(i); }

  /// The growing happened-before model. Valid after every append.
  const Computation& computation() const { return c_; }

  /// The cut of everything observed so far (the current frontier).
  Cut current_cut() const { return c_.final_cut(); }

 private:
  EventId append(ProcId i, Event ev, const VClock* extra);

  /// Bookkeeping for a sent-but-not-yet-received message. The map holds
  /// only in-flight messages (receives erase their entry), so message
  /// bookkeeping is O(open channels), not O(stream length).
  struct PendingMsg {
    ProcId src = -1;
    ProcId dst = -1;
    EventIndex send_index = 0;
    /// Owned copy of the send's clock, filled by collect_prefix when the
    /// arena row it would be read from is about to be reclaimed.
    VClock clock;
    bool clock_valid = false;
  };

  Computation c_;
  std::unordered_map<MsgId, PendingMsg> in_flight_;
  MsgId next_msg_ = 0;
};

}  // namespace hbct
