// Incremental (online) construction of a Computation.
//
// The paper closes with "develop efficient on-line versions of our
// algorithms" as future work; this module is the substrate for that: a
// Computation that grows one event at a time while keeping every
// append-friendly table (forward vector clocks, variable timelines,
// channel prefix counters, linearization) valid after each event, in O(n)
// amortized per event. Reverse vector clocks depend on the future and are
// recomputed lazily by Computation when an offline-style query needs them.
#pragma once

#include <string_view>
#include <vector>

#include "poset/computation.h"

namespace hbct {

class OnlineAppender {
 public:
  explicit OnlineAppender(std::int32_t num_procs);

  /// Registers a variable (any time; a mid-run registration backfills an
  /// all-zero history).
  VarId var(std::string_view name);

  /// Initial values may only be set before the first event.
  void set_initial(ProcId i, VarId v, std::int64_t value);

  EventId internal(ProcId i);
  MsgId send(ProcId from, ProcId to);
  EventId receive(ProcId to, MsgId m);

  /// Applies `var = value` to the most recently appended event of proc i.
  void write(ProcId i, VarId v, std::int64_t value);
  void write(ProcId i, std::string_view name, std::int64_t value);

  /// The growing happened-before model. Valid after every append.
  const Computation& computation() const { return c_; }

  /// The cut of everything observed so far (the current frontier).
  Cut current_cut() const { return c_.final_cut(); }

 private:
  EventId append(ProcId i, Event ev, const VClock* extra);

  Computation c_;
  std::vector<ProcId> msg_src_, msg_dst_;
  std::vector<EventIndex> msg_send_index_;
  std::vector<bool> msg_received_;
};

}  // namespace hbct
