// Online predicate detection — the paper's "future work" realized for the
// classes where online algorithms are known:
//
//  - possibly(conjunctive): incremental Garg–Waldecker weak detection. The
//    candidate cut advances as events stream in; the watch fires the moment
//    the observed prefix contains a satisfying consistent cut, and the
//    fired cut is the *least* satisfying cut (it never changes later,
//    because new events only extend the order upward).
//  - possibly(disjunctive): fire on the first local position satisfying a
//    disjunct.
//  - invariant(disjunctive): AG(p) violations are EF(¬p) hits with ¬p
//    conjunctive — the same incremental machinery, reporting the violating
//    cut.
//  - stable predicates: evaluated on the current frontier after each event;
//    once true they stay true, so the first hit decides EF (= AF).
//
// All verdicts are *prefix-stable*: once fired they remain correct for
// every extension of the computation.
//
// Freeze rule: a process's newest event may still receive variable writes
// (writes are fed after the event, as in the builder API), so watches only
// evaluate local states up to each process's second-newest event; the tail
// thaws when the next event of that process arrives, or when finish()
// declares the stream complete. This keeps every fired verdict valid
// regardless of how late the writes trail their events.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/audit.h"
#include "detect/budget.h"
#include "detect/until_inc.h"
#include "online/appender.h"
#include "predicate/conjunctive.h"
#include "predicate/disjunctive.h"
#include "util/stats.h"

namespace hbct {

using WatchId = std::int32_t;

/// The algorithmic class a watch runs under — the label observability
/// aggregates by (per-class fire counters/latency histograms in the serve
/// layer, per-class SLOs, bench_watch's mixed-class rows). Bounded, fixed
/// cardinality by construction.
enum class WatchKind : std::uint8_t {
  kConjunctive,  // watch_possibly(conjunctive)
  kInvariant,    // watch_invariant (AG via the conjunctive machinery)
  kDisjunctive,  // watch_possibly(disjunctive)
  kStable,       // watch_stable (channel/relational predicates ride here)
  kUntil,        // watch_until (streaming A3)
};
const char* to_string(WatchKind k);

struct WatchFire {
  WatchId watch = -1;
  /// The verdict this fire reports. Most watches only fire positively;
  /// until-watches also fire when the verdict becomes definitively false
  /// (I_q is known and no p-path reaches it — stable under extensions).
  /// Under a monitor budget (set_budget) a watch may also fire with
  /// kUnknown: the evaluation was cut short and `bound` says why.
  Verdict verdict = Verdict::kHolds;
  BoundReason bound = BoundReason::kNone;
  /// verdict == kHolds, kept for ergonomic positive-fire checks.
  bool holds = true;
  /// The cut exhibiting the watched condition (satisfying cut, violating
  /// cut, I_q for until-watches, or the frontier for stable watches).
  Cut cut;
  /// Sequence number of the event (1-based index into the observation)
  /// whose arrival triggered the fire; 0 when fired at registration.
  std::int64_t at_event = 0;
  /// Class of the watch that fired (== watch_class(watch)).
  WatchKind kind = WatchKind::kConjunctive;
  std::string description;
};

class OnlineMonitor {
 public:
  explicit OnlineMonitor(std::int32_t num_procs);

  // ---- Event feed (same contract as OnlineAppender) -----------------------
  VarId var(std::string_view name) { return app_.var(name); }
  void set_initial(ProcId i, VarId v, std::int64_t value) {
    app_.set_initial(i, v, value);
  }
  void internal(ProcId i);
  MsgId send(ProcId from, ProcId to);
  void receive(ProcId to, MsgId m);
  /// Writes apply to the latest event of proc i (call before the next
  /// event of that process, as with OnlineAppender).
  void write(ProcId i, std::string_view name, std::int64_t value);

  // ---- Guarded feed (serve layer / untrusted streams) ---------------------
  // AppendError instead of asserting; kFinished after finish(). A rejected
  // feed leaves the computation and every watch untouched.
  AppendError try_set_initial(ProcId i, VarId v, std::int64_t value);
  AppendError try_internal(ProcId i);
  AppendError try_send(ProcId from, ProcId to, MsgId* out = nullptr);
  AppendError try_receive(ProcId to, MsgId m);
  AppendError try_write(ProcId i, VarId v, std::int64_t value);

  /// Declares the stream complete: no further events or writes. Unfreezes
  /// the per-process tail events (see below) so every watch reaches its
  /// final verdict. When the final evaluation round trips the budget, the
  /// still-undecided watches fire with Verdict::kUnknown instead of staying
  /// silent. Idempotent.
  void finish();

  /// Caps the work (predicate evaluations + cut steps, shared across all
  /// watches) each event's evaluation round may perform, plus deadline and
  /// cancellation. A watch whose step runs out of budget simply suspends —
  /// its incremental state is resumable — and retries on the next event
  /// with a fresh work allowance. Default: unlimited.
  void set_budget(const Budget& b) { budget_ = b; }
  const Budget& budget() const { return budget_; }

  // ---- Watches -------------------------------------------------------------
  /// EF(p), p conjunctive. Fires once with the least satisfying cut.
  WatchId watch_possibly(ConjunctivePredicatePtr p);
  /// EF(p), p disjunctive. Fires once with a witness cut J(e).
  WatchId watch_possibly(DisjunctivePredicatePtr p);
  /// AG(p), p disjunctive: fires on violation with the violating cut.
  WatchId watch_invariant(DisjunctivePredicatePtr p);
  /// Stable p: fires when the frontier first satisfies p.
  WatchId watch_stable(PredicatePtr p);

  /// E[p U q], p conjunctive, q linear: streaming A3. The Chase–Garg walk
  /// toward I_q resumes as events arrive; once I_q lies inside the observed
  /// prefix the verdict is decided (Theorem 7 depends only on events below
  /// I_q) and the watch fires with holds = true or false. Prefix-stable
  /// both ways.
  WatchId watch_until(ConjunctivePredicatePtr p, PredicatePtr q);

  /// Audits every registered watch's predicates against the computation
  /// observed so far (analysis/audit.h). Each incremental algorithm is only
  /// prefix-stable because of a class claim — conjunctive/disjunctive
  /// structure, stability, and (load-bearing for streaming A3) the linear
  /// class and forbidden() oracle of until-watch q operands. Returns E1xx
  /// findings with messages prefixed by the watch id; empty means every
  /// claim held on the observed prefix. Read-only; safe between events.
  std::vector<Diagnostic> audit_watches(const AuditOptions& opt = {}) const;

  // ---- Prefix garbage collection ------------------------------------------

  /// Per-process minimum position any live watch may still need to read.
  /// Starts at the frozen limits and is pulled down by every undecided
  /// watch: a conjunctive watch needs its candidate/scan positions, a
  /// disjunctive watch its scan positions, and an until watch its q-walk
  /// candidate and EG-table scan floors (incremental mode — the decision
  /// replays off the table, so the already-scanned prefix is never re-read;
  /// DESIGN.md §18) or the whole prefix below I_q (batch mode, where
  /// Theorem 7's decision re-reads the entire sub-computation under the
  /// walk target). Monotone nondecreasing over the session's lifetime.
  Cut min_watch_frontier() const;

  /// Reclaims the computation prefix below the min-watch frontier (lowered
  /// to the greatest consistent cut under it). Verdicts, fire order and
  /// witness cuts are unaffected — the collected prefix is exactly the part
  /// no live watch can reference again. Returns events reclaimed.
  std::int64_t collect_prefix();

  std::int64_t resident_events() const { return app_.resident_events(); }

  /// Cumulative watch-evaluation work, including the incremental until
  /// counters (until_inc_evals = feed-time table advances, until_dec_evals
  /// = decision-time lazy extensions). The serve layer absorbs deltas of
  /// this into its metrics registry.
  const DetectStats& work() const { return work_; }

  /// Approximate heap footprint of all live watch state (scan vectors,
  /// candidate cuts, incremental until tables) — the serve layer's
  /// watch-state sizing gauge.
  std::size_t watch_state_bytes() const;

  /// Drains the fires triggered since the last poll.
  std::vector<WatchFire> poll();

  /// True when watch `w` has fired (whether or not polled yet).
  bool fired(WatchId w) const;

  /// The class `w` was registered under.
  WatchKind watch_class(WatchId w) const;

  const Computation& computation() const { return app_.computation(); }
  Cut current_cut() const { return app_.current_cut(); }
  std::int64_t events_seen() const { return computation().total_events(); }

 private:
  struct ConjWatch {
    WatchId id;
    ConjunctivePredicatePtr pred;
    bool violation_of_invariant;  // reporting flavor
    bool done = false;
    /// Candidate position per process; -1 = no true position found yet.
    std::vector<EventIndex> cand;
    /// Next position to test per process.
    std::vector<EventIndex> scan;
  };
  struct DisjWatch {
    WatchId id;
    DisjunctivePredicatePtr pred;
    bool done = false;
    std::vector<EventIndex> scan;  // next untested position per process
  };
  struct StableWatch {
    WatchId id;
    PredicatePtr pred;
    bool done = false;
  };
  struct UntilWatch {
    WatchId id;
    ConjunctivePredicatePtr p;
    PredicatePtr q;
    bool done = false;
    bool started = false;
    /// Incremental mode, latched from until_inc_enabled() at registration
    /// (flipping the global toggle mid-session is unsupported, as with the
    /// cursor toggle): the EG(p) table advances at feed time and the
    /// Theorem-7 decision replays off it, so the fire costs O(frontier)
    /// new work instead of a prefix sweep. Also selects the tighter GC pin
    /// in min_watch_frontier.
    bool inc = false;
    Cut cand;    // Chase-Garg frontier toward I_q
    Cut limits;  // reused frozen-limits buffer (inc feed path, no realloc)
    EgPrefixState eg;  // incremental EG(p) decision state (inc mode)
  };

  /// Largest local position of proc i whose state can no longer change.
  EventIndex frozen_limit(ProcId i) const;

  void on_event(ProcId i);
  void step_conj(ConjWatch& w);
  void step_disj(DisjWatch& w);
  void step_stable(StableWatch& w);
  void step_until(UntilWatch& w);
  void fire(WatchId id, Cut cut, const std::string& what,
            Verdict verdict = Verdict::kHolds,
            BoundReason bound = BoundReason::kNone);
  /// Budget checkpoint for the current evaluation round (always true when
  /// no round tracker is active, i.e. during unbudgeted use).
  bool round_ok() { return round_ == nullptr || round_->ok(); }

  OnlineAppender app_;
  std::vector<ConjWatch> conj_;
  std::vector<DisjWatch> disj_;
  std::vector<StableWatch> stable_;
  std::vector<UntilWatch> until_;
  std::vector<WatchFire> pending_;
  std::vector<bool> fired_;
  std::vector<WatchKind> kinds_;  // indexed by WatchId
  WatchId next_id_ = 0;
  bool finished_ = false;
  Budget budget_;
  /// Cumulative watch-evaluation work; each round's tracker is based here.
  DetectStats work_;
  BudgetTracker* round_ = nullptr;
};

}  // namespace hbct
