#include "online/appender.h"

#include "util/assert.h"

namespace hbct {

namespace {
std::size_t sz(std::int32_t v) { return static_cast<std::size_t>(v); }
}  // namespace

OnlineAppender::OnlineAppender(std::int32_t num_procs) {
  HBCT_ASSERT(num_procs > 0);
  const std::size_t n = sz(num_procs);
  c_.procs_.resize(n);
  c_.vclocks_.resize(n);
  c_.initial_.resize(n);
  c_.values_.resize(n);
  c_.sends_to_.assign(n, std::vector<std::vector<std::int32_t>>(n));
  c_.recvs_from_.assign(n, std::vector<std::vector<std::int32_t>>(n));
  c_.rvcache_.dirty.store(true, std::memory_order_release);
}

VarId OnlineAppender::var(std::string_view name) {
  auto it = c_.var_ids_.find(std::string(name));
  if (it != c_.var_ids_.end()) return it->second;
  const VarId id = static_cast<VarId>(c_.var_names_.size());
  c_.var_names_.emplace_back(name);
  c_.var_ids_.emplace(std::string(name), id);
  for (ProcId i = 0; i < c_.num_procs(); ++i) {
    c_.initial_[sz(i)].resize(c_.var_names_.size(), 0);
    // Backfill a constant-zero history up to the current position.
    c_.values_[sz(i)].emplace_back(c_.procs_[sz(i)].size() + 1, 0);
  }
  return id;
}

void OnlineAppender::set_initial(ProcId i, VarId v, std::int64_t value) {
  HBCT_ASSERT_MSG(c_.total_events_ == 0,
                  "initial values must precede the first event");
  HBCT_ASSERT(v >= 0 && sz(v) < c_.var_names_.size());
  c_.initial_[sz(i)][sz(v)] = value;
  c_.values_[sz(i)][sz(v)][0] = value;
}

EventId OnlineAppender::append(ProcId i, Event ev, const VClock* extra) {
  HBCT_ASSERT(i >= 0 && i < c_.num_procs());
  const std::size_t n = c_.procs_.size();
  auto& list = c_.procs_[sz(i)];

  // Forward vector clock, seeded from the last arena row of process i.
  VClock vc(n);
  if (!list.empty()) {
    const std::int32_t* prev =
        c_.vclocks_[sz(i)].data() + (list.size() - 1) * n;
    for (std::size_t j = 0; j < n; ++j) vc[j] = prev[j];
  }
  if (extra) vc.merge(*extra);
  vc[sz(i)] = static_cast<std::int32_t>(list.size()) + 1;

  // Channel prefix counters: every existing table of process i grows by
  // one; the affected channel's tail is bumped below.
  for (std::size_t j = 0; j < n; ++j) {
    auto& st = c_.sends_to_[sz(i)][j];
    if (!st.empty()) st.push_back(st.back());
    auto& rt = c_.recvs_from_[sz(i)][j];
    if (!rt.empty()) rt.push_back(rt.back());
  }
  if (ev.kind == EventKind::kSend) {
    auto& st = c_.sends_to_[sz(i)][sz(ev.peer)];
    if (st.empty()) st.assign(list.size() + 2, 0);
    ++st.back();
    ++c_.num_messages_;
  } else if (ev.kind == EventKind::kReceive) {
    auto& rt = c_.recvs_from_[sz(i)][sz(ev.peer)];
    if (rt.empty()) rt.assign(list.size() + 2, 0);
    ++rt.back();
  }

  // Variable timelines carry the previous value forward.
  for (auto& timeline : c_.values_[sz(i)]) timeline.push_back(timeline.back());

  list.push_back(std::move(ev));
  c_.vclocks_[sz(i)].insert(c_.vclocks_[sz(i)].end(), vc.raw().begin(),
                            vc.raw().end());
  const EventId id{i, static_cast<EventIndex>(list.size())};
  c_.linearization_.push_back(id);
  ++c_.total_events_;
  c_.rvcache_.dirty.store(true, std::memory_order_release);
  return id;
}

EventId OnlineAppender::internal(ProcId i) {
  return append(i, Event{}, nullptr);
}

MsgId OnlineAppender::send(ProcId from, ProcId to) {
  HBCT_ASSERT(to >= 0 && to < c_.num_procs());
  HBCT_ASSERT_MSG(from != to, "self-messages are not part of the model");
  const MsgId m = static_cast<MsgId>(msg_src_.size());
  Event ev;
  ev.kind = EventKind::kSend;
  ev.peer = to;
  ev.msg = m;
  const EventId id = append(from, std::move(ev), nullptr);
  msg_src_.push_back(from);
  msg_dst_.push_back(to);
  msg_send_index_.push_back(id.index);
  msg_received_.push_back(false);
  return m;
}

EventId OnlineAppender::receive(ProcId to, MsgId m) {
  HBCT_ASSERT_MSG(m >= 0 && sz(m) < msg_src_.size(), "unknown message");
  HBCT_ASSERT_MSG(!msg_received_[sz(m)], "message received twice");
  HBCT_ASSERT_MSG(msg_dst_[sz(m)] == to, "message delivered to wrong process");
  msg_received_[sz(m)] = true;
  Event ev;
  ev.kind = EventKind::kReceive;
  ev.peer = msg_src_[sz(m)];
  ev.msg = m;
  // Materialize the send clock: append() grows process `to`'s arena, and
  // while self-messages are excluded (so the source row would survive), an
  // owned copy keeps this robust against any future storage reshuffle.
  const VClock send_vc(c_.vclock(msg_src_[sz(m)], msg_send_index_[sz(m)]));
  return append(to, std::move(ev), &send_vc);
}

void OnlineAppender::write(ProcId i, VarId v, std::int64_t value) {
  HBCT_ASSERT(v >= 0 && sz(v) < c_.var_names_.size());
  auto& list = c_.procs_[sz(i)];
  HBCT_ASSERT_MSG(!list.empty(), "no event to annotate");
  list.back().writes.push_back(Assignment{v, value});
  c_.values_[sz(i)][sz(v)].back() = value;
}

void OnlineAppender::write(ProcId i, std::string_view name,
                           std::int64_t value) {
  write(i, var(name), value);
}

}  // namespace hbct
