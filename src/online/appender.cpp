#include "online/appender.h"

#include <algorithm>

#include "util/assert.h"

namespace hbct {

namespace {
std::size_t sz(std::int32_t v) { return static_cast<std::size_t>(v); }
}  // namespace

const char* to_string(AppendError e) {
  switch (e) {
    case AppendError::kNone: return "ok";
    case AppendError::kBadProc: return "process id out of range";
    case AppendError::kSelfMessage: return "self-messages are not part of the model";
    case AppendError::kUnknownMsg: return "unknown message";
    case AppendError::kMsgAlreadyReceived: return "message received twice";
    case AppendError::kWrongReceiver: return "message delivered to wrong process";
    case AppendError::kBadVar: return "variable id out of range";
    case AppendError::kInitialAfterEvent: return "initial values must precede the first event";
    case AppendError::kNoEventToWrite: return "no event to annotate";
    case AppendError::kFinished: return "stream already finished";
  }
  return "?";
}

OnlineAppender::OnlineAppender(std::int32_t num_procs) {
  HBCT_ASSERT(num_procs > 0);
  const std::size_t n = sz(num_procs);
  c_.procs_.resize(n);
  c_.vclocks_.resize(n);
  c_.initial_.resize(n);
  c_.values_.resize(n);
  c_.sends_to_.assign(n, std::vector<std::vector<std::int32_t>>(n));
  c_.recvs_from_.assign(n, std::vector<std::vector<std::int32_t>>(n));
  c_.rvcache_.dirty.store(true, std::memory_order_release);
}

VarId OnlineAppender::var(std::string_view name) {
  auto it = c_.var_ids_.find(std::string(name));
  if (it != c_.var_ids_.end()) return it->second;
  const VarId id = static_cast<VarId>(c_.var_names_.size());
  c_.var_names_.emplace_back(name);
  c_.var_ids_.emplace(std::string(name), id);
  for (ProcId i = 0; i < c_.num_procs(); ++i) {
    c_.initial_[sz(i)].resize(c_.var_names_.size(), 0);
    // Backfill a constant-zero history up to the current position (only
    // resident positions are stored when a prefix was collected; the
    // discarded prefix was all-zero for a just-registered variable anyway).
    c_.values_[sz(i)].emplace_back(c_.procs_[sz(i)].size() + 1, 0);
  }
  return id;
}

AppendError OnlineAppender::try_set_initial(ProcId i, VarId v,
                                            std::int64_t value) {
  if (i < 0 || i >= c_.num_procs()) return AppendError::kBadProc;
  if (v < 0 || sz(v) >= c_.var_names_.size()) return AppendError::kBadVar;
  if (c_.total_events_ != 0) return AppendError::kInitialAfterEvent;
  c_.initial_[sz(i)][sz(v)] = value;
  c_.values_[sz(i)][sz(v)][0] = value;
  return AppendError::kNone;
}

void OnlineAppender::set_initial(ProcId i, VarId v, std::int64_t value) {
  const AppendError e = try_set_initial(i, v, value);
  HBCT_ASSERT_MSG(e == AppendError::kNone, to_string(e));
}

EventId OnlineAppender::append(ProcId i, Event ev, const VClock* extra) {
  HBCT_ASSERT(i >= 0 && i < c_.num_procs());
  const std::size_t n = c_.procs_.size();
  auto& list = c_.procs_[sz(i)];

  // Forward vector clock, seeded from the last arena row of process i (the
  // boundary row of a collected prefix counts: it is the clock of the
  // newest reclaimed event).
  VClock vc(n);
  auto& arena = c_.vclocks_[sz(i)];
  if (!arena.empty()) {
    const std::int32_t* prev = arena.data() + (arena.size() - n);
    for (std::size_t j = 0; j < n; ++j) vc[j] = prev[j];
  }
  if (extra) vc.merge(*extra);
  const EventIndex idx =
      c_.trimmed(i) + static_cast<EventIndex>(list.size()) + 1;
  vc[sz(i)] = idx;

  // Channel prefix counters: every existing table of process i grows by
  // one; the affected channel's tail is bumped below.
  for (std::size_t j = 0; j < n; ++j) {
    auto& st = c_.sends_to_[sz(i)][j];
    if (!st.empty()) st.push_back(st.back());
    auto& rt = c_.recvs_from_[sz(i)][j];
    if (!rt.empty()) rt.push_back(rt.back());
  }
  if (ev.kind == EventKind::kSend) {
    auto& st = c_.sends_to_[sz(i)][sz(ev.peer)];
    if (st.empty()) st.assign(list.size() + 2, 0);
    ++st.back();
    ++c_.num_messages_;
  } else if (ev.kind == EventKind::kReceive) {
    auto& rt = c_.recvs_from_[sz(i)][sz(ev.peer)];
    if (rt.empty()) rt.assign(list.size() + 2, 0);
    ++rt.back();
  }

  // Variable timelines carry the previous value forward.
  for (auto& timeline : c_.values_[sz(i)]) timeline.push_back(timeline.back());

  list.push_back(std::move(ev));
  arena.insert(arena.end(), vc.raw().begin(), vc.raw().end());
  const EventId id{i, idx};
  c_.linearization_.push_back(id);
  ++c_.total_events_;
  c_.rvcache_.dirty.store(true, std::memory_order_release);
  return id;
}

AppendError OnlineAppender::try_internal(ProcId i, EventId* out) {
  if (i < 0 || i >= c_.num_procs()) return AppendError::kBadProc;
  const EventId id = append(i, Event{}, nullptr);
  if (out) *out = id;
  return AppendError::kNone;
}

EventId OnlineAppender::internal(ProcId i) {
  EventId id;
  const AppendError e = try_internal(i, &id);
  HBCT_ASSERT_MSG(e == AppendError::kNone, to_string(e));
  return id;
}

AppendError OnlineAppender::try_send(ProcId from, ProcId to, MsgId* out) {
  if (from < 0 || from >= c_.num_procs() || to < 0 || to >= c_.num_procs())
    return AppendError::kBadProc;
  if (from == to) return AppendError::kSelfMessage;
  const MsgId m = next_msg_++;
  Event ev;
  ev.kind = EventKind::kSend;
  ev.peer = to;
  ev.msg = m;
  const EventId id = append(from, std::move(ev), nullptr);
  in_flight_.emplace(m, PendingMsg{from, to, id.index, VClock(), false});
  if (out) *out = m;
  return AppendError::kNone;
}

MsgId OnlineAppender::send(ProcId from, ProcId to) {
  MsgId m = kNoMsg;
  const AppendError e = try_send(from, to, &m);
  HBCT_ASSERT_MSG(e == AppendError::kNone, to_string(e));
  return m;
}

AppendError OnlineAppender::try_receive(ProcId to, MsgId m, EventId* out) {
  if (to < 0 || to >= c_.num_procs()) return AppendError::kBadProc;
  if (m < 0 || m >= next_msg_) return AppendError::kUnknownMsg;
  auto it = in_flight_.find(m);
  // A valid id no longer in flight was delivered already.
  if (it == in_flight_.end()) return AppendError::kMsgAlreadyReceived;
  if (it->second.dst != to) return AppendError::kWrongReceiver;
  Event ev;
  ev.kind = EventKind::kReceive;
  ev.peer = it->second.src;
  ev.msg = m;
  // Materialize the send clock: append() grows process `to`'s arena, and
  // collect_prefix may already have reclaimed the source row (in which case
  // the pending entry carries an owned copy).
  const VClock send_vc =
      it->second.clock_valid
          ? std::move(it->second.clock)
          : VClock(c_.vclock(it->second.src, it->second.send_index));
  in_flight_.erase(it);
  const EventId id = append(to, std::move(ev), &send_vc);
  if (out) *out = id;
  return AppendError::kNone;
}

EventId OnlineAppender::receive(ProcId to, MsgId m) {
  EventId id;
  const AppendError e = try_receive(to, m, &id);
  HBCT_ASSERT_MSG(e == AppendError::kNone, to_string(e));
  return id;
}

AppendError OnlineAppender::try_write(ProcId i, VarId v, std::int64_t value) {
  if (i < 0 || i >= c_.num_procs()) return AppendError::kBadProc;
  if (v < 0 || sz(v) >= c_.var_names_.size()) return AppendError::kBadVar;
  auto& list = c_.procs_[sz(i)];
  if (list.empty()) return AppendError::kNoEventToWrite;
  list.back().writes.push_back(Assignment{v, value});
  c_.values_[sz(i)][sz(v)].back() = value;
  return AppendError::kNone;
}

void OnlineAppender::write(ProcId i, VarId v, std::int64_t value) {
  const AppendError e = try_write(i, v, value);
  HBCT_ASSERT_MSG(e == AppendError::kNone, to_string(e));
}

void OnlineAppender::write(ProcId i, std::string_view name,
                           std::int64_t value) {
  write(i, var(name), value);
}

std::int64_t OnlineAppender::collect_prefix(const Cut& keep_from) {
  const std::size_t n = c_.procs_.size();
  HBCT_ASSERT(keep_from.size() == n);
  if (c_.trim_.empty()) c_.trim_.assign(n, 0);
  std::int64_t reclaimed = 0;
  for (ProcId i = 0; i < c_.num_procs(); ++i) {
    HBCT_ASSERT_MSG(keep_from[sz(i)] >= c_.trim_[sz(i)] &&
                        keep_from[sz(i)] <= c_.num_events(i),
                    "collect_prefix cut out of range");
    reclaimed += keep_from[sz(i)] - c_.trim_[sz(i)];
  }
  if (reclaimed == 0) return 0;
  HBCT_ASSERT_MSG(c_.is_consistent(keep_from),
                  "collect_prefix requires a consistent cut");

  // In-flight sends whose arena row falls below the cut keep an owned copy
  // of their clock for the eventual receive's merge.
  for (auto& [m, pm] : in_flight_) {
    (void)m;
    if (pm.clock_valid) continue;
    if (pm.send_index < keep_from[sz(pm.src)]) {
      pm.clock = VClock(c_.vclock(pm.src, pm.send_index));
      pm.clock_valid = true;
    }
  }

  for (ProcId pi = 0; pi < c_.num_procs(); ++pi) {
    const std::size_t i = sz(pi);
    const EventIndex old_t = c_.trim_[i];
    const EventIndex new_t = keep_from[i];
    const EventIndex d = new_t - old_t;
    if (d == 0) continue;
    auto& list = c_.procs_[i];
    list.erase(list.begin(), list.begin() + d);
    // Clock rows: keep one boundary row (the clock of event new_t) so
    // consistency tests at the trim cut and next-append seeding still work.
    const EventIndex old_base = old_t == 0 ? 1 : old_t;
    auto& arena = c_.vclocks_[i];
    arena.erase(arena.begin(),
                arena.begin() + static_cast<std::ptrdiff_t>(
                                    sz(new_t - old_base) * n));
    for (auto& tl : c_.values_[i]) tl.erase(tl.begin(), tl.begin() + d);
    for (std::size_t j = 0; j < n; ++j) {
      auto& st = c_.sends_to_[i][j];
      if (!st.empty()) st.erase(st.begin(), st.begin() + d);
      auto& rt = c_.recvs_from_[i][j];
      if (!rt.empty()) rt.erase(rt.begin(), rt.begin() + d);
    }
    c_.trim_[i] = new_t;
  }

  auto& lin = c_.linearization_;
  lin.erase(std::remove_if(lin.begin(), lin.end(),
                           [&](const EventId& e) {
                             return e.index <= c_.trim_[sz(e.proc)];
                           }),
            lin.end());
  c_.trimmed_events_ += reclaimed;
  c_.rvcache_.dirty.store(true, std::memory_order_release);
  return reclaimed;
}

}  // namespace hbct
