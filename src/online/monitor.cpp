#include "online/monitor.h"

#include "detect/until.h"
#include "obs/flight.h"
#include "obs/trace.h"
#include "util/assert.h"
#include "util/string_util.h"

namespace hbct {

namespace {
std::size_t sz(std::int32_t v) { return static_cast<std::size_t>(v); }
}  // namespace

const char* to_string(WatchKind k) {
  switch (k) {
    case WatchKind::kConjunctive: return "conjunctive";
    case WatchKind::kInvariant: return "invariant";
    case WatchKind::kDisjunctive: return "disjunctive";
    case WatchKind::kStable: return "stable";
    case WatchKind::kUntil: return "until";
  }
  return "?";
}

OnlineMonitor::OnlineMonitor(std::int32_t num_procs) : app_(num_procs) {}

void OnlineMonitor::internal(ProcId i) {
  app_.internal(i);
  on_event(i);
}

MsgId OnlineMonitor::send(ProcId from, ProcId to) {
  const MsgId m = app_.send(from, to);
  on_event(from);
  return m;
}

void OnlineMonitor::receive(ProcId to, MsgId m) {
  app_.receive(to, m);
  on_event(to);
}

void OnlineMonitor::write(ProcId i, std::string_view name,
                          std::int64_t value) {
  // The freeze rule guarantees no watch has examined the tail position yet,
  // so the write needs no rewinding.
  app_.write(i, name, value);
}

AppendError OnlineMonitor::try_set_initial(ProcId i, VarId v,
                                           std::int64_t value) {
  if (finished_) return AppendError::kFinished;
  return app_.try_set_initial(i, v, value);
}

AppendError OnlineMonitor::try_internal(ProcId i) {
  if (finished_) return AppendError::kFinished;
  const AppendError e = app_.try_internal(i);
  if (e == AppendError::kNone) on_event(i);
  return e;
}

AppendError OnlineMonitor::try_send(ProcId from, ProcId to, MsgId* out) {
  if (finished_) return AppendError::kFinished;
  const AppendError e = app_.try_send(from, to, out);
  if (e == AppendError::kNone) on_event(from);
  return e;
}

AppendError OnlineMonitor::try_receive(ProcId to, MsgId m) {
  if (finished_) return AppendError::kFinished;
  const AppendError e = app_.try_receive(to, m);
  if (e == AppendError::kNone) on_event(to);
  return e;
}

AppendError OnlineMonitor::try_write(ProcId i, VarId v, std::int64_t value) {
  if (finished_) return AppendError::kFinished;
  return app_.try_write(i, v, value);
}

void OnlineMonitor::finish() {
  if (finished_) return;
  finished_ = true;
  ScopedSpan span(budget_.trace, "monitor.finish");
  static const std::uint16_t kFinish = FlightRecorder::global().intern(
      "monitor.finish", "events", "watches");
  FlightScope flight(
      FlightRecorder::global(), kFinish, events_seen(),
      static_cast<std::int64_t>(conj_.size() + disj_.size() +
                                stable_.size() + until_.size()));
  BudgetTracker t(budget_, work_);
  round_ = &t;
  for (auto& w : conj_) step_conj(w);
  for (auto& w : disj_) step_disj(w);
  for (auto& w : stable_) step_stable(w);
  for (auto& w : until_) step_until(w);
  round_ = nullptr;
  if (t.exceeded()) {
    // The final round ran out of budget: watches still undecided can no
    // longer be resumed (no further events arrive), so they report kUnknown
    // rather than staying silent as if the condition never occurred.
    const auto give_up = [&](WatchId id, auto& w, const char* kind) {
      if (w.done) return;
      w.done = true;
      fire(id, app_.current_cut(),
           std::string("undecided (budget): ") + kind, Verdict::kUnknown,
           t.reason());
    };
    for (auto& w : conj_) give_up(w.id, w, "conjunctive watch");
    for (auto& w : disj_) give_up(w.id, w, "disjunctive watch");
    for (auto& w : stable_) give_up(w.id, w, "stable watch");
    for (auto& w : until_) give_up(w.id, w, "until watch");
  }
  // Fire-once hardening: nothing can legally change after the final round,
  // so every watch is closed out — a stray late feed can never resume one
  // into a second (possibly contradictory) verdict.
  for (auto& w : conj_) w.done = true;
  for (auto& w : disj_) w.done = true;
  for (auto& w : stable_) w.done = true;
  for (auto& w : until_) w.done = true;
}

EventIndex OnlineMonitor::frozen_limit(ProcId i) const {
  const EventIndex n = app_.computation().num_events(i);
  if (finished_) return n;
  // The newest event may still receive writes; position 0 (initial values)
  // is always frozen because set_initial precedes the first event globally.
  return n > 0 ? n - 1 : 0;
}

void OnlineMonitor::on_event(ProcId) {
  // Each event's evaluation round gets a fresh work allowance; the tracker
  // bases itself on the cumulative counters, so only this round's work is
  // charged. A tripped round suspends the remaining steps; every watch's
  // incremental state resumes on the next event.
  ScopedSpan span(budget_.trace, "monitor.round");
  BudgetTracker t(budget_, work_);
  round_ = &t;
  for (auto& w : conj_) step_conj(w);
  for (auto& w : disj_) step_disj(w);
  for (auto& w : stable_) step_stable(w);
  for (auto& w : until_) step_until(w);
  round_ = nullptr;
}

void OnlineMonitor::fire(WatchId id, Cut cut, const std::string& what,
                         Verdict verdict, BoundReason bound) {
  // Fire-once discipline: every fired verdict is prefix-stable, so a second
  // fire could only repeat or contradict the first. The done flags make a
  // re-fire unreachable in normal operation; this guard pins the invariant
  // against any future stepping bug (notably the budget-kUnknown fast path,
  // which must not be resumed into a definite verdict later).
  if (fired_[sz(id)]) return;
  WatchFire f;
  f.watch = id;
  f.verdict = verdict;
  f.bound = bound;
  f.holds = verdict == Verdict::kHolds;
  f.cut = std::move(cut);
  f.at_event = events_seen();
  f.kind = kinds_[sz(id)];
  f.description = what;
  pending_.push_back(std::move(f));
  fired_[sz(id)] = true;
  static const std::uint16_t kFire =
      FlightRecorder::global().intern("watch.fire", "watch", "verdict");
  FlightRecorder::global().instant(kFire, id,
                                   static_cast<std::int64_t>(verdict));
}

WatchId OnlineMonitor::watch_possibly(ConjunctivePredicatePtr p) {
  HBCT_ASSERT(p);
  HBCT_ASSERT_MSG(app_.computation().trimmed_events() == 0,
                  "scanning watches must be registered before prefix GC");
  const std::int32_t n = app_.computation().num_procs();
  for (const auto& l : p->locals())
    HBCT_ASSERT_MSG(l->proc() < n, "conjunct references an unknown process");
  ConjWatch w;
  w.id = next_id_++;
  fired_.push_back(false);
  kinds_.push_back(WatchKind::kConjunctive);
  w.pred = std::move(p);
  w.violation_of_invariant = false;
  w.cand.assign(sz(n), -1);
  w.scan.assign(sz(n), 0);
  conj_.push_back(std::move(w));
  BudgetTracker t(budget_, work_);
  round_ = &t;
  step_conj(conj_.back());
  round_ = nullptr;
  return conj_.back().id;
}

WatchId OnlineMonitor::watch_invariant(DisjunctivePredicatePtr p) {
  HBCT_ASSERT(p);
  HBCT_ASSERT_MSG(app_.computation().trimmed_events() == 0,
                  "scanning watches must be registered before prefix GC");
  auto notp = as_conjunctive(p->negate());
  HBCT_ASSERT(notp);
  const std::int32_t n = app_.computation().num_procs();
  ConjWatch w;
  w.id = next_id_++;
  fired_.push_back(false);
  kinds_.push_back(WatchKind::kInvariant);
  w.pred = notp;
  w.violation_of_invariant = true;
  w.cand.assign(sz(n), -1);
  w.scan.assign(sz(n), 0);
  conj_.push_back(std::move(w));
  BudgetTracker t(budget_, work_);
  round_ = &t;
  step_conj(conj_.back());
  round_ = nullptr;
  return conj_.back().id;
}

WatchId OnlineMonitor::watch_possibly(DisjunctivePredicatePtr p) {
  HBCT_ASSERT(p);
  HBCT_ASSERT_MSG(app_.computation().trimmed_events() == 0,
                  "scanning watches must be registered before prefix GC");
  const std::int32_t n = app_.computation().num_procs();
  DisjWatch w;
  w.id = next_id_++;
  fired_.push_back(false);
  kinds_.push_back(WatchKind::kDisjunctive);
  w.pred = std::move(p);
  w.scan.assign(sz(n), 0);
  disj_.push_back(std::move(w));
  BudgetTracker t(budget_, work_);
  round_ = &t;
  step_disj(disj_.back());
  round_ = nullptr;
  return disj_.back().id;
}

WatchId OnlineMonitor::watch_until(ConjunctivePredicatePtr p,
                                   PredicatePtr q) {
  HBCT_ASSERT(p);
  HBCT_ASSERT(q);
  HBCT_ASSERT_MSG(app_.computation().trimmed_events() == 0,
                  "scanning watches must be registered before prefix GC");
  UntilWatch w;
  w.id = next_id_++;
  fired_.push_back(false);
  kinds_.push_back(WatchKind::kUntil);
  w.p = std::move(p);
  w.q = std::move(q);
  w.inc = until_inc_enabled();
  w.cand = app_.computation().initial_cut();
  until_.push_back(std::move(w));
  BudgetTracker t(budget_, work_);
  round_ = &t;
  step_until(until_.back());
  round_ = nullptr;
  return until_.back().id;
}

WatchId OnlineMonitor::watch_stable(PredicatePtr p) {
  HBCT_ASSERT(p);
  StableWatch w;
  w.id = next_id_++;
  fired_.push_back(false);
  kinds_.push_back(WatchKind::kStable);
  w.pred = std::move(p);
  stable_.push_back(std::move(w));
  BudgetTracker t(budget_, work_);
  round_ = &t;
  step_stable(stable_.back());
  round_ = nullptr;
  return stable_.back().id;
}

void OnlineMonitor::step_conj(ConjWatch& w) {
  if (w.done) return;
  ScopedSpan span(budget_.trace, "monitor.watch.conj");
  span.arg("watch", w.id);
  const Computation& c = app_.computation();
  const std::int32_t n = c.num_procs();

  // Advance any unset candidate through the newly frozen positions. The
  // scan position persists, so a budget-suspended advance resumes exactly
  // where it stopped.
  auto advance = [&](ProcId i) {
    auto& pos = w.scan[sz(i)];
    while (w.cand[sz(i)] < 0 && pos <= frozen_limit(i)) {
      if (!round_ok()) return false;
      ++work_.predicate_evals;
      if (w.pred->eval_local(c, i, pos)) w.cand[sz(i)] = pos;
      ++pos;
    }
    return w.cand[sz(i)] >= 0;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    // Advance every process even once one is known to be stuck: a position
    // where the local predicate is false can never become a candidate, so
    // pre-scanning the other timelines is free — and min_watch_frontier
    // pins at `scan`, so a timeline left at 0 would hold the whole prefix
    // resident until this watch fires.
    bool stuck = false;
    for (ProcId i = 0; i < n; ++i)
      if (!advance(i)) stuck = true;  // more events (or budget) needed on i
    if (stuck) return;
    // All candidates set: repair pairwise consistency (GW weak).
    for (ProcId i = 0; i < n && !changed; ++i) {
      if (w.cand[sz(i)] == 0) continue;
      const VClockView vc = c.vclock(i, w.cand[sz(i)]);
      for (ProcId j = 0; j < n; ++j) {
        if (j == i || vc[sz(j)] <= w.cand[sz(j)]) continue;
        // The candidate of j must move to a true position at or after the
        // clock demand; restart its scan there.
        ++work_.cut_steps;
        w.scan[sz(j)] = std::max(w.scan[sz(j)], vc[sz(j)]);
        w.cand[sz(j)] = -1;
        changed = true;
        break;
      }
    }
  }

  Cut cut(sz(n));
  for (ProcId i = 0; i < n; ++i) cut[sz(i)] = w.cand[sz(i)];
  HBCT_DASSERT(c.is_consistent(cut));
  w.done = true;
  fire(w.id, std::move(cut),
       w.violation_of_invariant
           ? "invariant violated: " + w.pred->describe()
           : "possibly: " + w.pred->describe());
}

void OnlineMonitor::step_disj(DisjWatch& w) {
  if (w.done) return;
  ScopedSpan span(budget_.trace, "monitor.watch.disj");
  span.arg("watch", w.id);
  const Computation& c = app_.computation();
  for (ProcId i = 0; i < c.num_procs(); ++i) {
    auto& pos = w.scan[sz(i)];
    for (; pos <= frozen_limit(i); ++pos) {
      if (!round_ok()) return;  // resume at `pos` next round
      ++work_.predicate_evals;
      if (!w.pred->eval_local(c, i, pos)) continue;
      w.done = true;
      Cut cut = pos == 0 ? c.initial_cut() : c.join_irreducible_of(i, pos);
      fire(w.id, std::move(cut), "possibly: " + w.pred->describe());
      return;
    }
  }
}

void OnlineMonitor::step_stable(StableWatch& w) {
  if (w.done) return;
  ScopedSpan span(budget_.trace, "monitor.watch.stable");
  span.arg("watch", w.id);
  if (!round_ok()) return;  // re-evaluated from scratch next round
  const Computation& c = app_.computation();
  // Evaluate on the frozen frontier; stability makes any hit permanent.
  Cut frontier(static_cast<std::size_t>(c.num_procs()));
  for (ProcId i = 0; i < c.num_procs(); ++i)
    frontier[sz(i)] = frozen_limit(i);
  ++work_.predicate_evals;
  if (w.pred->eval(c, frontier)) {
    w.done = true;
    fire(w.id, frontier, "stable: " + w.pred->describe());
  }
}

void OnlineMonitor::step_until(UntilWatch& w) {
  if (w.done) return;
  ScopedSpan span(budget_.trace, "monitor.watch.until");
  span.arg("watch", w.id);
  const Computation& c = app_.computation();

  // Incremental mode: push the EG(p) table over the newly frozen prefix
  // before resuming the q-walk, so the eventual Theorem-7 decision is
  // table arithmetic plus at most a tiny lazy extension instead of a full
  // prefix sweep at fire time. Every physical evaluation is charged to the
  // round budget; a tripped round suspends the scan mid-position and the
  // table resumes exactly there next round. Each frozen position is
  // evaluated at most once over the watch's lifetime (a conjunct stops
  // scanning forever once its first false position is known), so the
  // amortized feed cost is O(1) per event per watch.
  if (w.inc) {
    if (!w.eg.bound()) w.eg.bind(c, *w.p, /*instrumented=*/true);
    // Per-round hot path: no span (a span per event per watch dominates the
    // feed when tracing is on — the work is visible as until_inc_evals) and
    // a reused limits buffer instead of a fresh Cut allocation.
    if (w.limits.size() != sz(c.num_procs())) w.limits = Cut(sz(c.num_procs()));
    for (ProcId i = 0; i < c.num_procs(); ++i)
      w.limits[sz(i)] = frozen_limit(i);
    w.eg.advance_to(w.limits, work_, round_);
  }

  // Resume the Chase–Garg walk toward I_q over the frozen prefix. The walk
  // is monotone, so work already done never repeats; a forbidden process
  // exhausted (in frozen positions) — or a tripped round budget — suspends
  // the watch until more events arrive or finish() is called.
  auto all_frozen = [&](const Cut& g) {
    for (ProcId i = 0; i < c.num_procs(); ++i)
      if (g[sz(i)] > frozen_limit(i)) return false;
    return true;
  };
  if (!all_frozen(w.cand)) return;  // a join pulled in a thawing tail: wait
  for (;;) {
    if (!round_ok()) return;  // suspended; w.cand records the progress
    ++work_.predicate_evals;
    if (w.q->eval(c, w.cand)) break;
    // The very first evaluation handles q(∅) (fires with the empty prefix).
    const ProcId i = w.q->forbidden(c, w.cand);
    HBCT_DASSERT(i >= 0 && i < c.num_procs());
    if (w.cand[sz(i)] >= frozen_limit(i)) return;  // suspended
    ++work_.cut_steps;
    Cut next = Cut::join(w.cand, c.join_irreducible_of(i, w.cand[sz(i)] + 1));
    if (!all_frozen(next)) {
      // The causal past of the next event reaches into a mutable tail;
      // record progress and wait for the tail to freeze.
      w.cand = std::move(next);
      return;
    }
    w.cand = std::move(next);
  }

  // I_q is inside the frozen prefix; Theorem 7 decides the verdict from
  // the events below it — stable under all extensions. The decision gets
  // the monitor's budget too; since the sub-computation below I_q never
  // changes, a kUnknown here would repeat identically on every retry, so
  // the watch fires kUnknown immediately instead of spinning. Incremental
  // mode replays the decision off the fed table — bit-identical verdict,
  // bound and charged stats; the witness path is skipped because prefix GC
  // may have trimmed the linearization it would be rebuilt from, and
  // WatchFire carries no path.
  DetectResult r = w.inc
                       ? w.eg.decide_at(w.cand, budget_, /*want_path=*/false)
                       : detect_eu_at(c, *w.p, w.cand, 1, budget_);
  work_ += r.stats;
  w.done = true;
  const std::string what =
      std::string(r.verdict == Verdict::kHolds
                      ? "until holds: E["
                      : r.verdict == Verdict::kFails ? "until refuted: E["
                                                     : "until undecided: E[") +
      w.p->describe() + " U " + w.q->describe() + "]";
  fire(w.id, w.cand, what, r.verdict, r.bound);
}

std::vector<Diagnostic> OnlineMonitor::audit_watches(
    const AuditOptions& opt) const {
  std::vector<Diagnostic> out;
  const Computation& c = computation();
  auto audit_one = [&](WatchId id, const PredicatePtr& pred) {
    if (!pred) return;
    const AuditResult r = audit_predicate(pred, c, opt);
    for (Diagnostic& d : audit_diagnostics(r)) {
      d.message = strfmt("watch #%d '%s': %s", id, pred->describe().c_str(),
                         d.message.c_str());
      out.push_back(std::move(d));
    }
  };
  for (const ConjWatch& w : conj_) audit_one(w.id, w.pred);
  for (const DisjWatch& w : disj_) audit_one(w.id, w.pred);
  for (const StableWatch& w : stable_) audit_one(w.id, w.pred);
  for (const UntilWatch& w : until_) {
    audit_one(w.id, w.p);
    audit_one(w.id, w.q);
  }
  return out;
}

Cut OnlineMonitor::min_watch_frontier() const {
  const Computation& c = app_.computation();
  const std::int32_t n = c.num_procs();
  Cut f(sz(n));
  for (ProcId i = 0; i < n; ++i) f[sz(i)] = frozen_limit(i);
  auto pin = [&](ProcId i, EventIndex pos) {
    if (pos < f[sz(i)]) f[sz(i)] = pos;
  };
  for (const ConjWatch& w : conj_)
    if (!w.done)
      for (ProcId i = 0; i < n; ++i)
        // A set candidate stays referenced (the GW repair reads its clock
        // and it becomes the fired cut); an unset one resumes at `scan`.
        pin(i, w.cand[sz(i)] >= 0 ? w.cand[sz(i)] : w.scan[sz(i)]);
  for (const DisjWatch& w : disj_)
    if (!w.done)
      for (ProcId i = 0; i < n; ++i) pin(i, w.scan[sz(i)]);
  for (const UntilWatch& w : until_) {
    if (w.done) continue;
    if (w.inc) {
      // Incremental mode pins only what the evaluator may still read on
      // each process: the q-walk's candidate position (eval/forbidden read
      // there; join_irreducible_of reads cand+1, which is above the pin)
      // and the EG table's scan resume point. Positions below both are
      // never touched again — already-scanned prefix outcomes live in the
      // table as stored indices, and a decided conjunct is pure
      // arithmetic at decision time. DESIGN.md §18 spells out the case
      // analysis; tests/test_until_inc.cpp pins it differentially.
      for (ProcId i = 0; i < n; ++i)
        pin(i, w.eg.scan_floor(i, /*fallback=*/w.cand[sz(i)]));
    } else {
      // Theorem 7 decides E[p U q] from the whole sub-computation below
      // I_q, so an undecided batch until watch pins the entire prefix.
      for (ProcId i = 0; i < n; ++i) pin(i, 0);
    }
  }
  // Stable watches evaluate on the frontier only: no pin. Never retreat
  // below a previous collection.
  for (ProcId i = 0; i < n; ++i)
    if (f[sz(i)] < app_.trimmed(i)) f[sz(i)] = app_.trimmed(i);
  return f;
}

std::int64_t OnlineMonitor::collect_prefix() {
  ScopedSpan span(budget_.trace, "monitor.gc");
  static const std::uint16_t kGc = FlightRecorder::global().intern(
      "monitor.gc", "reclaimed", "resident");
  FlightScope flight(FlightRecorder::global(), kGc);
  const Computation& c = app_.computation();
  const std::int32_t n = c.num_procs();
  Cut b = min_watch_frontier();
  // Lower b to the greatest consistent cut beneath it (the standard
  // rollback fixpoint). The previous trim cut is consistent and <= b, so
  // the loop never drops below it — every clock row it reads is resident.
  bool changed = true;
  while (changed) {
    changed = false;
    for (ProcId i = 0; i < n; ++i) {
      while (b[sz(i)] > app_.trimmed(i)) {
        const VClockView vc = c.vclock(i, b[sz(i)]);
        bool ok = true;
        for (ProcId j = 0; j < n; ++j)
          if (vc[sz(j)] > b[sz(j)]) {
            ok = false;
            break;
          }
        if (ok) break;
        --b[sz(i)];
        changed = true;
      }
    }
  }
  const std::int64_t reclaimed = app_.collect_prefix(b);
  span.arg("reclaimed", reclaimed);
  flight.args(reclaimed, app_.resident_events());
  return reclaimed;
}

std::size_t OnlineMonitor::watch_state_bytes() const {
  const auto vec_bytes = [](const std::vector<EventIndex>& v) {
    return v.capacity() * sizeof(EventIndex);
  };
  const auto cut_bytes = [](const Cut& g) {
    return g.size() * sizeof(EventIndex);
  };
  std::size_t total = 0;
  for (const ConjWatch& w : conj_)
    total += sizeof(w) + vec_bytes(w.cand) + vec_bytes(w.scan);
  for (const DisjWatch& w : disj_) total += sizeof(w) + vec_bytes(w.scan);
  total += stable_.size() * sizeof(StableWatch);
  for (const UntilWatch& w : until_)
    total += sizeof(w) + cut_bytes(w.cand) + w.eg.state_bytes();
  return total;
}

std::vector<WatchFire> OnlineMonitor::poll() {
  std::vector<WatchFire> out;
  out.swap(pending_);
  return out;
}

bool OnlineMonitor::fired(WatchId w) const {
  HBCT_ASSERT(w >= 0 && sz(w) < fired_.size());
  return fired_[sz(w)];
}

WatchKind OnlineMonitor::watch_class(WatchId w) const {
  HBCT_ASSERT(w >= 0 && sz(w) < kinds_.size());
  return kinds_[sz(w)];
}

}  // namespace hbct
