#include "slice/slicer.h"

#include <algorithm>
#include <deque>

#include "detect/ef_linear.h"
#include "poset/cut_packer.h"
#include "util/assert.h"

namespace hbct {

namespace {
std::size_t sz(std::int32_t v) { return static_cast<std::size_t>(v); }
}  // namespace

Slice Slice::compute(const Computation& c, const PredicatePtr& p) {
  HBCT_ASSERT(p);
  Slice s;
  s.comp_ = &c;
  s.pred_ = p;
  s.least_ = least_satisfying_cut(c, *p, s.stats_);
  if (s.least_) s.greatest_ = greatest_satisfying_cut(c, *p, s.stats_);
  s.jp_.resize(sz(c.num_procs()));
  for (ProcId i = 0; i < c.num_procs(); ++i) {
    s.jp_[sz(i)].resize(sz(c.num_events(i)));
    if (!s.least_) continue;  // empty slice: all J_p(e) undefined
    for (EventIndex k = 1; k <= c.num_events(i); ++k) {
      const Cut start = c.join_irreducible_of(i, k);
      s.jp_[sz(i)][sz(k - 1)] = least_satisfying_cut(c, *p, s.stats_, &start);
    }
  }
  return s;
}

const std::optional<Cut>& Slice::jp(ProcId i, EventIndex idx) const {
  HBCT_ASSERT(idx >= 1 && idx <= comp_->num_events(i));
  return jp_[sz(i)][sz(idx - 1)];
}

bool Slice::satisfies(const Cut& g) const {
  HBCT_DASSERT(comp_->is_consistent(g));
  if (!least_) return false;
  if (g.total() == 0) return least_->total() == 0;  // p(∅) iff I_p == ∅
  // Regular p: g satisfies p iff g is the join of the slice elements of its
  // events. One undefined J_p(e) means no satisfying cut contains e.
  Cut acc(g.size());
  for (ProcId i = 0; i < comp_->num_procs(); ++i) {
    const EventIndex gi = g[sz(i)];
    if (gi == 0) continue;
    // Only the last event per process matters: J_p is monotone along a
    // process (J(e) grows, hence so does the least satisfying cut above it),
    // so the join over e in g equals the join over frontier events.
    const auto& cut = jp_[sz(i)][sz(gi - 1)];
    if (!cut) return false;
    acc = Cut::join(acc, *cut);
  }
  return acc == g;
}

std::optional<std::vector<Cut>> Slice::enumerate_satisfying(
    std::size_t cap) const {
  std::vector<Cut> out;
  if (!least_) return out;  // empty slice
  const std::vector<Cut> elems = elements();

  // BFS: every satisfying cut H ⊋ G is reachable from G by joining with a
  // slice element J_p(e) for some event e ∈ H \ G (the join stays within H
  // and strictly grows), so the closure from I_p covers the sub-lattice.
  CutSet seen(*comp_);
  std::deque<Cut> queue;
  seen.insert(*least_);
  queue.push_back(*least_);
  out.push_back(*least_);
  while (!queue.empty()) {
    Cut g = std::move(queue.front());
    queue.pop_front();
    for (const Cut& e : elems) {
      if (e.subset_of(g)) continue;
      Cut h = Cut::join(g, e);
      if (seen.contains(h)) continue;
      if (seen.size() >= cap) return std::nullopt;
      seen.insert(h);
      out.push_back(h);
      queue.push_back(std::move(h));
    }
  }
  std::sort(out.begin(), out.end(), [](const Cut& a, const Cut& b) {
    if (a.total() != b.total()) return a.total() < b.total();
    return a.raw() < b.raw();
  });
  return out;
}

std::vector<Cut> Slice::elements() const {
  std::vector<Cut> out;
  for (const auto& per_proc : jp_)
    for (const auto& cut : per_proc)
      if (cut) out.push_back(*cut);
  std::sort(out.begin(), out.end(), [](const Cut& a, const Cut& b) {
    if (a.total() != b.total()) return a.total() < b.total();
    return a.raw() < b.raw();
  });
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace hbct
