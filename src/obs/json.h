// Minimal JSON emission and validation for the observability layer.
//
// JsonWriter is a streaming writer with automatic comma placement and
// string escaping — enough for the Chrome trace export and the run report;
// no DOM, no allocation beyond the output buffer. json_validate is a strict
// recursive-descent checker used by tests (and mirrorable by the CI
// checker) to guarantee every emitted document actually parses.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hbct {

/// Escapes `s` as the contents of a JSON string literal (no quotes added).
/// Control characters (including 0x7F) become \u escapes; well-formed UTF-8
/// passes through; each ill-formed byte (bad lead, truncated tail, overlong
/// form, surrogate, > U+10FFFF) is replaced with an escaped U+FFFD so the
/// output is ASCII-clean — a hostile span name or session id can never render
/// an emitted document unloadable. Every string the obs layer writes
/// (Chrome traces, flight dumps, bench reports) funnels through here.
std::string json_escape(std::string_view s);

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key of the next value (only valid directly inside an object).
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(double v);
  /// Splices a pre-rendered JSON fragment verbatim (caller guarantees
  /// validity) — used to embed a run report inside a bench document.
  JsonWriter& raw(std::string_view json);

  // Convenience key/value pairs.
  template <typename T>
  JsonWriter& kv(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void comma();

  std::string out_;
  /// One entry per open container: true once the first element was written.
  std::vector<bool> has_elem_;
  bool pending_key_ = false;
};

/// Strict JSON well-formedness check. Returns true when `text` is exactly
/// one valid JSON value (with surrounding whitespace allowed); on failure
/// `err`, when non-null, receives a message with the byte offset.
bool json_validate(std::string_view text, std::string* err = nullptr);

}  // namespace hbct
