// Machine-readable run reports: one schema-versioned JSON document per
// detection, carrying the verdict, the dispatch plan, diagnostics, the
// operation counters, a metrics snapshot, and the span tree of the traced
// run. Consumed by the debug REPL's `report` command, the benches'
// BENCH_*.json emission, and the CI trace-validation job.
//
// Schema (kReportSchema = "hbct.report/1"):
//   {
//     "schema":      "hbct.report/1",
//     "verdict":     "holds" | "fails" | "unknown",
//     "bound":       "none" | "state-cap" | ... (detect/budget.h),
//     "algorithm":   "...",                  // DetectResult::algorithm
//     "plan":        "...",                  // empty when audit was off
//     "stats":       { "<field>": n, ... },  // from the DetectStats X-macro
//     "witness_cut": [k0, k1, ...] | null,
//     "witness_path_len": n,
//     "rewrites":    [ {"rule","note","before","after"}, ... ],
//                    // the optimizer's applied (kApply) or proposed
//                    // (kAnalyzeOnly) chain; [] when optimize was off
//     "diagnostics": [ {"code","severity","message"}, ... ],
//     "metrics":     { "counters": {..}, "gauges": {..},
//                      "histograms": { name: {"count","sum","p50","p90",
//                                             "p99"} } } | null,
//     "spans":       [ {"id","name","tid","parent","start_ns","dur_ns",
//                       "args":{..}}, ... ] | null
//   }
// metrics/spans are null unless the detection ran with tracing enabled
// (DispatchOptions::trace) or a report registry is passed explicitly.
#pragma once

#include <string>

#include "detect/detector.h"

namespace hbct {

class MetricsRegistry;

inline constexpr const char* kReportSchema = "hbct.report/1";

struct ReportOptions {
  /// Include the span array (requires r.trace; large traces make large
  /// documents — the Chrome export is the tool-friendly view of the same
  /// data).
  bool include_spans = true;
  /// Include the metrics snapshot of r.trace's registry (or of `registry`
  /// below when given).
  bool include_metrics = true;
  /// Overrides the metrics source; nullptr = use r.trace's registry.
  const MetricsRegistry* registry = nullptr;
};

/// Serializes one detection into the hbct.report/1 JSON document.
std::string report_json(const DetectResult& r, const ReportOptions& opt = {});

}  // namespace hbct
