#include "obs/flight.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstring>
#include <type_traits>

#include "obs/json.h"
#include "obs/metrics.h"
#include "util/assert.h"

namespace hbct {

namespace {

std::uint32_t flight_tid() {
  // The dense per-thread id also used for metric shards: consecutive pool
  // workers land on distinct rings by construction.
  return static_cast<std::uint32_t>(obs_detail::shard_index());
}

static_assert(std::is_trivially_copyable_v<FlightRecorder::Record>,
              "Record is memcpy'd through the slot's atomic words");

}  // namespace

FlightRecorder::FlightRecorder() : FlightRecorder(Config{}) {}

FlightRecorder::FlightRecorder(Config cfg) : cfg_(cfg) {
  std::size_t cap = std::bit_ceil(std::max<std::size_t>(cfg_.ring_capacity, 8));
  cfg_.ring_capacity = cap;
  mask_ = cap - 1;
  min_dump_gap_ns_.store(cfg_.min_dump_gap_ns, std::memory_order_relaxed);
  for (Shard& sh : shards_) sh.slots = std::make_unique<Slot[]>(cap);
  // Id 0 is the unnamed sentinel so a zero-initialized (torn) record never
  // aliases a real site.
  names_.push_back({"?", "", ""});
}

FlightRecorder::~FlightRecorder() = default;

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder* rec = new FlightRecorder();  // never destroyed
  return *rec;
}

std::uint64_t FlightRecorder::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint16_t FlightRecorder::intern(std::string_view name,
                                     std::string_view arg0,
                                     std::string_view arg1) {
  std::lock_guard<std::mutex> lk(names_mu_);
  for (std::size_t i = 0; i < names_.size(); ++i)
    if (names_[i].name == name) return static_cast<std::uint16_t>(i);
  HBCT_ASSERT_MSG(names_.size() < 0xffff, "flight name table exhausted");
  names_.push_back(
      {std::string(name), std::string(arg0), std::string(arg1)});
  return static_cast<std::uint16_t>(names_.size() - 1);
}

std::string FlightRecorder::name_of(std::uint16_t id) const {
  std::lock_guard<std::mutex> lk(names_mu_);
  return id < names_.size() ? names_[id].name : std::string("?");
}

void FlightRecorder::write(Kind kind, std::uint16_t name, std::uint64_t ts_ns,
                           std::uint64_t dur_ns, std::int64_t a0,
                           std::int64_t a1, std::uint64_t* ticket_out) {
  Shard& sh = shards_[flight_tid() % kShards];
  const std::uint64_t ticket =
      sh.tickets.fetch_add(1, std::memory_order_relaxed);
  Slot& s = sh.slots[ticket & mask_];
  Record rec;
  std::memset(&rec, 0, sizeof(rec));  // padding too: the words are compared
  rec.ts_ns = ts_ns;
  rec.dur_ns = dur_ns;
  rec.a0 = a0;
  rec.a1 = a1;
  rec.ticket = ticket;
  rec.tid = flight_tid();
  rec.name = name;
  rec.kind = kind;
  std::uint64_t packed[kRecordWords] = {};
  std::memcpy(packed, &rec, sizeof(rec));
  // Per-slot seqlock: odd while writing, 2*(ticket+1) once published. The
  // payload words are relaxed atomics so a concurrent snapshot() is
  // race-free; the seq re-check discards whatever it read mid-write.
  s.seq.store(2 * ticket + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  for (std::size_t w = 0; w < kRecordWords; ++w)
    s.words[w].store(packed[w], std::memory_order_relaxed);
  s.seq.store(2 * (ticket + 1), std::memory_order_release);
  recorded_.fetch_add(1, std::memory_order_relaxed);
  if (ticket_out != nullptr) *ticket_out = ticket;
}

void FlightRecorder::span(std::uint16_t name, std::uint64_t start_ns,
                          std::uint64_t end_ns, std::int64_t a0,
                          std::int64_t a1) {
  if (!enabled()) return;
  write(Kind::kSpan, name, start_ns,
        end_ns >= start_ns ? end_ns - start_ns : 0, a0, a1, nullptr);
}

void FlightRecorder::instant(std::uint16_t name, std::int64_t a0,
                             std::int64_t a1) {
  if (!enabled()) return;
  write(Kind::kInstant, name, now_ns(), 0, a0, a1, nullptr);
}

std::uint64_t FlightRecorder::anomaly(std::uint16_t name, std::int64_t a0,
                                      std::int64_t a1) {
  if (!enabled()) return kNoTrigger;
  std::uint64_t ticket = kNoTrigger;
  write(Kind::kAnomaly, name, now_ns(), 0, a0, a1, &ticket);
  anomalies_.fetch_add(1, std::memory_order_relaxed);

  DumpSink sink;
  {
    std::lock_guard<std::mutex> lk(sink_mu_);
    if (sink_) {
      const std::uint64_t gap = min_dump_gap();
      const std::uint64_t now = now_ns();
      const std::uint64_t last = last_dump_ns_.load(std::memory_order_relaxed);
      if (gap == 0 || last == 0 || now - last >= gap) {
        last_dump_ns_.store(now, std::memory_order_relaxed);
        sink = sink_;
      }
    }
  }
  if (sink) {
    dumps_.fetch_add(1, std::memory_order_relaxed);
    sink(dump_chrome(ticket), name_of(name));
  }
  return ticket;
}

void FlightRecorder::set_dump_sink(DumpSink sink) {
  std::lock_guard<std::mutex> lk(sink_mu_);
  sink_ = std::move(sink);
}

FlightRecorder::Stats FlightRecorder::stats() const {
  Stats s;
  s.recorded = recorded_.load(std::memory_order_relaxed);
  s.anomalies = anomalies_.load(std::memory_order_relaxed);
  s.dumps = dumps_.load(std::memory_order_relaxed);
  return s;
}

std::vector<FlightRecorder::Record> FlightRecorder::snapshot() const {
  const std::uint64_t now = now_ns();
  const std::uint64_t horizon =
      now > cfg_.window_ns ? now - cfg_.window_ns : 0;
  std::vector<Record> out;
  for (const Shard& sh : shards_) {
    for (std::size_t i = 0; i <= mask_; ++i) {
      const Slot& s = sh.slots[i];
      const std::uint64_t before = s.seq.load(std::memory_order_acquire);
      if (before == 0 || (before & 1) != 0) continue;  // empty or mid-write
      std::uint64_t packed[kRecordWords];
      for (std::size_t w = 0; w < kRecordWords; ++w)
        packed[w] = s.words[w].load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (s.seq.load(std::memory_order_relaxed) != before) continue;  // torn
      Record r;
      std::memcpy(&r, packed, sizeof(r));
      // A span's *end* must fall inside the window; its start may precede
      // the horizon (long spans survive the cutoff).
      if (r.ts_ns + r.dur_ns < horizon) continue;
      out.push_back(r);
    }
  }
  std::sort(out.begin(), out.end(), [](const Record& a, const Record& b) {
    return a.ts_ns != b.ts_ns ? a.ts_ns < b.ts_ns : a.ticket < b.ticket;
  });
  return out;
}

std::string FlightRecorder::dump_chrome(std::uint64_t trigger_ticket) const {
  const std::vector<Record> recs = snapshot();
  std::vector<NameEntry> names;
  {
    std::lock_guard<std::mutex> lk(names_mu_);
    names = names_;
  }
  const auto entry = [&](std::uint16_t id) -> const NameEntry& {
    return id < names.size() ? names[id] : names[0];
  };
  // trace_event timestamps are microseconds; three decimals keep the ns.
  const auto us = [](std::uint64_t ns) {
    return static_cast<double>(ns) / 1000.0;
  };

  JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();
  w.begin_object()
      .kv("name", "process_name")
      .kv("ph", "M")
      .kv("pid", std::int64_t{1})
      .kv("tid", std::int64_t{0});
  w.key("args").begin_object().kv("name", "hbct-flight").end_object();
  w.end_object();
  for (const Record& r : recs) {
    const NameEntry& ne = entry(r.name);
    w.begin_object().kv("name", ne.name).kv("cat", "flight");
    if (r.kind == Kind::kSpan) {
      w.kv("ph", "X").kv("ts", us(r.ts_ns)).kv("dur", us(r.dur_ns));
    } else {
      // Anomalies render as global-scope instants so they are visible
      // across the whole track height.
      w.kv("ph", "i").kv("s", r.kind == Kind::kAnomaly ? "g" : "t");
      w.kv("ts", us(r.ts_ns));
    }
    w.kv("pid", std::int64_t{1});
    w.kv("tid", static_cast<std::int64_t>(r.tid));
    w.key("args").begin_object();
    w.kv(ne.arg0.empty() ? std::string_view("a0") : std::string_view(ne.arg0),
         r.a0);
    w.kv(ne.arg1.empty() ? std::string_view("a1") : std::string_view(ne.arg1),
         r.a1);
    if (r.kind == Kind::kAnomaly) w.kv("anomaly", std::int64_t{1});
    if (trigger_ticket != kNoTrigger && r.ticket == trigger_ticket)
      w.kv("trigger", std::int64_t{1});
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.kv("displayTimeUnit", "ns");
  w.end_object();
  return w.take();
}

}  // namespace hbct
