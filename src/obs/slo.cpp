#include "obs/slo.h"

#include <cstdio>

#include "obs/expose.h"
#include "obs/flight.h"

namespace hbct {

SloTracker::SloTracker(MetricsRegistry* reg)
    : reg_(reg != nullptr ? *reg : MetricsRegistry::global()) {}

void SloTracker::add(SloSpec spec) {
  Entry e;
  e.breach_counter = &reg_.counter(labeled("slo.breaches", "slo", spec.name));
  e.spec = std::move(spec);
  std::lock_guard<std::mutex> lk(mu_);
  entries_.push_back(std::move(e));
}

SloSpec SloTracker::fire_latency(std::string_view watch_class, double quantile,
                                 std::uint64_t max_ns) {
  SloSpec s;
  char q[16];
  std::snprintf(q, sizeof(q), "p%g", quantile * 100);
  s.name = std::string("fire-") + q + "/" + std::string(watch_class);
  s.histogram = labeled("serve.fire_latency.ns", "class", watch_class);
  s.quantile = quantile;
  s.max_ns = max_ns;
  return s;
}

SloStatus SloTracker::eval_one(const SloSpec& spec,
                               const MetricsSnapshot& snap) const {
  SloStatus st;
  st.spec = spec;
  auto it = snap.histograms.find(spec.histogram);
  if (it == snap.histograms.end() || it->second.count < spec.min_count)
    return st;
  st.evaluated = true;
  st.samples = it->second.count;
  st.measured_ns = it->second.percentile(spec.quantile);
  st.breached = st.measured_ns > spec.max_ns;
  return st;
}

std::vector<SloStatus> SloTracker::evaluate(const MetricsSnapshot& snap) {
  static const std::uint16_t kBreach = FlightRecorder::global().intern(
      "slo.breach", "measured_ns", "max_ns");
  std::vector<SloStatus> out;
  std::lock_guard<std::mutex> lk(mu_);
  out.reserve(entries_.size());
  for (Entry& e : entries_) {
    SloStatus st = eval_one(e.spec, snap);
    if (st.evaluated && st.breached && !e.breached) {
      // ok -> breach edge: count it, flag it on the flight recorder (which
      // dumps the window if a sink is armed).
      e.breach_counter->add();
      ++total_breaches_;
      FlightRecorder::global().anomaly(
          kBreach, static_cast<std::int64_t>(st.measured_ns),
          static_cast<std::int64_t>(e.spec.max_ns));
    }
    if (st.evaluated) e.breached = st.breached;
    out.push_back(std::move(st));
  }
  return out;
}

std::vector<SloStatus> SloTracker::peek(const MetricsSnapshot& snap) const {
  std::vector<SloStatus> out;
  std::lock_guard<std::mutex> lk(mu_);
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(eval_one(e.spec, snap));
  return out;
}

std::uint64_t SloTracker::breaches() const {
  std::lock_guard<std::mutex> lk(mu_);
  return total_breaches_;
}

}  // namespace hbct
