// Per-watch-class SLO tracking: latency objectives ("conjunctive watch
// fires within 50µs at p99") evaluated from metrics snapshots, with breach
// counters and a flight-recorder dump on the ok->breach transition.
//
// Evaluation is snapshot-driven rather than per-sample: the log2 histograms
// already aggregate every fire latency lock-free on the hot path, so the
// tracker only reads percentiles at scrape cadence (the Exporter calls
// evaluate() on each export). Breach accounting is edge-triggered — one
// counter increment and one flight anomaly per ok->breach transition, not
// per scrape — so a sustained breach does not melt the anomaly dump sink.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace hbct {

class FlightRecorder;

/// One objective: percentile(quantile) of `histogram` must stay <= max_ns.
struct SloSpec {
  std::string name;       // "fire-p99/conjunctive" — breach counter label
  std::string histogram;  // registry histogram name, labels included
  double quantile = 0.99;
  std::uint64_t max_ns = 0;
  /// Objectives are not evaluated until the histogram holds this many
  /// samples (a single slow fire at startup is not a breach).
  std::uint64_t min_count = 1;
};

struct SloStatus {
  SloSpec spec;
  bool evaluated = false;  // histogram present with >= min_count samples
  bool breached = false;
  std::uint64_t measured_ns = 0;  // percentile estimate when evaluated
  std::uint64_t samples = 0;
};

class SloTracker {
 public:
  /// Breach counters register as `slo.breaches{slo="<name>"}` in `reg`
  /// (defaults to the global registry). Breaches also raise a "slo.breach"
  /// anomaly on the global flight recorder, which triggers its dump sink.
  explicit SloTracker(MetricsRegistry* reg = nullptr);

  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  void add(SloSpec spec);

  /// Convenience spec for the serve fire-latency family of one watch class:
  /// percentile(q) of serve.fire_latency.ns{class="<cls>"} <= max_ns.
  static SloSpec fire_latency(std::string_view watch_class, double quantile,
                              std::uint64_t max_ns);

  /// Evaluates every objective against the snapshot. Side effects on the
  /// ok->breach edge only: breach counter increment + flight anomaly (which
  /// invokes the recorder's dump sink, if armed). Recovery rearms the edge.
  std::vector<SloStatus> evaluate(const MetricsSnapshot& snap);

  /// Pure evaluation: statuses only, no counters, no anomalies. The stat
  /// table renders from this.
  std::vector<SloStatus> peek(const MetricsSnapshot& snap) const;

  /// Total ok->breach transitions observed by evaluate().
  std::uint64_t breaches() const;

 private:
  struct Entry {
    SloSpec spec;
    Counter* breach_counter = nullptr;  // resolved at add()
    bool breached = false;              // edge-detector state
  };
  SloStatus eval_one(const SloSpec& spec, const MetricsSnapshot& snap) const;

  MetricsRegistry& reg_;
  mutable std::mutex mu_;
  std::vector<Entry> entries_;
  std::uint64_t total_breaches_ = 0;
};

}  // namespace hbct
