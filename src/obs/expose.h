// Live metrics exposition: Prometheus text-format rendering of a
// MetricsSnapshot, a periodic snapshot exporter, and the top-style stat
// table shared by tools/hbct_stat and the debug REPL.
//
// The log2 histogram layout of obs/metrics.h was designed for exactly this
// export: buckets are fixed at powers of two, never resize, and merge by
// addition, so a histogram renders directly as the cumulative
// `_bucket{le="..."}` series Prometheus expects — no re-binning, no
// per-scrape allocation beyond the output string.
//
// Label convention: a metric registered under `name{key="value",...}`
// (see labeled()) renders with those labels attached; the base name is
// mangled `hbct_` + dots-to-underscores. The serve.* family uses this for
// its per-watch-class (and optionally per-session) series.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace hbct {

class SloTracker;

/// Builds a labeled registry name: labeled("serve.fires", "class", "conj")
/// == `serve.fires{class="conj"}`. Additional labels append with
/// labeled(labeled(...), ...) producing `name{a="1",b="2"}`. Label values
/// are escaped (backslash, quote, newline) per the Prometheus text format.
std::string labeled(std::string_view name, std::string_view key,
                    std::string_view value);

struct ExpositionOptions {
  /// Stamped into the hbct_exposition_timestamp_ns gauge so two snapshots
  /// yield rates; 0 = omit.
  std::uint64_t timestamp_ns = 0;
};

/// Renders the snapshot in the Prometheus text exposition format (v0.0.4):
/// one `# TYPE` line per metric family, counters with a `_total` suffix,
/// histograms as cumulative `_bucket{le="..."}` + `_sum` + `_count`.
std::string render_prometheus(const MetricsSnapshot& snap,
                              const ExpositionOptions& opt = {});

/// Parses a document produced by render_prometheus back into a snapshot
/// (the hbct_stat tool reads scrape files; tests round-trip). Histogram
/// bucket counts are recovered exactly because the `le` boundaries are the
/// fixed log2 layout. Returns false on malformed input with a message in
/// `err`. Unknown hbct_-prefixed families fail; foreign lines are ignored.
bool parse_prometheus(std::string_view text, MetricsSnapshot* out,
                      std::string* err = nullptr);

/// Periodic snapshot exporter: every `period` it snapshots the registry,
/// renders the exposition text, and hands it to the sink (typically a
/// write-to-temp-then-rename file writer; see write_file_atomic). When an
/// SloTracker is attached, each snapshot is also evaluated against the
/// objectives (breach side effects included). Stops on destruction.
class Exporter {
 public:
  using Sink = std::function<void(const std::string& exposition)>;

  struct Options {
    std::chrono::milliseconds period{1000};
    SloTracker* slos = nullptr;  // not owned; optional
  };

  Exporter(const MetricsRegistry& reg, Sink sink);  // default Options
  Exporter(const MetricsRegistry& reg, Sink sink, Options opt);
  ~Exporter();

  Exporter(const Exporter&) = delete;
  Exporter& operator=(const Exporter&) = delete;

  /// Snapshot + render + SLO-evaluate + sink, immediately, on the calling
  /// thread. The periodic thread calls exactly this.
  void export_now();

  std::uint64_t exports() const {
    return exports_.load(std::memory_order_relaxed);
  }

 private:
  const MetricsRegistry& reg_;
  Sink sink_;
  Options opt_;
  std::atomic<std::uint64_t> exports_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

/// Writes `text` to `path` via a temp file + rename so scrapers never see a
/// half-written exposition. Returns false (with errno intact) on failure.
bool write_file_atomic(const std::string& path, std::string_view text);

/// Renders the top-style stat table: session/event/GC overview, per-class
/// watch rows with fire-latency percentiles, and SLO status when `slos` is
/// non-null. `prev` (an earlier snapshot of the same registry) turns
/// counters into rates using the embedded exposition timestamps.
std::string render_stat_table(const MetricsSnapshot& snap,
                              const MetricsSnapshot* prev = nullptr,
                              const SloTracker* slos = nullptr);

}  // namespace hbct
