#include "obs/trace.h"

#include <atomic>
#include <chrono>

#include "obs/json.h"
#include "obs/metrics.h"
#include "util/assert.h"

namespace hbct {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint32_t this_thread_tag() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t tag =
      next.fetch_add(1, std::memory_order_relaxed);
  return tag;
}

/// Per-thread stack of open spans. Frames carry the owning tracer so two
/// concurrently-active tracers on one thread can't adopt each other's
/// spans as parents.
struct OpenFrame {
  const Tracer* tracer;
  std::size_t span;
};
thread_local std::vector<OpenFrame> tl_open;

}  // namespace

Tracer::Tracer() : clock_(&steady_now_ns), epoch_(clock_()) {}

Tracer::Tracer(std::uint64_t (*clock)()) : clock_(clock), epoch_(clock_()) {}

Tracer::~Tracer() = default;

std::uint64_t Tracer::now_ns() const { return clock_(); }

std::size_t Tracer::begin(std::string name, std::size_t parent) {
  const std::uint64_t t0 = clock_() - epoch_;
  std::size_t resolved = parent;
  if (parent == kInheritParent) {
    resolved = Span::npos;
    for (auto it = tl_open.rbegin(); it != tl_open.rend(); ++it) {
      if (it->tracer == this) {
        resolved = it->span;
        break;
      }
    }
  }
  std::size_t id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Span s;
    s.name = std::move(name);
    s.tid = this_thread_tag();
    s.start_ns = t0;
    s.parent = resolved;
    spans_.push_back(std::move(s));
    id = spans_.size() - 1;
  }
  tl_open.push_back(OpenFrame{this, id});
  return id;
}

void Tracer::end(std::size_t id) {
  const std::uint64_t t1 = clock_() - epoch_;
  // RAII guarantees LIFO per thread; the innermost frame of this tracer is
  // the span being closed.
  for (auto it = tl_open.rbegin(); it != tl_open.rend(); ++it) {
    if (it->tracer == this) {
      HBCT_DASSERT(it->span == id);
      tl_open.erase(std::next(it).base());
      break;
    }
  }
  std::string hist_key;
  std::uint64_t dur = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    HBCT_ASSERT(id < spans_.size());
    Span& s = spans_[id];
    HBCT_DASSERT(s.open);
    dur = t1 >= s.start_ns ? t1 - s.start_ns : 0;
    s.dur_ns = dur;
    s.open = false;
    if (metrics_ != nullptr) hist_key = "span." + s.name + ".ns";
  }
  // Histogram write happens outside the span lock (the registry has its
  // own synchronization).
  if (!hist_key.empty()) metrics_->histogram(hist_key).record(dur);
}

void Tracer::set_arg(std::size_t id, const char* key, std::int64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  HBCT_ASSERT(id < spans_.size());
  spans_[id].args.emplace_back(key, value);
}

void Tracer::instant(
    std::string name,
    std::vector<std::pair<std::string, std::int64_t>> args) {
  const std::uint64_t ts = clock_() - epoch_;
  std::lock_guard<std::mutex> lock(mu_);
  InstantEvent e;
  e.name = std::move(name);
  e.tid = this_thread_tag();
  e.ts_ns = ts;
  e.args = std::move(args);
  instants_.push_back(std::move(e));
}

std::size_t Tracer::current() const {
  for (auto it = tl_open.rbegin(); it != tl_open.rend(); ++it)
    if (it->tracer == this) return it->span;
  return Span::npos;
}

std::vector<Span> Tracer::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::vector<InstantEvent> Tracer::instants() const {
  std::lock_guard<std::mutex> lock(mu_);
  return instants_;
}

std::size_t Tracer::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

MetricsRegistry& Tracer::metrics() {
  // Lazy so a tracer used purely for spans costs no registry. Guarded by
  // the span mutex; callers then use the registry's own lock-free paths.
  std::lock_guard<std::mutex> lock(mu_);
  if (metrics_ == nullptr) metrics_ = std::make_unique<MetricsRegistry>();
  return *metrics_;
}

const MetricsRegistry& Tracer::metrics() const {
  return const_cast<Tracer*>(this)->metrics();
}

std::string Tracer::chrome_trace_json() const {
  // Timestamps in the trace_event format are microseconds; emit with three
  // decimals to keep the full nanosecond resolution.
  const auto us = [](std::uint64_t ns) {
    return static_cast<double>(ns) / 1000.0;
  };
  std::vector<Span> spans;
  std::vector<InstantEvent> instants;
  {
    std::lock_guard<std::mutex> lock(mu_);
    spans = spans_;
    instants = instants_;
  }
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();
  w.begin_object()
      .kv("name", "process_name")
      .kv("ph", "M")
      .kv("pid", std::int64_t{1})
      .kv("tid", std::int64_t{0});
  w.key("args").begin_object().kv("name", "hbct").end_object();
  w.end_object();
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const Span& s = spans[i];
    w.begin_object()
        .kv("name", s.name)
        .kv("cat", "hbct")
        .kv("ph", "X")
        .kv("pid", std::int64_t{1})
        .kv("tid", static_cast<std::int64_t>(s.tid))
        .kv("ts", us(s.start_ns))
        .kv("dur", us(s.dur_ns));
    w.key("args").begin_object();
    w.kv("id", static_cast<std::int64_t>(i));
    w.kv("parent", s.parent == Span::npos
                       ? std::int64_t{-1}
                       : static_cast<std::int64_t>(s.parent));
    for (const auto& [k, v] : s.args) w.kv(k, v);
    w.end_object();
    w.end_object();
  }
  for (const InstantEvent& e : instants) {
    w.begin_object()
        .kv("name", e.name)
        .kv("cat", "hbct")
        .kv("ph", "i")
        .kv("s", "t")
        .kv("pid", std::int64_t{1})
        .kv("tid", static_cast<std::int64_t>(e.tid))
        .kv("ts", us(e.ts_ns));
    w.key("args").begin_object();
    for (const auto& [k, v] : e.args) w.kv(k, v);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.kv("displayTimeUnit", "ns");
  w.end_object();
  return w.take();
}

}  // namespace hbct
