// Span tracing for the detection stack.
//
// A Tracer records a tree of timed spans — one per detector phase (the
// Chase–Garg walk, A3's frontier sweep, a parallel branch, an online
// monitor round) — with nanosecond timestamps, thread tags, and parent
// links, plus point-in-time instant events (budget checkpoint trips). The
// recorded run exports as Chrome trace_event JSON loadable in
// chrome://tracing or Perfetto, and feeds the machine-readable run report
// (obs/report.h).
//
// Cost model: tracing is OFF by default. Every instrumentation site holds a
// `Tracer*` that is nullptr when disabled, and ScopedSpan's constructor is
// a single pointer test in that case — no clock read, no allocation, no
// lock (the same null-object fast path the audit preflight uses). When
// enabled, span begin/end take a mutex; spans are phase-grained (dozens to
// a few thousand per detection, never per cut step), so contention is
// negligible next to the work they time.
//
// Threading: begin/end/instant are safe from any thread — the parallel
// engine's per-chunk tasks record spans from pool workers. Parent linkage
// is tracked per thread (a thread-local stack of open spans), so nesting on
// one thread needs no explicit wiring; cross-thread children (a branch
// running on a worker on behalf of a fan-out opened on the caller) pass the
// parent id explicitly — Tracer::current() names the innermost open span of
// the calling thread for exactly that hand-off.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace hbct {

class MetricsRegistry;

/// One closed (or still-open) span. Timestamps are nanoseconds relative to
/// the tracer's construction, so traces are stable run-to-run up to clock
/// jitter and exactly reproducible under an injected test clock.
struct Span {
  static constexpr std::size_t npos = ~static_cast<std::size_t>(0);

  /// Span names are a fixed low-cardinality taxonomy (DESIGN.md §10): they
  /// key the per-phase latency histograms. Variable data (branch index,
  /// event sequence number) goes into `args`, never into the name.
  std::string name;
  std::uint32_t tid = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::size_t parent = npos;
  bool open = true;
  std::vector<std::pair<std::string, std::int64_t>> args;
};

/// A point event (no duration): budget trips, cancellations.
struct InstantEvent {
  std::string name;
  std::uint32_t tid = 0;
  std::uint64_t ts_ns = 0;
  std::vector<std::pair<std::string, std::int64_t>> args;
};

class Tracer {
 public:
  /// Parent sentinel: inherit the calling thread's innermost open span.
  static constexpr std::size_t kInheritParent = Span::npos - 1;

  Tracer();
  /// Test constructor: `clock` replaces steady_clock (monotone ns). Makes
  /// golden-file comparisons of the exported JSON exact.
  explicit Tracer(std::uint64_t (*clock)());
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens a span; returns its id. `parent` is an explicit span id,
  /// Span::npos for a root, or kInheritParent (default) to nest under the
  /// calling thread's innermost open span.
  std::size_t begin(std::string name, std::size_t parent = kInheritParent);
  /// Closes the span (must be called on the thread that opened it — RAII
  /// via ScopedSpan guarantees this). Records the duration into the
  /// per-phase histogram `span.<name>.ns` of metrics().
  void end(std::size_t id);
  /// Attaches a key/value to an open or closed span.
  void set_arg(std::size_t id, const char* key, std::int64_t value);

  /// Records an instant event (e.g. "budget.trip").
  void instant(std::string name,
               std::vector<std::pair<std::string, std::int64_t>> args = {});

  /// Innermost span currently open on the calling thread, or Span::npos.
  /// Capture this before fanning work out to pool threads and pass it as
  /// the explicit parent of their spans.
  std::size_t current() const;

  /// Snapshots (copies, taken under the lock; safe while tracing).
  std::vector<Span> spans() const;
  std::vector<InstantEvent> instants() const;
  std::size_t span_count() const;

  /// Chrome trace_event JSON ("X" complete events + "i" instants), µs
  /// timestamps with ns precision. Loadable in chrome://tracing / Perfetto.
  std::string chrome_trace_json() const;

  /// Per-trace metrics: span-duration histograms plus whatever the
  /// instrumented code records against this run (queue gauges, absorbed
  /// DetectStats). Snapshot lands in the run report.
  MetricsRegistry& metrics();
  const MetricsRegistry& metrics() const;

  std::uint64_t now_ns() const;

 private:
  std::uint64_t (*clock_)();
  std::uint64_t epoch_;
  mutable std::mutex mu_;
  std::vector<Span> spans_;
  std::vector<InstantEvent> instants_;
  std::unique_ptr<MetricsRegistry> metrics_;
};

/// RAII span. A null tracer makes every member a no-op — the disabled-path
/// cost at each instrumentation site is one pointer test.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(Tracer* t, const char* name,
             std::size_t parent = Tracer::kInheritParent)
      : t_(t) {
    if (t_ != nullptr) id_ = t_->begin(name, parent);
  }
  ~ScopedSpan() {
    if (t_ != nullptr) t_->end(id_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void arg(const char* key, std::int64_t value) {
    if (t_ != nullptr) t_->set_arg(id_, key, value);
  }
  std::size_t id() const { return t_ != nullptr ? id_ : Span::npos; }
  explicit operator bool() const { return t_ != nullptr; }

 private:
  Tracer* t_ = nullptr;
  std::size_t id_ = Span::npos;
};

}  // namespace hbct
