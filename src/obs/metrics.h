// Metrics registry: counters, gauges, and log-bucketed histograms.
//
// The registry extends DetectStats beyond a single detection: the process-
// wide instance (MetricsRegistry::global()) aggregates every detection's
// operation counts and verdict tally, and each Tracer carries a private
// registry whose snapshot lands in that run's report (obs/report.h).
//
// Write-path design: counters are sharded across cache-line-padded atomic
// slots indexed by a per-thread id, so concurrent increments from pool
// workers never contend on one line; reads (snapshot) sum the shards. No
// lock is taken on any write path — the registry mutex guards only the
// name→metric map, and callers hold direct Counter&/Histogram& references
// across the hot region.
//
// Histograms use a fixed base-2 log-bucket layout: bucket 0 counts zeros,
// bucket b >= 1 counts values v with bit_width(v) == b, i.e. v in
// [2^(b-1), 2^b). 64 buckets cover the full uint64 range, the layout never
// resizes, and two histograms merge by adding counts — exactly the shape a
// scrape-based exporter wants.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/stats.h"

namespace hbct {

namespace obs_detail {
/// Small dense per-thread index used to pick a shard slot.
std::size_t shard_index() noexcept;
}  // namespace obs_detail

class Counter {
 public:
  static constexpr std::size_t kShards = 16;

  void add(std::uint64_t d = 1) noexcept {
    shards_[obs_detail::shard_index() % kShards].v.fetch_add(
        d, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    std::uint64_t sum = 0;
    for (const Slot& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Slot, kShards> shards_{};
};

/// A last-writer-wins instantaneous value (queue depth, fan-out width).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  /// Raises the gauge to `v` if larger (high-water marks).
  void max_of(std::int64_t v) noexcept {
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed))
      ;
  }
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;
  static constexpr std::size_t kShards = 8;

  Histogram();

  void record(std::uint64_t v) noexcept;

  /// Bucket index of a value under the fixed log2 layout.
  static std::size_t bucket_of(std::uint64_t v) noexcept;
  /// Inclusive lower / exclusive upper bound of bucket b (upper bound of
  /// the last bucket saturates at uint64 max).
  static std::uint64_t bucket_lo(std::size_t b) noexcept;
  static std::uint64_t bucket_hi(std::size_t b) noexcept;

  struct Snapshot {
    std::array<std::uint64_t, kBuckets> counts{};
    std::uint64_t count = 0;
    std::uint64_t sum = 0;

    /// Nearest-rank percentile estimate: the exclusive upper bound of the
    /// bucket containing the q-quantile rank (q in [0,1]). Deterministic
    /// and monotone in q; 0 when empty.
    std::uint64_t percentile(double q) const;
    double mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }
    bool operator==(const Snapshot& o) const {
      return counts == o.counts && count == o.count && sum == o.sum;
    }
  };
  Snapshot snapshot() const;

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kBuckets> counts{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
  };
  std::array<Shard, kShards> shards_;
};

/// Point-in-time copy of a whole registry, for reports and assertions.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, Histogram::Snapshot> histograms;

  bool operator==(const MetricsSnapshot& o) const {
    return counters == o.counters && gauges == o.gauges &&
           histograms == o.histograms;
  }
};

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create by name. The returned reference is stable for the
  /// registry's lifetime; resolve once, increment lock-free after.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Folds one detection's operation counts into the detect.* counters.
  /// Generated from the DetectStats X-macro (util/stats.h), so a counter
  /// added there is aggregated here by construction.
  void absorb(const DetectStats& st);

  MetricsSnapshot snapshot() const;

  /// Process-wide registry: every detect() absorbs its stats and verdict
  /// here whether or not tracing is on.
  static MetricsRegistry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  /// Pre-resolved detect.* counters in X-macro field order (absorb()'s
  /// lock-free fast path).
  std::vector<Counter*> stats_cells_;
};

}  // namespace hbct
