#include "obs/report.h"

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hbct {

namespace {

void write_metrics(JsonWriter& w, const MetricsSnapshot& snap) {
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, v] : snap.counters) w.kv(name, v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, v] : snap.gauges) w.kv(name, v);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : snap.histograms) {
    w.key(name).begin_object();
    w.kv("count", h.count);
    w.kv("sum", h.sum);
    w.kv("mean", h.mean());
    w.kv("p50", h.percentile(0.50));
    w.kv("p90", h.percentile(0.90));
    w.kv("p99", h.percentile(0.99));
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

void write_spans(JsonWriter& w, const Tracer& t) {
  const std::vector<Span> spans = t.spans();
  w.begin_array();
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const Span& s = spans[i];
    w.begin_object();
    w.kv("id", static_cast<std::int64_t>(i));
    w.kv("name", s.name);
    w.kv("tid", static_cast<std::int64_t>(s.tid));
    w.kv("parent", s.parent == Span::npos
                       ? std::int64_t{-1}
                       : static_cast<std::int64_t>(s.parent));
    w.kv("start_ns", s.start_ns);
    w.kv("dur_ns", s.dur_ns);
    w.kv("open", s.open);
    w.key("args").begin_object();
    for (const auto& [k, v] : s.args) w.kv(k, v);
    w.end_object();
    w.end_object();
  }
  w.end_array();
}

}  // namespace

std::string report_json(const DetectResult& r, const ReportOptions& opt) {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", kReportSchema);
  w.kv("verdict", to_string(r.verdict));
  w.kv("bound", to_string(r.bound));
  w.kv("algorithm", r.algorithm);
  w.kv("plan", r.plan);

  w.key("stats").begin_object();
#define HBCT_STATS_REPORT(field, label, skip) w.kv(#field, r.stats.field);
  HBCT_DETECT_STATS_FIELDS(HBCT_STATS_REPORT)
#undef HBCT_STATS_REPORT
  w.end_object();

  if (r.witness_cut.has_value()) {
    w.key("witness_cut").begin_array();
    for (std::size_t i = 0; i < r.witness_cut->size(); ++i)
      w.value(static_cast<std::int64_t>((*r.witness_cut)[i]));
    w.end_array();
  } else {
    w.key("witness_cut").raw("null");
  }
  w.kv("witness_path_len", static_cast<std::uint64_t>(r.witness_path.size()));

  w.key("rewrites").begin_array();
  for (const RewriteStep& s : r.rewrites) {
    w.begin_object();
    w.kv("rule", s.rule);
    w.kv("note", s.note);
    w.kv("before", s.before);
    w.kv("after", s.after);
    w.end_object();
  }
  w.end_array();

  w.key("diagnostics").begin_array();
  for (const Diagnostic& d : r.diagnostics) {
    w.begin_object();
    w.kv("code", to_string(d.code));
    w.kv("severity", to_string(d.severity));
    w.kv("message", d.message);
    if (!d.suggestion.empty()) w.kv("suggestion", d.suggestion);
    w.end_object();
  }
  w.end_array();

  const MetricsRegistry* reg = opt.registry;
  if (reg == nullptr && r.trace != nullptr) reg = &r.trace->metrics();
  if (opt.include_metrics && reg != nullptr) {
    w.key("metrics");
    write_metrics(w, reg->snapshot());
  } else {
    w.key("metrics").raw("null");
  }

  if (opt.include_spans && r.trace != nullptr) {
    w.key("spans");
    write_spans(w, *r.trace);
  } else {
    w.key("spans").raw("null");
  }

  w.end_object();
  return w.take();
}

}  // namespace hbct
