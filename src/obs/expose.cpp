#include "obs/expose.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <vector>

#include "obs/slo.h"
#include "util/assert.h"

namespace hbct {

namespace {

/// Splits a registry name `base{label="v",...}` into base + label block.
void split_labels(std::string_view name, std::string_view* base,
                  std::string_view* labels) {
  const std::size_t br = name.find('{');
  if (br == std::string_view::npos) {
    *base = name;
    *labels = {};
  } else {
    *base = name.substr(0, br);
    *labels = name.substr(br);  // includes the braces
  }
}

/// hbct_ prefix, dots and dashes to underscores. Labels pass through.
std::string mangle(std::string_view base) {
  std::string out = "hbct_";
  for (char c : base)
    out += (c == '.' || c == '-') ? '_' : c;
  return out;
}

std::string escape_label_value(std::string_view v) {
  std::string out;
  for (char c : v) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

/// `{a="1"}` + (le, "4096") -> `{a="1",le="4096"}`; empty + ... -> `{le=...}`.
std::string merge_label(std::string_view labels, std::string_view key,
                        std::string_view value) {
  std::string out;
  if (labels.empty()) {
    out = "{";
  } else {
    out = std::string(labels.substr(0, labels.size() - 1));  // drop '}'
    out += ',';
  }
  out += key;
  out += "=\"";
  out += escape_label_value(value);
  out += "\"}";
  return out;
}

void type_line(std::string& out, std::string& last_family,
               const std::string& family, std::string_view source,
               const char* type) {
  if (family == last_family) return;
  last_family = family;
  // The HELP line carries the registry-side (dotted) name so a parser can
  // reconstruct the snapshot without guessing at the underscore mangling.
  out += "# HELP " + family + " source=" + std::string(source) + "\n";
  out += "# TYPE " + family + " " + type + "\n";
}

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::string labeled(std::string_view name, std::string_view key,
                    std::string_view value) {
  std::string out = std::string(merge_label("", key, value));
  std::string_view base, labels;
  split_labels(name, &base, &labels);
  if (labels.empty())
    return std::string(base) + out;
  return std::string(base) + merge_label(labels, key, value);
}

std::string render_prometheus(const MetricsSnapshot& snap,
                              const ExpositionOptions& opt) {
  std::string out;
  std::string last_family;
  char buf[64];

  for (const auto& [name, v] : snap.counters) {
    std::string_view base, labels;
    split_labels(name, &base, &labels);
    const std::string family = mangle(base) + "_total";
    type_line(out, last_family, family, base, "counter");
    std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", v);
    out += family + std::string(labels) + buf;
  }
  for (const auto& [name, v] : snap.gauges) {
    std::string_view base, labels;
    split_labels(name, &base, &labels);
    const std::string family = mangle(base);
    type_line(out, last_family, family, base, "gauge");
    std::snprintf(buf, sizeof(buf), " %" PRId64 "\n", v);
    out += family + std::string(labels) + buf;
  }
  if (opt.timestamp_ns != 0) {
    const std::string family = "hbct_exposition_timestamp_ns";
    type_line(out, last_family, family, "exposition.timestamp_ns", "gauge");
    std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", opt.timestamp_ns);
    out += family + buf;
  }
  for (const auto& [name, h] : snap.histograms) {
    std::string_view base, labels;
    split_labels(name, &base, &labels);
    const std::string family = mangle(base);
    type_line(out, last_family, family, base, "histogram");
    // Cumulative buckets on the fixed log2 boundaries; empty buckets are
    // skipped (the cumulative count is unchanged there), +Inf always
    // emitted. This is exactly the layout the log2 histogram was built
    // for: fixed boundaries, merge-by-addition, no re-binning.
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (h.counts[b] == 0) continue;
      cum += h.counts[b];
      std::snprintf(buf, sizeof(buf), "%" PRIu64, Histogram::bucket_hi(b));
      out += family + "_bucket" + merge_label(labels, "le", buf);
      std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", cum);
      out += buf;
    }
    out += family + "_bucket" + merge_label(labels, "le", "+Inf");
    std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", h.count);
    out += buf;
    std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", h.sum);
    out += family + "_sum" + std::string(labels) + buf;
    std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", h.count);
    out += family + "_count" + std::string(labels) + buf;
  }
  return out;
}

// ---- Parser ------------------------------------------------------------------

namespace {

struct Family {
  std::string source;  // dotted registry name from the HELP line
  std::string type;    // counter | gauge | histogram
};

/// One exposition sample line: mangled name, raw label block, value text.
struct Sample {
  std::string_view name;
  std::string_view labels;  // "{...}" or empty
  std::string_view value;
};

/// Index just past the '}' that closes the label block opening at
/// `line[open]`, skipping over quoted values (honoring backslash escapes)
/// so a '}' inside a label value never ends the block early. npos when the
/// block is unterminated.
std::size_t label_block_end(std::string_view line, std::size_t open) {
  bool in_quotes = false;
  for (std::size_t i = open + 1; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '\\')
        ++i;  // escaped char, even '"'
      else if (c == '"')
        in_quotes = false;
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == '}') {
      return i + 1;
    }
  }
  return std::string_view::npos;
}

bool parse_sample(std::string_view line, Sample* s) {
  std::size_t i = 0;
  while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
  s->name = line.substr(0, i);
  if (s->name.empty()) return false;
  if (i < line.size() && line[i] == '{') {
    const std::size_t close = label_block_end(line, i);
    if (close == std::string_view::npos) return false;
    s->labels = line.substr(i, close - i);
    i = close;
  } else {
    s->labels = {};
  }
  if (i >= line.size() || line[i] != ' ') return false;
  s->value = line.substr(i + 1);
  return !s->value.empty();
}

/// One label of a raw block, with its extent in the original text so
/// callers can splice labels out without re-escaping anything.
struct LabelToken {
  std::size_t begin = 0;     // key start
  std::size_t end = 0;       // one past the value's closing quote
  std::string_view key;
  std::string_view raw;      // still-escaped bytes between the quotes
};

/// Walks `{k="v",...}` into key/value tokens, quote- and escape-aware.
/// This is the one place label syntax is interpreted: a key merely
/// *ending* in "le" or a value *containing* `le="` or '}' can no longer
/// confuse the le-specific helpers below. False when malformed.
bool scan_labels(std::string_view labels, std::vector<LabelToken>* out) {
  if (labels.empty()) return true;
  if (labels.size() < 2 || labels.front() != '{') return false;
  std::size_t i = 1;
  if (labels[i] == '}') return i + 1 == labels.size();
  for (;;) {
    LabelToken tok;
    tok.begin = i;
    while (i < labels.size() && labels[i] != '=') ++i;
    if (i >= labels.size() || i == tok.begin) return false;
    tok.key = labels.substr(tok.begin, i - tok.begin);
    ++i;  // past '='
    if (i >= labels.size() || labels[i] != '"') return false;
    const std::size_t val = ++i;
    while (i < labels.size() && labels[i] != '"') {
      if (labels[i] == '\\') ++i;
      ++i;
    }
    if (i >= labels.size()) return false;  // unterminated value
    tok.raw = labels.substr(val, i - val);
    tok.end = ++i;  // past the closing quote
    if (out != nullptr) out->push_back(tok);
    if (i >= labels.size()) return false;
    if (labels[i] == '}') return i + 1 == labels.size();
    if (labels[i] != ',') return false;
    ++i;
  }
}

std::string unescape_label_value(std::string_view raw) {
  std::string out;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    char c = raw[i];
    if (c == '\\' && i + 1 < raw.size()) {
      ++i;
      c = raw[i] == 'n' ? '\n' : raw[i];
    }
    out += c;
  }
  return out;
}

/// Pulls one label's value out of a raw `{a="x",le="42"}` block.
bool label_value(std::string_view labels, std::string_view key,
                 std::string* out) {
  std::vector<LabelToken> toks;
  if (!scan_labels(labels, &toks)) return false;
  for (const LabelToken& t : toks) {
    if (t.key != key) continue;
    *out = unescape_label_value(t.raw);
    return true;
  }
  return false;
}

/// Removes the le label from a raw block: `{a="x",le="42"}` -> `{a="x"}`.
/// Splices the original text (no re-render), so the remaining block stays
/// byte-identical to what render_prometheus emitted — the exact-round-trip
/// key `source + labels` depends on that.
std::string strip_le(std::string_view labels) {
  std::vector<LabelToken> toks;
  if (!scan_labels(labels, &toks)) return std::string(labels);
  for (const LabelToken& t : toks) {
    if (t.key != "le") continue;
    if (toks.size() == 1) return std::string();  // `{le="..."}` -> no block
    std::size_t begin = t.begin;
    std::size_t end = t.end;
    if (end < labels.size() && labels[end] == ',')
      ++end;  // not last: its separator follows
    else if (labels[begin - 1] == ',')
      --begin;  // last: its separator precedes
    return std::string(labels.substr(0, begin)) +
           std::string(labels.substr(end));
  }
  return std::string(labels);
}

std::size_t bucket_of_le(std::string_view le) {
  if (le == "+Inf") return Histogram::kBuckets - 1;
  const std::uint64_t hi = std::strtoull(std::string(le).c_str(), nullptr, 10);
  for (std::size_t b = 0; b < Histogram::kBuckets; ++b)
    if (Histogram::bucket_hi(b) == hi) return b;
  return Histogram::kBuckets;  // not a log2 boundary
}

}  // namespace

bool parse_prometheus(std::string_view text, MetricsSnapshot* out,
                      std::string* err) {
  const auto fail = [&](std::size_t lineno, const std::string& what) {
    if (err != nullptr)
      *err = "line " + std::to_string(lineno) + ": " + what;
    return false;
  };
  std::map<std::string, Family, std::less<>> families;
  // Histogram assembly state: per (source+labels) cumulative walk.
  struct HistState {
    Histogram::Snapshot snap;
    std::uint64_t last_cum = 0;
    std::uint64_t last_le_bucket = 0;
  };
  std::map<std::string, HistState> hists;

  std::size_t lineno = 0;
  std::size_t at = 0;
  while (at < text.size()) {
    std::size_t nl = text.find('\n', at);
    if (nl == std::string_view::npos) nl = text.size();
    std::string_view line = text.substr(at, nl - at);
    at = nl + 1;
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // "# HELP <family> source=<dotted>" and "# TYPE <family> <type>".
      Sample s;
      if (line.rfind("# HELP ", 0) == 0) {
        std::string_view rest = line.substr(7);
        const std::size_t sp = rest.find(' ');
        if (sp == std::string_view::npos) continue;
        std::string_view src = rest.substr(sp + 1);
        if (src.rfind("source=", 0) == 0)
          families[std::string(rest.substr(0, sp))].source =
              std::string(src.substr(7));
      } else if (line.rfind("# TYPE ", 0) == 0) {
        std::string_view rest = line.substr(7);
        const std::size_t sp = rest.find(' ');
        if (sp == std::string_view::npos)
          return fail(lineno, "malformed TYPE line");
        families[std::string(rest.substr(0, sp))].type =
            std::string(rest.substr(sp + 1));
      }
      (void)s;
      continue;
    }
    if (line.rfind("hbct_", 0) != 0) continue;  // foreign exposition line
    Sample s;
    if (!parse_sample(line, &s)) return fail(lineno, "malformed sample");

    // Resolve the family: exact name, else histogram/counter suffix forms.
    std::string fam(s.name);
    std::string suffix;
    auto it = families.find(fam);
    if (it == families.end() || it->second.type.empty()) {
      for (const char* suf : {"_bucket", "_sum", "_count"}) {
        const std::string_view sv(suf);
        if (fam.size() > sv.size() &&
            fam.compare(fam.size() - sv.size(), sv.size(), sv) == 0) {
          const std::string trimmed = fam.substr(0, fam.size() - sv.size());
          auto it2 = families.find(trimmed);
          if (it2 != families.end() && it2->second.type == "histogram") {
            fam = trimmed;
            suffix = std::string(sv);
            it = it2;
            break;
          }
        }
      }
    }
    if (it == families.end() && suffix.empty())
      it = families.find(fam);
    if (it == families.end() || it->second.source.empty())
      return fail(lineno, "sample without HELP/TYPE metadata: " + fam);
    const Family& f = it->second;
    const std::string dotted = f.source + strip_le(s.labels);

    if (f.type == "counter") {
      const std::string base =
          f.source;  // counter family already lost its _total in HELP? no:
      (void)base;
      out->counters[dotted] =
          std::strtoull(std::string(s.value).c_str(), nullptr, 10);
    } else if (f.type == "gauge") {
      out->gauges[dotted] =
          std::strtoll(std::string(s.value).c_str(), nullptr, 10);
    } else if (f.type == "histogram") {
      HistState& hs = hists[dotted];
      if (suffix == "_bucket") {
        std::string le;
        if (!label_value(s.labels, "le", &le))
          return fail(lineno, "bucket without le label");
        const std::size_t b = bucket_of_le(le);
        if (b >= Histogram::kBuckets)
          return fail(lineno, "le is not a log2 bucket boundary: " + le);
        const std::uint64_t cum =
            std::strtoull(std::string(s.value).c_str(), nullptr, 10);
        if (cum < hs.last_cum)
          return fail(lineno, "histogram buckets not monotone");
        if (le != "+Inf") {
          hs.snap.counts[b] = cum - hs.last_cum;
          hs.last_cum = cum;
          hs.last_le_bucket = b;
        }
      } else if (suffix == "_sum") {
        hs.snap.sum = std::strtoull(std::string(s.value).c_str(), nullptr, 10);
      } else if (suffix == "_count") {
        hs.snap.count =
            std::strtoull(std::string(s.value).c_str(), nullptr, 10);
      } else {
        return fail(lineno, "unexpected histogram sample " + fam);
      }
    } else {
      return fail(lineno, "unknown family type '" + f.type + "'");
    }
  }
  for (auto& [name, hs] : hists) {
    if (hs.snap.count < hs.last_cum)
      return fail(0, "histogram " + name + " count below bucket total");
    out->histograms[name] = hs.snap;
  }
  return true;
}

// ---- Exporter ----------------------------------------------------------------

Exporter::Exporter(const MetricsRegistry& reg, Sink sink)
    : Exporter(reg, std::move(sink), Options{}) {}

Exporter::Exporter(const MetricsRegistry& reg, Sink sink, Options opt)
    : reg_(reg), sink_(std::move(sink)), opt_(opt) {
  HBCT_ASSERT(sink_);
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      if (cv_.wait_for(lk, opt_.period, [this] { return stop_; })) return;
      lk.unlock();
      export_now();
      lk.lock();
    }
  });
}

Exporter::~Exporter() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void Exporter::export_now() {
  const MetricsSnapshot snap = reg_.snapshot();
  if (opt_.slos != nullptr) opt_.slos->evaluate(snap);
  ExpositionOptions eo;
  eo.timestamp_ns = steady_ns();
  sink_(render_prometheus(snap, eo));
  exports_.fetch_add(1, std::memory_order_relaxed);
}

bool write_file_atomic(const std::string& path, std::string_view text) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  if (std::fclose(f) != 0 || !wrote) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

// ---- Stat table --------------------------------------------------------------

namespace {

std::uint64_t counter_or0(const MetricsSnapshot& s, const std::string& n) {
  auto it = s.counters.find(n);
  return it == s.counters.end() ? 0 : it->second;
}

std::int64_t gauge_or0(const MetricsSnapshot& s, const std::string& n) {
  auto it = s.gauges.find(n);
  return it == s.gauges.end() ? 0 : it->second;
}

const Histogram::Snapshot* hist_of(const MetricsSnapshot& s,
                                   const std::string& n) {
  auto it = s.histograms.find(n);
  return it == s.histograms.end() ? nullptr : &it->second;
}

std::string human_rate(double per_sec) {
  char buf[48];
  if (per_sec >= 1e6)
    std::snprintf(buf, sizeof(buf), "%.2fM/s", per_sec / 1e6);
  else if (per_sec >= 1e3)
    std::snprintf(buf, sizeof(buf), "%.1fk/s", per_sec / 1e3);
  else
    std::snprintf(buf, sizeof(buf), "%.1f/s", per_sec);
  return buf;
}

std::string human_ns(std::uint64_t ns) {
  char buf[48];
  if (ns >= 1'000'000'000ull)
    std::snprintf(buf, sizeof(buf), "%.2fs", static_cast<double>(ns) / 1e9);
  else if (ns >= 1'000'000ull)
    std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(ns) / 1e6);
  else if (ns >= 1'000ull)
    std::snprintf(buf, sizeof(buf), "%.1fus", static_cast<double>(ns) / 1e3);
  else
    std::snprintf(buf, sizeof(buf), "%lluns",
                  static_cast<unsigned long long>(ns));
  return buf;
}

}  // namespace

std::string render_stat_table(const MetricsSnapshot& snap,
                              const MetricsSnapshot* prev,
                              const SloTracker* slos) {
  std::string out;
  char buf[256];

  // Rate window from the embedded exposition timestamps, when present.
  double dt_s = 0;
  if (prev != nullptr) {
    const std::int64_t t1 = gauge_or0(snap, "exposition.timestamp_ns");
    const std::int64_t t0 = gauge_or0(*prev, "exposition.timestamp_ns");
    if (t1 > t0) dt_s = static_cast<double>(t1 - t0) / 1e9;
  }
  const auto rate = [&](const std::string& counter) -> std::string {
    if (dt_s <= 0) return "-";
    const double d = static_cast<double>(counter_or0(snap, counter)) -
                     static_cast<double>(counter_or0(*prev, counter));
    return human_rate(d / dt_s);
  };

  std::snprintf(buf, sizeof(buf),
                "sessions  open=%lld  opened=%llu  closed=%llu  failed=%llu\n",
                static_cast<long long>(gauge_or0(snap, "serve.open_sessions")),
                static_cast<unsigned long long>(
                    counter_or0(snap, "serve.sessions_opened")),
                static_cast<unsigned long long>(
                    counter_or0(snap, "serve.sessions_closed")),
                static_cast<unsigned long long>(
                    counter_or0(snap, "serve.session_failures")));
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      "events    total=%llu  rate=%s  records=%llu  fires=%llu\n",
      static_cast<unsigned long long>(counter_or0(snap, "serve.events")),
      rate("serve.events").c_str(),
      static_cast<unsigned long long>(counter_or0(snap, "serve.records")),
      static_cast<unsigned long long>(counter_or0(snap, "serve.fires")));
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      "memory    resident=%lld events (peak %lld)  gc_rounds=%llu  "
      "reclaimed=%llu\n",
      static_cast<long long>(gauge_or0(snap, "serve.resident_events")),
      static_cast<long long>(gauge_or0(snap, "serve.resident_events.peak")),
      static_cast<unsigned long long>(counter_or0(snap, "serve.gc.rounds")),
      static_cast<unsigned long long>(
          counter_or0(snap, "serve.gc.reclaimed_events")));
  out += buf;
  if (const auto* h = hist_of(snap, "serve.ingest.ns")) {
    std::snprintf(buf, sizeof(buf),
                  "ingest    chunks=%llu  p50=%s  p99=%s\n",
                  static_cast<unsigned long long>(h->count),
                  human_ns(h->percentile(0.5)).c_str(),
                  human_ns(h->percentile(0.99)).c_str());
    out += buf;
  }

  // Per-watch-class rows: any serve.fires{class="..."} series present.
  std::vector<std::string> classes;
  const std::string prefix = "serve.fires{class=\"";
  for (const auto& [name, v] : snap.counters) {
    if (name.rfind(prefix, 0) != 0) continue;
    const std::size_t end = name.find('"', prefix.size());
    if (end != std::string::npos)
      classes.push_back(name.substr(prefix.size(), end - prefix.size()));
  }
  if (!classes.empty()) {
    std::snprintf(buf, sizeof(buf), "\n%-14s %10s %10s %10s %10s\n", "class",
                  "fires", "rate", "fire p50", "fire p99");
    out += buf;
    for (const std::string& cls : classes) {
      const std::string fires_name = labeled("serve.fires", "class", cls);
      const auto* h =
          hist_of(snap, labeled("serve.fire_latency.ns", "class", cls));
      std::snprintf(buf, sizeof(buf), "%-14s %10llu %10s %10s %10s\n",
                    cls.c_str(),
                    static_cast<unsigned long long>(
                        counter_or0(snap, fires_name)),
                    rate(fires_name).c_str(),
                    h != nullptr ? human_ns(h->percentile(0.5)).c_str() : "-",
                    h != nullptr ? human_ns(h->percentile(0.99)).c_str() : "-");
      out += buf;
    }
  }

  if (slos != nullptr) {
    const std::vector<SloStatus> st = slos->peek(snap);
    if (!st.empty()) {
      std::snprintf(buf, sizeof(buf), "\n%-24s %12s %12s  %s\n", "slo",
                    "objective", "measured", "status");
      out += buf;
      for (const SloStatus& s : st) {
        std::snprintf(
            buf, sizeof(buf), "%-24s p%-2.0f<=%-6s %12s  %s\n",
            s.spec.name.c_str(), s.spec.quantile * 100,
            human_ns(s.spec.max_ns).c_str(),
            s.evaluated ? human_ns(s.measured_ns).c_str() : "-",
            !s.evaluated ? "no data" : (s.breached ? "BREACH" : "ok"));
        out += buf;
      }
    }
  }
  return out;
}

}  // namespace hbct
