// Always-on flight recorder: a fixed-capacity, lock-free ring of compact
// span/instant records that costs a handful of nanoseconds per record and
// is therefore left enabled in production. When an anomaly strikes — a
// budget trip, an audit failure, a wire decode error, a session isolation
// failure, an SLO breach — the recorder snapshots the recent window into a
// Chrome-trace-compatible dump with the triggering record marked, so the
// incident can be explained after the fact without re-running with the
// (opt-in, heavier) span tracer of obs/trace.h.
//
// Write-path design — the same sharded cache-line-padded slot layout as
// MetricsRegistry's counters: records land in one of kShards rings indexed
// by the dense per-thread id, each ring a power-of-two array of slots with
// a relaxed fetch_add ticket counter. A writer never takes a lock and never
// waits: it claims a ticket, stamps the slot's sequence odd, writes the
// record, and publishes the sequence even (a per-slot seqlock). The record
// payload itself is stored as relaxed-atomic 64-bit words, so a snapshot
// racing a writer is defined behavior (TSan-clean); the sequence check
// still discards any copy the writer overlapped. Readers (snapshot/dump,
// rare) skip slots whose sequence is odd or changed across the copy. The
// one un-detectable tear needs two writers racing on one slot a full ring
// apart — i.e. the ring wrapped entirely during a single ~20ns write — and
// even then the damage is one garbled diagnostic record, never corrupted
// JSON (record payloads are integers; names are table-bounded).
//
// Record names are interned into a small table (fixed low-cardinality
// taxonomy, as with spans); call sites resolve the id once into a
// function-local static and pass integers ever after. Variable data rides
// in two int64 args whose labels are part of the interned name entry.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace hbct {

class FlightRecorder {
 public:
  static constexpr std::size_t kShards = 16;

  enum class Kind : std::uint8_t { kSpan, kInstant, kAnomaly };

  /// One compact record: 48 bytes, all integers. `name` indexes the intern
  /// table; a0/a1 carry the two args the name entry labels.
  struct Record {
    std::uint64_t ts_ns = 0;   // start (spans) or occurrence time
    std::uint64_t dur_ns = 0;  // 0 for instants/anomalies
    std::int64_t a0 = 0;
    std::int64_t a1 = 0;
    std::uint64_t ticket = 0;  // global-ish order within a shard
    std::uint32_t tid = 0;
    std::uint16_t name = 0;
    Kind kind = Kind::kInstant;
  };

  struct Config {
    /// Slots per shard, rounded up to a power of two. 4096 slots x 16
    /// shards x 64 bytes = 4 MiB resident, ~65k records retained.
    std::size_t ring_capacity = 4096;
    /// Dump horizon: records older than this are dropped from snapshots.
    std::uint64_t window_ns = 30ull * 1'000'000'000ull;
    /// Floor between two automatic anomaly dumps (0 = dump on every
    /// anomaly). Protects against dump storms when a whole fleet of
    /// sessions trips at once — rendering a multi-MB dump per anomaly on
    /// the tripping thread is exactly what this guards against, so the
    /// default is nonzero. Tunable at runtime via set_min_dump_gap();
    /// explicit dump_chrome() calls are never limited.
    std::uint64_t min_dump_gap_ns = 1'000'000'000;  // 1s
  };

  FlightRecorder();  // default Config
  explicit FlightRecorder(Config cfg);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The process-wide recorder every built-in instrumentation site writes
  /// to. Enabled from the first use; never destroyed.
  static FlightRecorder& global();

  /// Interns a record name with its two arg labels; returns a stable id.
  /// Re-interning the same name returns the same id (labels of the first
  /// registration win). Call once per site, keep the id in a static.
  std::uint16_t intern(std::string_view name, std::string_view arg0 = {},
                       std::string_view arg1 = {});
  /// Name for an id; "?" when out of range (torn record).
  std::string name_of(std::uint16_t id) const;

  /// Cheap on/off switch probed first on every write path (one relaxed
  /// load). The A/B rows of bench_streaming/bench_watch toggle this.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // ---- Write path (lock-free, wait-free) ----------------------------------
  void span(std::uint16_t name, std::uint64_t start_ns, std::uint64_t end_ns,
            std::int64_t a0 = 0, std::int64_t a1 = 0);
  void instant(std::uint16_t name, std::int64_t a0 = 0, std::int64_t a1 = 0);
  /// Records an anomaly and, when a dump sink is installed (and the dump
  /// gap allows), synchronously snapshots the window and hands the Chrome
  /// JSON to the sink. Returns the anomaly's ticket for explicit dumps.
  std::uint64_t anomaly(std::uint16_t name, std::int64_t a0 = 0,
                        std::int64_t a1 = 0);

  std::uint64_t now_ns() const;

  // ---- Snapshot / dump (rare; locks only the name table) ------------------
  /// All valid records within the window, oldest first.
  std::vector<Record> snapshot() const;
  /// Chrome trace_event JSON of the current window. When `trigger_ticket`
  /// matches a record's ticket, that record is marked with a "trigger": 1
  /// arg (and anomalies always carry "anomaly": 1), so the triggering event
  /// is findable in chrome://tracing / Perfetto.
  std::string dump_chrome(std::uint64_t trigger_ticket = kNoTrigger) const;

  static constexpr std::uint64_t kNoTrigger = ~std::uint64_t{0};

  /// Sink invoked on every anomaly (rate-limited by min_dump_gap_ns) with
  /// the dump and the anomaly's interned name. Replaces any previous sink;
  /// pass nullptr to disarm. The sink runs on the tripping thread — keep it
  /// quick (write a file, enqueue).
  using DumpSink =
      std::function<void(const std::string& chrome_json, std::string_view
                         anomaly_name)>;
  void set_dump_sink(DumpSink sink);

  /// Runtime control of the automatic-dump rate limit. The global()
  /// recorder is constructed with default Config before any code runs, so
  /// operators arming a sink on it tune the storm floor here (0 = dump on
  /// every anomaly).
  void set_min_dump_gap(std::uint64_t ns) {
    min_dump_gap_ns_.store(ns, std::memory_order_relaxed);
  }
  std::uint64_t min_dump_gap() const {
    return min_dump_gap_ns_.load(std::memory_order_relaxed);
  }

  struct Stats {
    std::uint64_t recorded = 0;   // records written (all kinds)
    std::uint64_t anomalies = 0;  // anomaly records among them
    std::uint64_t dumps = 0;      // sink invocations
  };
  Stats stats() const;

 private:
  static_assert(sizeof(Record) % sizeof(std::uint64_t) == 0,
                "Record must pack into whole 64-bit words");
  static constexpr std::size_t kRecordWords =
      sizeof(Record) / sizeof(std::uint64_t);

  struct Slot {
    /// 0 = never written; odd = write in progress; even = 2*(ticket+1).
    std::atomic<std::uint64_t> seq{0};
    /// The Record payload as relaxed-atomic words: a reader racing a
    /// writer observes defined (possibly torn) values that the seq check
    /// then discards, instead of a plain-load/plain-store data race.
    std::array<std::atomic<std::uint64_t>, kRecordWords> words{};
  };
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> tickets{0};
    std::unique_ptr<Slot[]> slots;
  };

  void write(Kind kind, std::uint16_t name, std::uint64_t ts_ns,
             std::uint64_t dur_ns, std::int64_t a0, std::int64_t a1,
             std::uint64_t* ticket_out);

  Config cfg_;
  std::size_t mask_;  // ring_capacity - 1 (power of two)
  std::array<Shard, kShards> shards_;
  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<std::uint64_t> anomalies_{0};
  std::atomic<std::uint64_t> dumps_{0};
  std::atomic<std::uint64_t> last_dump_ns_{0};
  std::atomic<std::uint64_t> min_dump_gap_ns_{0};  // seeded from cfg_

  mutable std::mutex names_mu_;
  struct NameEntry {
    std::string name, arg0, arg1;
  };
  std::vector<NameEntry> names_;

  mutable std::mutex sink_mu_;
  DumpSink sink_;
};

/// RAII flight span: one clock read at construction, a record at scope
/// exit. Disabled-recorder cost is two relaxed loads.
class FlightScope {
 public:
  FlightScope(FlightRecorder& rec, std::uint16_t name, std::int64_t a0 = 0,
              std::int64_t a1 = 0)
      : rec_(rec), name_(name), a0_(a0), a1_(a1) {
    if (rec_.enabled()) t0_ = rec_.now_ns();
  }
  ~FlightScope() {
    if (rec_.enabled() && t0_ != 0)
      rec_.span(name_, t0_, rec_.now_ns(), a0_, a1_);
  }

  FlightScope(const FlightScope&) = delete;
  FlightScope& operator=(const FlightScope&) = delete;

  void args(std::int64_t a0, std::int64_t a1) {
    a0_ = a0;
    a1_ = a1;
  }

 private:
  FlightRecorder& rec_;
  std::uint64_t t0_ = 0;
  std::uint16_t name_;
  std::int64_t a0_, a1_;
};

}  // namespace hbct
