#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "util/assert.h"

namespace hbct {

namespace {

/// Length of the well-formed UTF-8 sequence starting at s[at], or 0 when
/// the bytes there are ill-formed (bad lead byte, truncated or non-
/// continuation tail, overlong encoding, surrogate, or > U+10FFFF).
std::size_t utf8_seq_len(std::string_view s, std::size_t at) {
  const unsigned char b0 = static_cast<unsigned char>(s[at]);
  std::size_t len;
  std::uint32_t cp, min;
  if (b0 < 0x80) return 1;
  if ((b0 & 0xe0) == 0xc0) {
    len = 2; cp = b0 & 0x1f; min = 0x80;
  } else if ((b0 & 0xf0) == 0xe0) {
    len = 3; cp = b0 & 0x0f; min = 0x800;
  } else if ((b0 & 0xf8) == 0xf0) {
    len = 4; cp = b0 & 0x07; min = 0x10000;
  } else {
    return 0;  // continuation or invalid lead byte
  }
  if (at + len > s.size()) return 0;
  for (std::size_t i = 1; i < len; ++i) {
    const unsigned char b = static_cast<unsigned char>(s[at + i]);
    if ((b & 0xc0) != 0x80) return 0;
    cp = (cp << 6) | (b & 0x3f);
  }
  if (cp < min) return 0;                      // overlong
  if (cp >= 0xd800 && cp <= 0xdfff) return 0;  // surrogate
  if (cp > 0x10ffff) return 0;
  return len;
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    const unsigned char ch = static_cast<unsigned char>(s[i]);
    switch (ch) {
      case '"': out += "\\\""; continue;
      case '\\': out += "\\\\"; continue;
      case '\b': out += "\\b"; continue;
      case '\f': out += "\\f"; continue;
      case '\n': out += "\\n"; continue;
      case '\r': out += "\\r"; continue;
      case '\t': out += "\\t"; continue;
      default: break;
    }
    if (ch < 0x20 || ch == 0x7f) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
      out += buf;
    } else if (ch < 0x80) {
      out += static_cast<char>(ch);
    } else if (const std::size_t len = utf8_seq_len(s, i); len != 0) {
      out += s.substr(i, len);
      i += len - 1;
    } else {
      // One replacement char per ill-formed byte keeps the output valid
      // UTF-8 (and thus the whole document loadable) no matter what a
      // hostile session id or span name smuggled in.
      out += "\\ufffd";
    }
  }
  return out;
}

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows its key, no comma
  }
  if (!has_elem_.empty()) {
    if (has_elem_.back()) out_ += ',';
    has_elem_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  has_elem_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  HBCT_ASSERT(!has_elem_.empty());
  has_elem_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  has_elem_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  HBCT_ASSERT(!has_elem_.empty());
  has_elem_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  comma();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  if (!std::isfinite(v)) {  // JSON has no Inf/NaN
    out_ += "null";
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  comma();
  out_ += json;
  return *this;
}

// ---- Validator ---------------------------------------------------------------

namespace {

struct JsonParser {
  std::string_view s;
  std::size_t at = 0;
  std::string err;
  int depth = 0;
  static constexpr int kMaxDepth = 256;

  bool fail(const std::string& what) {
    if (err.empty()) err = what + " at byte " + std::to_string(at);
    return false;
  }
  void ws() {
    while (at < s.size() && (s[at] == ' ' || s[at] == '\t' || s[at] == '\n' ||
                             s[at] == '\r'))
      ++at;
  }
  bool eat(char c) {
    if (at < s.size() && s[at] == c) {
      ++at;
      return true;
    }
    return false;
  }
  bool lit(std::string_view word) {
    if (s.substr(at, word.size()) != word) return fail("bad literal");
    at += word.size();
    return true;
  }

  bool string() {
    if (!eat('"')) return fail("expected string");
    while (at < s.size()) {
      const unsigned char c = static_cast<unsigned char>(s[at]);
      if (c == '"') {
        ++at;
        return true;
      }
      if (c < 0x20) return fail("raw control char in string");
      if (c == '\\') {
        ++at;
        if (at >= s.size()) return fail("dangling escape");
        const char e = s[at];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (at + static_cast<std::size_t>(i) >= s.size() ||
                !std::isxdigit(static_cast<unsigned char>(s[at + static_cast<std::size_t>(i)])))
              return fail("bad \\u escape");
          }
          at += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return fail("bad escape");
        }
      }
      ++at;
    }
    return fail("unterminated string");
  }

  bool digits() {
    if (at >= s.size() || !std::isdigit(static_cast<unsigned char>(s[at])))
      return fail("expected digit");
    while (at < s.size() && std::isdigit(static_cast<unsigned char>(s[at])))
      ++at;
    return true;
  }

  bool number() {
    eat('-');
    if (eat('0')) {
      // no leading zeros
    } else if (!digits()) {
      return false;
    }
    if (eat('.') && !digits()) return false;
    if (at < s.size() && (s[at] == 'e' || s[at] == 'E')) {
      ++at;
      if (at < s.size() && (s[at] == '+' || s[at] == '-')) ++at;
      if (!digits()) return false;
    }
    return true;
  }

  bool value() {
    if (++depth > kMaxDepth) return fail("nesting too deep");
    ws();
    bool ok;
    if (at >= s.size()) {
      ok = fail("unexpected end");
    } else if (s[at] == '{') {
      ++at;
      ws();
      if (eat('}')) {
        ok = true;
      } else {
        ok = true;
        for (;;) {
          ws();
          if (!string()) { ok = false; break; }
          ws();
          if (!eat(':')) { ok = fail("expected ':'"); break; }
          if (!value()) { ok = false; break; }
          ws();
          if (eat(',')) continue;
          if (eat('}')) break;
          ok = fail("expected ',' or '}'");
          break;
        }
      }
    } else if (s[at] == '[') {
      ++at;
      ws();
      if (eat(']')) {
        ok = true;
      } else {
        ok = true;
        for (;;) {
          if (!value()) { ok = false; break; }
          ws();
          if (eat(',')) continue;
          if (eat(']')) break;
          ok = fail("expected ',' or ']'");
          break;
        }
      }
    } else if (s[at] == '"') {
      ok = string();
    } else if (s[at] == 't') {
      ok = lit("true");
    } else if (s[at] == 'f') {
      ok = lit("false");
    } else if (s[at] == 'n') {
      ok = lit("null");
    } else {
      ok = number();
    }
    --depth;
    return ok;
  }
};

}  // namespace

bool json_validate(std::string_view text, std::string* err) {
  JsonParser p{text};
  if (!p.value()) {
    if (err != nullptr) *err = p.err;
    return false;
  }
  p.ws();
  if (p.at != text.size()) {
    if (err != nullptr)
      *err = "trailing garbage at byte " + std::to_string(p.at);
    return false;
  }
  return true;
}

}  // namespace hbct
