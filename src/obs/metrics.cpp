#include "obs/metrics.h"

#include <bit>
#include <cmath>

namespace hbct {

namespace obs_detail {

namespace {
std::atomic<std::size_t> next_thread_slot{0};
}  // namespace

std::size_t shard_index() noexcept {
  // A small dense per-thread id beats std::this_thread::get_id hashing:
  // consecutive pool workers land on distinct slots by construction.
  thread_local const std::size_t slot =
      next_thread_slot.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace obs_detail

// ---- Histogram ---------------------------------------------------------------

Histogram::Histogram() = default;

std::size_t Histogram::bucket_of(std::uint64_t v) noexcept {
  // 0 for v == 0; the top bucket absorbs v >= 2^62 (bit_width can reach 64,
  // one past the last index).
  const std::size_t b = static_cast<std::size_t>(std::bit_width(v));
  return b < kBuckets ? b : kBuckets - 1;
}

std::uint64_t Histogram::bucket_lo(std::size_t b) noexcept {
  if (b == 0) return 0;
  return std::uint64_t{1} << (b - 1);
}

std::uint64_t Histogram::bucket_hi(std::size_t b) noexcept {
  if (b == 0) return 1;
  if (b >= kBuckets - 1) return ~std::uint64_t{0};  // top bucket saturates
  return std::uint64_t{1} << b;
}

void Histogram::record(std::uint64_t v) noexcept {
  Shard& sh = shards_[obs_detail::shard_index() % kShards];
  sh.counts[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  sh.count.fetch_add(1, std::memory_order_relaxed);
  sh.sum.fetch_add(v, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  for (const Shard& sh : shards_) {
    for (std::size_t b = 0; b < kBuckets; ++b)
      s.counts[b] += sh.counts[b].load(std::memory_order_relaxed);
    s.count += sh.count.load(std::memory_order_relaxed);
    s.sum += sh.sum.load(std::memory_order_relaxed);
  }
  return s;
}

std::uint64_t Histogram::Snapshot::percentile(double q) const {
  if (count == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Nearest rank: the first bucket whose cumulative count reaches
  // ceil(q * count) (at least 1).
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    cum += counts[b];
    if (cum >= rank) return bucket_hi(b);
  }
  return bucket_hi(kBuckets - 1);
}

// ---- MetricsRegistry ---------------------------------------------------------

MetricsRegistry::MetricsRegistry() {
  // Resolve the detect.* cells once so absorb() never touches the map.
#define HBCT_STATS_CELL(field, label, skip) \
  stats_cells_.push_back(&counter("detect." #field));
  HBCT_DETECT_STATS_FIELDS(HBCT_STATS_CELL)
#undef HBCT_STATS_CELL
}

MetricsRegistry::~MetricsRegistry() = default;

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  return *it->second;
}

void MetricsRegistry::absorb(const DetectStats& st) {
  std::size_t cell = 0;
#define HBCT_STATS_ABSORB(field, label, skip) \
  if (st.field != 0) stats_cells_[cell]->add(st.field); \
  ++cell;
  HBCT_DETECT_STATS_FIELDS(HBCT_STATS_ABSORB)
#undef HBCT_STATS_ABSORB
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  // Two phases so the periodic exporter never holds the map mutex while
  // summing shards: collect stable metric pointers under the lock (the
  // mutex only guards map mutation — registration racing with a snapshot),
  // then read the slot values lock-free. A histogram with many shards takes
  // long enough to sum that doing it under mu_ would stall every
  // registration on the hot path.
  std::vector<std::pair<std::string, const Counter*>> cs;
  std::vector<std::pair<std::string, const Gauge*>> gs;
  std::vector<std::pair<std::string, const Histogram*>> hs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cs.reserve(counters_.size());
    gs.reserve(gauges_.size());
    hs.reserve(histograms_.size());
    for (const auto& [name, c] : counters_) cs.emplace_back(name, c.get());
    for (const auto& [name, g] : gauges_) gs.emplace_back(name, g.get());
    for (const auto& [name, h] : histograms_) hs.emplace_back(name, h.get());
  }
  MetricsSnapshot out;
  for (auto& [name, c] : cs) out.counters[std::move(name)] = c->value();
  for (auto& [name, g] : gs) out.gauges[std::move(name)] = g->value();
  for (auto& [name, h] : hs) out.histograms[std::move(name)] = h->snapshot();
  return out;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* reg = new MetricsRegistry();  // never destroyed
  return *reg;
}

}  // namespace hbct
