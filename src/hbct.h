// Umbrella header for the hbct library.
//
// hbct reproduces Sen & Garg, "Detecting Temporal Logic Predicates on the
// Happened-Before Model" (IPPS 2002): CTL predicate detection on the finite
// distributive lattice of consistent cuts of one distributed execution.
//
// Typical usage:
//
//   #include "hbct.h"
//   using namespace hbct;
//
//   sim::Simulator s = sim::make_token_mutex(4, 3, /*inject_violation=*/true);
//   Computation c = std::move(s).run({});
//   auto verdict = ctl::evaluate_query(c, "EF(cs@P0 == 1 && cs@P3 == 1)");
//   if (verdict.result.holds()) { /* mutual exclusion violated */ }
//
// Detections are three-valued (detect/budget.h): pass a Budget via
// DispatchOptions to cap states, work, wall-clock time, or to cancel from
// another thread; a detection that runs out returns Verdict::kUnknown.
#pragma once

#include "analysis/audit.h"
#include "analysis/diagnostics.h"
#include "analysis/infer.h"
#include "analysis/lint.h"
#include "analysis/optimize.h"
#include "analysis/plan.h"
#include "analysis/rewrite.h"
#include "analysis/rules.h"
#include "ctl/compile.h"
#include "ctl/formula.h"
#include "ctl/parser.h"
#include "ctl/program_check.h"
#include "detect/ag_linear.h"
#include "detect/brute_force.h"
#include "detect/conjunctive_gw.h"
#include "detect/control.h"
#include "detect/detector.h"
#include "detect/disjunctive.h"
#include "detect/dispatch.h"
#include "detect/ef_linear.h"
#include "detect/eg_linear.h"
#include "detect/stable_oi.h"
#include "detect/until.h"
#include "lattice/irreducible.h"
#include "lattice/lattice.h"
#include "lattice/path_count.h"
#include "obs/expose.h"
#include "obs/flight.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "online/appender.h"
#include "online/monitor.h"
#include "poset/analysis.h"
#include "poset/builder.h"
#include "poset/diagram.h"
#include "poset/computation.h"
#include "poset/generate.h"
#include "poset/trace_io.h"
#include "predicate/channel.h"
#include "predicate/classify.h"
#include "predicate/conjunctive.h"
#include "predicate/disjunctive.h"
#include "predicate/local.h"
#include "predicate/predicate.h"
#include "predicate/relational.h"
#include "reduction/cnf.h"
#include "reduction/dpll.h"
#include "reduction/npc_reduction.h"
#include "sim/simulator.h"
#include "sim/workloads.h"
#include "slice/slicer.h"
#include "util/biguint.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
