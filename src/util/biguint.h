// Arbitrary-precision unsigned integers, just large enough for lattice
// path-counting: the number of maximal chains of a cut lattice grows
// factorially in |E|, overflowing 64 bits already for ~20 concurrent events.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hbct {

class BigUint {
 public:
  BigUint() = default;
  BigUint(std::uint64_t v);  // NOLINT(google-explicit-constructor): numeric literal convenience

  BigUint& operator+=(const BigUint& o);
  friend BigUint operator+(BigUint a, const BigUint& b) { return a += b; }

  BigUint& mul_small(std::uint64_t m);

  bool is_zero() const { return limbs_.empty(); }

  /// Value as uint64 if it fits, otherwise nullopt-like flag via `fits`.
  std::uint64_t to_u64(bool* fits = nullptr) const;

  std::string to_string() const;  // decimal

  friend bool operator==(const BigUint&, const BigUint&) = default;
  friend bool operator<(const BigUint& a, const BigUint& b);

 private:
  void trim();
  // Base 2^32 little-endian limbs; empty = 0.
  std::vector<std::uint32_t> limbs_;
};

}  // namespace hbct
