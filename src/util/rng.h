// Deterministic pseudo-random number generation for workload generators,
// schedulers and property tests.
//
// We carry our own xoshiro256** implementation instead of <random> engines so
// that (a) streams are reproducible across standard libraries and platforms,
// and (b) the state is tiny and cheap to fork per process / per test case.
#pragma once

#include <cstdint>
#include <vector>

namespace hbct {

/// xoshiro256** by Blackman & Vigna (public domain algorithm), seeded via
/// splitmix64. Deterministic for a given seed on every platform.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool next_bool(double p = 0.5);

  /// Fork an independent generator (jump via reseeding with a drawn value).
  Rng fork();

  /// Fisher-Yates shuffle of an index vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace hbct
