// Lightweight always-on assertion machinery for hbct.
//
// HBCT_ASSERT checks an invariant in every build type (detection algorithms
// are cheap relative to the cost of silently returning a wrong verdict in a
// debugging tool). HBCT_DASSERT compiles away in NDEBUG builds and is meant
// for hot inner loops.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace hbct {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "hbct assertion failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg ? msg : "");
  std::abort();
}

}  // namespace hbct

#define HBCT_ASSERT(expr)                                          \
  do {                                                             \
    if (!(expr)) ::hbct::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define HBCT_ASSERT_MSG(expr, msg)                                 \
  do {                                                             \
    if (!(expr)) ::hbct::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef NDEBUG
#define HBCT_DASSERT(expr) ((void)0)
#else
#define HBCT_DASSERT(expr) HBCT_ASSERT(expr)
#endif
