#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "util/assert.h"

namespace hbct {

DetectStats& DetectStats::operator+=(const DetectStats& o) {
  predicate_evals += o.predicate_evals;
  cut_steps += o.cut_steps;
  lattice_nodes += o.lattice_nodes;
  lattice_edges += o.lattice_edges;
  return *this;
}

std::string DetectStats::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const DetectStats& s) {
  os << "{evals=" << s.predicate_evals << " steps=" << s.cut_steps;
  if (s.lattice_nodes) os << " nodes=" << s.lattice_nodes;
  if (s.lattice_edges) os << " edges=" << s.lattice_edges;
  return os << "}";
}

Summary Summary::of(std::vector<double> samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  s.median = samples[samples.size() / 2];
  double sum = 0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  double var = 0;
  for (double v : samples) var += (v - s.mean) * (v - s.mean);
  s.stddev = samples.size() > 1
                 ? std::sqrt(var / static_cast<double>(samples.size() - 1))
                 : 0.0;
  return s;
}

std::string Summary::to_string() const {
  std::ostringstream os;
  os << "n=" << count << " min=" << min << " med=" << median
     << " mean=" << mean << " max=" << max << " sd=" << stddev;
  return os.str();
}

double loglog_slope(const std::vector<double>& x,
                    const std::vector<double>& y) {
  HBCT_ASSERT(x.size() == y.size());
  HBCT_ASSERT(x.size() >= 2);
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t m = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] <= 0 || y[i] <= 0) continue;  // skip degenerate points
    double lx = std::log(x[i]), ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++m;
  }
  HBCT_ASSERT(m >= 2);
  const double dm = static_cast<double>(m);
  const double denom = dm * sxx - sx * sx;
  HBCT_ASSERT(denom != 0);
  return (dm * sxy - sx * sy) / denom;
}

}  // namespace hbct
