#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "util/assert.h"

namespace hbct {

DetectStats& DetectStats::operator+=(const DetectStats& o) {
#define HBCT_STATS_ADD(field, label, skip) field += o.field;
  HBCT_DETECT_STATS_FIELDS(HBCT_STATS_ADD)
#undef HBCT_STATS_ADD
  return *this;
}

std::string DetectStats::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const DetectStats& s) {
  os << "{";
  bool first = true;
#define HBCT_STATS_PRINT(field, label, skip)            \
  if (!(skip) || s.field != 0) {                        \
    os << (first ? "" : " ") << label "=" << s.field;   \
    first = false;                                      \
  }
  HBCT_DETECT_STATS_FIELDS(HBCT_STATS_PRINT)
#undef HBCT_STATS_PRINT
  (void)first;
  return os << "}";
}

Summary Summary::of(std::vector<double> samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  s.median = samples[samples.size() / 2];
  // Nearest-rank percentile: smallest sample whose rank covers q*count.
  const auto pct = [&](double q) {
    const double rank = std::ceil(q * static_cast<double>(samples.size()));
    const std::size_t idx = rank < 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
    return samples[std::min(idx, samples.size() - 1)];
  };
  s.p50 = pct(0.50);
  s.p90 = pct(0.90);
  s.p99 = pct(0.99);
  double sum = 0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  double var = 0;
  for (double v : samples) var += (v - s.mean) * (v - s.mean);
  s.stddev = samples.size() > 1
                 ? std::sqrt(var / static_cast<double>(samples.size() - 1))
                 : 0.0;
  return s;
}

std::string Summary::to_string() const {
  std::ostringstream os;
  os << "n=" << count << " min=" << min << " med=" << median
     << " mean=" << mean << " max=" << max << " sd=" << stddev
     << " p90=" << p90 << " p99=" << p99;
  return os.str();
}

double loglog_slope(const std::vector<double>& x,
                    const std::vector<double>& y) {
  HBCT_ASSERT(x.size() == y.size());
  HBCT_ASSERT(x.size() >= 2);
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t m = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] <= 0 || y[i] <= 0) continue;  // skip degenerate points
    double lx = std::log(x[i]), ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++m;
  }
  HBCT_ASSERT(m >= 2);
  const double dm = static_cast<double>(m);
  const double denom = dm * sxx - sx * sx;
  HBCT_ASSERT(denom != 0);
  return (dm * sxy - sx * sy) / denom;
}

}  // namespace hbct
