#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace hbct {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' || s[b] == '\n'))
    ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
                   s[e - 1] == '\n'))
    --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool parse_int(std::string_view s, long long& out) {
  s = trim(s);
  if (s.empty()) return false;
  std::string tmp(s);
  char* end = nullptr;
  long long v = std::strtoll(tmp.c_str(), &end, 10);
  if (end != tmp.c_str() + tmp.size()) return false;
  out = v;
  return true;
}

std::string strfmt(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  if (n < 0) {
    va_end(ap2);
    return {};
  }
  std::string out(static_cast<std::size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  va_end(ap2);
  return out;
}

}  // namespace hbct
