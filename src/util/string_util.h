// Small string helpers shared by the trace reader and the CTL parser.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hbct {

/// Split on a single-character delimiter; empty fields are kept.
std::vector<std::string> split(std::string_view s, char delim);

/// Strip leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// True if `s` begins with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Parse a decimal integer; returns false on any trailing garbage.
bool parse_int(std::string_view s, long long& out);

/// printf-style formatting into a std::string.
std::string strfmt(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace hbct
