#include "util/thread_pool.h"

#include "util/assert.h"

namespace hbct {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  HBCT_ASSERT(task);
  {
    std::lock_guard<std::mutex> lk(mu_);
    HBCT_ASSERT_MSG(!stop_, "submit after shutdown");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_idle_.wait(lk, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (workers_.size() <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  for (std::size_t i = 0; i < count; ++i) {
    submit([&fn, i] { fn(i); });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_task_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lk(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace hbct
