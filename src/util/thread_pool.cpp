#include "util/thread_pool.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "util/assert.h"

namespace hbct {

// One parallel_for call's state. Participants (the caller plus up to
// max_parallelism - 1 workers) claim contiguous chunks off `next`; the
// caller waits until no participant is still executing a claimed chunk.
// Helper tasks hold the Batch via shared_ptr, so one that is dequeued only
// after the caller returned finds the cursor exhausted and exits without
// ever touching `fn` (whose referent dies with the caller).
struct ThreadPool::Batch {
  const std::function<void(std::size_t)>* fn = nullptr;
  CancelToken* cancel = nullptr;  // caller-supplied; may be null
  std::size_t count = 0;
  std::size_t chunk = 1;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> stop{false};  // set on exception or cancellation
  std::mutex mu;
  std::condition_variable cv;
  std::size_t active = 0;  // participants currently inside run()
  std::exception_ptr error;

  void run() {
    for (;;) {
      if (stop.load(std::memory_order_acquire)) return;
      const std::size_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= count) return;
      const std::size_t end = std::min(begin + chunk, count);
      for (std::size_t i = begin; i < end; ++i) {
        if (stop.load(std::memory_order_acquire) ||
            (cancel && cancel->cancelled())) {
          stop.store(true, std::memory_order_release);
          return;
        }
        try {
          (*fn)(i);
        } catch (...) {
          {
            std::lock_guard<std::mutex> lk(mu);
            if (!error) error = std::current_exception();
          }
          stop.store(true, std::memory_order_release);
          return;
        }
      }
    }
  }
};

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(
      std::max<std::size_t>(4, std::thread::hardware_concurrency()));
  return pool;
}

std::size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.size();
}

void ThreadPool::submit(std::function<void()> task) {
  HBCT_ASSERT(task);
  {
    std::lock_guard<std::mutex> lk(mu_);
    HBCT_ASSERT_MSG(!stop_, "submit after shutdown");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_idle_.wait(lk, [this] { return in_flight_ == 0; });
  if (submit_error_) {
    std::exception_ptr err = std::exchange(submit_error_, nullptr);
    lk.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t max_parallelism, std::size_t chunk,
                              CancelToken* cancel) {
  if (count == 0) return;
  std::size_t participants = workers_.size() + 1;
  if (max_parallelism != 0)
    participants = std::min(participants, max_parallelism);
  participants = std::min(participants, count);
  if (workers_.size() <= 1 || participants <= 1) {
    for (std::size_t i = 0; i < count; ++i) {
      if (cancel && cancel->cancelled()) return;
      fn(i);
    }
    return;
  }

  auto batch = std::make_shared<Batch>();
  batch->fn = &fn;
  batch->cancel = cancel;
  batch->count = count;
  batch->chunk =
      chunk ? chunk : std::max<std::size_t>(1, count / (participants * 4));
  for (std::size_t h = 0; h + 1 < participants; ++h) {
    submit([batch] {
      {
        std::lock_guard<std::mutex> lk(batch->mu);
        ++batch->active;
      }
      batch->run();
      std::lock_guard<std::mutex> lk(batch->mu);
      if (--batch->active == 0) batch->cv.notify_all();
    });
  }
  batch->run();  // the caller claims chunks too; it never idles while
                 // unclaimed work remains, so nesting cannot deadlock
  // No chunk may start after this point: exhaust the cursor so a helper
  // dequeued late exits immediately instead of touching fn.
  batch->next.fetch_add(count, std::memory_order_relaxed);
  std::unique_lock<std::mutex> lk(batch->mu);
  batch->cv.wait(lk, [&] { return batch->active == 0; });
  if (batch->error) std::rethrow_exception(batch->error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_task_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // A task that throws must still decrement in_flight_, or wait_idle()
    // deadlocks; the first exception is surfaced there.
    std::exception_ptr err;
    try {
      task();
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (err && !submit_error_) submit_error_ = std::move(err);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace hbct
