// Operation-counting statistics for detection algorithms.
//
// Wall-clock timing on a shared single-core box is noisy; the complexity
// claims in the paper (O(n|E|) etc.) are therefore additionally validated by
// counting the algorithms' basic operations: cut advancements, predicate
// evaluations, and lattice nodes touched. Every detector fills a DetectStats.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace hbct {

/// Counters describing the work one detection run performed.
struct DetectStats {
  /// Number of predicate (or local-predicate) evaluations performed.
  std::uint64_t predicate_evals = 0;
  /// Number of cut advancements / retreats (events added or removed).
  std::uint64_t cut_steps = 0;
  /// Number of explicit lattice nodes materialized (brute force only).
  std::uint64_t lattice_nodes = 0;
  /// Number of lattice edges traversed (brute force only).
  std::uint64_t lattice_edges = 0;

  DetectStats& operator+=(const DetectStats& o);
  std::string to_string() const;
};

std::ostream& operator<<(std::ostream& os, const DetectStats& s);

/// Simple descriptive statistics over a sample of doubles (bench reporting).
struct Summary {
  double min = 0, max = 0, mean = 0, median = 0, stddev = 0;
  std::size_t count = 0;

  static Summary of(std::vector<double> samples);
  std::string to_string() const;
};

/// Least-squares slope of log(y) vs log(x): the empirical complexity
/// exponent. Used by benches to check e.g. that A1's work grows linearly in
/// |E| (slope ~= 1) while the lattice baseline grows polynomially or worse.
double loglog_slope(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace hbct
