// Operation-counting statistics for detection algorithms.
//
// Wall-clock timing on a shared single-core box is noisy; the complexity
// claims in the paper (O(n|E|) etc.) are therefore additionally validated by
// counting the algorithms' basic operations: cut advancements, predicate
// evaluations, and lattice nodes touched. Every detector fills a DetectStats.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace hbct {

/// The single source of truth for DetectStats' counters. Everything derived
/// from the field list — the struct layout, operator+=, to_string, the
/// metrics-registry absorption (obs/metrics.h), and the run-report stats
/// block (obs/report.h) — is generated from this X-macro, so adding a
/// counter here updates every aggregation path at once and can't be
/// silently dropped from any of them.
///
///   X(field, label, skip_if_zero)
///     field        — the member name (std::uint64_t)
///     label        — short name used by to_string and JSON keys' "short"
///                    rendering
///     skip_if_zero — to_string omits the field when zero (the lattice
///                    counters only apply to the brute-force paths)
///
/// Field meanings:
///   predicate_evals — predicate (or local-predicate) evaluations performed
///   cut_steps       — cut advancements / retreats (events added or removed)
///   lattice_nodes   — explicit lattice nodes materialized (brute force only)
///   lattice_edges   — lattice edges traversed (brute force only)
///   eval_incremental— evaluations served by an incremental EvalCursor
///   eval_fallback   — evaluations that fell back to a full scratch eval
///                     (together they partition the cursor-mode subset of
///                     predicate_evals; both zero on pure scratch paths)
///   until_inc_evals — physical local evaluations the incremental until
///                     state performed at feed time (amortized EG(p) scan
///                     of newly frozen positions; online monitors only)
///   until_dec_evals — physical local evaluations the incremental until
///                     state performed at decision time (lazy extension
///                     past the fed prefix; online monitors only — the
///                     offline shared-state mode reports batch-identical
///                     logical work and leaves both counters zero)
#define HBCT_DETECT_STATS_FIELDS(X)          \
  X(predicate_evals, "evals", false)         \
  X(cut_steps, "steps", false)               \
  X(lattice_nodes, "nodes", true)            \
  X(lattice_edges, "edges", true)            \
  X(eval_incremental, "evals.inc", true)     \
  X(eval_fallback, "evals.fb", true)         \
  X(until_inc_evals, "until.inc", true)      \
  X(until_dec_evals, "until.dec", true)

/// Counters describing the work one detection run performed.
struct DetectStats {
#define HBCT_STATS_DECL(field, label, skip) std::uint64_t field = 0;
  HBCT_DETECT_STATS_FIELDS(HBCT_STATS_DECL)
#undef HBCT_STATS_DECL

  DetectStats& operator+=(const DetectStats& o);
  std::string to_string() const;
};

namespace detail {
constexpr std::size_t kDetectStatsFieldCount = 0
#define HBCT_STATS_COUNT(field, label, skip) +1
    HBCT_DETECT_STATS_FIELDS(HBCT_STATS_COUNT)
#undef HBCT_STATS_COUNT
    ;
}  // namespace detail

// A field added to the struct but not to HBCT_DETECT_STATS_FIELDS would be
// invisible to every generated aggregation path; the layout check makes
// that a compile error instead of a silently-dropped counter.
static_assert(sizeof(DetectStats) ==
                  detail::kDetectStatsFieldCount * sizeof(std::uint64_t),
              "every DetectStats field must be listed in "
              "HBCT_DETECT_STATS_FIELDS");

std::ostream& operator<<(std::ostream& os, const DetectStats& s);

/// Simple descriptive statistics over a sample of doubles (bench reporting).
/// p50/p90/p99 are nearest-rank percentiles (p50 can differ from `median`,
/// which keeps its historical upper-median definition).
struct Summary {
  double min = 0, max = 0, mean = 0, median = 0, stddev = 0;
  double p50 = 0, p90 = 0, p99 = 0;
  std::size_t count = 0;

  static Summary of(std::vector<double> samples);
  std::string to_string() const;
};

/// Least-squares slope of log(y) vs log(x): the empirical complexity
/// exponent. Used by benches to check e.g. that A1's work grows linearly in
/// |E| (slope ~= 1) while the lattice baseline grows polynomially or worse.
double loglog_slope(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace hbct
