#include "util/biguint.h"

#include <algorithm>

namespace hbct {

BigUint::BigUint(std::uint64_t v) {
  if (v) {
    limbs_.push_back(static_cast<std::uint32_t>(v));
    if (v >> 32) limbs_.push_back(static_cast<std::uint32_t>(v >> 32));
  }
}

void BigUint::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUint& BigUint::operator+=(const BigUint& o) {
  const std::size_t n = std::max(limbs_.size(), o.limbs_.size());
  limbs_.resize(n, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t s = carry + limbs_[i] +
                      (i < o.limbs_.size() ? o.limbs_[i] : 0u);
    limbs_[i] = static_cast<std::uint32_t>(s);
    carry = s >> 32;
  }
  if (carry) limbs_.push_back(static_cast<std::uint32_t>(carry));
  return *this;
}

BigUint& BigUint::mul_small(std::uint64_t m) {
  if (m == 0 || limbs_.empty()) {
    limbs_.clear();
    return *this;
  }
  // Multiply by a 64-bit scalar as two 32-bit halves to keep carries simple.
  const std::uint32_t lo = static_cast<std::uint32_t>(m);
  const std::uint32_t hi = static_cast<std::uint32_t>(m >> 32);
  BigUint result;
  result.limbs_.assign(limbs_.size() + 2, 0);
  auto addat = [&](std::size_t pos, std::uint64_t v) {
    while (v) {
      if (pos >= result.limbs_.size()) result.limbs_.push_back(0);
      std::uint64_t s = result.limbs_[pos] + (v & 0xffffffffull);
      result.limbs_[pos] = static_cast<std::uint32_t>(s);
      v = (v >> 32) + (s >> 32);
      ++pos;
    }
  };
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    addat(i, static_cast<std::uint64_t>(limbs_[i]) * lo);
    if (hi) addat(i + 1, static_cast<std::uint64_t>(limbs_[i]) * hi);
  }
  result.trim();
  *this = std::move(result);
  return *this;
}

std::uint64_t BigUint::to_u64(bool* fits) const {
  if (fits) *fits = limbs_.size() <= 2;
  std::uint64_t v = 0;
  if (!limbs_.empty()) v = limbs_[0];
  if (limbs_.size() >= 2) v |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  return v;
}

std::string BigUint::to_string() const {
  if (limbs_.empty()) return "0";
  // Repeated division by 1e9.
  std::vector<std::uint32_t> work(limbs_.rbegin(), limbs_.rend());  // big-endian
  std::string out;
  while (!work.empty()) {
    std::uint64_t rem = 0;
    std::vector<std::uint32_t> q;
    q.reserve(work.size());
    for (std::uint32_t limb : work) {
      std::uint64_t cur = (rem << 32) | limb;
      q.push_back(static_cast<std::uint32_t>(cur / 1000000000ull));
      rem = cur % 1000000000ull;
    }
    while (!q.empty() && q.front() == 0) q.erase(q.begin());
    std::string chunk = std::to_string(rem);
    if (!q.empty()) chunk = std::string(9 - chunk.size(), '0') + chunk;
    out = chunk + out;
    work = std::move(q);
  }
  return out;
}

bool operator<(const BigUint& a, const BigUint& b) {
  if (a.limbs_.size() != b.limbs_.size())
    return a.limbs_.size() < b.limbs_.size();
  for (std::size_t i = a.limbs_.size(); i-- > 0;)
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i];
  return false;
}

}  // namespace hbct
