// Minimal work-stealing-free thread pool used to parallelize embarrassingly
// parallel sweeps: the brute-force lattice checker over seeds in property
// tests, and per-instance fan-out in benches. The pool follows the usual
// HPC idiom of explicit parallelism (cf. MPI/OpenMP programming model): the
// caller decides the decomposition; the pool only runs closures.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hbct {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  std::size_t size() const { return workers_.size(); }

  /// Run fn(i) for i in [0, count) across the pool and wait. If the pool has
  /// a single worker the calls are executed inline (deterministic order).
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace hbct
