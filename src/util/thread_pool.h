// Minimal work-stealing-free thread pool used to parallelize embarrassingly
// parallel sweeps: the brute-force lattice checker over seeds in property
// tests, per-instance fan-out in benches, and the detection stack's branch
// fan-outs (detect/parallel.h). The pool follows the usual HPC idiom of
// explicit parallelism (cf. MPI/OpenMP programming model): the caller decides
// the decomposition; the pool only runs closures.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hbct {

/// Cooperative cancellation for parallel_for: iterations poll the token and
/// stop being claimed once it is cancelled. Cancellation is advisory — an
/// iteration already running completes normally.
class CancelToken {
 public:
  void cancel() noexcept { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task for asynchronous execution. A throwing task does not
  /// kill its worker: the first exception is captured and rethrown by the
  /// next wait_idle().
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished. This is a *global* wait
  /// over all submit() callers — two threads waiting concurrently block on
  /// each other's tasks. parallel_for does not have this restriction: it
  /// waits only on its own batch. Rethrows the first exception thrown by a
  /// submitted task since the previous wait_idle().
  void wait_idle();

  std::size_t size() const { return workers_.size(); }

  /// Instantaneous number of queued-but-unstarted tasks. Advisory (the
  /// value is stale the moment it returns) — used by the observability
  /// layer's queue-depth gauges, never for scheduling decisions.
  std::size_t queue_depth() const;

  /// Run fn(i) for i in [0, count) across the pool plus the calling thread,
  /// then wait for this call's own batch only (concurrent parallel_for
  /// callers do not block on each other's work). Iterations are claimed in
  /// contiguous chunks off a shared atomic cursor, so per-iteration cost far
  /// below the cost of a queue operation does not thrash the queue mutex.
  /// The first exception thrown by fn cancels the remaining chunks and is
  /// rethrown here once the batch drains.
  ///
  /// `max_parallelism` caps the number of participating threads (0 = all
  /// workers + caller). `chunk` fixes the claim granularity (0 = automatic).
  /// `cancel`, when given, is polled before every iteration; once cancelled
  /// no further iteration starts. If the pool has a single worker, or
  /// max_parallelism <= 1, the calls execute inline in index order.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn,
                    std::size_t max_parallelism = 0, std::size_t chunk = 0,
                    CancelToken* cancel = nullptr);

  /// Process-wide pool shared by the parallel detection paths. Sized
  /// max(4, hardware_concurrency) so those paths exercise real concurrency
  /// even on single-core CI boxes (the branches are compute-short and the
  /// oversubscription is harmless).
  static ThreadPool& shared();

 private:
  struct Batch;

  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::exception_ptr submit_error_;
};

}  // namespace hbct
