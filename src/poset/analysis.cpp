#include "poset/analysis.h"

#include <algorithm>
#include <functional>
#include <sstream>
#include <vector>

#include "util/assert.h"

namespace hbct {

namespace {

/// Dense event index: events laid out process-major.
struct Indexer {
  explicit Indexer(const Computation& c) : offsets(static_cast<std::size_t>(c.num_procs()) + 1, 0) {
    for (ProcId i = 0; i < c.num_procs(); ++i)
      offsets[static_cast<std::size_t>(i) + 1] =
          offsets[static_cast<std::size_t>(i)] + c.num_events(i);
  }
  std::size_t of(const EventId& e) const {
    return offsets[static_cast<std::size_t>(e.proc)] +
           static_cast<std::size_t>(e.index - 1);
  }
  std::vector<std::size_t> offsets;
};

}  // namespace

std::int32_t computation_height(const Computation& c) {
  Indexer ix(c);
  const std::size_t m = static_cast<std::size_t>(c.total_events());
  std::vector<std::int32_t> h(m, 0);
  std::int32_t best = 0;
  // The linearization is a topological order; the direct predecessors of an
  // event are its process predecessor and (for receives) the send.
  for (const EventId& eid : c.linearization()) {
    std::int32_t prev = 0;
    if (eid.index > 1)
      prev = h[ix.of(EventId{eid.proc, eid.index - 1})];
    const EventView ev = c.event_view(eid);
    if (ev.kind == EventKind::kReceive) {
      // Locate the send: the peer process owns it; find via the message id
      // recorded on the event by scanning that process's events once would
      // be O(|E|) per receive — instead use the vector clock: the send is
      // the peer's entry in this event's clock.
      const ProcId src = ev.peer;
      const EventIndex send_idx = c.vclock(eid)[static_cast<std::size_t>(src)];
      HBCT_DASSERT(send_idx >= 1);
      prev = std::max(prev, h[ix.of(EventId{src, send_idx})]);
    }
    h[ix.of(eid)] = prev + 1;
    best = std::max(best, prev + 1);
  }
  return best;
}

namespace {

/// Kuhn's augmenting-path matching over the transitive comparability
/// relation e -> f (happened-before), giving the minimum chain cover and,
/// by Dilworth, the maximum antichain.
std::int32_t dilworth_width(const Computation& c) {
  Indexer ix(c);
  std::vector<EventId> events;
  events.reserve(static_cast<std::size_t>(c.total_events()));
  for (ProcId i = 0; i < c.num_procs(); ++i)
    for (EventIndex k = 1; k <= c.num_events(i); ++k)
      events.push_back(EventId{i, k});
  const std::size_t m = events.size();

  std::vector<std::vector<std::uint32_t>> adj(m);
  for (std::size_t a = 0; a < m; ++a)
    for (std::size_t b = 0; b < m; ++b)
      if (a != b && c.happened_before(events[a], events[b]))
        adj[a].push_back(static_cast<std::uint32_t>(b));

  std::vector<std::int32_t> match_right(m, -1);
  std::vector<char> used(m, 0);
  std::function<bool(std::size_t)> try_kuhn = [&](std::size_t a) -> bool {
    for (std::uint32_t b : adj[a]) {
      if (used[b]) continue;
      used[b] = 1;
      if (match_right[b] < 0 ||
          try_kuhn(static_cast<std::size_t>(match_right[b]))) {
        match_right[b] = static_cast<std::int32_t>(a);
        return true;
      }
    }
    return false;
  };

  std::int32_t matching = 0;
  for (std::size_t a = 0; a < m; ++a) {
    std::fill(used.begin(), used.end(), 0);
    matching += try_kuhn(a) ? 1 : 0;
  }
  return static_cast<std::int32_t>(m) - matching;
}

}  // namespace

std::int32_t computation_width(const Computation& c) {
  if (c.total_events() == 0) return 0;
  return dilworth_width(c);
}

ConcurrencyStats analyze(const Computation& c, std::size_t width_limit) {
  ConcurrencyStats s;
  s.events = c.total_events();
  s.messages = c.num_messages();
  if (s.events == 0) return s;
  s.height = computation_height(c);
  s.parallelism = static_cast<double>(s.events) / s.height;

  // Pairwise concurrency count.
  std::vector<EventId> events;
  events.reserve(static_cast<std::size_t>(s.events));
  for (ProcId i = 0; i < c.num_procs(); ++i)
    for (EventIndex k = 1; k <= c.num_events(i); ++k)
      events.push_back(EventId{i, k});
  for (std::size_t a = 0; a < events.size(); ++a)
    for (std::size_t b = a + 1; b < events.size(); ++b)
      s.concurrent_pairs += c.concurrent(events[a], events[b]) ? 1 : 0;

  if (static_cast<std::size_t>(s.events) <= width_limit)
    s.width = dilworth_width(c);
  return s;
}

std::string ConcurrencyStats::to_string() const {
  std::ostringstream os;
  os << "events=" << events << " messages=" << messages
     << " height=" << height;
  if (width >= 0) os << " width=" << width;
  os << " concurrent_pairs=" << concurrent_pairs << " parallelism=";
  os.precision(3);
  os << parallelism;
  return os.str();
}

}  // namespace hbct
