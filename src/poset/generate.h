// Synthetic computation generators for tests and benchmarks.
//
// The property-test suite relies on generate_random() producing a broad
// distribution of shapes: mostly-sequential, mostly-concurrent, message-heavy
// and message-free computations all appear at different option settings.
#pragma once

#include <cstdint>

#include "poset/computation.h"

namespace hbct {

struct GenOptions {
  std::int32_t num_procs = 3;
  /// Exact number of events generated on each process.
  std::int32_t events_per_proc = 8;
  /// Probability that a quota-remaining step emits a send.
  double p_send = 0.25;
  /// Probability that a step consumes a deliverable pending message.
  double p_recv = 0.35;
  /// Number of distinct variables written by events (named "v0", "v1", ...).
  std::int32_t num_vars = 2;
  /// Probability that an event writes one variable.
  double p_write = 0.7;
  std::int64_t value_lo = 0;
  std::int64_t value_hi = 9;
  /// Deliver messages of one channel in FIFO order (delivery choice only;
  /// the model itself never assumes FIFO).
  bool fifo = true;
  std::uint64_t seed = 1;
};

/// Generates a random valid computation per the options. Deterministic in
/// `seed`. Unreceived messages may remain in transit at the final cut.
Computation generate_random(const GenOptions& opt);

/// Generates a computation with no messages at all: the lattice of cuts is
/// the full grid (worst-case state explosion), used by the lattice-size
/// benches and the NP-hardness reductions' building block.
Computation generate_independent(std::int32_t num_procs,
                                 std::int32_t events_per_proc);

/// Generates a fully sequential computation: each process i's first event
/// receives a message sent by process i-1's last event. The lattice is a
/// chain; the smallest-possible lattice for the event count.
Computation generate_chain(std::int32_t num_procs,
                           std::int32_t events_per_proc);

}  // namespace hbct
