// Incremental construction of Computations.
//
// The builder enforces the two structural rules of the happened-before model
// at append time: events of one process are appended in program order, and a
// receive may only be appended after its matching send. The append order is
// recorded as the computation's canonical linearization (one valid
// observation).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "poset/computation.h"

namespace hbct {

class ComputationBuilder {
 public:
  /// Creates a builder for `num_procs` processes.
  explicit ComputationBuilder(std::int32_t num_procs);

  std::int32_t num_procs() const { return c_.num_procs(); }

  /// Registers (or looks up) a variable name; variables default to 0 on
  /// every process unless set_initial is called.
  VarId var(std::string_view name);

  /// Sets the initial (pre-first-event) value of `v` on process `i`.
  void set_initial(ProcId i, VarId v, std::int64_t value);

  /// Appends an internal event on process i; returns its EventId.
  EventId internal(ProcId i);

  /// Appends a send event on process `from` to process `to`; returns the
  /// message id to pass to receive().
  MsgId send(ProcId from, ProcId to);

  /// Appends the receive of message `m` on process `to`. The send must have
  /// been appended already.
  EventId receive(ProcId to, MsgId m);

  /// Attaches `var = value` to the most recently appended event of proc i.
  ComputationBuilder& write(ProcId i, VarId v, std::int64_t value);
  ComputationBuilder& write(ProcId i, std::string_view name, std::int64_t value);

  /// Attaches a label to the most recently appended event of proc i.
  ComputationBuilder& label(ProcId i, std::string_view text);

  /// Id of the most recently appended send event's message (for chaining).
  MsgId last_msg() const { return next_msg_ - 1; }

  /// Finalizes and returns the computation. The builder is consumed.
  Computation build() &&;

 private:
  Event& last_event(ProcId i);
  EventId append(ProcId i, Event ev);

  Computation c_;
  MsgId next_msg_ = 0;
  std::vector<ProcId> msg_src_;   // indexed by MsgId
  std::vector<ProcId> msg_dst_;   // destination declared at send time
  std::vector<bool> msg_received_;
  bool built_ = false;
};

}  // namespace hbct
