// Packed 64-bit cut keys for visited-set hot paths.
//
// A cut of a fixed computation is one counter 0..N_i per process; when the
// counter bit-widths sum to at most 64 the whole cut packs into a single
// uint64, and the enumeration visited-sets (brute-force lattice, DFS
// explorers, slicer dedup) can hash 8 bytes instead of FNV-1a over the cut
// vector. CutSet / CutIndex below pick the packed representation when it
// fits and fall back to CutHash containers otherwise, so callers never
// branch on the encoding themselves.
#pragma once

#include <bit>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "poset/computation.h"
#include "poset/cut.h"

namespace hbct {

/// Bijective packing of the cuts of one computation into uint64 keys.
class CutPacker {
 public:
  /// nullopt when the per-process counter widths do not fit in 64 bits.
  static std::optional<CutPacker> make(const Computation& c) {
    CutPacker p;
    std::uint32_t shift = 0;
    p.shift_.reserve(static_cast<std::size_t>(c.num_procs()));
    for (ProcId i = 0; i < c.num_procs(); ++i) {
      p.shift_.push_back(shift);
      shift += static_cast<std::uint32_t>(
          std::bit_width(static_cast<std::uint32_t>(c.num_events(i))));
      if (shift > 64) return std::nullopt;
    }
    return p;
  }

  std::uint64_t pack(const Cut& g) const {
    std::uint64_t key = 0;
    for (std::size_t i = 0; i < shift_.size(); ++i) {
      // shift 64 can only be reached by zero-width (eventless) processes,
      // whose counter is always 0; skip them rather than shift out of range.
      if (shift_[i] < 64)
        key |= static_cast<std::uint64_t>(
                   static_cast<std::uint32_t>(g[i]))
               << shift_[i];
    }
    return key;
  }

 private:
  std::vector<std::uint32_t> shift_;
};

/// Set of cuts with the packed fast path.
class CutSet {
 public:
  explicit CutSet(const Computation& c) : packer_(CutPacker::make(c)) {}

  bool contains(const Cut& g) const {
    return packer_ ? packed_.count(packer_->pack(g)) != 0
                   : fallback_.count(g) != 0;
  }
  /// True when g was newly inserted.
  bool insert(const Cut& g) {
    return packer_ ? packed_.insert(packer_->pack(g)).second
                   : fallback_.insert(g).second;
  }
  std::size_t size() const {
    return packer_ ? packed_.size() : fallback_.size();
  }

 private:
  std::optional<CutPacker> packer_;
  std::unordered_set<std::uint64_t> packed_;
  std::unordered_set<Cut, CutHash> fallback_;
};

/// Map cut -> uint32 id with the packed fast path (lattice node index).
class CutIndex {
 public:
  CutIndex() = default;
  explicit CutIndex(const Computation& c) : packer_(CutPacker::make(c)) {}

  /// Inserts g -> v unless present; returns {stored value, inserted}.
  std::pair<std::uint32_t, bool> try_emplace(const Cut& g, std::uint32_t v) {
    if (packer_) {
      auto [it, inserted] = packed_.try_emplace(packer_->pack(g), v);
      return {it->second, inserted};
    }
    auto [it, inserted] = fallback_.try_emplace(g, v);
    return {it->second, inserted};
  }

  /// Stored value for g, or `absent` when not present.
  std::uint32_t find_or(const Cut& g, std::uint32_t absent) const {
    if (packer_) {
      auto it = packed_.find(packer_->pack(g));
      return it == packed_.end() ? absent : it->second;
    }
    auto it = fallback_.find(g);
    return it == fallback_.end() ? absent : it->second;
  }

 private:
  std::optional<CutPacker> packer_;
  std::unordered_map<std::uint64_t, std::uint32_t> packed_;
  std::unordered_map<Cut, std::uint32_t, CutHash> fallback_;
};

}  // namespace hbct
