// Consistent cuts (global states) in vector representation.
//
// A cut is stored as one counter per process: cut[i] = number of events of
// process i included. A cut G is *consistent* when it is downward closed
// under happened-before; Computation provides the geometry (consistency,
// enabled/removable events, frontier). The set of consistent cuts ordered by
// inclusion forms a finite distributive lattice whose meet and join are the
// componentwise min and max of the cut vectors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace hbct {

class Cut {
 public:
  Cut() = default;
  explicit Cut(std::size_t n) : c_(n, 0) {}
  explicit Cut(std::vector<std::int32_t> c) : c_(std::move(c)) {}

  std::size_t size() const { return c_.size(); }
  std::int32_t operator[](std::size_t i) const { return c_[i]; }
  std::int32_t& operator[](std::size_t i) { return c_[i]; }

  /// Total number of events contained in the cut.
  std::int64_t total() const;

  /// Set-inclusion order: this ⊆ o.
  bool subset_of(const Cut& o) const;

  /// Lattice meet: componentwise min (set intersection of the cuts).
  static Cut meet(const Cut& a, const Cut& b);
  /// Lattice join: componentwise max (set union of the cuts).
  static Cut join(const Cut& a, const Cut& b);

  const std::vector<std::int32_t>& raw() const { return c_; }

  std::string to_string() const;

  friend bool operator==(const Cut&, const Cut&) = default;

 private:
  std::vector<std::int32_t> c_;
};

/// FNV-1a over the cut vector; for unordered containers keyed by cuts.
struct CutHash {
  std::size_t operator()(const Cut& c) const noexcept;
};

}  // namespace hbct
