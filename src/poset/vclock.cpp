#include "poset/vclock.h"

#include <algorithm>
#include <sstream>

#include "util/assert.h"

namespace hbct {

namespace vclock_detail {

std::string to_string(const std::int32_t* c, std::size_t n) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < n; ++i) {
    if (i) os << ",";
    os << c[i];
  }
  os << "]";
  return os.str();
}

}  // namespace vclock_detail

void VClock::merge(const VClock& o) {
  HBCT_ASSERT(size() == o.size());
  for (std::size_t i = 0; i < c_.size(); ++i)
    c_[i] = std::max(c_[i], o.c_[i]);
}

void VClock::merge(VClockView o) {
  HBCT_ASSERT(size() == o.size());
  for (std::size_t i = 0; i < c_.size(); ++i)
    c_[i] = std::max(c_[i], o[i]);
}

bool VClock::leq(const VClock& o) const {
  HBCT_ASSERT(size() == o.size());
  return vclock_detail::leq(c_.data(), o.c_.data(), c_.size());
}

std::string VClock::to_string() const {
  return vclock_detail::to_string(c_.data(), c_.size());
}

}  // namespace hbct
