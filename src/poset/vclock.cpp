#include "poset/vclock.h"

#include <algorithm>
#include <sstream>

#include "util/assert.h"

namespace hbct {

void VClock::merge(const VClock& o) {
  HBCT_ASSERT(size() == o.size());
  for (std::size_t i = 0; i < c_.size(); ++i)
    c_[i] = std::max(c_[i], o.c_[i]);
}

bool VClock::leq(const VClock& o) const {
  HBCT_ASSERT(size() == o.size());
  for (std::size_t i = 0; i < c_.size(); ++i)
    if (c_[i] > o.c_[i]) return false;
  return true;
}

std::string VClock::to_string() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < c_.size(); ++i) {
    if (i) os << ",";
    os << c_[i];
  }
  os << "]";
  return os.str();
}

}  // namespace hbct
