#include "poset/trace_io.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "poset/builder.h"
#include "util/assert.h"
#include "util/string_util.h"

namespace hbct {

namespace {

void write_event_tail(std::ostream& os, const Computation& c,
                      const EventView& ev) {
  if (!ev.label.empty()) os << " label=" << ev.label;
  for (std::size_t k = 0; k < ev.num_writes(); ++k) {
    const Assignment a = ev.write_at(k);
    os << " " << c.var_name(a.var) << "=" << a.value;
  }
  os << "\n";
}

}  // namespace

void write_trace(std::ostream& os, const Computation& c) {
  os << "hbct-trace v1\n";
  os << "procs " << c.num_procs() << "\n";
  for (VarId v = 0; v < c.num_vars(); ++v) os << "var " << c.var_name(v) << "\n";
  for (ProcId i = 0; i < c.num_procs(); ++i)
    for (VarId v = 0; v < c.num_vars(); ++v) {
      const std::int64_t init = c.value_at(i, v, 0);
      if (init != 0) os << "init " << i << " " << c.var_name(v) << " " << init << "\n";
    }
  for (const EventId& eid : c.linearization()) {
    const EventView ev = c.event_view(eid);
    os << "ev " << eid.proc << " ";
    switch (ev.kind) {
      case EventKind::kInternal:
        os << "internal";
        break;
      case EventKind::kSend:
        os << "send " << ev.peer << " " << ev.msg;
        break;
      case EventKind::kReceive:
        os << "recv " << ev.msg;
        break;
    }
    write_event_tail(os, c, ev);
  }
  os << "end\n";
}

std::string trace_to_string(const Computation& c) {
  std::ostringstream os;
  write_trace(os, c);
  return os.str();
}

namespace {

struct Parser {
  std::istream& is;
  int lineno = 0;
  std::string err;

  bool fail(const std::string& msg) {
    if (err.empty()) err = strfmt("line %d: %s", lineno, msg.c_str());
    return false;
  }
};

// Parses trailing "label=..." / "name=value" tokens onto the last event.
bool parse_annotations(Parser& p, ComputationBuilder& b, ProcId proc,
                       const std::vector<std::string>& toks, std::size_t first) {
  for (std::size_t t = first; t < toks.size(); ++t) {
    const std::string& tok = toks[t];
    auto eq = tok.find('=');
    if (eq == std::string::npos || eq == 0)
      return p.fail("expected key=value annotation, got '" + tok + "'");
    std::string key = tok.substr(0, eq);
    std::string val = tok.substr(eq + 1);
    if (key == "label") {
      b.label(proc, val);
    } else {
      long long value = 0;
      if (!parse_int(val, value))
        return p.fail("bad integer in assignment '" + tok + "'");
      b.write(proc, key, value);
    }
  }
  return true;
}

}  // namespace

TraceParseResult read_trace(std::istream& is) {
  TraceParseResult out;
  Parser p{is, 0, {}};
  std::string line;

  auto next_tokens = [&](std::vector<std::string>& toks) -> bool {
    while (std::getline(p.is, line)) {
      ++p.lineno;
      std::string_view body = trim(line);
      auto hash = body.find('#');
      if (hash != std::string_view::npos) body = trim(body.substr(0, hash));
      if (body.empty()) continue;
      toks.clear();
      for (auto& t : split(body, ' '))
        if (!t.empty()) toks.push_back(std::move(t));
      return true;
    }
    return false;
  };

  std::vector<std::string> toks;
  if (!next_tokens(toks) || toks.size() != 2 || toks[0] != "hbct-trace" ||
      toks[1] != "v1") {
    out.error = "missing 'hbct-trace v1' header";
    return out;
  }
  if (!next_tokens(toks) || toks.size() != 2 || toks[0] != "procs") {
    out.error = strfmt("line %d: expected 'procs <n>'", p.lineno);
    return out;
  }
  long long n = 0;
  if (!parse_int(toks[1], n) || n <= 0 || n > 1 << 20) {
    out.error = strfmt("line %d: bad process count", p.lineno);
    return out;
  }

  ComputationBuilder b(static_cast<std::int32_t>(n));
  struct MsgInfo {
    MsgId id;
    ProcId dst;
    bool received;
  };
  std::unordered_map<long long, MsgInfo> msg_map;  // file msg id -> builder msg
  bool saw_end = false;

  while (next_tokens(toks)) {
    const std::string& kw = toks[0];
    if (kw == "end") {
      saw_end = true;
      break;
    }
    if (kw == "var") {
      if (toks.size() != 2) { p.fail("expected 'var <name>'"); break; }
      b.var(toks[1]);
      continue;
    }
    if (kw == "init") {
      long long proc = 0, value = 0;
      if (toks.size() != 4 || !parse_int(toks[1], proc) ||
          !parse_int(toks[3], value) || proc < 0 || proc >= n) {
        p.fail("expected 'init <proc> <var> <value>'");
        break;
      }
      b.set_initial(static_cast<ProcId>(proc), b.var(toks[2]), value);
      continue;
    }
    if (kw == "ev") {
      long long proc = 0;
      if (toks.size() < 3 || !parse_int(toks[1], proc) || proc < 0 || proc >= n) {
        p.fail("expected 'ev <proc> <kind> ...'");
        break;
      }
      const ProcId pi = static_cast<ProcId>(proc);
      const std::string& kind = toks[2];
      std::size_t first_ann = 3;
      if (kind == "internal") {
        b.internal(pi);
      } else if (kind == "send") {
        long long to = 0, mid = 0;
        if (toks.size() < 5 || !parse_int(toks[3], to) ||
            !parse_int(toks[4], mid) || to < 0 || to >= n || to == proc) {
          p.fail("expected 'ev <proc> send <to> <msg-id>'");
          break;
        }
        if (msg_map.count(mid)) { p.fail("duplicate msg id"); break; }
        msg_map[mid] =
            MsgInfo{b.send(pi, static_cast<ProcId>(to)),
                    static_cast<ProcId>(to), false};
        first_ann = 5;
      } else if (kind == "recv") {
        long long mid = 0;
        if (toks.size() < 4 || !parse_int(toks[3], mid)) {
          p.fail("expected 'ev <proc> recv <msg-id>'");
          break;
        }
        auto it = msg_map.find(mid);
        if (it == msg_map.end()) { p.fail("recv before matching send"); break; }
        if (it->second.received) { p.fail("message received twice"); break; }
        if (it->second.dst != pi) { p.fail("recv on wrong process"); break; }
        it->second.received = true;
        b.receive(pi, it->second.id);
        first_ann = 4;
      } else {
        p.fail("unknown event kind '" + kind + "'");
        break;
      }
      if (!parse_annotations(p, b, pi, toks, first_ann)) break;
      continue;
    }
    p.fail("unknown record '" + kw + "'");
    break;
  }

  if (!p.err.empty()) {
    out.error = p.err;
    return out;
  }
  if (!saw_end) {
    out.error = "missing 'end' record";
    return out;
  }
  out.computation = std::move(b).build();
  out.ok = true;
  return out;
}

TraceParseResult trace_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_trace(is);
}

// ---- Binary form ------------------------------------------------------------

namespace wire {

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

void put_zigzag(std::string& out, std::int64_t v) {
  const std::uint64_t u = static_cast<std::uint64_t>(v);
  put_varint(out, (u << 1) ^ static_cast<std::uint64_t>(v >> 63));
}

namespace {

/// 1 = value decoded, 0 = input exhausted mid-varint (need more bytes),
/// -1 = malformed (more than 10 bytes, or bits above 63 set).
int get_varint(std::string_view in, std::size_t* pos, std::uint64_t* out) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 10; ++i) {
    if (*pos + i >= in.size()) return 0;
    const std::uint8_t b = static_cast<std::uint8_t>(in[*pos + i]);
    if (i == 9 && b > 1) return -1;  // would overflow 64 bits
    v |= static_cast<std::uint64_t>(b & 0x7f) << (7 * i);
    if ((b & 0x80) == 0) {
      *pos += i + 1;
      *out = v;
      return 1;
    }
  }
  return -1;  // no terminator within 10 bytes
}

std::uint64_t unzigzag(std::uint64_t u) {
  return (u >> 1) ^ (~(u & 1) + 1);
}

/// Field reader over one complete payload: any truncation here is malformed
/// (the record length said the payload was complete).
struct PayloadReader {
  std::string_view payload;
  std::size_t pos = 0;
  std::string err;

  bool fail(const char* msg) {
    if (err.empty()) err = msg;
    return false;
  }
  bool u64(std::uint64_t* out) {
    const int rc = get_varint(payload, &pos, out);
    return rc == 1 || fail(rc == 0 ? "truncated varint" : "oversized varint");
  }
  bool i64(std::int64_t* out) {
    std::uint64_t u = 0;
    if (!u64(&u)) return false;
    *out = static_cast<std::int64_t>(unzigzag(u));
    return true;
  }
  bool u32(std::uint32_t* out) {
    std::uint64_t u = 0;
    if (!u64(&u)) return false;
    if (u > 0xffffffffu) return fail("field out of range");
    *out = static_cast<std::uint32_t>(u);
    return true;
  }
  bool proc_id(std::int32_t* out) {
    std::uint64_t u = 0;
    if (!u64(&u)) return false;
    if (u > 0x7fffffffu) return fail("field out of range");
    *out = static_cast<std::int32_t>(u);
    return true;
  }
  bool str(std::string* out) {
    std::uint64_t len = 0;
    if (!u64(&len)) return false;
    if (len > kMaxNameBytes) return fail("string too long");
    if (payload.size() - pos < len) return fail("truncated string");
    out->assign(payload.data() + pos, static_cast<std::size_t>(len));
    pos += static_cast<std::size_t>(len);
    return true;
  }
  /// Event tail shared by kInternal/kSend/kRecv.
  bool tail(Record* r) {
    std::uint64_t nwrites = 0;
    if (!u64(&nwrites)) return false;
    // Each write occupies >= 2 payload bytes; an absurd count is malformed.
    if (nwrites > payload.size()) return fail("write count exceeds record");
    r->writes.resize(static_cast<std::size_t>(nwrites));
    for (auto& w : r->writes)
      if (!u32(&w.var) || !i64(&w.value)) return false;
    return str(&r->label);
  }
};

bool decode_payload(std::string_view payload, Record* out, std::string* err) {
  *out = Record{};
  if (payload.empty()) {
    *err = "empty record";
    return false;
  }
  const std::uint8_t kind = static_cast<std::uint8_t>(payload[0]);
  if (kind < 1 || kind > 7) {
    *err = strfmt("unknown record kind %d", kind);
    return false;
  }
  out->kind = static_cast<Record::Kind>(kind);
  PayloadReader p{payload, 1, {}};
  bool ok = true;
  switch (out->kind) {
    case Record::Kind::kProcs:
      ok = p.proc_id(&out->nprocs);
      break;
    case Record::Kind::kVar:
      ok = p.str(&out->name);
      break;
    case Record::Kind::kInit:
      ok = p.proc_id(&out->proc) && p.u32(&out->var) && p.i64(&out->value);
      break;
    case Record::Kind::kInternal:
      ok = p.proc_id(&out->proc) && p.tail(out);
      break;
    case Record::Kind::kSend:
      ok = p.proc_id(&out->proc) && p.proc_id(&out->peer) &&
           p.u64(&out->msg) && p.tail(out);
      break;
    case Record::Kind::kRecv:
      ok = p.proc_id(&out->proc) && p.u64(&out->msg) && p.tail(out);
      break;
    case Record::Kind::kEnd:
      break;
  }
  if (!ok) {
    *err = p.err;
    return false;
  }
  if (p.pos != payload.size()) {
    *err = "trailing bytes in record";
    return false;
  }
  return true;
}

}  // namespace

void encode_record(std::string& out, const Record& r) {
  std::string payload;
  payload.push_back(static_cast<char>(r.kind));
  switch (r.kind) {
    case Record::Kind::kProcs:
      put_varint(payload, static_cast<std::uint64_t>(r.nprocs));
      break;
    case Record::Kind::kVar:
      put_varint(payload, r.name.size());
      payload.append(r.name);
      break;
    case Record::Kind::kInit:
      put_varint(payload, static_cast<std::uint64_t>(r.proc));
      put_varint(payload, r.var);
      put_zigzag(payload, r.value);
      break;
    case Record::Kind::kInternal:
    case Record::Kind::kSend:
    case Record::Kind::kRecv:
      put_varint(payload, static_cast<std::uint64_t>(r.proc));
      if (r.kind == Record::Kind::kSend)
        put_varint(payload, static_cast<std::uint64_t>(r.peer));
      if (r.kind != Record::Kind::kInternal) put_varint(payload, r.msg);
      put_varint(payload, r.writes.size());
      for (const WireWrite& w : r.writes) {
        put_varint(payload, w.var);
        put_zigzag(payload, w.value);
      }
      put_varint(payload, r.label.size());
      payload.append(r.label);
      break;
    case Record::Kind::kEnd:
      break;
  }
  HBCT_ASSERT(payload.size() <= kMaxRecordBytes);
  put_varint(out, payload.size());
  out.append(payload);
}

void Decoder::feed(std::string_view bytes) {
  buf_.append(bytes.data(), bytes.size());
}

Decoder::Status Decoder::fail(const std::string& msg) {
  if (err_.empty()) err_ = msg;
  return Status::kError;
}

Decoder::Status Decoder::next(Record* out) {
  if (!err_.empty()) return Status::kError;
  std::size_t pos = off_;
  std::uint64_t len = 0;
  const int rc = get_varint(buf_, &pos, &len);
  if (rc == 0) return Status::kNeedMore;
  if (rc < 0) return fail("bad record length prefix");
  if (len > kMaxRecordBytes) return fail("record too large");
  if (buf_.size() - pos < len) return Status::kNeedMore;
  std::string err;
  if (!decode_payload(
          std::string_view(buf_).substr(pos, static_cast<std::size_t>(len)),
          out, &err))
    return fail(err);
  off_ = pos + static_cast<std::size_t>(len);
  // Reclaim consumed bytes once they dominate the buffer.
  if (off_ > 4096 && off_ > buf_.size() / 2) {
    buf_.erase(0, off_);
    off_ = 0;
  }
  return Status::kRecord;
}

}  // namespace wire

void write_trace_binary(std::ostream& os, const Computation& c) {
  const std::string bytes = trace_to_binary_string(c);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string trace_to_binary_string(const Computation& c) {
  std::string out(wire::kBinaryMagic);
  const auto emit = [&out](const wire::Record& r) {
    wire::encode_record(out, r);
  };
  wire::Record r;
  r.kind = wire::Record::Kind::kProcs;
  r.nprocs = c.num_procs();
  emit(r);
  for (VarId v = 0; v < c.num_vars(); ++v) {
    wire::Record vr;
    vr.kind = wire::Record::Kind::kVar;
    vr.name = c.var_name(v);
    emit(vr);
  }
  for (ProcId i = 0; i < c.num_procs(); ++i)
    for (VarId v = 0; v < c.num_vars(); ++v) {
      const std::int64_t init = c.value_at(i, v, 0);
      if (init == 0) continue;
      wire::Record ir;
      ir.kind = wire::Record::Kind::kInit;
      ir.proc = i;
      ir.var = static_cast<std::uint32_t>(v);
      ir.value = init;
      emit(ir);
    }
  for (const EventId& eid : c.linearization()) {
    const EventView ev = c.event_view(eid);
    wire::Record er;
    switch (ev.kind) {
      case EventKind::kInternal:
        er.kind = wire::Record::Kind::kInternal;
        break;
      case EventKind::kSend:
        er.kind = wire::Record::Kind::kSend;
        er.peer = ev.peer;
        er.msg = static_cast<std::uint64_t>(ev.msg);
        break;
      case EventKind::kReceive:
        er.kind = wire::Record::Kind::kRecv;
        er.msg = static_cast<std::uint64_t>(ev.msg);
        break;
    }
    er.proc = eid.proc;
    er.label = ev.label;
    for (std::size_t k = 0; k < ev.num_writes(); ++k) {
      const Assignment a = ev.write_at(k);
      er.writes.push_back(
          wire::WireWrite{static_cast<std::uint32_t>(a.var), a.value});
    }
    emit(er);
  }
  r = wire::Record{};
  r.kind = wire::Record::Kind::kEnd;
  emit(r);
  return out;
}

TraceParseResult trace_from_binary_string(std::string_view bytes) {
  TraceParseResult out;
  if (bytes.substr(0, wire::kBinaryMagic.size()) != wire::kBinaryMagic) {
    out.error = "missing 'hbct-btrace v1' magic";
    return out;
  }
  wire::Decoder dec;
  dec.feed(bytes.substr(wire::kBinaryMagic.size()));

  int recno = 0;
  auto fail = [&](const std::string& msg) {
    out.error = strfmt("record %d: %s", recno, msg.c_str());
  };

  wire::Record r;
  switch (dec.next(&r)) {
    case wire::Decoder::Status::kRecord:
      break;
    case wire::Decoder::Status::kNeedMore:
      fail("missing 'procs' record");
      return out;
    case wire::Decoder::Status::kError:
      fail(dec.error());
      return out;
  }
  if (r.kind != wire::Record::Kind::kProcs) {
    fail("first record must be 'procs'");
    return out;
  }
  if (r.nprocs <= 0 || r.nprocs > 1 << 20) {
    fail("bad process count");
    return out;
  }
  const std::int32_t n = r.nprocs;

  ComputationBuilder b(n);
  std::vector<VarId> vars;  // registration index -> builder VarId
  struct MsgInfo {
    MsgId id;
    ProcId dst;
    bool received;
  };
  std::unordered_map<std::uint64_t, MsgInfo> msg_map;
  bool saw_end = false;

  const auto apply_tail = [&](const wire::Record& er, ProcId pi) -> bool {
    for (const wire::WireWrite& w : er.writes) {
      if (w.var >= vars.size()) {
        fail("write references unknown variable");
        return false;
      }
      b.write(pi, vars[w.var], w.value);
    }
    if (!er.label.empty()) b.label(pi, er.label);
    return true;
  };

  while (!saw_end) {
    ++recno;
    const wire::Decoder::Status st = dec.next(&r);
    if (st == wire::Decoder::Status::kError) {
      fail(dec.error());
      return out;
    }
    if (st == wire::Decoder::Status::kNeedMore) {
      fail(dec.buffered() == 0 ? "missing 'end' record" : "truncated record");
      return out;
    }
    switch (r.kind) {
      case wire::Record::Kind::kProcs:
        fail("duplicate 'procs' record");
        return out;
      case wire::Record::Kind::kVar:
        vars.push_back(b.var(r.name));
        break;
      case wire::Record::Kind::kInit:
        if (r.proc < 0 || r.proc >= n) { fail("bad process id"); return out; }
        if (r.var >= vars.size()) { fail("unknown variable"); return out; }
        b.set_initial(r.proc, vars[r.var], r.value);
        break;
      case wire::Record::Kind::kInternal:
        if (r.proc < 0 || r.proc >= n) { fail("bad process id"); return out; }
        b.internal(r.proc);
        if (!apply_tail(r, r.proc)) return out;
        break;
      case wire::Record::Kind::kSend: {
        if (r.proc < 0 || r.proc >= n || r.peer < 0 || r.peer >= n) {
          fail("bad process id");
          return out;
        }
        if (r.peer == r.proc) { fail("self-message"); return out; }
        if (msg_map.count(r.msg)) { fail("duplicate msg id"); return out; }
        msg_map[r.msg] = MsgInfo{b.send(r.proc, r.peer), r.peer, false};
        if (!apply_tail(r, r.proc)) return out;
        break;
      }
      case wire::Record::Kind::kRecv: {
        if (r.proc < 0 || r.proc >= n) { fail("bad process id"); return out; }
        auto it = msg_map.find(r.msg);
        if (it == msg_map.end()) {
          fail("recv before matching send");
          return out;
        }
        if (it->second.received) { fail("message received twice"); return out; }
        if (it->second.dst != r.proc) {
          fail("recv on wrong process");
          return out;
        }
        it->second.received = true;
        b.receive(r.proc, it->second.id);
        if (!apply_tail(r, r.proc)) return out;
        break;
      }
      case wire::Record::Kind::kEnd:
        saw_end = true;
        break;
    }
  }
  if (dec.buffered() != 0 ||
      dec.next(&r) != wire::Decoder::Status::kNeedMore) {
    ++recno;
    fail("bytes after 'end' record");
    return out;
  }
  out.computation = std::move(b).build();
  out.ok = true;
  return out;
}

TraceParseResult read_trace_binary(std::istream& is) {
  std::ostringstream buf;
  buf << is.rdbuf();
  const std::string bytes = buf.str();
  return trace_from_binary_string(bytes);
}

}  // namespace hbct
