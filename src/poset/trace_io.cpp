#include "poset/trace_io.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "poset/builder.h"
#include "util/string_util.h"

namespace hbct {

namespace {

void write_event_tail(std::ostream& os, const Computation& c, const Event& ev) {
  if (!ev.label.empty()) os << " label=" << ev.label;
  for (const Assignment& a : ev.writes)
    os << " " << c.var_name(a.var) << "=" << a.value;
  os << "\n";
}

}  // namespace

void write_trace(std::ostream& os, const Computation& c) {
  os << "hbct-trace v1\n";
  os << "procs " << c.num_procs() << "\n";
  for (VarId v = 0; v < c.num_vars(); ++v) os << "var " << c.var_name(v) << "\n";
  for (ProcId i = 0; i < c.num_procs(); ++i)
    for (VarId v = 0; v < c.num_vars(); ++v) {
      const std::int64_t init = c.value_at(i, v, 0);
      if (init != 0) os << "init " << i << " " << c.var_name(v) << " " << init << "\n";
    }
  for (const EventId& eid : c.linearization()) {
    const Event& ev = c.event(eid);
    os << "ev " << eid.proc << " ";
    switch (ev.kind) {
      case EventKind::kInternal:
        os << "internal";
        break;
      case EventKind::kSend:
        os << "send " << ev.peer << " " << ev.msg;
        break;
      case EventKind::kReceive:
        os << "recv " << ev.msg;
        break;
    }
    write_event_tail(os, c, ev);
  }
  os << "end\n";
}

std::string trace_to_string(const Computation& c) {
  std::ostringstream os;
  write_trace(os, c);
  return os.str();
}

namespace {

struct Parser {
  std::istream& is;
  int lineno = 0;
  std::string err;

  bool fail(const std::string& msg) {
    if (err.empty()) err = strfmt("line %d: %s", lineno, msg.c_str());
    return false;
  }
};

// Parses trailing "label=..." / "name=value" tokens onto the last event.
bool parse_annotations(Parser& p, ComputationBuilder& b, ProcId proc,
                       const std::vector<std::string>& toks, std::size_t first) {
  for (std::size_t t = first; t < toks.size(); ++t) {
    const std::string& tok = toks[t];
    auto eq = tok.find('=');
    if (eq == std::string::npos || eq == 0)
      return p.fail("expected key=value annotation, got '" + tok + "'");
    std::string key = tok.substr(0, eq);
    std::string val = tok.substr(eq + 1);
    if (key == "label") {
      b.label(proc, val);
    } else {
      long long value = 0;
      if (!parse_int(val, value))
        return p.fail("bad integer in assignment '" + tok + "'");
      b.write(proc, key, value);
    }
  }
  return true;
}

}  // namespace

TraceParseResult read_trace(std::istream& is) {
  TraceParseResult out;
  Parser p{is, 0, {}};
  std::string line;

  auto next_tokens = [&](std::vector<std::string>& toks) -> bool {
    while (std::getline(p.is, line)) {
      ++p.lineno;
      std::string_view body = trim(line);
      auto hash = body.find('#');
      if (hash != std::string_view::npos) body = trim(body.substr(0, hash));
      if (body.empty()) continue;
      toks.clear();
      for (auto& t : split(body, ' '))
        if (!t.empty()) toks.push_back(std::move(t));
      return true;
    }
    return false;
  };

  std::vector<std::string> toks;
  if (!next_tokens(toks) || toks.size() != 2 || toks[0] != "hbct-trace" ||
      toks[1] != "v1") {
    out.error = "missing 'hbct-trace v1' header";
    return out;
  }
  if (!next_tokens(toks) || toks.size() != 2 || toks[0] != "procs") {
    out.error = strfmt("line %d: expected 'procs <n>'", p.lineno);
    return out;
  }
  long long n = 0;
  if (!parse_int(toks[1], n) || n <= 0 || n > 1 << 20) {
    out.error = strfmt("line %d: bad process count", p.lineno);
    return out;
  }

  ComputationBuilder b(static_cast<std::int32_t>(n));
  struct MsgInfo {
    MsgId id;
    ProcId dst;
    bool received;
  };
  std::unordered_map<long long, MsgInfo> msg_map;  // file msg id -> builder msg
  bool saw_end = false;

  while (next_tokens(toks)) {
    const std::string& kw = toks[0];
    if (kw == "end") {
      saw_end = true;
      break;
    }
    if (kw == "var") {
      if (toks.size() != 2) { p.fail("expected 'var <name>'"); break; }
      b.var(toks[1]);
      continue;
    }
    if (kw == "init") {
      long long proc = 0, value = 0;
      if (toks.size() != 4 || !parse_int(toks[1], proc) ||
          !parse_int(toks[3], value) || proc < 0 || proc >= n) {
        p.fail("expected 'init <proc> <var> <value>'");
        break;
      }
      b.set_initial(static_cast<ProcId>(proc), b.var(toks[2]), value);
      continue;
    }
    if (kw == "ev") {
      long long proc = 0;
      if (toks.size() < 3 || !parse_int(toks[1], proc) || proc < 0 || proc >= n) {
        p.fail("expected 'ev <proc> <kind> ...'");
        break;
      }
      const ProcId pi = static_cast<ProcId>(proc);
      const std::string& kind = toks[2];
      std::size_t first_ann = 3;
      if (kind == "internal") {
        b.internal(pi);
      } else if (kind == "send") {
        long long to = 0, mid = 0;
        if (toks.size() < 5 || !parse_int(toks[3], to) ||
            !parse_int(toks[4], mid) || to < 0 || to >= n || to == proc) {
          p.fail("expected 'ev <proc> send <to> <msg-id>'");
          break;
        }
        if (msg_map.count(mid)) { p.fail("duplicate msg id"); break; }
        msg_map[mid] =
            MsgInfo{b.send(pi, static_cast<ProcId>(to)),
                    static_cast<ProcId>(to), false};
        first_ann = 5;
      } else if (kind == "recv") {
        long long mid = 0;
        if (toks.size() < 4 || !parse_int(toks[3], mid)) {
          p.fail("expected 'ev <proc> recv <msg-id>'");
          break;
        }
        auto it = msg_map.find(mid);
        if (it == msg_map.end()) { p.fail("recv before matching send"); break; }
        if (it->second.received) { p.fail("message received twice"); break; }
        if (it->second.dst != pi) { p.fail("recv on wrong process"); break; }
        it->second.received = true;
        b.receive(pi, it->second.id);
        first_ann = 4;
      } else {
        p.fail("unknown event kind '" + kind + "'");
        break;
      }
      if (!parse_annotations(p, b, pi, toks, first_ann)) break;
      continue;
    }
    p.fail("unknown record '" + kw + "'");
    break;
  }

  if (!p.err.empty()) {
    out.error = p.err;
    return out;
  }
  if (!saw_end) {
    out.error = "missing 'end' record";
    return out;
  }
  out.computation = std::move(b).build();
  out.ok = true;
  return out;
}

TraceParseResult trace_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_trace(is);
}

}  // namespace hbct
