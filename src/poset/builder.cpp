#include "poset/builder.h"

#include "util/assert.h"

namespace hbct {

namespace {
std::size_t sz(std::int32_t v) { return static_cast<std::size_t>(v); }
}  // namespace

ComputationBuilder::ComputationBuilder(std::int32_t num_procs) {
  HBCT_ASSERT(num_procs > 0);
  c_.procs_.resize(sz(num_procs));
  c_.initial_.resize(sz(num_procs));
}

VarId ComputationBuilder::var(std::string_view name) {
  auto it = c_.var_ids_.find(std::string(name));
  if (it != c_.var_ids_.end()) return it->second;
  const VarId id = static_cast<VarId>(c_.var_names_.size());
  c_.var_names_.emplace_back(name);
  c_.var_ids_.emplace(std::string(name), id);
  for (auto& iv : c_.initial_) iv.resize(c_.var_names_.size(), 0);
  return id;
}

void ComputationBuilder::set_initial(ProcId i, VarId v, std::int64_t value) {
  HBCT_ASSERT(i >= 0 && i < num_procs());
  HBCT_ASSERT(v >= 0 && sz(v) < c_.var_names_.size());
  c_.initial_[sz(i)][sz(v)] = value;
}

EventId ComputationBuilder::append(ProcId i, Event ev) {
  HBCT_ASSERT(!built_);
  HBCT_ASSERT(i >= 0 && i < num_procs());
  auto& list = c_.procs_[sz(i)];
  list.push_back(std::move(ev));
  EventId id{i, static_cast<EventIndex>(list.size())};
  c_.linearization_.push_back(id);
  return id;
}

EventId ComputationBuilder::internal(ProcId i) {
  return append(i, Event{});
}

MsgId ComputationBuilder::send(ProcId from, ProcId to) {
  HBCT_ASSERT(to >= 0 && to < num_procs());
  HBCT_ASSERT_MSG(from != to, "self-messages are not part of the model");
  const MsgId m = next_msg_++;
  Event ev;
  ev.kind = EventKind::kSend;
  ev.peer = to;
  ev.msg = m;
  append(from, std::move(ev));
  msg_src_.push_back(from);
  msg_dst_.push_back(to);
  msg_received_.push_back(false);
  return m;
}

EventId ComputationBuilder::receive(ProcId to, MsgId m) {
  HBCT_ASSERT_MSG(m >= 0 && sz(m) < msg_src_.size(),
                  "receive of unknown message");
  HBCT_ASSERT_MSG(!msg_received_[sz(m)], "message received twice");
  HBCT_ASSERT_MSG(msg_dst_[sz(m)] == to, "message delivered to wrong process");
  msg_received_[sz(m)] = true;
  Event ev;
  ev.kind = EventKind::kReceive;
  ev.peer = msg_src_[sz(m)];
  ev.msg = m;
  return append(to, std::move(ev));
}

Event& ComputationBuilder::last_event(ProcId i) {
  HBCT_ASSERT(i >= 0 && i < num_procs());
  auto& list = c_.procs_[sz(i)];
  HBCT_ASSERT_MSG(!list.empty(), "no event to annotate");
  return list.back();
}

ComputationBuilder& ComputationBuilder::write(ProcId i, VarId v,
                                              std::int64_t value) {
  HBCT_ASSERT(v >= 0 && sz(v) < c_.var_names_.size());
  last_event(i).writes.push_back(Assignment{v, value});
  return *this;
}

ComputationBuilder& ComputationBuilder::write(ProcId i, std::string_view name,
                                              std::int64_t value) {
  return write(i, var(name), value);
}

ComputationBuilder& ComputationBuilder::label(ProcId i, std::string_view text) {
  last_event(i).label = std::string(text);
  return *this;
}

Computation ComputationBuilder::build() && {
  HBCT_ASSERT(!built_);
  built_ = true;
  c_.finalize();
  return std::move(c_);
}

}  // namespace hbct
