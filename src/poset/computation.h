// Computation: an immutable happened-before model (E, ->) of one execution
// of a distributed program, plus the cut geometry every detection algorithm
// in this library is built on.
//
// The structure is finalized once (by ComputationBuilder) and then read-only:
// vector clocks, reverse vector clocks, per-variable state timelines and
// channel prefix counters are all precomputed so that the predicate
// detectors' inner loops are O(n) or O(1) per step, matching the cost model
// used in the paper's complexity claims.
//
// Two storage modes share one interface:
//   owning  the builder/online path: per-event vectors plus flat clock and
//           timeline arenas computed by finalize().
//   view    zero-copy over a MappedArena (poset/arena.h): every accessor
//           reads straight from the mapped hbct-mtrace sections. Loading is
//           O(procs + vars) allocations; event() is unavailable (payloads
//           are packed) — use event_view(), which works in both modes.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "poset/arena.h"
#include "poset/cut.h"
#include "poset/event.h"
#include "poset/vclock.h"
#include "util/assert.h"

namespace hbct {

class ComputationBuilder;

class Computation {
 public:
  Computation() = default;

  // ---- Shape -------------------------------------------------------------

  std::int32_t num_procs() const { return static_cast<std::int32_t>(procs_.size()); }
  EventIndex num_events(ProcId i) const {
    if (arena_) return arena_->counts[static_cast<std::size_t>(i)];
    return trimmed(i) +
           static_cast<EventIndex>(procs_[static_cast<std::size_t>(i)].size());
  }

  /// True when this computation borrows from a MappedArena (mtrace load)
  /// instead of owning its event storage. View computations are frozen:
  /// OnlineAppender refuses them and event() is unavailable.
  bool is_view() const { return arena_ != nullptr; }

  /// Wraps a fully-validated arena (the mtrace loader's product) without
  /// copying event data. `var_names` carries the VarNames section in
  /// registration order; its size must equal arena->nvars.
  static Computation from_arena(MappedArenaPtr arena,
                                std::vector<std::string> var_names);

  /// Deep-copies a view computation into owning storage (recomputing the
  /// derived tables via the builder-path finalize). Owning computations
  /// return a plain copy.
  Computation materialize() const;
  /// |E| — total number of events across all processes (including events
  /// whose storage was reclaimed by prefix GC; indices stay absolute).
  std::int64_t total_events() const { return total_events_; }
  std::int64_t num_messages() const { return num_messages_; }

  // ---- Prefix garbage collection (OnlineAppender::collect_prefix) ----------

  /// Events of process i whose storage was reclaimed: positions 1..trimmed(i)
  /// are no longer resident (payloads, clock rows, timeline entries and
  /// channel counters below the trim cut are gone). All public indices stay
  /// absolute — accessors subtract the offset internally — but reading a
  /// reclaimed position is an error. 0 on every builder-produced computation.
  EventIndex trimmed(ProcId i) const {
    return trim_.empty() ? 0 : trim_[static_cast<std::size_t>(i)];
  }
  /// Total events reclaimed across all processes.
  std::int64_t trimmed_events() const { return trimmed_events_; }
  /// Events currently resident in memory.
  std::int64_t resident_events() const { return total_events_ - trimmed_events_; }

  /// Event payload; `idx` is 1-based. Owning mode only (view-mode events
  /// are packed records, not Event structs) — use event_view() for code
  /// that must serve both modes.
  const Event& event(ProcId i, EventIndex idx) const;
  const Event& event(EventId e) const { return event(e.proc, e.index); }

  /// Mode-independent event payload view; valid while the computation (and
  /// its arena) is alive.
  EventView event_view(ProcId i, EventIndex idx) const;
  EventView event_view(EventId e) const { return event_view(e.proc, e.index); }

  /// Fidge-Mattern clock of the event (1-based idx). The view points into
  /// the computation's flat clock arena: valid while the computation is
  /// alive and not grown by an OnlineAppender.
  VClockView vclock(ProcId i, EventIndex idx) const;
  VClockView vclock(EventId e) const { return vclock(e.proc, e.index); }

  /// Reverse clock: rvc(e)[j] = |{f on process j : e -> f or e == f}|.
  /// This is the vector clock of `e` in the computation with all edges
  /// reversed; it yields the meet-irreducible cuts M(e) = E \ up-set(e).
  /// Reverse clocks depend on the whole suffix of the computation, so
  /// online appends (OnlineAppender) invalidate them; they are recomputed
  /// lazily on first use (not thread-safe against concurrent appends).
  VClockView reverse_vclock(ProcId i, EventIndex idx) const;

  // ---- Order between events ----------------------------------------------

  /// Lamport's happened-before: e -> f.
  bool happened_before(EventId e, EventId f) const;
  /// Neither e -> f nor f -> e (and e != f).
  bool concurrent(EventId e, EventId f) const;

  // ---- Variables -----------------------------------------------------------

  /// Id of a registered variable name, or nullopt.
  std::optional<VarId> var_id(std::string_view name) const;
  std::int32_t num_vars() const { return static_cast<std::int32_t>(var_names_.size()); }
  const std::string& var_name(VarId v) const;

  /// Value of variable v on process i after the first `pos` events of i
  /// (pos = 0 gives the initial value).
  std::int64_t value_at(ProcId i, VarId v, EventIndex pos) const;

  /// The full precomputed timeline of variable v on process i:
  /// timeline[pos] = value after pos events. Lets hot loops hoist the
  /// per-call bounds checks and indirections out of their inner loop.
  /// Positions are absolute, so this view is only available while no prefix
  /// has been reclaimed (trimmed storage starts at offset trimmed(i)).
  /// The view is invalidated by OnlineAppender growth, exactly as the
  /// underlying storage is.
  TimelineView value_timeline(ProcId i, VarId v) const {
    if (arena_)
      return TimelineView(arena_timeline(i, v),
                          static_cast<std::size_t>(num_events(i)) + 1);
    HBCT_DASSERT(trimmed(i) == 0);
    const auto& tl =
        values_[static_cast<std::size_t>(i)][static_cast<std::size_t>(v)];
    return TimelineView(tl.data(), tl.size());
  }

  /// Convenience: value of variable v on process i in global state G.
  std::int64_t value_in(ProcId i, VarId v, const Cut& g) const {
    return value_at(i, v, g[static_cast<std::size_t>(i)]);
  }

  // ---- Channels ------------------------------------------------------------

  /// Number of messages sent from `from` to `to` that are in transit in G
  /// (sent within G, not yet received within G). G must be consistent.
  std::int32_t in_transit(ProcId from, ProcId to, const Cut& g) const;
  /// Total number of in-transit messages in G over all channels.
  std::int64_t in_transit_total(const Cut& g) const;
  bool all_channels_empty(const Cut& g) const { return in_transit_total(g) == 0; }

  /// True when any message was ever sent from `from` to `to`.
  bool channel_active(ProcId from, ProcId to) const {
    if (arena_) return arena_channel(arena_->sends, from, to) != nullptr;
    return !sends_to_[static_cast<std::size_t>(from)]
                     [static_cast<std::size_t>(to)]
                         .empty();
  }
  /// Messages sent from `from` to `to` among the first `pos` events of
  /// `from`. Unlike in_transit() this is a plain prefix-counter read with no
  /// consistency requirement, so incremental evaluators may call it on cuts
  /// that are transiently inconsistent mid-seek.
  std::int32_t sends_up_to(ProcId from, ProcId to, EventIndex pos) const {
    if (arena_) {
      const std::int32_t* t = arena_channel(arena_->sends, from, to);
      return t == nullptr ? 0 : t[static_cast<std::size_t>(pos)];
    }
    const auto& t = sends_to_[static_cast<std::size_t>(from)]
                             [static_cast<std::size_t>(to)];
    if (t.empty()) return 0;
    HBCT_DASSERT(pos >= trimmed(from));
    return t[static_cast<std::size_t>(pos - trimmed(from))];
  }
  /// Messages received at `to` from `from` among the first `pos` events of
  /// `to`.
  std::int32_t recvs_up_to(ProcId to, ProcId from, EventIndex pos) const {
    if (arena_) {
      const std::int32_t* t = arena_channel(arena_->recvs, to, from);
      return t == nullptr ? 0 : t[static_cast<std::size_t>(pos)];
    }
    const auto& t = recvs_from_[static_cast<std::size_t>(to)]
                               [static_cast<std::size_t>(from)];
    if (t.empty()) return 0;
    HBCT_DASSERT(pos >= trimmed(to));
    return t[static_cast<std::size_t>(pos - trimmed(to))];
  }

  // ---- Cut geometry --------------------------------------------------------

  Cut initial_cut() const { return Cut(static_cast<std::size_t>(num_procs())); }
  Cut final_cut() const;

  /// Downward-closure (consistency) test, O(n^2).
  bool is_consistent(const Cut& g) const;

  /// True when the next event of process i can be appended to G keeping it
  /// consistent (its whole causal past is inside G). O(n).
  bool enabled(const Cut& g, ProcId i) const;
  /// True when the last included event of process i is maximal in G, i.e.
  /// removing it keeps G consistent. O(n).
  bool removable(const Cut& g, ProcId i) const;

  /// Processes whose next event is enabled in G (successors of G in the
  /// lattice are exactly the cuts advance(G, i) for these i).
  std::vector<ProcId> enabled_procs(const Cut& g) const;
  /// frontier(G): processes owning a maximal event of G (predecessors of G
  /// in the lattice are exactly retreat(G, i) for these i).
  std::vector<ProcId> frontier_procs(const Cut& g) const;

  /// Scratch-buffer overloads for the walk inner loops: refill `*out`
  /// (cleared first) instead of returning a fresh vector.
  void enabled_procs(const Cut& g, std::vector<ProcId>* out) const;
  void frontier_procs(const Cut& g, std::vector<ProcId>* out) const;

  Cut advance(const Cut& g, ProcId i) const;
  Cut retreat(const Cut& g, ProcId i) const;

  /// J(e): the least consistent cut containing event e (its vector clock
  /// read as a cut). The J(e) are exactly the join-irreducible lattice
  /// elements.
  Cut join_irreducible_of(ProcId i, EventIndex idx) const;
  /// M(e) = E \ up-set(e). The M(e) are exactly the meet-irreducible
  /// lattice elements.
  Cut meet_irreducible_of(ProcId i, EventIndex idx) const;

  /// Scratch overloads: write the irreducible cut into `*out` (resized to
  /// num_procs) without allocating when out already has the right size.
  void join_irreducible_of(ProcId i, EventIndex idx, Cut* out) const;
  void meet_irreducible_of(ProcId i, EventIndex idx, Cut* out) const;

  // ---- Whole-computation helpers -------------------------------------------

  /// One valid observation (topological order) of all events: the order in
  /// which events were appended at build time.
  const std::vector<EventId>& linearization() const { return linearization_; }

  /// The sub-computation induced by the (consistent) prefix K: process i
  /// keeps its first K[i] events. Message sends whose receive falls outside
  /// K remain unmatched (the message stays in transit forever).
  Computation prefix(const Cut& k) const;

  /// Find an event by its label; nullopt if absent or ambiguous labels exist
  /// (first match wins).
  std::optional<EventId> find_label(std::string_view label) const;

  /// Exhaustive internal-invariant check (clock correctness, message
  /// matching, linearization validity). Aborts on violation; test helper.
  void validate() const;

 private:
  friend class ComputationBuilder;
  friend class OnlineAppender;

  void finalize();            // computes clocks and tables (builder path)
  void compute_rvclocks() const;  // (re)derives the reverse clocks

  /// Timeline row of variable v on process i inside the arena.
  const std::int64_t* arena_timeline(ProcId i, VarId v) const {
    return arena_->values[static_cast<std::size_t>(i) *
                              static_cast<std::size_t>(arena_->nvars) +
                          static_cast<std::size_t>(v)];
  }
  /// Channel prefix-counter table of the arena's dense n*n pointer matrix;
  /// nullptr marks an inactive channel.
  const std::int32_t* arena_channel(const std::vector<const std::int32_t*>& m,
                                    ProcId owner, ProcId peer) const {
    return m[static_cast<std::size_t>(owner) *
                 static_cast<std::size_t>(num_procs()) +
             static_cast<std::size_t>(peer)];
  }

  /// Absolute index of the first retained vclock arena row of process i.
  /// After a trim one boundary row (the clock of event trimmed(i)) is kept
  /// so consistency tests and online clock seeding keep working at the trim
  /// cut itself.
  EventIndex vclock_base(ProcId i) const {
    const EventIndex t = trimmed(i);
    return t == 0 ? 1 : t;
  }

  /// Reverse-clock cache: recomputed lazily after OnlineAppender
  /// invalidates it, with double-checked locking so the parallel detection
  /// fan-outs can share one Computation race-free. The wrapper restores the
  /// copy/move semantics std::atomic deletes, keeping Computation a value
  /// type.
  struct RvClockCache {
    /// Per-process flat arena, stride num_procs: clocks[i] holds the
    /// reverse clocks of process i's events back to back.
    std::vector<std::vector<std::int32_t>> clocks;
    std::atomic<bool> dirty{true};

    RvClockCache() = default;
    RvClockCache(const RvClockCache& o)
        : clocks(o.clocks), dirty(o.dirty.load(std::memory_order_acquire)) {}
    RvClockCache(RvClockCache&& o) noexcept
        : clocks(std::move(o.clocks)),
          dirty(o.dirty.load(std::memory_order_acquire)) {}
    RvClockCache& operator=(const RvClockCache& o) {
      clocks = o.clocks;
      dirty.store(o.dirty.load(std::memory_order_acquire),
                  std::memory_order_release);
      return *this;
    }
    RvClockCache& operator=(RvClockCache&& o) noexcept {
      clocks = std::move(o.clocks);
      dirty.store(o.dirty.load(std::memory_order_acquire),
                  std::memory_order_release);
      return *this;
    }
  };

  /// View-mode backing; non-null puts the accessors on their arena
  /// branches. procs_ is still resized to nprocs (with empty inner vectors)
  /// so num_procs() and the geometry code shares one shape; vclocks_,
  /// values_, initial_ and the channel tables stay empty.
  MappedArenaPtr arena_;

  std::vector<std::vector<Event>> procs_;
  /// Per-process flat clock arena, stride num_procs: vclocks_[i] stores the
  /// Fidge-Mattern clocks of process i's events contiguously, so vclock()
  /// is a pointer offset and leq/merge run over contiguous int32 rows.
  std::vector<std::vector<std::int32_t>> vclocks_;
  mutable RvClockCache rvcache_;
  std::vector<EventId> linearization_;

  std::vector<std::string> var_names_;
  std::unordered_map<std::string, VarId> var_ids_;
  /// values_[i][v][pos] = value of var v on proc i after pos events.
  std::vector<std::vector<std::vector<std::int64_t>>> values_;
  /// initial_[i][v]
  std::vector<std::vector<std::int64_t>> initial_;

  /// sends_to_[i][j][k] = #sends from i to j among the first k events of i.
  /// Empty inner vector = no traffic on that channel.
  std::vector<std::vector<std::vector<std::int32_t>>> sends_to_;
  /// recvs_from_[j][i][k] = #receives at j from i among the first k events.
  std::vector<std::vector<std::vector<std::int32_t>>> recvs_from_;

  std::int64_t total_events_ = 0;
  std::int64_t num_messages_ = 0;

  /// Per-process count of events reclaimed by prefix GC; empty (the builder
  /// path, and online sessions before their first collection) means nothing
  /// was ever trimmed.
  std::vector<EventIndex> trim_;
  std::int64_t trimmed_events_ = 0;
};

}  // namespace hbct
