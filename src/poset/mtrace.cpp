#include "poset/mtrace.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <memory>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "util/assert.h"
#include "util/string_util.h"

namespace hbct {

namespace {

static_assert(__BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__,
              "hbct-mtrace v1 assumes a little-endian host");

// Fixed 64-byte header; field order matches the wire grammar in mtrace.h.
struct Header {
  char magic[8];
  std::uint32_t version;
  std::uint32_t header_bytes;
  std::int32_t nprocs;
  std::int32_t nvars;
  std::int64_t total_events;
  std::int64_t num_messages;
  std::uint64_t section_count;
  std::uint64_t table_checksum;
  std::uint64_t flags;
};
static_assert(sizeof(Header) == 64);
static_assert(std::is_trivially_copyable_v<Header>);

struct SectionEntry {
  std::uint32_t id;
  std::uint32_t reserved;
  std::uint64_t offset;
  std::uint64_t bytes;
};
static_assert(sizeof(SectionEntry) == 24);

constexpr int kNumSections = 9;
constexpr std::uint64_t kTableOffset = sizeof(Header);
constexpr std::uint64_t kTableBytes =
    static_cast<std::uint64_t>(kNumSections) * sizeof(SectionEntry);
constexpr std::uint64_t kFirstSectionOffset = kTableOffset + kTableBytes;
constexpr std::uint32_t kMaxVarNameBytes = 4096;

enum SectionId : std::uint32_t {
  kSecProcCounts = 1,
  kSecEvents = 2,
  kSecVClocks = 3,
  kSecWrites = 4,
  kSecLabels = 5,
  kSecVarNames = 6,
  kSecValues = 7,
  kSecChannels = 8,
  kSecLinearization = 9,
};

std::uint64_t fnv1a(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t align8(std::uint64_t off) { return (off + 7) & ~std::uint64_t{7}; }

template <typename T>
T read_pod(const unsigned char* p) {
  T t;
  std::memcpy(&t, p, sizeof(T));
  return t;
}

}  // namespace

const char* to_string(MtraceError e) {
  switch (e) {
    case MtraceError::kNone: return "none";
    case MtraceError::kIo: return "io";
    case MtraceError::kTruncated: return "truncated";
    case MtraceError::kBadMagic: return "bad-magic";
    case MtraceError::kBadHeader: return "bad-header";
    case MtraceError::kBadSectionTable: return "bad-section-table";
    case MtraceError::kBadChecksum: return "bad-checksum";
    case MtraceError::kBadCounts: return "bad-counts";
    case MtraceError::kBadEvent: return "bad-event";
    case MtraceError::kBadVClock: return "bad-vclock";
    case MtraceError::kBadVarNames: return "bad-var-names";
    case MtraceError::kBadChannelTable: return "bad-channel-table";
    case MtraceError::kBadLinearization: return "bad-linearization";
  }
  return "unknown";
}

// ---- Writer ----------------------------------------------------------------

namespace {

/// Stream wrapper tracking the absolute file position so sections can be
/// zero-padded up to their 8-aligned offsets.
struct SectionWriter {
  std::ostream& os;
  std::uint64_t pos = 0;

  void write(const void* p, std::size_t n) {
    os.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
    pos += n;
  }
  void pad_to(std::uint64_t off) {
    static constexpr char kZeros[8] = {0};
    HBCT_DASSERT(off >= pos && off - pos < 8);
    write(kZeros, static_cast<std::size_t>(off - pos));
  }
};

struct ChannelRef {
  std::uint32_t dir;  // 0 = sends, 1 = recvs
  ProcId owner;
  ProcId peer;
};

}  // namespace

void write_mtrace(std::ostream& os, const Computation& c) {
  HBCT_ASSERT_MSG(c.trimmed_events() == 0,
                  "prefix-GC'd computations cannot be serialized");
  const ProcId n = c.num_procs();
  const std::int32_t nv = c.num_vars();
  const std::int64_t total = c.total_events();
  HBCT_ASSERT_MSG(n <= kMaxMtraceProcs && nv <= kMaxMtraceVars,
                  "computation exceeds mtrace v1 caps");

  // Pass 1: pool sizes. Identical labels are deduplicated into one blob
  // entry; the map doubles as the offset table for the event pass.
  std::unordered_map<std::string, std::uint32_t> label_offs;
  std::string labels;
  std::uint64_t nwrites = 0;
  for (ProcId i = 0; i < n; ++i)
    for (EventIndex k = 1; k <= c.num_events(i); ++k) {
      const EventView ev = c.event_view(i, k);
      nwrites += ev.num_writes();
      if (!ev.label.empty()) {
        auto [it, fresh] = label_offs.try_emplace(
            std::string(ev.label), static_cast<std::uint32_t>(labels.size()));
        if (fresh) labels.append(ev.label);
      }
    }
  HBCT_ASSERT_MSG(nwrites <= UINT32_MAX && labels.size() <= UINT32_MAX,
                  "write/label pools exceed the 32-bit mtrace ranges");

  std::vector<ChannelRef> channels;
  for (ProcId i = 0; i < n; ++i)
    for (ProcId j = 0; j < n; ++j) {
      if (c.sends_up_to(i, j, c.num_events(i)) > 0) channels.push_back({0, i, j});
      if (c.recvs_up_to(i, j, c.num_events(i)) > 0) channels.push_back({1, i, j});
    }

  // Section layout (ids in file order; every offset 8-aligned).
  std::uint64_t sec_bytes[kNumSections + 1] = {0};
  sec_bytes[kSecProcCounts] = 8u * static_cast<std::uint64_t>(n);
  sec_bytes[kSecEvents] = sizeof(PackedEvent) * static_cast<std::uint64_t>(total);
  sec_bytes[kSecVClocks] =
      4u * static_cast<std::uint64_t>(total) * static_cast<std::uint64_t>(n);
  sec_bytes[kSecWrites] = sizeof(PackedWrite) * nwrites;
  sec_bytes[kSecLabels] = labels.size();
  sec_bytes[kSecVarNames] = 0;
  for (VarId v = 0; v < nv; ++v)
    sec_bytes[kSecVarNames] += 4u + c.var_name(v).size();
  sec_bytes[kSecValues] = 8u * static_cast<std::uint64_t>(nv) *
                          (static_cast<std::uint64_t>(total) +
                           static_cast<std::uint64_t>(n));
  sec_bytes[kSecChannels] = 4;
  for (const ChannelRef& ch : channels)
    sec_bytes[kSecChannels] +=
        16u + 4u * (static_cast<std::uint64_t>(c.num_events(ch.owner)) + 1);
  sec_bytes[kSecLinearization] = 8u * static_cast<std::uint64_t>(total);

  SectionEntry table[kNumSections];
  std::uint64_t cursor = kFirstSectionOffset;
  for (std::uint32_t id = 1; id <= kNumSections; ++id) {
    cursor = align8(cursor);
    table[id - 1] = SectionEntry{id, 0, cursor, sec_bytes[id]};
    cursor += sec_bytes[id];
  }

  Header h{};
  std::memcpy(h.magic, kMtraceMagic.data(), 8);
  h.version = kMtraceVersion;
  h.header_bytes = sizeof(Header);
  h.nprocs = n;
  h.nvars = nv;
  h.total_events = total;
  h.num_messages = c.num_messages();
  h.section_count = kNumSections;
  h.table_checksum = fnv1a(table, sizeof(table));
  h.flags = 0;

  SectionWriter out{os};
  out.write(&h, sizeof(h));
  out.write(table, sizeof(table));

  // 1 ProcCounts
  out.pad_to(table[kSecProcCounts - 1].offset);
  for (ProcId i = 0; i < n; ++i) {
    const std::int64_t cnt = c.num_events(i);
    out.write(&cnt, 8);
  }

  // 2 Events
  out.pad_to(table[kSecEvents - 1].offset);
  std::uint32_t wpos = 0;
  for (ProcId i = 0; i < n; ++i)
    for (EventIndex k = 1; k <= c.num_events(i); ++k) {
      const EventView ev = c.event_view(i, k);
      PackedEvent pe;
      pe.kind = static_cast<std::uint8_t>(ev.kind);
      pe.peer = ev.peer;
      pe.msg = ev.msg;
      pe.writes_begin = wpos;
      wpos += static_cast<std::uint32_t>(ev.num_writes());
      pe.writes_end = wpos;
      if (!ev.label.empty()) {
        pe.label_off = label_offs.at(std::string(ev.label));
        pe.label_len = static_cast<std::uint32_t>(ev.label.size());
      }
      out.write(&pe, sizeof(pe));
    }

  // 3 VClocks — both storage modes keep each process's clock rows
  // contiguous, so this is one bulk write per process.
  out.pad_to(table[kSecVClocks - 1].offset);
  for (ProcId i = 0; i < n; ++i)
    if (c.num_events(i) > 0)
      out.write(c.vclock(i, 1).data(),
                4u * static_cast<std::size_t>(c.num_events(i)) *
                    static_cast<std::size_t>(n));

  // 4 Writes
  out.pad_to(table[kSecWrites - 1].offset);
  for (ProcId i = 0; i < n; ++i)
    for (EventIndex k = 1; k <= c.num_events(i); ++k) {
      const EventView ev = c.event_view(i, k);
      for (std::size_t w = 0; w < ev.num_writes(); ++w) {
        const Assignment a = ev.write_at(w);
        const PackedWrite pw{a.value, a.var, 0};
        out.write(&pw, sizeof(pw));
      }
    }

  // 5 Labels
  out.pad_to(table[kSecLabels - 1].offset);
  out.write(labels.data(), labels.size());

  // 6 VarNames
  out.pad_to(table[kSecVarNames - 1].offset);
  for (VarId v = 0; v < nv; ++v) {
    const std::string& name = c.var_name(v);
    const std::uint32_t len = static_cast<std::uint32_t>(name.size());
    out.write(&len, 4);
    out.write(name.data(), name.size());
  }

  // 7 Values
  out.pad_to(table[kSecValues - 1].offset);
  for (ProcId i = 0; i < n; ++i)
    for (VarId v = 0; v < nv; ++v) {
      const TimelineView tl = c.value_timeline(i, v);
      out.write(tl.data(), 8u * tl.size());
    }

  // 8 Channels
  out.pad_to(table[kSecChannels - 1].offset);
  const std::uint32_t ntables = static_cast<std::uint32_t>(channels.size());
  out.write(&ntables, 4);
  std::vector<std::int32_t> prefix;
  for (const ChannelRef& ch : channels) {
    const std::uint32_t head[4] = {ch.dir, static_cast<std::uint32_t>(ch.owner),
                                   static_cast<std::uint32_t>(ch.peer), 0};
    out.write(head, sizeof(head));
    const EventIndex cnt = c.num_events(ch.owner);
    prefix.assign(static_cast<std::size_t>(cnt) + 1, 0);
    for (EventIndex k = 0; k <= cnt; ++k)
      prefix[static_cast<std::size_t>(k)] =
          ch.dir == 0 ? c.sends_up_to(ch.owner, ch.peer, k)
                      : c.recvs_up_to(ch.owner, ch.peer, k);
    out.write(prefix.data(), 4u * prefix.size());
  }

  // 9 Linearization — EventId's {i32 proc, i32 index} layout is the wire
  // layout (asserted), so the whole order is one write.
  out.pad_to(table[kSecLinearization - 1].offset);
  static_assert(sizeof(EventId) == 8 && std::is_trivially_copyable_v<EventId>);
  out.write(c.linearization().data(), 8u * c.linearization().size());

  HBCT_DASSERT(out.pos == cursor);
}

std::string mtrace_to_string(const Computation& c) {
  std::ostringstream os;
  write_mtrace(os, c);
  return std::move(os).str();
}

bool write_mtrace_file(const std::string& path, const Computation& c,
                       std::string* error) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) {
    if (error) *error = "cannot open for writing: " + path;
    return false;
  }
  write_mtrace(os, c);
  os.flush();
  if (!os) {
    if (error) *error = "write failed: " + path;
    return false;
  }
  return true;
}

// ---- Loader ----------------------------------------------------------------

namespace {

MtraceLoadResult fail(MtraceError code, std::string msg) {
  MtraceLoadResult r;
  r.code = code;
  r.error = std::move(msg);
  return r;
}

/// count elements of size elem fit exactly in sec_bytes (overflow-safe: the
/// product is only formed once count <= sec_bytes / elem bounds it).
bool sec_holds_exactly(std::uint64_t sec_bytes, std::uint64_t count,
                       std::uint64_t elem) {
  return count <= sec_bytes / elem && sec_bytes == count * elem;
}

/// Full validation pass over `size` bytes at `backing`, then arena + view
/// Computation construction. Every check fires before any derived pointer is
/// dereferenced, so a malformed buffer yields a typed error, never a fault.
MtraceLoadResult parse_mtrace(std::shared_ptr<const void> backing,
                              std::uint64_t size) {
  const auto* base = static_cast<const unsigned char*>(backing.get());

  if (size < sizeof(Header))
    return fail(MtraceError::kTruncated,
                strfmt("file of %llu bytes is shorter than the 64-byte header",
                       static_cast<unsigned long long>(size)));
  const Header h = read_pod<Header>(base);
  if (std::memcmp(h.magic, kMtraceMagic.data(), 8) != 0)
    return fail(MtraceError::kBadMagic, "magic is not HBCTMTR1");
  if (h.version != kMtraceVersion)
    return fail(MtraceError::kBadHeader, strfmt("unsupported version %u", h.version));
  if (h.header_bytes != sizeof(Header) || h.flags != 0 ||
      h.section_count != kNumSections)
    return fail(MtraceError::kBadHeader, "bad header_bytes/flags/section_count");
  if (h.nprocs < 0 || h.nprocs > kMaxMtraceProcs || h.nvars < 0 ||
      h.nvars > kMaxMtraceVars)
    return fail(MtraceError::kBadHeader, "nprocs/nvars out of range");
  if (h.total_events < 0 || h.num_messages < 0 ||
      h.num_messages > h.total_events)
    return fail(MtraceError::kBadHeader, "negative or inconsistent event totals");

  if (size < kFirstSectionOffset)
    return fail(MtraceError::kTruncated, "file ends inside the section table");
  if (fnv1a(base + kTableOffset, kTableBytes) != h.table_checksum)
    return fail(MtraceError::kBadChecksum, "section-table checksum mismatch");

  std::uint64_t off[kNumSections + 1] = {0};
  std::uint64_t bytes[kNumSections + 1] = {0};
  bool seen_sec[kNumSections + 1] = {false};
  for (int s = 0; s < kNumSections; ++s) {
    const SectionEntry e =
        read_pod<SectionEntry>(base + kTableOffset + s * sizeof(SectionEntry));
    if (e.id < 1 || e.id > kNumSections || seen_sec[e.id])
      return fail(MtraceError::kBadSectionTable,
                  strfmt("entry %d has unknown or duplicate id %u", s, e.id));
    if (e.offset % 8 != 0 || e.offset < kFirstSectionOffset ||
        e.offset > size || e.bytes > size - e.offset)
      return fail(MtraceError::kBadSectionTable,
                  strfmt("section %u range [%llu, +%llu) invalid for a %llu-byte file",
                         e.id, static_cast<unsigned long long>(e.offset),
                         static_cast<unsigned long long>(e.bytes),
                         static_cast<unsigned long long>(size)));
    seen_sec[e.id] = true;
    off[e.id] = e.offset;
    bytes[e.id] = e.bytes;
  }
  // Sections must not overlap (the arena would alias otherwise).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> spans;
  for (std::uint32_t id = 1; id <= kNumSections; ++id)
    spans.emplace_back(off[id], bytes[id]);
  std::sort(spans.begin(), spans.end());
  for (std::size_t s = 1; s < spans.size(); ++s)
    if (spans[s].first < spans[s - 1].first + spans[s - 1].second)
      return fail(MtraceError::kBadSectionTable, "sections overlap");

  const std::uint64_t n = static_cast<std::uint64_t>(h.nprocs);
  const std::uint64_t nv = static_cast<std::uint64_t>(h.nvars);
  const std::uint64_t total = static_cast<std::uint64_t>(h.total_events);

  // 1 ProcCounts
  if (!sec_holds_exactly(bytes[kSecProcCounts], n, 8))
    return fail(MtraceError::kBadCounts, "ProcCounts section size != 8 * nprocs");
  std::vector<EventIndex> counts(n);
  std::uint64_t sum = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::int64_t cnt = read_pod<std::int64_t>(base + off[kSecProcCounts] + 8 * i);
    if (cnt < 0 || cnt >= INT32_MAX)
      return fail(MtraceError::kBadCounts,
                  strfmt("process %llu count out of range",
                         static_cast<unsigned long long>(i)));
    counts[i] = static_cast<EventIndex>(cnt);
    sum += static_cast<std::uint64_t>(cnt);
  }
  if (sum != total)
    return fail(MtraceError::kBadCounts,
                "per-process counts do not sum to total_events");

  // Fixed-stride sections sized purely by the (now validated) counts.
  if (!sec_holds_exactly(bytes[kSecEvents], total, sizeof(PackedEvent)))
    return fail(MtraceError::kBadSectionTable, "Events section size mismatch");
  if (n > 0 && !sec_holds_exactly(bytes[kSecVClocks], total * n, 4))
    return fail(MtraceError::kBadSectionTable, "VClocks section size mismatch");
  if (n == 0 && bytes[kSecVClocks] != 0)
    return fail(MtraceError::kBadSectionTable, "VClocks section size mismatch");
  if (bytes[kSecWrites] % sizeof(PackedWrite) != 0)
    return fail(MtraceError::kBadSectionTable, "Writes section size mismatch");
  const std::uint64_t npool_writes = bytes[kSecWrites] / sizeof(PackedWrite);
  if (nv > 0 && !sec_holds_exactly(bytes[kSecValues], nv * (total + n), 8))
    return fail(MtraceError::kBadSectionTable, "Values section size mismatch");
  if (nv == 0 && bytes[kSecValues] != 0)
    return fail(MtraceError::kBadSectionTable, "Values section size mismatch");
  if (!sec_holds_exactly(bytes[kSecLinearization], total, 8))
    return fail(MtraceError::kBadSectionTable,
                "Linearization section size mismatch");

  // 6 VarNames: the {len, bytes} walk must tile the section exactly.
  std::vector<std::string> var_names;
  var_names.reserve(nv);
  {
    const unsigned char* nb = base + off[kSecVarNames];
    std::uint64_t p = 0;
    std::unordered_set<std::string_view> uniq;
    for (std::uint64_t v = 0; v < nv; ++v) {
      if (bytes[kSecVarNames] - p < 4)
        return fail(MtraceError::kBadVarNames, "VarNames section truncated");
      const std::uint32_t len = read_pod<std::uint32_t>(nb + p);
      p += 4;
      if (len == 0 || len > kMaxVarNameBytes || bytes[kSecVarNames] - p < len)
        return fail(MtraceError::kBadVarNames,
                    strfmt("variable %llu has bad name length %u",
                           static_cast<unsigned long long>(v), len));
      var_names.emplace_back(reinterpret_cast<const char*>(nb + p), len);
      if (!uniq.insert(var_names.back()).second)
        return fail(MtraceError::kBadVarNames,
                    "duplicate variable name " + var_names.back());
      p += len;
    }
    if (p != bytes[kSecVarNames])
      return fail(MtraceError::kBadVarNames,
                  "trailing bytes after the last variable name");
  }

  // 4 Writes pool: every var id must resolve.
  {
    const unsigned char* wb = base + off[kSecWrites];
    for (std::uint64_t w = 0; w < npool_writes; ++w) {
      const PackedWrite pw = read_pod<PackedWrite>(wb + w * sizeof(PackedWrite));
      if (pw.var < 0 || static_cast<std::uint64_t>(pw.var) >= nv)
        return fail(MtraceError::kBadEvent,
                    strfmt("write %llu references unknown variable %d",
                           static_cast<unsigned long long>(w), pw.var));
    }
  }

  // 2 Events: kinds, peers, pool ranges; count the sends.
  {
    const unsigned char* eb = base + off[kSecEvents];
    std::uint64_t sends_seen = 0;
    for (std::uint64_t t = 0; t < total; ++t) {
      const PackedEvent pe = read_pod<PackedEvent>(eb + t * sizeof(PackedEvent));
      const auto kind = static_cast<EventKind>(pe.kind);
      if (pe.kind > static_cast<std::uint8_t>(EventKind::kReceive))
        return fail(MtraceError::kBadEvent,
                    strfmt("event %llu has unknown kind %u",
                           static_cast<unsigned long long>(t), pe.kind));
      if (kind == EventKind::kInternal) {
        if (pe.peer != -1 || pe.msg != kNoMsg)
          return fail(MtraceError::kBadEvent, "internal event with peer/msg");
      } else {
        if (pe.peer < 0 || static_cast<std::uint64_t>(pe.peer) >= n ||
            pe.msg < 0)
          return fail(MtraceError::kBadEvent, "send/receive peer or msg invalid");
        if (kind == EventKind::kSend) ++sends_seen;
      }
      if (pe.writes_begin > pe.writes_end || pe.writes_end > npool_writes)
        return fail(MtraceError::kBadEvent, "event write range exceeds pool");
      if (static_cast<std::uint64_t>(pe.label_off) + pe.label_len >
          bytes[kSecLabels])
        return fail(MtraceError::kBadEvent, "event label range exceeds pool");
    }
    if (sends_seen != static_cast<std::uint64_t>(h.num_messages))
      return fail(MtraceError::kBadCounts,
                  "send events do not match header num_messages");
  }

  // 3 VClocks: every entry in [0, counts[j]] (detectors index by clock
  // values, so this is a memory-safety bound, not just hygiene) and the
  // diagonal must equal the event's own index.
  {
    const auto* vb = reinterpret_cast<const std::int32_t*>(base + off[kSecVClocks]);
    // This is the largest section (4 * total_events * n bytes), so the scan
    // is the load's hot loop. An entry is invalid iff (u32)vc[j] >
    // (u32)counts[j] — negatives wrap past any valid count — and the flag
    // is accumulated branchlessly so the row loop vectorizes; the precise
    // diagnosis only runs on the cold failure path.
    std::vector<std::uint32_t> limits(n);
    for (std::uint64_t j = 0; j < n; ++j)
      limits[j] = static_cast<std::uint32_t>(counts[j]);
    std::uint64_t row = 0;
    for (std::uint64_t i = 0; i < n; ++i)
      for (EventIndex k = 1; k <= counts[i]; ++k, ++row) {
        const std::int32_t* vc = vb + row * n;
        std::uint32_t bad = vc[i] != k ? 1u : 0u;
        for (std::uint64_t j = 0; j < n; ++j)
          bad |= static_cast<std::uint32_t>(vc[j]) > limits[j] ? 1u : 0u;
        if (bad != 0) {
          if (vc[i] != k)
            return fail(MtraceError::kBadVClock, "clock diagonal mismatch");
          return fail(MtraceError::kBadVClock, "clock entry out of range");
        }
      }
  }

  auto arena = std::make_shared<MappedArena>();
  arena->backing = backing;
  arena->nprocs = h.nprocs;
  arena->nvars = h.nvars;
  arena->total_events = h.total_events;
  arena->num_messages = h.num_messages;
  arena->counts = counts;
  arena->writes_pool = reinterpret_cast<const PackedWrite*>(base + off[kSecWrites]);
  arena->labels_pool = reinterpret_cast<const char*>(base + off[kSecLabels]);

  arena->events.resize(n);
  arena->vclocks.resize(n);
  arena->values.resize(n * nv);
  {
    const auto* eb = reinterpret_cast<const PackedEvent*>(base + off[kSecEvents]);
    const auto* vb = reinterpret_cast<const std::int32_t*>(base + off[kSecVClocks]);
    const auto* tb = reinterpret_cast<const std::int64_t*>(base + off[kSecValues]);
    std::uint64_t epos = 0, tpos = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      arena->events[i] = eb + epos;
      arena->vclocks[i] = vb + epos * n;
      epos += static_cast<std::uint64_t>(counts[i]);
      for (std::uint64_t v = 0; v < nv; ++v) {
        arena->values[i * nv + v] = tb + tpos;
        tpos += static_cast<std::uint64_t>(counts[i]) + 1;
      }
    }
  }

  // 8 Channels: walked sequentially; each table is bounds-checked before its
  // prefix counters are trusted (counters must start at 0 and step by 0/1 —
  // one event adds at most one message to one channel).
  if (bytes[kSecChannels] < 4)
    return fail(MtraceError::kBadChannelTable, "Channels section truncated");
  {
    const unsigned char* cb = base + off[kSecChannels];
    const std::uint32_t ntables = read_pod<std::uint32_t>(cb);
    std::uint64_t p = 4;
    if (ntables > 2 * n * n)
      return fail(MtraceError::kBadChannelTable, "more channel tables than channels");
    if (ntables > 0) {
      arena->sends.assign(n * n, nullptr);
      arena->recvs.assign(n * n, nullptr);
    }
    for (std::uint32_t t = 0; t < ntables; ++t) {
      if (bytes[kSecChannels] - p < 16)
        return fail(MtraceError::kBadChannelTable, "Channels section truncated");
      const std::uint32_t dir = read_pod<std::uint32_t>(cb + p);
      const std::uint32_t owner = read_pod<std::uint32_t>(cb + p + 4);
      const std::uint32_t peer = read_pod<std::uint32_t>(cb + p + 8);
      p += 16;
      if (dir > 1 || owner >= n || peer >= n)
        return fail(MtraceError::kBadChannelTable,
                    strfmt("table %u has bad dir/owner/peer", t));
      const std::uint64_t entries =
          static_cast<std::uint64_t>(counts[owner]) + 1;
      if ((bytes[kSecChannels] - p) / 4 < entries)
        return fail(MtraceError::kBadChannelTable,
                    strfmt("table %u exceeds the section", t));
      const auto* vals = reinterpret_cast<const std::int32_t*>(cb + p);
      p += 4 * entries;
      if (vals[0] != 0)
        return fail(MtraceError::kBadChannelTable, "prefix counter not 0 at pos 0");
      for (std::uint64_t k = 1; k < entries; ++k)
        if (vals[k] != vals[k - 1] && vals[k] != vals[k - 1] + 1)
          return fail(MtraceError::kBadChannelTable,
                      "prefix counter not monotone with unit steps");
      if (vals[entries - 1] == 0)
        return fail(MtraceError::kBadChannelTable,
                    "all-zero table for an inactive channel");
      auto& slot = (dir == 0 ? arena->sends : arena->recvs)[owner * n + peer];
      if (slot != nullptr)
        return fail(MtraceError::kBadChannelTable,
                    strfmt("duplicate table for channel %u/%u", owner, peer));
      slot = vals;
    }
    if (p != bytes[kSecChannels])
      return fail(MtraceError::kBadChannelTable,
                  "trailing bytes after the last channel table");
  }
  if (arena->sends.empty()) {
    arena->sends.assign(n * n, nullptr);
    arena->recvs.assign(n * n, nullptr);
  }

  // 9 Linearization: a per-process-ordered permutation of all events.
  {
    const auto* lp = reinterpret_cast<const std::int32_t*>(base + off[kSecLinearization]);
    std::vector<EventIndex> seen(n, 0);
    for (std::uint64_t t = 0; t < total; ++t) {
      const std::int32_t proc = lp[2 * t];
      const std::int32_t idx = lp[2 * t + 1];
      if (proc < 0 || static_cast<std::uint64_t>(proc) >= n)
        return fail(MtraceError::kBadLinearization, "linearization proc out of range");
      if (idx != seen[static_cast<std::uint64_t>(proc)] + 1 ||
          idx > counts[static_cast<std::uint64_t>(proc)])
        return fail(MtraceError::kBadLinearization,
                    "linearization skips or repeats an event");
      seen[static_cast<std::uint64_t>(proc)] = idx;
    }
    arena->linearization = reinterpret_cast<const EventId*>(base + off[kSecLinearization]);
  }

  MtraceLoadResult r;
  r.ok = true;
  r.computation = Computation::from_arena(std::move(arena), std::move(var_names));
  return r;
}

}  // namespace

MtraceLoadResult mtrace_from_bytes(std::string_view data) {
  const std::uint64_t size = data.size();
  // Copy into 8-aligned owned storage so section pointers satisfy the
  // alignment the wire format guarantees for files.
  std::shared_ptr<std::uint64_t[]> buf(new std::uint64_t[size / 8 + 1]);
  std::memcpy(buf.get(), data.data(), size);
  return parse_mtrace(std::shared_ptr<const void>(buf, buf.get()), size);
}

MtraceLoadResult load_mtrace(const std::string& path, MtraceMode mode) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return fail(MtraceError::kIo, "cannot open " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return fail(MtraceError::kIo, "cannot stat " + path);
  }
  const std::uint64_t size = static_cast<std::uint64_t>(st.st_size);

  if (mode == MtraceMode::kMap && size > 0) {
    // MAP_POPULATE prefaults the whole file in one batch — the validation
    // scan reads every section anyway, and batched faults beat per-page
    // minor faults by a wide margin on multi-hundred-MB traces. Not
    // portable beyond Linux, so fall back to a plain mapping if refused.
#ifdef MAP_POPULATE
    void* p =
        ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE | MAP_POPULATE, fd, 0);
    if (p == MAP_FAILED)
      p = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
#else
    void* p = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
#endif
    if (p != MAP_FAILED) {
      ::close(fd);
      std::shared_ptr<const void> backing(
          p, [size](const void* q) { ::munmap(const_cast<void*>(q), size); });
      return parse_mtrace(std::move(backing), size);
    }
    // mmap unavailable (e.g. special filesystem): fall through to the copy
    // path rather than failing the load.
  }

  std::shared_ptr<std::uint64_t[]> buf(new std::uint64_t[size / 8 + 1]);
  auto* dst = reinterpret_cast<unsigned char*>(buf.get());
  std::uint64_t got = 0;
  while (got < size) {
    const ssize_t r = ::pread(fd, dst + got, size - got, static_cast<off_t>(got));
    if (r <= 0) {
      ::close(fd);
      return fail(MtraceError::kIo, "short read on " + path);
    }
    got += static_cast<std::uint64_t>(r);
  }
  ::close(fd);
  return parse_mtrace(std::shared_ptr<const void>(buf, buf.get()), size);
}

}  // namespace hbct
