// Binary, mmap-able trace format "hbct-mtrace v1" (zero-copy ingestion).
//
// The text (hbct-trace) and record-stream (hbct-btrace) formats serialize
// the linearization and *recompute* every derived table on load — O(|E|)
// parsing and O(|E|) allocations. mtrace instead stores the computation in
// its in-memory arena layout: fixed-width packed events, the stride-n
// vector-clock table, variable timelines and channel prefix counters, each
// in its own 8-aligned section. Loading is a validation scan plus pointer
// arithmetic; the resulting Computation is a zero-copy *view* borrowing
// from the mapping (Computation::is_view(), poset/arena.h) and performs
// O(procs + vars) heap allocations regardless of event count.
//
// Wire grammar (little-endian throughout; DESIGN.md §15 has the rationale):
//
//   header (64 bytes):
//     char     magic[8]        "HBCTMTR1"
//     u32      version         1
//     u32      header_bytes    64
//     i32      nprocs          0 <= nprocs <= kMaxMtraceProcs
//     i32      nvars           0 <= nvars  <= kMaxMtraceVars
//     i64      total_events    sum of per-process counts
//     i64      num_messages    number of send events
//     u64      section_count   9 (exactly, in v1)
//     u64      table_checksum  FNV-1a 64 over the raw section-table bytes
//     u64      flags           0
//   section table: section_count entries of 24 bytes
//     { u32 id; u32 reserved; u64 offset; u64 bytes }
//     offsets are absolute, 8-aligned, non-overlapping, within the file.
//   sections (by id; every id appears exactly once):
//     1 ProcCounts     i64[nprocs]
//     2 Events         PackedEvent[total_events], process-major
//     3 VClocks        i32[total_events * nprocs], process-major rows
//     4 Writes         PackedWrite[W] — pool referenced by event ranges
//     5 Labels         byte blob — pool referenced by event ranges
//     6 VarNames       nvars x { u32 len; char bytes[len] }, packed
//     7 Values         i64 timelines, process-major then var-major,
//                      counts[i] + 1 entries each
//     8 Channels       u32 ntables; per table { u32 dir (0 send / 1 recv);
//                      u32 owner; u32 peer; u32 reserved;
//                      i32 prefix[counts[owner] + 1] }
//     9 Linearization  { i32 proc; i32 index }[total_events]
//
// The loader never trusts the file: every offset, range, count, index and
// per-event field is bounds-checked in one O(total + writes + n^2) pass
// before any pointer is handed to a Computation, and every failure is a
// typed MtraceError — malformed input can not crash or over-read
// (tests/test_trace_fuzz.cpp). Semantic clock *validity* beyond the checked
// invariants is the producer's contract, exactly as for hbct-btrace;
// Computation::validate() remains the exhaustive check.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "poset/computation.h"

namespace hbct {

inline constexpr std::string_view kMtraceMagic = "HBCTMTR1";
inline constexpr std::uint32_t kMtraceVersion = 1;

/// v1 caps. The dense per-channel pointer matrices the view mode uses are
/// n^2-sized, so process count is capped where that stays cheap; both caps
/// also bound what a malicious header can make the loader allocate.
inline constexpr std::int32_t kMaxMtraceProcs = 4096;
inline constexpr std::int32_t kMaxMtraceVars = 4096;

/// Typed loader failures (never exceptions, never crashes).
enum class MtraceError : std::uint8_t {
  kNone,
  kIo,               // open/read/mmap failure
  kTruncated,        // file shorter than header + section table
  kBadMagic,
  kBadHeader,        // version/size/count fields out of range
  kBadSectionTable,  // unknown/duplicate id, misaligned or out-of-file range
  kBadChecksum,      // section table does not hash to header checksum
  kBadCounts,        // per-process counts inconsistent with total/messages
  kBadEvent,         // kind/peer/msg/writes/label field out of range
  kBadVClock,        // clock entry out of range or diagonal mismatch
  kBadVarNames,      // name walk does not tile the section, or duplicates
  kBadChannelTable,  // channel walk out of range, bad dir/owner/peer, dup
  kBadLinearization, // not a per-process-ordered permutation of all events
};

const char* to_string(MtraceError e);

struct MtraceLoadResult {
  bool ok = false;
  MtraceError code = MtraceError::kNone;
  std::string error;        // human-readable detail
  Computation computation;  // view-mode; valid only when ok
};

/// How load_mtrace acquires the bytes. kMap mmaps the file (falling back to
/// a buffered read when mmap is unavailable); kCopy always reads into an
/// owned, 8-aligned buffer.
enum class MtraceMode : std::uint8_t { kMap, kCopy };

// ---- Writing ---------------------------------------------------------------

/// Serializes `c` (either storage mode; prefix-GC'd computations are not
/// writable) in hbct-mtrace v1 form. Identical labels share one pool entry.
void write_mtrace(std::ostream& os, const Computation& c);
std::string mtrace_to_string(const Computation& c);

/// Convenience file writer; returns false and fills *error on IO failure.
bool write_mtrace_file(const std::string& path, const Computation& c,
                       std::string* error = nullptr);

// ---- Loading ---------------------------------------------------------------

/// Validates and wraps an mtrace file as a zero-copy view Computation.
MtraceLoadResult load_mtrace(const std::string& path,
                             MtraceMode mode = MtraceMode::kMap);

/// Same, over an in-memory buffer (copied once into aligned storage): the
/// round-trip tests' and the fuzzer's entry point.
MtraceLoadResult mtrace_from_bytes(std::string_view bytes);

}  // namespace hbct
