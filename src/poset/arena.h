// Arena-backed storage for zero-copy Computation views.
//
// The hbct-mtrace v1 format (poset/mtrace.h) lays a whole computation out as
// flat, 8-aligned sections — packed event records, the stride-n vector-clock
// table, variable timelines, channel prefix counters — exactly the shape the
// detectors' inner loops already consume. A MappedArena points into such a
// section layout (an mmap'ed file or an owned buffer) and a Computation in
// *view mode* borrows from it instead of materializing per-event vectors:
// loading a million-event trace performs O(procs + vars) allocations, not
// O(events).
//
// Aliasing rules (DESIGN.md §15): the arena is immutable and shared via
// shared_ptr, so Computation copies remain valid and cheap; every pointer
// handed out (EventView labels, TimelineView, VClockView) is valid for the
// lifetime of any Computation holding the arena. View-mode computations are
// frozen — OnlineAppender refuses them — so, unlike owning computations,
// their views are never invalidated by growth.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <type_traits>
#include <vector>

#include "poset/event.h"
#include "util/assert.h"

namespace hbct {

/// Fixed-size event record of the mtrace Events section. Writes and labels
/// live in side pools referenced by [begin, end) / [off, off+len) ranges so
/// the record itself stays POD and constant-width.
struct PackedEvent {
  std::int32_t peer = -1;            // send: destination; recv: source
  std::int32_t msg = kNoMsg;         // kNoMsg for internal events
  std::uint32_t writes_begin = 0;    // range into the Writes pool
  std::uint32_t writes_end = 0;
  std::uint32_t label_off = 0;       // range into the Labels blob
  std::uint32_t label_len = 0;
  std::uint8_t kind = 0;             // EventKind numeric value
  std::uint8_t pad[7] = {0, 0, 0, 0, 0, 0, 0};
};
static_assert(sizeof(PackedEvent) == 32);
static_assert(std::is_trivially_copyable_v<PackedEvent>);

/// Fixed-size variable assignment of the mtrace Writes section.
struct PackedWrite {
  std::int64_t value = 0;
  std::int32_t var = 0;
  std::int32_t pad = 0;
};
static_assert(sizeof(PackedWrite) == 16);
static_assert(std::is_trivially_copyable_v<PackedWrite>);

/// Non-owning view of one event's payload, uniform over both Computation
/// storage modes: owning mode wraps the Event structs the builder made,
/// view mode decodes a PackedEvent against the arena's pools. Cheap to
/// copy; valid while the backing computation (and its arena) is alive.
class EventView {
 public:
  EventView() = default;
  explicit EventView(const Event& e)
      : kind(e.kind),
        peer(e.peer),
        msg(e.msg),
        label(e.label),
        owned_(e.writes.data()),
        nwrites_(e.writes.size()) {}
  EventView(const PackedEvent& e, const PackedWrite* writes_pool,
            const char* labels_pool)
      : kind(static_cast<EventKind>(e.kind)),
        peer(e.peer),
        msg(e.msg),
        label(labels_pool + e.label_off, e.label_len),
        packed_(writes_pool + e.writes_begin),
        nwrites_(e.writes_end - e.writes_begin) {}

  EventKind kind = EventKind::kInternal;
  ProcId peer = -1;
  MsgId msg = kNoMsg;
  std::string_view label;

  std::size_t num_writes() const { return nwrites_; }
  Assignment write_at(std::size_t k) const {
    HBCT_DASSERT(k < nwrites_);
    if (owned_ != nullptr) return owned_[k];
    return Assignment{packed_[k].var, packed_[k].value};
  }

 private:
  const Assignment* owned_ = nullptr;
  const PackedWrite* packed_ = nullptr;
  std::size_t nwrites_ = 0;
};

/// Non-owning {pointer, size} over one variable's precomputed timeline
/// (timeline[pos] = value after pos events; see value_timeline). Replaces
/// the old const vector& return so view-mode computations can hand out
/// arena rows directly.
class TimelineView {
 public:
  TimelineView() = default;
  TimelineView(const std::int64_t* p, std::size_t n) : p_(p), n_(n) {}

  std::size_t size() const { return n_; }
  std::int64_t operator[](std::size_t pos) const {
    HBCT_DASSERT(pos < n_);
    return p_[pos];
  }
  const std::int64_t* data() const { return p_; }

 private:
  const std::int64_t* p_ = nullptr;
  std::size_t n_ = 0;
};

/// Immutable pointer table over an mtrace section layout. Built once by the
/// mtrace loader after its validation pass; every pointer aims into
/// `backing` (an mmap'ed region or an owned copy of the file bytes), so the
/// arena owns no event data itself. All per-process tables are indexed by
/// ProcId; channel tables are dense n*n pointer matrices where nullptr
/// marks an inactive channel (mirroring the empty-inner-vector convention
/// of owning computations).
struct MappedArena {
  /// Keeps the mapped/owned bytes alive; the deleter unmaps or frees.
  std::shared_ptr<const void> backing;

  std::int32_t nprocs = 0;
  std::int32_t nvars = 0;
  std::int64_t total_events = 0;
  std::int64_t num_messages = 0;

  /// counts[i] = number of events of process i.
  std::vector<EventIndex> counts;
  /// events[i] points at counts[i] PackedEvents.
  std::vector<const PackedEvent*> events;
  /// vclocks[i] points at counts[i] stride-nprocs clock rows.
  std::vector<const std::int32_t*> vclocks;
  /// values[i * nvars + v] points at counts[i] + 1 timeline entries.
  std::vector<const std::int64_t*> values;
  /// sends[from * nprocs + to] / recvs[to * nprocs + from]: prefix-counter
  /// tables of counts[owner] + 1 entries, or nullptr when inactive.
  std::vector<const std::int32_t*> sends;
  std::vector<const std::int32_t*> recvs;
  /// Canonical linearization: total_events {proc, index} pairs.
  const EventId* linearization = nullptr;
  /// Shared pools referenced by PackedEvent ranges.
  const PackedWrite* writes_pool = nullptr;
  const char* labels_pool = nullptr;
};

using MappedArenaPtr = std::shared_ptr<const MappedArena>;

}  // namespace hbct
