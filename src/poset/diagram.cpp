#include "poset/diagram.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "util/string_util.h"

namespace hbct {

namespace {

std::string event_text(const Computation& c, const EventId& eid,
                       const DiagramOptions& opt) {
  const EventView ev = c.event_view(eid);
  std::ostringstream os;
  if (opt.show_labels && !ev.label.empty())
    os << ev.label;
  else
    os << "e" << eid.index;
  switch (ev.kind) {
    case EventKind::kInternal:
      break;
    case EventKind::kSend:
      os << ":S->P" << ev.peer << "(m" << ev.msg << ")";
      break;
    case EventKind::kReceive:
      os << ":R<-P" << ev.peer << "(m" << ev.msg << ")";
      break;
  }
  if (opt.show_writes)
    for (std::size_t k = 0; k < ev.num_writes(); ++k) {
      const Assignment a = ev.write_at(k);
      os << " " << c.var_name(a.var) << "=" << a.value;
    }
  return os.str();
}

}  // namespace

std::string render_diagram(const Computation& c, const DiagramOptions& opt) {
  const std::size_t n = static_cast<std::size_t>(c.num_procs());
  // One column per linearization slot keeps causal order visually
  // left-to-right; each column is as wide as its (single) cell.
  const std::int64_t total =
      std::min<std::int64_t>(c.total_events(), opt.max_events);

  std::vector<std::vector<std::string>> cells(
      n, std::vector<std::string>(static_cast<std::size_t>(total)));
  std::vector<std::size_t> col_width(static_cast<std::size_t>(total), 0);
  for (std::int64_t t = 0; t < total; ++t) {
    const EventId& eid = c.linearization()[static_cast<std::size_t>(t)];
    std::string text = event_text(c, eid, opt);
    col_width[static_cast<std::size_t>(t)] = text.size();
    cells[static_cast<std::size_t>(eid.proc)][static_cast<std::size_t>(t)] =
        std::move(text);
  }

  std::ostringstream os;
  for (std::size_t i = 0; i < n; ++i) {
    os << strfmt("P%-2zu |", i);
    for (std::int64_t t = 0; t < total; ++t) {
      const std::string& cell = cells[i][static_cast<std::size_t>(t)];
      os << " " << cell
         << std::string(col_width[static_cast<std::size_t>(t)] - cell.size(),
                        ' ');
    }
    os << "\n";
  }
  if (total < c.total_events())
    os << "... (" << (c.total_events() - total) << " more events)\n";
  return os.str();
}

}  // namespace hbct
