#include "poset/computation.h"

#include <algorithm>
#include <cstring>
#include <mutex>

#include "util/assert.h"

namespace hbct {

namespace {
std::size_t sz(std::int32_t v) { return static_cast<std::size_t>(v); }
}  // namespace

const Event& Computation::event(ProcId i, EventIndex idx) const {
  HBCT_DASSERT(!is_view());  // event() needs owning storage; use event_view()
  HBCT_DASSERT(i >= 0 && i < num_procs());
  HBCT_DASSERT(idx >= trimmed(i) + 1 && idx <= num_events(i));
  return procs_[sz(i)][sz(idx - 1 - trimmed(i))];
}

EventView Computation::event_view(ProcId i, EventIndex idx) const {
  HBCT_DASSERT(i >= 0 && i < num_procs());
  HBCT_DASSERT(idx >= trimmed(i) + 1 && idx <= num_events(i));
  if (arena_)
    return EventView(arena_->events[sz(i)][sz(idx - 1)], arena_->writes_pool,
                     arena_->labels_pool);
  return EventView(procs_[sz(i)][sz(idx - 1 - trimmed(i))]);
}

VClockView Computation::vclock(ProcId i, EventIndex idx) const {
  HBCT_DASSERT(idx >= vclock_base(i) && idx <= num_events(i));
  const std::size_t n = procs_.size();
  if (arena_) return VClockView(arena_->vclocks[sz(i)] + sz(idx - 1) * n, n);
  return VClockView(vclocks_[sz(i)].data() + sz(idx - vclock_base(i)) * n, n);
}

VClockView Computation::reverse_vclock(ProcId i, EventIndex idx) const {
  HBCT_DASSERT(idx >= 1 && idx <= num_events(i));
  HBCT_DASSERT(trimmed_events_ == 0);
  if (rvcache_.dirty.load(std::memory_order_acquire)) {
    // Double-checked: concurrent readers (parallel detection branches) may
    // race to refresh after an online append. The mutex is global — refresh
    // is rare and the fast path above stays lock-free.
    static std::mutex mu;
    std::lock_guard<std::mutex> lk(mu);
    if (rvcache_.dirty.load(std::memory_order_relaxed)) compute_rvclocks();
  }
  const std::size_t n = procs_.size();
  return VClockView(rvcache_.clocks[sz(i)].data() + sz(idx - 1) * n, n);
}

bool Computation::happened_before(EventId e, EventId f) const {
  if (e.proc == f.proc) return e.index < f.index;
  // e -> f iff f's clock has seen at least e.index events of e.proc.
  return vclock(f)[sz(e.proc)] >= e.index;
}

bool Computation::concurrent(EventId e, EventId f) const {
  if (e.proc == f.proc) return false;
  return !happened_before(e, f) && !happened_before(f, e);
}

std::optional<VarId> Computation::var_id(std::string_view name) const {
  auto it = var_ids_.find(std::string(name));
  if (it == var_ids_.end()) return std::nullopt;
  return it->second;
}

const std::string& Computation::var_name(VarId v) const {
  HBCT_ASSERT(v >= 0 && v < num_vars());
  return var_names_[sz(v)];
}

std::int64_t Computation::value_at(ProcId i, VarId v, EventIndex pos) const {
  HBCT_DASSERT(i >= 0 && i < num_procs());
  HBCT_DASSERT(v >= 0 && v < num_vars());
  HBCT_DASSERT(pos >= trimmed(i) && pos <= num_events(i));
  if (arena_) return arena_timeline(i, v)[sz(pos)];
  return values_[sz(i)][sz(v)][sz(pos - trimmed(i))];
}

std::int32_t Computation::in_transit(ProcId from, ProcId to, const Cut& g) const {
  HBCT_DASSERT(from >= 0 && from < num_procs());
  HBCT_DASSERT(to >= 0 && to < num_procs());
  if (!channel_active(from, to)) return 0;
  const std::int32_t sent = sends_up_to(from, to, g[sz(from)]);
  const std::int32_t rcvd = recvs_up_to(to, from, g[sz(to)]);
  HBCT_DASSERT(sent >= rcvd);
  return sent - rcvd;
}

std::int64_t Computation::in_transit_total(const Cut& g) const {
  std::int64_t t = 0;
  for (ProcId i = 0; i < num_procs(); ++i)
    for (ProcId j = 0; j < num_procs(); ++j)
      if (channel_active(i, j)) t += in_transit(i, j, g);
  return t;
}

Cut Computation::final_cut() const {
  Cut f(sz(num_procs()));
  for (ProcId i = 0; i < num_procs(); ++i) f[sz(i)] = num_events(i);
  return f;
}

bool Computation::is_consistent(const Cut& g) const {
  HBCT_ASSERT(g.size() == sz(num_procs()));
  for (ProcId i = 0; i < num_procs(); ++i) {
    const std::int32_t gi = g[sz(i)];
    if (gi < 0 || gi > num_events(i)) return false;
    if (gi == 0) continue;
    // The last included event of process i must have its causal past in G.
    const VClockView vc = vclock(i, gi);
    for (ProcId j = 0; j < num_procs(); ++j)
      if (vc[sz(j)] > g[sz(j)]) return false;
  }
  return true;
}

bool Computation::enabled(const Cut& g, ProcId i) const {
  const std::int32_t gi = g[sz(i)];
  if (gi >= num_events(i)) return false;
  const VClockView vc = vclock(i, gi + 1);
  for (ProcId j = 0; j < num_procs(); ++j) {
    if (j == i) continue;
    if (vc[sz(j)] > g[sz(j)]) return false;
  }
  return true;
}

bool Computation::removable(const Cut& g, ProcId i) const {
  const std::int32_t gi = g[sz(i)];
  if (gi <= 0) return false;
  // The event e = (i, gi) is maximal in G iff no other process's last
  // included event has seen it.
  for (ProcId j = 0; j < num_procs(); ++j) {
    if (j == i) continue;
    const std::int32_t gj = g[sz(j)];
    if (gj == 0) continue;
    if (vclock(j, gj)[sz(i)] >= gi) return false;
  }
  return true;
}

std::vector<ProcId> Computation::enabled_procs(const Cut& g) const {
  std::vector<ProcId> out;
  out.reserve(sz(num_procs()));
  enabled_procs(g, &out);
  return out;
}

std::vector<ProcId> Computation::frontier_procs(const Cut& g) const {
  std::vector<ProcId> out;
  out.reserve(sz(num_procs()));
  frontier_procs(g, &out);
  return out;
}

void Computation::enabled_procs(const Cut& g, std::vector<ProcId>* out) const {
  out->clear();
  for (ProcId i = 0; i < num_procs(); ++i)
    if (enabled(g, i)) out->push_back(i);
}

void Computation::frontier_procs(const Cut& g, std::vector<ProcId>* out) const {
  out->clear();
  for (ProcId i = 0; i < num_procs(); ++i)
    if (removable(g, i)) out->push_back(i);
}

Cut Computation::advance(const Cut& g, ProcId i) const {
  HBCT_DASSERT(enabled(g, i));
  Cut h = g;
  ++h[sz(i)];
  return h;
}

Cut Computation::retreat(const Cut& g, ProcId i) const {
  HBCT_DASSERT(removable(g, i));
  Cut h = g;
  --h[sz(i)];
  return h;
}

Cut Computation::join_irreducible_of(ProcId i, EventIndex idx) const {
  return Cut(vclock(i, idx).raw());
}

Cut Computation::meet_irreducible_of(ProcId i, EventIndex idx) const {
  Cut m(sz(num_procs()));
  meet_irreducible_of(i, idx, &m);
  return m;
}

void Computation::join_irreducible_of(ProcId i, EventIndex idx,
                                      Cut* out) const {
  if (out->size() != sz(num_procs())) *out = Cut(sz(num_procs()));
  const VClockView vc = vclock(i, idx);
  for (ProcId j = 0; j < num_procs(); ++j) (*out)[sz(j)] = vc[sz(j)];
}

void Computation::meet_irreducible_of(ProcId i, EventIndex idx,
                                      Cut* out) const {
  if (out->size() != sz(num_procs())) *out = Cut(sz(num_procs()));
  const VClockView rvc = reverse_vclock(i, idx);
  for (ProcId j = 0; j < num_procs(); ++j)
    (*out)[sz(j)] = num_events(j) - rvc[sz(j)];
}

std::optional<EventId> Computation::find_label(std::string_view label) const {
  // Only resident events are searchable; reclaimed prefixes lost their
  // payloads (and with them their labels).
  for (ProcId i = 0; i < num_procs(); ++i)
    for (EventIndex k = trimmed(i) + 1; k <= num_events(i); ++k)
      if (event_view(i, k).label == label) return EventId{i, k};
  return std::nullopt;
}

Computation Computation::from_arena(MappedArenaPtr arena,
                                    std::vector<std::string> var_names) {
  Computation c;
  c.arena_ = std::move(arena);
  const MappedArena& a = *c.arena_;
  HBCT_ASSERT(static_cast<std::int32_t>(var_names.size()) == a.nvars);
  c.procs_.resize(sz(a.nprocs));  // empty inners: shape only
  c.total_events_ = a.total_events;
  c.num_messages_ = a.num_messages;
  c.var_names_ = std::move(var_names);
  for (VarId v = 0; v < static_cast<VarId>(c.var_names_.size()); ++v)
    c.var_ids_.emplace(c.var_names_[sz(v)], v);
  // The linearization section has EventId's exact layout; one bulk copy
  // keeps linearization() returning a plain vector in both modes.
  static_assert(sizeof(EventId) == 8 && std::is_trivially_copyable_v<EventId>);
  c.linearization_.resize(static_cast<std::size_t>(a.total_events));
  if (a.total_events > 0)
    std::memcpy(c.linearization_.data(), a.linearization,
                sizeof(EventId) * static_cast<std::size_t>(a.total_events));
  return c;
}

Computation Computation::materialize() const {
  if (!is_view()) return *this;
  Computation out;
  const std::size_t n = sz(num_procs());
  const std::size_t nv = sz(num_vars());
  out.procs_.resize(n);
  out.var_names_ = var_names_;
  out.var_ids_ = var_ids_;
  out.linearization_ = linearization_;
  for (ProcId i = 0; i < num_procs(); ++i) {
    auto& dst = out.procs_[sz(i)];
    dst.reserve(sz(num_events(i)));
    for (EventIndex k = 1; k <= num_events(i); ++k) {
      const EventView v = event_view(i, k);
      Event e;
      e.kind = v.kind;
      e.peer = v.peer;
      e.msg = v.msg;
      e.label = std::string(v.label);
      e.writes.reserve(v.num_writes());
      for (std::size_t w = 0; w < v.num_writes(); ++w)
        e.writes.push_back(v.write_at(w));
      dst.push_back(std::move(e));
    }
  }
  out.initial_.assign(n, std::vector<std::int64_t>(nv, 0));
  for (ProcId i = 0; i < num_procs(); ++i)
    for (VarId v = 0; v < num_vars(); ++v)
      out.initial_[sz(i)][sz(v)] = value_at(i, v, 0);
  out.finalize();
  return out;
}

Computation Computation::prefix(const Cut& k) const {
  if (is_view()) return materialize().prefix(k);
  HBCT_ASSERT_MSG(trimmed_events_ == 0,
                  "prefix of a GC'd computation is not supported");
  HBCT_ASSERT_MSG(is_consistent(k), "prefix requires a consistent cut");
  Computation out;
  const std::size_t n = sz(num_procs());
  out.procs_.resize(n);
  out.var_names_ = var_names_;
  out.var_ids_ = var_ids_;
  out.initial_ = initial_;
  for (ProcId i = 0; i < num_procs(); ++i) {
    auto& dst = out.procs_[sz(i)];
    dst.assign(procs_[sz(i)].begin(), procs_[sz(i)].begin() + k[sz(i)]);
  }
  // Keep the original linearization restricted to K (still a valid
  // topological order of the prefix).
  for (const EventId& e : linearization_)
    if (e.index <= k[sz(e.proc)]) out.linearization_.push_back(e);
  out.finalize();
  return out;
}

void Computation::finalize() {
  const std::size_t n = procs_.size();
  total_events_ = 0;
  num_messages_ = 0;
  for (const auto& p : procs_) total_events_ += static_cast<std::int64_t>(p.size());
  HBCT_ASSERT(static_cast<std::int64_t>(linearization_.size()) == total_events_);

  // --- Vector clocks, following the recorded linearization. Each receive
  // merges the clock of its matching send, so sends must precede their
  // receives in the linearization (validated below via send_clock presence).
  // The arenas are pre-sized, so rows are stable and send_clock can hold
  // views straight into them.
  vclocks_.assign(n, {});
  for (std::size_t i = 0; i < n; ++i)
    vclocks_[i].assign(procs_[i].size() * n, 0);
  std::unordered_map<MsgId, VClockView> send_clock;
  std::unordered_map<MsgId, EventId> send_event;
  VClock vc(n);
  for (const EventId& eid : linearization_) {
    const Event& ev = event(eid);
    if (eid.index > 1) {
      const VClockView prev = vclock(eid.proc, eid.index - 1);
      for (std::size_t j = 0; j < n; ++j) vc[j] = prev[j];
    } else {
      for (std::size_t j = 0; j < n; ++j) vc[j] = 0;
    }
    if (ev.kind == EventKind::kReceive) {
      auto it = send_clock.find(ev.msg);
      HBCT_ASSERT_MSG(it != send_clock.end(),
                      "receive precedes its send in the linearization");
      vc.merge(it->second);
      // Cross-check the peer annotation.
      HBCT_ASSERT(send_event.at(ev.msg).proc == ev.peer);
    }
    vc[sz(eid.proc)] = eid.index;
    if (ev.kind == EventKind::kSend) {
      HBCT_ASSERT_MSG(!send_clock.count(ev.msg), "duplicate send msg id");
      ++num_messages_;
    }
    std::copy(vc.raw().begin(), vc.raw().end(),
              vclocks_[sz(eid.proc)].data() + sz(eid.index - 1) * n);
    if (ev.kind == EventKind::kSend) {
      send_clock.emplace(ev.msg, vclock(eid.proc, eid.index));
      send_event.emplace(ev.msg, eid);
    }
  }

  compute_rvclocks();

  // --- Variable timelines.
  const std::size_t nv = var_names_.size();
  initial_.resize(n);
  for (auto& iv : initial_) iv.resize(nv, 0);
  values_.assign(n, {});
  for (std::size_t i = 0; i < n; ++i) {
    values_[i].assign(nv, {});
    for (std::size_t v = 0; v < nv; ++v) {
      auto& tl = values_[i][v];
      tl.resize(procs_[i].size() + 1);
      tl[0] = initial_[i][v];
    }
    for (std::size_t k = 0; k < procs_[i].size(); ++k) {
      for (std::size_t v = 0; v < nv; ++v)
        values_[i][v][k + 1] = values_[i][v][k];
      for (const Assignment& a : procs_[i][k].writes) {
        HBCT_ASSERT(a.var >= 0 && sz(a.var) < nv);
        values_[i][sz(a.var)][k + 1] = a.value;
      }
    }
  }

  // --- Channel prefix counters.
  sends_to_.assign(n, std::vector<std::vector<std::int32_t>>(n));
  recvs_from_.assign(n, std::vector<std::vector<std::int32_t>>(n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < procs_[i].size(); ++k) {
      const Event& ev = procs_[i][k];
      if (ev.kind == EventKind::kSend) {
        auto& tab = sends_to_[i][sz(ev.peer)];
        if (tab.empty()) tab.assign(procs_[i].size() + 1, 0);
      } else if (ev.kind == EventKind::kReceive) {
        auto& tab = recvs_from_[i][sz(ev.peer)];
        if (tab.empty()) tab.assign(procs_[i].size() + 1, 0);
      }
    }
    for (std::size_t j = 0; j < n; ++j) {
      auto fill = [&](std::vector<std::int32_t>& tab, EventKind kind) {
        if (tab.empty()) return;
        for (std::size_t k = 0; k < procs_[i].size(); ++k) {
          const Event& ev = procs_[i][k];
          tab[k + 1] = tab[k] + ((ev.kind == kind && sz(ev.peer) == j) ? 1 : 0);
        }
      };
      fill(sends_to_[i][j], EventKind::kSend);
      fill(recvs_from_[i][j], EventKind::kReceive);
    }
  }
}

void Computation::compute_rvclocks() const {
  // Reverse vector clocks: process the linearization backwards; a send
  // merges the reverse clock of its matching receive. The arenas are
  // pre-sized so recv_rclock can hold views into them (the same-process
  // successor row is always written before its predecessor reads it).
  HBCT_ASSERT_MSG(trimmed_events_ == 0,
                  "reverse clocks need the whole computation; prefix GC "
                  "discarded part of it");
  const std::size_t n = procs_.size();
  rvcache_.clocks.assign(n, {});
  for (std::size_t i = 0; i < n; ++i)
    rvcache_.clocks[i].assign(
        sz(num_events(static_cast<ProcId>(i))) * n, 0);
  auto row = [&](ProcId i, EventIndex idx) {
    return rvcache_.clocks[sz(i)].data() + sz(idx - 1) * n;
  };
  std::unordered_map<MsgId, VClockView> recv_rclock;
  VClock rvc(n);
  for (auto it = linearization_.rbegin(); it != linearization_.rend(); ++it) {
    const EventId& eid = *it;
    const EventView ev = event_view(eid);
    // rvc(e)[j] counts events f on j with e <= f; start from the successor
    // on the same process (if any).
    if (eid.index < num_events(eid.proc)) {
      const std::int32_t* succ = row(eid.proc, eid.index + 1);
      for (std::size_t j = 0; j < n; ++j) rvc[j] = succ[j];
    } else {
      for (std::size_t j = 0; j < n; ++j) rvc[j] = 0;
    }
    if (ev.kind == EventKind::kSend) {
      auto rit = recv_rclock.find(ev.msg);
      if (rit != recv_rclock.end()) rvc.merge(rit->second);
      // An unmatched send (receive outside this computation) merges nothing.
    }
    rvc[sz(eid.proc)] = num_events(eid.proc) - eid.index + 1;
    std::copy(rvc.raw().begin(), rvc.raw().end(), row(eid.proc, eid.index));
    if (ev.kind == EventKind::kReceive)
      recv_rclock.emplace(ev.msg, VClockView(row(eid.proc, eid.index), n));
  }
  rvcache_.dirty.store(false, std::memory_order_release);
}

void Computation::validate() const {
  HBCT_ASSERT_MSG(trimmed_events_ == 0,
                  "validate needs the whole computation");
  const std::size_t n = procs_.size();
  // Linearization covers every event exactly once and respects both process
  // order and send-before-receive.
  std::vector<EventIndex> seen(n, 0);
  std::unordered_map<MsgId, bool> sent;
  for (const EventId& eid : linearization_) {
    HBCT_ASSERT(eid.proc >= 0 && sz(eid.proc) < n);
    HBCT_ASSERT(eid.index == seen[sz(eid.proc)] + 1);
    seen[sz(eid.proc)] = eid.index;
    const EventView ev = event_view(eid);
    if (ev.kind == EventKind::kSend) {
      HBCT_ASSERT(ev.msg != kNoMsg);
      HBCT_ASSERT(!sent.count(ev.msg));
      sent[ev.msg] = true;
      HBCT_ASSERT(ev.peer >= 0 && sz(ev.peer) < n);
    } else if (ev.kind == EventKind::kReceive) {
      HBCT_ASSERT(sent.count(ev.msg));
      HBCT_ASSERT(ev.peer >= 0 && sz(ev.peer) < n);
    }
  }
  for (std::size_t i = 0; i < n; ++i)
    HBCT_ASSERT(seen[i] == num_events(static_cast<ProcId>(i)));

  // Clock sanity: vc(e)[proc(e)] == index(e); clocks strictly increase along
  // a process; rvc(e)[proc(e)] counts the suffix.
  for (ProcId i = 0; i < num_procs(); ++i) {
    for (EventIndex k = 1; k <= num_events(i); ++k) {
      HBCT_ASSERT(vclock(i, k)[sz(i)] == k);
      HBCT_ASSERT(reverse_vclock(i, k)[sz(i)] == num_events(i) - k + 1);
      if (k > 1) HBCT_ASSERT(vclock(i, k - 1).before(vclock(i, k)));
      // J(e) and M(e) must be consistent cuts.
      HBCT_ASSERT(is_consistent(join_irreducible_of(i, k)));
      HBCT_ASSERT(is_consistent(meet_irreducible_of(i, k)));
    }
  }
  HBCT_ASSERT(is_consistent(initial_cut()));
  HBCT_ASSERT(is_consistent(final_cut()));
}

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kInternal: return "internal";
    case EventKind::kSend: return "send";
    case EventKind::kReceive: return "recv";
  }
  return "?";
}

}  // namespace hbct
