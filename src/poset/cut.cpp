#include "poset/cut.h"

#include <algorithm>
#include <sstream>

#include "util/assert.h"

namespace hbct {

std::int64_t Cut::total() const {
  std::int64_t t = 0;
  for (auto v : c_) t += v;
  return t;
}

bool Cut::subset_of(const Cut& o) const {
  HBCT_ASSERT(size() == o.size());
  for (std::size_t i = 0; i < c_.size(); ++i)
    if (c_[i] > o.c_[i]) return false;
  return true;
}

Cut Cut::meet(const Cut& a, const Cut& b) {
  HBCT_ASSERT(a.size() == b.size());
  Cut m(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    m[i] = std::min(a[i], b[i]);
  return m;
}

Cut Cut::join(const Cut& a, const Cut& b) {
  HBCT_ASSERT(a.size() == b.size());
  Cut j(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    j[i] = std::max(a[i], b[i]);
  return j;
}

std::string Cut::to_string() const {
  std::ostringstream os;
  os << "<";
  for (std::size_t i = 0; i < c_.size(); ++i) {
    if (i) os << ",";
    os << c_[i];
  }
  os << ">";
  return os.str();
}

std::size_t CutHash::operator()(const Cut& c) const noexcept {
  std::size_t h = 1469598103934665603ull;
  for (auto v : c.raw()) {
    h ^= static_cast<std::size_t>(static_cast<std::uint32_t>(v));
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace hbct
