// Structural analysis of computations: how much concurrency does a trace
// actually contain? These metrics drive workload characterization in the
// benches and the trace_checker's report.
//
//  - height:  the longest happened-before chain (critical path length).
//  - width:   the largest antichain — the maximum number of pairwise
//             concurrent events — computed exactly via Dilworth's theorem
//             (width = |E| − maximum matching in the transitive
//             comparability bipartite graph).
//  - concurrent_pairs: |{ {e,f} : e ∥ f }|.
//  - parallelism: |E| / height, the average achievable speedup.
#pragma once

#include <cstdint>
#include <string>

#include "poset/computation.h"

namespace hbct {

struct ConcurrencyStats {
  std::int64_t events = 0;
  std::int64_t messages = 0;
  /// Longest chain (number of events on the critical path). 0 iff empty.
  std::int32_t height = 0;
  /// Largest antichain (Dilworth). -1 when skipped (past width_limit).
  std::int32_t width = -1;
  /// Number of unordered concurrent event pairs.
  std::int64_t concurrent_pairs = 0;
  /// events / height; 0 for empty computations.
  double parallelism = 0;

  std::string to_string() const;
};

/// Computes the metrics. The width computation is O(|E|^3) worst case
/// (Kuhn's matching over the full comparability graph) and is skipped when
/// |E| exceeds `width_limit`; everything else is O(n|E| + |E|^2).
ConcurrencyStats analyze(const Computation& c, std::size_t width_limit = 400);

/// Longest happened-before chain only (O(n|E|)).
std::int32_t computation_height(const Computation& c);

/// Largest antichain only (see analyze for cost).
std::int32_t computation_width(const Computation& c);

}  // namespace hbct
