// Event identity and payload for the happened-before model.
//
// A distributed computation (E, ->) consists of n sequential processes whose
// events are totally ordered within a process and related across processes by
// message send/receive pairs (Lamport's happened-before relation). Events on
// process i are numbered 1..num_events(i); position 0 denotes the initial
// local state before any event.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hbct {

/// Process index, 0-based.
using ProcId = std::int32_t;

/// Event index within a process, 1-based (0 = "before the first event").
using EventIndex = std::int32_t;

/// Global variable id assigned by the Computation's variable registry.
/// Variables are per-process: `x` on P0 and `x` on P1 are distinct slots but
/// share one VarId for the name `x`.
using VarId = std::int32_t;

/// Message identity; pairs one send event with one receive event.
using MsgId = std::int32_t;

constexpr MsgId kNoMsg = -1;

/// Identifies one event in a computation.
struct EventId {
  ProcId proc = 0;
  EventIndex index = 0;  // 1-based

  friend bool operator==(const EventId&, const EventId&) = default;
};

enum class EventKind : std::uint8_t { kInternal, kSend, kReceive };

/// One variable assignment performed by an event.
struct Assignment {
  VarId var = 0;
  std::int64_t value = 0;

  friend bool operator==(const Assignment&, const Assignment&) = default;
};

/// Payload of an event. Vector clocks are stored in a parallel structure in
/// Computation (struct-of-arrays keeps the clock table contiguous).
struct Event {
  EventKind kind = EventKind::kInternal;
  /// For kSend: destination process. For kReceive: source process.
  ProcId peer = -1;
  /// Message matched by this send/receive; kNoMsg for internal events.
  MsgId msg = kNoMsg;
  /// Variable updates applied when this event executes.
  std::vector<Assignment> writes;
  /// Optional human-readable label ("e1", "cs_enter"); used by trace IO and
  /// the figure reconstructions.
  std::string label;
};

const char* to_string(EventKind k);

}  // namespace hbct
