// Fidge-Mattern vector clocks.
//
// VC(e)[j] = number of events on process j that happened-before-or-equal e.
// Happened-before between events reduces to componentwise comparison:
//   e -> f  iff  VC(e) != VC(f) and VC(e)[i] <= VC(f)[i] for all i.
// For events we use the cheaper process-local test (see Computation).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hbct {

class VClock {
 public:
  VClock() = default;
  explicit VClock(std::size_t n) : c_(n, 0) {}
  explicit VClock(std::vector<std::int32_t> c) : c_(std::move(c)) {}

  std::size_t size() const { return c_.size(); }
  std::int32_t operator[](std::size_t i) const { return c_[i]; }
  std::int32_t& operator[](std::size_t i) { return c_[i]; }

  /// Componentwise max with `o` (message-receive merge).
  void merge(const VClock& o);

  /// this <= o componentwise.
  bool leq(const VClock& o) const;

  /// Strictly happened-before: leq and not equal.
  bool before(const VClock& o) const { return leq(o) && c_ != o.c_; }

  /// Neither clock dominates: the events are concurrent.
  bool concurrent(const VClock& o) const { return !leq(o) && !o.leq(*this); }

  const std::vector<std::int32_t>& raw() const { return c_; }

  std::string to_string() const;

  friend bool operator==(const VClock&, const VClock&) = default;

 private:
  std::vector<std::int32_t> c_;
};

}  // namespace hbct
