// Fidge-Mattern vector clocks.
//
// VC(e)[j] = number of events on process j that happened-before-or-equal e.
// Happened-before between events reduces to componentwise comparison:
//   e -> f  iff  VC(e) != VC(f) and VC(e)[i] <= VC(f)[i] for all i.
// For events we use the cheaper process-local test (see Computation).
//
// Two representations share the comparison algebra:
//   VClock      owns its components (builders, the online appender's
//               working clocks, tests).
//   VClockView  a non-owning {pointer, size} over a row of Computation's
//               contiguous stride-n clock arena. leq/merge over the flat
//               storage compile to branch-light loops the optimizer can
//               vectorize, and reading a clock allocates nothing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hbct {

namespace vclock_detail {

/// Fused single pass: computes "a <= b componentwise" and "a != b" together,
/// so before() no longer pays a leq scan plus a full vector compare.
inline bool leq_and_ne(const std::int32_t* a, const std::int32_t* b,
                       std::size_t n, bool* ne) {
  bool strict = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] > b[i]) return false;
    strict |= a[i] < b[i];
  }
  *ne = strict;
  return true;
}

inline bool leq(const std::int32_t* a, const std::int32_t* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if (a[i] > b[i]) return false;
  return true;
}

std::string to_string(const std::int32_t* c, std::size_t n);

}  // namespace vclock_detail

/// Non-owning view of a vector clock stored in a flat arena. Cheap to copy;
/// valid only while the owning storage is alive and unmoved.
class VClockView {
 public:
  VClockView() = default;
  VClockView(const std::int32_t* p, std::size_t n) : p_(p), n_(n) {}

  std::size_t size() const { return n_; }
  std::int32_t operator[](std::size_t i) const { return p_[i]; }
  const std::int32_t* data() const { return p_; }

  bool leq(VClockView o) const { return vclock_detail::leq(p_, o.p_, n_); }

  /// Strictly happened-before, in one fused pass.
  bool before(VClockView o) const {
    bool ne = false;
    return vclock_detail::leq_and_ne(p_, o.p_, n_, &ne) && ne;
  }

  bool concurrent(VClockView o) const { return !leq(o) && !o.leq(*this); }

  /// Materializes an owned copy of the components.
  std::vector<std::int32_t> raw() const {
    return std::vector<std::int32_t>(p_, p_ + n_);
  }

  std::string to_string() const { return vclock_detail::to_string(p_, n_); }

  friend bool operator==(VClockView a, VClockView b) {
    if (a.n_ != b.n_) return false;
    for (std::size_t i = 0; i < a.n_; ++i)
      if (a.p_[i] != b.p_[i]) return false;
    return true;
  }

 private:
  const std::int32_t* p_ = nullptr;
  std::size_t n_ = 0;
};

class VClock {
 public:
  VClock() = default;
  explicit VClock(std::size_t n) : c_(n, 0) {}
  explicit VClock(std::vector<std::int32_t> c) : c_(std::move(c)) {}
  explicit VClock(VClockView v) : c_(v.raw()) {}

  std::size_t size() const { return c_.size(); }
  std::int32_t operator[](std::size_t i) const { return c_[i]; }
  std::int32_t& operator[](std::size_t i) { return c_[i]; }

  /// Componentwise max with `o` (message-receive merge).
  void merge(const VClock& o);
  void merge(VClockView o);

  /// this <= o componentwise.
  bool leq(const VClock& o) const;

  /// Strictly happened-before: one fused leq-and-not-equal pass.
  bool before(const VClock& o) const {
    bool ne = false;
    return c_.size() == o.c_.size() &&
           vclock_detail::leq_and_ne(c_.data(), o.c_.data(), c_.size(), &ne) &&
           ne;
  }

  /// Neither clock dominates: the events are concurrent.
  bool concurrent(const VClock& o) const { return !leq(o) && !o.leq(*this); }

  const std::vector<std::int32_t>& raw() const { return c_; }

  VClockView view() const { return VClockView(c_.data(), c_.size()); }

  std::string to_string() const;

  friend bool operator==(const VClock&, const VClock&) = default;

 private:
  std::vector<std::int32_t> c_;
};

}  // namespace hbct
