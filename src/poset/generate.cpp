#include "poset/generate.h"

#include <deque>
#include <string>
#include <vector>

#include "poset/builder.h"
#include "util/assert.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace hbct {

Computation generate_random(const GenOptions& opt) {
  HBCT_ASSERT(opt.num_procs > 0);
  HBCT_ASSERT(opt.events_per_proc >= 0);
  Rng rng(opt.seed);
  ComputationBuilder b(opt.num_procs);

  std::vector<VarId> vars;
  vars.reserve(static_cast<std::size_t>(opt.num_vars));
  for (std::int32_t v = 0; v < opt.num_vars; ++v)
    vars.push_back(b.var(strfmt("v%d", v)));
  for (ProcId i = 0; i < opt.num_procs; ++i)
    for (VarId v : vars)
      b.set_initial(i, v, rng.next_in(opt.value_lo, opt.value_hi));

  std::vector<std::int32_t> quota(static_cast<std::size_t>(opt.num_procs),
                                  opt.events_per_proc);
  // pending[j] = messages already sent to process j, not yet received.
  std::vector<std::deque<MsgId>> pending(static_cast<std::size_t>(opt.num_procs));
  std::int64_t remaining =
      static_cast<std::int64_t>(opt.num_procs) * opt.events_per_proc;

  auto maybe_write = [&](ProcId i) {
    if (!vars.empty() && rng.next_bool(opt.p_write)) {
      VarId v = vars[rng.next_below(vars.size())];
      b.write(i, v, rng.next_in(opt.value_lo, opt.value_hi));
    }
  };

  while (remaining > 0) {
    // Pick a process with remaining quota, uniformly.
    ProcId i;
    do {
      i = static_cast<ProcId>(rng.next_below(static_cast<std::uint64_t>(opt.num_procs)));
    } while (quota[static_cast<std::size_t>(i)] == 0);

    auto& inbox = pending[static_cast<std::size_t>(i)];
    if (!inbox.empty() && rng.next_bool(opt.p_recv)) {
      std::size_t pick = opt.fifo ? 0 : rng.next_below(inbox.size());
      MsgId m = inbox[pick];
      inbox.erase(inbox.begin() + static_cast<std::ptrdiff_t>(pick));
      b.receive(i, m);
    } else if (opt.num_procs > 1 && rng.next_bool(opt.p_send)) {
      ProcId to;
      do {
        to = static_cast<ProcId>(
            rng.next_below(static_cast<std::uint64_t>(opt.num_procs)));
      } while (to == i);
      MsgId m = b.send(i, to);
      pending[static_cast<std::size_t>(to)].push_back(m);
    } else {
      b.internal(i);
    }
    maybe_write(i);
    --quota[static_cast<std::size_t>(i)];
    --remaining;
  }
  return std::move(b).build();
}

Computation generate_independent(std::int32_t num_procs,
                                 std::int32_t events_per_proc) {
  ComputationBuilder b(num_procs);
  for (ProcId i = 0; i < num_procs; ++i)
    for (std::int32_t k = 0; k < events_per_proc; ++k) b.internal(i);
  return std::move(b).build();
}

Computation generate_chain(std::int32_t num_procs,
                           std::int32_t events_per_proc) {
  ComputationBuilder b(num_procs);
  MsgId link = kNoMsg;
  for (ProcId i = 0; i < num_procs; ++i) {
    if (link != kNoMsg) b.receive(i, link);
    const std::int32_t internals =
        events_per_proc - (i > 0 ? 1 : 0) - (i + 1 < num_procs ? 1 : 0);
    for (std::int32_t k = 0; k < internals; ++k) b.internal(i);
    if (i + 1 < num_procs) link = b.send(i, i + 1);
  }
  return std::move(b).build();
}

}  // namespace hbct
