// ASCII space-time diagrams of computations — the debugging-environment
// view: one lane per process, events in program order, message edges and
// variable writes annotated.
//
//   P0 | e1:S->P1(m0) x=2   e2 x=3
//   P1 | f1:S->P2(m1)       f2:R<-P0(m0)
//   P2 | g1:R<-P1(m1) z=6
//
// Lanes are column-aligned by a global linearization so the left-to-right
// order of any two causally related events reflects happened-before.
#pragma once

#include <string>

#include "poset/computation.h"

namespace hbct {

struct DiagramOptions {
  /// Include variable writes on each event.
  bool show_writes = true;
  /// Include event labels when present.
  bool show_labels = true;
  /// Hard cap on rendered events (rendering a million-event trace as text
  /// helps no one); the diagram is truncated with a marker beyond it.
  std::int64_t max_events = 2000;
};

/// Renders the computation as an ASCII space-time diagram.
std::string render_diagram(const Computation& c,
                           const DiagramOptions& opt = {});

}  // namespace hbct
