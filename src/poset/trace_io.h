// Text trace format for computations.
//
// Traces serialize the canonical linearization; reading a trace rebuilds the
// identical computation (vector clocks are recomputed, not stored). Format,
// one record per line, '#' starts a comment:
//
//   hbct-trace v1
//   procs <n>
//   var <name>                      # order defines VarId
//   init <proc> <var-name> <value>
//   ev <proc> internal [label=<text>] [<var-name>=<value> ...]
//   ev <proc> send <to-proc> <msg-id> [label=...] [writes...]
//   ev <proc> recv <msg-id> [label=...] [writes...]
//   end
//
// A compact binary form ("hbct-btrace v1") carries the same information:
// the magic line followed by length-prefixed records with varint-encoded
// payloads (grammar below, namespace wire). Both forms round-trip through
// each other. The record codec doubles as the serve layer's wire format —
// a session stream is the same records without the magic or the kProcs /
// kEnd framing requirements of a trace file.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "poset/computation.h"

namespace hbct {

/// Serializes `c` in hbct-trace v1 format.
void write_trace(std::ostream& os, const Computation& c);
std::string trace_to_string(const Computation& c);

/// Result of parsing a trace.
struct TraceParseResult {
  bool ok = false;
  std::string error;       // first error, with line number
  Computation computation; // valid only when ok
};

/// Parses an hbct-trace v1 stream. Never throws; malformed input is
/// reported in `error`.
TraceParseResult read_trace(std::istream& is);
TraceParseResult trace_from_string(const std::string& text);

// ---- Binary form ("hbct-btrace v1") -----------------------------------------

/// Serializes `c` as magic + records (kProcs, kVar*, kInit*, events in
/// linearization order, kEnd).
void write_trace_binary(std::ostream& os, const Computation& c);
std::string trace_to_binary_string(const Computation& c);

/// Parses a binary trace. Never throws; any malformed input — truncated
/// length prefix, oversized varint, out-of-range field, duplicate message
/// id, recv before send — is reported in `error`.
TraceParseResult read_trace_binary(std::istream& is);
TraceParseResult trace_from_binary_string(std::string_view bytes);

namespace wire {

/// First line of a binary trace file. Session wire streams omit it.
inline constexpr std::string_view kBinaryMagic = "hbct-btrace v1\n";

/// Hard caps keeping a malicious stream from ballooning one record.
inline constexpr std::size_t kMaxRecordBytes = std::size_t{1} << 20;
inline constexpr std::size_t kMaxNameBytes = 4096;

/// LEB128: 7 value bits per byte, high bit = continuation, <= 10 bytes.
void put_varint(std::string& out, std::uint64_t v);
/// Zigzag-mapped varint for signed payload values.
void put_zigzag(std::string& out, std::int64_t v);

/// One variable assignment carried by an event record. Variables are
/// referenced by registration index (the order of kVar records).
struct WireWrite {
  std::uint32_t var = 0;
  std::int64_t value = 0;

  friend bool operator==(const WireWrite&, const WireWrite&) = default;
};

/// One decoded record. Field usage by kind:
///   kProcs     nprocs
///   kVar       name
///   kInit      proc, var, value
///   kInternal  proc, writes, label
///   kSend      proc, peer, msg, writes, label
///   kRecv      proc, msg, writes, label
///   kEnd       (none)
struct Record {
  enum class Kind : std::uint8_t {
    kProcs = 1,
    kVar = 2,
    kInit = 3,
    kInternal = 4,
    kSend = 5,
    kRecv = 6,
    kEnd = 7,
  };

  Kind kind = Kind::kInternal;
  std::int32_t nprocs = 0;
  std::string name;
  std::int32_t proc = 0;
  std::uint32_t var = 0;
  std::int64_t value = 0;
  std::int32_t peer = 0;
  std::uint64_t msg = 0;
  std::vector<WireWrite> writes;
  std::string label;
};

/// Appends one record as varint(payload length) + payload.
void encode_record(std::string& out, const Record& r);

/// Incremental decoder over a length-prefixed record stream. feed() bytes
/// in arbitrary chunks; next() yields complete records. An error is sticky:
/// every later next() repeats it (a corrupted stream has no resync point).
class Decoder {
 public:
  enum class Status { kRecord, kNeedMore, kError };

  void feed(std::string_view bytes);
  Status next(Record* out);

  const std::string& error() const { return err_; }
  /// Bytes fed but not yet consumed by a completed record.
  std::size_t buffered() const { return buf_.size() - off_; }

 private:
  Status fail(const std::string& msg);

  std::string buf_;
  std::size_t off_ = 0;
  std::string err_;
};

}  // namespace wire

}  // namespace hbct
