// Text trace format for computations.
//
// Traces serialize the canonical linearization; reading a trace rebuilds the
// identical computation (vector clocks are recomputed, not stored). Format,
// one record per line, '#' starts a comment:
//
//   hbct-trace v1
//   procs <n>
//   var <name>                      # order defines VarId
//   init <proc> <var-name> <value>
//   ev <proc> internal [label=<text>] [<var-name>=<value> ...]
//   ev <proc> send <to-proc> <msg-id> [label=...] [writes...]
//   ev <proc> recv <msg-id> [label=...] [writes...]
//   end
#pragma once

#include <iosfwd>
#include <string>

#include "poset/computation.h"

namespace hbct {

/// Serializes `c` in hbct-trace v1 format.
void write_trace(std::ostream& os, const Computation& c);
std::string trace_to_string(const Computation& c);

/// Result of parsing a trace.
struct TraceParseResult {
  bool ok = false;
  std::string error;       // first error, with line number
  Computation computation; // valid only when ok
};

/// Parses an hbct-trace v1 stream. Never throws; malformed input is
/// reported in `error`.
TraceParseResult read_trace(std::istream& is);
TraceParseResult trace_from_string(const std::string& text);

}  // namespace hbct
