// Recursive-descent parser for the textual CTL fragment.
//
// Examples of accepted queries:
//   EG(x@P0 < 4 && z@P2 < 6)
//   E[ z@P2 < 6 && x@P0 < 4  U  channels_empty && x@P0 > 1 ]
//   AG(intransit(0,1) <= 2)
//   A[ try@P1 == 1 U critical@P1 == 1 ]
//   x@P0 + x@P1 <= 5
//
// Parsing never throws; errors carry the offending position.
#pragma once

#include <string>
#include <string_view>

#include "ctl/formula.h"

namespace hbct::ctl {

struct ParseResult {
  bool ok = false;
  std::string error;  // "col 12: expected ')'"
  Query query;        // valid when ok
};

ParseResult parse_query(std::string_view text);

}  // namespace hbct::ctl
