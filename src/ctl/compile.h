// Lowering parsed CTL queries onto the predicate classes, and one-call
// evaluation against a computation.
//
// The compiler is where the paper's "exploit the structure of the predicate"
// philosophy meets the concrete syntax: a conjunction of per-process
// comparisons becomes a ConjunctivePredicate, sums of monotone variables
// become relational linear predicates, channel-count atoms become regular
// channel-bound predicates — so the dispatcher can pick the polynomial
// algorithms. Anything it cannot classify still evaluates correctly through
// the explicit-search fallback.
#pragma once

#include <string>
#include <string_view>

#include "ctl/formula.h"
#include "ctl/parser.h"
#include "detect/dispatch.h"

namespace hbct::ctl {

struct CompileResult {
  bool ok = false;
  std::string error;
  PredicatePtr pred;  // valid when ok
};

/// Lowers a state formula to a predicate. Computation-independent; variable
/// names are resolved at evaluation time.
CompileResult compile_state(const NodePtr& node);

/// Checks that every variable and process referenced by the query exists in
/// the computation. Returns an empty string when valid.
std::string validate_query(const Computation& c, const Query& q);

struct EvalResult {
  bool ok = false;
  std::string error;      // parse/compile/validation failure
  DetectResult result;    // valid when ok
  std::string algorithm;  // convenience copy of result.algorithm
};

/// Evaluates a parsed query: temporal queries dispatch per predicate class;
/// a bare state formula is evaluated at the initial cut.
EvalResult evaluate_query(const Computation& c, const Query& q,
                          const DispatchOptions& opt = {});

/// Parse + validate + evaluate in one call.
EvalResult evaluate_query(const Computation& c, std::string_view text,
                          const DispatchOptions& opt = {});

}  // namespace hbct::ctl
