#include "ctl/compile.h"

#include <algorithm>

#include "analysis/lint.h"
#include "analysis/optimize.h"
#include "detect/brute_force.h"
#include "predicate/channel.h"
#include "predicate/conjunctive.h"
#include "predicate/relational.h"
#include "util/assert.h"
#include "util/string_util.h"

namespace hbct::ctl {

namespace {

std::int64_t term_eval(const Computation& c, const Term& t, const Cut& g) {
  switch (t.kind) {
    case Term::Kind::kConst:
      return t.value;
    case Term::Kind::kVar: {
      auto v = c.var_id(t.var);
      HBCT_ASSERT_MSG(v.has_value(), "unknown variable at evaluation");
      return c.value_in(t.proc, *v, g);
    }
    case Term::Kind::kPos:
      return g[static_cast<std::size_t>(t.proc)];
    case Term::Kind::kInTransit:
      return c.in_transit(t.from, t.to, g);
  }
  return 0;
}

/// Normalized atom: Σ coef_i * term_i  <op>  k, with only non-constant terms
/// on the left.
struct NormAtom {
  std::vector<std::pair<int, Term>> terms;
  Cmp op = Cmp::kEq;
  std::int64_t k = 0;
};

NormAtom normalize(const Atom& a) {
  NormAtom n;
  n.op = a.op;
  for (const auto& [coef, t] : a.lhs.terms) {
    if (t.kind == Term::Kind::kConst)
      n.k -= coef * t.value;
    else
      n.terms.emplace_back(coef, t);
  }
  for (const auto& [coef, t] : a.rhs.terms) {
    if (t.kind == Term::Kind::kConst)
      n.k += coef * t.value;
    else
      n.terms.emplace_back(-coef, t);
  }
  return n;
}

/// Generic fallback: evaluate the normalized atom directly; no structural
/// class is claimed, so detection uses the explicit-search algorithms.
PredicatePtr arith_fallback(const NormAtom& n, std::string desc) {
  auto terms = n.terms;
  const Cmp op = n.op;
  const std::int64_t k = n.k;
  return make_asserted(
      [terms, op, k](const Computation& c, const Cut& g) {
        std::int64_t s = 0;
        for (const auto& [coef, t] : terms) s += coef * term_eval(c, t, g);
        return cmp_eval(op, s, k);
      },
      0, std::move(desc));
}

/// Lowers "<single non-const term> <op> k".
PredicatePtr lower_single(const Term& t, Cmp op, std::int64_t k) {
  switch (t.kind) {
    case Term::Kind::kVar:
      return var_cmp(t.proc, t.var, op, k);
    case Term::Kind::kPos:
      return pos_cmp(t.proc, op, k);
    case Term::Kind::kInTransit: {
      const std::int32_t ik = static_cast<std::int32_t>(k);
      switch (op) {
        case Cmp::kLe: return channel_bound_le(t.from, t.to, ik);
        case Cmp::kLt: return channel_bound_le(t.from, t.to, ik - 1);
        case Cmp::kGe: return channel_bound_ge(t.from, t.to, ik);
        case Cmp::kGt: return channel_bound_ge(t.from, t.to, ik + 1);
        case Cmp::kEq:
          return make_and(channel_bound_le(t.from, t.to, ik),
                          channel_bound_ge(t.from, t.to, ik));
        case Cmp::kNe:
          return make_or(channel_bound_le(t.from, t.to, ik - 1),
                         channel_bound_ge(t.from, t.to, ik + 1));
      }
      break;
    }
    case Term::Kind::kConst:
      break;  // unreachable: constants were folded
  }
  HBCT_ASSERT_MSG(false, "lower_single: unexpected term");
}

PredicatePtr lower_atom(const Atom& a) {
  NormAtom n = normalize(a);
  const std::string desc = to_string(a.lhs) + " " +
                           std::string(hbct::to_string(a.op)) + " " +
                           to_string(a.rhs);

  if (n.terms.empty())  // constant comparison
    return cmp_eval(n.op, 0, n.k) ? make_true() : make_false();

  if (n.terms.size() == 1) {
    auto [coef, t] = n.terms[0];
    if (coef == 1) return lower_single(t, n.op, n.k);
    // -t <op> k  ⟺  t <mirror op> -k
    Cmp m = n.op;
    switch (n.op) {
      case Cmp::kLt: m = Cmp::kGt; break;
      case Cmp::kLe: m = Cmp::kGe; break;
      case Cmp::kGt: m = Cmp::kLt; break;
      case Cmp::kGe: m = Cmp::kLe; break;
      default: break;  // == and != are symmetric
    }
    return lower_single(t, m, -n.k);
  }

  // Pure-variable sums map to the relational predicates of Section 4.
  const bool all_vars = std::all_of(
      n.terms.begin(), n.terms.end(),
      [](const auto& ct) { return ct.second.kind == Term::Kind::kVar; });
  if (all_vars) {
    const bool all_plus = std::all_of(n.terms.begin(), n.terms.end(),
                                      [](const auto& ct) { return ct.first == 1; });
    auto refs = [&]() {
      std::vector<VarRef> out;
      out.reserve(n.terms.size());
      for (const auto& [coef, t] : n.terms)
        out.push_back(VarRef{t.proc, t.var});
      return out;
    };
    if (all_plus) {
      switch (n.op) {
        case Cmp::kLe: return sum_le(refs(), n.k);
        case Cmp::kLt: return sum_le(refs(), n.k - 1);
        case Cmp::kGe: return sum_ge(refs(), n.k);
        case Cmp::kGt: return sum_ge(refs(), n.k + 1);
        case Cmp::kEq:
          return make_and(sum_le(refs(), n.k), sum_ge(refs(), n.k));
        case Cmp::kNe:
          return make_or(sum_le(refs(), n.k - 1), sum_ge(refs(), n.k + 1));
      }
    }
    if (n.terms.size() == 2 && n.terms[0].first + n.terms[1].first == 0) {
      // a - b <op> k (in some order).
      const Term& pos = n.terms[0].first == 1 ? n.terms[0].second
                                              : n.terms[1].second;
      const Term& neg = n.terms[0].first == 1 ? n.terms[1].second
                                              : n.terms[0].second;
      VarRef a{pos.proc, pos.var}, b{neg.proc, neg.var};
      switch (n.op) {
        case Cmp::kLe: return diff_le(a, b, n.k);
        case Cmp::kLt: return diff_le(a, b, n.k - 1);
        case Cmp::kGe: return diff_le(b, a, -n.k);    // a-b>=k ⟺ b-a<=-k
        case Cmp::kGt: return diff_le(b, a, -n.k - 1);
        case Cmp::kEq:
          return make_and(diff_le(a, b, n.k), diff_le(b, a, -n.k));
        case Cmp::kNe:
          return make_or(diff_le(a, b, n.k - 1), diff_le(b, a, -n.k - 1));
      }
    }
  }
  return arith_fallback(n, desc);
}

PredicatePtr lower(const NodePtr& node) {
  HBCT_ASSERT(node);
  switch (node->kind) {
    case Node::Kind::kTrue:
      return make_true();
    case Node::Kind::kFalse:
      return make_false();
    case Node::Kind::kChannelsEmpty:
      return all_channels_empty();
    case Node::Kind::kTerminated:
      return make_terminated();
    case Node::Kind::kAtom:
      return lower_atom(node->atom);
    case Node::Kind::kNot:
      return make_not(lower(node->children[0]));
    case Node::Kind::kAnd:
    case Node::Kind::kOr: {
      std::vector<PredicatePtr> parts;
      parts.reserve(node->children.size());
      for (const auto& ch : node->children) parts.push_back(lower(ch));
      return node->kind == Node::Kind::kAnd ? make_and(std::move(parts))
                                            : make_or(std::move(parts));
    }
  }
  HBCT_ASSERT_MSG(false, "lower: unknown node kind");
}

/// Per-node labels of a (possibly nested) formula on the explicit lattice.
/// Temporal-free subtrees are compiled to predicates and labeled in one
/// pass; temporal nodes apply the checker's operator labelings.
std::vector<char> eval_node_on_lattice(const LatticeChecker& chk,
                                       const NodePtr& node, DetectStats& st) {
  HBCT_ASSERT(node);
  if (!contains_temporal(node)) {
    CompileResult cr = compile_state(node);
    HBCT_ASSERT_MSG(cr.ok, "validated formula must compile");
    return chk.label(*cr.pred, &st);
  }
  switch (node->kind) {
    case Node::Kind::kNot: {
      auto v = eval_node_on_lattice(chk, node->children[0], st);
      for (auto& x : v) x = !x;
      return v;
    }
    case Node::Kind::kAnd:
    case Node::Kind::kOr: {
      auto acc = eval_node_on_lattice(chk, node->children[0], st);
      for (std::size_t i = 1; i < node->children.size(); ++i) {
        const auto v = eval_node_on_lattice(chk, node->children[i], st);
        for (std::size_t k = 0; k < acc.size(); ++k)
          acc[k] = node->kind == Node::Kind::kAnd
                       ? static_cast<char>(acc[k] && v[k])
                       : static_cast<char>(acc[k] || v[k]);
      }
      return acc;
    }
    case Node::Kind::kTemporal: {
      const auto p = eval_node_on_lattice(chk, node->children[0], st);
      switch (node->op) {
        case Op::kEF: return chk.ef(p);
        case Op::kAF: return chk.af(p);
        case Op::kEG: return chk.eg(p);
        case Op::kAG: return chk.ag(p);
        case Op::kEU:
        case Op::kAU: {
          const auto q = eval_node_on_lattice(chk, node->children[1], st);
          return node->op == Op::kEU ? chk.eu(p, q) : chk.au(p, q);
        }
      }
      break;
    }
    default:
      break;  // unreachable: temporal-free kinds handled above
  }
  HBCT_ASSERT_MSG(false, "eval_node_on_lattice: unexpected node");
}

void collect_term_errors(const Computation& c, const NodePtr& node,
                         std::string& err) {
  if (!node || !err.empty()) return;
  auto check_proc = [&](ProcId p, const char* what) {
    if (err.empty() && (p < 0 || p >= c.num_procs()))
      err = strfmt("%s references process %d, but the computation has %d",
                   what, p, c.num_procs());
  };
  auto check_term = [&](const Term& t) {
    if (!err.empty()) return;
    switch (t.kind) {
      case Term::Kind::kConst:
        break;
      case Term::Kind::kVar:
        check_proc(t.proc, t.var.c_str());
        if (err.empty() && !c.var_id(t.var))
          err = "unknown variable '" + t.var + "'";
        break;
      case Term::Kind::kPos:
        check_proc(t.proc, "pos()");
        break;
      case Term::Kind::kInTransit:
        check_proc(t.from, "intransit()");
        check_proc(t.to, "intransit()");
        break;
    }
  };
  if (node->kind == Node::Kind::kAtom) {
    for (const auto& [coef, t] : node->atom.lhs.terms) check_term(t);
    for (const auto& [coef, t] : node->atom.rhs.terms) check_term(t);
  }
  for (const auto& ch : node->children) collect_term_errors(c, ch, err);
}

}  // namespace

CompileResult compile_state(const NodePtr& node) {
  CompileResult r;
  if (!node) {
    r.error = "empty formula";
    return r;
  }
  if (contains_temporal(node)) {
    r.error = "temporal operators cannot be compiled to a state predicate";
    return r;
  }
  r.pred = lower(node);
  r.ok = true;
  return r;
}

std::string validate_query(const Computation& c, const Query& q) {
  std::string err;
  collect_term_errors(c, q.root ? q.root : q.p, err);
  if (!q.root) collect_term_errors(c, q.q, err);
  return err;
}

namespace {

/// Evaluates a (validated) query. When `oc` is non-null the query came out
/// of the optimizer under OptimizeMode::kApply: its pre-compiled (possibly
/// class-refined) operands are used, the applied rewrite chain is attached
/// to the result, and diagnostics come from the optimizer's residual
/// findings (a fresh lint of the rewritten text could not see the refined
/// classes and would contradict the actual route).
EvalResult evaluate_plain(const Computation& c, const Query& q,
                          const DispatchOptions& opt,
                          const OptimizeOutcome* oc) {
  EvalResult out;

  const auto attach_optimizer = [&]() {
    if (oc == nullptr) return;
    out.result.rewrites = oc->steps;
    if (opt.audit != AuditMode::kOff) {
      std::vector<Diagnostic> ds =
          optimize_diagnostics(*oc, OptimizeMode::kApply);
      ds.insert(ds.end(), oc->residual.begin(), oc->residual.end());
      // Keep any audit errors detect() raised; everything else is
      // re-stated by the optimizer's findings.
      for (Diagnostic& d : out.result.diagnostics)
        if (d.severity == DiagSeverity::kError) ds.push_back(std::move(d));
      out.result.diagnostics = std::move(ds);
    }
  };

  // Outside the paper's fragment (nested temporal operators, or boolean
  // structure over temporal subformulas): evaluate on the explicit lattice.
  if (!q.temporal && q.root && contains_temporal(q.root)) {
    if (opt.audit != AuditMode::kOff) {
      out.result.plan = "lattice-nested-ctl (exponential)";
      out.result.diagnostics = oc != nullptr
                                   ? oc->residual
                                   : lint_query(c, q, opt.allow_exponential);
      if (oc != nullptr) {
        std::vector<Diagnostic> ds =
            optimize_diagnostics(*oc, OptimizeMode::kApply);
        ds.insert(ds.end(), out.result.diagnostics.begin(),
                  out.result.diagnostics.end());
        out.result.diagnostics = std::move(ds);
      }
    }
    if (oc != nullptr) out.result.rewrites = oc->steps;
    auto lat = Lattice::try_build(c, opt.budget.max_states);
    if (!lat) {
      out.error = strfmt(
          "nested temporal formula needs the explicit lattice, which "
          "exceeds %zu cuts on this computation",
          opt.budget.max_states);
      return out;
    }
    LatticeChecker chk(std::move(*lat));
    DetectStats st;
    st.lattice_nodes = chk.lattice().size();
    st.lattice_edges = chk.lattice().num_edges();
    const auto labels = eval_node_on_lattice(chk, q.root, st);
    out.ok = true;
    out.result.verdict = verdict_of(labels[chk.lattice().bottom()] != 0);
    out.result.algorithm = "lattice-nested-ctl";
    out.result.stats = st;
    out.algorithm = out.result.algorithm;
    return out;
  }

  PredicatePtr ppred = oc != nullptr ? oc->p : nullptr;
  if (!ppred) {
    CompileResult p = compile_state(q.p);
    if (!p.ok) {
      out.error = p.error;
      return out;
    }
    ppred = p.pred;
  }
  if (!q.temporal) {
    out.ok = true;
    out.result.algorithm = "state-eval(initial)";
    if (opt.audit != AuditMode::kOff)
      out.result.plan = "state-eval(initial) (O(1) evals)";
    out.result.verdict = verdict_of(ppred->eval(c, c.initial_cut()));
    ++out.result.stats.predicate_evals;
    out.algorithm = out.result.algorithm;
    attach_optimizer();
    return out;
  }
  PredicatePtr qpred = oc != nullptr ? oc->q : nullptr;
  if (!qpred && (q.op == Op::kEU || q.op == Op::kAU)) {
    CompileResult qq = compile_state(q.q);
    if (!qq.ok) {
      out.error = qq.error;
      return out;
    }
    qpred = qq.pred;
  }
  out.result = detect(c, q.op, ppred, qpred, opt);
  if (oc == nullptr && opt.audit != AuditMode::kOff) {
    // detect() raised the lint findings span-less (it never sees the query
    // text). Substitute the source-anchored versions and keep the audit
    // errors, which have no source anchor to gain.
    std::vector<Diagnostic> ds = lint_query(c, q, opt.allow_exponential);
    for (Diagnostic& d : out.result.diagnostics)
      if (d.severity == DiagSeverity::kError) ds.push_back(std::move(d));
    out.result.diagnostics = std::move(ds);
  }
  attach_optimizer();
  out.algorithm = out.result.algorithm;
  out.ok = true;
  return out;
}

}  // namespace

EvalResult evaluate_query(const Computation& c, const Query& q,
                          const DispatchOptions& opt) {
  EvalResult out;
  out.error = validate_query(c, q);
  if (!out.error.empty()) return out;

  if (opt.optimize == OptimizeMode::kOff) return evaluate_plain(c, q, opt, nullptr);

  OptimizeOutcome oc = optimize_query(c, q, opt.allow_exponential);
  if (opt.optimize == OptimizeMode::kApply && oc.changed)
    return evaluate_plain(c, oc.query, opt, &oc);
  if (opt.optimize == OptimizeMode::kApply && !oc.changed) {
    // Nothing improved: evaluate as written, but still report that the
    // optimizer ran (empty chain).
    return evaluate_plain(c, q, opt, &oc);
  }

  // kAnalyzeOnly: evaluate the original query untouched, then attach the
  // chain the optimizer *would* apply.
  out = evaluate_plain(c, q, opt, nullptr);
  if (opt.audit != AuditMode::kOff) {
    std::vector<Diagnostic> ds =
        optimize_diagnostics(oc, OptimizeMode::kAnalyzeOnly);
    out.result.diagnostics.insert(out.result.diagnostics.end(),
                                  std::make_move_iterator(ds.begin()),
                                  std::make_move_iterator(ds.end()));
  }
  out.result.rewrites = std::move(oc.steps);
  return out;
}

EvalResult evaluate_query(const Computation& c, std::string_view text,
                          const DispatchOptions& opt) {
  ParseResult parsed = parse_query(text);
  if (!parsed.ok) {
    EvalResult out;
    out.error = parsed.error;
    return out;
  }
  return evaluate_query(c, parsed.query, opt);
}

}  // namespace hbct::ctl
