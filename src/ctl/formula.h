// Abstract syntax for the textual CTL fragment of Section 3.
//
// Grammar (see ctl/parser.h for the concrete syntax):
//
//   query    := 'EF' '(' state ')' | 'AF' '(' state ')'
//             | 'EG' '(' state ')' | 'AG' '(' state ')'
//             | 'E' '[' state 'U' state ']'
//             | 'A' '[' state 'U' state ']'
//             | state                      (evaluated at the initial cut)
//   state    := or-expression over atoms with '!', '&&', '||', parentheses
//   atom     := sum cmp sum | 'channels_empty' | 'terminated'
//             | 'true' | 'false'
//   sum      := term (('+'|'-') term)*
//   term     := <var> '@' 'P'<int> | 'pos' '(' <int> ')'
//             | 'intransit' '(' <int> ',' <int> ')' | <int>
//
// The fragment is deliberately non-nested (no temporal operator below
// another), matching the paper's Section 4 restriction.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"  // SourceSpan
#include "detect/detector.h"
#include "predicate/local.h"

namespace hbct::ctl {

struct Term {
  enum class Kind { kConst, kVar, kPos, kInTransit };
  Kind kind = Kind::kConst;
  std::int64_t value = 0;  // kConst
  ProcId proc = 0;         // kVar, kPos
  std::string var;         // kVar
  ProcId from = 0, to = 0; // kInTransit
};

/// Sum of ±terms.
struct Sum {
  std::vector<std::pair<int, Term>> terms;  // coefficient is +1 or -1
};

struct Node;
using NodePtr = std::shared_ptr<const Node>;

struct Atom {
  Sum lhs;
  Cmp op = Cmp::kEq;
  Sum rhs;
};

struct Node {
  enum class Kind {
    kTrue,
    kFalse,
    kAtom,
    kChannelsEmpty,
    kTerminated,
    kNot,
    kAnd,
    kOr,
    kTemporal,
  };
  Kind kind = Kind::kTrue;
  Atom atom;                      // kAtom
  std::vector<NodePtr> children;  // kNot (1), kAnd/kOr (>= 2),
                                  // kTemporal (1, or 2 for kEU/kAU)
  Op op = Op::kEF;                // kTemporal
  /// Byte range of this subformula in the query text the parser consumed;
  /// lint diagnostics anchor to it. Invalid for programmatically-built ASTs.
  SourceSpan span;
};

/// True when the formula contains a temporal operator anywhere. Nested
/// temporal formulas are outside the paper's fragment; they are evaluated
/// on the explicit lattice (exponential) rather than by the polynomial
/// algorithms.
bool contains_temporal(const NodePtr& n);

/// A parsed query. When the root is a single temporal operator over
/// temporal-free operands, `temporal`/`op`/`p`/`q` describe it (the paper's
/// fragment, eligible for the polynomial algorithms). `root` always holds
/// the full formula, including arbitrary nesting.
struct Query {
  bool temporal = false;
  Op op = Op::kEF;
  NodePtr p;
  NodePtr q;     // kEU/kAU only
  NodePtr root;  // the whole formula
};

std::string to_string(const Term& t);
std::string to_string(const Sum& s);
std::string to_string(const Node& n);
std::string to_string(const Query& f);

}  // namespace hbct::ctl
