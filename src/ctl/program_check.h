// Program-level checking — the footnote of Section 3: "a distributed
// program P satisfies a CTL formula p if and only if L ⊨ p for each L in P".
//
// A program here is anything that produces computations from seeds (in
// practice: a simulator workload under different schedules). check_program
// evaluates one query over every produced computation and aggregates:
// the program satisfies the query iff no run refutes it; refuting seeds are
// reported so the failing schedule can be replayed and debugged.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "ctl/compile.h"

namespace hbct::ctl {

struct ProgramCheckResult {
  /// True when every run satisfied the query. A run whose detection was cut
  /// short by the budget (kUnknown) does NOT refute the query, but is
  /// reported in unknown_seeds so the caller can retry with a larger budget.
  bool holds = true;
  /// Runs executed (== seeds.size() unless a query error aborted early).
  std::size_t runs = 0;
  /// Seeds whose computation refuted the query.
  std::vector<std::uint64_t> failing_seeds;
  /// Seeds whose detection exhausted its budget before reaching a verdict.
  std::vector<std::uint64_t> unknown_seeds;
  /// Parse/validation error, if any (empty otherwise; holds is then false).
  std::string error;
  /// Aggregated detection work across all runs.
  DetectStats stats;
  /// Lint/audit findings for the query, surfaced once (from the first run
  /// that produced any) rather than repeated per seed. Populated only when
  /// opt.audit != AuditMode::kOff.
  std::vector<Diagnostic> diagnostics;
};

/// Evaluates `query` on run(seed) for every seed. The query is parsed once;
/// validation happens against the first computation (all runs of one
/// program share the variable/process layout).
ProgramCheckResult check_program(
    const std::function<Computation(std::uint64_t)>& run,
    std::span<const std::uint64_t> seeds, std::string_view query,
    const DispatchOptions& opt = {});

/// Convenience: seeds 1..n.
ProgramCheckResult check_program(
    const std::function<Computation(std::uint64_t)>& run, std::size_t n,
    std::string_view query, const DispatchOptions& opt = {});

}  // namespace hbct::ctl
