#include "ctl/parser.h"

#include <cctype>

#include "util/string_util.h"

namespace hbct::ctl {

namespace {

struct Token {
  enum class Kind {
    kEnd,
    kIdent,    // variable names, keywords
    kInt,
    kLParen, kRParen, kLBracket, kRBracket,
    kComma, kAt, kPlus, kMinus,
    kNot, kAnd, kOr,
    kCmp,      // one of < <= == != >= >
  };
  Kind kind = Kind::kEnd;
  std::string text;
  std::int64_t value = 0;
  Cmp cmp = Cmp::kEq;
  std::size_t pos = 0;
  std::size_t end = 0;  // one past the last byte of the token
};

class Lexer {
 public:
  explicit Lexer(std::string_view s) : s_(s) {}

  Token next() {
    Token t = next_impl();
    t.end = i_;
    return t;
  }

 private:
  Token next_impl() {
    while (i_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[i_])))
      ++i_;
    Token t;
    t.pos = i_;
    if (i_ >= s_.size()) return t;
    const char c = s_[i_];
    auto two = [&](char a, char b) {
      return c == a && i_ + 1 < s_.size() && s_[i_ + 1] == b;
    };
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i_;
      while (j < s_.size() && std::isdigit(static_cast<unsigned char>(s_[j])))
        ++j;
      t.kind = Token::Kind::kInt;
      t.text = std::string(s_.substr(i_, j - i_));
      long long v = 0;
      parse_int(t.text, v);
      t.value = v;
      i_ = j;
      return t;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i_;
      while (j < s_.size() &&
             (std::isalnum(static_cast<unsigned char>(s_[j])) || s_[j] == '_'))
        ++j;
      t.kind = Token::Kind::kIdent;
      t.text = std::string(s_.substr(i_, j - i_));
      i_ = j;
      return t;
    }
    auto cmp_tok = [&](Cmp op, std::size_t len) {
      t.kind = Token::Kind::kCmp;
      t.cmp = op;
      i_ += len;
      return t;
    };
    if (two('<', '=')) return cmp_tok(Cmp::kLe, 2);
    if (two('>', '=')) return cmp_tok(Cmp::kGe, 2);
    if (two('=', '=')) return cmp_tok(Cmp::kEq, 2);
    if (two('!', '=')) return cmp_tok(Cmp::kNe, 2);
    if (c == '<') return cmp_tok(Cmp::kLt, 1);
    if (c == '>') return cmp_tok(Cmp::kGt, 1);
    if (two('&', '&')) { t.kind = Token::Kind::kAnd; i_ += 2; return t; }
    if (two('|', '|')) { t.kind = Token::Kind::kOr; i_ += 2; return t; }
    switch (c) {
      case '(': t.kind = Token::Kind::kLParen; break;
      case ')': t.kind = Token::Kind::kRParen; break;
      case '[': t.kind = Token::Kind::kLBracket; break;
      case ']': t.kind = Token::Kind::kRBracket; break;
      case ',': t.kind = Token::Kind::kComma; break;
      case '@': t.kind = Token::Kind::kAt; break;
      case '+': t.kind = Token::Kind::kPlus; break;
      case '-': t.kind = Token::Kind::kMinus; break;
      case '!': t.kind = Token::Kind::kNot; break;
      default:
        t.kind = Token::Kind::kEnd;
        t.text = std::string(1, c);
        t.value = -1;  // marks an illegal character
        break;
    }
    ++i_;
    return t;
  }

  std::string_view s_;
  std::size_t i_ = 0;
};

class Parser {
 public:
  explicit Parser(std::string_view s) : lex_(s) { advance(); }

  ParseResult run() {
    ParseResult out;
    Query q;
    if (!parse_qry(q)) {
      out.error = err_;
      return out;
    }
    if (cur_.kind != Token::Kind::kEnd || cur_.value == -1) {
      out.error = fail("unexpected trailing input");
      return out;
    }
    out.ok = true;
    out.query = std::move(q);
    return out;
  }

 private:
  void advance() {
    last_end_ = cur_.end;
    cur_ = lex_.next();
  }

  SourceSpan span_from(std::size_t begin) const {
    return {static_cast<std::uint32_t>(begin),
            static_cast<std::uint32_t>(last_end_)};
  }

  std::string fail(const std::string& msg) {
    if (err_.empty()) err_ = strfmt("col %zu: %s", cur_.pos + 1, msg.c_str());
    return err_;
  }

  bool expect(Token::Kind k, const char* what) {
    if (cur_.kind != k) {
      fail(std::string("expected ") + what);
      return false;
    }
    advance();
    return true;
  }

  bool parse_qry(Query& q) {
    NodePtr root;
    if (!parse_or(root)) return false;
    q.root = root;
    // When the root is a single temporal operator whose operands are
    // temporal-free, expose the paper-fragment view for the dispatcher.
    if (root->kind == Node::Kind::kTemporal &&
        !contains_temporal(root->children[0]) &&
        (root->children.size() < 2 || !contains_temporal(root->children[1]))) {
      q.temporal = true;
      q.op = root->op;
      q.p = root->children[0];
      if (root->children.size() == 2) q.q = root->children[1];
    } else {
      q.temporal = false;
      q.p = root;
    }
    return true;
  }

  // state := and-chain ('||' and-chain)*
  bool parse_or(NodePtr& out) {
    const std::size_t begin = cur_.pos;
    NodePtr first;
    if (!parse_and(first)) return false;
    std::vector<NodePtr> parts{std::move(first)};
    while (cur_.kind == Token::Kind::kOr) {
      advance();
      NodePtr next;
      if (!parse_and(next)) return false;
      parts.push_back(std::move(next));
    }
    if (parts.size() == 1) {
      out = std::move(parts[0]);
      return true;
    }
    auto n = std::make_shared<Node>();
    n->kind = Node::Kind::kOr;
    n->children = std::move(parts);
    n->span = span_from(begin);
    out = std::move(n);
    return true;
  }

  bool parse_and(NodePtr& out) {
    const std::size_t begin = cur_.pos;
    NodePtr first;
    if (!parse_not(first)) return false;
    std::vector<NodePtr> parts{std::move(first)};
    while (cur_.kind == Token::Kind::kAnd) {
      advance();
      NodePtr next;
      if (!parse_not(next)) return false;
      parts.push_back(std::move(next));
    }
    if (parts.size() == 1) {
      out = std::move(parts[0]);
      return true;
    }
    auto n = std::make_shared<Node>();
    n->kind = Node::Kind::kAnd;
    n->children = std::move(parts);
    n->span = span_from(begin);
    out = std::move(n);
    return true;
  }

  bool parse_not(NodePtr& out) {
    if (cur_.kind == Token::Kind::kNot) {
      const std::size_t begin = cur_.pos;
      advance();
      NodePtr inner;
      if (!parse_not(inner)) return false;
      auto n = std::make_shared<Node>();
      n->kind = Node::Kind::kNot;
      n->children.push_back(std::move(inner));
      n->span = span_from(begin);
      out = std::move(n);
      return true;
    }
    return parse_primary(out);
  }

  bool parse_atom_tail(Atom& a, Sum lhs) {
    a.lhs = std::move(lhs);
    if (cur_.kind != Token::Kind::kCmp) {
      fail("expected comparison operator");
      return false;
    }
    a.op = cur_.cmp;
    advance();
    return parse_sum(a.rhs);
  }

  bool parse_primary(NodePtr& out) {
    const std::size_t begin = cur_.pos;
    if (cur_.kind == Token::Kind::kLParen) {
      advance();
      if (!parse_or(out)) return false;
      return expect(Token::Kind::kRParen, "')'");
    }
    if (cur_.kind == Token::Kind::kIdent) {
      const std::string id = cur_.text;
      if (id == "true" || id == "false") {
        auto n = std::make_shared<Node>();
        n->kind = id == "true" ? Node::Kind::kTrue : Node::Kind::kFalse;
        advance();
        n->span = span_from(begin);
        out = std::move(n);
        return true;
      }
      if (id == "channels_empty" || id == "terminated") {
        auto n = std::make_shared<Node>();
        n->kind = id == "channels_empty" ? Node::Kind::kChannelsEmpty
                                         : Node::Kind::kTerminated;
        advance();
        n->span = span_from(begin);
        out = std::move(n);
        return true;
      }
      if (id == "EF" || id == "AF" || id == "EG" || id == "AG") {
        advance();
        auto n = std::make_shared<Node>();
        n->kind = Node::Kind::kTemporal;
        n->op = id == "EF"   ? Op::kEF
                : id == "AF" ? Op::kAF
                : id == "EG" ? Op::kEG
                             : Op::kAG;
        if (!expect(Token::Kind::kLParen, "'('")) return false;
        NodePtr child;
        if (!parse_or(child)) return false;
        if (!expect(Token::Kind::kRParen, "')'")) return false;
        n->children.push_back(std::move(child));
        n->span = span_from(begin);
        out = std::move(n);
        return true;
      }
      if (id == "E" || id == "A") {
        advance();
        if (cur_.kind != Token::Kind::kLBracket) {
          fail("expected '[' after E/A (or a full variable reference)");
          return false;
        }
        advance();
        auto n = std::make_shared<Node>();
        n->kind = Node::Kind::kTemporal;
        n->op = id == "E" ? Op::kEU : Op::kAU;
        NodePtr p, q;
        if (!parse_or(p)) return false;
        if (cur_.kind != Token::Kind::kIdent || cur_.text != "U") {
          fail("expected 'U'");
          return false;
        }
        advance();
        if (!parse_or(q)) return false;
        if (!expect(Token::Kind::kRBracket, "']'")) return false;
        n->children.push_back(std::move(p));
        n->children.push_back(std::move(q));
        n->span = span_from(begin);
        out = std::move(n);
        return true;
      }
      // An atom whose first term starts with this identifier.
      advance();
      Term first;
      if (!parse_term_tail(id, first)) return false;
      Sum lhs;
      lhs.terms.emplace_back(1, std::move(first));
      if (!parse_sum_rest(lhs)) return false;
      Atom a;
      if (!parse_atom_tail(a, std::move(lhs))) return false;
      auto n = std::make_shared<Node>();
      n->kind = Node::Kind::kAtom;
      n->atom = std::move(a);
      n->span = span_from(begin);
      out = std::move(n);
      return true;
    }
    // Otherwise an arithmetic atom starting with a number or sign.
    Sum lhs;
    if (!parse_sum(lhs)) return false;
    Atom a;
    if (!parse_atom_tail(a, std::move(lhs))) return false;
    auto n = std::make_shared<Node>();
    n->kind = Node::Kind::kAtom;
    n->atom = std::move(a);
    n->span = span_from(begin);
    out = std::move(n);
    return true;
  }

  bool parse_sum(Sum& out) {
    int coef = 1;
    if (cur_.kind == Token::Kind::kMinus) {
      coef = -1;
      advance();
    } else if (cur_.kind == Token::Kind::kPlus) {
      advance();
    }
    Term t;
    if (!parse_term(t)) return false;
    out.terms.emplace_back(coef, std::move(t));
    return parse_sum_rest(out);
  }

  /// Continues a sum after its first term is already in `out`.
  bool parse_sum_rest(Sum& out) {
    while (cur_.kind == Token::Kind::kPlus ||
           cur_.kind == Token::Kind::kMinus) {
      const int coef = cur_.kind == Token::Kind::kPlus ? 1 : -1;
      advance();
      Term next;
      if (!parse_term(next)) return false;
      out.terms.emplace_back(coef, std::move(next));
    }
    return true;
  }

  bool parse_proc_ref(ProcId& out) {
    // 'P'<int> or a bare integer.
    if (cur_.kind == Token::Kind::kInt) {
      out = static_cast<ProcId>(cur_.value);
      advance();
      return true;
    }
    if (cur_.kind == Token::Kind::kIdent && cur_.text.size() >= 2 &&
        cur_.text[0] == 'P') {
      long long v = 0;
      if (parse_int(std::string_view(cur_.text).substr(1), v)) {
        out = static_cast<ProcId>(v);
        advance();
        return true;
      }
    }
    fail("expected process reference (P<k> or integer)");
    return false;
  }

  bool parse_term(Term& out) {
    if (cur_.kind == Token::Kind::kInt) {
      out.kind = Term::Kind::kConst;
      out.value = cur_.value;
      advance();
      return true;
    }
    if (cur_.kind != Token::Kind::kIdent) {
      fail("expected term");
      return false;
    }
    const std::string id = cur_.text;
    advance();
    return parse_term_tail(id, out);
  }

  /// Term parsing when the leading identifier has been consumed already.
  bool parse_term_tail(const std::string& id, Term& out) {
    if (id == "pos") {
      if (!expect(Token::Kind::kLParen, "'('")) return false;
      out.kind = Term::Kind::kPos;
      if (!parse_proc_ref(out.proc)) return false;
      return expect(Token::Kind::kRParen, "')'");
    }
    if (id == "intransit") {
      if (!expect(Token::Kind::kLParen, "'('")) return false;
      out.kind = Term::Kind::kInTransit;
      if (!parse_proc_ref(out.from)) return false;
      if (!expect(Token::Kind::kComma, "','")) return false;
      if (!parse_proc_ref(out.to)) return false;
      return expect(Token::Kind::kRParen, "')'");
    }
    // Variable reference: <name> '@' P<k>.
    out.kind = Term::Kind::kVar;
    out.var = id;
    if (!expect(Token::Kind::kAt, "'@' after variable name")) return false;
    return parse_proc_ref(out.proc);
  }

  Lexer lex_;
  Token cur_;
  std::size_t last_end_ = 0;
  std::string err_;
};

}  // namespace

ParseResult parse_query(std::string_view text) { return Parser(text).run(); }

}  // namespace hbct::ctl
