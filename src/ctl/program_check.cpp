#include "ctl/program_check.h"

#include <numeric>

namespace hbct::ctl {

ProgramCheckResult check_program(
    const std::function<Computation(std::uint64_t)>& run,
    std::span<const std::uint64_t> seeds, std::string_view query,
    const DispatchOptions& opt) {
  ProgramCheckResult out;
  ParseResult parsed = parse_query(query);
  if (!parsed.ok) {
    out.holds = false;
    out.error = parsed.error;
    return out;
  }
  for (const std::uint64_t seed : seeds) {
    Computation c = run(seed);
    EvalResult r = evaluate_query(c, parsed.query, opt);
    if (!r.ok) {
      out.holds = false;
      out.error = r.error;
      return out;
    }
    ++out.runs;
    out.stats += r.result.stats;
    if (out.diagnostics.empty() && !r.result.diagnostics.empty())
      out.diagnostics = std::move(r.result.diagnostics);
    if (r.result.verdict == Verdict::kUnknown) {
      out.unknown_seeds.push_back(seed);
    } else if (r.result.verdict == Verdict::kFails) {
      out.holds = false;
      out.failing_seeds.push_back(seed);
    }
  }
  return out;
}

ProgramCheckResult check_program(
    const std::function<Computation(std::uint64_t)>& run, std::size_t n,
    std::string_view query, const DispatchOptions& opt) {
  std::vector<std::uint64_t> seeds(n);
  std::iota(seeds.begin(), seeds.end(), 1);
  return check_program(run, seeds, query, opt);
}

}  // namespace hbct::ctl
