#include "ctl/formula.h"

#include <sstream>

#include "util/assert.h"
#include "util/string_util.h"

namespace hbct::ctl {

std::string to_string(const Term& t) {
  switch (t.kind) {
    case Term::Kind::kConst:
      return std::to_string(t.value);
    case Term::Kind::kVar:
      return strfmt("%s@P%d", t.var.c_str(), t.proc);
    case Term::Kind::kPos:
      return strfmt("pos(%d)", t.proc);
    case Term::Kind::kInTransit:
      return strfmt("intransit(%d,%d)", t.from, t.to);
  }
  return "?";
}

std::string to_string(const Sum& s) {
  std::ostringstream os;
  for (std::size_t i = 0; i < s.terms.size(); ++i) {
    const auto& [coef, term] = s.terms[i];
    if (i == 0) {
      if (coef < 0) os << "-";
    } else {
      os << (coef < 0 ? " - " : " + ");
    }
    os << to_string(term);
  }
  return os.str();
}

std::string to_string(const Node& n) {
  switch (n.kind) {
    case Node::Kind::kTrue:
      return "true";
    case Node::Kind::kFalse:
      return "false";
    case Node::Kind::kChannelsEmpty:
      return "channels_empty";
    case Node::Kind::kTerminated:
      return "terminated";
    case Node::Kind::kAtom:
      return to_string(n.atom.lhs) + " " + hbct::to_string(n.atom.op) + " " +
             to_string(n.atom.rhs);
    case Node::Kind::kNot:
      HBCT_ASSERT(n.children.size() == 1);
      return "!(" + to_string(*n.children[0]) + ")";
    case Node::Kind::kAnd:
    case Node::Kind::kOr: {
      std::ostringstream os;
      const char* sep = n.kind == Node::Kind::kAnd ? " && " : " || ";
      for (std::size_t i = 0; i < n.children.size(); ++i) {
        if (i) os << sep;
        os << "(" << to_string(*n.children[i]) << ")";
      }
      return os.str();
    }
    case Node::Kind::kTemporal:
      switch (n.op) {
        case Op::kEU:
          return "E[" + to_string(*n.children[0]) + " U " +
                 to_string(*n.children[1]) + "]";
        case Op::kAU:
          return "A[" + to_string(*n.children[0]) + " U " +
                 to_string(*n.children[1]) + "]";
        default:
          return std::string(hbct::to_string(n.op)) + "(" +
                 to_string(*n.children[0]) + ")";
      }
  }
  return "?";
}

bool contains_temporal(const NodePtr& n) {
  if (!n) return false;
  if (n->kind == Node::Kind::kTemporal) return true;
  for (const auto& ch : n->children)
    if (contains_temporal(ch)) return true;
  return false;
}

std::string to_string(const Query& f) {
  if (!f.temporal) return to_string(*f.p);
  switch (f.op) {
    case Op::kEF:
    case Op::kAF:
    case Op::kEG:
    case Op::kAG:
      return std::string(hbct::to_string(f.op)) + "(" + to_string(*f.p) + ")";
    case Op::kEU:
      return "E[" + to_string(*f.p) + " U " + to_string(*f.q) + "]";
    case Op::kAU:
      return "A[" + to_string(*f.p) + " U " + to_string(*f.q) + "]";
  }
  return "?";
}

}  // namespace hbct::ctl
