#!/usr/bin/env python3
"""Report-only diff of two hbct.bench/1 JSON files.

Usage: bench_diff.py BASELINE.json CURRENT.json [--threshold 0.10]

Compares per-cell median wall-clock times and prints a table of deltas.
Cells whose median regressed by more than the threshold (default 10%) are
flagged with "WARN". The exit code is always 0: benchmark noise on shared
CI runners makes a hard gate flaky, so this is a visibility tool — the
committed baselines are refreshed deliberately, not by CI.
"""

import argparse
import json
import sys


def load_rows(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "hbct.bench/1":
        sys.exit(f"{path}: not an hbct.bench/1 file")
    return doc.get("bench", "?"), {r["name"]: r for r in doc.get("rows", [])}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="warn when median regresses by more than this "
                         "fraction (default 0.10)")
    args = ap.parse_args()

    bench_a, base = load_rows(args.baseline)
    bench_b, cur = load_rows(args.current)
    if bench_a != bench_b:
        print(f"note: comparing different benches ({bench_a} vs {bench_b})")

    width = max([len(n) for n in set(base) | set(cur)] + [4])
    print(f"{'cell':<{width}}  {'base med ns':>12}  {'cur med ns':>12}  "
          f"{'delta':>8}")
    warnings = 0
    for name in sorted(set(base) | set(cur)):
        if name not in base:
            print(f"{name:<{width}}  {'-':>12}  "
                  f"{cur[name]['ns']['median']:>12.0f}  {'new':>8}")
            continue
        if name not in cur:
            print(f"{name:<{width}}  {base[name]['ns']['median']:>12.0f}  "
                  f"{'-':>12}  {'gone':>8}")
            continue
        b = base[name]["ns"]["median"]
        c = cur[name]["ns"]["median"]
        delta = (c - b) / b if b else 0.0
        flag = "  WARN: regression" if delta > args.threshold else ""
        print(f"{name:<{width}}  {b:>12.0f}  {c:>12.0f}  {delta:>+7.1%}{flag}")
        if delta > args.threshold:
            warnings += 1
    if warnings:
        print(f"\n{warnings} cell(s) regressed beyond "
              f"{args.threshold:.0%} (report-only, not failing the build)")
    else:
        print("\nno cell regressed beyond the threshold")

    # Flight-recorder A/B pairs (rows differing only by a /norec suffix, or
    # a /norec sibling of a /gc row): print the gating overhead measured in
    # the current run — the telemetry layer's always-on claim is <= 2%.
    # An INVERTED flag means the off-side measured *slower* than the
    # on-side beyond the noise threshold, which can only be a measurement
    # problem (cold passes in the sample, uninterleaved A/B, histogram
    # quantization) — investigate the harness, not the feature.
    inversions = 0
    for name in sorted(cur):
        if not name.endswith("/norec"):
            continue
        base_name = name[: -len("/norec")]
        on_name = next((n for n in (base_name + "/rec", base_name)
                        if n in cur), None)
        if on_name is None:
            continue
        on = cur[on_name]["ns"]["median"]
        off = cur[name]["ns"]["median"]
        if off:
            overhead = (on - off) / off
            flag = ""
            if overhead < -args.threshold:
                flag = "  INVERTED: off-pass slower than on-pass"
                inversions += 1
            print(f"recorder overhead {on_name} vs {name}: "
                  f"{overhead:+.2%}{flag}")
        flag = inverted_latency(cur, on_name, name, args.threshold)
        if flag:
            inversions += 1
            print(flag)

    # Incremental-until A/B pairs (X vs X/batch or X/inc vs X/batch): the
    # speedup of the amortized feed-time evaluator over the batch decision
    # walk, in wall clock and (for bench_watch rows) fire-latency p99.
    for name in sorted(cur):
        if not name.endswith("/batch"):
            continue
        base_name = name[: -len("/batch")]
        inc_name = next((n for n in (base_name + "/inc", base_name)
                         if n in cur), None)
        if inc_name is None:
            continue
        inc = cur[inc_name]["ns"]["median"]
        batch = cur[name]["ns"]["median"]
        if inc:
            print(f"until incremental speedup {inc_name} vs {name}: "
                  f"{batch / inc:.2f}x wall")
        iw = cur[inc_name].get("watch")
        bw = cur[name].get("watch")
        if iw and bw and iw.get("fire_p99_ns"):
            print(f"until incremental fire p99 {inc_name} vs {name}: "
                  f"{iw['fire_p99_ns']} ns vs {bw['fire_p99_ns']} ns "
                  f"({bw['fire_p99_ns'] / iw['fire_p99_ns']:.1f}x)")
    if inversions:
        print(f"\n{inversions} inverted A/B pair(s): the measurement is "
              f"suspect (report-only, not failing the build)")
    return 0


def inverted_latency(cur, on_name, off_name, threshold):
    """Fire-latency inversion check on an A/B pair's watch extensions: the
    off-side p99 sitting far above the on-side is a harness bug (this is
    how a 33.5 ms cold-pass p99 shipped in a /norec row)."""
    on = cur[on_name].get("watch")
    off = cur[off_name].get("watch")
    if not on or not off:
        return None
    on_p99 = on.get("fire_p99_ns", 0)
    off_p99 = off.get("fire_p99_ns", 0)
    if on_p99 and off_p99 > on_p99 * (1 + max(threshold, 0.5)):
        return (f"  INVERTED: {off_name} fire p99 {off_p99} ns vs "
                f"{on_name} {on_p99} ns")
    return None


if __name__ == "__main__":
    sys.exit(main())
