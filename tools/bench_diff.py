#!/usr/bin/env python3
"""Report-only diff of two hbct.bench/1 JSON files.

Usage: bench_diff.py BASELINE.json CURRENT.json [--threshold 0.10]

Compares per-cell median wall-clock times and prints a table of deltas.
Cells whose median regressed by more than the threshold (default 10%) are
flagged with "WARN". The exit code is always 0: benchmark noise on shared
CI runners makes a hard gate flaky, so this is a visibility tool — the
committed baselines are refreshed deliberately, not by CI.
"""

import argparse
import json
import sys


def load_rows(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "hbct.bench/1":
        sys.exit(f"{path}: not an hbct.bench/1 file")
    return doc.get("bench", "?"), {r["name"]: r for r in doc.get("rows", [])}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="warn when median regresses by more than this "
                         "fraction (default 0.10)")
    args = ap.parse_args()

    bench_a, base = load_rows(args.baseline)
    bench_b, cur = load_rows(args.current)
    if bench_a != bench_b:
        print(f"note: comparing different benches ({bench_a} vs {bench_b})")

    width = max([len(n) for n in set(base) | set(cur)] + [4])
    print(f"{'cell':<{width}}  {'base med ns':>12}  {'cur med ns':>12}  "
          f"{'delta':>8}")
    warnings = 0
    for name in sorted(set(base) | set(cur)):
        if name not in base:
            print(f"{name:<{width}}  {'-':>12}  "
                  f"{cur[name]['ns']['median']:>12.0f}  {'new':>8}")
            continue
        if name not in cur:
            print(f"{name:<{width}}  {base[name]['ns']['median']:>12.0f}  "
                  f"{'-':>12}  {'gone':>8}")
            continue
        b = base[name]["ns"]["median"]
        c = cur[name]["ns"]["median"]
        delta = (c - b) / b if b else 0.0
        flag = "  WARN: regression" if delta > args.threshold else ""
        print(f"{name:<{width}}  {b:>12.0f}  {c:>12.0f}  {delta:>+7.1%}{flag}")
        if delta > args.threshold:
            warnings += 1
    if warnings:
        print(f"\n{warnings} cell(s) regressed beyond "
              f"{args.threshold:.0%} (report-only, not failing the build)")
    else:
        print("\nno cell regressed beyond the threshold")

    # Flight-recorder A/B pairs (rows differing only by a /norec suffix, or
    # a /norec sibling of a /gc row): print the gating overhead measured in
    # the current run — the telemetry layer's always-on claim is <= 2%.
    for name in sorted(cur):
        if not name.endswith("/norec"):
            continue
        base_name = name[: -len("/norec")]
        on_name = next((n for n in (base_name + "/rec", base_name)
                        if n in cur), None)
        if on_name is None:
            continue
        on = cur[on_name]["ns"]["median"]
        off = cur[name]["ns"]["median"]
        if off:
            print(f"recorder overhead {on_name} vs {name}: "
                  f"{(on - off) / off:+.2%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
