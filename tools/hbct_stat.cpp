// Top-style view of a running hbct streaming service, read from Prometheus
// exposition snapshots (the files the obs/expose.h Exporter writes).
//
//   $ hbct_stat /var/run/hbct/metrics.prom
//   $ hbct_stat --prev old.prom new.prom          # rates from two scrapes
//   $ hbct_stat --watch 2 /var/run/hbct/metrics.prom   # re-read every 2s
//   $ hbct_stat --raw metrics.prom                # re-render the exposition
//
// The table shows sessions (open/opened/closed/failed), event totals and
// rates, resident memory with GC counters, ingest latency percentiles, one
// row per watch class (fires, rate, fire-latency p50/p99), and — when
// --slo is given — SLO status evaluated against the snapshot. With two
// snapshots (--prev, or successive reads under --watch) counters become
// rates using the hbct_exposition_timestamp_ns gauge embedded in each
// scrape. The same renderer backs the debug REPL's `stat` command, attached
// in-process to the global registry.
//
//   --slo class=p99:50us   adds a fire-latency objective for a watch class
//                          (conjunctive, disjunctive, invariant, stable,
//                          until); repeatable.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/expose.h"
#include "obs/slo.h"

using namespace hbct;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options] <exposition-file>\n"
               "  --prev <file>     earlier scrape of the same service; turns\n"
               "                    counters into rates\n"
               "  --watch <secs>    clear + re-read every <secs> seconds\n"
               "  --slo <spec>      fire-latency objective, e.g.\n"
               "                    --slo conjunctive=p99:50us (repeatable)\n"
               "  --raw             print the parsed snapshot re-rendered as\n"
               "                    exposition text (round-trip check)\n",
               argv0);
  return 64;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

/// "50us" / "2ms" / "1500ns" / "1s" -> nanoseconds; 0 on parse failure.
std::uint64_t parse_ns(const std::string& s) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || v < 0) return 0;
  const std::string unit(end);
  if (unit == "ns" || unit.empty()) return static_cast<std::uint64_t>(v);
  if (unit == "us") return static_cast<std::uint64_t>(v * 1e3);
  if (unit == "ms") return static_cast<std::uint64_t>(v * 1e6);
  if (unit == "s") return static_cast<std::uint64_t>(v * 1e9);
  return 0;
}

/// "--slo conjunctive=p99:50us" -> SloSpec via SloTracker::fire_latency.
bool parse_slo(const std::string& arg, SloTracker* slos) {
  const std::size_t eq = arg.find('=');
  if (eq == std::string::npos) return false;
  const std::string cls = arg.substr(0, eq);
  std::string rest = arg.substr(eq + 1);
  if (rest.size() < 2 || rest[0] != 'p') return false;
  const std::size_t colon = rest.find(':');
  if (colon == std::string::npos) return false;
  const double pct = std::strtod(rest.substr(1, colon - 1).c_str(), nullptr);
  const std::uint64_t ns = parse_ns(rest.substr(colon + 1));
  if (pct <= 0 || pct > 100 || ns == 0) return false;
  slos->add(SloTracker::fire_latency(cls, pct / 100.0, ns));
  return true;
}

int render_once(const std::string& path, const std::string& prev_path,
                const SloTracker* slos, bool raw) {
  std::string text;
  if (!read_file(path, &text)) {
    std::fprintf(stderr, "hbct_stat: cannot read %s\n", path.c_str());
    return 66;
  }
  MetricsSnapshot snap;
  std::string err;
  if (!parse_prometheus(text, &snap, &err)) {
    std::fprintf(stderr, "hbct_stat: %s: %s\n", path.c_str(), err.c_str());
    return 65;
  }
  if (raw) {
    ExpositionOptions eo;
    auto it = snap.gauges.find("exposition.timestamp_ns");
    if (it != snap.gauges.end())
      eo.timestamp_ns = static_cast<std::uint64_t>(it->second);
    std::fputs(render_prometheus(snap, eo).c_str(), stdout);
    return 0;
  }
  MetricsSnapshot prev;
  bool have_prev = false;
  if (!prev_path.empty()) {
    std::string prev_text;
    if (!read_file(prev_path, &prev_text) ||
        !parse_prometheus(prev_text, &prev, &err)) {
      std::fprintf(stderr, "hbct_stat: bad --prev %s\n", prev_path.c_str());
      return 65;
    }
    have_prev = true;
  }
  std::fputs(
      render_stat_table(snap, have_prev ? &prev : nullptr, slos).c_str(),
      stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path, prev_path;
  int watch_secs = 0;
  bool raw = false;
  SloTracker slos;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--prev" && i + 1 < argc) {
      prev_path = argv[++i];
    } else if (a == "--watch" && i + 1 < argc) {
      watch_secs = std::atoi(argv[++i]);
      if (watch_secs <= 0) return usage(argv[0]);
    } else if (a == "--slo" && i + 1 < argc) {
      if (!parse_slo(argv[++i], &slos)) {
        std::fprintf(stderr, "hbct_stat: bad --slo spec\n");
        return usage(argv[0]);
      }
    } else if (a == "--raw") {
      raw = true;
    } else if (a == "-h" || a == "--help") {
      return usage(argv[0]);
    } else if (!a.empty() && a[0] == '-') {
      return usage(argv[0]);
    } else if (path.empty()) {
      path = a;
    } else {
      return usage(argv[0]);
    }
  }
  if (path.empty()) return usage(argv[0]);

  if (watch_secs == 0) return render_once(path, prev_path, &slos, raw);

  // Watch mode: the previous read becomes the rate baseline. The file is
  // re-read in place (the Exporter's atomic rename guarantees each read
  // sees one complete scrape).
  std::string prev_tmp;
  for (;;) {
    std::fputs("\x1b[H\x1b[2J", stdout);  // clear
    const int rc = render_once(path, prev_tmp, &slos, raw);
    if (rc != 0) return rc;
    std::fflush(stdout);
    // Keep this read as the next round's baseline via a temp copy.
    std::string text;
    if (read_file(path, &text)) {
      prev_tmp = path + ".hbct_stat_prev";
      write_file_atomic(prev_tmp, text);
    }
    std::this_thread::sleep_for(std::chrono::seconds(watch_secs));
  }
}
