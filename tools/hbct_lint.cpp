// Standalone CTL query linter: parse + class-inference + cost-model
// optimizer over query files, without running any detection.
//
//   $ hbct_lint --sim token_mutex examples/queries/mutex.qry
//   $ hbct_lint --trace run.trace --fix my_queries.qry
//   $ hbct_lint --corpus
//
// Query files hold one query per line; blank lines and `#` comments are
// skipped. Every query is linted against the chosen computation (a sim
// workload by default, a recorded trace with --trace), then pushed through
// the cost-model optimizer (analysis/optimize.h).
//
// Exit status is the contract the CI lint job relies on: nonzero when any
// query still dispatches to an exponential (W001) or intractable (W002)
// route *after* the optimizer has applied every rewrite it knows — i.e.
// when no applicable rewrite exists and a human has to restructure the
// query. A W001 the optimizer can reroute (e.g. a stable-inferable sum, a
// DNF-splittable operand) prints the chain and passes.
//
// --fix prints the optimized form next to each rewritten query so it can
// be pasted back into the source file.
//
// --corpus sweeps the scenario corpus batteries instead (predicate-level,
// no query text): purely informational, always exit 0 — the corpus
// intentionally keeps exponential cells (e.g. an ef-dfs fallback) as
// dispatcher coverage.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "hbct.h"
#include "corpus/scenario.h"

using namespace hbct;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options] [query-file...]\n"
      "  -q <query>       lint one query given inline (repeatable)\n"
      "  --trace <file>   lint against a recorded trace ('-' = stdin)\n"
      "  --sim <name>     lint against a sim workload: token_mutex, ra_mutex,\n"
      "                   leader_election, token_ring, producer_consumer,\n"
      "                   barrier (default: token_mutex)\n"
      "  --procs <n>      workload processes (default 4)\n"
      "  --scale <n>      workload rounds/items (default 3)\n"
      "  --fix            print the optimizer's rewritten form\n"
      "  --corpus         informational sweep over the scenario batteries\n",
      argv0);
  return 64;
}

bool build_sim(const std::string& name, std::int32_t procs, std::int32_t scale,
               Computation& out) {
  if (name == "token_mutex")
    out = sim::make_token_mutex(procs, scale, /*inject_violation=*/true).run({});
  else if (name == "ra_mutex")
    out = sim::make_ra_mutex(procs, scale).run({});
  else if (name == "leader_election")
    out = sim::make_leader_election(procs).run({});
  else if (name == "token_ring")
    out = sim::make_token_ring(procs, scale).run({});
  else if (name == "producer_consumer")
    out = sim::make_producer_consumer(procs * scale, scale).run({});
  else if (name == "barrier")
    out = sim::make_barrier(procs, scale).run({});
  else
    return false;
  return true;
}

bool is_cliff(const Diagnostic& d) {
  return d.code == DiagCode::kExponentialFallback ||
         d.code == DiagCode::kIntractableClass;
}

/// Lints one query; returns false when an exponential/intractable dispatch
/// survives the optimizer (the CI-failing condition).
bool lint_one(const Computation& c, const std::string& origin,
              const std::string& text, bool fix) {
  std::printf("%s: %s\n", origin.c_str(), text.c_str());
  const auto parsed = ctl::parse_query(text);
  if (!parsed.ok) {
    std::printf("  parse error: %s\n", parsed.error.c_str());
    return false;
  }
  const std::string err = ctl::validate_query(c, parsed.query);
  if (!err.empty()) {
    std::printf("  error: %s\n", err.c_str());
    return false;
  }

  const auto as_written = ctl::lint_query(c, parsed.query);
  for (const Diagnostic& d : as_written)
    std::printf("  %s\n", to_string(d).c_str());

  const ctl::OptimizeOutcome oc = ctl::optimize_query(c, parsed.query);
  if (oc.changed) {
    std::printf("  optimizer: %s (cost %.0f) => %s (cost %.0f)\n",
                oc.plan_before.c_str(), oc.cost_before, oc.plan_after.c_str(),
                oc.cost_after);
    for (const RewriteStep& s : oc.steps)
      std::printf("    %s\n", to_string(s).c_str());
    if (fix) std::printf("  fixed: %s\n", to_string(oc.query).c_str());
  }

  for (const Diagnostic& d : oc.residual) {
    if (!is_cliff(d)) continue;
    std::printf("  FAIL %s: no applicable rewrite%s%s\n",
                to_string(d.code).c_str(),
                d.suggestion.empty() ? "" : "; ", d.suggestion.c_str());
    return false;
  }
  // W003 nested-temporal formulas also have no rewrite into the fragment.
  for (const Diagnostic& d : oc.residual)
    if (d.code == DiagCode::kNestedTemporal) {
      std::printf("  FAIL W003: no applicable rewrite; %s\n",
                  d.suggestion.c_str());
      return false;
    }
  std::printf("  ok\n");
  return true;
}

int run_corpus() {
  for (const corpus::ScenarioSpec& spec : corpus::scenario_registry()) {
    const corpus::Scenario s = spec.build({});
    std::printf("%s: %d procs, %lld events, %zu cells\n", s.name.c_str(),
                s.computation.num_procs(),
                static_cast<long long>(s.computation.total_events()),
                s.battery.size());
    for (const corpus::BatteryCell& cell : s.battery) {
      const PredShape sp = shape_of(cell.pred, s.computation);
      DetectPlan plan;
      std::vector<Diagnostic> ds;
      if (cell.op == Op::kEU || cell.op == Op::kAU) {
        const PredShape sq = shape_of(cell.until_q, s.computation);
        plan = plan_until(cell.op, sp, sq, /*all_q_disjuncts_linear=*/false,
                          /*allow_exponential=*/true);
        ds = plan_diagnostics(cell.op, *cell.pred, sp, plan);
      } else {
        plan = plan_unary(cell.op, sp, /*allow_exponential=*/true);
        ds = plan_diagnostics(cell.op, *cell.pred, sp, plan);
      }
      std::printf("  %-28s %s\n", cell.name.c_str(),
                  plan_to_string(plan).c_str());
      for (const Diagnostic& d : ds)
        std::printf("    %s\n", to_string(d).c_str());
    }
  }
  return 0;  // informational: the corpus keeps exponential cells on purpose
}

}  // namespace

int main(int argc, char** argv) {
  std::string sim_name = "token_mutex";
  std::string trace_path;
  std::int32_t procs = 4, scale = 3;
  bool fix = false, corpus_mode = false;
  std::vector<std::string> inline_queries;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--fix") {
      fix = true;
    } else if (a == "--corpus") {
      corpus_mode = true;
    } else if (a == "-q") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      inline_queries.push_back(v);
    } else if (a == "--trace") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      trace_path = v;
    } else if (a == "--sim") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      sim_name = v;
    } else if (a == "--procs") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      procs = std::atoi(v);
    } else if (a == "--scale") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      scale = std::atoi(v);
    } else if (a == "--help" || a == "-h") {
      return usage(argv[0]);
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      return usage(argv[0]);
    } else {
      files.push_back(a);
    }
  }

  if (corpus_mode) return run_corpus();
  if (files.empty() && inline_queries.empty()) return usage(argv[0]);

  Computation c;
  if (!trace_path.empty()) {
    TraceParseResult parsed;
    if (trace_path == "-") {
      parsed = read_trace(std::cin);
    } else {
      std::ifstream in(trace_path);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", trace_path.c_str());
        return 66;
      }
      parsed = read_trace(in);
    }
    if (!parsed.ok) {
      std::fprintf(stderr, "trace error: %s\n", parsed.error.c_str());
      return 65;
    }
    c = std::move(parsed.computation);
  } else if (!build_sim(sim_name, procs, scale, c)) {
    std::fprintf(stderr, "unknown workload %s\n", sim_name.c_str());
    return usage(argv[0]);
  }

  int failures = 0;
  for (std::size_t i = 0; i < inline_queries.size(); ++i)
    if (!lint_one(c, strfmt("<arg %zu>", i + 1), inline_queries[i], fix))
      ++failures;
  for (const std::string& path : files) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 66;
    }
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      const std::string q(trim(line));
      if (q.empty() || q[0] == '#') continue;
      if (!lint_one(c, strfmt("%s:%d", path.c_str(), lineno), q, fix))
        ++failures;
    }
  }
  if (failures > 0)
    std::printf("%d quer%s with no applicable rewrite\n", failures,
                failures == 1 ? "y" : "ies");
  return failures > 0 ? 1 : 0;
}
