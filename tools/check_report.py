#!/usr/bin/env python3
"""Schema checker for the observability artifacts.

    $ python3 tools/check_report.py report.json trace.json BENCH_table1.json

Auto-detects each file's kind and validates it:

  hbct.report/1   run report (src/obs/report.h)
  hbct.bench/1    bench artifact (bench/bench_report.h)
  Chrome trace    trace_event JSON (Tracer::chrome_trace_json and
                  FlightRecorder::dump_chrome)
  exposition      Prometheus text scrape (obs/expose.h render_prometheus)

Exit 0 when every file validates; the CI observability job runs this over
the artifacts produced by example_traced_detection and the bench binaries.
Stdlib only — mirrors, not replaces, the stricter in-process json_validate.
"""
import json
import sys

VERDICTS = {"holds", "fails", "unknown"}
BOUNDS = {"none", "state-cap", "step-budget", "deadline", "cancelled",
          "audit-failed"}
SUMMARY_KEYS = {"min", "max", "mean", "median", "stddev", "p50", "p90", "p99"}


def fail(path, msg):
    raise SystemExit(f"{path}: {msg}")


def check_spans(path, spans):
    for i, s in enumerate(spans):
        for k in ("id", "name", "tid", "parent", "start_ns", "dur_ns"):
            if k not in s:
                fail(path, f"span {i} missing {k!r}")
        if s["id"] != i:
            fail(path, f"span {i} has id {s['id']}")
        # Spans are appended at begin(): a parent always precedes its child.
        if not (s["parent"] == -1 or 0 <= s["parent"] < i):
            fail(path, f"span {i} has dangling parent {s['parent']}")
        if s.get("open"):
            fail(path, f"span {i} ({s['name']}) never closed")


def check_rewrites(path, rewrites):
    """The optimizer's rewrite chain: every step names a catalog rule and
    renders the before/after forms (src/analysis/rules.h)."""
    if not isinstance(rewrites, list):
        fail(path, "rewrites is not an array")
    for i, s in enumerate(rewrites):
        for k in ("rule", "note", "before", "after"):
            if k not in s:
                fail(path, f"rewrite {i} missing {k!r}")
            if not isinstance(s[k], str):
                fail(path, f"rewrite {i} field {k!r} is not a string")
        if not s["rule"]:
            fail(path, f"rewrite {i} has an empty rule name")
        if not s["before"] or not s["after"]:
            fail(path, f"rewrite {i} ({s['rule']!r}) missing before/after")


def check_report(path, doc):
    for k in ("schema", "verdict", "bound", "algorithm", "plan", "stats",
              "witness_cut", "witness_path_len", "rewrites", "diagnostics",
              "metrics", "spans"):
        if k not in doc:
            fail(path, f"missing key {k!r}")
    if doc["verdict"] not in VERDICTS:
        fail(path, f"bad verdict {doc['verdict']!r}")
    if doc["bound"] not in BOUNDS:
        fail(path, f"bad bound {doc['bound']!r}")
    check_rewrites(path, doc["rewrites"])
    if not all(isinstance(v, int) for v in doc["stats"].values()):
        fail(path, "non-integer stats counter")
    if doc["spans"] is not None:
        check_spans(path, doc["spans"])
    m = doc["metrics"]
    if m is not None:
        for h, snap in m.get("histograms", {}).items():
            if not snap["p50"] <= snap["p90"] <= snap["p99"]:
                fail(path, f"histogram {h!r} percentiles not monotone")
    return "report"


STREAMING_KEYS = {"sessions", "gc_interval_events", "events",
                  "events_per_sec", "resident_peak", "gc_reclaimed_events",
                  "gc_rounds", "fire_p50_ns", "fire_p99_ns", "recorder",
                  "until_watch", "until_inc", "until_inc_evals",
                  "until_dec_evals"}
STREAMING_BOOLS = {"recorder", "until_watch", "until_inc"}


def check_streaming(path, name, s):
    """The optional per-row extension emitted by bench_streaming."""
    if s.keys() != STREAMING_KEYS:
        fail(path, f"row {name!r} streaming keys {sorted(s.keys())} != "
                   f"{sorted(STREAMING_KEYS)}")
    for k in STREAMING_BOOLS:
        if not isinstance(s[k], bool):
            fail(path, f"row {name!r} streaming.{k} is not a bool")
    for k, v in s.items():
        if k in STREAMING_BOOLS:
            continue
        if not isinstance(v, (int, float)) or isinstance(v, bool):
            fail(path, f"row {name!r} streaming.{k} is not a number")
    if s["sessions"] <= 0 or s["events"] <= 0:
        fail(path, f"row {name!r} streaming has no sessions/events")
    if not s["fire_p50_ns"] <= s["fire_p99_ns"]:
        fail(path, f"row {name!r} fire-latency percentiles not monotone")
    if not s["until_watch"] and (s["until_inc_evals"] or s["until_dec_evals"]):
        fail(path, f"row {name!r} counts until work without until watches")
    if not s["until_inc"] and s["until_inc_evals"]:
        fail(path, f"row {name!r} counts feed-time until work with the "
                   f"incremental evaluator disabled")
    if s["gc_interval_events"] <= 0 and s["gc_rounds"] != 0:
        fail(path, f"row {name!r} reports GC rounds with GC disabled")
    if s["gc_interval_events"] > 0:
        # Bounded residency is the artifact's headline claim: with GC on the
        # peak must not be the whole stream (a small multiple of
        # sessions * interval; 8x absorbs inbox lag between pump runs).
        bound = 8 * s["sessions"] * s["gc_interval_events"]
        if s["resident_peak"] >= min(s["events"], bound):
            fail(path, f"row {name!r} resident_peak {s['resident_peak']} "
                       f"not bounded (events={s['events']}, bound={bound})")


WATCH_KEYS = {"class", "sessions", "watches", "events",
              "watch_evals_per_sec", "fires", "fire_p50_ns", "fire_p99_ns",
              "fire_samples", "p99_target_ns", "met_p99", "recorder",
              "until_inc"}
WATCH_CLASSES = {"conjunctive", "disjunctive", "invariant", "stable",
                 "channel", "relational", "until", "mixed"}


def check_watch(path, name, s, require_met=frozenset()):
    """The optional per-row extension emitted by bench_watch. Percentiles
    are exact (raw nanosecond samples accumulated across the row's measured
    passes), not the serve histogram's log2 buckets. `require_met` turns
    met_p99 into a hard gate for those classes (--require-met-p99); rows
    that deliberately run with the incremental until evaluator disabled
    are exempt — they exist to measure the before side."""
    if s.keys() != WATCH_KEYS:
        fail(path, f"row {name!r} watch keys {sorted(s.keys())} != "
                   f"{sorted(WATCH_KEYS)}")
    if s["class"] not in WATCH_CLASSES:
        fail(path, f"row {name!r} unknown watch class {s['class']!r}")
    for k in ("met_p99", "recorder", "until_inc"):
        if not isinstance(s[k], bool):
            fail(path, f"row {name!r} watch.{k} is not a bool")
    for k in WATCH_KEYS - {"class", "met_p99", "recorder", "until_inc"}:
        if not isinstance(s[k], (int, float)) or isinstance(s[k], bool):
            fail(path, f"row {name!r} watch.{k} is not a number")
    if s["sessions"] <= 0 or s["watches"] <= 0 or s["events"] <= 0:
        fail(path, f"row {name!r} watch has no sessions/watches/events")
    if s["watch_evals_per_sec"] <= 0:
        fail(path, f"row {name!r} watch throughput not positive")
    if s["fires"] <= 0:
        fail(path, f"row {name!r} armed watches never fired")
    if s["fire_samples"] <= 0:
        fail(path, f"row {name!r} has no raw fire-latency samples")
    if not s["fire_p50_ns"] <= s["fire_p99_ns"]:
        fail(path, f"row {name!r} fire-latency percentiles not monotone")
    if s["met_p99"] != (s["fire_p99_ns"] <= s["p99_target_ns"]):
        fail(path, f"row {name!r} met_p99 inconsistent with percentiles")
    if (s["class"] in require_met and s["until_inc"] and not s["met_p99"]):
        fail(path, f"row {name!r} class {s['class']!r} missed the p99 "
                   f"objective ({s['fire_p99_ns']} > {s['p99_target_ns']} ns)"
                   f" [--require-met-p99]")


INGEST_KEYS = {"format", "events", "input_bytes", "rss_delta_kb",
               "events_per_sec", "speedup_vs_text"}
INGEST_FORMATS = {"text", "btrace", "mtrace-copy", "mtrace-map"}


def check_ingest(path, name, s):
    """The optional per-row extension emitted by bench_ingest."""
    if s.keys() != INGEST_KEYS:
        fail(path, f"row {name!r} ingest keys {sorted(s.keys())} != "
                   f"{sorted(INGEST_KEYS)}")
    if s["format"] not in INGEST_FORMATS:
        fail(path, f"row {name!r} unknown ingest format {s['format']!r}")
    for k in INGEST_KEYS - {"format"}:
        if not isinstance(s[k], (int, float)) or isinstance(s[k], bool):
            fail(path, f"row {name!r} ingest.{k} is not a number")
    if s["events"] <= 0 or s["input_bytes"] <= 0:
        fail(path, f"row {name!r} ingest has no events/bytes")
    if s["rss_delta_kb"] < 0:
        fail(path, f"row {name!r} ingest.rss_delta_kb is negative")
    if s["events_per_sec"] <= 0:
        fail(path, f"row {name!r} ingest throughput not positive")
    # The artifact's headline claim: the text parse is the 1.0x reference
    # and the zero-copy mmap view beats it by an order of magnitude.
    if s["format"] == "text" and s["speedup_vs_text"] != 1:
        fail(path, f"row {name!r} text reference speedup is "
                   f"{s['speedup_vs_text']}, expected 1")
    if s["format"] == "mtrace-map" and s["speedup_vs_text"] < 1:
        fail(path, f"row {name!r} zero-copy load slower than the text parse")


def check_bench(path, doc, require_met=frozenset()):
    if not isinstance(doc.get("rows"), list) or not doc["rows"]:
        fail(path, "no rows")
    for row in doc["rows"]:
        for k in ("name", "label", "iters", "ns", "report"):
            if k not in row:
                fail(path, f"row {row.get('name', '?')!r} missing {k!r}")
        ns = row["ns"]
        if not SUMMARY_KEYS <= ns.keys():
            fail(path, f"row {row['name']!r} summary incomplete")
        if not ns["p50"] <= ns["p90"] <= ns["p99"]:
            fail(path, f"row {row['name']!r} percentiles not monotone")
        if not ns["min"] <= ns["median"] <= ns["max"]:
            fail(path, f"row {row['name']!r} median outside [min, max]")
        if row["report"] is not None:
            check_report(f"{path}:{row['name']}", row["report"])
        if "streaming" in row:
            check_streaming(path, row["name"], row["streaming"])
        if "watch" in row:
            check_watch(path, row["name"], row["watch"], require_met)
        if "ingest" in row:
            check_ingest(path, row["name"], row["ingest"])
    return f"bench ({len(doc['rows'])} rows)"


def check_chrome(path, doc):
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(path, "no traceEvents")
    phases = {"X", "i", "M"}
    for i, e in enumerate(events):
        if e.get("ph") not in phases:
            fail(path, f"event {i} has unexpected ph {e.get('ph')!r}")
        if e["ph"] == "X" and ("ts" not in e or "dur" not in e):
            fail(path, f"event {i} ({e.get('name')!r}) missing ts/dur")
    return f"chrome trace ({len(events)} events)"


EXPOSITION_TYPES = {"counter", "gauge", "histogram"}


def check_exposition(path, text):
    """Prometheus text-format scrape (obs/expose.h render_prometheus):
    every hbct_ sample belongs to a declared TYPE family, counters carry the
    _total suffix, and histogram bucket series are cumulative-monotone with
    a final +Inf bucket equal to _count."""
    families = {}          # family -> type
    hist = {}              # (family, labels-sans-le) -> [(le, cum), ...]
    hist_count = {}        # same key -> _count value
    nsamples = 0
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                if parts[3] not in EXPOSITION_TYPES:
                    fail(path, f"line {lineno}: unknown type {parts[3]!r}")
                families[parts[2]] = parts[3]
            continue
        try:
            name_labels, value = line.rsplit(None, 1)
            val = float(value)
        except ValueError:
            fail(path, f"line {lineno}: malformed sample {line!r}")
        if "{" in name_labels:
            name, labels = name_labels.split("{", 1)
            labels = "{" + labels
        else:
            name, labels = name_labels, ""
        if not name.startswith("hbct_"):
            continue
        nsamples += 1
        # Resolve the sample to its family: exact (gauge/counter) or the
        # histogram series suffixes.
        if name in families:
            family = name
            if families[family] == "counter" and not name.endswith("_total"):
                fail(path, f"line {lineno}: counter sample {name!r} "
                           f"without _total suffix")
        else:
            for suffix in ("_bucket", "_sum", "_count"):
                if name.endswith(suffix) and name[: -len(suffix)] in families:
                    family = name[: -len(suffix)]
                    break
            else:
                fail(path, f"line {lineno}: sample {name!r} has no TYPE line")
            if families[family] != "histogram":
                fail(path, f"line {lineno}: {name!r} series on "
                           f"non-histogram family {family!r}")
            if name.endswith("_bucket"):
                if 'le="' not in labels:
                    fail(path, f"line {lineno}: bucket without le label")
                pre, rest = labels.split('le="', 1)
                le, post = rest.split('"', 1)
                # Drop the comma that separated le from its neighbors.
                sans_le = (pre + post).replace(',}', '}').replace('{,', '{')
                sans_le = sans_le.replace(',,', ',')
                if sans_le == "{}":
                    sans_le = ""
                key = (family, sans_le)
                series = hist.setdefault(key, [])
                if series and val < series[-1][1]:
                    fail(path, f"line {lineno}: histogram {family!r} "
                               f"buckets not monotone")
                if series and series[-1][0] == "+Inf":
                    fail(path, f"line {lineno}: bucket after +Inf")
                series.append((le, val))
            elif name.endswith("_count"):
                hist_count[(family, labels)] = val
    for (family, labels), series in hist.items():
        if not series or series[-1][0] != "+Inf":
            fail(path, f"histogram {family!r}{labels} missing +Inf bucket")
        count = hist_count.get((family, labels))
        if count is None:
            fail(path, f"histogram {family!r}{labels} missing _count")
        if series[-1][1] != count:
            fail(path, f"histogram {family!r}{labels} +Inf bucket "
                       f"{series[-1][1]} != _count {count}")
    if nsamples == 0:
        fail(path, "no hbct_ samples")
    return f"exposition ({len(families)} families, {nsamples} samples)"


def check_file(path, require_met=frozenset()):
    with open(path, encoding="utf-8") as f:
        text = f.read()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        # Not JSON: a Prometheus exposition scrape is the only text kind.
        if "# TYPE hbct_" in text:
            return check_exposition(path, text)
        raise
    schema = doc.get("schema") if isinstance(doc, dict) else None
    if schema == "hbct.report/1":
        return check_report(path, doc)
    if schema == "hbct.bench/1":
        return check_bench(path, doc, require_met)
    if isinstance(doc, dict) and "traceEvents" in doc:
        return check_chrome(path, doc)
    fail(path, "unrecognized document (no known schema marker)")


def main(argv):
    # --require-met-p99 CLASS (repeatable): fail any bench_watch row of that
    # class whose p99 missed the latency objective. Rows measuring the
    # disabled incremental until evaluator (the "before" side of an A/B
    # pair) are exempt.
    require_met = set()
    paths = []
    args = argv[1:]
    while args:
        a = args.pop(0)
        if a == "--require-met-p99":
            if not args:
                print("--require-met-p99 needs a watch class",
                      file=sys.stderr)
                return 64
            cls = args.pop(0)
            if cls not in WATCH_CLASSES:
                print(f"--require-met-p99: unknown class {cls!r}",
                      file=sys.stderr)
                return 64
            require_met.add(cls)
        else:
            paths.append(a)
    if not paths:
        print(__doc__.strip(), file=sys.stderr)
        return 64
    for path in paths:
        print(f"{path}: ok ({check_file(path, frozenset(require_met))})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
