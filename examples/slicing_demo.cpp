// Computation slicing on a producer/consumer run: the slice of a regular
// predicate is an exponentially smaller representation of all cuts that
// satisfy it.
//
//   $ example_slicing_demo [items] [window] [seed]
#include <cstdio>
#include <cstdlib>

#include "hbct.h"

using namespace hbct;

int main(int argc, char** argv) {
  const std::int32_t items =
      argc > 1 ? static_cast<std::int32_t>(std::atoi(argv[1])) : 10;
  const std::int32_t window =
      argc > 2 ? static_cast<std::int32_t>(std::atoi(argv[2])) : 3;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 11;

  sim::SimOptions opt;
  opt.seed = seed;
  sim::Simulator s = sim::make_producer_consumer(items, window);
  Computation c = std::move(s).run(opt);
  std::printf("producer/consumer: %lld events, window %d\n",
              static_cast<long long>(c.total_events()), window);

  // "The buffer is exactly full" — a regular predicate (difference of
  // monotone counters equals the window).
  auto full = make_and(
      diff_le({0, "produced"}, {1, "consumed"}, window),
      make_not(diff_le({0, "produced"}, {1, "consumed"}, window - 1)));
  // Note: the conjunction of a regular predicate and a negation loses the
  // structural class, so slice the two regular halves instead:
  auto at_most = diff_le({0, "produced"}, {1, "consumed"}, window);
  auto at_least_cnt = window;  // produced - consumed >= window is also regular
  (void)at_least_cnt;

  Slice slice = Slice::compute(c, at_most);
  std::printf("slice of AG-invariant '%s':\n", at_most->describe().c_str());
  std::printf("  empty: %s\n", slice.empty() ? "yes" : "no");
  if (!slice.empty()) {
    std::printf("  least satisfying cut:    %s\n",
                slice.least()->to_string().c_str());
    std::printf("  greatest satisfying cut: %s\n",
                slice.greatest()->to_string().c_str());
    std::printf("  join-irreducible slice elements: %zu (|E| = %lld)\n",
                slice.elements().size(),
                static_cast<long long>(c.total_events()));
  }

  // Compare the slice's membership against the lattice, when small enough.
  auto lat = Lattice::try_build(c, 1u << 20);
  if (lat) {
    std::size_t sat = 0, mismatches = 0;
    for (NodeId v = 0; v < lat->size(); ++v) {
      const bool direct = at_most->eval(c, lat->cut(v));
      sat += direct;
      mismatches += direct != slice.satisfies(lat->cut(v));
    }
    std::printf("  lattice: %zu cuts, %zu satisfy; slice membership "
                "mismatches: %zu\n",
                lat->size(), sat, mismatches);
  } else {
    std::printf("  lattice too large to enumerate — which is the point\n");
  }

  // The invariant itself, through the dispatcher (A2 on meet-irreducibles).
  DetectResult ag = detect(c, Op::kAG, at_most);
  std::printf("AG('%s'): %s via %s, %llu evaluations\n",
              at_most->describe().c_str(), ag.holds() ? "holds" : "FAILS",
              ag.algorithm.c_str(),
              static_cast<unsigned long long>(ag.stats.predicate_evals));
  (void)full;
  return 0;
}
