// Leader-election monitoring: agreement and uniqueness as CTL queries.
//
//   $ example_leader_election_monitor [n] [seed]
//
// Runs Chang–Roberts on a ring of n processes and checks:
//   - AF: every observation ends with unanimous agreement on the max uid,
//   - AG: no process ever adopts a wrong leader,
//   - EF: exactly one process declares itself elected.
#include <cstdio>
#include <cstdlib>

#include "hbct.h"

using namespace hbct;

int main(int argc, char** argv) {
  const std::int32_t n =
      argc > 1 ? static_cast<std::int32_t>(std::atoi(argv[1])) : 5;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  sim::SimOptions opt;
  opt.seed = seed;
  sim::Simulator s = sim::make_leader_election(n);
  Computation c = std::move(s).run(opt);
  std::printf("ring of %d processes: %lld events, %lld messages\n", n,
              static_cast<long long>(c.total_events()),
              static_cast<long long>(c.num_messages()));

  // Agreement: definitely (AF), everyone eventually believes in uid n.
  std::vector<LocalPredicatePtr> agree;
  for (ProcId i = 0; i < n; ++i)
    agree.push_back(var_cmp(i, "leader", Cmp::kEq, n));
  DetectResult af = detect(c, Op::kAF, make_conjunctive(agree));
  std::printf("AF(all leader == %d): %s  [%s, %llu evals]\n", n,
              af.holds() ? "holds" : "FAILS", af.algorithm.c_str(),
              static_cast<unsigned long long>(af.stats.predicate_evals));

  // Sanity invariant: a process believes 0 (unknown) or n (the max uid).
  bool invariant = true;
  for (ProcId i = 0; i < n && invariant; ++i) {
    auto sane = make_or(PredicatePtr(var_cmp(i, "leader", Cmp::kEq, 0)),
                        PredicatePtr(var_cmp(i, "leader", Cmp::kEq, n)));
    invariant = detect(c, Op::kAG, sane).holds();
  }
  std::printf("AG(leader in {0, %d}) on every process: %s\n", n,
              invariant ? "holds" : "FAILS");

  // Uniqueness: no cut has two self-declared leaders.
  bool unique = true;
  for (ProcId i = 0; i < n && unique; ++i)
    for (ProcId j = i + 1; j < n && unique; ++j) {
      auto two = make_conjunctive({var_cmp(i, "elected", Cmp::kEq, 1),
                                   var_cmp(j, "elected", Cmp::kEq, 1)});
      unique = !detect(c, Op::kEF, two).holds();
    }
  std::printf("no two self-declared leaders ever: %s\n",
              unique ? "holds" : "FAILS");

  // And via the query language, for the report:
  auto r = ctl::evaluate_query(
      c, strfmt("EF(elected@P%d == 1)", n - 1));
  std::printf("%s -> %s\n", strfmt("EF(elected@P%d == 1)", n - 1).c_str(),
              r.ok && r.result.holds() ? "true" : "false");
  return 0;
}
