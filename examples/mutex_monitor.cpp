// Mutual-exclusion debugging: the paper's motivating example.
//
//   $ example_mutex_monitor [seed]
//
// Runs two protocols on the simulator — a correct Ricart–Agrawala instance
// and a token-based instance with an injected rogue critical-section entry —
// and monitors both for safety (EF of a CS overlap) and for the
// trying-until-critical AU property.
#include <cstdio>
#include <cstdlib>

#include "hbct.h"

using namespace hbct;

namespace {

void check_safety(const Computation& c, const char* name) {
  std::printf("== %s: %lld events, %lld messages\n", name,
              static_cast<long long>(c.total_events()),
              static_cast<long long>(c.num_messages()));
  bool violated = false;
  for (ProcId i = 0; i < c.num_procs(); ++i) {
    for (ProcId j = i + 1; j < c.num_procs(); ++j) {
      auto overlap = make_conjunctive(
          {var_cmp(i, "cs", Cmp::kEq, 1), var_cmp(j, "cs", Cmp::kEq, 1)});
      DetectResult r = detect(c, Op::kEF, overlap);
      if (r.holds()) {
        violated = true;
        std::printf("  VIOLATION: P%d and P%d can be in the critical section "
                    "together, e.g. at cut %s\n",
                    i, j, r.witness_cut->to_string().c_str());
      }
    }
  }
  if (!violated)
    std::printf("  safety holds: no cut has two processes in the CS\n");

  // A[ (trying or not-yet-critical) U critical ] per process — the paper's
  // "processes are in trying state before getting to critical state".
  for (ProcId i = 0; i < c.num_procs(); ++i) {
    auto q = strfmt("A[ try@P%d == 1 || cs@P%d == 0 U cs@P%d == 1 ]", i, i, i);
    auto r = ctl::evaluate_query(c, q);
    std::printf("  %-52s %s [%s]\n", q.c_str(),
                r.ok && r.result.holds() ? "true " : "false",
                r.ok ? r.algorithm.c_str() : r.error.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  sim::SimOptions opt;
  opt.seed = seed;

  sim::Simulator good = sim::make_ra_mutex(4, 2);
  Computation cg = std::move(good).run(opt);
  check_safety(cg, "Ricart-Agrawala (4 processes, 2 rounds)");

  sim::Simulator bad = sim::make_token_mutex(4, 2, /*inject_violation=*/true);
  Computation cb = std::move(bad).run(opt);
  check_safety(cb, "token mutex with injected rogue entry");
  return 0;
}
