// Companion to example_trace_checker: generate workload traces.
//
//   $ example_trace_generator <workload> [seed] > out.trace
//
// Workloads: token_mutex token_mutex_buggy ra_mutex leader_election
//            token_ring producer_consumer barrier mixer dining
//            dining_deadlocky 2pc 2pc_buggy chandy_lamport abp
//
// Pipe into the checker:
//   $ example_trace_generator 2pc_buggy 7 | \
//     example_trace_checker - 'EF(vote@P1 == 0 && outcome@P1 == 1)'
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "hbct.h"

using namespace hbct;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <workload> [seed]\nworkloads: token_mutex "
                 "token_mutex_buggy ra_mutex leader_election token_ring "
                 "producer_consumer barrier mixer dining dining_deadlocky "
                 "2pc 2pc_buggy chandy_lamport abp\n",
                 argv[0]);
    return 64;
  }
  const std::string kind = argv[1];
  sim::SimOptions opt;
  opt.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  sim::Simulator s = [&]() -> sim::Simulator {
    if (kind == "token_mutex") return sim::make_token_mutex(4, 2, false);
    if (kind == "token_mutex_buggy") return sim::make_token_mutex(4, 2, true);
    if (kind == "ra_mutex") return sim::make_ra_mutex(4, 2);
    if (kind == "leader_election") return sim::make_leader_election(6);
    if (kind == "token_ring") return sim::make_token_ring(5, 3);
    if (kind == "producer_consumer")
      return sim::make_producer_consumer(12, 3);
    if (kind == "barrier") return sim::make_barrier(4, 4);
    if (kind == "mixer") return sim::make_random_mixer(4, 15, 2, 0.4);
    if (kind == "dining") return sim::make_dining_philosophers(4, 2, true);
    if (kind == "dining_deadlocky")
      return sim::make_dining_philosophers(4, 2, false);
    if (kind == "2pc") return sim::make_two_phase_commit(4, 3, 0.3, false);
    if (kind == "2pc_buggy")
      return sim::make_two_phase_commit(4, 3, 0.5, true);
    if (kind == "chandy_lamport") return sim::make_chandy_lamport(4, 12, 5);
    if (kind == "abp") return sim::make_alternating_bit(8, 0.5);
    std::fprintf(stderr, "unknown workload '%s'\n", kind.c_str());
    std::exit(64);
  }();

  Computation c = std::move(s).run(opt);
  write_trace(std::cout, c);
  std::fprintf(stderr, "# %s seed=%llu: %lld events, %lld messages\n",
               kind.c_str(), static_cast<unsigned long long>(opt.seed),
               static_cast<long long>(c.total_events()),
               static_cast<long long>(c.num_messages()));
  return 0;
}
