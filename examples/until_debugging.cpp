// The Fig. 4 scenario end-to-end: detecting E[p U q] with Algorithm A3 and
// comparing against the explicit-lattice baseline.
//
//   $ example_until_debugging
//
// Reconstructs the paper's Fig. 4 computation, prints its lattice statistics
// and path counts (7 witness prefixes, 2 through I_q), then runs both the
// polynomial A3 algorithm and the exponential baseline.
#include <cstdio>

#include "hbct.h"

using namespace hbct;

int main() {
  // Fig. 4 (see tests/test_fig4.cpp for the provenance of this shape).
  ComputationBuilder b(3);
  VarId x = b.var("x"), z = b.var("z");
  b.set_initial(0, x, 1);
  b.set_initial(2, z, 3);
  MsgId m1 = b.send(0, 1);
  b.label(0, "e1").write(0, x, 2);
  b.internal(0);
  b.label(0, "e2").write(0, x, 3);
  MsgId m2 = b.send(1, 2);
  b.label(1, "f1");
  b.receive(1, m1);
  b.label(1, "f2");
  b.receive(2, m2);
  b.label(2, "g1").write(2, z, 6);
  Computation c = std::move(b).build();

  std::printf("Fig. 4 computation as a trace:\n%s\n",
              trace_to_string(c).c_str());

  auto p = make_conjunctive(
      {var_cmp(2, "z", Cmp::kLt, 6), var_cmp(0, "x", Cmp::kLt, 4)});
  auto q = make_and(all_channels_empty(),
                    PredicatePtr(var_cmp(0, "x", Cmp::kGt, 1)));
  std::printf("p = %s   (classes: %s)\n", p->describe().c_str(),
              classes_to_string(effective_classes(*p, c)).c_str());
  std::printf("q = %s   (classes: %s)\n", q->describe().c_str(),
              classes_to_string(effective_classes(*q, c)).c_str());

  Lattice lat = Lattice::build(c);
  const NodeId iq_node = lat.node_of(Cut({1, 2, 1}));
  BigUint at_iq;
  BigUint total = count_eu_witnesses(
      lat, [&](NodeId v) { return p->eval(c, lat.cut(v)); },
      [&](NodeId v) { return q->eval(c, lat.cut(v)); }, iq_node, &at_iq);
  std::printf("lattice: %zu cuts; EU witness prefixes: %s total, %s through "
              "I_q (paper: 7 and 2)\n",
              lat.size(), total.to_string().c_str(),
              at_iq.to_string().c_str());

  DetectResult a3 = detect_eu(c, *p, *q);
  std::printf("A3: E[p U q] %s  [%llu evals]  I_q = %s\n",
              a3.holds() ? "holds" : "fails",
              static_cast<unsigned long long>(a3.stats.predicate_evals),
              a3.witness_cut->to_string().c_str());
  std::printf("  witness: ");
  for (const Cut& g : a3.witness_path) std::printf("%s ", g.to_string().c_str());
  std::printf("\n");

  LatticeChecker chk(std::move(lat));
  DetectResult brute = chk.detect(Op::kEU, *p, q.get());
  std::printf("baseline: %s  [%llu lattice nodes, %llu evals]\n",
              brute.holds() ? "holds" : "fails",
              static_cast<unsigned long long>(brute.stats.lattice_nodes),
              static_cast<unsigned long long>(brute.stats.predicate_evals));

  // The same query in textual form.
  auto r = ctl::evaluate_query(
      c, "E[ z@P2 < 6 && x@P0 < 4 U channels_empty && x@P0 > 1 ]");
  std::printf("textual query -> %s via %s\n",
              r.result.holds() ? "true" : "false", r.algorithm.c_str());
  return 0;
}
