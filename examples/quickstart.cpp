// Quickstart: build a computation, ask CTL questions about it.
//
//   $ example_quickstart
//
// Walks through the three ways of using hbct:
//   1. constructing a happened-before model by hand (ComputationBuilder),
//   2. writing predicates with the C++ combinators and detecting them,
//   3. using the textual CTL query language.
#include <cstdio>

#include "hbct.h"

using namespace hbct;

int main() {
  // ---- 1. A small 3-process computation ---------------------------------
  // P0 increments a counter and announces it to P1; P1 forwards to P2.
  ComputationBuilder b(3);
  VarId cnt = b.var("cnt");
  b.internal(0);
  b.write(0, cnt, 1);
  MsgId m1 = b.send(0, 1);
  b.receive(1, m1);
  b.write(1, cnt, 1);
  MsgId m2 = b.send(1, 2);
  b.internal(0);
  b.write(0, cnt, 2);
  b.receive(2, m2);
  b.write(2, cnt, 1);
  Computation c = std::move(b).build();

  std::printf("computation: %d processes, %lld events, %lld messages\n",
              c.num_procs(), static_cast<long long>(c.total_events()),
              static_cast<long long>(c.num_messages()));

  // The state space the paper avoids building:
  Lattice lat = Lattice::build(c);
  std::printf("explicit lattice: %zu consistent cuts, %s observations\n",
              lat.size(), count_maximal_chains(lat).to_string().c_str());

  // ---- 2. Combinator predicates + class-aware detection ------------------
  // "Everybody has seen the counter" — conjunctive, so EF dispatches to the
  // Garg-Waldecker weak-conjunctive algorithm.
  auto everyone = make_conjunctive({var_cmp(0, "cnt", Cmp::kGe, 1),
                                    var_cmp(1, "cnt", Cmp::kGe, 1),
                                    var_cmp(2, "cnt", Cmp::kGe, 1)});
  DetectResult ef = detect(c, Op::kEF, everyone);
  std::printf("EF(%s): %s   [%s, %llu evals]\n", everyone->describe().c_str(),
              ef.holds() ? "holds" : "fails", ef.algorithm.c_str(),
              static_cast<unsigned long long>(ef.stats.predicate_evals));
  if (ef.holds())
    std::printf("  least satisfying cut: %s\n",
                ef.witness_cut->to_string().c_str());

  // "Channels never hold more than one message" — a regular predicate;
  // AG dispatches to Algorithm A2 (meet-irreducibles).
  std::vector<PredicatePtr> bounds;
  for (ProcId i = 0; i < 3; ++i)
    for (ProcId j = 0; j < 3; ++j)
      if (i != j) bounds.push_back(channel_bound_le(i, j, 1));
  DetectResult ag = detect(c, Op::kAG, make_and(std::move(bounds)));
  std::printf("AG(channel bounds): %s   [%s]\n",
              ag.holds() ? "holds" : "fails", ag.algorithm.c_str());

  // ---- 3. Textual CTL ----------------------------------------------------
  for (const char* q : {
           "EF(cnt@P0 == 2 && cnt@P2 == 1)",
           "AG(cnt@P0 - cnt@P2 <= 2)",
           "E[ intransit(1,2) <= 1 U cnt@P2 >= 1 ]",
           "AF(terminated)",
       }) {
    auto r = ctl::evaluate_query(c, q);
    if (!r.ok) {
      std::printf("%-45s  error: %s\n", q, r.error.c_str());
      continue;
    }
    std::printf("%-45s  %-5s  [%s]\n", q, r.result.holds() ? "true" : "false",
                r.algorithm.c_str());
  }

  // What does the classifier know about a predicate?
  auto report = classify(*everyone, c);
  std::printf("\nclassification of the conjunctive predicate:\n%s",
              to_string(report).c_str());
  return 0;
}
