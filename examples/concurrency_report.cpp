// Concurrency characterization of every built-in workload: how long is the
// critical path, how wide is the computation, how big does the global state
// space get — the numbers that decide whether explicit-lattice checking is
// even thinkable versus the paper's direct algorithms.
//
//   $ example_concurrency_report [seed]
#include <cstdio>
#include <cstdlib>

#include "hbct.h"

using namespace hbct;

namespace {

void report(const char* name, sim::Simulator s, std::uint64_t seed) {
  sim::SimOptions o;
  o.seed = seed;
  Computation c = std::move(s).run(o);
  ConcurrencyStats st = analyze(c, /*width_limit=*/300);
  auto lat = Lattice::try_build(c, 1u << 20);
  std::printf("%-22s %6lld ev %5lld msg  height %5d  width %3d  "
              "parallelism %5.2f  |C(E)| %s\n",
              name, static_cast<long long>(st.events),
              static_cast<long long>(st.messages), st.height, st.width,
              st.parallelism,
              lat ? std::to_string(lat->size()).c_str() : "> 1M");
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;

  std::printf("workload                 events  msgs   height  width  "
              "par.   lattice\n");
  report("token_mutex", sim::make_token_mutex(4, 2, false), seed);
  report("ra_mutex", sim::make_ra_mutex(4, 2), seed);
  report("leader_election", sim::make_leader_election(6), seed);
  report("token_ring", sim::make_token_ring(5, 3), seed);
  report("producer_consumer", sim::make_producer_consumer(12, 3), seed);
  report("barrier", sim::make_barrier(4, 4), seed);
  report("mixer", sim::make_random_mixer(4, 15, 2, 0.4), seed);
  report("dining(ordered)", sim::make_dining_philosophers(4, 2, true), seed);
  report("two_phase_commit", sim::make_two_phase_commit(4, 3, 0.3, false),
         seed);
  report("chandy_lamport", sim::make_chandy_lamport(4, 12, 5), seed);

  std::printf("\nwidth = largest antichain (Dilworth); parallelism = "
              "events / height.\nA chain-like workload (token_ring) has "
              "a tiny lattice; concurrent ones explode — hence the paper's "
              "lattice-free algorithms.\n");
  return 0;
}
