// Traced detection end to end: run E[p U q] on a Fig.5-style random
// computation with DispatchOptions::trace set, then write the two artifacts
// the observability layer produces —
//
//   report.json  the hbct.report/1 run report (verdict, plan, stats,
//                metrics snapshot, span tree)
//   trace.json   the same spans as Chrome trace_event JSON; load it in
//                chrome://tracing or ui.perfetto.dev to see A3's phases:
//                eu.least-cut-of-q (the Chase–Garg walk to I_q), then the
//                per-frontier-event EG sweep under eu.frontier-fanout
//
//   $ example_traced_detection [report.json [trace.json]]
//
// Exit code 0 only when both documents validate; the CI observability job
// runs this binary and checks the files with tools/check_report.py.
#include <cstdio>
#include <fstream>
#include <string>

#include "hbct.h"

using namespace hbct;

namespace {

bool write_file(const std::string& path, const std::string& body,
                const char* what) {
  std::string err;
  if (!json_validate(body, &err)) {
    std::fprintf(stderr, "%s invalid: %s\n", what, err.c_str());
    return false;
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << body << "\n";
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), body.size() + 1);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string report_path = argc > 1 ? argv[1] : "report.json";
  const std::string trace_path = argc > 2 ? argv[2] : "trace.json";

  // The Fig.5 until workload: 6 processes, message-heavy (p_send 0.25).
  GenOptions gen;
  gen.num_procs = 6;
  gen.events_per_proc = 200;
  gen.num_vars = 2;
  gen.p_send = 0.25;
  gen.seed = 5;
  const Computation c = generate_random(gen);

  // p: every process keeps v0 small; q: all channels drained and process 3
  // past its midpoint. E[p U q] dispatches to A3.
  std::vector<LocalPredicatePtr> ls;
  for (ProcId i = 0; i < gen.num_procs; ++i)
    ls.push_back(var_cmp(i, "v0", Cmp::kLe, 9));
  PredicatePtr p = make_conjunctive(std::move(ls));
  PredicatePtr q =
      make_and(all_channels_empty(),
               PredicatePtr(progress_ge(3, gen.events_per_proc / 2)));

  DispatchOptions opt;
  opt.trace = true;
  const DetectResult r = detect(c, Op::kEU, p, q, opt);

  std::printf("E[p U q]: %s  [%s, %llu evals, %llu cut steps]\n",
              to_string(r.verdict), r.algorithm.c_str(),
              static_cast<unsigned long long>(r.stats.predicate_evals),
              static_cast<unsigned long long>(r.stats.cut_steps));
  if (!r.trace) {
    std::fprintf(stderr, "tracing was requested but no tracer came back\n");
    return 1;
  }
  std::printf("spans: %llu\n",
              static_cast<unsigned long long>(r.trace->span_count()));

  const bool ok = write_file(report_path, report_json(r), "report") &&
                  write_file(trace_path, r.trace->chrome_trace_json(), "trace");
  return ok ? 0 : 1;
}
