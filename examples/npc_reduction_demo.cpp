// Theorem 5 in action: SAT instances as EG-detection problems on
// observer-independent predicates, with DPLL as the independent referee.
//
//   $ example_npc_reduction_demo [num_vars] [num_clauses] [seed]
#include <cstdio>
#include <cstdlib>

#include "hbct.h"

using namespace hbct;

int main(int argc, char** argv) {
  const std::int32_t m =
      argc > 1 ? static_cast<std::int32_t>(std::atoi(argv[1])) : 6;
  const std::int32_t clauses =
      argc > 2 ? static_cast<std::int32_t>(std::atoi(argv[2])) : 18;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 3;

  Rng rng(seed);
  Cnf f = Cnf::random(m, clauses, 3, rng);
  std::printf("random 3-CNF over %d vars, %d clauses:\n  %s\n", m, clauses,
              f.to_string().c_str());

  Reduction r = reduce_sat_to_eg(f);
  std::printf("gadget computation: %d processes, %lld events\n",
              r.computation.num_procs(),
              static_cast<long long>(r.computation.total_events()));
  std::printf("predicate %s, classes: %s\n", r.predicate->describe().c_str(),
              classes_to_string(
                  effective_classes(*r.predicate, r.computation))
                  .c_str());

  DetectResult eg = detect_eg_dfs(r.computation, *r.predicate);
  std::printf("EG(P) search: %s after exploring %llu cut transitions\n",
              eg.holds() ? "satisfiable" : "unsatisfiable",
              static_cast<unsigned long long>(eg.stats.cut_steps));

  DpllStats ds;
  auto model = dpll_solve(f, &ds);
  std::printf("DPLL: %s (%llu decisions, %llu propagations)\n",
              model ? "satisfiable" : "unsatisfiable",
              static_cast<unsigned long long>(ds.decisions),
              static_cast<unsigned long long>(ds.propagations));
  if (eg.holds() != model.has_value()) {
    std::printf("REDUCTION MISMATCH — this is a bug\n");
    return 1;
  }
  if (model) {
    std::printf("model:");
    for (std::int32_t v = 0; v < m; ++v)
      std::printf(" x%d=%d", v, static_cast<int>((*model)[v]));
    std::printf("\n");
  }

  // Theorem 6: DNF tautology as AG detection.
  Dnf g = Dnf::random(m, clauses, 2, rng);
  Reduction rt = reduce_tautology_to_ag(g);
  DetectResult ag = detect_ag_dfs(rt.computation, *rt.predicate);
  const bool taut = dnf_tautology(g);
  std::printf("\nrandom 2-DNF: AG(P) says %s, DPLL says %s — %s\n",
              ag.holds() ? "tautology" : "refutable",
              taut ? "tautology" : "refutable",
              ag.holds() == taut ? "agree" : "MISMATCH");
  return ag.holds() == taut ? 0 : 1;
}
