// trace_convert: converts between the three trace formats.
//
//   trace_convert <input> <output> [--to text|btrace|mtrace]
//
// The input format is detected from its magic bytes (hbct-trace v1,
// hbct-btrace v1, HBCTMTR1); the output format defaults to the extension
// (.trace / .btrace / .mtrace) and can be forced with --to. Converting a
// large text or btrace corpus to mtrace once makes every later load
// zero-copy (see "Loading huge traces" in README.md).
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "poset/mtrace.h"
#include "poset/trace_io.h"

namespace {

int usage() {
  std::cerr << "usage: trace_convert <input> <output> [--to text|btrace|mtrace]\n";
  return 2;
}

std::string guess_format(const std::string& path) {
  const auto dot = path.rfind('.');
  const std::string ext = dot == std::string::npos ? "" : path.substr(dot + 1);
  if (ext == "btrace") return "btrace";
  if (ext == "mtrace") return "mtrace";
  return "text";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string in_path = argv[1];
  const std::string out_path = argv[2];
  std::string to = guess_format(out_path);
  for (int a = 3; a < argc; ++a) {
    if (std::string(argv[a]) == "--to" && a + 1 < argc) {
      to = argv[++a];
    } else {
      return usage();
    }
  }
  if (to != "text" && to != "btrace" && to != "mtrace") return usage();

  std::ifstream in(in_path, std::ios::binary);
  if (!in) {
    std::cerr << "trace_convert: cannot open " << in_path << "\n";
    return 1;
  }
  char magic[8] = {0};
  in.read(magic, 8);
  in.clear();
  in.seekg(0);

  hbct::Computation c;
  if (std::memcmp(magic, hbct::kMtraceMagic.data(), 8) == 0) {
    in.close();
    auto r = hbct::load_mtrace(in_path);
    if (!r.ok) {
      std::cerr << "trace_convert: " << hbct::to_string(r.code) << ": "
                << r.error << "\n";
      return 1;
    }
    c = std::move(r.computation);
  } else if (std::memcmp(magic, "hbct-btr", 8) == 0) {
    auto r = hbct::read_trace_binary(in);
    if (!r.ok) {
      std::cerr << "trace_convert: " << r.error << "\n";
      return 1;
    }
    c = std::move(r.computation);
  } else {
    auto r = hbct::read_trace(in);
    if (!r.ok) {
      std::cerr << "trace_convert: " << r.error << "\n";
      return 1;
    }
    c = std::move(r.computation);
  }

  if (to == "mtrace") {
    std::string err;
    if (!hbct::write_mtrace_file(out_path, c, &err)) {
      std::cerr << "trace_convert: " << err << "\n";
      return 1;
    }
  } else {
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "trace_convert: cannot open " << out_path << " for writing\n";
      return 1;
    }
    if (to == "btrace")
      hbct::write_trace_binary(out, c);
    else
      hbct::write_trace(out, c);
    if (!out.flush()) {
      std::cerr << "trace_convert: write failed\n";
      return 1;
    }
  }
  std::cerr << "converted " << c.total_events() << " events ("
            << c.num_procs() << " procs) to " << to << "\n";
  return 0;
}
