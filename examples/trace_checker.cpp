// A miniature debugging environment (the paper's closing future-work item):
// check CTL queries against a recorded trace from the command line.
//
//   $ example_trace_checker <trace-file|-> "<query>" [more queries...]
//   $ example_trace_checker --demo
//
// With --demo, writes a sample trace to stdout instead (pipe it back in to
// try the tool). Queries use the library's CTL fragment, e.g.
//   'EF(cs@P0 == 1 && cs@P1 == 1)'
//   'AG(produced@P0 - consumed@P1 <= 3)'
//   'E[ x@P0 < 4 U channels_empty ]'
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "hbct.h"

using namespace hbct;

namespace {

int demo() {
  sim::Simulator s = sim::make_producer_consumer(6, 2);
  Computation c = std::move(s).run({});
  write_trace(std::cout, c);
  return 0;
}

void describe_computation(const Computation& c) {
  std::printf("# %d processes, %lld events, %lld messages; variables:",
              c.num_procs(), static_cast<long long>(c.total_events()),
              static_cast<long long>(c.num_messages()));
  for (VarId v = 0; v < c.num_vars(); ++v)
    std::printf(" %s", c.var_name(v).c_str());
  std::printf("\n# concurrency: %s\n", analyze(c).to_string().c_str());
  auto lat = Lattice::try_build(c, 1u << 18);
  if (lat)
    std::printf("# global-state lattice: %zu consistent cuts\n", lat->size());
  else
    std::printf("# global-state lattice: > %u consistent cuts (not built)\n",
                1u << 18);
}

int check(const Computation& c, const char* query) {
  auto r = ctl::evaluate_query(c, query);
  if (!r.ok) {
    std::printf("%-50s  PARSE/VALIDATION ERROR: %s\n", query,
                r.error.c_str());
    return 2;
  }
  std::printf("%-50s  %-5s  [%s, %llu evals]\n", query,
              r.result.holds() ? "TRUE" : "FALSE", r.algorithm.c_str(),
              static_cast<unsigned long long>(r.result.stats.predicate_evals));
  if (r.result.witness_cut)
    std::printf("  witness cut: %s\n",
                r.result.witness_cut->to_string().c_str());
  if (!r.result.witness_path.empty()) {
    std::printf("  witness path (%zu cuts):", r.result.witness_path.size());
    const std::size_t show = std::min<std::size_t>(8, r.result.witness_path.size());
    for (std::size_t i = 0; i < show; ++i)
      std::printf(" %s", r.result.witness_path[i].to_string().c_str());
    if (show < r.result.witness_path.size()) std::printf(" ...");
    std::printf("\n");
  }
  return r.result.holds() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--demo") == 0) return demo();
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <trace-file|-> \"<ctl query>\" [...]\n"
                 "       %s --demo   (emit a sample trace)\n",
                 argv[0], argv[0]);
    return 64;
  }

  TraceParseResult parsed;
  if (std::strcmp(argv[1], "-") == 0) {
    parsed = read_trace(std::cin);
  } else {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 66;
    }
    parsed = read_trace(in);
  }
  if (!parsed.ok) {
    std::fprintf(stderr, "trace error: %s\n", parsed.error.c_str());
    return 65;
  }

  describe_computation(parsed.computation);
  int rc = 0;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--diagram") == 0) {
      std::printf("%s", render_diagram(parsed.computation).c_str());
      continue;
    }
    rc = std::max(rc, check(parsed.computation, argv[i]));
  }
  return rc;
}
